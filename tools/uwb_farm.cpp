// uwb_farm: fault-tolerant orchestration of sharded uwb_sweep runs.
//
//   uwb_farm run gen2_cm_grid --fast --shards 4 --run-dir runs/grid --out grid.json
//   uwb_farm resume runs/grid --out grid.json
//   uwb_farm merge runs/grid --out grid.json [--allow-partial]
//   uwb_farm status runs/grid
//   uwb_farm verify grid.json bench/expectations/grid.json
//
// `run` expands the scenario once into <run-dir>/scenario.json, journals
// per-shard state in <run-dir>/state.json (atomic rewrites), and fans
// `uwb_sweep --file scenario.json --shard i/N` across supervised child
// processes: per-attempt timeout, bounded retry with exponential backoff +
// deterministic jitter, exit-code/signal classification (bad-args and
// spec-load failures don't retry; crashes, timeouts, and runtime errors
// do). A shard counts as done only after its result document validated
// against the plan. `resume` re-validates every checkpoint and runs only
// what's missing; the final --merge output is byte-identical to an
// uninterrupted unsharded run (cmp-tested). `verify` checks a result
// document against a declared-expectations JSON (docs/farm.md).

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "engine/scenario_registry.h"
#include "farm/exit_codes.h"
#include "farm/farm.h"
#include "farm/verify.h"
#include "io/spec_io.h"
#include "sim/ber_simulator.h"

namespace {

using namespace uwb;

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  uwb_farm run <scenario|--file spec.json> [axis=value ...] \\\n"
               "      --run-dir DIR [options]\n"
               "      Expand the scenario, checkpoint it under DIR, and run every\n"
               "      shard through supervised uwb_sweep child processes.\n"
               "  uwb_farm resume <run-dir> [options]\n"
               "      Re-validate the checkpoints under <run-dir> and run only the\n"
               "      shards without a validated result.\n"
               "  uwb_farm merge <run-dir> --out PATH [--allow-partial]\n"
               "      Merge the validated shard results into PATH. Refuses unless\n"
               "      every shard is done, or --allow-partial is given.\n"
               "  uwb_farm status <run-dir>\n"
               "      Print the journal: per-shard status, attempts, outcomes.\n"
               "  uwb_farm verify <result.json> <expectations.json>\n"
               "      Check a result document against declared expectations\n"
               "      (metric ranges, monotonicity, accounting); nonzero on any\n"
               "      violated claim.\n"
               "\n"
               "run options:\n"
               "  --shards N         shard count (default 2)\n"
               "  --seed S           sweep seed handed to every worker\n"
               "  --fast             shrink the stopping rule (as uwb_sweep --fast)\n"
               "  --min-errors E, --max-bits B, --max-trials T, --stop-metric M\n"
               "                     stopping rule (defaults: 40, 120000, 100000)\n"
               "  --workers-per-shard W\n"
               "                     worker threads per child (default: child decides)\n"
               "  --channel-cache D  forwarded to every worker\n"
               "  --progress         workers emit JSON heartbeat lines into their\n"
               "                     shard logs; `uwb_farm status` shows the latest\n"
               "                     one per live shard (journaled, survives resume)\n"
               "\n"
               "run/resume options:\n"
               "  --max-attempts K   attempts per shard before giving up (default 3)\n"
               "  --timeout SEC      per-attempt wall clock; exceeded -> SIGKILL and\n"
               "                     the attempt counts as failed (default: none)\n"
               "  --backoff SEC      first retry delay, doubling per retry with\n"
               "                     deterministic jitter (default 0.25)\n"
               "  --backoff-max SEC  retry delay ceiling (default 8)\n"
               "  --parallel P       concurrently live workers (default: all shards)\n"
               "  --worker BIN       uwb_sweep binary (default: next to uwb_farm)\n"
               "  --out PATH         merge into PATH after the shards finish\n"
               "  --allow-partial    degrade gracefully: merge the shards that\n"
               "                     succeeded even if some failed for good (the\n"
               "                     run still exits nonzero and the farm manifest\n"
               "                     says \"partial\")\n"
               "  --quiet            no per-shard progress on stderr\n"
               "\n"
               "exit codes: 0 complete; 1 incomplete run, failed merge, or failed\n"
               "verification; 2 bad arguments; 3 scenario spec failed to load.\n");
  return out == stdout ? farm::kExitOk : farm::kExitBadArgs;
}

struct Args {
  std::string command;
  std::string scenario;
  std::string spec_file;
  std::string run_dir;
  std::vector<std::pair<std::string, std::string>> overrides;
  std::vector<std::string> positional;  // resume/merge/status/verify operands
  bool fast = false;
  bool allow_partial = false;
  bool quiet = false;
  std::string out_path;
  std::string worker_binary;
  std::size_t parallel = 0;
  farm::FarmSpec spec;  // seed/stop/shards/retry filled from flags
};

std::uint64_t parse_u64(const std::string& text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  detail::require(!text.empty() && text[0] != '-' && end == text.c_str() + text.size() &&
                      errno != ERANGE,
                  std::string("bad value for ") + what + ": '" + text + "'");
  return static_cast<std::uint64_t>(v);
}

double parse_positive_double(const std::string& text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  detail::require(!text.empty() && end == text.c_str() + text.size() && errno != ERANGE &&
                      v > 0.0,
                  std::string("bad value for ") + what + ": '" + text + "'");
  return v;
}

Args parse_args(int argc, char** argv) {
  Args args;
  args.spec.stop.min_errors = 40;
  args.spec.stop.max_bits = 120000;
  args.spec.stop.max_trials = 100000;
  args.spec.shard_count = 2;

  detail::require(argc >= 2, "missing command (run/resume/merge/status/verify)");
  args.command = argv[1];

  auto next = [&](int& i, const char* flag) -> std::string {
    detail::require(i + 1 < argc, std::string(flag) + " needs a value");
    return argv[++i];
  };

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--file") args.spec_file = next(i, "--file");
    else if (arg == "--run-dir") args.run_dir = next(i, "--run-dir");
    else if (arg == "--shards")
      args.spec.shard_count = parse_u64(next(i, "--shards"), "--shards");
    else if (arg == "--seed") args.spec.seed = parse_u64(next(i, "--seed"), "--seed");
    else if (arg == "--fast") args.fast = true;
    else if (arg == "--min-errors")
      args.spec.stop.min_errors = parse_u64(next(i, "--min-errors"), "--min-errors");
    else if (arg == "--max-bits")
      args.spec.stop.max_bits = parse_u64(next(i, "--max-bits"), "--max-bits");
    else if (arg == "--max-trials")
      args.spec.stop.max_trials = parse_u64(next(i, "--max-trials"), "--max-trials");
    else if (arg == "--stop-metric") args.spec.stop.metric = next(i, "--stop-metric");
    else if (arg == "--workers-per-shard")
      args.spec.workers_per_shard =
          parse_u64(next(i, "--workers-per-shard"), "--workers-per-shard");
    else if (arg == "--channel-cache") args.spec.channel_cache_dir = next(i, "--channel-cache");
    else if (arg == "--progress") args.spec.progress = true;
    else if (arg == "--max-attempts") {
      args.spec.retry.max_attempts = parse_u64(next(i, "--max-attempts"), "--max-attempts");
      detail::require(args.spec.retry.max_attempts >= 1, "--max-attempts needs K >= 1");
    }
    else if (arg == "--timeout")
      args.spec.retry.timeout_s = parse_positive_double(next(i, "--timeout"), "--timeout");
    else if (arg == "--backoff")
      args.spec.retry.backoff_base_s =
          parse_positive_double(next(i, "--backoff"), "--backoff");
    else if (arg == "--backoff-max")
      args.spec.retry.backoff_max_s =
          parse_positive_double(next(i, "--backoff-max"), "--backoff-max");
    else if (arg == "--parallel")
      args.parallel = parse_u64(next(i, "--parallel"), "--parallel");
    else if (arg == "--worker") args.worker_binary = next(i, "--worker");
    else if (arg == "--out") args.out_path = next(i, "--out");
    else if (arg == "--allow-partial") args.allow_partial = true;
    else if (arg == "--quiet") args.quiet = true;
    else if (arg == "--help" || arg == "-h") std::exit(usage(stdout));
    else if (arg.rfind("--", 0) == 0)
      throw InvalidArgument("unknown option '" + arg + "'");
    else if (args.command == "run" && arg.find('=') != std::string::npos) {
      const auto eq = arg.find('=');
      args.overrides.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (args.command == "run" && args.scenario.empty()) {
      args.scenario = arg;
    } else {
      args.positional.push_back(arg);
    }
  }
  if (args.fast) args.spec.stop = sim::scale_stop(args.spec.stop, 4, 8);
  return args;
}

/// The uwb_sweep binary: --worker wins, else the sibling of this
/// executable, else bare "uwb_sweep" (PATH lookup).
std::string resolve_worker(const Args& args) {
  if (!args.worker_binary.empty()) return args.worker_binary;
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n > 0) {
    buffer[n] = '\0';
    std::string path(buffer);
    const auto slash = path.rfind('/');
    if (slash != std::string::npos) {
      return path.substr(0, slash + 1) + "uwb_sweep";
    }
  }
  return "uwb_sweep";
}

/// Last JSON heartbeat line in the shard's most recent attempt log, or ""
/// when the log is missing or carries no `{"progress"...}` lines (workers
/// only emit them when the farm ran with --progress).
std::string last_heartbeat(const farm::RunPaths& paths, const farm::ShardState& shard) {
  if (shard.attempts == 0) return "";
  std::ifstream in(paths.shard_log(shard.index, shard.attempts));
  if (!in.good()) return "";
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (line.rfind("{\"progress\"", 0) == 0) last = line;
  }
  return last;
}

void print_status(const farm::FarmSpec& spec, const farm::FarmState& state,
                  const farm::RunPaths& paths) {
  std::size_t done = 0;
  for (const farm::ShardState& shard : state.shards) {
    if (shard.status == farm::ShardStatus::kDone) ++done;
  }
  std::fprintf(stdout, "%s: %zu/%zu shards done (%zu points, seed %llu)\n",
               spec.scenario.c_str(), done, state.shards.size(), spec.num_points,
               static_cast<unsigned long long>(spec.seed));
  for (const farm::ShardState& shard : state.shards) {
    std::fprintf(stdout, "  shard %zu: %-7s attempts=%zu%s%s\n", shard.index,
                 farm::to_string(shard.status).c_str(), shard.attempts,
                 shard.last_outcome.empty() ? "" : "  ",
                 shard.last_outcome.c_str());
    if (shard.status == farm::ShardStatus::kDone) {
      std::fprintf(stdout, "           wall=%.1fs trials=%llu points=%llu\n",
                   shard.wall_s, static_cast<unsigned long long>(shard.trials),
                   static_cast<unsigned long long>(shard.points));
    } else {
      // Live/failed shards: surface the worker's own latest heartbeat.
      const std::string beat = last_heartbeat(paths, shard);
      if (!beat.empty()) std::fprintf(stdout, "           last: %s\n", beat.c_str());
    }
  }
}

/// Supervise + manifest + optional merge; shared by run and resume.
int finish_run(const Args& args, const farm::FarmSpec& spec, farm::FarmState& state,
               const farm::RunPaths& paths) {
  farm::LocalExecTransport transport;
  const farm::FarmRunReport report =
      farm::run_shards(spec, state, paths, transport, resolve_worker(args),
                       args.parallel, args.quiet);
  farm::write_farm_manifest(spec, state, paths);

  if (!report.complete()) {
    std::fprintf(stderr, "uwb_farm: %zu/%zu shards done, %zu failed for good\n",
                 report.done, state.shards.size(), report.failed);
    if (!args.out_path.empty() && args.allow_partial && report.done > 0) {
      farm::merge_run(spec, state, paths, args.out_path, /*allow_partial=*/true);
      std::fprintf(stderr, "uwb_farm: PARTIAL merge (%zu shards) -> %s\n",
                   report.done, args.out_path.c_str());
    } else if (!args.out_path.empty()) {
      std::fprintf(stderr,
                   "uwb_farm: refusing to merge an incomplete run without "
                   "--allow-partial; `uwb_farm resume %s` to retry\n",
                   paths.run_dir.c_str());
    }
    return farm::kExitRuntime;
  }

  if (!args.quiet) {
    std::fprintf(stderr, "uwb_farm: all %zu shards done\n", report.done);
  }
  if (!args.out_path.empty()) {
    farm::merge_run(spec, state, paths, args.out_path);
    std::fprintf(stderr, "uwb_farm: merged %zu shards -> %s\n", report.done,
                 args.out_path.c_str());
  }
  return farm::kExitOk;
}

int run_new(const Args& args) {
  detail::require(!args.run_dir.empty(), "run needs --run-dir");
  detail::require(!args.scenario.empty() || !args.spec_file.empty(),
                  "run needs a scenario name or --file");
  detail::require(args.scenario.empty() || args.spec_file.empty(),
                  "give either a scenario name or --file, not both");

  engine::ScenarioSpec scenario;
  try {
    if (!args.spec_file.empty()) {
      scenario = io::load_scenario_file(args.spec_file);
    } else {
      scenario = engine::ScenarioRegistry::global().make(args.scenario);
    }
    for (const auto& [axis, values] : args.overrides) {
      engine::restrict_scenario(scenario, axis, values);
    }
  } catch (const uwb::Error& e) {
    std::fprintf(stderr, "uwb_farm: %s\n", e.what());
    return farm::kExitSpecLoad;
  }

  const farm::RunPaths paths{args.run_dir};
  farm::FarmSpec spec = args.spec;
  spec.scenario = scenario.name;
  farm::init_run(scenario, spec, paths);
  if (!args.quiet) {
    std::fprintf(stderr, "uwb_farm: %zu points x %zu shards -> %s\n",
                 spec.num_points, spec.shard_count, args.run_dir.c_str());
  }
  farm::FarmState state = farm::load_farm_state(paths.state_json());
  return finish_run(args, spec, state, paths);
}

int run_resume(const Args& args) {
  detail::require(args.positional.size() == 1, "resume needs exactly one <run-dir>");
  const farm::RunPaths paths{args.positional.front()};
  farm::LoadedRun run = farm::load_run(paths);
  // --timeout may be tightened/loosened per invocation; plan identity
  // (scenario, seed, stop, shards) always comes from the checkpoint.
  if (args.spec.retry.timeout_s > 0.0) run.spec.retry.timeout_s = args.spec.retry.timeout_s;
  return finish_run(args, run.spec, run.state, paths);
}

int run_merge_cmd(const Args& args) {
  detail::require(args.positional.size() == 1, "merge needs exactly one <run-dir>");
  detail::require(!args.out_path.empty(), "merge needs --out");
  const farm::RunPaths paths{args.positional.front()};
  const farm::LoadedRun run = farm::load_run(paths);
  farm::merge_run(run.spec, run.state, paths, args.out_path, args.allow_partial);
  std::size_t done = 0;
  for (const farm::ShardState& shard : run.state.shards) {
    if (shard.status == farm::ShardStatus::kDone) ++done;
  }
  std::fprintf(stderr, "uwb_farm: merged %zu shards -> %s%s\n", done,
               args.out_path.c_str(),
               done == run.state.shards.size() ? "" : " (PARTIAL)");
  return done == run.state.shards.size() ? farm::kExitOk : farm::kExitRuntime;
}

int run_status(const Args& args) {
  detail::require(args.positional.size() == 1, "status needs exactly one <run-dir>");
  const farm::RunPaths paths{args.positional.front()};
  const farm::FarmSpec spec = farm::load_farm_spec(paths.farm_json());
  const farm::FarmState state = farm::load_farm_state(paths.state_json());
  print_status(spec, state, paths);
  return farm::kExitOk;
}

int run_verify(const Args& args) {
  detail::require(args.positional.size() == 2,
                  "verify needs <result.json> <expectations.json>");
  const farm::VerifyReport report =
      farm::verify_result_files(args.positional[0], args.positional[1]);
  if (!report.ok()) {
    for (const std::string& failure : report.failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
    }
    std::fprintf(stderr, "uwb_farm: %zu claim(s) violated (%zu checks)\n",
                 report.failures.size(), report.checks);
    return farm::kExitRuntime;
  }
  std::fprintf(stderr, "uwb_farm: all %zu checks passed\n", report.checks);
  return farm::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = parse_args(argc, argv);
    detail::require(args.command == "run" || args.command == "resume" ||
                        args.command == "merge" || args.command == "status" ||
                        args.command == "verify",
                    "unknown command '" + args.command + "'");
  } catch (const uwb::Error& e) {
    std::fprintf(stderr, "uwb_farm: %s\n", e.what());
    usage(stderr);
    return farm::kExitBadArgs;
  }
  try {
    if (args.command == "run") return run_new(args);
    if (args.command == "resume") return run_resume(args);
    if (args.command == "merge") return run_merge_cmd(args);
    if (args.command == "status") return run_status(args);
    return run_verify(args);
  } catch (const uwb::Error& e) {
    std::fprintf(stderr, "uwb_farm: %s\n", e.what());
    return farm::kExitRuntime;
  }
}
