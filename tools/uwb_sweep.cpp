// uwb_sweep: the sweep-engine CLI. One declarative entry point for every
// link scenario -- registry-built or loaded from a JSON spec file -- with
// process-level sharding on the engine's deterministic seeding contract.
//
//   uwb_sweep --list
//   uwb_sweep gen2_cm_grid --fast --workers 4 --out bench/results/grid.json
//   uwb_sweep gen2_cm_grid channel=CM3,CM4 ebn0_db=12 --shard 0/2
//   uwb_sweep gen2_cm_grid --dump-scenario spec.json
//   uwb_sweep --file spec.json --seed 7 --out run.json
//   uwb_sweep --merge s0.json s1.json --out merged.json
//   uwb_sweep precompute gen2_cm_grid --channel-ensemble 64 --channel-cache DIR
//   uwb_sweep gen2_cm_grid --channel-ensemble 64 --channel-cache DIR --out run.json
//
// Shard semantics: "--shard i/N" runs the points whose global plan index is
// congruent to i mod N. Seeding is keyed on the global index, so the N
// shards together measure exactly the unsharded point set, and merging
// their JSON outputs (--merge) reproduces the unsharded file byte for byte.
//
// Channel ensembles: "--channel-ensemble N" switches every multipath point
// to a shared N-realization channel ensemble (common random numbers across
// the Eb/N0/backend axes; trial i uses realization i % N). "precompute"
// materializes those ensembles into the binary store ("--channel-cache",
// default bench/results/channels) so sharded/remote runs load instead of
// regenerate -- results are byte-identical either way (docs/channel_cache.md).

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "engine/channel_cache.h"
#include "farm/exit_codes.h"
#include "farm/fault.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "io/cir_io.h"
#include "io/result_io.h"
#include "io/spec_io.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace {

using namespace uwb;

/// SIGINT/SIGTERM land here: the engine checks the flag between points
/// (and inside the trial loop), finishes winding down, and the normal exit
/// path flushes a valid partial result document plus its manifest. A
/// second signal during that wind-down still only sets the flag -- the
/// default-action escape hatch is SIGQUIT/SIGKILL.
std::atomic<bool> g_cancel{false};

extern "C" void handle_cancel_signal(int) {
  g_cancel.store(true, std::memory_order_relaxed);
}

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  uwb_sweep --list\n"
               "      List the registered scenarios.\n"
               "  uwb_sweep <scenario> [axis=value[,value...] ...] [options]\n"
               "      Run a registered scenario, optionally restricted to the given\n"
               "      axis values (unknown axes and unmatched values are errors).\n"
               "  uwb_sweep --file <spec.json> [axis=value ...] [options]\n"
               "      Run a scenario loaded from a JSON spec file.\n"
               "  uwb_sweep --merge <shard.json> <shard.json>... --out <path>\n"
               "      Merge shard result files into one document. Coverage must be\n"
               "      complete (no duplicate and no missing point indices) unless\n"
               "      --allow-partial is given.\n"
               "  uwb_sweep precompute <scenario|--file spec.json> [axis=value ...]\n"
               "      Materialize the scenario's channel ensembles into the binary\n"
               "      store (give --channel-ensemble N unless the spec already uses\n"
               "      ensemble-mode channel sources).\n"
               "\n"
               "options:\n"
               "  --workers N        worker threads (default: all cores)\n"
               "  --seed S           sweep seed (default: the engine default)\n"
               "  --shard i/N        run only points with index %% N == i\n"
               "  --fast             shrink the stopping rule (min_errors/4, max_bits/8)\n"
               "  --min-errors E, --max-bits B, --max-trials T\n"
               "                     stopping rule (defaults: 40, 120000, 100000)\n"
               "  --stop-metric M    count min-errors against failed trials of the\n"
               "                     named success-flag metric (e.g. timing_correct)\n"
               "                     instead of bit errors; every point must record M\n"
               "  --stop-ci W        replace the error budget with a CI-width target:\n"
               "                     a point stops once its 95%% CI half-width is at\n"
               "                     most W x its BER estimate (max-bits/max-trials\n"
               "                     stay as hard caps)\n"
               "  --adaptive-budget N\n"
               "                     after the base pass, spend up to N extra trials\n"
               "                     on whichever point has the widest relative CI\n"
               "                     (deterministic; incompatible with --shard)\n"
               "  --ci-method M      two-sided interval for unweighted points:\n"
               "                     clopper_pearson (default, exact) or wilson\n"
               "  --channel-ensemble N\n"
               "                     share one N-realization channel ensemble per CM\n"
               "                     profile instead of drawing fresh per trial\n"
               "  --channel-seed S   ensemble base seed (default: a fixed constant,\n"
               "                     so every host derives the same ensembles)\n"
               "  --channel-cache D  binary store directory consulted before\n"
               "                     generating (default for precompute:\n"
               "                     bench/results/channels)\n"
               "  --out PATH         write results to PATH (.json or .csv); a run\n"
               "                     manifest sidecar lands at PATH.run.json\n"
               "  --dump-scenario P  serialize the expanded scenario spec to P and,\n"
               "                     unless --out is also given, exit without sweeping\n"
               "  --trace PATH       record spans/counters from the engine, pool, and\n"
               "                     channel cache into a Chrome trace-event JSON at\n"
               "                     PATH (open in Perfetto); results are unchanged\n"
               "  --progress         live progress heartbeat on stderr (points done,\n"
               "                     trials/sec, errors, ETA)\n"
               "  --progress-interval SEC\n"
               "                     heartbeat interval (default 1.0; needs --progress)\n"
               "  --progress-format F\n"
               "                     heartbeat rendering: text (default) or json --\n"
               "                     one machine-readable object per line for\n"
               "                     supervisors like uwb_farm (implies --progress)\n"
               "  --profile          per-stage time/throughput attribution inside the\n"
               "                     links (tx/channel/frontend/ADC/sync/rake/demod/\n"
               "                     FFT): a stderr table after the run, stage tables\n"
               "                     in the manifest sidecar, and -- with --trace -- a\n"
               "                     Chrome counter track; results are unchanged\n"
               "  --allow-partial    (with --merge) accept coverage gaps and mark no\n"
               "                     error; duplicates are still rejected\n"
               "  --quiet            no console table, no end-of-run counter summary\n"
               "\n"
               "All diagnostics, progress, and summaries go to stderr; stdout carries\n"
               "only results (the console table, --list, and subcommand reports).\n"
               "\n"
               "exit codes:\n"
               "  0  success\n"
               "  1  runtime failure (I/O, internal error)\n"
               "  2  bad arguments / usage\n"
               "  3  scenario spec failed to load or validate\n"
               "  4  interrupted (SIGINT/SIGTERM); a valid partial result document\n"
               "     and its manifest (interrupted: true) were still flushed\n");
  return out == stdout ? farm::kExitOk : farm::kExitBadArgs;
}

struct Args {
  bool list = false;
  bool quiet = false;
  bool fast = false;
  bool precompute = false;
  bool progress = false;
  bool profile = false;
  bool allow_partial = false;
  double progress_interval_s = 1.0;
  obs::ProgressOptions::Format progress_format = obs::ProgressOptions::Format::kText;
  std::string scenario;
  std::string spec_file;
  std::vector<std::string> merge_inputs;
  std::vector<std::pair<std::string, std::string>> overrides;
  std::string out_path;
  std::string dump_scenario_path;
  std::string trace_path;
  std::size_t channel_ensemble = 0;  ///< 0 = leave the spec's channel sources alone
  std::optional<std::uint64_t> channel_seed;
  std::string channel_cache_dir;
  std::size_t adaptive_budget = 0;  ///< 0 = plain run (no adaptive top-up pass)
  engine::SweepConfig sweep;
};

std::uint64_t parse_u64(const std::string& text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  // strtoull silently wraps "-1" to 2^64-1; an explicit sign is an error.
  detail::require(!text.empty() && std::isdigit(static_cast<unsigned char>(text[0])) &&
                      end == text.c_str() + text.size() && errno != ERANGE,
                  std::string("bad value for ") + what + ": '" + text + "'");
  return static_cast<std::uint64_t>(v);
}

double parse_positive_double(const std::string& text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  detail::require(!text.empty() && end == text.c_str() + text.size() && errno != ERANGE &&
                      v > 0.0,
                  std::string("bad value for ") + what + ": '" + text + "'");
  return v;
}

void parse_shard(const std::string& text, engine::SweepConfig& sweep) {
  const auto slash = text.find('/');
  detail::require(slash != std::string::npos,
                  "--shard expects i/N, got '" + text + "'");
  sweep.shard_index = parse_u64(text.substr(0, slash), "--shard index");
  sweep.shard_count = parse_u64(text.substr(slash + 1), "--shard count");
  detail::require(sweep.shard_count >= 1 && sweep.shard_index < sweep.shard_count,
                  "--shard needs 0 <= i < N, got '" + text + "'");
}

Args parse_args(int argc, char** argv) {
  Args args;
  args.sweep.stop.min_errors = 40;
  args.sweep.stop.max_bits = 120000;
  args.sweep.stop.max_trials = 100000;

  auto next = [&](int& i, const char* flag) -> std::string {
    detail::require(i + 1 < argc, std::string(flag) + " needs a value");
    return argv[++i];
  };

  bool merging = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") args.list = true;
    else if (arg == "--quiet") args.quiet = true;
    else if (arg == "--fast") args.fast = true;
    else if (arg == "--file") args.spec_file = next(i, "--file");
    else if (arg == "--merge") merging = true;
    else if (arg == "--allow-partial") args.allow_partial = true;
    else if (arg == "--workers") args.sweep.workers = parse_u64(next(i, "--workers"), "--workers");
    else if (arg == "--seed") args.sweep.seed = parse_u64(next(i, "--seed"), "--seed");
    else if (arg == "--shard") parse_shard(next(i, "--shard"), args.sweep);
    else if (arg == "--min-errors")
      args.sweep.stop.min_errors = parse_u64(next(i, "--min-errors"), "--min-errors");
    else if (arg == "--max-bits")
      args.sweep.stop.max_bits = parse_u64(next(i, "--max-bits"), "--max-bits");
    else if (arg == "--max-trials")
      args.sweep.stop.max_trials = parse_u64(next(i, "--max-trials"), "--max-trials");
    else if (arg == "--stop-metric") args.sweep.stop.metric = next(i, "--stop-metric");
    else if (arg == "--stop-ci")
      args.sweep.stop.target_rel_ci_width =
          parse_positive_double(next(i, "--stop-ci"), "--stop-ci");
    else if (arg == "--adaptive-budget")
      args.adaptive_budget = parse_u64(next(i, "--adaptive-budget"), "--adaptive-budget");
    else if (arg == "--ci-method")
      args.sweep.ci_method = stats::ci_method_from_name(next(i, "--ci-method"));
    else if (arg == "--out") args.out_path = next(i, "--out");
    else if (arg == "--dump-scenario") args.dump_scenario_path = next(i, "--dump-scenario");
    else if (arg == "--trace") args.trace_path = next(i, "--trace");
    else if (arg == "--progress") args.progress = true;
    else if (arg == "--progress-interval")
      args.progress_interval_s =
          parse_positive_double(next(i, "--progress-interval"), "--progress-interval");
    else if (arg == "--progress-format") {
      const std::string format = next(i, "--progress-format");
      if (format == "text") args.progress_format = obs::ProgressOptions::Format::kText;
      else if (format == "json") args.progress_format = obs::ProgressOptions::Format::kJson;
      else throw InvalidArgument("--progress-format expects text or json, got '" + format + "'");
      args.progress = true;  // asking for a format implies wanting the heartbeat
    }
    else if (arg == "--profile") args.profile = true;
    else if (arg == "--channel-ensemble") {
      args.channel_ensemble = parse_u64(next(i, "--channel-ensemble"), "--channel-ensemble");
      detail::require(args.channel_ensemble >= 1, "--channel-ensemble needs N >= 1");
    }
    else if (arg == "--channel-seed")
      args.channel_seed = parse_u64(next(i, "--channel-seed"), "--channel-seed");
    else if (arg == "--channel-cache") args.channel_cache_dir = next(i, "--channel-cache");
    else if (arg == "--help" || arg == "-h") std::exit(usage(stdout));
    else if (arg.rfind("--", 0) == 0)
      throw InvalidArgument("unknown option '" + arg + "'");
    else if (merging) args.merge_inputs.push_back(arg);
    else if (arg == "precompute" && !args.precompute && args.scenario.empty())
      args.precompute = true;
    else if (arg.find('=') != std::string::npos) {
      const auto eq = arg.find('=');
      args.overrides.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else {
      detail::require(args.scenario.empty(),
                      "more than one scenario name given ('" + args.scenario +
                          "' and '" + arg + "')");
      args.scenario = arg;
    }
  }
  if (args.fast) {
    // Same scaling as the benches' fast mode (one shared clamped helper:
    // a small budget can never degenerate to zero).
    args.sweep.stop = sim::scale_stop(args.sweep.stop, 4, 8);
  }
  detail::require(!args.channel_seed.has_value() || args.channel_ensemble >= 1,
                  "--channel-seed needs --channel-ensemble");
  detail::require(!args.allow_partial || merging,
                  "--allow-partial only applies to --merge");
  detail::require(args.adaptive_budget == 0 || args.sweep.shard_count == 1,
                  "--adaptive-budget is incompatible with --shard (the allocator "
                  "must see every point's CI)");
  detail::require(args.scenario.empty() || args.spec_file.empty(),
                  "give either a scenario name or --file, not both");
  return args;
}

/// Human summary of a run's counters -- the ChannelCache/fft-plan/pool
/// numbers that were previously collected and dropped on the floor.
/// Printed to stderr so result piping stays clean.
void print_counter_summary(const obs::RunCounters& counters) {
  std::fprintf(stderr,
               "channel cache: %llu hits, %llu disk loads, %llu generated "
               "(%llu S-V draws) | fft plans: %llu hits, %llu built | "
               "pool: %zu workers, %llu tasks (%llu stolen), idle %.2fs | wall %.2fs\n",
               static_cast<unsigned long long>(counters.cache_hits),
               static_cast<unsigned long long>(counters.cache_disk_loads),
               static_cast<unsigned long long>(counters.cache_generated),
               static_cast<unsigned long long>(counters.cache_sv_draws),
               static_cast<unsigned long long>(counters.fft_plan_hits),
               static_cast<unsigned long long>(counters.fft_plan_misses),
               counters.pool.size(),
               static_cast<unsigned long long>(counters.pool_executed()),
               static_cast<unsigned long long>(counters.pool_stolen()),
               static_cast<double>(counters.pool_idle_us()) / 1e6, counters.wall_s);
}

/// Loads (--file) or expands (registry) the scenario, applies axis
/// restrictions, and -- with --channel-ensemble N -- switches every point
/// onto a shared N-realization channel ensemble.
engine::ScenarioSpec resolve_scenario(const Args& args) {
  engine::ScenarioSpec scenario;
  if (!args.spec_file.empty()) {
    scenario = io::load_scenario_file(args.spec_file);
  } else {
    scenario = engine::ScenarioRegistry::global().make(args.scenario);
  }
  for (const auto& [axis, values] : args.overrides) {
    engine::restrict_scenario(scenario, axis, values);
  }
  if (args.channel_ensemble >= 1) {
    txrx::ChannelSource source;
    source.mode = txrx::ChannelSource::Mode::kEnsemble;
    source.ensemble_count = args.channel_ensemble;
    if (args.channel_seed.has_value()) source.ensemble_seed = *args.channel_seed;
    for (engine::PointSpec& point : scenario.points) {
      point.link.options.channel_source = source;
    }
  }
  return scenario;
}

/// The distinct ensembles a plan resolves: one per (generation-adjusted CM
/// profile, seed, count) -- AWGN and fresh-draw points contribute none.
std::vector<std::pair<uwb::channel::SvParams, txrx::ChannelSource>> ensemble_groups(
    const engine::ScenarioSpec& scenario) {
  std::vector<std::pair<uwb::channel::SvParams, txrx::ChannelSource>> groups;
  for (const engine::PointSpec& point : scenario.points) {
    const txrx::ChannelSource& source = point.link.options.channel_source;
    if (!source.is_ensemble() || point.link.options.cm < 1) continue;
    uwb::channel::SvParams params =
        txrx::ensemble_sv_params(point.link.options.cm, point.link.generation());
    bool seen = false;
    for (const auto& [p, s] : groups) {
      if (engine::sv_fingerprint(p) == engine::sv_fingerprint(params) && s == source) {
        seen = true;
        break;
      }
    }
    if (!seen) groups.emplace_back(std::move(params), source);
  }
  return groups;
}

int run_precompute(const Args& args, const engine::ScenarioSpec& scenario) {
  const auto groups = ensemble_groups(scenario);
  detail::require(!groups.empty(),
                  "precompute: no ensemble-mode multipath points -- give "
                  "--channel-ensemble N or a spec whose channel_source is 'ensemble'");
  const std::string dir = args.channel_cache_dir.empty() ? io::default_channel_store_dir()
                                                         : args.channel_cache_dir;
  for (const auto& [params, source] : groups) {
    const engine::ChannelEnsemble ensemble =
        engine::make_ensemble(params, source.ensemble_seed, source.ensemble_count);
    const std::string stem = io::save_ensemble(ensemble, dir);
    std::fprintf(stderr, "%s: %zu realizations -> %s.{cir,json}\n", params.name.c_str(),
                 ensemble.realizations.size(), stem.c_str());
  }
  std::fprintf(stderr, "%zu ensemble(s) -> %s\n", groups.size(), dir.c_str());
  return 0;
}

int run_list() {
  const auto& registry = engine::ScenarioRegistry::global();
  for (const std::string& name : registry.names()) {
    const engine::ScenarioSpec spec = registry.make(name);
    std::printf("%-24s %3zu points  %s\n", name.c_str(), spec.points.size(),
                spec.description.c_str());
  }
  return 0;
}

int run_merge(const Args& args) {
  detail::require(args.merge_inputs.size() >= 2,
                  "--merge needs at least two input files");
  detail::require(!args.out_path.empty(), "--merge needs --out");
  std::vector<io::ResultDoc> shards;
  for (const std::string& path : args.merge_inputs) {
    std::ifstream in(path, std::ios::binary);
    detail::require(in.good(), "cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    shards.push_back(io::parse_result_json(buffer.str()));
  }
  const io::ResultDoc merged = io::merge_results(shards, args.allow_partial);
  std::ofstream out(args.out_path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), "cannot open '" + args.out_path + "' for writing");
  out << io::write_result_json(merged);
  detail::require(out.good(), "write to '" + args.out_path + "' failed");
  std::fprintf(stderr, "merged %zu shards (%zu points) -> %s\n", shards.size(),
               merged.points.size(), args.out_path.c_str());
  return 0;
}

int run_sweep(const Args& args, const engine::ScenarioSpec& scenario) {
  // Test-only fault hook (docs/farm.md): inert unless UWB_FARM_FAULT names
  // this worker's shard, in which case the process crashes, hangs, or
  // corrupts its output exactly where a real fault would strike --
  // after arguments and the spec resolved, before any result exists.
  farm::FaultInjector::from_env(args.sweep.shard_index).fire(args.out_path);

  if (!args.dump_scenario_path.empty()) {
    io::save_scenario_file(scenario, args.dump_scenario_path);
    std::fprintf(stderr, "scenario spec (%zu points) -> %s\n", scenario.points.size(),
                 args.dump_scenario_path.c_str());
    // Dump-only unless the caller also asked for results: the dump-then-
    // edit workflow must not spend minutes sweeping just to get a file.
    if (args.out_path.empty()) return 0;
  }

  engine::ConsoleTableSink console;
  std::optional<engine::JsonSink> json;
  std::optional<engine::CsvSink> csv;
  std::vector<engine::ResultSink*> sinks;
  if (!args.quiet) sinks.push_back(&console);
  if (!args.out_path.empty()) {
    const bool is_csv = args.out_path.size() >= 4 &&
                        args.out_path.compare(args.out_path.size() - 4, 4, ".csv") == 0;
    if (is_csv) {
      csv.emplace(args.out_path);
      sinks.push_back(&*csv);
    } else {
      json.emplace(args.out_path);
      sinks.push_back(&*json);
    }
  }

  // A per-invocation cache keeps the global one untouched; pointing it at
  // the binary store turns generation into loads (results are identical
  // either way -- the ensemble is a pure function of its key).
  engine::ChannelCache cache;
  if (!args.channel_cache_dir.empty()) cache.set_directory(args.channel_cache_dir);
  engine::SweepConfig sweep_config = args.sweep;
  sweep_config.channel_cache = &cache;

  // Telemetry is strictly observational: the result JSON/CSV bytes are
  // identical with tracing and progress on or off (tested + CI cmp).
  std::optional<obs::TraceRecorder> trace;
  if (!args.trace_path.empty()) trace.emplace();
  std::optional<obs::ProgressMeter> progress;
  if (args.progress) {
    obs::ProgressOptions options;
    options.interval_s = args.progress_interval_s;
    options.format = args.progress_format;
    progress.emplace(options);
  }
  std::optional<obs::StageProfiler> profiler;
  if (args.profile) profiler.emplace();
  sweep_config.trace = trace.has_value() ? &*trace : nullptr;
  sweep_config.progress = progress.has_value() ? &*progress : nullptr;
  sweep_config.profile = profiler.has_value() ? &*profiler : nullptr;

  // Cooperative interruption: SIGINT/SIGTERM set a flag the engine polls,
  // the sweep winds down at the next point boundary, and everything below
  // still runs -- so an interrupted run flushes a *valid* partial result
  // document (a prefix of completed points) plus a manifest that says so.
  sweep_config.cancel = &g_cancel;
  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);

  engine::SweepEngine engine(sweep_config);
  const engine::SweepResult result =
      args.adaptive_budget > 0 ? engine.run_adaptive(scenario, args.adaptive_budget, sinks)
                               : engine.run(scenario, sinks);

  if (trace.has_value()) {
    obs::write_chrome_trace(*trace, args.trace_path);
    std::fprintf(stderr, "trace: %zu events -> %s\n", trace->event_count(),
                 args.trace_path.c_str());
  }
  if (!args.out_path.empty()) {
    // The run-manifest sidecar carries everything deliberately left out of
    // the deterministic result file: resolved workers, per-point wall
    // time, counter totals, build flags.
    obs::RunManifest manifest;
    manifest.scenario = scenario.name;
    manifest.seed = sweep_config.seed;
    manifest.workers = result.counters.pool.size();
    manifest.shard_index = sweep_config.shard_index;
    manifest.shard_count = sweep_config.shard_count;
    manifest.stop = sweep_config.stop;
    manifest.result_path = args.out_path;
    manifest.trace_path = args.trace_path;
    manifest.interrupted = result.interrupted;
    manifest.build = obs::current_build_info();
    manifest.counters = result.counters;
    manifest.stages = result.stages;
    for (const engine::PointRecord& record : result.records) {
      obs::PointTiming timing;
      timing.index = record.index;
      timing.label = record.spec.label;
      timing.elapsed_s = record.elapsed_s;
      timing.trials = record.ber.trials;
      timing.bits = record.ber.bits;
      timing.errors = record.ber.errors;
      timing.stages = record.stages;
      manifest.points.push_back(std::move(timing));
    }
    const std::string manifest_path = obs::manifest_path_for(args.out_path);
    obs::write_run_manifest(manifest, manifest_path);
    std::fprintf(stderr, "%zu points -> %s (manifest: %s)\n", result.records.size(),
                 args.out_path.c_str(), manifest_path.c_str());
  }
  if (args.profile) {
    std::fprintf(stderr, "stage profile (run totals):\n");
    obs::print_stage_table(result.stages, stderr);
  }
  if (!args.quiet) print_counter_summary(result.counters);
  if (result.interrupted) {
    std::fprintf(stderr,
                 "uwb_sweep: interrupted after %zu of %zu points; partial "
                 "results flushed\n",
                 result.records.size(), scenario.points.size());
    return farm::kExitInterrupted;
  }
  return farm::kExitOk;
}

}  // namespace

// Exit-code contract (also in usage() and docs/cli.md): 0 success,
// 1 runtime failure, 2 bad arguments, 3 spec load/validation failure,
// 4 interrupted with a valid partial result flushed. The farm's retry
// classifier leans on this split: 2 and 3 are permanent, the rest
// transient.
int main(int argc, char** argv) {
  Args args;
  try {
    args = parse_args(argc, argv);
  } catch (const uwb::Error& e) {
    std::fprintf(stderr, "uwb_sweep: %s\n", e.what());
    return farm::kExitBadArgs;
  }
  try {
    if (args.list) return run_list();
    if (!args.merge_inputs.empty()) return run_merge(args);
    if (args.scenario.empty() && args.spec_file.empty()) return usage(stderr);
    engine::ScenarioSpec scenario;
    try {
      scenario = resolve_scenario(args);
    } catch (const uwb::Error& e) {
      std::fprintf(stderr, "uwb_sweep: %s\n", e.what());
      return farm::kExitSpecLoad;
    }
    if (args.precompute) return run_precompute(args, scenario);
    return run_sweep(args, scenario);
  } catch (const uwb::Error& e) {
    std::fprintf(stderr, "uwb_sweep: %s\n", e.what());
    return farm::kExitRuntime;
  }
}
