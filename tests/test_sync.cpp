// Tests for acquisition and tracking: correlator bank, coarse acquisition
// state machine, early-late DLL.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "channel/awgn.h"
#include "common/rng.h"
#include "phy/scrambler.h"
#include "sync/acquisition.h"
#include "sync/correlator_bank.h"
#include "sync/tracking.h"

namespace uwb::sync {
namespace {

CplxVec pn_template(std::size_t oversample = 1) {
  const auto chips = phy::to_chips(phy::msequence(6));  // 63 chips
  CplxVec tmpl;
  tmpl.reserve(chips.size() * oversample);
  for (double c : chips) {
    for (std::size_t k = 0; k < oversample; ++k) tmpl.emplace_back(c, 0.0);
  }
  return tmpl;
}

CplxVec embed(const CplxVec& tmpl, std::size_t offset, std::size_t total, double scale = 1.0) {
  CplxVec x(total, cplx{});
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[offset + i] = scale * tmpl[i];
  return x;
}

// -------------------------------------------------------- correlator bank ----

TEST(CorrelatorBank, FindsPhaseCleanly) {
  const CplxVec tmpl = pn_template();
  const CplxVec x = embed(tmpl, 40, 300);
  CorrelatorBankConfig config;
  config.parallelism = 8;
  config.threshold = 0.5;
  const CorrelatorBank bank(config);
  const SearchResult sr = bank.search(x, tmpl, 200);
  EXPECT_TRUE(sr.threshold_crossed);
  EXPECT_EQ(sr.best.phase, 40u);
  EXPECT_NEAR(sr.best.metric, 1.0, 1e-9);
}

TEST(CorrelatorBank, EarlyTerminationSavesDwells) {
  const CplxVec tmpl = pn_template();
  const CplxVec x = embed(tmpl, 10, 400);
  CorrelatorBankConfig config;
  config.parallelism = 4;
  config.threshold = 0.5;
  const CorrelatorBank bank(config);
  const SearchResult sr = bank.search(x, tmpl, 300);
  // Found in the dwell covering phase 10: 3 dwells of 4 phases.
  EXPECT_TRUE(sr.threshold_crossed);
  EXPECT_EQ(sr.dwells, 3u);
  EXPECT_LE(sr.phases_evaluated, 12u);
}

TEST(CorrelatorBank, ParallelismDividesDwells) {
  const CplxVec tmpl = pn_template();
  // No signal: full search.
  Rng rng(1);
  CplxVec x(400);
  for (auto& v : x) v = rng.cgaussian(0.01);
  for (std::size_t p : {1u, 4u, 16u}) {
    CorrelatorBankConfig config;
    config.parallelism = p;
    config.threshold = 0.99;
    const CorrelatorBank bank(config);
    const SearchResult sr = bank.search(x, tmpl, 299);
    EXPECT_FALSE(sr.threshold_crossed);
    EXPECT_EQ(sr.dwells, (300 + p - 1) / p) << "P=" << p;
  }
}

TEST(CorrelatorBank, ExhaustiveFindsGlobalBest) {
  const CplxVec tmpl = pn_template();
  // A partial (half-overlap) copy early and a full copy later: normalized
  // correlation scores the full copy higher; exhaustive must pick it.
  CplxVec x(500, cplx{});
  for (std::size_t i = 0; i < tmpl.size() / 2; ++i) x[20 + i] = tmpl[i];
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[200 + i] += tmpl[i];
  CorrelatorBankConfig config;
  config.parallelism = 8;
  config.threshold = 0.5;
  const CorrelatorBank bank(config);
  EXPECT_EQ(bank.search_exhaustive(x, tmpl, 400).best.phase, 200u);
  EXPECT_NEAR(bank.search_exhaustive(x, tmpl, 400).best.metric, 1.0, 1e-9);
}

TEST(CorrelatorBank, RejectsBadConfig) {
  EXPECT_THROW(CorrelatorBank({0, 0.5}), InvalidArgument);
  EXPECT_THROW(CorrelatorBank({4, 1.5}), InvalidArgument);
}

// ------------------------------------------------------------ acquisition ----

TEST(CoarseAcquisition, LocksOnCleanSignal) {
  const CplxVec tmpl = pn_template(4);
  // Build preamble with 3 periods so verification passes have material.
  CplxVec x(tmpl.size() * 4 + 100, cplx{});
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      x[37 + rep * tmpl.size() + i] += tmpl[i];
    }
  }
  AcquisitionConfig config;
  config.bank.parallelism = 16;
  config.bank.threshold = 0.5;
  config.verify_passes = 2;
  const CoarseAcquisition acq(config);
  const AcquisitionResult result = acq.acquire(x, tmpl, 120, 2e9);
  EXPECT_TRUE(result.acquired);
  EXPECT_EQ(result.timing_offset, 37u);
  EXPECT_GT(result.sync_time_s, 0.0);
}

TEST(CoarseAcquisition, SurvivesModerateNoise) {
  Rng rng(2);
  const CplxVec tmpl = pn_template(4);
  CplxVec x(tmpl.size() * 4 + 100, cplx{});
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      x[50 + rep * tmpl.size() + i] += tmpl[i];
    }
  }
  channel::add_awgn(x, 1.0, rng);  // 0 dB per-sample SNR; PN gain ~ 24 dB
  AcquisitionConfig config;
  config.bank.parallelism = 16;
  config.bank.threshold = 0.3;
  config.verify_threshold = 0.25;
  const CoarseAcquisition acq(config);
  const AcquisitionResult result = acq.acquire(x, tmpl, 120, 2e9);
  EXPECT_TRUE(result.acquired);
  EXPECT_NEAR(static_cast<double>(result.timing_offset), 50.0, 2.0);
}

TEST(CoarseAcquisition, NoSignalNoLock) {
  Rng rng(3);
  const CplxVec tmpl = pn_template(4);
  CplxVec x(2000);
  for (auto& v : x) v = rng.cgaussian(1.0);
  AcquisitionConfig config;
  config.bank.threshold = 0.6;
  const CoarseAcquisition acq(config);
  const AcquisitionResult result = acq.acquire(x, tmpl, 1500, 2e9);
  EXPECT_FALSE(result.acquired);
}

TEST(CoarseAcquisition, SyncTimeScalesWithParallelism) {
  Rng rng(4);
  const CplxVec tmpl = pn_template(2);
  CplxVec x(3000);
  for (auto& v : x) v = rng.cgaussian(0.01);
  double prev_time = 1e9;
  for (std::size_t p : {1u, 8u, 64u}) {
    AcquisitionConfig config;
    config.bank.parallelism = p;
    config.bank.threshold = 0.95;
    const CoarseAcquisition acq(config);
    const AcquisitionResult r = acq.acquire(x, tmpl, 2000, 2e9);
    EXPECT_LT(r.sync_time_s, prev_time) << "P=" << p;
    prev_time = r.sync_time_s;
  }
}

// -------------------------------------------------------------------- dll ----

TEST(Dll, DetectsLateTiming) {
  // Signal actually at phase 52, punctual guess 50 -> loop must move +.
  const CplxVec tmpl = pn_template(4);
  CplxVec x(tmpl.size() + 200, cplx{});
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[52 + i] = tmpl[i];
  DllConfig config;
  config.gain = 0.5;
  config.early_late_gap = 2;
  DelayLockedLoop dll(config);
  double correction = 0.0;
  for (int iter = 0; iter < 10; ++iter) {
    correction = dll.update(x, tmpl, 50).correction;
  }
  EXPECT_GT(correction, 0.8);
  EXPECT_EQ(dll.corrected_phase(50), 52u);
}

TEST(Dll, StaysPutWhenAligned) {
  const CplxVec tmpl = pn_template(4);
  CplxVec x(tmpl.size() + 100, cplx{});
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[50 + i] = tmpl[i];
  DelayLockedLoop dll(DllConfig{});
  for (int iter = 0; iter < 5; ++iter) (void)dll.update(x, tmpl, 50);
  EXPECT_NEAR(dll.correction(), 0.0, 0.3);
}

TEST(Dll, CorrectionIsClamped) {
  const CplxVec tmpl = pn_template(4);
  CplxVec x(tmpl.size() + 300, cplx{});
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[80 + i] = tmpl[i];
  DllConfig config;
  config.gain = 10.0;  // absurd gain to force the clamp
  config.max_correction = 3.0;
  DelayLockedLoop dll(config);
  for (int iter = 0; iter < 20; ++iter) (void)dll.update(x, tmpl, 50);
  EXPECT_LE(std::abs(dll.correction()), 3.0);
}

TEST(Dll, ResetClears) {
  const CplxVec tmpl = pn_template(2);
  CplxVec x(tmpl.size() + 100, cplx{});
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[55 + i] = tmpl[i];
  DelayLockedLoop dll(DllConfig{});
  (void)dll.update(x, tmpl, 50);
  dll.reset();
  EXPECT_DOUBLE_EQ(dll.correction(), 0.0);
}

}  // namespace
}  // namespace uwb::sync
