// Tests for channel estimation (with the paper's 4-bit tap precision),
// the spectral monitor, and SNR estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "channel/awgn.h"
#include "channel/cir.h"
#include "channel/interferer.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "estimation/channel_estimator.h"
#include "estimation/snr_estimator.h"
#include "estimation/spectral_monitor.h"
#include "phy/scrambler.h"

namespace uwb::estimation {
namespace {

/// Builds a BPSK PN "preamble waveform" (one sample per chip) and passes it
/// through a known two-tap channel.
struct Sounding {
  CplxVec tmpl;
  CplxWaveform rx;
  channel::Cir truth;
};

Sounding make_sounding(double n0, Rng& rng, std::size_t delay = 12) {
  Sounding s;
  const auto chips = phy::to_chips(phy::msequence(8));  // 255 chips
  s.tmpl.reserve(chips.size());
  for (double c : chips) s.tmpl.emplace_back(c, 0.0);

  s.truth = channel::Cir({{0.0, {0.9, 0.0}}, {5e-9, {0.0, -0.45}}, {11e-9, {0.2, 0.1}}});
  const double fs = 1e9;
  CplxWaveform clean(CplxVec(s.tmpl.size() + 64, cplx{}), fs);
  for (std::size_t i = 0; i < s.tmpl.size(); ++i) clean[delay + i] = s.tmpl[i];
  s.rx = s.truth.apply(clean);
  if (n0 > 0.0) channel::add_awgn(s.rx, n0, rng);
  return s;
}

// ------------------------------------------------------ channel estimator ----

TEST(ChannelEstimator, RecoversTapsNoiseless) {
  Rng rng(1);
  const Sounding s = make_sounding(0.0, rng);
  ChannelEstimatorConfig config;
  config.quantization_bits = 0;  // float reference
  config.tap_threshold_db = -20.0;
  const ChannelEstimator est(config);
  const ChannelEstimate result = est.estimate(s.rx, s.tmpl, 0);

  ASSERT_FALSE(result.cir.empty());
  EXPECT_EQ(result.reference_offset, 12u);  // strongest path location
  // Tap delays recovered at 0, 5, 11 ns.
  ASSERT_EQ(result.cir.num_taps(), 3u);
  EXPECT_NEAR(result.cir.taps()[0].delay_s, 0.0, 1e-12);
  EXPECT_NEAR(result.cir.taps()[1].delay_s, 5e-9, 1e-12);
  EXPECT_NEAR(result.cir.taps()[2].delay_s, 11e-9, 1e-12);
  // Gains proportional to the truth (overall scale = peak magnitude).
  const double ratio = std::abs(result.cir.taps()[1].gain) / std::abs(result.cir.taps()[0].gain);
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(ChannelEstimator, QuantizationLimitsPrecision) {
  Rng rng(2);
  const Sounding s = make_sounding(0.0, rng);
  ChannelEstimatorConfig fine;
  fine.quantization_bits = 0;
  ChannelEstimatorConfig coarse;
  coarse.quantization_bits = 2;
  const ChannelEstimate f = ChannelEstimator(fine).estimate(s.rx, s.tmpl, 0);
  const ChannelEstimate c = ChannelEstimator(coarse).estimate(s.rx, s.tmpl, 0);
  // Coarse taps take at most 2^2 distinct magnitudes per rail; quantization
  // error vs the float estimate must be visible but bounded by one step.
  ASSERT_FALSE(c.cir.empty());
  const double step = 2.0 / (1 << 2);
  for (std::size_t i = 0; i < std::min(c.cir.num_taps(), f.cir.num_taps()); ++i) {
    const double err =
        std::abs(c.cir.taps()[i].gain - f.cir.taps()[i].gain) / f.peak_magnitude;
    EXPECT_LE(err, step) << "tap " << i;
  }
}

TEST(ChannelEstimator, FourBitTapsCloseToFloat) {
  // The paper's operating point: 4-bit taps should track the float
  // estimate within a half step of the 4-bit grid.
  Rng rng(3);
  const Sounding s = make_sounding(1e-2, rng);
  ChannelEstimatorConfig four;
  four.quantization_bits = 4;
  const ChannelEstimate q = ChannelEstimator(four).estimate(s.rx, s.tmpl, 0);
  ChannelEstimatorConfig flt;
  flt.quantization_bits = 0;
  const ChannelEstimate f = ChannelEstimator(flt).estimate(s.rx, s.tmpl, 0);
  ASSERT_GE(q.cir.num_taps(), 2u);
  // Per-component error <= step/2, except a full-scale +1 component which
  // clamps to the top two's-complement level (1 - step): allow one step
  // plus the complex combination margin.
  const double step = 2.0 / (1 << 4);
  const double rel_err =
      std::abs(q.cir.taps()[0].gain - f.cir.taps()[0].gain) / f.peak_magnitude;
  EXPECT_LE(rel_err, 1.2 * step);
}

TEST(ChannelEstimator, QuantizeTapGrid) {
  ChannelEstimatorConfig config;
  config.quantization_bits = 3;  // 8 levels, step 0.25 over [-1, 1]
  const ChannelEstimator est(config);
  const cplx q = est.quantize_tap({0.3, -0.6}, 1.0);
  EXPECT_NEAR(q.real(), 0.25, 1e-12);
  EXPECT_NEAR(q.imag(), -0.5, 1e-12);
  // Zero-bit config = pass-through.
  ChannelEstimatorConfig raw;
  raw.quantization_bits = 0;
  EXPECT_EQ(ChannelEstimator(raw).quantize_tap({0.3, -0.6}, 1.0), (cplx{0.3, -0.6}));
}

TEST(ChannelEstimator, MaxTapsCap) {
  Rng rng(4);
  const Sounding s = make_sounding(0.0, rng);
  ChannelEstimatorConfig config;
  config.max_taps = 1;
  const ChannelEstimate result = ChannelEstimator(config).estimate(s.rx, s.tmpl, 0);
  EXPECT_EQ(result.cir.num_taps(), 1u);
}

TEST(ChannelEstimator, SurvivesNoise) {
  Rng rng(5);
  const Sounding s = make_sounding(0.5, rng);  // noisy sounding
  ChannelEstimatorConfig config;
  config.quantization_bits = 4;
  config.tap_threshold_db = -12.0;
  const ChannelEstimate result = ChannelEstimator(config).estimate(s.rx, s.tmpl, 0);
  ASSERT_FALSE(result.cir.empty());
  // The strongest path must still be found at the right place.
  EXPECT_NEAR(static_cast<double>(result.reference_offset), 12.0, 1.0);
}

TEST(ChannelEstimator, SymbolTapsReferencePeak) {
  Rng rng(21);
  const Sounding s = make_sounding(0.0, rng);
  ChannelEstimatorConfig config;
  config.quantization_bits = 0;
  const ChannelEstimator est(config);
  const ChannelEstimate result = est.estimate(s.rx, s.tmpl, 0);
  // g[0] is the peak tap itself; with sps = 5 samples, g[1] must pick the
  // 5 ns tap (|0.45| relative to |0.9|).
  const auto g = est.symbol_taps(result, 5, 2);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_NEAR(std::abs(g[0]), result.peak_magnitude, 1e-9);
  EXPECT_NEAR(std::abs(g[1]) / std::abs(g[0]), 0.5, 0.05);
}

TEST(ChannelEstimator, SymbolTapsQuantized) {
  Rng rng(22);
  const Sounding s = make_sounding(0.0, rng);
  ChannelEstimatorConfig config;
  config.quantization_bits = 2;  // very coarse
  const ChannelEstimator est(config);
  const ChannelEstimate result = est.estimate(s.rx, s.tmpl, 0);
  const auto g = est.symbol_taps(result, 5, 2);
  // Components land on the 2-bit grid (step 0.5 of the peak).
  for (const auto& tap : g) {
    const double re = tap.real() / result.peak_magnitude;
    EXPECT_NEAR(re, std::round(re * 2.0) / 2.0, 1e-9);
  }
}

// -------------------------------------------------------- spectral monitor ----

TEST(SpectralMonitor, DetectsStrongTone) {
  Rng rng(6);
  const double fs = 1e9;
  CplxVec x(8192);
  for (auto& v : x) v = rng.cgaussian(1.0);  // broadband "UWB-like" floor
  channel::InterfererSpec spec;
  spec.freq_offset_hz = 137e6;
  spec.power = 20.0;  // 13 dB above the floor
  const channel::Interferer intf(spec);
  const CplxVec tone = intf.generate(x.size(), fs, rng);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += tone[i];

  SpectralMonitorConfig config;
  config.fft_size = 1024;
  config.detect_threshold_db = 10.0;
  const SpectralMonitor monitor(config);
  const InterfererReport report = monitor.analyze(CplxWaveform(x, fs));
  EXPECT_TRUE(report.detected);
  EXPECT_NEAR(report.frequency_hz, 137e6, 2.0 * fs / 1024.0);
}

TEST(SpectralMonitor, FrequencyAccuracySubBin) {
  const double fs = 1e9;
  // Tone between bins: 100.37 MHz with 1024-point FFT (bin ~0.977 MHz).
  const double f0 = 100.37e6;
  CplxVec x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::polar(3.0, two_pi * f0 * static_cast<double>(i) / fs);
  }
  Rng rng(7);
  channel::add_awgn(x, 0.01, rng);
  const SpectralMonitor monitor(SpectralMonitorConfig{});
  const InterfererReport report = monitor.analyze(CplxWaveform(x, fs));
  ASSERT_TRUE(report.detected);
  EXPECT_NEAR(report.frequency_hz, f0, 0.3e6);  // sub-bin via interpolation
}

TEST(SpectralMonitor, QuietOnFlatSpectrum) {
  Rng rng(8);
  CplxVec x(8192);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const SpectralMonitor monitor(SpectralMonitorConfig{});
  const InterfererReport report = monitor.analyze(CplxWaveform(x, 1e9));
  EXPECT_FALSE(report.detected);
}

TEST(SpectralMonitor, NegativeFrequencyInterferer) {
  Rng rng(9);
  const double fs = 1e9;
  CplxVec x(8192);
  for (auto& v : x) v = rng.cgaussian(0.5);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += std::polar(4.0, two_pi * (-220e6) * static_cast<double>(i) / fs);
  }
  const SpectralMonitor monitor(SpectralMonitorConfig{});
  const InterfererReport report = monitor.analyze(CplxWaveform(x, fs));
  ASSERT_TRUE(report.detected);
  EXPECT_NEAR(report.frequency_hz, -220e6, 2e6);
}

TEST(SpectralMonitor, RejectsShortCapture) {
  const SpectralMonitor monitor(SpectralMonitorConfig{});
  EXPECT_THROW((void)monitor.analyze(CplxWaveform(CplxVec(100), 1e9)), Error);
}

// ---------------------------------------------------------- snr estimator ----

TEST(SnrEstimator, DataAidedAccuracy) {
  Rng rng(10);
  for (double snr_db : {0.0, 6.0, 12.0}) {
    const double snr = from_db(snr_db);
    const double sigma = std::sqrt(1.0 / snr);
    std::vector<double> soft(20000);
    for (auto& v : soft) v = 1.0 + rng.gaussian(0.0, sigma);
    const double est_db = to_db(snr_data_aided(soft));
    EXPECT_NEAR(est_db, snr_db, 0.5) << "snr=" << snr_db;
  }
}

TEST(SnrEstimator, M2M4BlindAccuracy) {
  Rng rng(11);
  const double snr_db = 8.0;
  const double sigma = std::sqrt(1.0 / from_db(snr_db));
  std::vector<double> soft(50000);
  for (auto& v : soft) v = (rng.bit() ? -1.0 : 1.0) + rng.gaussian(0.0, sigma);
  EXPECT_NEAR(to_db(snr_m2m4(soft)), snr_db, 1.0);
}

TEST(SnrEstimator, NoiseFloor) {
  Rng rng(12);
  CplxVec quiet(10000);
  for (auto& v : quiet) v = rng.cgaussian(0.3);
  EXPECT_NEAR(noise_floor(quiet), 0.3, 0.02);
}

}  // namespace
}  // namespace uwb::estimation
