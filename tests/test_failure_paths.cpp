// Failure-injection and edge-path tests: the receivers and estimators must
// degrade gracefully -- report "not acquired" / empty results -- rather
// than crash or fabricate data when their inputs are hostile.

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "common/error.h"
#include "common/rng.h"
#include "estimation/channel_estimator.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace uwb {
namespace {

// ------------------------------------------------------------- receivers ----

TEST(FailurePaths, Gen2NoiseOnlyCaptureDoesNotFalselyDecode) {
  // Pure noise in, no packet: the receiver must not report a healthy frame.
  txrx::Gen2Config config = sim::gen2_fast();
  Rng rng(1);
  txrx::Gen2Receiver receiver(config, rng);
  const txrx::Gen2Transmitter tx(config);

  // Build a reference frame purely for the layout bookkeeping.
  Rng tx_rng(2);
  auto [wave, frame] = tx.transmit(tx_rng.bits(64));

  CplxWaveform noise(wave.size(), config.analog_fs);
  channel::add_awgn(noise, 1.0, rng);

  txrx::Gen2RxOptions options;
  options.noise_variance = 1.0;
  const auto result = receiver.receive(noise, tx, frame, options, rng);
  // Either it fails to acquire, or whatever it "decodes" is garbage (half
  // the bits wrong on average); both are acceptable, silence is not.
  if (result.acquired) {
    EXPECT_GT(result.bit_errors, result.bits_compared / 4);
  } else {
    EXPECT_EQ(result.bits_compared, 0u);
  }
}

TEST(FailurePaths, Gen2TruncatedCaptureNotAcquired) {
  txrx::Gen2Config config = sim::gen2_fast();
  Rng rng(3);
  txrx::Gen2Receiver receiver(config, rng);
  const txrx::Gen2Transmitter tx(config);
  Rng tx_rng(4);
  auto [wave, frame] = tx.transmit(tx_rng.bits(64));

  // Hand the receiver only a sliver of the packet.
  const CplxWaveform sliver = wave.slice(0, 200);
  txrx::Gen2RxOptions options;
  const auto result = receiver.receive(sliver, tx, frame, options, rng);
  EXPECT_FALSE(result.acquired);
  EXPECT_EQ(result.bits_compared, 0u);
}

TEST(FailurePaths, Gen1TooShortCaptureReportsNoLock) {
  txrx::Gen1Config config = sim::gen1_nominal();
  Rng rng(5);
  txrx::Gen1Receiver receiver(config, rng);
  const txrx::Gen1Transmitter tx(config);

  // A capture shorter than one stage-2 window cannot be searched.
  RealWaveform stub(RealVec(50000, 0.0), config.analog_fs);
  const auto acq = receiver.acquire(stub, tx, rng);
  EXPECT_FALSE(acq.acquired);
}

TEST(FailurePaths, Gen2MistunedNotchOnlyCostsMargin) {
  // A notch placed far from the signal band must not break the link.
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::Gen2Link link(config, 6);
  link.receiver().mutable_config();  // (no-op touch: knobs stay valid)

  txrx::TrialOptions options;
  options.payload_bits = 200;
  options.ebn0_db = 16.0;
  // Interferer reported far out of band by forcing auto-notch with a tone
  // at the band edge.
  options.interferer = true;
  options.interferer_freq_hz = 420e6;
  options.interferer_sir_db = -10.0;
  options.auto_notch = true;
  std::size_t bits = 0, errors = 0;
  for (int p = 0; p < 4; ++p) {
    const auto trial = link.run_packet(options);
    bits += trial.bits;
    errors += trial.errors;
  }
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(bits), 0.05);
}

// ------------------------------------------------------------- estimation ----

TEST(FailurePaths, EstimatorOnSilenceReturnsEmpty) {
  estimation::ChannelEstimatorConfig config;
  const estimation::ChannelEstimator est(config);
  CplxWaveform silence(CplxVec(2000, cplx{}), 1e9);
  CplxVec tmpl(500, cplx{1.0, 0.0});
  const auto result = est.estimate(silence, tmpl, 0);
  EXPECT_TRUE(result.cir.empty());
  EXPECT_DOUBLE_EQ(result.peak_magnitude, 0.0);
}

TEST(FailurePaths, EstimatorRejectsDegenerateInputs) {
  estimation::ChannelEstimatorConfig config;
  const estimation::ChannelEstimator est(config);
  const CplxWaveform x(CplxVec(100, cplx{1.0, 0.0}), 1e9);
  EXPECT_THROW((void)est.estimate(x, CplxVec{}, 0), Error);             // empty template
  EXPECT_THROW((void)est.estimate(x, CplxVec(200, cplx{1.0, 0.0}), 0),  // template > buffer
               Error);
}

TEST(FailurePaths, SymbolTapsOnEmptyEstimateAreZero) {
  estimation::ChannelEstimatorConfig config;
  const estimation::ChannelEstimator est(config);
  estimation::ChannelEstimate empty;
  const auto g = est.symbol_taps(empty, 10, 3);
  ASSERT_EQ(g.size(), 4u);
  for (const auto& tap : g) EXPECT_EQ(tap, cplx{});
}

// ---------------------------------------------------------------- configs ----

TEST(FailurePaths, ReceiverRejectsInconsistentRates) {
  txrx::Gen2Config config = sim::gen2_fast();
  config.adc_rate = 8e9;  // above the analog rate
  Rng rng(7);
  EXPECT_THROW(txrx::Gen2Receiver(config, rng), Error);

  txrx::Gen1Config g1 = sim::gen1_nominal();
  g1.analog_fs = 1e9;  // below the ADC rate
  EXPECT_THROW(txrx::Gen1Receiver(g1, rng), Error);
}

TEST(FailurePaths, LinkCountsLostPacketsAsErrored) {
  // At absurdly low SNR the packet is lost; the accounting must charge
  // every bit rather than silently skipping the trial.
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::Gen2Link link(config, 8);
  txrx::TrialOptions options;
  options.payload_bits = 100;
  options.ebn0_db = -30.0;
  const auto trial = link.run_packet(options);
  EXPECT_GT(trial.bits, 0u);
  EXPECT_GT(trial.errors, trial.bits / 4);
}

}  // namespace
}  // namespace uwb
