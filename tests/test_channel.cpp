// Tests for the channel models: CIR container, Saleh-Valenzuela CM1-CM4,
// AWGN calibration, interferers, antenna model, path loss.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "channel/antenna.h"
#include "channel/awgn.h"
#include "channel/cir.h"
#include "channel/interferer.h"
#include "channel/path_loss.h"
#include "channel/saleh_valenzuela.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "dsp/power_spectrum.h"

namespace uwb::channel {
namespace {

// ------------------------------------------------------------------ cir ----

TEST(Cir, SortsAndMeasures) {
  Cir cir({{20e-9, {0.5, 0.0}}, {0.0, {1.0, 0.0}}});
  ASSERT_EQ(cir.num_taps(), 2u);
  EXPECT_DOUBLE_EQ(cir.taps()[0].delay_s, 0.0);  // sorted by delay
  EXPECT_DOUBLE_EQ(cir.total_energy(), 1.25);
  EXPECT_DOUBLE_EQ(cir.max_delay(), 20e-9);
  // Mean excess delay: (0*1 + 20ns*0.25)/1.25 = 4 ns.
  EXPECT_NEAR(cir.mean_excess_delay(), 4e-9, 1e-15);
}

TEST(Cir, RmsDelaySpreadTwoTap) {
  // Equal-power taps at 0 and 2 tau: rms spread = tau.
  Cir cir({{0.0, {1.0, 0.0}}, {20e-9, {1.0, 0.0}}});
  EXPECT_NEAR(cir.rms_delay_spread(), 10e-9, 1e-15);
}

TEST(Cir, NormalizeEnergy) {
  Cir cir({{0.0, {3.0, 0.0}}, {5e-9, {0.0, 4.0}}});
  cir.normalize_energy();
  EXPECT_NEAR(cir.total_energy(), 1.0, 1e-12);
}

TEST(Cir, StrongestAndCapture) {
  Cir cir({{0.0, {1.0, 0.0}}, {1e-9, {2.0, 0.0}}, {2e-9, {0.5, 0.0}}});
  const Cir top1 = cir.strongest(1);
  ASSERT_EQ(top1.num_taps(), 1u);
  EXPECT_DOUBLE_EQ(std::abs(top1.taps()[0].gain), 2.0);
  EXPECT_NEAR(cir.energy_capture(1), 4.0 / 5.25, 1e-12);
  EXPECT_NEAR(cir.energy_capture(3), 1.0, 1e-12);
}

TEST(Cir, TruncatedDropsWeakTaps) {
  Cir cir({{0.0, {1.0, 0.0}}, {1e-9, {0.005, 0.0}}});
  const Cir kept = cir.truncated(-40.0);
  EXPECT_EQ(kept.num_taps(), 1u);
}

TEST(Cir, SampledBinsTaps) {
  const double fs = 1e9;
  Cir cir({{0.0, {1.0, 0.0}}, {3e-9, {0.5, 0.0}}});
  const CplxVec h = cir.sampled(fs);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_NEAR(std::abs(h[0]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(h[3]), 0.5, 1e-12);
}

TEST(Cir, ApplyConvolves) {
  const double fs = 1e9;
  Cir cir({{0.0, {1.0, 0.0}}, {2e-9, {-0.5, 0.0}}});
  CplxWaveform x(CplxVec{{1.0, 0.0}}, fs);
  const CplxWaveform y = cir.apply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(y[2].real(), -0.5, 1e-12);
}

TEST(Cir, RejectsNegativeDelay) {
  const std::vector<CirTap> taps = {{-1e-9, {1.0, 0.0}}};
  EXPECT_THROW(Cir{taps}, InvalidArgument);
}

// ---------------------------------------------------- saleh-valenzuela ----

class SvModelTest : public ::testing::TestWithParam<int> {};

TEST_P(SvModelTest, RealizationsAreNormalizedAndCausal) {
  const SalehValenzuela sv(cm_by_index(GetParam()));
  Rng rng(100 + GetParam());
  for (int i = 0; i < 20; ++i) {
    const Cir cir = sv.realize(rng);
    EXPECT_NEAR(cir.total_energy(), 1.0, 1e-9);
    EXPECT_GE(cir.taps().front().delay_s, 0.0);
    EXPECT_GT(cir.num_taps(), 3u);
  }
}

TEST_P(SvModelTest, DelaySpreadOrdering) {
  // CM1 < CM3 < CM4 in average rms delay spread; CM4 lands near the
  // paper's "order of 20 ns".
  Rng rng(42);
  const double cm_spread =
      SalehValenzuela(cm_by_index(GetParam())).average_rms_delay_spread(rng, 60);
  switch (GetParam()) {
    case 1: EXPECT_LT(cm_spread, 10e-9); break;
    case 2: EXPECT_LT(cm_spread, 14e-9); break;
    case 3: EXPECT_GT(cm_spread, 8e-9); break;
    case 4: EXPECT_GT(cm_spread, 14e-9); break;
    default: FAIL();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCm, SvModelTest, ::testing::Values(1, 2, 3, 4));

TEST(SalehValenzuela, Cm4ReachesPaperDelaySpread) {
  Rng rng(7);
  const double spread = SalehValenzuela(cm4()).average_rms_delay_spread(rng, 100);
  EXPECT_GT(spread, 15e-9);
  EXPECT_LT(spread, 40e-9);
}

TEST(SalehValenzuela, DeterministicGivenSeed) {
  const SalehValenzuela sv(cm3());
  Rng a(9), b(9);
  const Cir ca = sv.realize(a);
  const Cir cb = sv.realize(b);
  ASSERT_EQ(ca.num_taps(), cb.num_taps());
  for (std::size_t i = 0; i < ca.num_taps(); ++i) {
    EXPECT_DOUBLE_EQ(ca.taps()[i].delay_s, cb.taps()[i].delay_s);
    EXPECT_EQ(ca.taps()[i].gain, cb.taps()[i].gain);
  }
}

TEST(SalehValenzuela, RealPolarityVariant) {
  SvParams params = cm1();
  params.complex_phases = false;
  const SalehValenzuela sv(params);
  Rng rng(11);
  const Cir cir = sv.realize(rng);
  for (const auto& tap : cir.taps()) {
    EXPECT_DOUBLE_EQ(tap.gain.imag(), 0.0);
  }
}

TEST(SalehValenzuela, ShadowingSpreadsEnergy) {
  const SalehValenzuela sv(cm2());
  Rng rng(13);
  RealVec energies;
  for (int i = 0; i < 200; ++i) {
    energies.push_back(sv.realize(rng, /*apply_shadowing=*/true).total_energy());
  }
  double mean = 0.0;
  for (double e : energies) mean += e;
  mean /= energies.size();
  double var = 0.0;
  for (double e : energies) var += (e - mean) * (e - mean);
  var /= energies.size();
  EXPECT_GT(var, 0.05);  // lognormal shadowing -> non-trivial spread
}

// ----------------------------------------------------------------- awgn ----

TEST(Awgn, VarianceCalibration) {
  Rng rng(14);
  CplxVec x(200000, cplx{});
  add_awgn(x, 0.36, rng);
  double acc = 0.0;
  for (const auto& v : x) acc += std::norm(v);
  EXPECT_NEAR(acc / x.size(), 0.36, 0.01);
}

TEST(Awgn, RealNoiseIsHalfPerRail) {
  Rng rng(15);
  RealVec x(200000, 0.0);
  add_awgn(x, 1.0, rng);
  EXPECT_NEAR(mean_power(x), 0.5, 0.01);
}

TEST(Awgn, MatchedFilterBerMatchesTheory) {
  // One-sample BPSK with Eb = 1: BER must track Q(sqrt(2 Eb/N0)).
  Rng rng(16);
  const double ebn0_db = 6.0;
  const double n0 = n0_for_ebn0(1.0, ebn0_db);
  std::size_t errors = 0;
  const std::size_t n = 200000;
  for (std::size_t i = 0; i < n; ++i) {
    const double tx = rng.bit() ? -1.0 : 1.0;
    RealVec s = {tx};
    add_awgn(s, n0, rng);
    if ((s[0] < 0.0) != (tx < 0.0)) ++errors;
  }
  const double measured = static_cast<double>(errors) / static_cast<double>(n);
  const double theory = bpsk_awgn_ber(from_db(ebn0_db));
  EXPECT_NEAR(measured, theory, 0.3 * theory + 1e-5);
}

TEST(Awgn, EnergyPerBit) {
  const CplxWaveform w(CplxVec(100, cplx{2.0, 0.0}), 1e9);
  EXPECT_NEAR(energy_per_bit(w, 10), 40.0, 1e-9);
  EXPECT_THROW(energy_per_bit(w, 0), InvalidArgument);
}

// ------------------------------------------------------------ interferer ----

TEST(Interferer, CwPowerAndFrequency) {
  InterfererSpec spec;
  spec.kind = InterfererKind::kCw;
  spec.freq_offset_hz = 100e6;
  spec.power = 2.0;
  const Interferer intf(spec);
  Rng rng(17);
  const CplxVec tone = intf.generate(8192, 1e9, rng);
  EXPECT_NEAR(mean_power(tone), 2.0, 1e-9);
  const dsp::Psd psd = dsp::welch_psd(CplxWaveform(tone, 1e9), 1024);
  EXPECT_NEAR(psd.freq_hz[psd.peak_bin()], 100e6, 1e9 / 1024.0);
}

TEST(Interferer, SirCalibration) {
  Rng rng(18);
  CplxWaveform signal(CplxVec(20000, cplx{1.0, 0.0}), 1e9);
  const double signal_power = signal.power();
  add_cw_interferer(signal, 50e6, signal_power, -10.0, rng);  // interferer 10 dB above
  // Total power ~ signal + 10x signal.
  EXPECT_NEAR(signal.power(), 11.0, 0.3);
}

TEST(Interferer, ModulatedIsWiderThanCw) {
  InterfererSpec cw;
  cw.kind = InterfererKind::kCw;
  cw.freq_offset_hz = 50e6;
  InterfererSpec mod = cw;
  mod.kind = InterfererKind::kModulated;
  mod.mod_rate_hz = 10e6;
  Rng rng(19);
  const CplxVec tone = Interferer(cw).generate(16384, 1e9, rng);
  const CplxVec bpsk = Interferer(mod).generate(16384, 1e9, rng);
  const auto bw_cw = dsp::occupied_bandwidth(dsp::welch_psd(CplxWaveform(tone, 1e9), 1024));
  const auto bw_mod = dsp::occupied_bandwidth(dsp::welch_psd(CplxWaveform(bpsk, 1e9), 1024));
  EXPECT_GT(bw_mod, 2.0 * bw_cw);
}

// -------------------------------------------------------------- antenna ----

TEST(Antenna, BandpassBehaviour) {
  AntennaParams params;
  const double fs = 25e9;
  const AntennaModel ant(params, fs);
  // In-band gain ~ 0 dB (within ripple), out-of-band heavily attenuated.
  EXPECT_NEAR(ant.gain_db_at(6.8e9), 0.0, 3.0);
  EXPECT_LT(ant.gain_db_at(0.8e9), -20.0);
  EXPECT_LT(ant.gain_db_at(12.1e9), -10.0);
}

TEST(Antenna, ImpulseResponseAddsToChannel) {
  // Applying the antenna twice (TX + RX) must equal convolving its response
  // twice -- linearity (the "impulse responses add" point of Section 1).
  AntennaParams params;
  const double fs = 25e9;
  const AntennaModel ant(params, fs);
  RealWaveform x(RealVec(512, 0.0), fs);
  x.samples()[100] = 1.0;
  const RealWaveform once = ant.apply(x);
  const RealWaveform twice = ant.apply(once);
  // Energy through the cascade stays finite and bounded.
  EXPECT_GT(twice.total_energy(), 0.0);
  EXPECT_LT(twice.total_energy(), 4.0 * once.total_energy() + 1.0);
}

TEST(Antenna, RejectsLowSampleRate) {
  EXPECT_THROW(AntennaModel(AntennaParams{}, 10e9), InvalidArgument);
}

// ------------------------------------------------------------ path loss ----

TEST(PathLoss, FreeSpaceKnownValue) {
  // FSPL at 1 m, 4 GHz: 20 log10(4 pi * 4e9 / c) ~ 44.5 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 4e9), 44.5, 0.2);
  // +6 dB per distance doubling.
  EXPECT_NEAR(free_space_path_loss_db(2.0, 4e9) - free_space_path_loss_db(1.0, 4e9), 6.02,
              0.05);
}

TEST(PathLoss, FccLimitedTxPower) {
  // -41.3 dBm/MHz over 500 MHz: -41.3 + 27 = -14.3 dBm.
  EXPECT_NEAR(fcc_limited_tx_power_dbm(500e6), -14.3, 0.05);
}

TEST(PathLoss, LinkBudgetSupportsPaperRates) {
  // Gen-2 at 100 Mbps over ~4 m must close with reasonable margin
  // ("high data rates over short distances").
  LinkBudget budget;
  budget.tx_power_dbm = fcc_limited_tx_power_dbm(500e6);
  budget.distance_m = 4.0;
  budget.bit_rate_hz = 100e6;
  EXPECT_GT(budget.ebn0_db(), 6.0);
  // And the usable range for 100 Mbps is a handful of meters, not hundreds.
  const double d_max = budget.max_distance_m(10.0);
  EXPECT_GT(d_max, 2.0);
  EXPECT_LT(d_max, 60.0);
}

TEST(PathLoss, LowerRateBuysRange) {
  LinkBudget fast;
  fast.bit_rate_hz = 100e6;
  LinkBudget slow = fast;
  slow.bit_rate_hz = 1e6;
  EXPECT_GT(slow.max_distance_m(10.0), fast.max_distance_m(10.0));
}

}  // namespace
}  // namespace uwb::channel
