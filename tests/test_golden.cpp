// Golden-digest regression net over the scenario registry: every builtin
// scenario is run under a fixed tiny budget and fixed seed, and the byte
// stream of its JSON result document is pinned as an FNV-1a digest. Any
// change to scenario defaults, trial randomness, estimator accounting, or
// result serialization shows up here as a digest mismatch -- cheap to
// re-pin when intentional (the failure message prints the new digest),
// loud when accidental. This complements the statistical tests, which by
// design tolerate exactly the kind of small drift this net catches.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "farm/farm_state.h"

namespace uwb {
namespace {

/// The pinned digests. Regenerate by running this test: each mismatch
/// (or unpinned scenario) prints the "{name, 0x...}" line to paste here.
const std::map<std::string, std::uint64_t>& pinned_digests() {
  static const std::map<std::string, std::uint64_t> digests = {
      {"gen1_acquisition", 0xaccdc93331fdad58ULL},
      {"gen1_sync", 0xac70559d82b1baf3ULL},
      {"gen1_waterfall", 0x9a129a65d2c5639dULL},
      {"gen2_adc_resolution", 0x40faaba8624dfa30ULL},
      {"gen2_backend_ladder", 0xbed3ba9865c46b5ULL},
      {"gen2_chanest_precision", 0x13a3e1287a9f2286ULL},
      {"gen2_cm_grid", 0xc288267e8d2a3140ULL},
      {"gen2_cm_grid_deep", 0xfe3b8474ae8cf997ULL},
      {"gen2_interferer_notch", 0x623d20dcc08fb2f6ULL},
      {"gen2_mlse_isi", 0xbfa3f7f65343e9f6ULL},
      {"gen2_mlse_memory", 0x2a7027faed740270ULL},
      {"gen2_modulation", 0x9bccab44525b6e58ULL},
      {"gen2_pulse_shape", 0xb183c906fc05984cULL},
      {"gen2_rake_fingers", 0x6bfe21b21d54f259ULL},
      {"gen2_spectral_monitor", 0x39f231253ba15284ULL},
  };
  return digests;
}

std::string run_scenario_json(const std::string& name) {
  const std::string path = ::testing::TempDir() + "golden_" + name + ".json";
  engine::SweepConfig config;
  config.seed = 0x601D;
  config.workers = 2;  // parallel commit is deterministic; exercise it
  config.stop.min_errors = 1;
  config.stop.max_bits = 100'000;
  config.stop.max_trials = 4;
  engine::SweepEngine engine(config);
  engine::JsonSink sink(path);
  (void)engine.run(engine::ScenarioRegistry::global().make(name), {&sink});
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::remove(path.c_str());
  std::remove((path + ".run.json").c_str());
  return bytes.str();
}

TEST(GoldenScenarios, EveryBuiltinScenarioIsPinned) {
  // A new scenario must come with a pinned digest; a removed one must
  // drop its pin. Keeps the net total.
  const auto names = engine::ScenarioRegistry::global().names();
  EXPECT_EQ(names.size(), pinned_digests().size());
  for (const auto& name : names) {
    EXPECT_TRUE(pinned_digests().count(name))
        << "unpinned scenario " << name << " -- run the digest test to get its pin";
  }
}

class GoldenScenarioDigest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenScenarioDigest, TinyBudgetResultDocIsByteStable) {
  const std::string name = GetParam();
  const std::string doc = run_scenario_json(name);
  ASSERT_FALSE(doc.empty()) << name << " produced no result document";
  const std::uint64_t digest = farm::fnv1a_digest(doc);
  const auto it = pinned_digests().find(name);
  ASSERT_NE(it, pinned_digests().end())
      << "unpinned scenario " << name << " -- pin as:\n"
      << "      {\"" << name << "\", 0x" << std::hex << digest << "ULL},";
  EXPECT_EQ(digest, it->second)
      << "result bytes changed for " << name << " -- if intentional, re-pin as:\n"
      << "      {\"" << name << "\", 0x" << std::hex << digest << "ULL},";
}

INSTANTIATE_TEST_SUITE_P(
    Registry, GoldenScenarioDigest,
    ::testing::ValuesIn(engine::ScenarioRegistry::global().names()),
    [](const ::testing::TestParamInfo<std::string>& info) { return info.param; });

}  // namespace
}  // namespace uwb
