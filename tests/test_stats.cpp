// Rare-event statistics subsystem: exact binomial intervals, the
// importance-sampling policy and its likelihood weights, the weighted BER
// accumulator, adaptive allocation policy, and the estimator-level
// validation properties (closed-form BPSK BER inside the intervals, the
// weighted estimator agreeing with plain Monte-Carlo and with the closed
// form, parallel determinism of weighted points).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "engine/parallel_ber.h"
#include "engine/scenario_registry.h"
#include "engine/sweep_engine.h"
#include "engine/thread_pool.h"
#include "sim/ber_simulator.h"
#include "stats/adaptive.h"
#include "stats/binomial_ci.h"
#include "stats/sampling.h"
#include "stats/weighted.h"

namespace uwb {
namespace {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

// ------------------------------------------------------ binomial_ci ----

TEST(BinomialCi, NormalQuantileKnownValues) {
  EXPECT_NEAR(stats::normal_quantile(0.975), 1.959963985, 1e-7);
  EXPECT_NEAR(stats::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(stats::normal_quantile(0.9), 1.281551566, 1e-7);
  EXPECT_NEAR(stats::normal_quantile(0.025), -1.959963985, 1e-7);
}

TEST(BinomialCi, ClopperPearsonZeroErrors) {
  // k = 0: lo = 0 and hi = 1 - alpha/2 ^ (1/n) exactly.
  const stats::Interval ci = stats::clopper_pearson(0, 10);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_NEAR(ci.hi, 1.0 - std::pow(0.025, 0.1), 1e-9);
}

TEST(BinomialCi, ClopperPearsonAllErrors) {
  const stats::Interval ci = stats::clopper_pearson(10, 10);
  EXPECT_NEAR(ci.lo, std::pow(0.025, 0.1), 1e-9);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(BinomialCi, IntervalsContainPointEstimate) {
  for (const auto [k, n] : {std::pair<std::size_t, std::size_t>{1, 50},
                            {7, 100},
                            {499, 1000},
                            {3, 7}}) {
    const double p = static_cast<double>(k) / static_cast<double>(n);
    for (const auto method :
         {stats::CiMethod::kWilson, stats::CiMethod::kClopperPearson}) {
      const stats::Interval ci = stats::binomial_interval(method, k, n);
      EXPECT_LE(ci.lo, p) << to_string(method) << " k=" << k << " n=" << n;
      EXPECT_GE(ci.hi, p) << to_string(method) << " k=" << k << " n=" << n;
      EXPECT_GE(ci.lo, 0.0);
      EXPECT_LE(ci.hi, 1.0);
    }
  }
}

TEST(BinomialCi, ClopperPearsonIsConservativeVsWilson) {
  // The exact interval is wider than the score interval on small counts --
  // the regime the stop rules and result docs care about.
  for (const auto [k, n] :
       {std::pair<std::size_t, std::size_t>{0, 20}, {1, 30}, {2, 100}, {5, 200}}) {
    const stats::Interval cp = stats::clopper_pearson(k, n);
    const stats::Interval wi = stats::wilson(k, n);
    EXPECT_GE(cp.hi - cp.lo, wi.hi - wi.lo) << "k=" << k << " n=" << n;
  }
}

TEST(BinomialCi, MethodNamesRoundTripAndReject) {
  EXPECT_EQ(stats::ci_method_from_name("wilson"), stats::CiMethod::kWilson);
  EXPECT_EQ(stats::ci_method_from_name("clopper_pearson"),
            stats::CiMethod::kClopperPearson);
  EXPECT_EQ(stats::ci_method_from_name("normal_weighted"),
            stats::CiMethod::kNormalWeighted);
  EXPECT_THROW((void)stats::ci_method_from_name("exact"), InvalidArgument);
  EXPECT_THROW(
      (void)stats::binomial_interval(stats::CiMethod::kNormalWeighted, 1, 10),
      InvalidArgument);
}

// --------------------------------------------------------- sampling ----

TEST(Sampling, ModeNamesRoundTripAndReject) {
  for (const auto mode : {stats::SamplingMode::kNone, stats::SamplingMode::kNoiseScale,
                          stats::SamplingMode::kAutoLadder}) {
    EXPECT_EQ(stats::sampling_mode_from_name(stats::to_string(mode)), mode);
  }
  EXPECT_THROW((void)stats::sampling_mode_from_name("importance"), InvalidArgument);
}

TEST(Sampling, LadderGeometry) {
  stats::SamplingPolicy policy;
  policy.mode = stats::SamplingMode::kAutoLadder;
  policy.max_scale = 8.0;
  policy.levels = 4;
  const std::vector<double> ladder = stats::sampling_ladder(policy);
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_DOUBLE_EQ(ladder.front(), 1.0);
  EXPECT_DOUBLE_EQ(ladder.back(), 8.0);
  for (std::size_t k = 1; k < ladder.size(); ++k) {
    EXPECT_NEAR(ladder[k] / ladder[k - 1], 2.0, 1e-12);  // geometric ratio
  }
  // Trial assignment cycles the ladder as a pure function of the index.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(stats::trial_noise_scale(policy, i), ladder[i % 4]);
  }
}

TEST(Sampling, PolicyValidation) {
  stats::SamplingPolicy bad;
  bad.mode = stats::SamplingMode::kNoiseScale;
  bad.scale = 0.5;
  EXPECT_THROW(stats::validate(bad), InvalidArgument);
  bad.mode = stats::SamplingMode::kAutoLadder;
  bad.levels = 0;
  EXPECT_THROW(stats::validate(bad), InvalidArgument);
}

TEST(Sampling, SingleRungMixtureReducesToTiltWeight) {
  for (const double z : {-3.0, -0.7, 0.0, 1.2, 4.5}) {
    EXPECT_NEAR(stats::mixture_log_weight(z, 0.5, {3.0}),
                stats::tilt_log_weight(z, 0.5, 3.0), 1e-12);
  }
}

TEST(Sampling, MixtureWeightBoundedByRungCount) {
  // With the 1.0 rung in the mixture, w = f / ((1/K) sum g_k) <= K.
  const std::vector<double> ladder = {1.0, 1.817, 3.302, 6.0};
  for (double z = -8.0; z <= 8.0; z += 0.05) {
    EXPECT_LE(stats::mixture_log_weight(z, 1.0, ladder),
              std::log(static_cast<double>(ladder.size())) + 1e-12);
  }
}

TEST(Sampling, MixtureWeightIntegratesToOne) {
  // (1/K) sum_k E_{g_k}[w] = 1 exactly: quadrature over the rung mixture.
  const std::vector<double> ladder = {1.0, 2.0, 4.0};
  const double sigma2 = 0.7;
  const double sigma = std::sqrt(sigma2);
  double total = 0.0;
  const double dz = 1e-3;
  for (double z = -40.0 * sigma; z <= 40.0 * sigma; z += dz) {
    double mix = 0.0;
    for (const double s : ladder) {
      const double sd = s * sigma;
      mix += std::exp(-z * z / (2.0 * sd * sd)) / (sd * std::sqrt(2.0 * M_PI));
    }
    mix /= static_cast<double>(ladder.size());
    total += mix * std::exp(stats::mixture_log_weight(z, sigma2, ladder)) * dz;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

// --------------------------------------------------------- weighted ----

TEST(WeightedBer, PlainWeightsMatchBinomialMean) {
  stats::WeightedBer acc;
  acc.add(1.0, 2, 100);
  acc.add(1.0, 0, 100);
  acc.add(1.0, 1, 100);
  EXPECT_DOUBLE_EQ(acc.ber(), 3.0 / 300.0);
  EXPECT_DOUBLE_EQ(acc.ess(), 3.0);  // equal weights: ESS = trial count
  const stats::Interval ci = acc.interval();
  EXPECT_LE(ci.lo, acc.ber());
  EXPECT_GE(ci.hi, acc.ber());
}

TEST(WeightedBer, WeightsScaleErrorsNotBits) {
  stats::WeightedBer acc;
  acc.add(0.25, 1, 1);
  acc.add(0.25, 1, 1);
  acc.add(1.0, 0, 1);
  acc.add(1.0, 0, 1);
  EXPECT_DOUBLE_EQ(acc.ber(), 0.5 / 4.0);
  EXPECT_EQ(acc.raw_errors, 2u);
  // Kish ESS: (sum w)^2 / sum w^2 = 2.5^2 / 2.125.
  EXPECT_NEAR(acc.ess(), 2.5 * 2.5 / 2.125, 1e-12);
  EXPECT_LT(acc.ess(), 4.0);
}

TEST(WeightedBer, DegenerateInputsGiveVacuousInterval) {
  stats::WeightedBer acc;
  const stats::Interval empty = acc.interval();
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

// --------------------------------------------------------- adaptive ----

TEST(Adaptive, PicksWidestRelativeInterval) {
  std::vector<stats::AllocPoint> points(3);
  points[0] = {1e-3, 1e-4, 100, false};   // rel width 0.1
  points[1] = {1e-5, 8e-6, 100, false};   // rel width 0.8
  points[2] = {1e-4, 5e-5, 100, false};   // rel width 0.5
  EXPECT_EQ(stats::pick_widest(points), 1);
  points[1].saturated = true;
  EXPECT_EQ(stats::pick_widest(points), 2);
}

TEST(Adaptive, ZeroBerPointClaimsBudgetFirst) {
  std::vector<stats::AllocPoint> points(2);
  points[0] = {1e-4, 9e-5, 10, false};  // wide, but measured
  points[1] = {0.0, 0.0, 10, false};    // nothing measured yet
  EXPECT_EQ(stats::pick_widest(points), 1);
}

TEST(Adaptive, SaturatedEverywhereStops) {
  std::vector<stats::AllocPoint> points(2);
  points[0] = {1e-3, 1e-4, 10, true};
  points[1] = {1e-3, 1e-4, 10, true};
  EXPECT_EQ(stats::pick_widest(points), -1);
}

TEST(Adaptive, ChunksDoubleAndRespectBudget) {
  EXPECT_EQ(stats::next_chunk(0, 1000), 64u);    // floor
  EXPECT_EQ(stats::next_chunk(100, 1000), 100u); // double current spend
  EXPECT_EQ(stats::next_chunk(100, 30), 30u);    // capped by what is left
  EXPECT_EQ(stats::next_chunk(100, 0), 0u);
}

// --------------------------- closed-form BPSK BER property (ladder) ----

// BPSK over AWGN, matched-filter statistic: the simulated BER must sit
// inside the exact Clopper-Pearson interval around the erfc closed form --
// equivalently, the closed form inside the interval around the count.
class AwgnBpskErfcProperty : public ::testing::TestWithParam<double> {};

TEST_P(AwgnBpskErfcProperty, SimulatedBerWithinClopperPearsonOfClosedForm) {
  const double ebn0_db = GetParam();
  const double ebn0 = std::pow(10.0, ebn0_db / 10.0);
  const double d = std::sqrt(2.0 * ebn0);
  const double analytic = q_function(d);

  const engine::TrialFn trial = [d](std::size_t, Rng& rng) {
    sim::TrialOutcome out;
    out.bits = 256;
    for (std::size_t b = 0; b < out.bits; ++b) {
      // Antipodal +1 transmitted, unit-variance noise on the matched
      // statistic: error iff the noise swamps the distance.
      if (rng.gaussian() > d) ++out.errors;
    }
    return out;
  };
  sim::BerStop stop;
  stop.min_errors = 60;
  stop.max_bits = 40'000'000;
  stop.max_trials = 200'000;
  const sim::BerPoint point =
      engine::measure_ber_serial(trial, stop, Rng(0xBE11 + GetParam()));
  ASSERT_GE(point.errors, 10u) << "budget too small at " << ebn0_db << " dB";
  const stats::Interval ci =
      stats::clopper_pearson(point.errors, point.bits, 0.999);
  EXPECT_LE(ci.lo, analytic) << "Eb/N0 " << ebn0_db << " dB, ber " << point.ber;
  EXPECT_GE(ci.hi, analytic) << "Eb/N0 " << ebn0_db << " dB, ber " << point.ber;
}

INSTANTIATE_TEST_SUITE_P(Ebn0Ladder, AwgnBpskErfcProperty,
                         ::testing::Values(0.0, 2.0, 4.0, 6.0, 8.0));

// ----------------------- weighted estimator vs the closed form ----------

// The full ladder machinery on a synthetic matched-filter channel where
// the closed form is exact: index-cycled rungs, balance-heuristic weights,
// weighted accumulation. The estimate must agree with Q(d) at a BER plain
// Monte-Carlo could not touch with this trial count.
engine::TrialFn make_tilted_bpsk_trial(const stats::SamplingPolicy& policy, double d) {
  const std::vector<double> ladder = stats::sampling_ladder(policy);
  return [policy, ladder, d](std::size_t index, Rng& rng) {
    const double scale = stats::trial_noise_scale(policy, index);
    const double z = rng.gaussian(0.0, scale);
    sim::TrialOutcome out;
    out.bits = 1;
    out.errors = z > d ? 1u : 0u;
    out.weighted = true;
    out.log_weight = stats::mixture_log_weight(z, 1.0, ladder);
    return out;
  };
}

TEST(WeightedEstimator, MatchesClosedFormDeepInTheTail) {
  stats::SamplingPolicy policy;
  policy.mode = stats::SamplingMode::kAutoLadder;
  policy.max_scale = 6.0;
  policy.levels = 4;
  const double d = 4.265;  // Q(d) ~ 1e-5: ~1 error expected unweighted
  const double analytic = q_function(d);

  sim::BerStop stop;
  stop.min_errors = std::numeric_limits<std::size_t>::max();
  stop.max_bits = std::numeric_limits<std::size_t>::max();
  stop.max_trials = 20'000;
  const sim::BerPoint point = engine::measure_ber_serial(
      make_tilted_bpsk_trial(policy, d), stop, Rng(0x15BE));

  EXPECT_TRUE(point.weighted);
  EXPECT_EQ(point.ci_method, stats::CiMethod::kNormalWeighted);
  EXPECT_GT(point.ess, 1000.0);
  // The normal interval must cover the closed form, and the point estimate
  // must be within a factor band plain MC could never certify here.
  EXPECT_LE(point.ci_lo, analytic);
  EXPECT_GE(point.ci_hi, analytic);
  EXPECT_GT(point.ber, 0.4 * analytic);
  EXPECT_LT(point.ber, 2.5 * analytic);
}

TEST(WeightedEstimator, CiWidthStopRuleFires) {
  stats::SamplingPolicy policy;
  policy.mode = stats::SamplingMode::kAutoLadder;
  policy.max_scale = 5.0;
  policy.levels = 3;
  const double d = 3.0;  // Q(d) ~ 1.35e-3: converges quickly

  sim::BerStop stop;
  stop.min_errors = std::numeric_limits<std::size_t>::max();
  stop.max_bits = std::numeric_limits<std::size_t>::max();
  stop.max_trials = 200'000;
  stop.target_rel_ci_width = 0.25;
  const sim::BerPoint point = engine::measure_ber_serial(
      make_tilted_bpsk_trial(policy, d), stop, Rng(0x15BF));
  ASSERT_GT(point.ber, 0.0);
  EXPECT_LT(point.trials, stop.max_trials) << "CI stop never fired";
  EXPECT_LE(0.5 * (point.ci_hi - point.ci_lo) / point.ber,
            stop.target_rel_ci_width + 1e-12);
}

TEST(WeightedEstimator, ParallelCommitIsByteIdenticalAcrossWorkerCounts) {
  stats::SamplingPolicy policy;
  policy.mode = stats::SamplingMode::kAutoLadder;
  policy.max_scale = 6.0;
  policy.levels = 4;
  const double d = 3.5;

  sim::BerStop stop;
  stop.min_errors = 40;
  stop.max_bits = std::numeric_limits<std::size_t>::max();
  stop.max_trials = 50'000;
  const Rng root(0x15C0);
  const engine::TrialFactory factory = [&] { return make_tilted_bpsk_trial(policy, d); };

  const sim::BerPoint serial =
      engine::measure_ber_serial(make_tilted_bpsk_trial(policy, d), stop, root);
  for (const std::size_t workers : {1u, 3u, 8u}) {
    engine::ThreadPool pool(workers);
    const sim::BerPoint par = engine::measure_ber_parallel(factory, stop, root, pool);
    EXPECT_EQ(par.trials, serial.trials) << workers << " workers";
    EXPECT_EQ(par.errors, serial.errors) << workers << " workers";
    // Bit-exact, not approximately equal: commit order is the contract.
    EXPECT_EQ(par.ber, serial.ber) << workers << " workers";
    EXPECT_EQ(par.ci_lo, serial.ci_lo) << workers << " workers";
    EXPECT_EQ(par.ci_hi, serial.ci_hi) << workers << " workers";
    EXPECT_EQ(par.ess, serial.ess) << workers << " workers";
  }
}

// ------------------------- real link: IS vs plain MC at overlap ---------

// On the gen-2 link at a shallow point both estimators can measure, the
// importance-sampled estimate and plain Monte-Carlo must agree within
// their confidence intervals. This is the estimator's end-to-end
// cross-check on the real receiver (channel-estimation noise and all),
// not just on the synthetic matched-filter model.
TEST(RealLinkSampling, PlainAndImportanceSampledIntervalsOverlap) {
  engine::SweepConfig config;
  config.seed = 0xC0FE;
  config.workers = 4;
  config.stop.min_errors = 25;
  config.stop.max_bits = std::numeric_limits<std::size_t>::max();
  config.stop.max_trials = 4000;

  engine::ScenarioSpec scenario =
      engine::ScenarioRegistry::global().make("gen2_cm_grid_deep");
  engine::restrict_scenario(scenario, "channel", "AWGN");
  engine::restrict_scenario(scenario, "ebn0_db", "6");

  engine::SweepEngine engine(config);
  const engine::SweepResult result = engine.run(scenario, {});
  ASSERT_EQ(result.records.size(), 2u);

  const sim::BerPoint* plain = nullptr;
  const sim::BerPoint* is = nullptr;
  for (const auto& record : result.records) {
    (record.spec.tag("sampling") == "is" ? is : plain) = &record.ber;
  }
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(is, nullptr);
  EXPECT_FALSE(plain->weighted);
  EXPECT_TRUE(is->weighted);
  EXPECT_GT(plain->ber, 0.0);
  EXPECT_GT(is->ber, 0.0);
  // Two-sided intervals overlap.
  EXPECT_LE(is->ci_lo, plain->ci_hi);
  EXPECT_LE(plain->ci_lo, is->ci_hi);
}

}  // namespace
}  // namespace uwb
