// Tests for the reconfiguration controller (paper Section 3: "adapting to
// channel conditions") and the coded-link mode.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/adaptive.h"
#include "sim/ber_simulator.h"
#include "sim/scenario.h"
#include "txrx/link.h"
#include "txrx/power_model.h"

namespace uwb {
namespace {

using sim::AdaptationObservation;
using sim::LinkAdapter;

// ------------------------------------------------------------- controller ----

TEST(LinkAdapter, SevereMultipathEscalates) {
  const LinkAdapter adapter(10e-9);
  AdaptationObservation mild;
  mild.delay_spread_s = 1e-9;
  mild.snr_db = 15.0;
  AdaptationObservation severe = mild;
  severe.delay_spread_s = 25e-9;
  EXPECT_EQ(adapter.decide(mild).rung, "minimal");
  EXPECT_EQ(adapter.decide(severe).rung, "maximal");
}

TEST(LinkAdapter, EffortMonotoneInDelaySpread) {
  const LinkAdapter adapter(10e-9);
  std::size_t prev_fingers = 0;
  for (double spread_ns : {1.0, 3.0, 8.0, 15.0, 30.0}) {
    AdaptationObservation obs;
    obs.delay_spread_s = spread_ns * 1e-9;
    obs.snr_db = 14.0;
    const auto decision = adapter.decide(obs);
    EXPECT_GE(decision.rake_fingers, prev_fingers) << "spread " << spread_ns;
    prev_fingers = decision.rake_fingers;
  }
}

TEST(LinkAdapter, InterfererForcesAtLeastNominal) {
  const LinkAdapter adapter(10e-9);
  AdaptationObservation obs;
  obs.delay_spread_s = 1e-9;  // would be "minimal"
  obs.snr_db = 20.0;
  obs.interferer = true;
  const auto decision = adapter.decide(obs);
  EXPECT_EQ(decision.rung, "nominal");
  EXPECT_TRUE(decision.use_mlse);
}

TEST(LinkAdapter, HighSnrShedsEffort) {
  const LinkAdapter adapter(10e-9, 8.0);
  AdaptationObservation obs;
  obs.delay_spread_s = 8e-9;  // "nominal" territory
  obs.snr_db = 30.0;          // huge headroom
  EXPECT_EQ(adapter.decide(obs).rung, "low");
}

TEST(LinkAdapter, HysteresisNeedsPersistence) {
  LinkAdapter adapter(10e-9);
  AdaptationObservation severe;
  severe.delay_spread_s = 30e-9;
  severe.snr_db = 12.0;
  // Starts at nominal; a single severe observation must not flip it.
  EXPECT_EQ(adapter.update(severe).rung, "nominal");
  EXPECT_EQ(adapter.update(severe).rung, "maximal");  // second one commits
}

TEST(LinkAdapter, ApplyWritesProgrammableFields) {
  txrx::Gen2Config config = sim::gen2_nominal();
  sim::AdaptationDecision decision{"maximal", 16, true, 5, 4};
  LinkAdapter::apply(decision, config);
  EXPECT_EQ(config.rake.num_fingers, 16u);
  EXPECT_EQ(config.mlse.memory, 5);
  // Converter hardware untouched.
  EXPECT_EQ(config.sar.bits, 5);
}

TEST(LinkAdapter, PowerOrderingAcrossRungs) {
  // The ladder must actually be a power ladder.
  const LinkAdapter adapter(10e-9);
  double prev = 0.0;
  for (double spread_ns : {1.0, 3.0, 8.0, 30.0}) {
    AdaptationObservation obs;
    obs.delay_spread_s = spread_ns * 1e-9;
    obs.snr_db = 14.0;
    txrx::Gen2Config config = sim::gen2_nominal();
    LinkAdapter::apply(adapter.decide(obs), config);
    const double p = txrx::gen2_power(config).total_w();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

// ------------------------------------------------------------- coded link ----

TEST(CodedLink, SoftViterbiBeatsUncodedAtEqualInfoEnergy) {
  // Rate-1/2 K=7 halves the rate; at equal energy per information bit the
  // coded link runs at options.ebn0_db 3 dB lower. The coding gain must
  // exceed that rate loss at moderate SNR.
  txrx::Gen2Config config = sim::gen2_fast();

  sim::BerStop stop;
  stop.min_errors = 25;
  stop.max_bits = 60000;

  txrx::Gen2Link coded_link(config, 0xC0DE);
  txrx::TrialOptions coded;
  coded.payload_bits = 200;
  coded.ebn0_db = 4.0;  // info-bit Eb/N0 = 7 dB
  coded.fec = fec::k7_rate_half();
  const auto p_coded = sim::measure_ber(
      [&]() {
        const auto trial = coded_link.run_packet(coded);
        return sim::TrialOutcome{trial.bits, trial.errors};
      },
      stop);

  txrx::Gen2Link plain_link(config, 0xC0DE);
  txrx::TrialOptions plain;
  plain.payload_bits = 200;
  plain.ebn0_db = 7.0;  // same info-bit energy
  const auto p_plain = sim::measure_ber(
      [&]() {
        const auto trial = plain_link.run_packet(plain);
        return sim::TrialOutcome{trial.bits, trial.errors};
      },
      stop);

  EXPECT_LT(p_coded.ber, p_plain.ber)
      << "coded=" << p_coded.ber << " uncoded=" << p_plain.ber;
}

TEST(CodedLink, DecodesCleanlyAtModerateSnr) {
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::Gen2Link link(config, 0xC1DE);
  txrx::TrialOptions options;
  options.payload_bits = 200;
  options.ebn0_db = 6.0;
  options.fec = fec::k3_rate_half();
  std::size_t bits = 0, errors = 0;
  for (int p = 0; p < 5; ++p) {
    const auto trial = link.run_packet(options);
    bits += trial.bits;
    errors += trial.errors;
  }
  EXPECT_EQ(bits, 1000u);  // info bits, not coded bits
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(bits), 0.01);
}

TEST(CodedLink, RequiresBpsk) {
  txrx::Gen2Config config = sim::gen2_fast();
  config.modulation = phy::Modulation::kPpm;
  txrx::Gen2Link link(config, 0xC2DE);
  txrx::TrialOptions options;
  options.fec = fec::k3_rate_half();
  EXPECT_THROW((void)link.run_packet(options), InvalidArgument);
}

}  // namespace
}  // namespace uwb
