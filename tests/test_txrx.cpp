// Tests for the transceiver layer: configurations, transmitters, power
// model, and single-packet receiver happy paths.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "channel/awgn.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "channel/saleh_valenzuela.h"
#include "dsp/fast_convolve.h"
#include "dsp/fir_filter.h"
#include "dsp/power_spectrum.h"
#include "sim/scenario.h"
#include "txrx/link.h"
#include "txrx/power_model.h"
#include "txrx/receiver_gen1.h"
#include "txrx/receiver_gen2.h"
#include "txrx/transmitter.h"

namespace uwb::txrx {
namespace {

// --------------------------------------------------------------- configs ----

TEST(Config, Gen1PaperNumerology) {
  const Gen1Config config = sim::gen1_nominal();
  EXPECT_DOUBLE_EQ(config.adc_rate, 2e9);  // the 2 GSps converter
  EXPECT_EQ(config.adc_lanes, 4);          // 4-way interleaved
  // 2 GHz / 648 / 16 = 192.9 kbps ~ the paper's 193 kbps link.
  EXPECT_NEAR(config.bit_rate_hz(), 193e3, 1e3);
  // PN period = 127 frames = 41.1 us.
  EXPECT_NEAR(127.0 * 648.0 / 2e9, 41.1e-6, 0.2e-6);
}

TEST(Config, Gen2PaperNumerology) {
  const Gen2Config config = sim::gen2_nominal();
  EXPECT_DOUBLE_EQ(config.prf_hz, 100e6);
  EXPECT_DOUBLE_EQ(config.bit_rate_hz(), 100e6);  // 100 Mbps
  EXPECT_EQ(config.sar.bits, 5);                  // two 5-bit SARs
  EXPECT_EQ(config.chanest.quantization_bits, 4); // 4-bit CIR taps
  EXPECT_DOUBLE_EQ(config.pulse.bandwidth_hz, 500e6);
  EXPECT_EQ(config.samples_per_bit_adc(), 10u);
}

// ----------------------------------------------------------- transmitters ----

TEST(Gen1Transmitter, FrameLayout) {
  const Gen1Config config = sim::gen1_fast();
  const Gen1Transmitter tx(config);
  Rng rng(1);
  auto [wave, frame] = tx.transmit(rng.bits(32));
  EXPECT_EQ(frame.preamble_bits, 127u);  // 1 repetition in the fast config
  EXPECT_GT(wave.size(), 127u * config.frame_samples_analog());
  EXPECT_GT(frame.energy_per_bit, 0.0);
  // Data bits: SFD(16) + header(32) + payload+CRC(64).
  EXPECT_EQ(frame.frame_bits.size(), 16u + 32u + 64u);
}

TEST(Gen1Transmitter, PreambleChipsAreAntipodal) {
  const Gen1Transmitter tx(sim::gen1_nominal());
  EXPECT_EQ(tx.preamble_chips().size(), 127u);
  for (double c : tx.preamble_chips()) {
    EXPECT_TRUE(c == 1.0 || c == -1.0);
  }
  EXPECT_EQ(tx.preamble_frames(), 254u);  // 2 repetitions
}

TEST(Gen1Transmitter, SparseTrainDescribesTheDenseWaveform) {
  // transmit_train and transmit must be two views of the same signal:
  // summing shifted prototype copies over the slot amplitudes rebuilds the
  // dense waveform exactly.
  const Gen1Config config = sim::gen1_fast();
  const Gen1Transmitter tx(config);
  Rng rng(7);
  const BitVec payload = rng.bits(32);
  auto [wave, frame] = tx.transmit(payload);
  const Gen1Train train = tx.transmit_train(payload);

  ASSERT_EQ(train.frame.frame_bits, frame.frame_bits);
  EXPECT_EQ(train.frame.energy_per_bit, frame.energy_per_bit);
  ASSERT_EQ(train.amplitudes.size(),
            frame.preamble_bits + frame.frame_bits.size() *
                                      static_cast<std::size_t>(config.pulses_per_bit));

  const RealVec& proto = tx.prototype().samples();
  const std::size_t frame_samples = config.frame_samples_analog();
  RealVec dense(frame_samples * train.amplitudes.size() + proto.size(), 0.0);
  for (std::size_t s = 0; s < train.amplitudes.size(); ++s) {
    for (std::size_t i = 0; i < proto.size(); ++i) {
      dense[s * frame_samples + i] += train.amplitudes[s] * proto[i];
    }
  }
  ASSERT_EQ(dense.size(), wave.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense[i], wave[i]) << "sample " << i;
  }
}

TEST(Gen1Link, SparseChannelPathMatchesDenseConvolution) {
  // The fast multipath path applies the channel as shift-adds of the
  // composite kernel g = prototype (x) CIR; convolution distributes over
  // the slot sum, so it must equal the dense cir.apply_real to rounding.
  const Gen1Config config = sim::gen1_fast();
  const Gen1Transmitter tx(config);
  Rng rng(11);
  const BitVec payload = rng.bits(32);
  auto [wave, frame] = tx.transmit(payload);
  const Gen1Train train = tx.transmit_train(payload);

  channel::SvParams params = channel::cm_by_index(3);
  params.complex_phases = false;
  const channel::Cir cir = channel::SalehValenzuela(params).realize(rng);

  const dsp::FastConvolveGuard guard(false);  // exact direct reference
  const RealWaveform dense = cir.apply_real(wave);

  const CplxVec hc = cir.sampled(config.analog_fs);
  RealVec hr(hc.size());
  for (std::size_t i = 0; i < hc.size(); ++i) hr[i] = hc[i].real();
  const RealVec g = dsp::convolve(tx.prototype().samples(), hr);

  const std::size_t frame_samples = config.frame_samples_analog();
  RealVec sparse(frame_samples * train.amplitudes.size() + g.size(), 0.0);
  for (std::size_t s = 0; s < train.amplitudes.size(); ++s) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      sparse[s * frame_samples + i] += train.amplitudes[s] * g[i];
    }
  }
  ASSERT_EQ(sparse.size(), dense.size());
  double peak = 0.0;
  for (double v : sparse) peak = std::max(peak, std::abs(v));
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    ASSERT_NEAR(sparse[i], dense[i], 1e-9 * std::max(1.0, peak)) << "sample " << i;
  }
}

TEST(Gen1Link, PacketOutcomeAgreesAcrossChannelPolicy) {
  // End to end across the channel policy: the fast path runs the sparse
  // scatter + single-precision arena, the direct path the dense double
  // waveform. Their noise realizations differ by design (the float arena
  // runs a dedicated single-precision sampler), so per-trial agreement at
  // operating Eb/N0 is no longer defined. At 40 dB the noise is decades
  // below every decision margin on both paths, so the bit decisions are a
  // function of the pre-noise waveform alone -- which the two paths build
  // equivalently (same trial Rng, same channel realization, float vs
  // double rounding) -- and the error counts, channel-induced errors
  // included, must match exactly. The waveform-level equivalence of the
  // sparse channel math is pinned by SparseChannelPathMatchesDenseConvolution.
  const Gen1Config config = sim::gen1_fast();
  TrialOptions options = default_options(Generation::kGen1);
  options.cm = 3;
  options.ebn0_db = 40.0;
  for (uint64_t trial = 0; trial < 3; ++trial) {
    Gen1Link fast_link(config, 99);
    Gen1Link slow_link(config, 99);
    Rng root(1234);
    Rng rng_fast = root.fork(trial);
    Rng rng_slow = root.fork(trial);
    TrialResult fast, slow;
    {
      const dsp::FastConvolveGuard guard(true);
      fast = fast_link.run_packet(options, rng_fast);
    }
    {
      const dsp::FastConvolveGuard guard(false);
      slow = slow_link.run_packet(options, rng_slow);
    }
    EXPECT_EQ(fast.bits, slow.bits) << "trial " << trial;
    EXPECT_EQ(fast.errors, slow.errors) << "trial " << trial;
  }
}

TEST(Gen2Transmitter, FrameLayoutBpsk) {
  const Gen2Config config = sim::gen2_fast();
  const Gen2Transmitter tx(config);
  Rng rng(2);
  auto [wave, frame] = tx.transmit(rng.bits(100));
  // Overhead: preamble (63*2) + SFD 16 + header 32.
  EXPECT_EQ(frame.overhead_symbols, 126u + 16u + 32u);
  EXPECT_EQ(frame.payload_symbols, 132u);  // payload + CRC-32, BPSK
  EXPECT_EQ(frame.body_bits, 132u);
  EXPECT_EQ(wave.sample_rate(), config.analog_fs);
  EXPECT_GT(frame.energy_per_bit, 0.0);
}

TEST(Gen2Transmitter, OccupiedBandwidthIs500MHz) {
  const Gen2Config config = sim::gen2_fast();
  const Gen2Transmitter tx(config);
  Rng rng(3);
  auto [wave, frame] = tx.transmit(rng.bits(400));
  const dsp::Psd psd = dsp::welch_psd(wave, 1024);
  const double bw = dsp::bandwidth_at_level(psd, -10.0);
  EXPECT_NEAR(bw, 500e6, 150e6);
}

TEST(Gen2Transmitter, PassbandSynthesisAtChannel) {
  Gen2Config config = sim::gen2_fast();
  config.channel_index = 4;  // ~5 GHz (Fig. 4)
  const Gen2Transmitter tx(config);
  Rng rng(4);
  auto [bb, frame] = tx.transmit(rng.bits(16));
  // Truncate for speed.
  const CplxWaveform head = bb.slice(0, std::min<std::size_t>(bb.size(), 16384));
  const RealWaveform rf = tx.transmit_passband(head, 20e9);
  EXPECT_DOUBLE_EQ(rf.sample_rate(), 20e9);
  const dsp::Psd psd = dsp::welch_psd(rf, 4096);
  const pulse::BandPlan plan;
  EXPECT_NEAR(psd.freq_hz[psd.peak_bin()], plan.center_frequency(4), 500e6);
}

TEST(Gen2Transmitter, PreambleTemplateMatchesConfig) {
  const Gen2Config config = sim::gen2_fast();
  const Gen2Transmitter tx(config);
  const CplxVec tmpl = tx.preamble_template_adc();
  // 126 preamble symbols at 10 samples/bit plus the pulse tail.
  EXPECT_GT(tmpl.size(), 1260u);
  EXPECT_LT(tmpl.size(), 1400u);
}

// ------------------------------------------------------------ power model ----

TEST(PowerModel, Gen1AdcPlusDigitalDominate) {
  const PowerBreakdown bd = gen1_power(sim::gen1_nominal());
  EXPECT_GT(bd.total_w(), 0.0);
  // The paper's claim: more than half in the ADC + digital back end.
  EXPECT_GT(bd.adc_plus_digital_fraction(), 0.5);
}

TEST(PowerModel, Gen2AdcPlusDigitalDominate) {
  const PowerBreakdown bd = gen2_power(sim::gen2_nominal());
  EXPECT_GT(bd.adc_plus_digital_fraction(), 0.5);
}

TEST(PowerModel, MlseCostScalesWithStates) {
  Gen2Config small = sim::gen2_nominal();
  small.mlse.memory = 2;
  Gen2Config big = small;
  big.mlse.memory = 6;
  const double p_small = gen2_power(small).group_w("Digital");
  const double p_big = gen2_power(big).group_w("Digital");
  EXPECT_GT(p_big, p_small);
}

TEST(PowerModel, EnergyPerBitTradeoff) {
  // Fewer RAKE fingers and no MLSE = less energy per bit.
  Gen2Config lean = sim::gen2_nominal();
  lean.rake.num_fingers = 2;
  lean.use_mlse = false;
  lean.mlse.memory = 1;
  Gen2Config rich = sim::gen2_nominal();
  rich.rake.num_fingers = 16;
  rich.mlse.memory = 6;
  EXPECT_LT(gen2_energy_per_bit_j(lean), gen2_energy_per_bit_j(rich));
}

TEST(PowerModel, AdcPowerScalesWithBits) {
  Gen2Config b4 = sim::gen2_nominal();
  b4.sar.bits = 4;
  Gen2Config b6 = sim::gen2_nominal();
  b6.sar.bits = 6;
  EXPECT_NEAR(gen2_power(b6).group_w("ADC") / gen2_power(b4).group_w("ADC"), 4.0, 0.01);
}

// -------------------------------------------------------- receiver smoke ----

TEST(Gen2Receiver, CleanPacketZeroErrors) {
  const Gen2Config config = sim::gen2_fast();
  Gen2Link link(config, 0xBEEF);
  txrx::TrialOptions options;
  options.ebn0_db = 25.0;  // essentially clean
  options.payload_bits = 64;
  options.cm = 0;
  const Gen2TrialResult trial = link.run_packet_full(options);
  EXPECT_TRUE(trial.rx.acquired);
  EXPECT_EQ(trial.errors, 0u) << "ber=" << static_cast<double>(trial.errors) / trial.bits;
  EXPECT_GT(trial.rx.rake_energy_capture, 0.5);
}

TEST(Gen2Receiver, MultipathPacketDecodes) {
  const Gen2Config config = sim::gen2_fast();
  Gen2Link link(config, 0xCAFE);
  txrx::TrialOptions options;
  options.ebn0_db = 22.0;
  options.payload_bits = 64;
  options.cm = 1;  // mild LOS multipath
  std::size_t total_bits = 0, total_errors = 0;
  for (int p = 0; p < 5; ++p) {
    const Gen2TrialResult trial = link.run_packet_full(options);
    total_bits += trial.bits;
    total_errors += trial.errors;
  }
  EXPECT_LT(static_cast<double>(total_errors) / static_cast<double>(total_bits), 0.02);
}

TEST(Gen1Receiver, CleanPacketZeroErrors) {
  const Gen1Config config = sim::gen1_fast();
  Gen1Link link(config, 0xF00D);
  txrx::TrialOptions options;
  options.ebn0_db = 20.0;
  options.payload_bits = 16;
  options.genie_timing = true;
  const Gen1TrialResult trial = link.run_packet_full(options);
  EXPECT_EQ(trial.errors, 0u);
  EXPECT_GT(trial.bits, 0u);
}

TEST(Gen1Receiver, AcquisitionFindsTiming) {
  const Gen1Config config = sim::gen1_nominal();
  Gen1Link link(config, 0xACE);
  txrx::TrialOptions options;
  options.ebn0_db = 18.0;  // gen-1's short-range link budget leaves ample margin
  options.payload_bits = 8;
  options.genie_timing = false;
  const auto trial = link.run_acquisition(options);
  EXPECT_TRUE(trial.acq.acquired);
  EXPECT_TRUE(trial.timing_correct);
  // Modeled sync time must satisfy the paper's < 70 us budget with the
  // default parallelism.
  EXPECT_LT(trial.acq.sync_time_s, 70e-6);
}


// ------------------------------------------------------------ unified Link ----

TEST(UnifiedLink, MakeLinkDispatchesOnTheSpecGeneration) {
  const LinkSpec spec1 = LinkSpec::for_gen1(sim::gen1_fast());
  const LinkSpec spec2 = LinkSpec::for_gen2(sim::gen2_fast());
  const auto link1 = make_link(spec1, 1);
  const auto link2 = make_link(spec2, 1);
  EXPECT_EQ(link1->generation(), Generation::kGen1);
  EXPECT_EQ(link2->generation(), Generation::kGen2);
  EXPECT_NE(dynamic_cast<Gen1Link*>(link1.get()), nullptr);
  EXPECT_NE(dynamic_cast<Gen2Link*>(link2.get()), nullptr);
}

TEST(UnifiedLink, CapsReflectTheHardware) {
  const auto gen1 = make_link(LinkSpec::for_gen1(sim::gen1_fast()), 2);
  const auto gen2 = make_link(LinkSpec::for_gen2(sim::gen2_fast()), 2);
  EXPECT_FALSE(gen1->caps().complex_baseband);
  EXPECT_TRUE(gen1->caps().supports_acquisition_trials);
  EXPECT_FALSE(gen1->caps().supports_fec);
  EXPECT_NEAR(gen1->caps().bit_rate_hz, 193e3, 1e3);
  EXPECT_TRUE(gen2->caps().complex_baseband);
  EXPECT_TRUE(gen2->caps().supports_interferer);
  EXPECT_TRUE(gen2->caps().supports_fec);
  EXPECT_DOUBLE_EQ(gen2->caps().bit_rate_hz, 100e6);
}

TEST(UnifiedLink, DefaultOptionsPerGeneration) {
  const TrialOptions gen1 = default_options(Generation::kGen1);
  EXPECT_TRUE(gen1.genie_timing);
  EXPECT_EQ(gen1.payload_bits, 32u);
  const TrialOptions gen2 = default_options(Generation::kGen2);
  EXPECT_FALSE(gen2.genie_timing);
  EXPECT_EQ(gen2.payload_bits, 200u);
}

TEST(UnifiedLink, SamePacketThroughBaseAndConcreteInterfaces) {
  // The virtual run_packet must report exactly what the detailed variant
  // reports, for the same per-trial Rng.
  const Gen2Config config = sim::gen2_fast();
  TrialOptions options;
  options.payload_bits = 64;
  options.ebn0_db = 14.0;
  options.cm = 1;

  Gen2Link detailed(config, 77);
  Rng rng_a(123);
  const Gen2TrialResult full = detailed.run_packet_full(options, rng_a);

  const auto link = make_link(LinkSpec::for_gen2(config, options), 77);
  Rng rng_b(123);
  const TrialResult slim = link->run_packet(options, rng_b);

  EXPECT_EQ(slim.bits, full.bits);
  EXPECT_EQ(slim.errors, full.errors);
  ASSERT_TRUE(slim.metric(metric_names::kAcquired).has_value());
  EXPECT_EQ(*slim.metric(metric_names::kAcquired), full.rx.acquired ? 1.0 : 0.0);
  EXPECT_EQ(slim.metric(metric_names::kRakeEnergyCapture), full.rx.rake_energy_capture);
  EXPECT_EQ(slim.metric(metric_names::kSnrEstimate), full.rx.snr_estimate_db);
  EXPECT_FALSE(slim.metric("no_such_metric").has_value());
}

TEST(UnifiedLink, Gen1RejectsGen2OnlyOptionsLoudly) {
  TrialOptions interferer = default_options(Generation::kGen1);
  interferer.interferer = true;
  EXPECT_THROW((void)make_link(LinkSpec::for_gen1(sim::gen1_fast(), interferer), 1),
               InvalidArgument);

  TrialOptions coded = default_options(Generation::kGen1);
  coded.fec = fec::k3_rate_half();
  EXPECT_THROW((void)make_link(LinkSpec::for_gen1(sim::gen1_fast(), coded), 1),
               InvalidArgument);

  // The run path is guarded too, not only the factory.
  Gen1Link link(sim::gen1_fast(), 1);
  Rng rng(5);
  EXPECT_THROW((void)link.run_packet(interferer, rng), InvalidArgument);
}

TEST(UnifiedLink, AcquisitionTrialsRunThroughRunPacket) {
  // The gen-1 acquisition side door folded into the generic interface:
  // run_packet(kind = kAcquisition) must report exactly what
  // run_acquisition reports, as attempt/failure accounting plus metrics.
  const Gen1Config config = sim::gen1_nominal();
  TrialOptions options = default_options(Generation::kGen1);
  options.kind = TrialKind::kAcquisition;
  options.genie_timing = false;
  options.payload_bits = 8;
  options.ebn0_db = 18.0;

  Gen1Link detailed(config, 0xACE);
  Rng rng_a(42);
  const Gen1Link::AcqTrial reference =
      detailed.run_acquisition(options, rng_a, options.acq_tol_samples);

  const auto link = make_link(LinkSpec::for_gen1(config, options), 0xACE);
  Rng rng_b(42);
  const TrialResult trial = link->run_packet(options, rng_b);

  EXPECT_EQ(trial.bits, 1u);  // one acquisition attempt
  EXPECT_EQ(trial.errors, reference.timing_correct ? 0u : 1u);
  EXPECT_EQ(trial.metric(metric_names::kAcquired), reference.acq.acquired ? 1.0 : 0.0);
  EXPECT_EQ(trial.metric(metric_names::kTimingCorrect),
            reference.timing_correct ? 1.0 : 0.0);
  if (reference.acq.acquired) {
    EXPECT_EQ(trial.metric(metric_names::kSyncTime), reference.acq.sync_time_s);
  } else {
    EXPECT_FALSE(trial.metric(metric_names::kSyncTime).has_value());
  }
}

TEST(UnifiedLink, Gen2RejectsAcquisitionTrialsLoudly) {
  TrialOptions options;  // gen-2 defaults
  options.kind = TrialKind::kAcquisition;
  EXPECT_THROW((void)make_link(LinkSpec::for_gen2(sim::gen2_fast(), options), 1),
               InvalidArgument);
  Gen2Link link(sim::gen2_fast(), 1);
  Rng rng(5);
  EXPECT_THROW((void)link.run_packet(options, rng), InvalidArgument);
  EXPECT_THROW((void)trial_metric_names(Generation::kGen2, TrialKind::kAcquisition),
               InvalidArgument);
}

TEST(UnifiedLink, MetricVocabularyMatchesCapsAndKind) {
  // Caps advertise the full vocabulary; trial_metric_names narrows it to
  // what one trial kind actually emits, and the emitted sets match what
  // run_packet produces (the acquired flag at minimum).
  const auto gen1 = make_link(LinkSpec::for_gen1(sim::gen1_fast()), 3);
  const auto gen2 = make_link(LinkSpec::for_gen2(sim::gen2_fast()), 3);
  EXPECT_EQ(gen1->caps().metric_names,
            (std::vector<std::string>{metric_names::kAcquired,
                                      metric_names::kIsLlr,
                                      metric_names::kTimingCorrect,
                                      metric_names::kSyncTime}));
  EXPECT_EQ(gen2->caps().metric_names,
            (std::vector<std::string>{metric_names::kAcquired,
                                      metric_names::kRakeEnergyCapture,
                                      metric_names::kSnrEstimate,
                                      metric_names::kInterfererDetected,
                                      metric_names::kInterfererPom,
                                      metric_names::kInterfererFreqErr,
                                      metric_names::kIsLlr}));
  EXPECT_EQ(trial_metric_names(Generation::kGen1, TrialKind::kPacket),
            (std::vector<std::string>{metric_names::kAcquired,
                                      metric_names::kIsLlr}));
  EXPECT_EQ(trial_metric_names(Generation::kGen1, TrialKind::kAcquisition),
            (std::vector<std::string>{metric_names::kAcquired,
                                      metric_names::kTimingCorrect,
                                      metric_names::kSyncTime}));
  EXPECT_EQ(trial_metric_names(Generation::kGen2, TrialKind::kPacket),
            gen2->caps().metric_names);

  // validate_spec rejects names outside the kind's vocabulary.
  LinkSpec spec = LinkSpec::for_gen1(sim::gen1_fast());
  spec.options.record_metrics = {metric_names::kSyncTime};  // packet kind: not emitted
  EXPECT_THROW(validate_spec(spec), InvalidArgument);
  spec.options.record_metrics = {metric_names::kAcquired};
  EXPECT_NO_THROW(validate_spec(spec));
}

}  // namespace
}  // namespace uwb::txrx
