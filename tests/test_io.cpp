// Tests for the src/io layer: the hand-rolled JSON model/parser/writer,
// spec (de)serialization (LinkSpec, BerStop, ScenarioSpec), and the sweep
// result documents behind shard merging. The headline contracts:
//
//  * write(parse(write(x))) is byte-identical to write(x) (literal-
//    preserving numbers, ordered objects);
//  * a scenario serialized to JSON, reloaded, and rerun under the same
//    seed produces a byte-identical result file to the registry-driven
//    run, for both generations;
//  * shard result docs merge back into exactly the unsharded doc.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "io/json.h"
#include "io/result_io.h"
#include "io/spec_io.h"
#include "sim/scenario.h"

namespace uwb::io {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------------- json ----

TEST(Json, ParsesScalarsArraysObjects) {
  const JsonValue v = parse_json(
      R"({"a": 1, "b": -2.5e3, "c": "hi\nthere", "d": [1, 2, 3], "e": {"nested": true}, "f": null})");
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("b").as_double(), -2500.0);
  EXPECT_EQ(v.at("c").as_string(), "hi\nthere");
  EXPECT_EQ(v.at("d").items().size(), 3u);
  EXPECT_TRUE(v.at("e").at("nested").as_bool());
  EXPECT_TRUE(v.at("f").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectsKeepOrderAndRejectDuplicates) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
  EXPECT_THROW((void)parse_json(R"({"x": 1, "x": 2})"), InvalidArgument);
}

TEST(Json, NumberLiteralsSurviveRoundTrip) {
  // 64-bit seeds exceed double precision; the literal text must survive a
  // parse -> dump cycle untouched (this is what keeps merged shard files
  // byte-identical).
  const std::string doc = R"({"seed": 6840123412451356685, "x": 1e+09, "y": 0.1})";
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(v.at("seed").as_uint64(), 6840123412451356685ULL);
  EXPECT_EQ(v.at("seed").number_text(), "6840123412451356685");
  EXPECT_EQ(dump_json(v), doc);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW((void)parse_json(""), InvalidArgument);
  EXPECT_THROW((void)parse_json("{"), InvalidArgument);
  EXPECT_THROW((void)parse_json("[1, 2,]"), InvalidArgument);
  EXPECT_THROW((void)parse_json("01 garbage"), InvalidArgument);
  EXPECT_THROW((void)parse_json(R"("unterminated)"), InvalidArgument);
  EXPECT_THROW((void)parse_json("{\"a\": 1} trailing"), InvalidArgument);
  EXPECT_THROW((void)parse_json("1."), InvalidArgument);
}

TEST(Json, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(4e9), "4e+09");
  for (double v : {1.0 / 3.0, 6.02214076e23, -0.015625, 1e-300}) {
    EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
  }
}

TEST(Json, PrettyDumpParsesBack) {
  JsonValue v = JsonValue::object();
  v.set("name", JsonValue::string("x"));
  JsonValue arr = JsonValue::array();
  JsonValue inner = JsonValue::object();
  inner.set("k", JsonValue::number(uint64_t{7}));
  arr.push_back(std::move(inner));
  v.set("list", std::move(arr));
  const std::string text = dump_json_pretty(v);
  const JsonValue back = parse_json(text);
  EXPECT_EQ(back.at("name").as_string(), "x");
  EXPECT_EQ(back.at("list").items()[0].at("k").as_uint64(), 7u);
}

// ------------------------------------------------------------------ specs ----

TEST(SpecIo, TrialOptionsRoundTripIncludingFec) {
  txrx::TrialOptions options;
  options.cm = 3;
  options.ebn0_db = 12.5;
  options.payload_bits = 123;
  options.genie_timing = true;
  options.interferer = true;
  options.interferer_sir_db = -10.0;
  options.auto_notch = true;
  options.fec = fec::k7_rate_half();

  const txrx::TrialOptions back =
      trial_options_from_json(parse_json(dump_json(to_json(options))));
  EXPECT_EQ(back.cm, 3);
  EXPECT_EQ(back.ebn0_db, 12.5);
  EXPECT_EQ(back.payload_bits, 123u);
  EXPECT_TRUE(back.genie_timing);
  EXPECT_TRUE(back.interferer);
  EXPECT_EQ(back.interferer_sir_db, -10.0);
  EXPECT_TRUE(back.auto_notch);
  ASSERT_TRUE(back.fec.has_value());
  EXPECT_EQ(back.fec->constraint_length, 7);
  EXPECT_EQ(back.fec->generators, fec::k7_rate_half().generators);
}

TEST(SpecIo, ChannelSourceRoundTripAndStrictKeys) {
  txrx::TrialOptions options;
  options.cm = 3;
  options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
  options.channel_source.ensemble_seed = 0xC1A0'0000'0000'BEEFULL;  // 64-bit exact
  options.channel_source.ensemble_count = 64;

  const txrx::TrialOptions back =
      trial_options_from_json(parse_json(dump_json(to_json(options))));
  EXPECT_EQ(back.channel_source, options.channel_source);

  // Fresh is the default for terse documents...
  EXPECT_EQ(trial_options_from_json(parse_json("{}")).channel_source.mode,
            txrx::ChannelSource::Mode::kFresh);
  // ...and typos anywhere in the object fail loudly.
  EXPECT_THROW((void)trial_options_from_json(
                   parse_json(R"({"channel_source": {"ensembleCount": 4}})")),
               InvalidArgument);
  EXPECT_THROW((void)trial_options_from_json(
                   parse_json(R"({"channel_source": {"mode": "ensembel"}})")),
               InvalidArgument);
}

TEST(SpecIo, LinkSpecRoundTripIsTextStable) {
  // Serialize -> parse -> serialize must reproduce the text exactly, for
  // both generations (this pins every config field's formatting).
  txrx::Gen2Config gen2 = sim::gen2_fast();
  gen2.rake.num_fingers = 16;
  gen2.modulation = phy::Modulation::kPam4;
  const txrx::LinkSpec spec2 = txrx::LinkSpec::for_gen2(gen2);
  const std::string text2 = dump_json(to_json(spec2));
  EXPECT_EQ(dump_json(to_json(link_spec_from_json(parse_json(text2)))), text2);

  const txrx::LinkSpec spec1 = txrx::LinkSpec::for_gen1(sim::gen1_fast());
  const std::string text1 = dump_json(to_json(spec1));
  EXPECT_EQ(dump_json(to_json(link_spec_from_json(parse_json(text1)))), text1);
  EXPECT_EQ(link_spec_from_json(parse_json(text1)).generation(),
            txrx::Generation::kGen1);
}

TEST(SpecIo, UnknownKeysFailLoudly) {
  EXPECT_THROW((void)trial_options_from_json(parse_json(R"({"ebno_db": 10})")),
               InvalidArgument);
  EXPECT_THROW((void)gen2_config_from_json(parse_json(R"({"prf_mhz": 100})")),
               InvalidArgument);
  EXPECT_THROW(
      (void)link_spec_from_json(parse_json(R"({"generation": "gen3", "config": {}})")),
      InvalidArgument);
}

TEST(SpecIo, MissingKeysKeepDefaults) {
  const txrx::Gen2Config config =
      gen2_config_from_json(parse_json(R"({"channel_index": 9})"));
  EXPECT_EQ(config.channel_index, 9);
  EXPECT_EQ(config.prf_hz, txrx::Gen2Config{}.prf_hz);
  EXPECT_EQ(config.sar.bits, txrx::Gen2Config{}.sar.bits);
}

TEST(SpecIo, TerseGen1OptionsKeepGenerationDefaults) {
  // A hand-written gen-1 spec with a sparse options object must fall back
  // to the gen-1 defaults (genie timing, short payload), exactly as if the
  // object were omitted entirely.
  const txrx::LinkSpec spec = link_spec_from_json(parse_json(
      R"({"generation": "gen1", "config": {}, "options": {"ebn0_db": 8}})"));
  EXPECT_EQ(spec.options.ebn0_db, 8.0);
  EXPECT_TRUE(spec.options.genie_timing);
  EXPECT_EQ(spec.options.payload_bits, 32u);

  const txrx::LinkSpec bare =
      link_spec_from_json(parse_json(R"({"generation": "gen1", "config": {}})"));
  EXPECT_TRUE(bare.options.genie_timing);
  EXPECT_EQ(bare.options.payload_bits, 32u);
}

TEST(SpecIo, BerStopRoundTrip) {
  sim::BerStop stop;
  stop.min_errors = 7;
  stop.max_bits = 1234;
  stop.max_trials = 99;
  const sim::BerStop back = ber_stop_from_json(parse_json(dump_json(to_json(stop))));
  EXPECT_EQ(back.min_errors, 7u);
  EXPECT_EQ(back.max_bits, 1234u);
  EXPECT_EQ(back.max_trials, 99u);
  EXPECT_EQ(back.metric, "");

  // The generalized rule's metric round-trips (and is only serialized when
  // set, so legacy documents parse as bit-error rules).
  stop.metric = "timing_correct";
  EXPECT_EQ(ber_stop_from_json(parse_json(dump_json(to_json(stop)))).metric,
            "timing_correct");
}

TEST(SpecIo, SamplingPolicyRoundTripAndStrictKeys) {
  txrx::TrialOptions options;
  options.sampling.mode = stats::SamplingMode::kAutoLadder;
  options.sampling.max_scale = 5.5;
  options.sampling.levels = 3;
  txrx::TrialOptions back =
      trial_options_from_json(parse_json(dump_json(to_json(options))));
  EXPECT_EQ(back.sampling, options.sampling);

  options.sampling.mode = stats::SamplingMode::kNoiseScale;
  options.sampling.scale = 3.25;
  back = trial_options_from_json(parse_json(dump_json(to_json(options))));
  EXPECT_EQ(back.sampling, options.sampling);

  // Plain Monte-Carlo is the terse default and is not serialized.
  EXPECT_FALSE(trial_options_from_json(parse_json("{}")).sampling.active());
  EXPECT_EQ(dump_json(to_json(txrx::TrialOptions{})).find("sampling"),
            std::string::npos);

  // A typo'd policy name or key must fail loudly, not run unweighted.
  EXPECT_THROW((void)trial_options_from_json(
                   parse_json(R"({"sampling": {"mode": "noise_scales"}})")),
               InvalidArgument);
  EXPECT_THROW((void)trial_options_from_json(
                   parse_json(R"({"sampling": {"mode": "noise_scale", "scal": 4}})")),
               InvalidArgument);
}

TEST(SpecIo, CiWidthStopRuleRoundTrip) {
  sim::BerStop stop;
  stop.min_errors = 5;
  stop.max_bits = 100;
  stop.max_trials = 10;
  stop.target_rel_ci_width = 0.25;
  EXPECT_EQ(ber_stop_from_json(parse_json(dump_json(to_json(stop)))), stop);
  // Legacy documents without the field parse as plain error-budget rules.
  EXPECT_EQ(ber_stop_from_json(parse_json(R"({"min_errors": 5})"))
                .target_rel_ci_width,
            0.0);
}

TEST(SpecIo, TrialKindAndRecordMetricsRoundTrip) {
  txrx::TrialOptions options = txrx::default_options(txrx::Generation::kGen1);
  options.kind = txrx::TrialKind::kAcquisition;
  options.genie_timing = false;
  options.acq_tol_samples = 5;
  options.record_metrics = {txrx::metric_names::kTimingCorrect,
                            txrx::metric_names::kSyncTime};
  const txrx::TrialOptions back =
      trial_options_from_json(parse_json(dump_json(to_json(options))));
  EXPECT_EQ(back.kind, txrx::TrialKind::kAcquisition);
  EXPECT_EQ(back.acq_tol_samples, 5u);
  EXPECT_EQ(back.record_metrics, options.record_metrics);

  // Defaults for terse documents.
  EXPECT_EQ(trial_options_from_json(parse_json("{}")).kind, txrx::TrialKind::kPacket);
  EXPECT_TRUE(trial_options_from_json(parse_json("{}")).record_metrics.empty());
  // A bogus kind fails loudly.
  EXPECT_THROW((void)trial_options_from_json(parse_json(R"({"kind": "acquisiton"})")),
               InvalidArgument);
}

TEST(SpecIo, UnknownMetricNameInSpecFailsLoudly) {
  // Strict like the unknown-key checks: a typo'd metric name in
  // record_metrics must fail at load time, not record empty columns.
  EXPECT_THROW(
      (void)link_spec_from_json(parse_json(
          R"({"generation": "gen1", "config": {},
              "options": {"kind": "acquisition", "genie_timing": false,
                          "record_metrics": ["sync_tyme_s"]}})")),
      InvalidArgument);
  // A real metric of the wrong trial kind is equally unknown: a gen-1
  // *packet* trial never emits sync_time_s.
  EXPECT_THROW(
      (void)link_spec_from_json(parse_json(
          R"({"generation": "gen1", "config": {},
              "options": {"record_metrics": ["sync_time_s"]}})")),
      InvalidArgument);
  // And an acquisition-kind spec on gen-2 is rejected outright.
  EXPECT_THROW((void)link_spec_from_json(parse_json(
                   R"({"generation": "gen2", "config": {},
                       "options": {"kind": "acquisition",
                                   "record_metrics": ["acquired"]}})")),
               InvalidArgument);
  // The same names spelled correctly load fine.
  const txrx::LinkSpec ok = link_spec_from_json(parse_json(
      R"({"generation": "gen1", "config": {},
          "options": {"kind": "acquisition", "genie_timing": false,
                      "record_metrics": ["acquired", "sync_time_s"]}})"));
  EXPECT_EQ(ok.options.record_metrics.size(), 2u);
}

TEST(SpecIo, ScenarioFileRoundTripPreservesTagsAndLabels) {
  engine::ScenarioSpec scenario = engine::ScenarioRegistry::global().make("gen2_cm_grid");
  scenario.points.resize(3);
  save_scenario_file(scenario, "test_results/spec_roundtrip.json");
  const engine::ScenarioSpec back = load_scenario_file("test_results/spec_roundtrip.json");

  EXPECT_EQ(back.name, scenario.name);
  EXPECT_EQ(back.description, scenario.description);
  ASSERT_EQ(back.points.size(), 3u);
  for (std::size_t i = 0; i < back.points.size(); ++i) {
    EXPECT_EQ(back.points[i].label, scenario.points[i].label);
    EXPECT_EQ(back.points[i].tags, scenario.points[i].tags);
    EXPECT_EQ(back.points[i].tag("channel"), scenario.points[i].tag("channel"));
  }
}

// --------------------------------------- reload + rerun == registry run ----

/// Runs \p scenario under a pinned seed/stop and returns the result JSON.
std::string run_to_json(const engine::ScenarioSpec& scenario, const std::string& path) {
  engine::SweepConfig config;
  config.seed = 0x10AD'F11E;
  config.workers = 2;
  config.stop.min_errors = 3;
  config.stop.max_bits = 600;
  config.stop.max_trials = 3;
  engine::JsonSink json(path);
  (void)engine::SweepEngine(config).run(scenario, {&json});
  return slurp(path);
}

TEST(SpecIo, ReloadedScenarioRerunsByteIdenticalGen2) {
  engine::ScenarioSpec scenario = engine::ScenarioRegistry::global().make("gen2_cm_grid");
  scenario.points.resize(2);  // AWGN @ 8 dB: full and mf_only
  const std::string direct = run_to_json(scenario, "test_results/reload_gen2_direct.json");

  save_scenario_file(scenario, "test_results/reload_gen2_spec.json");
  const engine::ScenarioSpec reloaded =
      load_scenario_file("test_results/reload_gen2_spec.json");
  const std::string rerun = run_to_json(reloaded, "test_results/reload_gen2_rerun.json");

  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(direct, rerun);
}

TEST(SpecIo, ReloadedScenarioRerunsByteIdenticalGen1) {
  engine::ScenarioSpec scenario =
      engine::ScenarioRegistry::global().make("gen1_waterfall");
  engine::restrict_scenario(scenario, "ebn0_db", "4,6");
  const std::string direct = run_to_json(scenario, "test_results/reload_gen1_direct.json");

  save_scenario_file(scenario, "test_results/reload_gen1_spec.json");
  const engine::ScenarioSpec reloaded =
      load_scenario_file("test_results/reload_gen1_spec.json");
  const std::string rerun = run_to_json(reloaded, "test_results/reload_gen1_rerun.json");

  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(direct, rerun);
}

// ---------------------------------------------------------------- results ----

TEST(ResultIo, WriteParseWriteIsByteIdentical) {
  ResultDoc doc;
  doc.scenario = "demo";
  doc.seed = 0x5eed'0000'cafe'f00dULL;  // > 2^53: exercises integer fidelity
  doc.stop.min_errors = 10;
  doc.stop.max_bits = 1000;
  doc.stop.max_trials = 50;
  ResultPoint point;
  point.index = 3;
  point.label = "CM3 | 12";
  point.tags = {{"channel", "CM3"}, {"ebn0_db", "12"}};
  point.ber = "0.0123";
  point.ci95 = "1.5e-05";
  point.errors = 12;
  point.bits = 975;
  point.trials = 5;
  doc.points.push_back(point);

  const std::string text = write_result_json(doc);
  const ResultDoc parsed = parse_result_json(text);
  EXPECT_EQ(parsed.scenario, "demo");
  EXPECT_EQ(parsed.seed, doc.seed);
  EXPECT_EQ(parsed.points.size(), 1u);
  EXPECT_EQ(parsed.points[0].tags, point.tags);
  EXPECT_EQ(write_result_json(parsed), text);
}

TEST(ResultIo, MetricsAndStopMetricRoundTripByteIdentical) {
  ResultDoc doc;
  doc.scenario = "acq";
  doc.seed = 7;
  doc.stop.min_errors = 10;
  doc.stop.max_bits = 25;
  doc.stop.max_trials = 25;
  doc.stop.metric = "timing_correct";
  ResultPoint point;
  point.index = 0;
  point.label = "2 | 14";
  point.tags = {{"preamble_reps", "2"}, {"ebn0_db", "14"}};
  point.ber = "0.08";
  point.ci95 = "0.1";
  point.errors = 2;
  point.bits = 25;
  point.trials = 25;
  point.metrics = {{"acquired", 25, "0.96", "0.04"},
                   {"sync_time_s", 24, "6.48e-05", "1.2e-11"}};
  doc.points.push_back(point);

  const std::string text = write_result_json(doc);
  const ResultDoc parsed = parse_result_json(text);
  EXPECT_EQ(parsed.stop.metric, "timing_correct");
  ASSERT_EQ(parsed.points.size(), 1u);
  EXPECT_EQ(parsed.points[0].metrics, point.metrics);
  EXPECT_EQ(write_result_json(parsed), text);
}

TEST(ResultIo, CiFieldsRoundTripByteIdentical) {
  ResultDoc doc;
  doc.scenario = "deep";
  doc.seed = 11;
  ResultPoint plain;
  plain.index = 0;
  plain.label = "AWGN | 12 | plain";
  plain.ber = "1.2e-05";
  plain.ci95 = "4e-06";
  plain.ci_lo = "8.1e-06";
  plain.ci_hi = "1.9e-05";
  plain.ci_method = "clopper_pearson";
  plain.errors = 9;
  plain.bits = 750000;
  plain.trials = 2500;
  ResultPoint is = plain;
  is.index = 1;
  is.label = "AWGN | 12 | is";
  is.weighted = true;
  is.ci_method = "normal_weighted";
  is.ess = "1743.2";
  doc.points = {plain, is};

  const std::string text = write_result_json(doc);
  const ResultDoc parsed = parse_result_json(text);
  ASSERT_EQ(parsed.points.size(), 2u);
  EXPECT_EQ(parsed.points[0].ci_lo, "8.1e-06");
  EXPECT_EQ(parsed.points[0].ci_method, "clopper_pearson");
  EXPECT_FALSE(parsed.points[0].weighted);
  EXPECT_TRUE(parsed.points[1].weighted);
  EXPECT_EQ(parsed.points[1].ess, "1743.2");
  EXPECT_EQ(write_result_json(parsed), text);
}

TEST(ResultIo, PreCiDocumentsRoundTripWithoutInventedFields) {
  // A document written before the CI fields existed must parse and write
  // back byte-identically -- absent fields stay absent.
  const std::string old_doc =
      "{\n  \"scenario\": \"legacy\",\n  \"seed\": 3,\n"
      "  \"stop\": {\"min_errors\": 50, \"max_bits\": 2000000, \"max_trials\": 100000},\n"
      "  \"points\": [\n"
      "    {\"index\": 0, \"label\": \"p0\", \"tags\": {}, \"ber\": 0.01, "
      "\"ci95\": 0.001, \"errors\": 10, \"bits\": 1000, \"trials\": 4}\n"
      "  ]\n}\n";
  const ResultDoc parsed = parse_result_json(old_doc);
  EXPECT_TRUE(parsed.points[0].ci_lo.empty());
  EXPECT_TRUE(parsed.points[0].ci_method.empty());
  EXPECT_EQ(write_result_json(parsed), old_doc);
}

TEST(ResultIo, MergeRejectsStopMetricMismatch) {
  ResultDoc a, b;
  a.scenario = b.scenario = "s";
  a.seed = b.seed = 1;
  a.stop.metric = "timing_correct";
  b.stop.metric = "";
  EXPECT_THROW((void)merge_results({a, b}), InvalidArgument);
  b.stop.metric = "timing_correct";
  EXPECT_EQ(merge_results({a, b}).stop.metric, "timing_correct");
}

TEST(ResultIo, MergeRestoresUnshardedDocument) {
  auto make_point = [](uint64_t index) {
    ResultPoint p;
    p.index = index;
    p.label = "p" + std::to_string(index);
    p.ber = "0.5";
    p.ci95 = "0.1";
    p.bits = 100 + index;
    return p;
  };
  ResultDoc full;
  full.scenario = "s";
  full.seed = 42;
  for (uint64_t i = 0; i < 5; ++i) full.points.push_back(make_point(i));

  ResultDoc shard0 = full, shard1 = full;
  shard0.points.clear();
  shard1.points.clear();
  for (uint64_t i = 0; i < 5; ++i) {
    (i % 2 == 0 ? shard0 : shard1).points.push_back(make_point(i));
  }

  const ResultDoc merged = merge_results({shard1, shard0});  // order-insensitive
  EXPECT_EQ(write_result_json(merged), write_result_json(full));
}

TEST(ResultIo, MergeRejectsMismatchedHeadersAndDuplicates) {
  ResultDoc a, b;
  a.scenario = b.scenario = "s";
  a.seed = 1;
  b.seed = 2;
  EXPECT_THROW((void)merge_results({a, b}), InvalidArgument);

  b.seed = 1;
  ResultPoint p;
  p.index = 0;
  a.points.push_back(p);
  b.points.push_back(p);
  EXPECT_THROW((void)merge_results({a, b}), InvalidArgument);
  EXPECT_THROW((void)merge_results({}), InvalidArgument);
}

}  // namespace
}  // namespace uwb::io
