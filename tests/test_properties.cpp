// Cross-cutting property tests: invariants that must hold over whole
// parameter families, exercised with TEST_P sweeps. These complement the
// per-module example-based tests.

#include <gtest/gtest.h>

#include <cmath>

#include "adc/flash_adc.h"
#include "adc/quantizer.h"
#include "channel/awgn.h"
#include "channel/saleh_valenzuela.h"
#include "common/error.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "dsp/delay_line.h"
#include "dsp/fft.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"
#include "fec/convolutional.h"
#include "fec/viterbi_decoder.h"
#include "phy/crc.h"
#include "phy/modulation.h"
#include "phy/scrambler.h"
#include "rf/notch_filter.h"

namespace uwb {
namespace {

// ----------------------------------------------------------- FFT family ----

class FftSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeProperty, ParsevalAndRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n);
  CplxVec x(n);
  for (auto& v : x) v = rng.cgaussian();
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);

  CplxVec spec = x;
  dsp::fft_inplace(spec);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8 * time_energy)
      << "Parseval violated at n=" << n;

  dsp::ifft_inplace(spec);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(spec[i] - x[i]));
  EXPECT_LT(err, 1e-9) << "round trip at n=" << n;
}

TEST_P(FftSizeProperty, ParsevalHoldsAcrossTheWholeFftPath) {
  // Parseval through every public entry of the FFT path, not just the
  // in-place core: the real-input overload with zero-padding to an
  // explicit larger size, the plan-cache execute path, and fast
  // convolution against a unit impulse (which must preserve the signal,
  // hence its energy, exactly up to roundoff).
  const std::size_t n = GetParam();
  Rng rng(n + 2);

  // Real-input overload, odd-length input zero-padded to 2n: padding
  // adds no energy, so sum |X[k]|^2 / 2n still equals the time energy.
  RealVec xr(n - 1);
  for (auto& v : xr) v = rng.gaussian();
  double real_energy = 0.0;
  for (const double v : xr) real_energy += v * v;
  const CplxVec spec = dsp::fft(xr, 2 * n);
  ASSERT_EQ(spec.size(), 2 * n);
  double padded_energy = 0.0;
  for (const auto& v : spec) padded_energy += std::norm(v);
  EXPECT_NEAR(padded_energy / static_cast<double>(2 * n), real_energy,
              1e-8 * real_energy)
      << "real-input overload at n=" << n;

  // Plan-cache path: forward(ptr) must agree with the free function.
  CplxVec via_plan(2 * n);
  for (std::size_t i = 0; i < xr.size(); ++i) via_plan[i] = xr[i];
  dsp::fft_plan(2 * n).forward(via_plan.data());
  for (std::size_t i = 0; i < via_plan.size(); ++i) {
    EXPECT_LT(std::abs(via_plan[i] - spec[i]), 1e-9);
  }

  // Fast convolution with a unit impulse is the identity (plus exact
  // zeros), so the convolution path conserves energy too.
  const RealVec conv = dsp::fft_convolve(xr, RealVec{1.0});
  ASSERT_EQ(conv.size(), xr.size());
  double conv_energy = 0.0;
  for (const double v : conv) conv_energy += v * v;
  EXPECT_NEAR(conv_energy, real_energy, 1e-8 * real_energy);
}

TEST_P(FftSizeProperty, LinearityOfTransform) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  CplxVec a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.cgaussian();
    b[i] = rng.cgaussian();
    sum[i] = a[i] + 2.0 * b[i];
  }
  const CplxVec fa = dsp::fft(a), fb = dsp::fft(b), fsum = dsp::fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeProperty,
                         ::testing::Values(8u, 32u, 128u, 512u, 2048u));

// ------------------------------------------------------ filter families ----

class LowpassProperty : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(LowpassProperty, UnitDcGainAndStopband) {
  const auto [cutoff_frac, taps] = GetParam();
  const double fs = 1e9;
  const double cutoff = cutoff_frac * fs;
  const RealVec h = dsp::design_lowpass(cutoff, fs, taps);
  EXPECT_NEAR(dsp::fir_gain_db_at(h, 0.0, fs), 0.0, 0.05) << "DC gain";
  // Deep into the stopband (2x cutoff, if representable).
  if (2.2 * cutoff < fs / 2.0) {
    EXPECT_LT(dsp::fir_gain_db_at(h, 2.2 * cutoff, fs), -25.0)
        << "cutoff_frac=" << cutoff_frac << " taps=" << taps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, LowpassProperty,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.3),
                       ::testing::Values(std::size_t{31}, std::size_t{63}, std::size_t{127})));

class RrcBetaProperty : public ::testing::TestWithParam<double> {};

TEST_P(RrcBetaProperty, MatchedPairSatisfiesNyquist) {
  const double beta = GetParam();
  const int sps = 6;
  // Small roll-offs decay slowly in time; widen the span so truncation ISI
  // stays below the assertion tolerance.
  const int span = beta < 0.2 ? 16 : 8;
  const RealVec rrc = dsp::design_root_raised_cosine(1e6, beta, span, sps);
  const RealVec rc = dsp::convolve(rrc, rrc);
  const std::size_t center = (rc.size() - 1) / 2;
  EXPECT_NEAR(rc[center], 1.0, 1e-4);  // unit energy
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(rc[center + static_cast<std::size_t>(k * sps)], 0.0, 2e-3)
        << "beta=" << beta << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, RrcBetaProperty, ::testing::Values(0.1, 0.25, 0.5, 0.9));

// ----------------------------------------------------- m-sequence family ----

class MSequenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(MSequenceProperty, PeriodBalanceAutocorrelation) {
  const int degree = GetParam();
  const BitVec seq = phy::msequence(degree);
  const std::size_t n = (std::size_t{1} << degree) - 1;
  ASSERT_EQ(seq.size(), n);

  // Balance: 2^(d-1) ones.
  std::size_t ones = 0;
  for (auto b : seq) ones += b;
  EXPECT_EQ(ones, (std::size_t{1} << (degree - 1)));

  // Two-valued periodic autocorrelation (spot-check a few shifts).
  const auto chips = phy::to_chips(seq);
  for (std::size_t shift : {std::size_t{1}, n / 3, n - 1}) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += chips[i] * chips[(i + shift) % n];
    EXPECT_NEAR(acc, -1.0, 1e-9) << "degree=" << degree << " shift=" << shift;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, MSequenceProperty,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));

// ------------------------------------------------------ quantizer family ----

class QuantizerBitsProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitsProperty, SqnrFollowsSixDbPerBit) {
  const int bits = GetParam();
  adc::UniformQuantizer q(bits, 1.0);
  double sig = 0.0, err = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double x = std::sin(two_pi * 0.013771 * i);
    const double y = q.level_of(q.convert(x));
    sig += x * x;
    err += (y - x) * (y - x);
  }
  EXPECT_NEAR(to_db(sig / err), adc::ideal_sqnr_db(bits), 1.2) << "bits=" << bits;
}

TEST_P(QuantizerBitsProperty, TransferMonotone) {
  const int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits));
  adc::FlashParams params;
  params.bits = bits;
  params.comparator_offset_sigma = 0.3;
  adc::FlashAdc flash(params, rng);
  int prev = flash.convert(-1.5);
  for (double x = -1.5; x <= 1.5; x += 0.002) {
    const int code = flash.convert(x);
    ASSERT_GE(code, prev);
    prev = code;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerBitsProperty, ::testing::Values(2, 3, 4, 5, 6, 8));

// ----------------------------------------------------------- CRC family ----

class CrcProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrcProperty, RandomRoundTripAndErrorDetection) {
  const std::size_t len = GetParam();
  Rng rng(len);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec data = rng.bits(len);
    const BitVec coded16 = phy::append_crc16(data);
    const BitVec coded32 = phy::append_crc32(data);
    EXPECT_TRUE(phy::check_crc16(coded16));
    EXPECT_TRUE(phy::check_crc32(coded32));

    // Any single-bit flip must be caught.
    BitVec corrupted = coded32;
    corrupted[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(corrupted.size() - 1)))] ^= 1;
    EXPECT_FALSE(phy::check_crc32(corrupted));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrcProperty, ::testing::Values(1u, 8u, 33u, 100u, 999u));

// ------------------------------------------------------ conv-code family ----

class ConvCodeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvCodeProperty, AnySingleCodedBitErrorIsCorrected) {
  // A rate-1/2 code with free distance >= 5 corrects any single error.
  const fec::ConvCode code = GetParam() == 0 ? fec::k3_rate_half() : fec::k7_rate_half();
  const fec::ConvEncoder enc(code);
  const fec::ViterbiDecoder dec(code);
  Rng rng(7);
  const BitVec info = rng.bits(60);
  const BitVec coded = enc.encode(info);
  for (std::size_t flip = 0; flip < coded.size(); flip += 5) {
    BitVec corrupted = coded;
    corrupted[flip] ^= 1;
    EXPECT_EQ(dec.decode_hard(corrupted), info) << "flip=" << flip;
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, ConvCodeProperty, ::testing::Values(0, 1));

// ------------------------------------------------------ SV model family ----

class SvSeedProperty : public ::testing::TestWithParam<int> {};

TEST_P(SvSeedProperty, EveryRealizationNormalizedCausalSorted) {
  for (int cm = 1; cm <= 4; ++cm) {
    const channel::SalehValenzuela sv(channel::cm_by_index(cm));
    Rng rng(static_cast<uint64_t>(GetParam() * 10 + cm));
    const channel::Cir cir = sv.realize(rng);
    EXPECT_NEAR(cir.total_energy(), 1.0, 1e-9);
    double prev = -1.0;
    for (const auto& tap : cir.taps()) {
      EXPECT_GE(tap.delay_s, 0.0);
      EXPECT_GE(tap.delay_s, prev);
      prev = tap.delay_s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvSeedProperty, ::testing::Range(1, 9));

// ----------------------------------------------------- notch tuning family ----

class NotchFrequencyProperty : public ::testing::TestWithParam<double> {};

TEST_P(NotchFrequencyProperty, ZeroAtCenterUnityFarAway) {
  const double f0 = GetParam();
  const double fs = 1e9;
  rf::ComplexNotch notch(f0, fs, 0.97);
  EXPECT_LT(std::abs(notch.response_at(f0)), 1e-9) << "f0=" << f0;
  // A quarter-band away the gain must be back within 1 dB of unity.
  const double far = (f0 > 0.0) ? f0 - 0.25 * fs : f0 + 0.25 * fs;
  EXPECT_NEAR(amp_to_db(std::abs(notch.response_at(far))), 0.0, 1.0) << "f0=" << f0;
}

INSTANTIATE_TEST_SUITE_P(Tunings, NotchFrequencyProperty,
                         ::testing::Values(-350e6, -120e6, -10e6, 15e6, 150e6, 400e6));

// --------------------------------------------------- AWGN calibration family ----

class AwgnEbn0Property : public ::testing::TestWithParam<double> {};

TEST_P(AwgnEbn0Property, OneShotBerMatchesQFunction) {
  const double ebn0_db = GetParam();
  Rng rng(static_cast<uint64_t>(ebn0_db * 10));
  const double n0 = channel::n0_for_ebn0(1.0, ebn0_db);
  const double theory = bpsk_awgn_ber(from_db(ebn0_db));
  std::size_t errors = 0;
  const std::size_t n = 300000;
  const double sigma = std::sqrt(n0 / 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double tx = rng.bit() ? -1.0 : 1.0;
    if (((tx + rng.gaussian(0.0, sigma)) < 0.0) != (tx < 0.0)) ++errors;
  }
  const double measured = static_cast<double>(errors) / static_cast<double>(n);
  EXPECT_NEAR(measured, theory, 0.25 * theory + 3e-5) << "Eb/N0=" << ebn0_db;
}

INSTANTIATE_TEST_SUITE_P(Points, AwgnEbn0Property, ::testing::Values(0.0, 2.0, 4.0, 6.0, 8.0));

// ----------------------------------------------------- modulation family ----

class ModulatorNoiseProperty : public ::testing::TestWithParam<phy::Modulation> {};

TEST_P(ModulatorNoiseProperty, DemapsCorrectlyWithSmallPerturbation) {
  // Soft values perturbed by less than half the minimum decision distance
  // must demap without error.
  const auto mod = phy::make_modulator(GetParam(), 100e6);
  Rng rng(9);
  BitVec bits = rng.bits(256);
  while (bits.size() % static_cast<std::size_t>(mod->bits_per_symbol()) != 0) bits.push_back(0);
  const phy::SymbolMapping map = mod->map(bits);

  std::vector<double> soft;
  const double eps = 0.15;  // well below half of any scheme's min distance
  if (GetParam() == phy::Modulation::kPpm) {
    for (std::size_t k = 0; k < map.weights.size(); ++k) {
      const bool late = map.time_offsets_s[k] > 0.0;
      soft.push_back((late ? 0.0 : 1.0) + rng.uniform(-eps, eps));
      soft.push_back((late ? 1.0 : 0.0) + rng.uniform(-eps, eps));
    }
  } else {
    for (double w : map.weights) soft.push_back(w + rng.uniform(-eps, eps));
  }
  EXPECT_EQ(mod->demap(soft), bits);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ModulatorNoiseProperty,
                         ::testing::Values(phy::Modulation::kBpsk, phy::Modulation::kOok,
                                           phy::Modulation::kPpm, phy::Modulation::kPam4));

// ------------------------------------------------------ fractional delay ----

class FractionalDelayProperty : public ::testing::TestWithParam<double> {};

TEST_P(FractionalDelayProperty, SlowSignalShiftsWithoutDistortion) {
  // For a signal far below Nyquist, linear-interpolation delay must match
  // the analytically shifted signal closely.
  const double d = GetParam();
  const double fs = 1e9;
  const double f0 = 20e6;  // 2% of fs
  RealVec x(512);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * f0 * static_cast<double>(i) / fs);
  }
  const RealVec y = dsp::fractional_delay(x, d);
  double max_err = 0.0;
  for (std::size_t i = 64; i < x.size(); ++i) {
    const double expected = std::sin(two_pi * f0 * (static_cast<double>(i) - d) / fs);
    max_err = std::max(max_err, std::abs(y[i] - expected));
  }
  EXPECT_LT(max_err, 0.01) << "delay=" << d;
}

INSTANTIATE_TEST_SUITE_P(Delays, FractionalDelayProperty,
                         ::testing::Values(0.0, 0.25, 0.5, 1.75, 7.5));

}  // namespace
}  // namespace uwb
