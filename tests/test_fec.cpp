// Tests for the convolutional encoder and Viterbi decoder.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "fec/convolutional.h"
#include "fec/viterbi_decoder.h"
#include "phy/bits.h"

namespace uwb::fec {
namespace {

TEST(ConvEncoder, RateAndLength) {
  const ConvEncoder enc(k3_rate_half());
  const BitVec coded = enc.encode(BitVec{1, 0, 1, 1});
  // (4 info + 2 tail) * 2 outputs.
  EXPECT_EQ(coded.size(), 12u);
}

TEST(ConvEncoder, KnownK3Sequence) {
  // (7,5) K=3 code, input 1011 from state 0. Register = [newest | s1 s0].
  const ConvEncoder enc(k3_rate_half());
  // Hand-computed branches: g0 = 111, g1 = 101.
  //  in=1, s=00: reg=100 -> g0: 1, g1: 1
  EXPECT_EQ(enc.branch_output(0b00, 1), 0b11u);
  //  in=0, s=10 (prev input 1): reg=010 -> g0: 1, g1: 0
  EXPECT_EQ(enc.branch_output(0b10, 0), 0b01u);
  EXPECT_EQ(enc.next_state(0b00, 1), 0b10);
  EXPECT_EQ(enc.next_state(0b10, 0), 0b01);
}

TEST(ConvEncoder, RejectsBadGenerators) {
  ConvCode bad;
  bad.constraint_length = 3;
  bad.generators = {0b1111};  // wider than K
  EXPECT_THROW(ConvEncoder{bad}, InvalidArgument);
  bad.generators = {};
  EXPECT_THROW(ConvEncoder{bad}, InvalidArgument);
}

class CodeRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  ConvCode code() const {
    switch (GetParam()) {
      case 0: return k3_rate_half();
      case 1: return k7_rate_half();
      default: return k3_rate_third();
    }
  }
};

TEST_P(CodeRoundTrip, NoiselessDecode) {
  const ConvCode cc = code();
  const ConvEncoder enc(cc);
  const ViterbiDecoder dec(cc);
  Rng rng(1);
  const BitVec info = rng.bits(200);
  const BitVec coded = enc.encode(info);
  EXPECT_EQ(dec.decode_hard(coded), info);
}

TEST_P(CodeRoundTrip, CorrectsScatteredErrors) {
  const ConvCode cc = code();
  const ConvEncoder enc(cc);
  const ViterbiDecoder dec(cc);
  Rng rng(2);
  const BitVec info = rng.bits(300);
  BitVec coded = enc.encode(info);
  // Flip isolated bits far apart (beyond the code's memory each time).
  for (std::size_t i = 10; i + 1 < coded.size(); i += 40) {
    coded[i] ^= 1;
  }
  EXPECT_EQ(dec.decode_hard(coded), info);
}

INSTANTIATE_TEST_SUITE_P(Codes, CodeRoundTrip, ::testing::Values(0, 1, 2));

TEST(Viterbi, SoftBeatsHardOverAwgn) {
  // Classic ~2 dB soft-decision gain: at a noise level where hard decoding
  // stumbles, soft decoding should do strictly better (statistically).
  const ConvCode cc = k3_rate_half();
  const ConvEncoder enc(cc);
  const ViterbiDecoder dec(cc);
  Rng rng(3);

  std::size_t hard_errors = 0, soft_errors = 0;
  const int packets = 60;
  for (int p = 0; p < packets; ++p) {
    const BitVec info = rng.bits(120);
    const BitVec coded = enc.encode(info);
    // BPSK over AWGN at low SNR.
    std::vector<double> llr(coded.size());
    BitVec hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double tx_symbol = coded[i] ? -1.0 : 1.0;
      const double r = tx_symbol + rng.gaussian(0.0, 0.8);
      llr[i] = r;
      hard[i] = r < 0.0 ? 1 : 0;
    }
    soft_errors += phy::hamming_distance(dec.decode_soft(llr), info);
    hard_errors += phy::hamming_distance(dec.decode_hard(hard), info);
  }
  EXPECT_LT(soft_errors, hard_errors);
}

TEST(Viterbi, SoftDecodeNoiseless) {
  const ConvCode cc = k7_rate_half();
  const ConvEncoder enc(cc);
  const ViterbiDecoder dec(cc);
  Rng rng(4);
  const BitVec info = rng.bits(64);
  const BitVec coded = enc.encode(info);
  std::vector<double> llr(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) llr[i] = coded[i] ? -1.0 : 1.0;
  EXPECT_EQ(dec.decode_soft(llr), info);
}

TEST(Viterbi, RejectsMisalignedInput) {
  const ViterbiDecoder dec(k3_rate_half());
  EXPECT_THROW((void)dec.decode_hard(BitVec(13, 0)), Error);   // odd length
  EXPECT_THROW((void)dec.decode_hard(BitVec(4, 0)), Error);    // shorter than tail
}

TEST(Viterbi, CorrectionImprovesWithConstraintLength) {
  // At a fixed raw BER, K=7 should beat K=3 (stronger code).
  Rng rng(5);
  auto run = [&rng](const ConvCode& cc) {
    const ConvEncoder enc(cc);
    const ViterbiDecoder dec(cc);
    std::size_t errors = 0;
    for (int p = 0; p < 40; ++p) {
      const BitVec info = rng.bits(150);
      std::vector<double> llr;
      const BitVec coded = enc.encode(info);
      llr.reserve(coded.size());
      for (auto b : coded) llr.push_back((b ? -1.0 : 1.0) + rng.gaussian(0.0, 0.9));
      errors += phy::hamming_distance(dec.decode_soft(llr), info);
    }
    return errors;
  };
  const std::size_t e_k3 = run(k3_rate_half());
  const std::size_t e_k7 = run(k7_rate_half());
  EXPECT_LT(e_k7, e_k3);
}

}  // namespace
}  // namespace uwb::fec
