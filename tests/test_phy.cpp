// Tests for bit utilities, LFSR/scrambler, CRC, modulation and packet
// framing.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "phy/bits.h"
#include "phy/crc.h"
#include "phy/modulation.h"
#include "phy/packet.h"
#include "phy/scrambler.h"

namespace uwb::phy {
namespace {

// ----------------------------------------------------------------- bits ----

TEST(Bits, PackUnpackRoundTrip) {
  Rng rng(1);
  const BitVec bits = rng.bits(75);  // not byte aligned
  const BitVec back = unpack_bits(pack_bits(bits));
  ASSERT_GE(back.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(back[i], bits[i]);
  for (std::size_t i = bits.size(); i < back.size(); ++i) EXPECT_EQ(back[i], 0);
}

TEST(Bits, UintRoundTrip) {
  const BitVec bits = uint_to_bits(0xDEADBEEF, 32);
  EXPECT_EQ(bits_to_uint(bits, 0, 32), 0xDEADBEEFu);
  EXPECT_EQ(bits_to_uint(bits, 0, 4), 0xDu);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance({1, 0, 1}, {1, 1, 1}), 1u);
  EXPECT_EQ(hamming_distance({1, 0}, {1, 0, 1, 1}), 2u);  // length gap counts
  EXPECT_EQ(hamming_distance({}, {}), 0u);
}

TEST(Bits, XorAndToString) {
  EXPECT_EQ(to_string(xor_bits({1, 1, 0}, {1, 0, 0})), "010");
  EXPECT_THROW(xor_bits({1}, {1, 0}), InvalidArgument);
}

// ----------------------------------------------------------------- lfsr ----

TEST(Lfsr, MSequencePeriodIsMaximal) {
  for (int degree : {3, 4, 5, 7, 9, 10}) {
    Lfsr lfsr(degree, msequence_taps(degree), 1);
    const uint32_t start = lfsr.state();
    std::size_t period = 0;
    do {
      (void)lfsr.step();
      ++period;
    } while (lfsr.state() != start && period < (1u << degree) + 2);
    EXPECT_EQ(period, (std::size_t{1} << degree) - 1) << "degree=" << degree;
  }
}

TEST(Lfsr, MSequenceBalance) {
  // m-sequences have 2^(d-1) ones and 2^(d-1)-1 zeros per period.
  const BitVec seq = msequence(7);
  std::size_t ones = 0;
  for (auto b : seq) ones += b;
  EXPECT_EQ(ones, 64u);
  EXPECT_EQ(seq.size(), 127u);
}

TEST(Lfsr, MSequenceAutocorrelationIsTwoValued) {
  // Periodic autocorrelation of a +/-1 m-sequence: N at shift 0, -1 else.
  const auto chips = to_chips(msequence(6));
  const std::size_t n = chips.size();
  for (std::size_t shift = 0; shift < n; ++shift) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += chips[i] * chips[(i + shift) % n];
    if (shift == 0) {
      EXPECT_NEAR(acc, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(acc, -1.0, 1e-9) << "shift=" << shift;
    }
  }
}

TEST(Lfsr, RejectsBadConfigs) {
  EXPECT_THROW(Lfsr(1, 1, 1), InvalidArgument);
  EXPECT_THROW(Lfsr(4, 0, 1), InvalidArgument);
  EXPECT_THROW(Lfsr(4, 0b1100, 0), InvalidArgument);
  EXPECT_THROW(msequence_taps(2), InvalidArgument);
}

// ------------------------------------------------------------- scrambler ----

TEST(Scrambler, RoundTrip) {
  Rng rng(2);
  const BitVec data = rng.bits(500);
  Scrambler tx_s, rx_s;
  const BitVec scrambled = tx_s.scramble(data);
  const BitVec recovered = rx_s.descramble(scrambled);
  EXPECT_EQ(recovered, data);
}

TEST(Scrambler, SelfSynchronizes) {
  // Descrambler with a WRONG seed recovers after 7 correct bits.
  Rng rng(3);
  const BitVec data = rng.bits(100);
  Scrambler tx_s(0x7F), rx_s(0x15);
  const BitVec scrambled = tx_s.scramble(data);
  const BitVec recovered = rx_s.descramble(scrambled);
  for (std::size_t i = 7; i < data.size(); ++i) {
    EXPECT_EQ(recovered[i], data[i]) << "at " << i;
  }
}

TEST(Scrambler, WhitensConstantInput) {
  const BitVec zeros(256, 0);
  Scrambler s;
  const BitVec out = s.scramble(zeros);
  std::size_t ones = 0;
  for (auto b : out) ones += b;
  EXPECT_GT(ones, 90u);
  EXPECT_LT(ones, 166u);
}

// ------------------------------------------------------------------ crc ----

TEST(Crc, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE of ASCII "123456789" is 0x29B1.
  const std::vector<uint8_t> msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(unpack_bits(msg)), 0x29B1);
}

TEST(Crc, Crc32KnownVector) {
  // CRC-32 (IEEE, reflected) of ASCII "123456789" is 0xCBF43926. The
  // byte-oriented standard consumes each byte LSB-first, so present the
  // bits in that order to the bit-stream implementation.
  const std::vector<uint8_t> msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  BitVec lsb_first;
  for (uint8_t byte : msg) {
    for (int b = 0; b < 8; ++b) lsb_first.push_back((byte >> b) & 1u);
  }
  EXPECT_EQ(crc32_ieee(lsb_first), 0xCBF43926u);
}

TEST(Crc, AppendCheckRoundTrip) {
  Rng rng(4);
  const BitVec data = rng.bits(123);
  EXPECT_TRUE(check_crc16(append_crc16(data)));
  EXPECT_TRUE(check_crc32(append_crc32(data)));
}

TEST(Crc, DetectsSingleBitErrors) {
  Rng rng(5);
  const BitVec data = rng.bits(64);
  BitVec coded16 = append_crc16(data);
  BitVec coded32 = append_crc32(data);
  for (std::size_t flip = 0; flip < coded16.size(); flip += 7) {
    BitVec corrupted = coded16;
    corrupted[flip] ^= 1;
    EXPECT_FALSE(check_crc16(corrupted)) << "flip=" << flip;
  }
  for (std::size_t flip = 0; flip < coded32.size(); flip += 11) {
    BitVec corrupted = coded32;
    corrupted[flip] ^= 1;
    EXPECT_FALSE(check_crc32(corrupted)) << "flip=" << flip;
  }
}

// ------------------------------------------------------------ modulation ----

class ModulationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundTrip, NoiselessMapDemap) {
  const auto mod = make_modulator(GetParam(), 100e6);
  Rng rng(6);
  BitVec bits = rng.bits(64);
  while (bits.size() % static_cast<std::size_t>(mod->bits_per_symbol()) != 0) {
    bits.push_back(0);
  }
  const SymbolMapping map = mod->map(bits);

  // Build the noiseless correlator outputs the demapper expects.
  std::vector<double> soft;
  if (GetParam() == Modulation::kPpm) {
    for (std::size_t k = 0; k < map.weights.size(); ++k) {
      const bool late = map.time_offsets_s[k] > 0.0;
      soft.push_back(late ? 0.0 : 1.0);
      soft.push_back(late ? 1.0 : 0.0);
    }
  } else {
    soft = map.weights;
  }
  EXPECT_EQ(mod->demap(soft), bits);
}

TEST_P(ModulationRoundTrip, UnitAverageEnergy) {
  const auto mod = make_modulator(GetParam(), 100e6);
  Rng rng(7);
  BitVec bits = rng.bits(4096);
  while (bits.size() % static_cast<std::size_t>(mod->bits_per_symbol()) != 0) {
    bits.push_back(0);
  }
  const SymbolMapping map = mod->map(bits);
  double energy = 0.0;
  for (double w : map.weights) energy += w * w;
  const double per_bit = energy / static_cast<double>(bits.size());
  EXPECT_NEAR(per_bit, 1.0, 0.08) << "scheme " << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ModulationRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kOok,
                                           Modulation::kPpm, Modulation::kPam4));

TEST(Modulation, BpskMapping) {
  const auto mod = make_modulator(Modulation::kBpsk, 100e6);
  const SymbolMapping m = mod->map({0, 1});
  EXPECT_DOUBLE_EQ(m.weights[0], 1.0);
  EXPECT_DOUBLE_EQ(m.weights[1], -1.0);
}

TEST(Modulation, PpmOffsetIsHalfFrame) {
  const auto mod = make_modulator(Modulation::kPpm, 100e6);
  const SymbolMapping m = mod->map({0, 1});
  EXPECT_DOUBLE_EQ(m.time_offsets_s[0], 0.0);
  EXPECT_NEAR(m.time_offsets_s[1], 5e-9, 1e-15);
}

// --------------------------------------------------------------- packet ----

TEST(Packet, FrameLayout) {
  PacketFramer framer;
  Rng rng(8);
  const BitVec payload = rng.bits(100);
  const FramedPacket pkt = framer.frame(payload);
  EXPECT_EQ(pkt.preamble.size(), 127u * 4u);
  EXPECT_EQ(pkt.sfd.size(), 16u);
  EXPECT_EQ(pkt.header.size(), 32u);          // 16-bit length + CRC-16
  EXPECT_EQ(pkt.payload.size(), 132u);        // payload + CRC-32
  EXPECT_EQ(pkt.total_bits(),
            pkt.preamble.size() + pkt.sfd.size() + pkt.header.size() + pkt.payload.size());
}

TEST(Packet, DeframeRecoversPayload) {
  PacketFramer framer;
  Rng rng(9);
  const BitVec payload = rng.bits(64);
  const FramedPacket pkt = framer.frame(payload);
  BitVec post_sfd = pkt.header;
  post_sfd.insert(post_sfd.end(), pkt.payload.begin(), pkt.payload.end());
  const auto result = framer.deframe(post_sfd);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->header_ok);
  EXPECT_TRUE(result->payload_ok);
  EXPECT_EQ(result->payload, payload);
  EXPECT_EQ(result->payload_bits, 64u);
}

TEST(Packet, DeframeRejectsCorruptHeader) {
  PacketFramer framer;
  const FramedPacket pkt = framer.frame(BitVec(32, 1));
  BitVec post_sfd = pkt.header;
  post_sfd[3] ^= 1;  // corrupt the length field
  post_sfd.insert(post_sfd.end(), pkt.payload.begin(), pkt.payload.end());
  EXPECT_FALSE(framer.deframe(post_sfd).has_value());
}

TEST(Packet, DeframeFlagsCorruptPayload) {
  PacketFramer framer;
  const FramedPacket pkt = framer.frame(BitVec(32, 0));
  BitVec post_sfd = pkt.header;
  BitVec body = pkt.payload;
  body[10] ^= 1;
  post_sfd.insert(post_sfd.end(), body.begin(), body.end());
  const auto result = framer.deframe(post_sfd);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->header_ok);
  EXPECT_FALSE(result->payload_ok);
}

TEST(Packet, PreambleIsRepeatedPn) {
  PacketConfig config;
  config.preamble_msequence_degree = 5;
  config.preamble_repetitions = 3;
  PacketFramer framer(config);
  EXPECT_EQ(framer.preamble_period().size(), 31u);
  EXPECT_EQ(framer.preamble_bits().size(), 93u);
  for (std::size_t i = 0; i < 31; ++i) {
    EXPECT_EQ(framer.preamble_bits()[i], framer.preamble_bits()[i + 31]);
    EXPECT_EQ(framer.preamble_bits()[i], framer.preamble_bits()[i + 62]);
  }
}

}  // namespace
}  // namespace uwb::phy
