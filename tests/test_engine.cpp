// Tests for the parallel Monte-Carlo sweep engine: the work-stealing pool,
// the deterministic ordered-commit BER measurement (1 worker == N workers,
// parallel == serial), scenario-registry expansion, and byte-identical
// JSON/CSV sinks.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "dsp/fast_convolve.h"
#include "engine/parallel_ber.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "engine/thread_pool.h"
#include "sim/scenario.h"

namespace uwb::engine {
namespace {

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  // Nested submission exercises the worker-local push + stealing path:
  // one seed task fans out to 64 children from inside the pool.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

// ------------------------------------------------- deterministic parallel ----

/// A stochastic synthetic trial: a pure function of its per-trial Rng,
/// with variable bit counts so the bit/error budgets are both exercised.
sim::TrialOutcome synthetic_trial(std::size_t /*index*/, Rng& rng) {
  const std::size_t bits = 50 + static_cast<std::size_t>(rng.uniform_int(0, 50));
  std::size_t errors = 0;
  for (std::size_t b = 0; b < bits; ++b) {
    if (rng.uniform() < 0.02) ++errors;
  }
  sim::TrialOutcome out;
  out.bits = bits;
  out.errors = errors;
  return out;
}

void expect_points_equal(const sim::BerPoint& a, const sim::BerPoint& b) {
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.trials, b.trials);
  // Bit-identical, not approximately equal: same committed prefix, same
  // accumulation order, same arithmetic.
  EXPECT_EQ(a.ber, b.ber);
  EXPECT_EQ(a.ci95, b.ci95);
}

TEST(ParallelBer, MatchesSerialExactly) {
  sim::BerStop stop;
  stop.min_errors = 40;
  stop.max_bits = 100000;
  stop.max_trials = 100000;
  const Rng root(0xDECAF);

  const sim::BerPoint serial = measure_ber_serial(synthetic_trial, stop, root);
  ASSERT_GT(serial.trials, 0u);

  ThreadPool pool(4);
  const sim::BerPoint parallel =
      measure_ber_parallel([] { return TrialFn(synthetic_trial); }, stop, root, pool);
  expect_points_equal(serial, parallel);
}

TEST(ParallelBer, WorkerCountDoesNotChangeTheAnswer) {
  sim::BerStop stop;
  stop.min_errors = 60;
  stop.max_bits = 100000;
  stop.max_trials = 100000;
  const Rng root(0xB0B);

  sim::BerPoint results[3];
  const std::size_t worker_counts[] = {1, 2, 7};
  for (int i = 0; i < 3; ++i) {
    ThreadPool pool(worker_counts[i]);
    results[i] =
        measure_ber_parallel([] { return TrialFn(synthetic_trial); }, stop, root, pool);
  }
  expect_points_equal(results[0], results[1]);
  expect_points_equal(results[0], results[2]);
}

TEST(ParallelBer, MaxTrialsHardStopWithZeroBitTrials) {
  sim::BerStop stop;
  stop.min_errors = 10;
  stop.max_bits = 1000;
  stop.max_trials = 9;
  ThreadPool pool(3);
  const sim::BerPoint point = measure_ber_parallel(
      [] { return TrialFn([](std::size_t, Rng&) { return sim::TrialOutcome{0, 0, {}}; }); },
      stop, Rng(2), pool);
  EXPECT_EQ(point.trials, 9u);
  EXPECT_EQ(point.bits, 0u);
  EXPECT_DOUBLE_EQ(point.ber, 0.0);
  EXPECT_FALSE(std::isnan(point.ci95));
}

TEST(ParallelBer, DegenerateBudgetsRunNothing) {
  ThreadPool pool(2);
  sim::BerStop stop;
  stop.max_trials = 0;
  std::atomic<int> calls{0};
  const sim::BerPoint point = measure_ber_parallel(
      [&calls] {
        return TrialFn([&calls](std::size_t, Rng&) {
          ++calls;
          return sim::TrialOutcome{1, 0, {}};
        });
      },
      stop, Rng(1), pool);
  EXPECT_EQ(point.trials, 0u);
  EXPECT_EQ(calls.load(), 0);
}

// ---------------------------------------------------------------- registry ----

TEST(ScenarioRegistry, BuilderExpandsGridRowMajor) {
  // A 2 (channel) x 3 (Eb/N0) grid must expand to 6 points, channel as the
  // outer loop, with tags and configs resolved per point.
  Gen2ScenarioBuilder builder("grid", sim::gen2_fast());
  builder.channels({0, 3}).ebn0_grid({8.0, 12.0, 16.0});
  const ScenarioSpec spec = builder.build();

  ASSERT_EQ(spec.points.size(), 6u);
  const char* expected_channels[] = {"AWGN", "AWGN", "AWGN", "CM3", "CM3", "CM3"};
  const char* expected_ebn0[] = {"8", "12", "16", "8", "12", "16"};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(spec.points[i].tag("channel"), expected_channels[i]);
    EXPECT_EQ(spec.points[i].tag("ebn0_db"), expected_ebn0[i]);
    EXPECT_EQ(spec.points[i].link.options.cm, i < 3 ? 0 : 3);
  }
  EXPECT_EQ(spec.points[4].link.options.ebn0_db, 12.0);
  EXPECT_EQ(spec.points[4].label, "CM3 | 12");
}

TEST(ScenarioRegistry, VariantAxisMutatesConfig) {
  Gen2ScenarioBuilder builder("backend", sim::gen2_fast());
  builder.axis("backend", {{"full", [](txrx::Gen2Config&, txrx::TrialOptions&) {}},
                           {"mf_only", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                              c.use_rake = false;
                              c.use_mlse = false;
                            }}});
  const ScenarioSpec spec = builder.build();
  ASSERT_EQ(spec.points.size(), 2u);
  EXPECT_TRUE(spec.points[0].link.gen2().use_rake);
  EXPECT_FALSE(spec.points[1].link.gen2().use_rake);
  EXPECT_FALSE(spec.points[1].link.gen2().use_mlse);
}

TEST(ScenarioRegistry, GlobalHasBuiltinsAndRejectsUnknown) {
  auto& registry = ScenarioRegistry::global();
  EXPECT_TRUE(registry.contains("gen2_cm_grid"));
  EXPECT_TRUE(registry.contains("gen1_waterfall"));
  EXPECT_TRUE(registry.contains("gen2_backend_ladder"));

  const ScenarioSpec grid = registry.make("gen2_cm_grid");
  EXPECT_EQ(grid.points.size(), 5u * 3u * 2u);  // CM0-4 x 3 Eb/N0 x 2 back ends

  EXPECT_THROW((void)registry.make("no_such_scenario"), InvalidArgument);
}

TEST(ScenarioRegistry, EmptyAxisRejected) {
  Gen2ScenarioBuilder builder("bad", sim::gen2_fast());
  EXPECT_THROW(builder.axis("empty", {}), InvalidArgument);
}

TEST(ScenarioRegistry, ThreeAxisExpansionIsRowMajorInDeclarationOrder) {
  // First declared axis outermost, last innermost: a 2x2x2 grid must
  // enumerate as an odometer with the "notch" digit spinning fastest.
  Gen2ScenarioBuilder builder("rowmajor", sim::gen2_fast());
  builder.channels({0, 3})
      .ebn0_grid({8.0, 12.0})
      .axis("notch", {{"off", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                         o.auto_notch = false;
                       }},
                      {"auto", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                         o.auto_notch = true;
                       }}});
  const ScenarioSpec spec = builder.build();
  ASSERT_EQ(spec.points.size(), 8u);
  const char* expected[][3] = {
      {"AWGN", "8", "off"},  {"AWGN", "8", "auto"},  {"AWGN", "12", "off"},
      {"AWGN", "12", "auto"}, {"CM3", "8", "off"},   {"CM3", "8", "auto"},
      {"CM3", "12", "off"},  {"CM3", "12", "auto"},
  };
  for (std::size_t i = 0; i < 8; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(spec.points[i].tags[0], (std::pair<std::string, std::string>{
                                          "channel", expected[i][0]}));
    EXPECT_EQ(spec.points[i].tags[1], (std::pair<std::string, std::string>{
                                          "ebn0_db", expected[i][1]}));
    EXPECT_EQ(spec.points[i].tags[2], (std::pair<std::string, std::string>{
                                          "notch", expected[i][2]}));
    EXPECT_EQ(spec.points[i].link.options.auto_notch,
              std::string(expected[i][2]) == "auto");
  }
}

TEST(ScenarioRegistry, TagsRoundTripThroughPointSpecTag) {
  Gen2ScenarioBuilder builder("tags", sim::gen2_fast());
  builder.channels({2}).ebn0_grid({10.0});
  const ScenarioSpec spec = builder.build();
  ASSERT_EQ(spec.points.size(), 1u);
  const PointSpec& point = spec.points[0];
  // Every declared (axis, value) pair is recoverable via tag(), in order.
  for (const auto& [key, value] : point.tags) {
    EXPECT_EQ(point.tag(key), value);
  }
  EXPECT_EQ(point.tag("channel"), "CM2");
  EXPECT_EQ(point.tag("ebn0_db"), "10");
  EXPECT_EQ(point.tag("not_an_axis"), "");
  EXPECT_EQ(point.label, "CM2 | 10");
}

TEST(ScenarioRegistry, RestrictScenarioFiltersAndFailsLoudly) {
  ScenarioSpec grid = ScenarioRegistry::global().make("gen2_cm_grid");
  restrict_scenario(grid, "channel", "CM1,CM3");
  EXPECT_EQ(grid.points.size(), 2u * 3u * 2u);
  restrict_scenario(grid, "ebn0_db", "12");
  EXPECT_EQ(grid.points.size(), 2u * 2u);
  for (const auto& point : grid.points) {
    EXPECT_TRUE(point.tag("channel") == "CM1" || point.tag("channel") == "CM3");
    EXPECT_EQ(point.tag("ebn0_db"), "12");
  }
  // Unknown axis key: loud failure, not a silently unfiltered sweep.
  EXPECT_THROW(restrict_scenario(grid, "chanel", "CM1"), InvalidArgument);
  // Known axis, value matching no point: equally loud.
  EXPECT_THROW(restrict_scenario(grid, "channel", "CM9"), InvalidArgument);
}

// ------------------------------------------------------------ sweep engine ----

/// A tiny real-link scenario, cheap enough for a unit test: gen-2 fast
/// config on AWGN and CM1, small payloads, small budgets.
ScenarioSpec tiny_scenario() {
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::TrialOptions options;
  options.payload_bits = 64;
  options.genie_timing = true;
  Gen2ScenarioBuilder builder("tiny", config, options);
  builder.channels({0, 1}).ebn0_grid({6.0});
  return builder.build();
}

sim::BerStop tiny_stop() {
  sim::BerStop stop;
  stop.min_errors = 8;
  stop.max_bits = 1500;
  stop.max_trials = 25;
  return stop;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SweepEngine, OneWorkerAndManyWorkersAreByteIdentical) {
  const ScenarioSpec scenario = tiny_scenario();

  SweepConfig config1;
  config1.seed = 0x5EED;
  config1.workers = 1;
  config1.stop = tiny_stop();
  SweepConfig config4 = config1;
  config4.workers = 4;

  JsonSink json1("test_results/sweep_w1.json");
  JsonSink json4("test_results/sweep_w4.json");
  CsvSink csv1("test_results/sweep_w1.csv");
  CsvSink csv4("test_results/sweep_w4.csv");

  const SweepResult r1 = SweepEngine(config1).run(scenario, {&json1, &csv1});
  const SweepResult r4 = SweepEngine(config4).run(scenario, {&json4, &csv4});

  ASSERT_EQ(r1.records.size(), scenario.points.size());
  ASSERT_EQ(r4.records.size(), scenario.points.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    SCOPED_TRACE(r1.records[i].spec.label);
    expect_points_equal(r1.records[i].ber, r4.records[i].ber);
    EXPECT_GT(r1.records[i].ber.bits, 0u);  // the link actually ran
  }

  const std::string j1 = slurp("test_results/sweep_w1.json");
  const std::string j4 = slurp("test_results/sweep_w4.json");
  ASSERT_FALSE(j1.empty());
  EXPECT_EQ(j1, j4);  // byte-identical machine-readable output
  EXPECT_EQ(slurp("test_results/sweep_w1.csv"), slurp("test_results/sweep_w4.csv"));

  // Sanity on the JSON itself.
  EXPECT_NE(j1.find("\"scenario\": \"tiny\""), std::string::npos);
  EXPECT_NE(j1.find("\"tags\""), std::string::npos);
  EXPECT_NE(j1.find("\"ber\""), std::string::npos);
}

TEST(SweepEngine, BatchedSweepIsByteIdenticalAcrossBatchSizesAndWorkers) {
  // The batched-pipeline determinism contract (engine/parallel_ber.h):
  // batch size and worker count are execution granularity only, so every
  // (B, workers) combination must serialize the reference document byte
  // for byte. Fresh-draw scenario here; the ensemble-mode (grouped
  // realization) variant is covered below.
  const ScenarioSpec scenario = tiny_scenario();

  std::string reference;
  for (const std::size_t batch : {1u, 4u, 16u}) {
    for (const std::size_t workers : {1u, 8u}) {
      SweepConfig config;
      config.seed = 0x5EED;
      config.workers = workers;
      config.batch_size = batch;
      config.stop = tiny_stop();
      const std::string path = "test_results/sweep_b" + std::to_string(batch) + "_w" +
                               std::to_string(workers) + ".json";
      JsonSink json(path);
      const SweepResult result = SweepEngine(config).run(scenario, {&json});
      ASSERT_EQ(result.records.size(), scenario.points.size());
      const std::string bytes = slurp(path);
      ASSERT_FALSE(bytes.empty());
      if (reference.empty()) {
        reference = bytes;
      } else {
        SCOPED_TRACE("batch=" + std::to_string(batch) +
                     " workers=" + std::to_string(workers));
        EXPECT_EQ(bytes, reference);
      }
    }
  }
}

TEST(SweepEngine, BatchedEnsembleSweepIsByteIdentical) {
  // Ensemble mode exercises PacketBatch's realization grouping: trials of
  // one claim that share a cached CIR run back-to-back, which must not
  // change a byte of the document either.
  txrx::TrialOptions options;
  options.payload_bits = 64;
  options.genie_timing = true;
  options.cm = 1;
  options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
  options.channel_source.ensemble_count = 3;  // < batch, so batches group
  Gen2ScenarioBuilder builder("batched_ensemble", sim::gen2_fast(), options);
  builder.ebn0_grid({6.0});
  const ScenarioSpec scenario = builder.build();

  std::string reference;
  for (const std::size_t batch : {1u, 8u}) {
    for (const std::size_t workers : {1u, 4u}) {
      SweepConfig config;
      config.seed = 0xE45;
      config.workers = workers;
      config.batch_size = batch;
      config.stop = tiny_stop();
      const std::string path = "test_results/ens_b" + std::to_string(batch) + "_w" +
                               std::to_string(workers) + ".json";
      JsonSink json(path);
      (void)SweepEngine(config).run(scenario, {&json});
      const std::string bytes = slurp(path);
      ASSERT_FALSE(bytes.empty());
      if (reference.empty()) {
        reference = bytes;
      } else {
        SCOPED_TRACE("batch=" + std::to_string(batch) +
                     " workers=" + std::to_string(workers));
        EXPECT_EQ(bytes, reference);
      }
    }
  }
}

/// FNV-1a digest of a sweep's serialized bytes -- the pinned-seed
/// fingerprint the determinism tests compare across configurations.
uint64_t fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A pinned-seed slice of the registry's gen2_cm_grid: the AWGN and CM3
/// "full"-backend points (CM3 is where the FFT fast path does the most
/// work: long CIRs, long preamble correlations).
ScenarioSpec cm_grid_slice() {
  ScenarioSpec grid = ScenarioRegistry::global().make("gen2_cm_grid");
  ScenarioSpec slice;
  slice.name = grid.name;
  slice.description = grid.description;
  for (const auto& point : grid.points) {
    const std::string channel = point.tag("channel");
    if ((channel == "AWGN" || channel == "CM3") && point.tag("backend") == "full" &&
        point.tag("ebn0_db") == "12") {
      slice.points.push_back(point);
    }
  }
  return slice;
}

sim::BerStop cm_grid_slice_stop() {
  sim::BerStop stop;
  stop.min_errors = 4;
  stop.max_bits = 1200;
  stop.max_trials = 4;
  return stop;
}

TEST(SweepEngine, FftFastPathKeepsSweepBytesIdentical) {
  // The dispatch to overlap-save FFT convolution must not change any
  // committed sweep result: a gen2_cm_grid slice run with the fast path
  // disabled (the pre-fast-path direct kernels) and enabled must serialize
  // to byte-identical JSON under a pinned seed.
  //
  // Sensitivity note: the two kernels agree only to ~1e-12 relative, so
  // this asserts that no soft value in the pinned slice sits within that
  // margin of a bit-decision threshold. If a toolchain change ever flips a
  // marginal decision here, that is a real signal that the fast path
  // changed a committed result on that toolchain -- re-pin the seed (or
  // widen the slice's Eb/N0 margin) only after confirming the flip is a
  // rounding-level decision tie, not a kernel bug.
  //
  // Continuous estimator metrics (SNR estimate, RAKE capture) are
  // *expected* to differ between the kernels at that rounding level, so
  // this cross-kernel comparison records only the decision-level metric;
  // FastPathDigestIndependentOfWorkerCount covers the continuous metrics
  // within one kernel.
  ScenarioSpec slice = cm_grid_slice();
  ASSERT_EQ(slice.points.size(), 2u);
  for (PointSpec& point : slice.points) {
    point.link.options.record_metrics = {txrx::metric_names::kAcquired};
  }

  SweepConfig config;
  config.seed = 0xFA57'0001;
  config.workers = 2;
  config.stop = cm_grid_slice_stop();

  JsonSink json_direct("test_results/cm_grid_direct.json");
  JsonSink json_fast("test_results/cm_grid_fast.json");
  {
    const dsp::FastConvolveGuard guard(false);
    (void)SweepEngine(config).run(slice, {&json_direct});
  }
  {
    const dsp::FastConvolveGuard guard(true);
    (void)SweepEngine(config).run(slice, {&json_fast});
  }

  const std::string direct_bytes = slurp("test_results/cm_grid_direct.json");
  const std::string fast_bytes = slurp("test_results/cm_grid_fast.json");
  ASSERT_FALSE(direct_bytes.empty());
  EXPECT_EQ(direct_bytes, fast_bytes);
  EXPECT_EQ(fnv1a(direct_bytes), fnv1a(fast_bytes));
}

TEST(SweepEngine, FastPathDigestIndependentOfWorkerCount) {
  // Pinned-seed digest of the fast-path sweep for any worker count: the
  // per-thread FFT workspaces must not leak state between trials or
  // workers.
  const ScenarioSpec slice = cm_grid_slice();
  uint64_t digests[3] = {};
  const std::size_t worker_counts[] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    SweepConfig config;
    config.seed = 0xFA57'0002;
    config.workers = worker_counts[i];
    config.stop = cm_grid_slice_stop();
    const std::string path =
        "test_results/cm_grid_w" + std::to_string(worker_counts[i]) + ".json";
    JsonSink json(path);
    (void)SweepEngine(config).run(slice, {&json});
    digests[i] = fnv1a(slurp(path));
    EXPECT_NE(digests[i], fnv1a(""));  // file exists and is non-empty
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(SweepEngine, ShardsPartitionThePlanAndMatchTheUnshardedRun) {
  // shard 0/2 and 1/2 must cover exactly the unsharded point set, once
  // each, and every shard point must be byte-identical to its unsharded
  // counterpart (global-index seeding).
  const ScenarioSpec scenario = tiny_scenario();  // 2 points

  SweepConfig base;
  base.seed = 0x51AD;
  base.workers = 2;
  base.stop = tiny_stop();

  const SweepResult full = SweepEngine(base).run(scenario);
  ASSERT_EQ(full.records.size(), 2u);

  std::vector<SweepResult> shards;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    SweepConfig config = base;
    config.shard_index = shard;
    config.shard_count = 2;
    shards.push_back(SweepEngine(config).run(scenario));
    ASSERT_EQ(shards.back().records.size(), 1u);
    EXPECT_EQ(shards.back().records[0].index, shard);  // 0/2 -> point 0, 1/2 -> 1
  }
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    SCOPED_TRACE(full.records[i].spec.label);
    EXPECT_EQ(shards[i].records[0].index, full.records[i].index);
    expect_points_equal(shards[i].records[0].ber, full.records[i].ber);
  }
}

TEST(SweepEngine, InvalidPointFailsBeforeAnyTrialRuns) {
  // A plan whose *last* point is invalid must be rejected up front -- an
  // exception mid-sweep would discard every completed point.
  ScenarioSpec scenario = tiny_scenario();
  PointSpec bad;
  bad.label = "gen1-with-interferer";
  bad.link = txrx::LinkSpec::for_gen1(sim::gen1_fast());
  bad.link.options.interferer = true;
  scenario.points.push_back(bad);

  SweepConfig config;
  config.stop = tiny_stop();
  JsonSink json("test_results/never_written.json");
  try {
    (void)SweepEngine(config).run(scenario, {&json});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("gen1-with-interferer"), std::string::npos);
  }
}

TEST(SweepEngine, RejectsBadShardConfig) {
  SweepConfig config;
  config.shard_count = 0;
  EXPECT_THROW(SweepEngine{config}, InvalidArgument);
  config.shard_count = 2;
  config.shard_index = 2;
  EXPECT_THROW(SweepEngine{config}, InvalidArgument);
}

// ------------------------------------------------------- metric pipeline ----

TEST(MetricStats, VarianceMatchesHandComputedFixture) {
  // Hand-computed: values {2, 4, 4, 4, 5, 5, 7, 9} -> mean 5, population
  // variance 4, sample variance 32/7.
  sim::MetricStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count, 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 32.0 / 7.0);

  // Degenerate counts: no observations and one observation both report 0.
  sim::MetricStats empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  sim::MetricStats one;
  one.add(3.5);
  EXPECT_DOUBLE_EQ(one.mean(), 3.5);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);

  // merge() == adding the same observations to one accumulator.
  sim::MetricStats a, b;
  for (double v : {2.0, 4.0, 4.0, 4.0}) a.add(v);
  for (double v : {5.0, 5.0, 7.0, 9.0}) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count, stats.count);
  EXPECT_DOUBLE_EQ(a.mean(), stats.mean());
}

/// A synthetic metric-emitting trial: every trial emits "flag" (success on
/// ~70% of trials) and "value"; only successful trials emit "latency" --
/// the conditional-emission shape of the gen-1 sync-time metric.
sim::TrialOutcome metric_trial(std::size_t /*index*/, Rng& rng) {
  sim::TrialOutcome out;
  out.bits = 10;
  const bool ok = rng.uniform() < 0.7;
  out.errors = ok ? 0 : 2;
  out.metrics.emplace_back("flag", ok ? 1.0 : 0.0);
  out.metrics.emplace_back("value", rng.uniform());
  if (ok) out.metrics.emplace_back("latency", 1.0 + rng.uniform());
  return out;
}

TEST(MetricAccumulator, SerialReductionMatchesDirectComputation) {
  sim::BerStop stop;
  stop.min_errors = 1000;
  stop.max_bits = 200;  // exactly 20 trials
  const Rng root(0xACC);

  // Reference: replay the same forked trial stream by hand.
  std::size_t flags = 0, latencies = 0;
  double latency_sum = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    Rng rng = root.fork(i);
    const sim::TrialOutcome out = metric_trial(i, rng);
    for (const auto& [name, value] : out.metrics) {
      if (name == "flag" && value != 0.0) ++flags;
      if (name == "latency") {
        ++latencies;
        latency_sum += value;
      }
    }
  }

  const sim::MeasuredPoint point = measure_point_serial(metric_trial, stop, root);
  EXPECT_EQ(point.ber.trials, 20u);
  const sim::MetricStats* flag = point.metrics.find("flag");
  const sim::MetricStats* latency = point.metrics.find("latency");
  const sim::MetricStats* value = point.metrics.find("value");
  ASSERT_NE(flag, nullptr);
  ASSERT_NE(latency, nullptr);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(flag->count, 20u);
  EXPECT_DOUBLE_EQ(flag->mean(), static_cast<double>(flags) / 20.0);
  // Conditional emission: latency averages only the successful trials.
  EXPECT_EQ(latency->count, latencies);
  EXPECT_LT(latency->count, 20u);
  EXPECT_DOUBLE_EQ(latency->sum, latency_sum);
  EXPECT_EQ(value->count, 20u);
  EXPECT_EQ(point.metrics.find("no_such_metric"), nullptr);
  // Order: first-appearance order of emission.
  ASSERT_EQ(point.metrics.entries().size(), 3u);
  EXPECT_EQ(point.metrics.entries()[0].first, "flag");
  EXPECT_EQ(point.metrics.entries()[1].first, "value");
  EXPECT_EQ(point.metrics.entries()[2].first, "latency");
}

TEST(MetricAccumulator, ParallelMetricsMatchSerialExactly) {
  sim::BerStop stop;
  stop.min_errors = 40;
  stop.max_bits = 5000;
  const Rng root(0xFACE);
  const sim::MeasuredPoint serial = measure_point_serial(metric_trial, stop, root);
  ASSERT_FALSE(serial.metrics.empty());

  for (std::size_t workers : {1u, 4u, 8u}) {
    SCOPED_TRACE(workers);
    ThreadPool pool(workers);
    const sim::MeasuredPoint parallel =
        measure_point_parallel([] { return TrialFn(metric_trial); }, stop, root, pool);
    expect_points_equal(serial.ber, parallel.ber);
    ASSERT_EQ(parallel.metrics.entries().size(), serial.metrics.entries().size());
    for (std::size_t m = 0; m < serial.metrics.entries().size(); ++m) {
      const auto& [name, stats] = serial.metrics.entries()[m];
      const auto& [pname, pstats] = parallel.metrics.entries()[m];
      EXPECT_EQ(pname, name);
      EXPECT_EQ(pstats.count, stats.count);
      // Bit-identical sums: ordered commit accumulates in trial order.
      EXPECT_EQ(pstats.sum, stats.sum);
      EXPECT_EQ(pstats.sum_sq, stats.sum_sq);
    }
  }
}

TEST(MetricAccumulator, MetricStopRuleCountsFailedTrials) {
  // stop.metric = "flag": the error budget counts trials whose flag is 0
  // (or absent), not bit errors. The serial reference defines the answer.
  sim::BerStop stop;
  stop.min_errors = 5;
  stop.max_bits = 100000;
  stop.max_trials = 100000;
  stop.metric = "flag";
  const Rng root(0x57D0);

  const sim::MeasuredPoint point = measure_point_serial(metric_trial, stop, root);
  const sim::MetricStats* flag = point.metrics.find("flag");
  ASSERT_NE(flag, nullptr);
  // Exactly min_errors failed trials committed (the last commit trips it).
  EXPECT_EQ(flag->count - static_cast<std::size_t>(flag->sum), 5u);
  EXPECT_LT(point.ber.trials, 100000u);

  // Parallel agrees for any worker count.
  ThreadPool pool(4);
  const sim::MeasuredPoint parallel =
      measure_point_parallel([] { return TrialFn(metric_trial); }, stop, root, pool);
  expect_points_equal(point.ber, parallel.ber);

  // A metric no trial emits never succeeds: every trial is an error, so
  // the loop stops after exactly min_errors trials.
  sim::BerStop missing = stop;
  missing.metric = "not_emitted";
  const sim::MeasuredPoint degenerate = measure_point_serial(metric_trial, missing, root);
  EXPECT_EQ(degenerate.ber.trials, 5u);
}

TEST(SweepEngine, AcquisitionScenarioByteIdenticalAcrossWorkerCounts) {
  // The acceptance gate for the ported metric scenarios: a 1-worker and an
  // 8-worker run of an acquisition-kind sweep (gen-1 side door folded into
  // run_packet) must serialize byte-identical JSON, metrics included.
  ScenarioSpec scenario = ScenarioRegistry::global().make("gen1_acquisition");
  restrict_scenario(scenario, "ebn0_db", "14");
  restrict_scenario(scenario, "preamble_reps", "2");
  ASSERT_EQ(scenario.points.size(), 1u);

  SweepConfig config;
  config.seed = 0xACC'0001;
  config.stop.min_errors = 100;
  config.stop.max_bits = 6;  // six acquisition attempts
  config.stop.max_trials = 6;

  uint64_t digests[2] = {};
  const std::size_t worker_counts[] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    config.workers = worker_counts[i];
    const std::string path =
        "test_results/acq_w" + std::to_string(worker_counts[i]) + ".json";
    JsonSink json(path);
    const SweepResult result = SweepEngine(config).run(scenario, {&json});
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].ber.trials, 6u);
    // Acquisition accounting: one "bit" per attempt.
    EXPECT_EQ(result.records[0].ber.bits, 6u);
    const sim::MetricStats* acquired =
        result.records[0].metrics.find(txrx::metric_names::kAcquired);
    ASSERT_NE(acquired, nullptr);
    EXPECT_EQ(acquired->count, 6u);
    digests[i] = fnv1a(slurp(path));
  }
  EXPECT_NE(digests[0], fnv1a(""));
  EXPECT_EQ(digests[0], digests[1]);

  const std::string bytes = slurp("test_results/acq_w1.json");
  EXPECT_NE(bytes.find("\"metrics\""), std::string::npos);
  EXPECT_NE(bytes.find("\"timing_correct\""), std::string::npos);
}

TEST(SweepEngine, PortedMetricScenariosByteIdenticalAcrossWorkerCounts) {
  // Every scenario ported off the sequential sim::measure_ber path: a
  // 1-worker and an 8-worker run (first two grid points, tiny budgets)
  // must serialize byte-identical result JSON. gen1_acquisition has its
  // own deeper test above.
  for (const char* name :
       {"gen1_sync", "gen2_chanest_precision", "gen2_mlse_isi", "gen2_mlse_memory"}) {
    SCOPED_TRACE(name);
    ScenarioSpec scenario = ScenarioRegistry::global().make(name);
    ASSERT_GE(scenario.points.size(), 2u);
    scenario.points.resize(2);

    SweepConfig config;
    config.seed = 0x3AD5;
    config.stop.min_errors = 3;
    config.stop.max_bits = 600;
    config.stop.max_trials = 3;

    uint64_t digests[2] = {};
    const std::size_t worker_counts[] = {1, 8};
    for (int i = 0; i < 2; ++i) {
      config.workers = worker_counts[i];
      const std::string path = std::string("test_results/ported_") + name + "_w" +
                               std::to_string(worker_counts[i]) + ".json";
      JsonSink json(path);
      const SweepResult result = SweepEngine(config).run(scenario, {&json});
      ASSERT_EQ(result.records.size(), 2u);
      EXPECT_FALSE(result.records[0].metrics.empty());
      digests[i] = fnv1a(slurp(path));
    }
    EXPECT_NE(digests[0], fnv1a(""));
    EXPECT_EQ(digests[0], digests[1]);
  }
}

TEST(SweepEngine, RecordMetricsFiltersAndOrdersReductions) {
  ScenarioSpec scenario = tiny_scenario();
  scenario.points.resize(1);
  // Reversed order relative to emission: the filter list dictates the
  // recorded order, so result columns follow the spec, not the link.
  scenario.points[0].link.options.record_metrics = {
      txrx::metric_names::kSnrEstimate, txrx::metric_names::kAcquired};

  SweepConfig config;
  config.stop = tiny_stop();
  const SweepResult result = SweepEngine(config).run(scenario);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& entries = result.records[0].metrics.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, txrx::metric_names::kSnrEstimate);
  EXPECT_EQ(entries[1].first, txrx::metric_names::kAcquired);
}

TEST(SweepEngine, StopMetricNotRecordedFailsBeforeAnyTrialRuns) {
  // A stop metric the points cannot see (wrong vocabulary, or filtered out
  // by record_metrics) must be rejected up front.
  ScenarioSpec scenario = tiny_scenario();
  SweepConfig config;
  config.stop = tiny_stop();
  config.stop.metric = txrx::metric_names::kTimingCorrect;  // gen-2 never emits it
  EXPECT_THROW((void)SweepEngine(config).run(scenario), InvalidArgument);

  ScenarioSpec filtered = tiny_scenario();
  for (PointSpec& point : filtered.points) {
    point.link.options.record_metrics = {txrx::metric_names::kSnrEstimate};
  }
  SweepConfig config2;
  config2.stop = tiny_stop();
  config2.stop.metric = txrx::metric_names::kAcquired;  // emitted but not recorded
  EXPECT_THROW((void)SweepEngine(config2).run(filtered), InvalidArgument);

  // Recording it makes the same rule valid.
  for (PointSpec& point : filtered.points) {
    point.link.options.record_metrics = {txrx::metric_names::kAcquired};
  }
  const SweepResult result = SweepEngine(config2).run(filtered);
  EXPECT_EQ(result.records.size(), filtered.points.size());
}

TEST(SweepEngine, RunNamedExecutesRegistryScenario) {
  // Shrink a built-in via the registry round trip, then spot-check the
  // find() helper benches use for derived columns.
  SweepConfig config;
  config.seed = 7;
  config.workers = 2;
  config.stop.min_errors = 2;
  config.stop.max_bits = 300;
  config.stop.max_trials = 4;

  ScenarioSpec grid = ScenarioRegistry::global().make("gen2_cm_grid");
  grid.points.resize(2);  // AWGN @ 8 dB: full and mf_only
  const SweepResult result = SweepEngine(config).run(grid);

  ASSERT_EQ(result.records.size(), 2u);
  const PointRecord* full = result.find({{"backend", "full"}, {"channel", "AWGN"}});
  const PointRecord* mf = result.find({{"backend", "mf_only"}});
  ASSERT_NE(full, nullptr);
  ASSERT_NE(mf, nullptr);
  EXPECT_GT(full->ber.bits, 0u);
  EXPECT_EQ(result.find({{"backend", "nope"}}), nullptr);
}

}  // namespace
}  // namespace uwb::engine
