// Tests for the parallel Monte-Carlo sweep engine: the work-stealing pool,
// the deterministic ordered-commit BER measurement (1 worker == N workers,
// parallel == serial), scenario-registry expansion, and byte-identical
// JSON/CSV sinks.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "dsp/fast_convolve.h"
#include "engine/parallel_ber.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "engine/thread_pool.h"
#include "sim/scenario.h"

namespace uwb::engine {
namespace {

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  // Nested submission exercises the worker-local push + stealing path:
  // one seed task fans out to 64 children from inside the pool.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

// ------------------------------------------------- deterministic parallel ----

/// A stochastic synthetic trial: a pure function of its per-trial Rng,
/// with variable bit counts so the bit/error budgets are both exercised.
sim::TrialOutcome synthetic_trial(std::size_t /*index*/, Rng& rng) {
  const std::size_t bits = 50 + static_cast<std::size_t>(rng.uniform_int(0, 50));
  std::size_t errors = 0;
  for (std::size_t b = 0; b < bits; ++b) {
    if (rng.uniform() < 0.02) ++errors;
  }
  return {bits, errors};
}

void expect_points_equal(const sim::BerPoint& a, const sim::BerPoint& b) {
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.trials, b.trials);
  // Bit-identical, not approximately equal: same committed prefix, same
  // accumulation order, same arithmetic.
  EXPECT_EQ(a.ber, b.ber);
  EXPECT_EQ(a.ci95, b.ci95);
}

TEST(ParallelBer, MatchesSerialExactly) {
  sim::BerStop stop;
  stop.min_errors = 40;
  stop.max_bits = 100000;
  stop.max_trials = 100000;
  const Rng root(0xDECAF);

  const sim::BerPoint serial = measure_ber_serial(synthetic_trial, stop, root);
  ASSERT_GT(serial.trials, 0u);

  ThreadPool pool(4);
  const sim::BerPoint parallel =
      measure_ber_parallel([] { return TrialFn(synthetic_trial); }, stop, root, pool);
  expect_points_equal(serial, parallel);
}

TEST(ParallelBer, WorkerCountDoesNotChangeTheAnswer) {
  sim::BerStop stop;
  stop.min_errors = 60;
  stop.max_bits = 100000;
  stop.max_trials = 100000;
  const Rng root(0xB0B);

  sim::BerPoint results[3];
  const std::size_t worker_counts[] = {1, 2, 7};
  for (int i = 0; i < 3; ++i) {
    ThreadPool pool(worker_counts[i]);
    results[i] =
        measure_ber_parallel([] { return TrialFn(synthetic_trial); }, stop, root, pool);
  }
  expect_points_equal(results[0], results[1]);
  expect_points_equal(results[0], results[2]);
}

TEST(ParallelBer, MaxTrialsHardStopWithZeroBitTrials) {
  sim::BerStop stop;
  stop.min_errors = 10;
  stop.max_bits = 1000;
  stop.max_trials = 9;
  ThreadPool pool(3);
  const sim::BerPoint point = measure_ber_parallel(
      [] { return TrialFn([](std::size_t, Rng&) { return sim::TrialOutcome{0, 0}; }); },
      stop, Rng(2), pool);
  EXPECT_EQ(point.trials, 9u);
  EXPECT_EQ(point.bits, 0u);
  EXPECT_DOUBLE_EQ(point.ber, 0.0);
  EXPECT_FALSE(std::isnan(point.ci95));
}

TEST(ParallelBer, DegenerateBudgetsRunNothing) {
  ThreadPool pool(2);
  sim::BerStop stop;
  stop.max_trials = 0;
  std::atomic<int> calls{0};
  const sim::BerPoint point = measure_ber_parallel(
      [&calls] {
        return TrialFn([&calls](std::size_t, Rng&) {
          ++calls;
          return sim::TrialOutcome{1, 0};
        });
      },
      stop, Rng(1), pool);
  EXPECT_EQ(point.trials, 0u);
  EXPECT_EQ(calls.load(), 0);
}

// ---------------------------------------------------------------- registry ----

TEST(ScenarioRegistry, BuilderExpandsGridRowMajor) {
  // A 2 (channel) x 3 (Eb/N0) grid must expand to 6 points, channel as the
  // outer loop, with tags and configs resolved per point.
  Gen2ScenarioBuilder builder("grid", sim::gen2_fast());
  builder.channels({0, 3}).ebn0_grid({8.0, 12.0, 16.0});
  const ScenarioSpec spec = builder.build();

  ASSERT_EQ(spec.points.size(), 6u);
  const char* expected_channels[] = {"AWGN", "AWGN", "AWGN", "CM3", "CM3", "CM3"};
  const char* expected_ebn0[] = {"8", "12", "16", "8", "12", "16"};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(spec.points[i].tag("channel"), expected_channels[i]);
    EXPECT_EQ(spec.points[i].tag("ebn0_db"), expected_ebn0[i]);
    EXPECT_EQ(spec.points[i].link.options.cm, i < 3 ? 0 : 3);
  }
  EXPECT_EQ(spec.points[4].link.options.ebn0_db, 12.0);
  EXPECT_EQ(spec.points[4].label, "CM3 | 12");
}

TEST(ScenarioRegistry, VariantAxisMutatesConfig) {
  Gen2ScenarioBuilder builder("backend", sim::gen2_fast());
  builder.axis("backend", {{"full", [](txrx::Gen2Config&, txrx::TrialOptions&) {}},
                           {"mf_only", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                              c.use_rake = false;
                              c.use_mlse = false;
                            }}});
  const ScenarioSpec spec = builder.build();
  ASSERT_EQ(spec.points.size(), 2u);
  EXPECT_TRUE(spec.points[0].link.gen2().use_rake);
  EXPECT_FALSE(spec.points[1].link.gen2().use_rake);
  EXPECT_FALSE(spec.points[1].link.gen2().use_mlse);
}

TEST(ScenarioRegistry, GlobalHasBuiltinsAndRejectsUnknown) {
  auto& registry = ScenarioRegistry::global();
  EXPECT_TRUE(registry.contains("gen2_cm_grid"));
  EXPECT_TRUE(registry.contains("gen1_waterfall"));
  EXPECT_TRUE(registry.contains("gen2_backend_ladder"));

  const ScenarioSpec grid = registry.make("gen2_cm_grid");
  EXPECT_EQ(grid.points.size(), 5u * 3u * 2u);  // CM0-4 x 3 Eb/N0 x 2 back ends

  EXPECT_THROW((void)registry.make("no_such_scenario"), InvalidArgument);
}

TEST(ScenarioRegistry, EmptyAxisRejected) {
  Gen2ScenarioBuilder builder("bad", sim::gen2_fast());
  EXPECT_THROW(builder.axis("empty", {}), InvalidArgument);
}

TEST(ScenarioRegistry, ThreeAxisExpansionIsRowMajorInDeclarationOrder) {
  // First declared axis outermost, last innermost: a 2x2x2 grid must
  // enumerate as an odometer with the "notch" digit spinning fastest.
  Gen2ScenarioBuilder builder("rowmajor", sim::gen2_fast());
  builder.channels({0, 3})
      .ebn0_grid({8.0, 12.0})
      .axis("notch", {{"off", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                         o.auto_notch = false;
                       }},
                      {"auto", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                         o.auto_notch = true;
                       }}});
  const ScenarioSpec spec = builder.build();
  ASSERT_EQ(spec.points.size(), 8u);
  const char* expected[][3] = {
      {"AWGN", "8", "off"},  {"AWGN", "8", "auto"},  {"AWGN", "12", "off"},
      {"AWGN", "12", "auto"}, {"CM3", "8", "off"},   {"CM3", "8", "auto"},
      {"CM3", "12", "off"},  {"CM3", "12", "auto"},
  };
  for (std::size_t i = 0; i < 8; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(spec.points[i].tags[0], (std::pair<std::string, std::string>{
                                          "channel", expected[i][0]}));
    EXPECT_EQ(spec.points[i].tags[1], (std::pair<std::string, std::string>{
                                          "ebn0_db", expected[i][1]}));
    EXPECT_EQ(spec.points[i].tags[2], (std::pair<std::string, std::string>{
                                          "notch", expected[i][2]}));
    EXPECT_EQ(spec.points[i].link.options.auto_notch,
              std::string(expected[i][2]) == "auto");
  }
}

TEST(ScenarioRegistry, TagsRoundTripThroughPointSpecTag) {
  Gen2ScenarioBuilder builder("tags", sim::gen2_fast());
  builder.channels({2}).ebn0_grid({10.0});
  const ScenarioSpec spec = builder.build();
  ASSERT_EQ(spec.points.size(), 1u);
  const PointSpec& point = spec.points[0];
  // Every declared (axis, value) pair is recoverable via tag(), in order.
  for (const auto& [key, value] : point.tags) {
    EXPECT_EQ(point.tag(key), value);
  }
  EXPECT_EQ(point.tag("channel"), "CM2");
  EXPECT_EQ(point.tag("ebn0_db"), "10");
  EXPECT_EQ(point.tag("not_an_axis"), "");
  EXPECT_EQ(point.label, "CM2 | 10");
}

TEST(ScenarioRegistry, RestrictScenarioFiltersAndFailsLoudly) {
  ScenarioSpec grid = ScenarioRegistry::global().make("gen2_cm_grid");
  restrict_scenario(grid, "channel", "CM1,CM3");
  EXPECT_EQ(grid.points.size(), 2u * 3u * 2u);
  restrict_scenario(grid, "ebn0_db", "12");
  EXPECT_EQ(grid.points.size(), 2u * 2u);
  for (const auto& point : grid.points) {
    EXPECT_TRUE(point.tag("channel") == "CM1" || point.tag("channel") == "CM3");
    EXPECT_EQ(point.tag("ebn0_db"), "12");
  }
  // Unknown axis key: loud failure, not a silently unfiltered sweep.
  EXPECT_THROW(restrict_scenario(grid, "chanel", "CM1"), InvalidArgument);
  // Known axis, value matching no point: equally loud.
  EXPECT_THROW(restrict_scenario(grid, "channel", "CM9"), InvalidArgument);
}

// ------------------------------------------------------------ sweep engine ----

/// A tiny real-link scenario, cheap enough for a unit test: gen-2 fast
/// config on AWGN and CM1, small payloads, small budgets.
ScenarioSpec tiny_scenario() {
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::TrialOptions options;
  options.payload_bits = 64;
  options.genie_timing = true;
  Gen2ScenarioBuilder builder("tiny", config, options);
  builder.channels({0, 1}).ebn0_grid({6.0});
  return builder.build();
}

sim::BerStop tiny_stop() {
  sim::BerStop stop;
  stop.min_errors = 8;
  stop.max_bits = 1500;
  stop.max_trials = 25;
  return stop;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SweepEngine, OneWorkerAndManyWorkersAreByteIdentical) {
  const ScenarioSpec scenario = tiny_scenario();

  SweepConfig config1;
  config1.seed = 0x5EED;
  config1.workers = 1;
  config1.stop = tiny_stop();
  SweepConfig config4 = config1;
  config4.workers = 4;

  JsonSink json1("test_results/sweep_w1.json");
  JsonSink json4("test_results/sweep_w4.json");
  CsvSink csv1("test_results/sweep_w1.csv");
  CsvSink csv4("test_results/sweep_w4.csv");

  const SweepResult r1 = SweepEngine(config1).run(scenario, {&json1, &csv1});
  const SweepResult r4 = SweepEngine(config4).run(scenario, {&json4, &csv4});

  ASSERT_EQ(r1.records.size(), scenario.points.size());
  ASSERT_EQ(r4.records.size(), scenario.points.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    SCOPED_TRACE(r1.records[i].spec.label);
    expect_points_equal(r1.records[i].ber, r4.records[i].ber);
    EXPECT_GT(r1.records[i].ber.bits, 0u);  // the link actually ran
  }

  const std::string j1 = slurp("test_results/sweep_w1.json");
  const std::string j4 = slurp("test_results/sweep_w4.json");
  ASSERT_FALSE(j1.empty());
  EXPECT_EQ(j1, j4);  // byte-identical machine-readable output
  EXPECT_EQ(slurp("test_results/sweep_w1.csv"), slurp("test_results/sweep_w4.csv"));

  // Sanity on the JSON itself.
  EXPECT_NE(j1.find("\"scenario\": \"tiny\""), std::string::npos);
  EXPECT_NE(j1.find("\"tags\""), std::string::npos);
  EXPECT_NE(j1.find("\"ber\""), std::string::npos);
}

/// FNV-1a digest of a sweep's serialized bytes -- the pinned-seed
/// fingerprint the determinism tests compare across configurations.
uint64_t fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A pinned-seed slice of the registry's gen2_cm_grid: the AWGN and CM3
/// "full"-backend points (CM3 is where the FFT fast path does the most
/// work: long CIRs, long preamble correlations).
ScenarioSpec cm_grid_slice() {
  ScenarioSpec grid = ScenarioRegistry::global().make("gen2_cm_grid");
  ScenarioSpec slice;
  slice.name = grid.name;
  slice.description = grid.description;
  for (const auto& point : grid.points) {
    const std::string channel = point.tag("channel");
    if ((channel == "AWGN" || channel == "CM3") && point.tag("backend") == "full" &&
        point.tag("ebn0_db") == "12") {
      slice.points.push_back(point);
    }
  }
  return slice;
}

sim::BerStop cm_grid_slice_stop() {
  sim::BerStop stop;
  stop.min_errors = 4;
  stop.max_bits = 1200;
  stop.max_trials = 4;
  return stop;
}

TEST(SweepEngine, FftFastPathKeepsSweepBytesIdentical) {
  // The dispatch to overlap-save FFT convolution must not change any
  // committed sweep result: a gen2_cm_grid slice run with the fast path
  // disabled (the pre-fast-path direct kernels) and enabled must serialize
  // to byte-identical JSON under a pinned seed.
  //
  // Sensitivity note: the two kernels agree only to ~1e-12 relative, so
  // this asserts that no soft value in the pinned slice sits within that
  // margin of a bit-decision threshold. If a toolchain change ever flips a
  // marginal decision here, that is a real signal that the fast path
  // changed a committed result on that toolchain -- re-pin the seed (or
  // widen the slice's Eb/N0 margin) only after confirming the flip is a
  // rounding-level decision tie, not a kernel bug.
  const ScenarioSpec slice = cm_grid_slice();
  ASSERT_EQ(slice.points.size(), 2u);

  SweepConfig config;
  config.seed = 0xFA57'0001;
  config.workers = 2;
  config.stop = cm_grid_slice_stop();

  JsonSink json_direct("test_results/cm_grid_direct.json");
  JsonSink json_fast("test_results/cm_grid_fast.json");
  {
    const dsp::FastConvolveGuard guard(false);
    (void)SweepEngine(config).run(slice, {&json_direct});
  }
  {
    const dsp::FastConvolveGuard guard(true);
    (void)SweepEngine(config).run(slice, {&json_fast});
  }

  const std::string direct_bytes = slurp("test_results/cm_grid_direct.json");
  const std::string fast_bytes = slurp("test_results/cm_grid_fast.json");
  ASSERT_FALSE(direct_bytes.empty());
  EXPECT_EQ(direct_bytes, fast_bytes);
  EXPECT_EQ(fnv1a(direct_bytes), fnv1a(fast_bytes));
}

TEST(SweepEngine, FastPathDigestIndependentOfWorkerCount) {
  // Pinned-seed digest of the fast-path sweep for any worker count: the
  // per-thread FFT workspaces must not leak state between trials or
  // workers.
  const ScenarioSpec slice = cm_grid_slice();
  uint64_t digests[3] = {};
  const std::size_t worker_counts[] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    SweepConfig config;
    config.seed = 0xFA57'0002;
    config.workers = worker_counts[i];
    config.stop = cm_grid_slice_stop();
    const std::string path =
        "test_results/cm_grid_w" + std::to_string(worker_counts[i]) + ".json";
    JsonSink json(path);
    (void)SweepEngine(config).run(slice, {&json});
    digests[i] = fnv1a(slurp(path));
    EXPECT_NE(digests[i], fnv1a(""));  // file exists and is non-empty
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(SweepEngine, ShardsPartitionThePlanAndMatchTheUnshardedRun) {
  // shard 0/2 and 1/2 must cover exactly the unsharded point set, once
  // each, and every shard point must be byte-identical to its unsharded
  // counterpart (global-index seeding).
  const ScenarioSpec scenario = tiny_scenario();  // 2 points

  SweepConfig base;
  base.seed = 0x51AD;
  base.workers = 2;
  base.stop = tiny_stop();

  const SweepResult full = SweepEngine(base).run(scenario);
  ASSERT_EQ(full.records.size(), 2u);

  std::vector<SweepResult> shards;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    SweepConfig config = base;
    config.shard_index = shard;
    config.shard_count = 2;
    shards.push_back(SweepEngine(config).run(scenario));
    ASSERT_EQ(shards.back().records.size(), 1u);
    EXPECT_EQ(shards.back().records[0].index, shard);  // 0/2 -> point 0, 1/2 -> 1
  }
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    SCOPED_TRACE(full.records[i].spec.label);
    EXPECT_EQ(shards[i].records[0].index, full.records[i].index);
    expect_points_equal(shards[i].records[0].ber, full.records[i].ber);
  }
}

TEST(SweepEngine, InvalidPointFailsBeforeAnyTrialRuns) {
  // A plan whose *last* point is invalid must be rejected up front -- an
  // exception mid-sweep would discard every completed point.
  ScenarioSpec scenario = tiny_scenario();
  PointSpec bad;
  bad.label = "gen1-with-interferer";
  bad.link = txrx::LinkSpec::for_gen1(sim::gen1_fast());
  bad.link.options.interferer = true;
  scenario.points.push_back(bad);

  SweepConfig config;
  config.stop = tiny_stop();
  JsonSink json("test_results/never_written.json");
  try {
    (void)SweepEngine(config).run(scenario, {&json});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("gen1-with-interferer"), std::string::npos);
  }
}

TEST(SweepEngine, RejectsBadShardConfig) {
  SweepConfig config;
  config.shard_count = 0;
  EXPECT_THROW(SweepEngine{config}, InvalidArgument);
  config.shard_count = 2;
  config.shard_index = 2;
  EXPECT_THROW(SweepEngine{config}, InvalidArgument);
}

TEST(SweepEngine, RunNamedExecutesRegistryScenario) {
  // Shrink a built-in via the registry round trip, then spot-check the
  // find() helper benches use for derived columns.
  SweepConfig config;
  config.seed = 7;
  config.workers = 2;
  config.stop.min_errors = 2;
  config.stop.max_bits = 300;
  config.stop.max_trials = 4;

  ScenarioSpec grid = ScenarioRegistry::global().make("gen2_cm_grid");
  grid.points.resize(2);  // AWGN @ 8 dB: full and mf_only
  const SweepResult result = SweepEngine(config).run(grid);

  ASSERT_EQ(result.records.size(), 2u);
  const PointRecord* full = result.find({{"backend", "full"}, {"channel", "AWGN"}});
  const PointRecord* mf = result.find({{"backend", "mf_only"}});
  ASSERT_NE(full, nullptr);
  ASSERT_NE(mf, nullptr);
  EXPECT_GT(full->ber.bits, 0u);
  EXPECT_EQ(result.find({{"backend", "nope"}}), nullptr);
}

}  // namespace
}  // namespace uwb::engine
