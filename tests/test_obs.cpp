// Tests for the run-telemetry subsystem (src/obs/): the trace recorder's
// multi-thread collection and Chrome trace-event export, the run-manifest
// round trip, FFT plan-cache and pool worker counters, the progress meter,
// and -- the load-bearing contract -- byte-identical sweep results with
// telemetry on or off at any worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "dsp/fft.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "engine/thread_pool.h"
#include "io/json.h"
#include "obs/counters.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/scenario.h"

namespace uwb::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------- trace recorder ----

TEST(TraceRecorder, CollectsSpansFromManyThreads) {
  TraceRecorder recorder;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 100;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.name_thread("worker " + std::to_string(t));
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        Span span(&recorder, "test", "op " + std::to_string(i));
        span.arg("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(recorder.event_count(), kThreads * kSpansPerThread);
  const std::vector<TraceRecorder::ThreadLog> logs = recorder.merged();
  ASSERT_EQ(logs.size(), kThreads);
  std::set<std::size_t> tids;
  for (const auto& log : logs) {
    tids.insert(log.tid);
    EXPECT_EQ(log.events.size(), kSpansPerThread);
    EXPECT_NE(log.name.find("worker "), std::string::npos);
    std::uint64_t prev_ts = 0;
    for (const auto& event : log.events) {
      EXPECT_EQ(event.kind, TraceEvent::Kind::kSpan);
      // Within one thread spans are recorded at finish time, in order.
      EXPECT_GE(event.ts_us + event.dur_us, prev_ts);
      prev_ts = event.ts_us;
      ASSERT_EQ(event.args.size(), 1u);
      EXPECT_TRUE(event.args[0].is_number);
    }
  }
  EXPECT_EQ(tids.size(), kThreads);  // registration indices are unique
}

TEST(TraceRecorder, NullRecorderSpansAreInertAndFinishIsIdempotent) {
  Span inert(nullptr, "test", "never recorded");
  inert.arg("k", std::string("v"));
  inert.finish();
  inert.finish();

  TraceRecorder recorder;
  {
    Span span(&recorder, "test", "once");
    span.finish();
    span.finish();  // second finish must not record a duplicate
  }
  EXPECT_EQ(recorder.event_count(), 1u);
}

TEST(TraceRecorder, InstantsAndCountersCarryTheirPayload) {
  TraceRecorder recorder;
  recorder.instant("engine", "stop",
                   {trace_arg("reason", std::string("min_errors")),
                    trace_arg("trials", std::uint64_t{42})});
  recorder.counter("engine", "committed_trials", 42.0);

  const auto logs = recorder.merged();
  ASSERT_EQ(logs.size(), 1u);
  ASSERT_EQ(logs[0].events.size(), 2u);
  const TraceEvent& instant = logs[0].events[0];
  EXPECT_EQ(instant.kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(instant.name, "stop");
  ASSERT_EQ(instant.args.size(), 2u);
  EXPECT_EQ(instant.args[0].value, "min_errors");
  EXPECT_FALSE(instant.args[0].is_number);
  EXPECT_EQ(instant.args[1].value, "42");
  EXPECT_TRUE(instant.args[1].is_number);
  const TraceEvent& counter = logs[0].events[1];
  EXPECT_EQ(counter.kind, TraceEvent::Kind::kCounter);
  ASSERT_EQ(counter.args.size(), 1u);
  EXPECT_TRUE(counter.args[0].is_number);
}

// ------------------------------------------------------------ chrome export ----

TEST(ChromeTrace, ExportIsWellFormedTraceEventJson) {
  TraceRecorder recorder;
  recorder.name_thread("main");
  {
    Span span(&recorder, "engine", "point A");
    span.arg("index", std::uint64_t{0});
    span.arg("ratio", 0.5);
    span.arg("label", std::string("A"));
  }
  recorder.instant("engine", "stop", {trace_arg("reason", std::string("max_trials"))});
  recorder.counter("engine", "committed_trials", 10.0);
  std::thread other([&recorder] {
    recorder.name_thread("helper");
    Span span(&recorder, "pool", "task");
  });
  other.join();

  const std::string json = write_chrome_trace_json(recorder);
  const io::JsonValue doc = io::parse_json(json);
  const io::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::set<std::string> phases;
  std::set<std::string> thread_names;
  std::uint64_t span_count = 0;
  for (const io::JsonValue& event : events.items()) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.at("ph").as_string();
    phases.insert(ph);
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M") << ph;
    (void)event.at("name").as_string();
    (void)event.at("pid").as_uint64();
    (void)event.at("tid").as_uint64();
    if (ph == "X") {
      ++span_count;
      (void)event.at("ts").as_uint64();
      (void)event.at("dur").as_uint64();
      (void)event.at("cat").as_string();
    }
    if (ph == "M" && event.at("name").as_string() == "thread_name") {
      thread_names.insert(event.at("args").at("name").as_string());
    }
    if (ph == "i") {
      EXPECT_EQ(event.at("s").as_string(), "t");
    }
  }
  EXPECT_EQ(span_count, 2u);
  EXPECT_EQ(phases, (std::set<std::string>{"X", "i", "C", "M"}));
  EXPECT_TRUE(thread_names.count("main"));
  EXPECT_TRUE(thread_names.count("helper"));

  // Argument rendering: numbers unquoted, strings quoted.
  EXPECT_NE(json.find("\"index\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"ratio\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"A\""), std::string::npos);
}

TEST(ChromeTrace, WriteCreatesTheFile) {
  TraceRecorder recorder;
  { Span span(&recorder, "test", "op"); }
  const std::string path = "test_results/obs_trace_smoke.trace.json";
  write_chrome_trace(recorder, path);
  const std::string bytes = slurp(path);
  ASSERT_FALSE(bytes.empty());
  EXPECT_NO_THROW((void)io::parse_json(bytes));
}

// ------------------------------------------------------------- run manifest ----

RunManifest sample_manifest() {
  RunManifest manifest;
  manifest.scenario = "gen2_cm_grid";
  manifest.seed = 0x5eed'0000'cafe'f00dULL;
  manifest.workers = 2;
  manifest.shard_index = 1;
  manifest.shard_count = 3;
  manifest.stop.min_errors = 40;
  manifest.stop.max_bits = 120000;
  manifest.stop.max_trials = 100000;
  manifest.stop.metric = "timing_correct";
  manifest.result_path = "bench/results/run.json";
  manifest.trace_path = "bench/results/run.trace.json";
  manifest.build = current_build_info();
  manifest.counters.pool = {{100, 3, 1500}, {80, 10, 2500}};
  manifest.counters.cache_hits = 5;
  manifest.counters.cache_disk_loads = 1;
  manifest.counters.cache_generated = 2;
  manifest.counters.cache_sv_draws = 128;
  manifest.counters.fft_plan_hits = 400;
  manifest.counters.fft_plan_misses = 3;
  manifest.counters.wall_s = 12.25;
  manifest.stages[Stage::kRxFrontend] = {56, 210'000'000, 1'500'000, 11'000'000, 860'160};
  manifest.stages[Stage::kFftExec] = {392, 21'000'000, 11'000, 4'300'000, 1'720'320};
  manifest.points.push_back({0, "CM1 | 8 | full", 0.5, 46, 15272, 41});
  manifest.points.push_back({4, "CM1 | 8 | mf_only", 0.125, 10, 3320, 57});
  manifest.points[0].stages[Stage::kRxFrontend] = {46, 180'000'000, 1'500'000, 11'000'000, 706'560};
  return manifest;
}

TEST(RunManifest, RoundTripsThroughJson) {
  const RunManifest manifest = sample_manifest();
  const std::string once = io::dump_json_pretty(manifest_to_json(manifest));
  const RunManifest reloaded = manifest_from_json(io::parse_json(once));
  const std::string twice = io::dump_json_pretty(manifest_to_json(reloaded));
  EXPECT_EQ(once, twice);

  EXPECT_EQ(reloaded.scenario, manifest.scenario);
  EXPECT_EQ(reloaded.seed, manifest.seed);  // 64-bit exact, not a double
  EXPECT_EQ(reloaded.workers, manifest.workers);
  EXPECT_EQ(reloaded.shard_index, manifest.shard_index);
  EXPECT_EQ(reloaded.shard_count, manifest.shard_count);
  EXPECT_EQ(reloaded.stop.metric, manifest.stop.metric);
  EXPECT_EQ(reloaded.build, manifest.build);
  EXPECT_EQ(reloaded.counters, manifest.counters);
  EXPECT_EQ(reloaded.stages, manifest.stages);
  EXPECT_EQ(reloaded.points, manifest.points);  // includes per-point stages
}

TEST(RunManifest, EmptyStageTablesAreOmittedAndParseBackEmpty) {
  RunManifest manifest = sample_manifest();
  manifest.stages = StageTable{};
  manifest.points[0].stages = StageTable{};
  const io::JsonValue doc = manifest_to_json(manifest);
  EXPECT_EQ(doc.find("stages"), nullptr);  // pre-profiler manifest shape
  EXPECT_EQ(doc.at("points").items()[0].find("stages"), nullptr);
  const RunManifest reloaded = manifest_from_json(doc);
  EXPECT_TRUE(reloaded.stages.empty());
  EXPECT_TRUE(reloaded.points[0].stages.empty());
}

TEST(RunManifest, ParsingIsStrict) {
  EXPECT_THROW((void)manifest_from_json(io::parse_json("{}")), Error);
  EXPECT_THROW((void)manifest_from_json(io::parse_json("{\"scenario\": 3}")), Error);
}

TEST(RunManifest, SidecarPathConvention) {
  EXPECT_EQ(manifest_path_for("a/b.json"), "a/b.json.run.json");
  EXPECT_EQ(manifest_path_for("run.csv"), "run.csv.run.json");
}

TEST(RunManifest, WriteLandsNextToTheResult) {
  const RunManifest manifest = sample_manifest();
  const std::string path = manifest_path_for("test_results/obs_result.json");
  write_run_manifest(manifest, path);
  const io::JsonValue doc = io::parse_json(slurp(path));
  EXPECT_EQ(doc.at("scenario").as_string(), "gen2_cm_grid");
  EXPECT_EQ(doc.at("counters").at("pool").at("workers").as_uint64(), 2u);
}

// ----------------------------------------------------------------- counters ----

TEST(FftPlanCache, CountsMissesThenHits) {
  // Pick a size no other test in this binary touches: the first request
  // must build the plan (miss), the second must be served from cache (hit).
  constexpr std::size_t kSize = 1u << 14;
  const dsp::FftPlanCacheStats before = dsp::fft_plan_cache_stats();
  (void)dsp::fft_plan(kSize);
  const dsp::FftPlanCacheStats after_first = dsp::fft_plan_cache_stats();
  EXPECT_EQ(after_first.misses, before.misses + 1);
  EXPECT_EQ(after_first.hits, before.hits);
  (void)dsp::fft_plan(kSize);
  const dsp::FftPlanCacheStats after_second = dsp::fft_plan_cache_stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits, after_first.hits + 1);
}

TEST(ThreadPool, WorkerStatsAccountForEveryTask) {
  engine::ThreadPool pool(4);
  constexpr std::uint64_t kTasks = 200;
  for (std::uint64_t i = 0; i < kTasks; ++i) pool.submit([] {});
  pool.wait_idle();
  const std::vector<PoolWorkerStats> stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  for (const PoolWorkerStats& s : stats) {
    executed += s.executed;
    stolen += s.stolen;
  }
  EXPECT_EQ(executed, kTasks);  // nothing lost, nothing double-counted
  EXPECT_LE(stolen, executed);
}

TEST(ThreadPool, TracedWorkersEmitTaskSpansAndNames) {
  TraceRecorder recorder;
  constexpr std::uint64_t kTasks = 10;
  {
    engine::ThreadPool pool(2, &recorder);
    for (std::uint64_t i = 0; i < kTasks; ++i) pool.submit([] {});
    pool.wait_idle();
  }  // destruction quiesces the workers before merged()

  std::uint64_t task_spans = 0;
  std::set<std::string> names;
  for (const auto& log : recorder.merged()) {
    names.insert(log.name);
    for (const auto& event : log.events) {
      if (event.kind == TraceEvent::Kind::kSpan) ++task_spans;
      EXPECT_STREQ(event.category, "pool");
    }
  }
  EXPECT_EQ(task_spans, kTasks);
  EXPECT_TRUE(names.count("pool worker 0"));
  EXPECT_TRUE(names.count("pool worker 1"));
}

// ----------------------------------------------------------- stage profiler ----

TEST(StageProfiler, AccumulatesScopesAgainstAHandTimedFixture) {
  StageProfiler profiler;
  {
    ScopedStageProfile scope(&profiler);
    for (int i = 0; i < 3; ++i) {
      StageTimer timer(Stage::kTxModulate, 100);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    StageTimer extra(Stage::kCorrelateRake);
    extra.add_samples(7);
    extra.finish();
    extra.finish();  // idempotent: must not commit a second observation
  }
  const StageTable merged = profiler.merged();
  const StageStats& tx = merged[Stage::kTxModulate];
  EXPECT_EQ(tx.calls, 3u);
  EXPECT_EQ(tx.samples, 300u);
  // Each scope slept 2 ms, so the hand-timed bounds hold per observation.
  EXPECT_GE(tx.min_ns, 2'000'000u);
  EXPECT_GE(tx.max_ns, tx.min_ns);
  EXPECT_GE(tx.total_ns, 3u * tx.min_ns);
  EXPECT_LE(tx.total_ns, 3u * tx.max_ns);
  EXPECT_GE(tx.mean_ns(), 2e6);
  const StageStats& rake = merged[Stage::kCorrelateRake];
  EXPECT_EQ(rake.calls, 1u);
  EXPECT_EQ(rake.samples, 7u);
  EXPECT_EQ(merged[Stage::kFftExec].calls, 0u);  // untouched stages stay zero
}

TEST(StageProfiler, MergesPerThreadAccumulatorsDeterministically) {
  StageProfiler profiler;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kScopes = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      const ScopedStageProfile scope(&profiler);
      for (std::size_t i = 0; i < kScopes; ++i) {
        StageTimer timer(Stage::kRxFrontend, 10);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const StageTable merged = profiler.merged();
  EXPECT_EQ(merged[Stage::kRxFrontend].calls, kThreads * kScopes);
  EXPECT_EQ(merged[Stage::kRxFrontend].samples, kThreads * kScopes * 10);
  // merged() is a pure fold over quiesced accumulators: repeatable.
  EXPECT_EQ(profiler.merged(), merged);
  profiler.reset();
  EXPECT_TRUE(profiler.merged().empty());
}

TEST(StageProfiler, DisabledThreadNeverRecords) {
  StageProfiler profiler;
  {
    // No active scope on this thread: the timer must stay inert.
    StageTimer timer(Stage::kDemodDecide, 1000);
    timer.add_samples(5);
  }
  {
    const ScopedStageProfile on(&profiler);
    {
      const ScopedStageProfile off(nullptr);  // nested deactivation
      StageTimer timer(Stage::kDemodDecide, 1);
    }
    StageTimer timer(Stage::kDemodDecide, 2);  // binding restored: records
  }
  const StageTable merged = profiler.merged();
  EXPECT_EQ(merged[Stage::kDemodDecide].calls, 1u);
  EXPECT_EQ(merged[Stage::kDemodDecide].samples, 2u);
}

TEST(StageTable, RoundTripsThroughJsonSkippingZeroRows) {
  StageTable table;
  table[Stage::kChannelConvolve] = {12, 34'000'000, 1'000'000, 9'000'000, 49'152};
  table[Stage::kFftExec] = {96, 5'000'000, 20'000, 120'000, 98'304};
  const io::JsonValue rows = stage_table_to_json(table);
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.items().size(), 2u);  // zero-call stages omitted
  EXPECT_EQ(rows.items()[0].at("stage").as_string(), "channel_convolve");
  EXPECT_EQ(stage_table_from_json(rows), table);
  EXPECT_THROW((void)stage_from_name("warp_drive"), Error);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(stage_from_name(stage_name(static_cast<Stage>(i))),
              static_cast<Stage>(i));
  }
}

// ------------------------------------------------------------ progress meter ----

TEST(ProgressMeter, WritesHeartbeatAndFinalSummary) {
  std::filesystem::create_directories("test_results");
  const std::string path = "test_results/obs_progress.txt";
  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    ProgressOptions options;
    options.out = out;
    options.interval_s = 0.01;
    {
      ProgressMeter meter(options);
      meter.begin_run(2);
      meter.begin_point(0, "point A");
      meter.add_trials(10);
      meter.add_bits(1000);
      meter.add_errors(3);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      meter.end_point();
      meter.end_run();
    }
    std::fclose(out);
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("[progress] sweep started: 2 point(s)"), std::string::npos);
  EXPECT_NE(text.find("point A"), std::string::npos);       // heartbeat fired
  EXPECT_NE(text.find("[progress] done: "), std::string::npos);
  EXPECT_NE(text.find("10 trials"), std::string::npos);
}

// --------------------------------------- the determinism contract, end to end ----

/// A tiny real-link scenario (mirrors test_engine's): gen-2 fast config on
/// AWGN and CM1, with the CM1 points switched to a shared 4-realization
/// channel ensemble so the channel-cache instrumentation path runs too.
engine::ScenarioSpec tiny_ensemble_scenario() {
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::TrialOptions options;
  options.payload_bits = 64;
  options.genie_timing = true;
  engine::Gen2ScenarioBuilder builder("tiny_obs", config, options);
  builder.channels({0, 1}).ebn0_grid({6.0});
  engine::ScenarioSpec spec = builder.build();
  for (engine::PointSpec& point : spec.points) {
    if (point.link.options.cm >= 1) {
      point.link.options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
      point.link.options.channel_source.ensemble_count = 4;
    }
  }
  return spec;
}

TEST(SweepEngine, TelemetryNeverChangesResultBytes) {
  const engine::ScenarioSpec scenario = tiny_ensemble_scenario();
  sim::BerStop stop;
  stop.min_errors = 8;
  stop.max_bits = 1500;
  stop.max_trials = 25;

  // Baseline: one worker, no telemetry.
  engine::SweepConfig plain;
  plain.seed = 0x0B5;
  plain.workers = 1;
  plain.stop = stop;
  engine::JsonSink plain_json("test_results/obs_plain.json");
  engine::CsvSink plain_csv("test_results/obs_plain.csv");
  (void)engine::SweepEngine(plain).run(scenario, {&plain_json, &plain_csv});

  // Full telemetry: eight workers, tracing and progress (to a scratch file).
  TraceRecorder trace;
  std::FILE* progress_out = std::fopen("test_results/obs_progress_sweep.txt", "w");
  ASSERT_NE(progress_out, nullptr);
  ProgressOptions progress_options;
  progress_options.out = progress_out;
  progress_options.interval_s = 0.01;
  engine::SweepResult traced_result;
  {
    ProgressMeter progress(progress_options);
    engine::SweepConfig traced = plain;
    traced.workers = 8;
    traced.trace = &trace;
    traced.progress = &progress;
    engine::JsonSink traced_json("test_results/obs_traced.json");
    engine::CsvSink traced_csv("test_results/obs_traced.csv");
    traced_result = engine::SweepEngine(traced).run(scenario, {&traced_json, &traced_csv});
  }
  std::fclose(progress_out);

  // The contract: byte-identical machine-readable results.
  const std::string plain_bytes = slurp("test_results/obs_plain.json");
  ASSERT_FALSE(plain_bytes.empty());
  EXPECT_EQ(plain_bytes, slurp("test_results/obs_traced.json"));
  EXPECT_EQ(slurp("test_results/obs_plain.csv"), slurp("test_results/obs_traced.csv"));

  // The trace saw all three instrumented subsystems.
  std::set<std::string> categories;
  for (const auto& log : trace.merged()) {
    for (const auto& event : log.events) categories.insert(event.category);
  }
  EXPECT_TRUE(categories.count("engine"));
  EXPECT_TRUE(categories.count("pool"));
  EXPECT_TRUE(categories.count("channel_cache"));

  // The counters saw the run: every pool task counted, ensemble resolved.
  std::uint64_t executed = 0;
  for (const PoolWorkerStats& s : traced_result.counters.pool) executed += s.executed;
  EXPECT_EQ(traced_result.counters.pool.size(), 8u);
  EXPECT_GT(executed, 0u);
  EXPECT_GT(traced_result.counters.cache_hits + traced_result.counters.cache_generated +
                traced_result.counters.cache_disk_loads,
            0u);
  EXPECT_GT(traced_result.counters.wall_s, 0.0);
}

TEST(SweepEngine, ProfilingNeverChangesResultBytes) {
  const engine::ScenarioSpec scenario = tiny_ensemble_scenario();
  sim::BerStop stop;
  stop.min_errors = 8;
  stop.max_bits = 1500;
  stop.max_trials = 25;

  // Baseline: one worker, no profiler.
  engine::SweepConfig plain;
  plain.seed = 0x0B5;
  plain.workers = 1;
  plain.stop = stop;
  engine::JsonSink plain_json("test_results/obs_prof_off.json");
  (void)engine::SweepEngine(plain).run(scenario, {&plain_json});

  // Profiled: eight workers, --profile equivalent.
  StageProfiler profiler;
  engine::SweepConfig profiled = plain;
  profiled.workers = 8;
  profiled.profile = &profiler;
  engine::SweepResult profiled_result;
  {
    engine::JsonSink profiled_json("test_results/obs_prof_on.json");
    profiled_result = engine::SweepEngine(profiled).run(scenario, {&profiled_json});
  }

  // The contract: the profiler is a pure observer.
  const std::string off_bytes = slurp("test_results/obs_prof_off.json");
  ASSERT_FALSE(off_bytes.empty());
  EXPECT_EQ(off_bytes, slurp("test_results/obs_prof_on.json"));

  // The run-total stage table saw the instrumented pipeline.
  EXPECT_FALSE(profiled_result.stages.empty());
  EXPECT_GT(profiled_result.stages[Stage::kTxModulate].calls, 0u);
  EXPECT_GT(profiled_result.stages[Stage::kRxFrontend].calls, 0u);
  EXPECT_GT(profiled_result.stages[Stage::kRxFrontend].samples, 0u);
  EXPECT_GT(profiled_result.stages[Stage::kDemodDecide].calls, 0u);
  EXPECT_GT(profiled_result.stages[Stage::kFftExec].calls, 0u);
}

}  // namespace
}  // namespace uwb::obs
