// Tests for the data-converter models: uniform quantizer, flash,
// time-interleaved flash (gen-1), SAR (gen-2), sample-and-hold.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "adc/flash_adc.h"
#include "adc/quantizer.h"
#include "adc/sampling.h"
#include "adc/sar_adc.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace uwb::adc {
namespace {

// -------------------------------------------------------------- uniform ----

TEST(UniformQuantizer, CodesAndLevels) {
  UniformQuantizer q(2, 1.0);  // 4 codes over [-1, 1], LSB 0.5
  EXPECT_DOUBLE_EQ(q.lsb(), 0.5);
  EXPECT_EQ(q.convert(-2.0), 0);  // clipped low
  EXPECT_EQ(q.convert(-0.9), 0);
  EXPECT_EQ(q.convert(-0.3), 1);
  EXPECT_EQ(q.convert(0.3), 2);
  EXPECT_EQ(q.convert(0.9), 3);
  EXPECT_EQ(q.convert(2.0), 3);   // clipped high
  EXPECT_DOUBLE_EQ(q.level_of(0), -0.75);
  EXPECT_DOUBLE_EQ(q.level_of(3), 0.75);
}

TEST(UniformQuantizer, OneBitIsSignDetector) {
  UniformQuantizer q(1, 1.0);
  EXPECT_EQ(q.convert(-0.01), 0);
  EXPECT_EQ(q.convert(0.01), 1);
  EXPECT_DOUBLE_EQ(q.level_of(0), -0.5);
  EXPECT_DOUBLE_EQ(q.level_of(1), 0.5);
}

TEST(UniformQuantizer, SqnrTracksSixDbPerBit) {
  // Quantize a full-scale sine and check the 6.02 b + 1.76 dB law.
  Rng rng(1);
  for (int bits : {4, 6, 8}) {
    UniformQuantizer q(bits, 1.0);
    double sig = 0.0, err = 0.0;
    const std::size_t n = 100000;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = std::sin(two_pi * static_cast<double>(i) * 0.013771);
      const double y = q.level_of(q.convert(x));
      sig += x * x;
      err += (y - x) * (y - x);
    }
    const double sqnr_db = to_db(sig / err);
    EXPECT_NEAR(sqnr_db, ideal_sqnr_db(bits), 1.0) << "bits=" << bits;
  }
}

TEST(UniformQuantizer, RejectsBadConfig) {
  EXPECT_THROW(UniformQuantizer(0, 1.0), InvalidArgument);
  EXPECT_THROW(UniformQuantizer(4, -1.0), InvalidArgument);
}

TEST(UniformQuantizer, DigitizeIq) {
  UniformQuantizer qi(8, 1.0), qq(8, 1.0);
  const CplxVec x = {{0.5, -0.25}};
  const CplxVec y = digitize_iq(x, qi, qq);
  EXPECT_NEAR(y[0].real(), 0.5, qi.lsb());
  EXPECT_NEAR(y[0].imag(), -0.25, qi.lsb());
}

// ---------------------------------------------------------------- flash ----

TEST(FlashAdc, IdealMatchesUniform) {
  Rng rng(2);
  FlashParams params;
  params.bits = 4;
  params.comparator_offset_sigma = 0.0;
  FlashAdc flash(params, rng);
  UniformQuantizer ref(4, 1.0);
  for (double x = -1.2; x <= 1.2; x += 0.01) {
    EXPECT_EQ(flash.convert(x), ref.convert(x)) << "x=" << x;
  }
}

TEST(FlashAdc, OffsetsPerturbThresholds) {
  Rng rng(3);
  FlashParams params;
  params.bits = 4;
  params.comparator_offset_sigma = 0.3;
  FlashAdc flash(params, rng);
  // Thresholds stay sorted (bubble-corrected) but differ from nominal.
  const RealVec& th = flash.thresholds();
  bool any_moved = false;
  const double lsb = 2.0 / 16.0;
  for (std::size_t k = 0; k < th.size(); ++k) {
    if (k > 0) EXPECT_GE(th[k], th[k - 1]);
    const double nominal = -1.0 + static_cast<double>(k + 1) * lsb;
    if (std::abs(th[k] - nominal) > 1e-6) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(FlashAdc, TransferIsMonotone) {
  Rng rng(4);
  FlashParams params;
  params.bits = 5;
  params.comparator_offset_sigma = 0.5;
  FlashAdc flash(params, rng);
  int prev = flash.convert(-1.5);
  for (double x = -1.5; x <= 1.5; x += 0.003) {
    const int code = flash.convert(x);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

// ------------------------------------------------------- time-interleaved ----

TEST(TimeInterleaved, RoundRobinLanes) {
  Rng rng(5);
  FlashParams lane;
  lane.bits = 4;
  InterleaveMismatch mm;
  mm.offset_sigma = 0.2;  // large, to tell lanes apart
  TimeInterleavedAdc adc(4, lane, mm, rng);
  EXPECT_EQ(adc.num_lanes(), 4);
  // Constant input: codes repeat with period 4 (per-lane offsets differ).
  std::vector<int> codes;
  for (int i = 0; i < 16; ++i) codes.push_back(adc.convert(0.0));
  for (int i = 0; i < 12; ++i) EXPECT_EQ(codes[i], codes[i + 4]);
}

TEST(TimeInterleaved, MismatchCreatesSpurs) {
  // A pure tone through a gain-mismatched interleaved ADC grows tones at
  // fs/M offsets; total error power exceeds the matched case.
  Rng rng(6);
  FlashParams lane;
  lane.bits = 8;
  InterleaveMismatch matched{0.0, 0.0, 0.0};
  InterleaveMismatch mismatched{0.05, 0.02, 0.0};
  TimeInterleavedAdc good(4, lane, matched, rng);
  TimeInterleavedAdc bad(4, lane, mismatched, rng);

  double err_good = 0.0, err_bad = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = 0.8 * std::sin(two_pi * 0.137 * i);
    err_good += std::pow(good.level_of(good.convert(x)) - x, 2);
    err_bad += std::pow(bad.level_of(bad.convert(x)) - x, 2);
  }
  EXPECT_GT(err_bad, 3.0 * err_good);
}

TEST(TimeInterleaved, ResetRestartsLaneZero) {
  Rng rng(7);
  FlashParams lane;
  lane.bits = 4;
  InterleaveMismatch mm;
  mm.offset_sigma = 0.2;
  TimeInterleavedAdc adc(4, lane, mm, rng);
  const int first = adc.convert(0.3);
  (void)adc.convert(0.3);
  adc.reset();
  EXPECT_EQ(adc.convert(0.3), first);
}

// ------------------------------------------------------------------ sar ----

TEST(SarAdc, IdealMatchesUniform) {
  Rng rng(8);
  SarParams params;
  params.bits = 5;
  params.cap_mismatch_sigma = 0.0;
  params.comparator_noise = 0.0;
  SarAdc sar(params, rng);
  UniformQuantizer ref(5, 1.0);
  for (double x = -1.1; x <= 1.1; x += 0.007) {
    EXPECT_EQ(sar.convert(x), ref.convert(x)) << "x=" << x;
  }
}

TEST(SarAdc, FiveBitPaperConfigResolves) {
  Rng rng(9);
  SarParams params;  // default: 5 bits, 1% mismatch
  SarAdc sar(params, rng);
  // Reconstruction error bounded by ~1 LSB even with mismatch.
  const double lsb = 2.0 / 32.0;
  for (double x = -0.95; x <= 0.95; x += 0.01) {
    const double y = sar.level_of(sar.convert(x));
    EXPECT_NEAR(y, x, 1.5 * lsb) << "x=" << x;
  }
}

TEST(SarAdc, MismatchDegradesLinearity) {
  Rng rng(10);
  SarParams good;
  good.bits = 8;
  good.cap_mismatch_sigma = 0.0;
  SarParams bad = good;
  bad.cap_mismatch_sigma = 0.05;
  SarAdc sar_good(good, rng), sar_bad(bad, rng);
  double err_good = 0.0, err_bad = 0.0;
  for (double x = -0.99; x <= 0.99; x += 0.001) {
    err_good += std::pow(sar_good.level_of(sar_good.convert(x)) - x, 2);
    err_bad += std::pow(sar_bad.level_of(sar_bad.convert(x)) - x, 2);
  }
  EXPECT_GT(err_bad, err_good);
}

TEST(SarAdc, ComparatorNoiseFlipsLsbs) {
  Rng rng(11);
  SarParams noisy;
  noisy.bits = 5;
  noisy.comparator_noise = 0.02;
  SarAdc sar(noisy, rng);
  // Converting the same mid-scale value repeatedly should not always give
  // the same code when the comparator is noisy near a threshold.
  const double x = 1.0 / 32.0;  // exactly on a threshold region
  int first = sar.convert(x);
  bool varied = false;
  for (int i = 0; i < 200; ++i) {
    if (sar.convert(x) != first) {
      varied = true;
      break;
    }
  }
  EXPECT_TRUE(varied);
}

// --------------------------------------------------------------- sampling ----

TEST(SampleAndHold, IntegerDecimation) {
  SamplingParams params;
  params.adc_rate_hz = 1e9;
  SampleAndHold sh(params);
  Rng rng(12);
  RealVec x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const RealWaveform y = sh.sample(RealWaveform(x, 4e9), rng);
  EXPECT_DOUBLE_EQ(y.sample_rate(), 1e9);
  ASSERT_GE(y.size(), 24u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], 8.0);
}

TEST(SampleAndHold, PhaseOffsetInterpolates) {
  SamplingParams params;
  params.adc_rate_hz = 1e9;
  params.phase_offset_s = 0.125e-9;  // half an input sample at 4 GHz
  SampleAndHold sh(params);
  Rng rng(13);
  RealVec x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const RealWaveform y = sh.sample(RealWaveform(x, 4e9), rng);
  EXPECT_NEAR(y[1], 4.5, 1e-9);
}

TEST(SampleAndHold, JitterAddsNoiseOnFastSignal) {
  SamplingParams clean;
  clean.adc_rate_hz = 1e9;
  SamplingParams jittery = clean;
  jittery.aperture_jitter_rms_s = 20e-12;
  Rng rng_a(14), rng_b(14);
  RealVec x(40000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 400e6 * static_cast<double>(i) / 4e9);
  }
  const RealWaveform y0 = SampleAndHold(clean).sample(RealWaveform(x, 4e9), rng_a);
  const RealWaveform y1 = SampleAndHold(jittery).sample(RealWaveform(x, 4e9), rng_b);
  double err = 0.0;
  const std::size_t n = std::min(y0.size(), y1.size());
  for (std::size_t i = 0; i < n; ++i) err += std::pow(y0[i] - y1[i], 2);
  // Jitter * 2 pi f * A: sigma ~ 2pi*400e6*20e-12 = 0.05 -> var ~ 2.5e-3 ... 1e-2.
  EXPECT_GT(err / n, 5e-4);
  EXPECT_LT(err / n, 5e-2);
}

TEST(SampleAndHold, RejectsUpsampling) {
  SamplingParams params;
  params.adc_rate_hz = 4e9;
  SampleAndHold sh(params);
  Rng rng(15);
  EXPECT_THROW((void)sh.sample(RealWaveform(RealVec(10, 0.0), 1e9), rng), Error);
}

}  // namespace
}  // namespace uwb::adc
