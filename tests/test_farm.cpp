// Tests for the fault-tolerant sweep farm: checkpoint serialization and
// versioning, retry/backoff/classification policy, fault-plan parsing,
// claim verification, and -- through the real uwb_sweep/uwb_farm binaries
// -- kill-and-resume determinism, fault-injected recovery, timeout
// supervision, graceful partial merges, and loud failure on corrupted
// checkpoints (mirroring the channel-cache tamper tests).

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "engine/scenario_registry.h"
#include "farm/exit_codes.h"
#include "farm/farm.h"
#include "farm/farm_state.h"
#include "farm/fault.h"
#include "farm/runner.h"
#include "farm/verify.h"
#include "io/json.h"
#include "io/result_io.h"

namespace uwb::farm {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& content) {
  fs::create_directories(fs::path(path).parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Fresh scratch directory per test.
class FarmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("uwb_farm_test_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

// ------------------------------------------------------------ fault plan ----

TEST(FaultPlan, ParsesKindsShardsAndRepeatCounts) {
  const auto plan = parse_fault_plan("crash:shard3,hang:5,corrupt:shard2@1");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan[0].shard, 3u);
  EXPECT_EQ(plan[0].times, -1);
  EXPECT_EQ(plan[1].kind, FaultKind::kHang);
  EXPECT_EQ(plan[1].shard, 5u);
  EXPECT_EQ(plan[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan[2].shard, 2u);
  EXPECT_EQ(plan[2].times, 1);
}

TEST(FaultPlan, RejectsMalformedEntriesLoudly) {
  EXPECT_THROW(parse_fault_plan(""), InvalidArgument);
  EXPECT_THROW(parse_fault_plan("explode:shard1"), InvalidArgument);
  EXPECT_THROW(parse_fault_plan("crash:shardX"), InvalidArgument);
  EXPECT_THROW(parse_fault_plan("crash:3@0"), InvalidArgument);
  EXPECT_THROW(parse_fault_plan("crash"), InvalidArgument);
  EXPECT_THROW(parse_fault_plan("crash:1,,hang:2"), InvalidArgument);
}

TEST(FaultPlan, RepeatCountRequiresMarkerDirectory) {
  EXPECT_THROW(FaultInjector(parse_fault_plan("crash:0@1"), 0, ""), InvalidArgument);
  // Faults for other shards don't arm this injector at all.
  const FaultInjector other(parse_fault_plan("crash:7@1"), 0, "");
  EXPECT_FALSE(other.armed());
}

// --------------------------------------------------------------- backoff ----

TEST(Backoff, DeterministicExponentialWithBoundedJitter) {
  RetryPolicy retry;
  retry.backoff_base_s = 0.25;
  retry.backoff_max_s = 8.0;
  // Pure function of (seed, shard, attempt).
  EXPECT_EQ(backoff_delay_s(retry, 42, 3, 2), backoff_delay_s(retry, 42, 3, 2));
  EXPECT_NE(backoff_delay_s(retry, 42, 3, 2), backoff_delay_s(retry, 42, 4, 2));
  EXPECT_NE(backoff_delay_s(retry, 42, 3, 2), backoff_delay_s(retry, 42, 3, 3));
  // Attempt 2 draws from [0.5, 1.5) x base; later attempts double, capped.
  const double first = backoff_delay_s(retry, 7, 0, 2);
  EXPECT_GE(first, 0.5 * retry.backoff_base_s);
  EXPECT_LT(first, 1.5 * retry.backoff_base_s);
  const double huge = backoff_delay_s(retry, 7, 0, 30);
  EXPECT_LT(huge, 1.5 * retry.backoff_max_s);
  EXPECT_GE(huge, 0.5 * retry.backoff_max_s);
}

// -------------------------------------------------------- classification ----

TEST(ExitClassification, PermanentVsTransient) {
  ExitStatus s;
  s.kind = ExitStatus::Kind::kExited;
  s.code = kExitOk;
  EXPECT_TRUE(s.ok());
  s.code = kExitRuntime;
  EXPECT_TRUE(is_transient(s));  // generic runtime errors may be environmental
  s.code = kExitBadArgs;
  EXPECT_FALSE(is_transient(s));
  s.code = kExitSpecLoad;
  EXPECT_FALSE(is_transient(s));
  s.code = kExitInterrupted;
  EXPECT_TRUE(is_transient(s));
  s.code = 127;  // exec failure
  EXPECT_TRUE(is_transient(s));
  s.kind = ExitStatus::Kind::kSignaled;
  s.sig = 9;
  EXPECT_TRUE(is_transient(s));
  EXPECT_EQ(s.describe(), "signal 9");
  s.kind = ExitStatus::Kind::kTimeout;
  EXPECT_TRUE(is_transient(s));
  EXPECT_EQ(s.describe(), "timeout");
}

// ------------------------------------------------------- checkpoint JSON ----

TEST(FarmSpecJson, RoundTripsExactly) {
  FarmSpec spec;
  spec.scenario = "gen2_cm_grid";
  spec.seed = 0xDEADBEEFull;
  spec.stop.min_errors = 4;
  spec.stop.max_bits = 1200;
  spec.stop.max_trials = 4;
  spec.stop.metric = "timing_correct";
  spec.shard_count = 3;
  spec.num_points = 12;
  spec.workers_per_shard = 2;
  spec.channel_cache_dir = "/tmp/channels";
  spec.retry.max_attempts = 5;
  spec.retry.timeout_s = 2.5;
  EXPECT_EQ(farm_spec_from_json(farm_spec_to_json(spec)), spec);
}

TEST(FarmSpecJson, RejectsVersionMismatchAndUnknownKeys) {
  FarmSpec spec;
  spec.scenario = "x";
  io::JsonValue doc = farm_spec_to_json(spec);

  // Rebuild with a bumped version: serialize, tweak textually, reparse.
  std::string text = io::dump_json(doc);
  const auto at = text.find("\"version\": 1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 12, "\"version\": 9");
  EXPECT_THROW(farm_spec_from_json(io::parse_json(text)), InvalidArgument);

  io::JsonValue extra = farm_spec_to_json(spec);
  extra.set("surprise", io::JsonValue::number(std::uint64_t{1}));
  EXPECT_THROW(farm_spec_from_json(extra), InvalidArgument);
}

TEST(FarmStateJson, RoundTripsAndValidates) {
  FarmState state;
  state.plan_digest = 0x0123456789abcdefull;
  state.shards.resize(2);
  state.shards[0].index = 0;
  state.shards[0].status = ShardStatus::kDone;
  state.shards[0].attempts = 2;
  state.shards[0].last_outcome = "ok";
  state.shards[0].wall_s = 1.5;
  state.shards[0].trials = 42;
  state.shards[0].points = 3;
  state.shards[1].index = 1;
  state.shards[1].status = ShardStatus::kFailed;
  state.shards[1].last_outcome = "signal 9";
  EXPECT_EQ(farm_state_from_json(farm_state_to_json(state)), state);

  // Out-of-order / missing shard entries fail loudly.
  FarmState shuffled = state;
  std::swap(shuffled.shards[0], shuffled.shards[1]);
  EXPECT_THROW(farm_state_from_json(farm_state_to_json(shuffled)), InvalidArgument);

  io::JsonValue tampered = farm_state_to_json(state);
  tampered.set("bonus", io::JsonValue::number(std::uint64_t{1}));
  EXPECT_THROW(farm_state_from_json(tampered), InvalidArgument);
}

TEST_F(FarmTest, TruncatedStateJsonFailsLoadLoudly) {
  FarmState state;
  state.plan_digest = 1;
  state.shards.resize(1);
  save_farm_state(state, path("state.json"));
  const std::string full = slurp(path("state.json"));
  spit(path("state.json"), full.substr(0, full.size() / 2));
  EXPECT_THROW(load_farm_state(path("state.json")), InvalidArgument);
}

// ------------------------------------------------------------- verify ----

io::ResultDoc sample_doc() {
  io::ResultDoc doc;
  doc.scenario = "toy";
  doc.seed = 7;
  doc.stop.min_errors = 4;
  doc.stop.max_bits = 1000;
  doc.stop.max_trials = 10;
  const char* bers[] = {"0.1", "0.02", "0.004"};
  for (std::uint64_t i = 0; i < 3; ++i) {
    io::ResultPoint point;
    point.index = i;
    point.label = "p" + std::to_string(i);
    point.tags = {{"channel", "CM1"}, {"ebn0_db", std::to_string(4 * i)}};
    point.ber = bers[i];
    point.ci95 = "0.001";
    point.errors = 10;
    point.bits = 1000;
    point.trials = 5;
    doc.points.push_back(std::move(point));
  }
  return doc;
}

io::JsonValue expectations(const std::string& checks_json) {
  return io::parse_json("{\"version\": 1, \"scenario\": \"toy\", \"points\": 3, "
                        "\"checks\": " + checks_json + "}");
}

TEST(Verify, PassesRangeMonotoneAndAccounting) {
  const VerifyReport report = verify_result(
      sample_doc(),
      expectations("[{\"check\": \"range\", \"metric\": \"ber\", \"min\": 0, "
                   "\"max\": 0.5},"
                   "{\"check\": \"monotone\", \"metric\": \"ber\", \"axis\": "
                   "\"ebn0_db\", \"direction\": \"nonincreasing\"},"
                   "{\"check\": \"accounting\"}]"));
  EXPECT_TRUE(report.ok()) << (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_EQ(report.checks, 5u);  // scenario + points + 3 checks
}

TEST(Verify, CatchesViolations) {
  // BER rising with SNR: the physics claim the farm exists to defend.
  io::ResultDoc doc = sample_doc();
  doc.points[2].ber = "0.5";
  const VerifyReport monotone = verify_result(
      doc, expectations("[{\"check\": \"monotone\", \"metric\": \"ber\", \"axis\": "
                        "\"ebn0_db\", \"direction\": \"nonincreasing\"}]"));
  EXPECT_FALSE(monotone.ok());

  const VerifyReport range = verify_result(
      sample_doc(), expectations("[{\"check\": \"range\", \"metric\": \"ber\", "
                                 "\"min\": 0.9}]"));
  EXPECT_EQ(range.failures.size(), 3u);

  io::ResultDoc bad_accounting = sample_doc();
  bad_accounting.points[1].errors = 2000;  // more errors than bits
  const VerifyReport accounting = verify_result(
      bad_accounting, expectations("[{\"check\": \"accounting\"}]"));
  EXPECT_FALSE(accounting.ok());
}

TEST(Verify, CiContainsChecksIntervalsAgainstValueOrOwnBer) {
  io::ResultDoc doc = sample_doc();
  for (io::ResultPoint& point : doc.points) {
    point.ci_lo = "0.001";
    point.ci_hi = "0.2";
    point.ci_method = "clopper_pearson";
  }
  // Every point's interval brackets its own estimate...
  EXPECT_TRUE(verify_result(doc, expectations("[{\"check\": \"ci_contains\"}]")).ok());
  // ...and a fixed value can be asserted inside filtered intervals.
  EXPECT_TRUE(verify_result(doc, expectations("[{\"check\": \"ci_contains\", "
                                              "\"value\": 0.05, \"where\": "
                                              "{\"channel\": \"CM1\"}}]"))
                  .ok());
  EXPECT_FALSE(
      verify_result(doc, expectations("[{\"check\": \"ci_contains\", "
                                      "\"value\": 0.9}]"))
          .ok());

  // An estimate outside its own interval is a broken estimator, caught.
  doc.points[0].ber = "0.5";
  EXPECT_FALSE(verify_result(doc, expectations("[{\"check\": \"ci_contains\"}]")).ok());

  // Points without two-sided intervals (pre-CI documents) fail, not pass.
  io::ResultDoc old_doc = sample_doc();
  EXPECT_FALSE(
      verify_result(old_doc, expectations("[{\"check\": \"ci_contains\"}]")).ok());
}

TEST(Verify, EmptySelectionAndMalformedExpectationsFailLoudly) {
  // A filter matching nothing is a stale expectation, not a pass.
  const VerifyReport empty = verify_result(
      sample_doc(),
      expectations("[{\"check\": \"range\", \"metric\": \"ber\", \"max\": 1, "
                   "\"where\": {\"channel\": \"CM9\"}}]"));
  EXPECT_FALSE(empty.ok());

  EXPECT_THROW(verify_result(sample_doc(),
                             io::parse_json("{\"version\": 1, \"nonsense\": 1}")),
               InvalidArgument);
  EXPECT_THROW(verify_result(sample_doc(), io::parse_json("{\"version\": 2}")),
               InvalidArgument);
  EXPECT_THROW(
      verify_result(sample_doc(),
                    expectations("[{\"check\": \"range\", \"metric\": \"ber\"}]")),
      InvalidArgument);  // neither min nor max
  EXPECT_THROW(verify_result(sample_doc(),
                             expectations("[{\"check\": \"vibes\"}]")),
               InvalidArgument);
}

// ----------------------------------------------- checkpoint store (e2e) ----

engine::ScenarioSpec tiny_scenario() {
  engine::ScenarioSpec scenario = engine::ScenarioRegistry::global().make("gen2_cm_grid");
  engine::restrict_scenario(scenario, "channel", "CM1");
  return scenario;
}

FarmSpec tiny_spec(std::size_t shards) {
  FarmSpec spec;
  spec.scenario = "gen2_cm_grid";
  spec.stop.min_errors = 1;
  spec.stop.max_bits = 150;
  spec.stop.max_trials = 4;
  spec.shard_count = shards;
  spec.retry.backoff_base_s = 0.05;
  spec.retry.backoff_max_s = 0.1;
  return spec;
}

TEST_F(FarmTest, InitRefusesToClobberAndLoadRunPinsThePlan) {
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(2);
  init_run(tiny_scenario(), spec, paths);
  EXPECT_EQ(spec.num_points, 6u);

  FarmSpec again = tiny_spec(2);
  EXPECT_THROW(init_run(tiny_scenario(), again, paths), InvalidArgument);

  // Swapping the plan under the checkpoint fails the digest pin.
  const LoadedRun run = load_run(paths);
  EXPECT_EQ(run.spec, spec);
  std::string plan = slurp(paths.scenario_json());
  plan.push_back('\n');
  spit(paths.scenario_json(), plan);
  EXPECT_THROW(load_run(paths), InvalidArgument);
}

TEST_F(FarmTest, RunShardsProducesByteIdenticalMergeAndSurvivesResume) {
  // Reference: the worker itself, unsharded, same (plan, seed, stop).
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(2);
  init_run(tiny_scenario(), spec, paths);

  const std::string ref = path("ref.json");
  {
    const std::string cmd = std::string(UWB_SWEEP_BINARY) + " --file " +
                            paths.scenario_json() + " --seed " +
                            std::to_string(spec.seed) +
                            " --min-errors 1 --max-bits 150 --max-trials 4 --quiet"
                            " --out " + ref + " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  FarmState state = load_farm_state(paths.state_json());
  LocalExecTransport transport;
  const FarmRunReport report =
      run_shards(spec, state, paths, transport, UWB_SWEEP_BINARY, 0, /*quiet=*/true);
  ASSERT_TRUE(report.complete());

  merge_run(spec, state, paths, path("merged.json"));
  EXPECT_EQ(slurp(path("merged.json")), slurp(ref));

  // Resume of a complete run is a no-op that still merges identically.
  LoadedRun resumed = load_run(paths);
  const FarmRunReport again = run_shards(resumed.spec, resumed.state, paths, transport,
                                         UWB_SWEEP_BINARY, 0, /*quiet=*/true);
  EXPECT_TRUE(again.complete());
  merge_run(resumed.spec, resumed.state, paths, path("merged2.json"));
  EXPECT_EQ(slurp(path("merged2.json")), slurp(ref));
}

TEST_F(FarmTest, KilledWorkerIsRetriedAndResultStaysExact) {
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(2);
  init_run(tiny_scenario(), spec, paths);
  FarmState state = load_farm_state(paths.state_json());

  // SIGKILL shard 1's first attempt through the fault hook; the retry
  // (fault spent) must recover and the merge must still be byte-exact.
  ::setenv(kFaultEnv, "crash:shard1@1", 1);
  ::setenv(kFaultDirEnv, path("markers").c_str(), 1);
  fs::create_directories(path("markers"));
  LocalExecTransport transport;
  const FarmRunReport report =
      run_shards(spec, state, paths, transport, UWB_SWEEP_BINARY, 0, /*quiet=*/true);
  ::unsetenv(kFaultEnv);
  ::unsetenv(kFaultDirEnv);

  ASSERT_TRUE(report.complete());
  EXPECT_EQ(state.shards[1].attempts, 2u);
  EXPECT_EQ(state.shards[1].last_outcome, "ok");

  const std::string ref = path("ref.json");
  const std::string cmd = std::string(UWB_SWEEP_BINARY) + " --file " +
                          paths.scenario_json() + " --seed " +
                          std::to_string(spec.seed) +
                          " --min-errors 1 --max-bits 150 --max-trials 4 --quiet"
                          " --out " + ref + " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  merge_run(spec, state, paths, path("merged.json"));
  EXPECT_EQ(slurp(path("merged.json")), slurp(ref));
}

TEST_F(FarmTest, HangingWorkerHitsTimeoutAndCorruptClaimIsRejected) {
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(2);
  spec.retry.max_attempts = 1;
  spec.retry.timeout_s = 2.0;
  init_run(tiny_scenario(), spec, paths);
  FarmState state = load_farm_state(paths.state_json());

  ::setenv(kFaultEnv, "hang:shard0", 1);
  LocalExecTransport transport;
  FarmRunReport report =
      run_shards(spec, state, paths, transport, UWB_SWEEP_BINARY, 0, /*quiet=*/true);
  ::unsetenv(kFaultEnv);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(state.shards[0].status, ShardStatus::kFailed);
  EXPECT_EQ(state.shards[0].last_outcome, "timeout");

  // A worker that exits 0 with a corrupt result must not count as done.
  ::setenv(kFaultEnv, "corrupt:shard0", 1);
  LoadedRun resumed = load_run(paths);
  resumed.spec.retry.max_attempts = 1;
  report = run_shards(resumed.spec, resumed.state, paths, transport, UWB_SWEEP_BINARY,
                      0, /*quiet=*/true);
  ::unsetenv(kFaultEnv);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(resumed.state.shards[0].status, ShardStatus::kFailed);
  EXPECT_NE(resumed.state.shards[0].last_outcome.find("invalid result"),
            std::string::npos);

  // Partial merge (degraded mode) carries shard 1's points only.
  merge_run(resumed.spec, resumed.state, paths, path("partial.json"),
            /*allow_partial=*/true);
  const io::ResultDoc partial = io::parse_result_json(slurp(path("partial.json")));
  ASSERT_EQ(partial.points.size(), 3u);
  for (const io::ResultPoint& point : partial.points) {
    EXPECT_EQ(point.index % 2, 1u);
  }
  // ...and the complete merge refuses.
  EXPECT_THROW(merge_run(resumed.spec, resumed.state, paths, path("full.json")),
               InvalidArgument);
}

TEST_F(FarmTest, TamperedDoneShardFailsResumeLoudly) {
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(2);
  init_run(tiny_scenario(), spec, paths);
  FarmState state = load_farm_state(paths.state_json());
  LocalExecTransport transport;
  ASSERT_TRUE(run_shards(spec, state, paths, transport, UWB_SWEEP_BINARY, 0, true)
                  .complete());

  // Flip one byte inside shard 0's checkpointed result.
  std::string doc = slurp(paths.shard_result(0));
  const auto pos = doc.find("\"trials\": ");
  ASSERT_NE(pos, std::string::npos);
  doc[pos + 10] = doc[pos + 10] == '9' ? '8' : '9';
  spit(paths.shard_result(0), doc);
  EXPECT_THROW(load_run(paths), InvalidArgument);

  // Deleting it entirely is just as loud.
  fs::remove(paths.shard_result(0));
  EXPECT_THROW(load_run(paths), InvalidArgument);
}

TEST_F(FarmTest, CheckpointVersionMismatchFailsResumeLoudly) {
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(2);
  init_run(tiny_scenario(), spec, paths);

  std::string farm_json = slurp(paths.farm_json());
  const auto at = farm_json.find("\"version\": 1");
  ASSERT_NE(at, std::string::npos);
  farm_json.replace(at, 12, "\"version\": 2");
  spit(paths.farm_json(), farm_json);
  try {
    (void)load_run(paths);
    FAIL() << "version mismatch did not throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

// -------------------------------------------------- worker CLI contract ----

int run_cli(const std::string& cmd) {
  const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST_F(FarmTest, WorkerExitCodeContract) {
  const std::string sweep(UWB_SWEEP_BINARY);
  EXPECT_EQ(run_cli(sweep + " --definitely-not-a-flag"), kExitBadArgs);
  EXPECT_EQ(run_cli(sweep + " --shard 2/2"), kExitBadArgs);
  EXPECT_EQ(run_cli(sweep + " --file " + path("missing.json") + " --out " +
                    path("out.json")),
            kExitSpecLoad);
  spit(path("broken.json"), "{\"name\": ");
  EXPECT_EQ(run_cli(sweep + " --file " + path("broken.json") + " --out " +
                    path("out.json")),
            kExitSpecLoad);
}

TEST_F(FarmTest, SigtermFlushesValidPartialDocAndInterruptedManifest) {
  // Full-budget sweep (minutes of work) killed almost immediately: the
  // worker must exit kExitInterrupted with a parseable result document
  // holding a completed-point prefix, and its manifest must say so.
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(1);
  init_run(tiny_scenario(), spec, paths);
  const std::string out = path("partial.json");
  const std::string cmd = std::string(UWB_SWEEP_BINARY) + " --file " +
                          paths.scenario_json() + " --quiet --out " + out +
                          " >/dev/null 2>&1 & pid=$!; sleep 0.5;"
                          " kill -TERM $pid; wait $pid";
  const int status = std::system(("sh -c '" + cmd + "'").c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), kExitInterrupted);

  const io::ResultDoc partial = io::parse_result_json(slurp(out));
  EXPECT_EQ(partial.scenario, "gen2_cm_grid");
  EXPECT_LT(partial.points.size(), 6u);  // prefix, not a full run
  for (std::size_t i = 0; i < partial.points.size(); ++i) {
    EXPECT_EQ(partial.points[i].index, i);  // exact completed-point prefix
  }
  const io::JsonValue manifest = io::parse_json(slurp(out + ".run.json"));
  const io::JsonValue* interrupted = manifest.find("interrupted");
  ASSERT_NE(interrupted, nullptr);
  EXPECT_TRUE(interrupted->as_bool());
}

TEST_F(FarmTest, MergeCliRejectsGapsUnlessAllowPartial) {
  // Build two shard docs by really running shards 0 and 2 of 3.
  const RunPaths paths{path("run")};
  FarmSpec spec = tiny_spec(3);
  init_run(tiny_scenario(), spec, paths);
  const std::string sweep(UWB_SWEEP_BINARY);
  const std::string base = sweep + " --file " + paths.scenario_json() +
                           " --min-errors 1 --max-bits 150 --max-trials 4 --quiet ";
  ASSERT_EQ(run_cli(base + "--shard 0/3 --out " + path("s0.json")), 0);
  ASSERT_EQ(run_cli(base + "--shard 2/3 --out " + path("s2.json")), 0);

  // shard 1 missing: loud failure without --allow-partial.
  EXPECT_NE(run_cli(sweep + " --merge " + path("s0.json") + " " + path("s2.json") +
                    " --out " + path("m.json")),
            0);
  EXPECT_EQ(run_cli(sweep + " --merge " + path("s0.json") + " " + path("s2.json") +
                    " --allow-partial --out " + path("m.json")),
            0);
  // Duplicates stay fatal even under --allow-partial.
  EXPECT_NE(run_cli(sweep + " --merge " + path("s0.json") + " " + path("s0.json") +
                    " --allow-partial --out " + path("m2.json")),
            0);
}

}  // namespace
}  // namespace uwb::farm
