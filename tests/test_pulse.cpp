// Tests for pulse shapes, the 14-channel band plan, pulse trains and the
// FCC mask machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "dsp/power_spectrum.h"
#include "pulse/band_plan.h"
#include "pulse/pulse_shape.h"
#include "pulse/pulse_train.h"
#include "pulse/spectral_mask.h"

namespace uwb::pulse {
namespace {

// --------------------------------------------------------------- shapes ----

TEST(PulseShape, GaussianPeakAndSymmetry) {
  const RealWaveform p = gaussian_pulse(0.5e-9, 20e9);
  EXPECT_NEAR(peak_abs(p.samples()), 1.0, 1e-12);
  const std::size_t n = p.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(p[i], p[n - 1 - i], 1e-9);
  }
}

TEST(PulseShape, MonocycleIsOddAndZeroMean) {
  const RealWaveform p = gaussian_monocycle(0.5e-9, 20e9);
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += p[i];
  EXPECT_NEAR(sum / p.size(), 0.0, 1e-6);  // no DC -- it must radiate
  // Odd symmetry about the center.
  const std::size_t n = p.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(p[i], -p[n - 1 - i], 1e-9);
  }
}

TEST(PulseShape, DoubletHasZeroMeanToo) {
  const RealWaveform p = gaussian_doublet(0.5e-9, 20e9);
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += p[i];
  EXPECT_NEAR(sum / p.size(), 0.0, 1e-4);
}

TEST(PulseShape, GaussianBandwidthMapping) {
  // Build a Gaussian for 500 MHz and verify the -10 dB bandwidth via PSD.
  const double fs = 8e9;
  PulseSpec spec;
  spec.shape = PulseShape::kGaussian;
  spec.bandwidth_hz = 500e6;
  spec.sample_rate_hz = fs;
  RealWaveform p = make_pulse(spec);
  // Random-polarity train: continuous spectrum shaped by |P(f)|^2.
  Rng rng(21);
  RealWaveform train(16384, fs);
  for (std::size_t start = 0; start + p.size() < train.size(); start += 512) {
    RealWaveform copy = p;
    copy.scale(rng.sign());
    train.add(copy, start);
  }
  const dsp::Psd psd = dsp::welch_psd(train, 2048);
  // The baseband Gaussian is centered at DC; the one-sided PSD shows the
  // upper half of the two-sided 500 MHz target.
  const double bw = dsp::bandwidth_at_level(psd, -10.0);
  EXPECT_NEAR(bw, 250e6, 100e6);
}

TEST(PulseShape, RrcPulse500MHz) {
  const RealWaveform p = rrc_pulse(500e6, 0.5, 4, 4e9);
  EXPECT_NEAR(peak_abs(p.samples()), 1.0, 1e-12);
  // Duration at the 1% level should be a handful of ns for a 500 MHz pulse.
  const double dur = pulse_duration(p, 0.01);
  EXPECT_GT(dur, 2e-9);
  EXPECT_LT(dur, 30e-9);
}

TEST(PulseShape, Duration) {
  const RealWaveform rect = rectangular_pulse(2e-9, 4e9);
  EXPECT_EQ(rect.size(), 8u);
  EXPECT_NEAR(pulse_duration(rect, 0.5), 7.0 / 4e9, 1e-12);
}

TEST(PulseShape, RejectsBadArguments) {
  EXPECT_THROW(gaussian_pulse(-1.0, 1e9), InvalidArgument);
  EXPECT_THROW(rrc_pulse(500e6, 0.5, 4, 600e6), InvalidArgument);  // fs too low
  EXPECT_THROW(pulse_duration(gaussian_pulse(1e-9, 1e10), 1.5), InvalidArgument);
}

// ------------------------------------------------------------- band plan ----

TEST(BandPlan, FourteenChannelsInsideFcc) {
  const BandPlan plan;
  EXPECT_EQ(plan.num_channels(), 14u);
  EXPECT_TRUE(plan.within_fcc_band());
  EXPECT_NEAR(plan.channel(0).low_hz, fcc_band_low_hz, 1.0);
  EXPECT_NEAR(plan.channel(13).high_hz, fcc_band_high_hz, 1.0);
}

TEST(BandPlan, ChannelsAreOrderedAndUniform) {
  const BandPlan plan;
  const double spacing =
      plan.channel(1).center_hz - plan.channel(0).center_hz;
  for (int i = 1; i < 14; ++i) {
    EXPECT_GT(plan.channel(i).center_hz, plan.channel(i - 1).center_hz);
    EXPECT_NEAR(plan.channel(i).center_hz - plan.channel(i - 1).center_hz, spacing, 1.0);
  }
  EXPECT_NEAR(plan.channel_bandwidth(), 500e6, 1.0);
}

TEST(BandPlan, Fig4ChannelNearFiveGHz) {
  // Fig. 4 shows a 500 MHz pulse on a 5 GHz carrier; the plan must have a
  // channel close to that.
  const BandPlan plan;
  const int ch = plan.nearest_channel(5e9);
  EXPECT_NEAR(plan.center_frequency(ch), 5e9, 300e6);
}

TEST(BandPlan, FrequencyLookup) {
  const BandPlan plan;
  EXPECT_EQ(plan.channel_of_frequency(plan.channel(7).center_hz), 7);
  EXPECT_EQ(plan.channel_of_frequency(1e9), -1);
  EXPECT_THROW(plan.channel(14), InvalidArgument);
  EXPECT_THROW(plan.channel(-1), InvalidArgument);
}

// ----------------------------------------------------------- pulse train ----

TEST(PulseTrain, FrameSpacing) {
  PulseTrainSpec spec;
  spec.prf_hz = 100e6;
  spec.sample_rate_hz = 2e9;
  EXPECT_EQ(samples_per_frame(spec), 20u);
  spec.prf_hz = 3e8;  // does not divide 2 GHz
  EXPECT_THROW(samples_per_frame(spec), InvalidArgument);
}

TEST(PulseTrain, PlacesPulsesAtFrames) {
  const double fs = 2e9;
  RealWaveform proto(RealVec{1.0}, fs);  // single-sample "pulse"
  std::vector<PulseSlot> slots = {{1.0, 0.0}, {-1.0, 0.0}, {0.5, 0.0}};
  PulseTrainSpec spec;
  spec.prf_hz = 100e6;
  spec.sample_rate_hz = fs;
  const RealWaveform train = build_train(proto, slots, spec);
  EXPECT_DOUBLE_EQ(train[0], 1.0);
  EXPECT_DOUBLE_EQ(train[20], -1.0);
  EXPECT_DOUBLE_EQ(train[40], 0.5);
  EXPECT_DOUBLE_EQ(train[1], 0.0);
}

TEST(PulseTrain, PpmOffsetsShiftPulses) {
  const double fs = 2e9;
  RealWaveform proto(RealVec{1.0}, fs);
  // 5 ns PPM offset = 10 samples.
  std::vector<PulseSlot> slots = {{1.0, 5e-9}};
  PulseTrainSpec spec;
  spec.prf_hz = 100e6;
  spec.sample_rate_hz = fs;
  const RealWaveform train = build_train(proto, slots, spec);
  EXPECT_DOUBLE_EQ(train[10], 1.0);
  EXPECT_DOUBLE_EQ(train[0], 0.0);
}

TEST(PulseTrain, SpreadingRepeatsPerBit) {
  const std::vector<double> spread = {1.0, -1.0, -1.0};
  const auto slots = slots_from_weights({1.0, -1.0}, {}, 3, spread);
  ASSERT_EQ(slots.size(), 6u);
  // Bit 0: +1 * chips; bit 1: -1 * chips.
  EXPECT_DOUBLE_EQ(slots[0].amplitude, 1.0);
  EXPECT_DOUBLE_EQ(slots[1].amplitude, -1.0);
  EXPECT_DOUBLE_EQ(slots[2].amplitude, -1.0);
  EXPECT_DOUBLE_EQ(slots[3].amplitude, -1.0);
  EXPECT_DOUBLE_EQ(slots[4].amplitude, 1.0);
  EXPECT_DOUBLE_EQ(slots[5].amplitude, 1.0);
}

// ------------------------------------------------------------- FCC mask ----

TEST(SpectralMask, SegmentsAndLookup) {
  const auto mask = fcc_indoor_mask();
  EXPECT_NEAR(mask_limit_at(mask, 5e9), -41.3, 1e-9);
  EXPECT_NEAR(mask_limit_at(mask, 1.2e9), -75.3, 1e-9);  // GPS band is strictest
  EXPECT_NEAR(mask_limit_at(mask, 2.5e9), -51.3, 1e-9);
  EXPECT_NEAR(mask_limit_at(mask, 12e9), -51.3, 1e-9);
}

TEST(SpectralMask, CompliantInBandSignalPasses) {
  // A weak in-band tone at 5 GHz: far below -41.3 dBm/MHz everywhere.
  const double fs = 40e9;
  RealVec x(1 << 15);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1e-6 * std::cos(two_pi * 5e9 * static_cast<double>(i) / fs);
  }
  const dsp::Psd psd = dsp::welch_psd(RealWaveform(x, fs), 4096);
  const MaskReport report = check_mask(psd, fcc_indoor_mask());
  EXPECT_TRUE(report.compliant);
  EXPECT_GT(report.worst_margin_db, 0.0);
}

TEST(SpectralMask, StrongSignalViolatesAndScalesBack) {
  const double fs = 40e9;
  RealVec x(1 << 15);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 10.0 * std::cos(two_pi * 5e9 * static_cast<double>(i) / fs);
  }
  const dsp::Psd psd = dsp::welch_psd(RealWaveform(x, fs), 4096);
  const MaskReport report = check_mask(psd, fcc_indoor_mask());
  EXPECT_FALSE(report.compliant);
  const double scale = max_power_scale(psd, fcc_indoor_mask());
  EXPECT_LT(scale, 1.0);
  EXPECT_GT(scale, 0.0);
  // After scaling, the worst margin is ~0 by construction.
  dsp::Psd scaled = psd;
  for (auto& d : scaled.density_w_per_hz) d *= scale;
  EXPECT_NEAR(check_mask(scaled, fcc_indoor_mask()).worst_margin_db, 0.0, 0.01);
}

}  // namespace
}  // namespace uwb::pulse
