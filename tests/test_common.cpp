// Tests for the foundation library: math utilities, RNG, Waveform.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "common/waveform.h"

namespace uwb {
namespace {

// ---------------------------------------------------------------- math ----

TEST(MathUtils, DbRoundTrip) {
  EXPECT_NEAR(from_db(to_db(3.7)), 3.7, 1e-12);
  EXPECT_NEAR(to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_amp(20.0), 10.0, 1e-12);
  EXPECT_NEAR(amp_to_db(db_to_amp(-7.3)), -7.3, 1e-12);
}

TEST(MathUtils, DbmConversions) {
  EXPECT_NEAR(watts_to_dbm(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(-30.0), 1e-6, 1e-18);
}

TEST(MathUtils, QFunctionKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(q_function(3.0), 1.349898e-3, 1e-7);
  // Symmetry: Q(-x) = 1 - Q(x).
  EXPECT_NEAR(q_function(-1.5) + q_function(1.5), 1.0, 1e-12);
}

TEST(MathUtils, QFunctionInverseRoundTrip) {
  for (double p : {0.4, 0.1, 1e-2, 1e-4, 1e-6}) {
    EXPECT_NEAR(q_function(q_function_inv(p)), p, p * 1e-6) << "p=" << p;
  }
}

TEST(MathUtils, BpskTheoreticalBer) {
  // Eb/N0 = 9.6 dB gives BER ~ 1e-5 for BPSK (textbook anchor point).
  EXPECT_NEAR(bpsk_awgn_ber(from_db(9.6)), 1e-5, 3e-6);
  // PPM/orthogonal needs 3 dB more for the same BER.
  EXPECT_NEAR(ppm_awgn_ber(from_db(12.6)), 1e-5, 3e-6);
}

TEST(MathUtils, Sinc) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / pi, 1e-12);
}

TEST(MathUtils, PowerAndEnergy) {
  RealVec x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(energy(x), 25.0);
  EXPECT_DOUBLE_EQ(mean_power(x), 12.5);
  EXPECT_DOUBLE_EQ(peak_abs(x), 4.0);

  CplxVec z = {{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(energy(z), 25.0);
  EXPECT_DOUBLE_EQ(peak_abs(z), 5.0);
}

TEST(MathUtils, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(MathUtils, WrapPhase) {
  EXPECT_NEAR(wrap_phase(3.0 * pi), pi, 1e-12);
  EXPECT_NEAR(wrap_phase(-3.0 * pi), pi, 1e-12);  // (-pi, pi] convention
  EXPECT_NEAR(wrap_phase(0.5), 0.5, 1e-12);
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
  }
}

TEST(Rng, ForkIndependentOfParentDraws) {
  Rng a(7);
  Rng b(7);
  (void)a.gaussian();  // parent advances...
  Rng child_a = a.fork(1);
  Rng child_b = b.fork(1);  // ...but children only depend on (seed, salt)
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child_a.uniform(), child_b.uniform());
  }
}

TEST(Rng, ForkSaltsDiffer) {
  Rng a(7);
  EXPECT_NE(a.fork(1).gaussian(), a.fork(2).gaussian());
}

TEST(Rng, GaussianMoments) {
  Rng rng(123);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(5);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += std::norm(rng.cgaussian(2.0));
  EXPECT_NEAR(acc / n, 2.0, 0.05);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(Rng, BitsAreBinaryAndBalanced) {
  Rng rng(11);
  const BitVec bits = rng.bits(10000);
  std::size_t ones = 0;
  for (auto b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_NEAR(static_cast<double>(ones) / bits.size(), 0.5, 0.03);
}

// ------------------------------------------------------------- waveform ----

TEST(Waveform, ConstructionAndDuration) {
  RealWaveform w(1000, 2e9);
  EXPECT_EQ(w.size(), 1000u);
  EXPECT_DOUBLE_EQ(w.sample_rate(), 2e9);
  EXPECT_DOUBLE_EQ(w.duration(), 500e-9);
  EXPECT_DOUBLE_EQ(w.time_of(2), 1e-9);
}

TEST(Waveform, RejectsBadSampleRate) {
  EXPECT_THROW(RealWaveform(10, 0.0), InvalidArgument);
  EXPECT_THROW(RealWaveform(10, -1.0), InvalidArgument);
}

TEST(Waveform, NormalizePower) {
  RealWaveform w({1.0, 2.0, 3.0, 4.0}, 1.0);
  w.normalize_power(2.0);
  EXPECT_NEAR(w.power(), 2.0, 1e-12);
}

TEST(Waveform, AddWithOffsetGrows) {
  RealWaveform a({1.0, 1.0}, 1.0);
  const RealWaveform b({2.0, 2.0}, 1.0);
  a.add(b, 3);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  EXPECT_DOUBLE_EQ(a[3], 2.0);
}

TEST(Waveform, AddRejectsRateMismatch) {
  RealWaveform a(4, 1.0);
  const RealWaveform b(4, 2.0);
  EXPECT_THROW(a.add(b), InvalidArgument);
}

TEST(Waveform, SliceAndDelay) {
  RealWaveform w({1, 2, 3, 4, 5}, 1.0);
  const RealWaveform s = w.slice(1, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_THROW(w.slice(3, 5), InvalidArgument);

  w.delay_samples(2);
  ASSERT_EQ(w.size(), 7u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
}

TEST(Waveform, IqRoundTrip) {
  CplxWaveform w({{1.0, -2.0}, {3.0, 4.0}}, 10.0);
  auto [i_rail, q_rail] = to_iq(w);
  const CplxWaveform back = from_iq(i_rail, q_rail);
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    EXPECT_DOUBLE_EQ(back[k].real(), w[k].real());
    EXPECT_DOUBLE_EQ(back[k].imag(), w[k].imag());
  }
}

TEST(Waveform, FromIqRejectsMismatch) {
  const RealWaveform i_rail(4, 1.0);
  const RealWaveform q_short(3, 1.0);
  EXPECT_THROW(from_iq(i_rail, q_short), InvalidArgument);
}

}  // namespace
}  // namespace uwb
