// Tests for the RF behavioral models: LNA, mixers, synthesizer, notch,
// AGC, cascaded front end.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "dsp/nco.h"
#include "dsp/power_spectrum.h"
#include "rf/agc.h"
#include "rf/front_end.h"
#include "rf/lna.h"
#include "rf/mixer.h"
#include "rf/notch_filter.h"
#include "rf/synthesizer.h"

namespace uwb::rf {
namespace {

// ------------------------------------------------------------------ lna ----

TEST(Lna, SmallSignalGain) {
  LnaParams params;
  params.gain_db = 15.0;
  params.noise_figure_db = 0.0;  // noiseless for this check
  const Lna lna(params);
  Rng rng(1);
  RealWaveform x(RealVec(1000, 1e-4), 1e9);  // far below compression
  lna.process(x, 0.0, rng);
  EXPECT_NEAR(amp_to_db(x[500] / 1e-4), 15.0, 0.05);
}

TEST(Lna, CompressesSignalPeaksAboveHeadroom) {
  LnaParams params;
  params.gain_db = 20.0;
  params.noise_figure_db = 0.0;
  params.headroom_db = 20.0;
  const Lna lna(params);
  Rng rng(2);
  // Mostly unit samples plus outliers far above the headroom: the outliers
  // must be soft-limited near the saturation level while the unit samples
  // stay essentially linear.
  RealVec samples(1000, 1.0);
  for (std::size_t i = 0; i < 10; ++i) samples[i * 100] = 1000.0;
  RealWaveform x(samples, 1e9);
  const double rms = std::sqrt(mean_power(samples));
  const double sat = lna.saturation_amplitude(rms);
  lna.process(x, 0.0, rng);
  EXPECT_LT(x[0], sat * lna.gain_linear() * 1.01);          // outlier clamped
  EXPECT_NEAR(x[1], 1.0 * lna.gain_linear(), 0.05 * lna.gain_linear());  // linear
}

TEST(Lna, ExcessNoiseMatchesNoiseFigure) {
  LnaParams params;
  params.gain_db = 0.0;  // unit gain isolates the added noise
  params.noise_figure_db = 3.0102;  // F = 2 -> adds as much noise as present
  const Lna lna(params);
  Rng rng(3);
  CplxWaveform x(CplxVec(200000, cplx{}), 1e9);
  // Reference noise small enough to stay in the linear region of the
  // compression model: expect (F-1) * N_in added to silence.
  const double n_in = 1e-6;
  lna.process(x, n_in, rng);
  EXPECT_NEAR(x.power(), n_in, 0.05 * n_in);
}

// ---------------------------------------------------------------- mixer ----

TEST(Mixer, UpDownRoundTrip) {
  // Upconvert a smooth complex baseband, downconvert, compare (transient
  // edges excluded).
  const double fs = 20e9;
  const double fc = 4e9;
  const std::size_t n = 4096;
  CplxVec bb(n);
  for (std::size_t i = 0; i < n; ++i) {
    bb[i] = std::polar(1.0, two_pi * 50e6 * static_cast<double>(i) / fs);
  }
  const Upconverter up(fc, fs);
  const Downconverter down(fc, 500e6, fs);
  const CplxWaveform back = down.process(up.process(CplxWaveform(bb, fs)));
  double max_err = 0.0;
  for (std::size_t i = 200; i < n - 200; ++i) {
    max_err = std::max(max_err, std::abs(back[i] - bb[i]));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(Mixer, ImageRejectionDependsOnImbalance) {
  IqImpairments ideal;
  EXPECT_GT(image_rejection_ratio_db(ideal), 100.0);
  IqImpairments imbalanced;
  imbalanced.gain_imbalance_db = 0.5;
  imbalanced.phase_imbalance_rad = 0.05;
  const double irr = image_rejection_ratio_db(imbalanced);
  EXPECT_GT(irr, 20.0);
  EXPECT_LT(irr, 40.0);
}

TEST(Mixer, BasebandImpairmentsCreateImage) {
  // A positive-frequency tone through an imbalanced chain leaks power at
  // the mirror frequency.
  const double fs = 1e9;
  CplxVec x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::polar(1.0, two_pi * 100e6 * static_cast<double>(i) / fs);
  }
  IqImpairments imp;
  imp.gain_imbalance_db = 1.0;
  imp.phase_imbalance_rad = 0.1;
  const CplxWaveform y = apply_iq_impairments(CplxWaveform(x, fs), imp);
  const dsp::Psd psd = dsp::welch_psd(y, 1024);
  const double signal = psd.density_w_per_hz[psd.bin_of(100e6)];
  const double image = psd.density_w_per_hz[psd.bin_of(-100e6)];
  const double measured_irr = to_db(signal / image);
  EXPECT_NEAR(measured_irr, image_rejection_ratio_db(imp), 2.0);
}

TEST(Mixer, DcOffsetShowsAtZero) {
  const double fs = 1e9;
  IqImpairments imp;
  imp.dc_offset_i = 0.1;
  const CplxWaveform y =
      apply_iq_impairments(CplxWaveform(CplxVec(1024, cplx{}), fs), imp);
  EXPECT_NEAR(y[100].real(), 0.1, 1e-12);
}

// ------------------------------------------------------------ synthesizer ----

TEST(Synthesizer, TuneAndSettle) {
  const pulse::BandPlan plan;
  SynthesizerParams params;
  params.settle_time_s = 2e-6;
  Synthesizer synth(plan, params);
  EXPECT_EQ(synth.channel(), 0);
  EXPECT_DOUBLE_EQ(synth.tune(5), 2e-6);
  EXPECT_EQ(synth.channel(), 5);
  EXPECT_DOUBLE_EQ(synth.tune(5), 0.0);  // already there
  EXPECT_NEAR(synth.frequency(), plan.center_frequency(5), 1.0);
  EXPECT_THROW(synth.tune(14), InvalidArgument);
}

TEST(Synthesizer, PhaseNoiseRms) {
  const pulse::BandPlan plan;
  SynthesizerParams params;
  params.phase_noise_rms_rad = 0.05;
  params.loop_bandwidth_hz = 1e6;
  Synthesizer synth(plan, params);
  Rng rng(4);
  const RealVec theta = synth.phase_noise(500000, 1e9, rng);
  double acc = 0.0;
  for (double t : theta) acc += t * t;
  EXPECT_NEAR(std::sqrt(acc / theta.size()), 0.05, 0.01);
}

TEST(Synthesizer, ZeroPhaseNoiseIsTransparent) {
  const pulse::BandPlan plan;
  Synthesizer synth(plan, SynthesizerParams{});
  Rng rng(5);
  CplxVec x(100, cplx{1.0, 0.0});
  synth.apply_phase_noise(x, 1e9, rng);
  for (const auto& v : x) EXPECT_EQ(v, (cplx{1.0, 0.0}));
}

// ---------------------------------------------------------------- notch ----

TEST(ComplexNotch, KillsTargetToneOnly) {
  const double fs = 1e9;
  ComplexNotch notch(120e6, fs, 0.98);
  // Tone at the notch frequency.
  dsp::Nco jam(120e6, fs);
  dsp::Nco want(-200e6, fs);
  CplxVec mixed(20000);
  for (auto& v : mixed) v = jam.step() + want.step();
  const CplxWaveform out = notch.process(CplxWaveform(mixed, fs));
  const dsp::Psd psd = dsp::welch_psd(out, 1024);
  const double jam_level = psd.density_w_per_hz[psd.bin_of(120e6)];
  const double want_level = psd.density_w_per_hz[psd.bin_of(-200e6)];
  EXPECT_GT(to_db(want_level / std::max(jam_level, 1e-300)), 25.0);
}

TEST(ComplexNotch, ResponseAnalytic) {
  ComplexNotch notch(50e6, 1e9, 0.95);
  EXPECT_LT(std::abs(notch.response_at(50e6)), 1e-9);
  EXPECT_NEAR(std::abs(notch.response_at(-400e6)), 1.0, 0.1);
  EXPECT_GT(notch.bandwidth_3db_hz(), 1e6);
}

TEST(ComplexNotch, TuneMoves) {
  ComplexNotch notch(50e6, 1e9);
  notch.tune(-80e6);
  EXPECT_LT(std::abs(notch.response_at(-80e6)), 1e-9);
  EXPECT_THROW(notch.tune(600e6), InvalidArgument);
}

TEST(RealNotch, SuppressesBothSidebands) {
  const double fs = 2e9;
  RealNotch notch(300e6, 10.0, fs);
  RealVec x(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(two_pi * 300e6 * static_cast<double>(i) / fs);
  }
  const RealWaveform out = notch.process(RealWaveform(x, fs));
  // Post-transient power strongly reduced.
  double tail_power = 0.0;
  for (std::size_t i = 10000; i < out.size(); ++i) tail_power += out[i] * out[i];
  tail_power /= 10000.0;
  EXPECT_LT(tail_power, 0.01);
}

// ------------------------------------------------------------------ agc ----

TEST(Agc, OneShotHitsTarget) {
  AgcParams params;
  params.target_rms = 0.25;
  Agc agc(params);
  Rng rng(6);
  CplxVec x(10000);
  for (auto& v : x) v = rng.cgaussian(4.0);  // rms 2
  const CplxWaveform y = agc.one_shot(CplxWaveform(x, 1e9));
  EXPECT_NEAR(std::sqrt(y.power()), 0.25, 0.01);
  EXPECT_NEAR(agc.gain_db(), amp_to_db(0.25 / 2.0), 0.2);
}

TEST(Agc, RespectsGainLimits) {
  AgcParams params;
  params.target_rms = 0.25;
  params.max_gain_db = 10.0;
  Agc agc(params);
  CplxVec x(100, cplx{1e-6, 0.0});  // needs ~108 dB of gain
  const CplxWaveform y = agc.one_shot(CplxWaveform(x, 1e9));
  EXPECT_NEAR(agc.gain_db(), 10.0, 1e-9);
  EXPECT_LT(std::sqrt(y.power()), 0.25);
}

TEST(Agc, TrackingConverges) {
  AgcParams params;
  params.target_rms = 0.25;
  params.window = 128;
  params.step_db = 1.0;
  Agc agc(params);
  Rng rng(7);
  CplxVec x(60000);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const CplxWaveform y = agc.track(CplxWaveform(x, 1e9));
  // Final quarter of the buffer should sit near the target.
  double acc = 0.0;
  for (std::size_t i = 45000; i < 60000; ++i) acc += std::norm(y[i]);
  EXPECT_NEAR(std::sqrt(acc / 15000.0), 0.25, 0.05);
}

// ------------------------------------------------------------- front end ----

TEST(FrontEnd, FriisCascade) {
  // Textbook: 15 dB gain / 3 dB NF LNA followed by a 10 dB NF mixer:
  // F = 2 + (10 - 1)/31.6 = 2.28 -> 3.59 dB.
  const double nf = cascade_noise_figure_db({{"lna", 15.0, 3.0}, {"mixer", 0.0, 10.0}});
  EXPECT_NEAR(nf, 3.59, 0.05);
}

TEST(FrontEnd, FirstStageDominates) {
  const double good_first =
      cascade_noise_figure_db({{"lna", 20.0, 2.0}, {"vga", 10.0, 15.0}});
  const double bad_first =
      cascade_noise_figure_db({{"vga", 10.0, 15.0}, {"lna", 20.0, 2.0}});
  EXPECT_LT(good_first, bad_first - 8.0);
}

TEST(FrontEnd, BasebandPathPreservesSignalShape) {
  const pulse::BandPlan plan;
  FrontEndParams params;
  params.enable_agc = true;
  params.analog_fs = 1e9;
  FrontEnd fe(params, plan);
  Rng rng(8);
  // A clean tone should come through (scaled by AGC) without distortion.
  dsp::Nco tone(30e6, 1e9);
  CplxVec x = tone.generate(4096);
  for (auto& v : x) v *= 1e-3;
  const CplxWaveform y = fe.process_baseband(CplxWaveform(x, 1e9), 0.0, rng);
  EXPECT_NEAR(std::sqrt(y.power()), params.agc.target_rms, 0.02);
}

TEST(FrontEnd, NotchIntegration) {
  const pulse::BandPlan plan;
  FrontEndParams params;
  params.enable_agc = false;
  params.analog_fs = 1e9;
  FrontEnd fe(params, plan);
  fe.set_notch(100e6, 1e9);
  EXPECT_TRUE(fe.notch_enabled());
  Rng rng(9);
  dsp::Nco jam(100e6, 1e9);
  CplxVec x = jam.generate(20000);
  const CplxWaveform y = fe.process_baseband(CplxWaveform(x, 1e9), 0.0, rng);
  // Steady-state jam power crushed.
  double tail = 0.0;
  for (std::size_t i = 10000; i < y.size(); ++i) tail += std::norm(y[i]);
  EXPECT_LT(tail / 10000.0, 0.05);
  fe.clear_notch();
  EXPECT_FALSE(fe.notch_enabled());
}

TEST(FrontEnd, TuneDelegatesToSynthesizer) {
  const pulse::BandPlan plan;
  FrontEnd fe(FrontEndParams{}, plan);
  EXPECT_GT(fe.tune(3), 0.0);
  EXPECT_EQ(fe.channel(), 3);
  EXPECT_GT(fe.system_noise_figure_db(), 3.0);
  EXPECT_LT(fe.system_noise_figure_db(), 12.0);
}

}  // namespace
}  // namespace uwb::rf
