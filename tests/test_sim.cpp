// Tests for the simulation harness itself: BER bookkeeping, Monte-Carlo
// stopping rules, table rendering, canned scenarios.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "sim/ber_simulator.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/table.h"

namespace uwb::sim {
namespace {

// -------------------------------------------------------------- counters ----

TEST(BerCounter, Accumulates) {
  BerCounter counter;
  EXPECT_DOUBLE_EQ(counter.ber(), 0.0);
  counter.add(5, 1000);
  counter.add(0, 1000);
  EXPECT_EQ(counter.errors(), 5u);
  EXPECT_EQ(counter.bits(), 2000u);
  EXPECT_DOUBLE_EQ(counter.ber(), 2.5e-3);
  counter.reset();
  EXPECT_EQ(counter.bits(), 0u);
}

TEST(BerCounter, ConfidenceShrinksWithBits) {
  BerCounter small, large;
  small.add(10, 1000);
  large.add(1000, 100000);  // same BER, 100x the data
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_GT(small.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MomentsAndExtremes) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Percentile, InterpolatesSorted) {
  RealVec v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_THROW((void)percentile({}, 50.0), Error);
  EXPECT_THROW((void)percentile({1.0}, 120.0), Error);
}

// ------------------------------------------------------------ monte carlo ----

TEST(MeasureBer, StopsOnErrorBudget) {
  // A deterministic trial with BER 10%: 50 errors arrive after 5 trials of
  // 100 bits with 10 errors each.
  BerStop stop;
  stop.min_errors = 50;
  stop.max_bits = 1000000;
  const BerPoint point = measure_ber([]() { return TrialOutcome{100, 10}; }, stop);
  EXPECT_EQ(point.trials, 5u);
  EXPECT_EQ(point.errors, 50u);
  EXPECT_DOUBLE_EQ(point.ber, 0.1);
}

TEST(MeasureBer, StopsOnBitBudgetWhenErrorFree) {
  BerStop stop;
  stop.min_errors = 50;
  stop.max_bits = 5000;
  const BerPoint point = measure_ber([]() { return TrialOutcome{1000, 0}; }, stop);
  EXPECT_EQ(point.trials, 5u);
  EXPECT_DOUBLE_EQ(point.ber, 0.0);
}

TEST(MeasureBer, ZeroBitTrialsStopAtMaxTrials) {
  // A degenerate trial stream that never yields a bit (e.g. every packet
  // lost before comparison) must still terminate at max_trials and report
  // finite, zeroed statistics -- no divisions by zero bits.
  BerStop stop;
  stop.min_errors = 10;
  stop.max_bits = 1000;
  stop.max_trials = 7;
  const BerPoint point = measure_ber([]() { return TrialOutcome{0, 0}; }, stop);
  EXPECT_EQ(point.trials, 7u);
  EXPECT_EQ(point.bits, 0u);
  EXPECT_EQ(point.errors, 0u);
  EXPECT_DOUBLE_EQ(point.ber, 0.0);
  EXPECT_DOUBLE_EQ(point.ci95, 0.0);
  EXPECT_FALSE(std::isnan(point.ber));
  EXPECT_FALSE(std::isnan(point.ci95));
}

TEST(MeasureBer, MaxTrialsIsHardStopWithoutErrors) {
  // Error-free trials with a huge bit budget: the trial cap must bound the
  // run on its own.
  BerStop stop;
  stop.min_errors = 50;
  stop.max_bits = 1'000'000'000;
  stop.max_trials = 5;
  const BerPoint point = measure_ber([]() { return TrialOutcome{10, 0}; }, stop);
  EXPECT_EQ(point.trials, 5u);
  EXPECT_EQ(point.bits, 50u);
  EXPECT_DOUBLE_EQ(point.ber, 0.0);
}

TEST(MeasureBer, MatchesBernoulliStatistics) {
  Rng rng(3);
  const double p = 0.02;
  BerStop stop;
  stop.min_errors = 400;
  stop.max_bits = 10000000;
  const BerPoint point = measure_ber(
      [&]() {
        std::size_t errors = 0;
        for (int i = 0; i < 500; ++i) {
          if (rng.uniform() < p) ++errors;
        }
        return TrialOutcome{500, errors};
      },
      stop);
  EXPECT_NEAR(point.ber, p, 3.0 * point.ci95 / 1.96);  // within ~3 sigma
}

// ----------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  Table table({"a", "long header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide cell", "x", "y"});
  const std::string out = table.to_string();
  // Header present, separator present, all cells present.
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("wide cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Rows have equal rendered width (alignment property).
  const auto first_nl = out.find('\n');
  const auto second_nl = out.find('\n', first_nl + 1);
  const auto third_nl = out.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), Error);
  EXPECT_THROW(Table{std::vector<std::string>{}}, Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::db(6.02), "6.0 dB");
  EXPECT_EQ(Table::percent(0.375, 1), "37.5%");
  EXPECT_EQ(Table::sci(0.00123, 2), "1.23e-03");
}

// -------------------------------------------------------------- scenarios ----

TEST(Scenario, NominalConfigsMatchPaperNumbers) {
  const auto g1 = gen1_nominal();
  EXPECT_NEAR(g1.bit_rate_hz(), 193e3, 1e3);
  EXPECT_EQ(g1.adc_lanes, 4);

  const auto g2 = gen2_nominal();
  EXPECT_DOUBLE_EQ(g2.bit_rate_hz(), 100e6);
  EXPECT_EQ(g2.sar.bits, 5);
  EXPECT_EQ(g2.chanest.quantization_bits, 4);
}

TEST(Scenario, FastVariantsKeepTheArchitecture) {
  // The fast configs shrink Monte-Carlo cost but must not change any of
  // the paper-level architecture knobs.
  const auto nominal = gen2_nominal();
  const auto fast = gen2_fast();
  EXPECT_EQ(fast.sar.bits, nominal.sar.bits);
  EXPECT_EQ(fast.rake.num_fingers, nominal.rake.num_fingers);
  EXPECT_EQ(fast.mlse.memory, nominal.mlse.memory);
  EXPECT_DOUBLE_EQ(fast.prf_hz, nominal.prf_hz);
  // Only the preamble/estimation budgets differ.
  EXPECT_LT(fast.packet.preamble_msequence_degree, nominal.packet.preamble_msequence_degree);
}

}  // namespace
}  // namespace uwb::sim
