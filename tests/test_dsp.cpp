// Tests for the DSP substrate: FFT, windows, filter design, FIR/IIR,
// NCO, correlators, resampling, PSD, delays.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "dsp/biquad.h"
#include "dsp/correlator.h"
#include "dsp/delay_line.h"
#include "dsp/fast_convolve.h"
#include "dsp/fft.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"
#include "dsp/nco.h"
#include "dsp/power_spectrum.h"
#include "dsp/resampler.h"
#include "dsp/window.h"

namespace uwb::dsp {
namespace {

// ----------------------------------------------------------------- fft ----

TEST(Fft, DeltaTransformsToFlat) {
  CplxVec x(8, cplx{});
  x[0] = 1.0;
  fft_inplace(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  CplxVec x(n);
  const std::size_t k0 = 5;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(1.0, two_pi * static_cast<double>(k0 * i) / n);
  }
  fft_inplace(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTrip) {
  Rng rng(3);
  CplxVec x(128);
  for (auto& v : x) v = rng.cgaussian();
  const CplxVec y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(4);
  CplxVec x(256);
  for (auto& v : x) v = rng.cgaussian();
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  CplxVec spec = x;
  fft_inplace(spec);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-9 * time_energy);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CplxVec x(100);
  EXPECT_THROW(fft_inplace(x), InvalidArgument);
}

TEST(Fft, ConvolutionMatchesDirect) {
  Rng rng(5);
  RealVec a(37), b(12);
  for (auto& v : a) v = rng.gaussian();
  for (auto& v : b) v = rng.gaussian();
  const RealVec direct = convolve(a, b);
  const RealVec viafft = fft_convolve(a, b);
  ASSERT_EQ(direct.size(), viafft.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], viafft[i], 1e-9);
  }
}

TEST(Fft, BinFrequencyMapsNegative) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 8, 800.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(1, 8, 800.0), 100.0);
  EXPECT_DOUBLE_EQ(bin_frequency(7, 8, 800.0), -100.0);
  EXPECT_DOUBLE_EQ(bin_frequency(4, 8, 800.0), -400.0);
}

// ------------------------------------------------------------- fft plan ----

TEST(FftPlan, CacheReturnsOneSharedPlanPerSize) {
  const FftPlan& a = fft_plan(256);
  const FftPlan& b = fft_plan(256);
  const FftPlan& c = fft_plan(512);
  EXPECT_EQ(&a, &b);  // same immutable plan object
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(c.size(), 512u);
}

TEST(FftPlan, ExecutesInPlaceIntoCallerBuffer) {
  Rng rng(13);
  CplxVec x(128);
  for (auto& v : x) v = rng.cgaussian();
  CplxVec y = x;
  const FftPlan& plan = fft_plan(128);
  plan.forward(y.data());
  plan.inverse(y.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(FftPlan, MatchesLegacyFreeFunctions) {
  Rng rng(14);
  CplxVec x(64);
  for (auto& v : x) v = rng.cgaussian();
  CplxVec via_plan = x;
  fft_plan(64).forward(via_plan);
  CplxVec via_free = x;
  fft_inplace(via_free);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(via_plan[i], via_free[i]);  // same code path, bit-identical
  }
}

TEST(FftPlan, RejectsBadSizes) {
  EXPECT_THROW(FftPlan(96), InvalidArgument);
  EXPECT_THROW(fft_plan(100), InvalidArgument);
  CplxVec wrong(32);
  EXPECT_THROW(fft_plan(64).forward(wrong), InvalidArgument);
}

// ----------------------------------------------------------- real-input fft ----

RealVec random_real(Rng& rng, std::size_t n) {
  RealVec v(n);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

TEST(Rfft, MatchesComplexFftHalfSpectrum) {
  // Power-of-two, odd, prime-factor and tiny sizes: the helpers zero-pad to
  // the next power of two exactly like the complex fft() free function, so
  // the half spectrum must match the complex transform bin for bin.
  Rng rng(50);
  for (std::size_t n : {2ul, 4ul, 8ul, 17ul, 96ul, 97ul, 255ul, 1024ul, 4096ul}) {
    const RealVec x = random_real(rng, n);
    const CplxVec full = fft(x);
    const CplxVec half = rfft(x);
    ASSERT_EQ(half.size(), full.size() / 2 + 1) << "n=" << n;
    for (std::size_t k = 0; k < half.size(); ++k) {
      ASSERT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Rfft, EmptyInputGivesEmptySpectrum) {
  EXPECT_TRUE(rfft(RealVec{}).empty());
  EXPECT_TRUE(irfft(CplxVec{}).empty());
}

TEST(Rfft, RoundTripIsExactToRounding) {
  Rng rng(51);
  for (std::size_t n : {2ul, 8ul, 64ul, 1000ul, 2048ul}) {
    const RealVec x = random_real(rng, n);
    const RealVec back = irfft(rfft(x), n);
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(back[i], x[i], 1e-12) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Rfft, ParsevalHoldsOnHalfSpectrum) {
  Rng rng(52);
  const std::size_t n = 512;
  const RealVec x = random_real(rng, n);
  const CplxVec half = rfft(x);
  // Energy of the implied full spectrum: interior bins count twice.
  double freq_energy = std::norm(half.front()) + std::norm(half.back());
  for (std::size_t k = 1; k + 1 < half.size(); ++k) freq_energy += 2.0 * std::norm(half[k]);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9 * time_energy);
}

TEST(Rfft, EnergyConservedThroughChannelConvolution) {
  // End-to-end energy bookkeeping on the path the receiver actually uses:
  // convolve a real waveform with a channel-like impulse response, then
  // check that the output's time-domain energy matches the Parseval sum
  // over its rfft half spectrum. Guards the real-input convolution path
  // against scaling bugs in either direction of the transform.
  Rng rng(53);
  const RealVec x = random_real(rng, 700);
  RealVec h(61);
  for (std::size_t i = 0; i < h.size(); ++i) {
    // Exponentially decaying multipath-style taps.
    h[i] = rng.gaussian() * std::exp(-0.08 * static_cast<double>(i));
  }
  const RealVec y = fft_convolve(x, h);
  ASSERT_EQ(y.size(), x.size() + h.size() - 1);

  double time_energy = 0.0;
  for (double v : y) time_energy += v * v;

  const CplxVec half = rfft(y);
  const std::size_t n_fft = next_pow2(y.size());
  double freq_energy = std::norm(half.front()) + std::norm(half.back());
  for (std::size_t k = 1; k + 1 < half.size(); ++k) freq_energy += 2.0 * std::norm(half[k]);
  EXPECT_NEAR(freq_energy / static_cast<double>(n_fft), time_energy, 1e-9 * time_energy);
}

TEST(Rfft, PlanCacheSharesPlans) {
  const RfftPlan& a = rfft_plan(256);
  const RfftPlan& b = rfft_plan(256);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(a.bins(), 129u);
  EXPECT_THROW(rfft_plan(48), InvalidArgument);
  EXPECT_THROW(rfft_plan(1), InvalidArgument);
}

// -------------------------------------------------- fft convolve dispatch ----

CplxVec random_cplx(Rng& rng, std::size_t n) {
  CplxVec v(n);
  for (auto& x : v) x = rng.cgaussian();
  return v;
}

/// Size pairs straddling the dispatch thresholds: short kernels (direct on
/// both paths), crossover-sized, far above, odd lengths, and h longer
/// than x.
const std::pair<std::size_t, std::size_t> kConvSizes[] = {
    {100, 7}, {1000, 33}, {513, 129}, {4096, 129}, {4097, 255},
    {257, 513}, {129, 4096}, {2048, 2048}, {1, 1},
};

TEST(FastConvolve, RealConvolutionMatchesDirect) {
  Rng rng(40);
  for (const auto& [nx, nh] : kConvSizes) {
    const RealVec x = random_real(rng, nx);
    const RealVec h = random_real(rng, nh);
    RealVec direct;
    {
      const FastConvolveGuard guard(false);
      direct = convolve(x, h);
    }
    // Force the FFT kernel regardless of the threshold.
    RealVec viafft;
    FftWorkspace ws;
    ols_convolve(x, h, viafft, ws);
    ASSERT_EQ(direct.size(), viafft.size()) << nx << "x" << nh;
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(direct[i], viafft[i], 1e-9) << nx << "x" << nh << " @" << i;
    }
  }
}

TEST(FastConvolve, CplxRealConvolutionMatchesDirect) {
  Rng rng(41);
  for (const auto& [nx, nh] : kConvSizes) {
    const CplxVec x = random_cplx(rng, nx);
    const RealVec h = random_real(rng, nh);
    CplxVec direct;
    {
      const FastConvolveGuard guard(false);
      direct = convolve(x, h);
    }
    CplxVec viafft;
    FftWorkspace ws;
    ols_convolve(x, h, viafft, ws);
    ASSERT_EQ(direct.size(), viafft.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(std::abs(direct[i] - viafft[i]), 0.0, 1e-9) << nx << "x" << nh;
    }
  }
}

TEST(FastConvolve, CplxConvolutionMatchesDirect) {
  Rng rng(42);
  for (const auto& [nx, nh] : kConvSizes) {
    const CplxVec x = random_cplx(rng, nx);
    const CplxVec h = random_cplx(rng, nh);
    CplxVec direct;
    {
      const FastConvolveGuard guard(false);
      direct = convolve(x, h);
    }
    CplxVec viafft;
    FftWorkspace ws;
    ols_convolve(x, h, viafft, ws);
    ASSERT_EQ(direct.size(), viafft.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(std::abs(direct[i] - viafft[i]), 0.0, 1e-9) << nx << "x" << nh;
    }
  }
}

TEST(FastConvolve, ConvolveSameAgreesAcrossPolicy) {
  // Above-threshold sizes so the enabled policy actually takes the FFT path.
  Rng rng(43);
  const CplxVec x = random_cplx(rng, 4096);
  const RealVec h = random_real(rng, 201);
  CplxVec direct, fast;
  {
    const FastConvolveGuard guard(false);
    direct = convolve_same(x, h);
  }
  {
    const FastConvolveGuard guard(true);
    fast = convolve_same(x, h);
  }
  ASSERT_EQ(direct.size(), x.size());
  ASSERT_EQ(fast.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(std::abs(direct[i] - fast[i]), 0.0, 1e-9);
  }
}

TEST(FastConvolve, CorrelationMatchesDirect) {
  Rng rng(44);
  const std::pair<std::size_t, std::size_t> sizes[] = {
      {500, 32}, {2048, 64}, {4096, 511}, {1023, 1000}, {64, 64},
  };
  for (const auto& [nx, nm] : sizes) {
    const CplxVec x = random_cplx(rng, nx);
    const CplxVec tmpl = random_cplx(rng, nm);
    CplxVec direct;
    {
      const FastConvolveGuard guard(false);
      direct = correlate(x, tmpl);
    }
    CplxVec viafft;
    FftWorkspace ws;
    ols_correlate(x, tmpl, viafft, ws);
    ASSERT_EQ(direct.size(), viafft.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(std::abs(direct[i] - viafft[i]), 0.0, 1e-9) << nx << "x" << nm;
    }

    const RealVec xr = random_real(rng, nx);
    const RealVec tr = random_real(rng, nm);
    RealVec direct_r;
    {
      const FastConvolveGuard guard(false);
      direct_r = correlate(xr, tr);
    }
    RealVec viafft_r;
    ols_correlate(xr, tr, viafft_r, ws);
    ASSERT_EQ(direct_r.size(), viafft_r.size());
    for (std::size_t i = 0; i < direct_r.size(); ++i) {
      ASSERT_NEAR(direct_r[i], viafft_r[i], 1e-9) << nx << "x" << nm;
    }
  }
}

TEST(FastConvolve, EdgeCasesMatchDirectSemantics) {
  FftWorkspace ws;
  RealVec out_r{1.0};
  ols_convolve(RealVec{}, RealVec{1.0}, out_r, ws);
  EXPECT_TRUE(out_r.empty());
  CplxVec out_c{cplx{1.0, 0.0}};
  ols_convolve(CplxVec{}, RealVec{1.0}, out_c, ws);
  EXPECT_TRUE(out_c.empty());
  // Template longer than the signal: correlate defines this as empty.
  CplxVec out_corr{cplx{1.0, 0.0}};
  ols_correlate(CplxVec(4, cplx{1.0, 0.0}), CplxVec(9, cplx{1.0, 0.0}), out_corr, ws);
  EXPECT_TRUE(out_corr.empty());
  EXPECT_TRUE(correlate(CplxVec(4, cplx{}), CplxVec(9, cplx{})).empty());
}

TEST(FastConvolve, PolicyTogglesAndRestores) {
  EXPECT_TRUE(fast_convolve_enabled());  // library default
  {
    const FastConvolveGuard guard(false);
    EXPECT_FALSE(fast_convolve_enabled());
    EXPECT_FALSE(use_fft_convolve(1u << 20, 1u << 10, ConvKind::kCplxCplx));
  }
  EXPECT_TRUE(fast_convolve_enabled());
  // Below either the kernel or the product floor stays direct.
  EXPECT_FALSE(use_fft_convolve(1u << 20, 8, ConvKind::kCplxCplx));
  EXPECT_FALSE(use_fft_convolve(64, 64, ConvKind::kCplxCplx));
  EXPECT_TRUE(use_fft_convolve(1u << 12, 1u << 10, ConvKind::kCplxCplx));
  // Real kernels need more taps before the FFT wins than complex ones.
  EXPECT_FALSE(use_fft_convolve(1u << 12, 64, ConvKind::kRealReal));
  EXPECT_TRUE(use_fft_convolve(1u << 12, 64, ConvKind::kCplxReal));
}

// -------------------------------------------------------------- windows ----

class WindowTypedTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowTypedTest, SymmetricAndBounded) {
  const RealVec w = make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "asymmetric at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowTypedTest,
                         ::testing::Values(WindowType::kRectangular, WindowType::kHann,
                                           WindowType::kHamming, WindowType::kBlackman,
                                           WindowType::kKaiser));

TEST(Window, NoiseBandwidths) {
  EXPECT_NEAR(noise_bandwidth_bins(RealVec(64, 1.0)), 1.0, 1e-12);
  EXPECT_NEAR(noise_bandwidth_bins(hann(4096)), 1.5, 0.01);
}

TEST(Window, BesselI0) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658, 1e-6);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871, 1e-4);
}

// -------------------------------------------------------- filter design ----

TEST(FilterDesign, LowpassGains) {
  const double fs = 100e6;
  const RealVec taps = design_lowpass(10e6, fs, 101);
  EXPECT_NEAR(fir_gain_db_at(taps, 0.0, fs), 0.0, 0.01);       // DC
  EXPECT_NEAR(fir_gain_db_at(taps, 10e6, fs), -6.0, 1.0);      // edge
  EXPECT_LT(fir_gain_db_at(taps, 25e6, fs), -40.0);            // stopband
}

TEST(FilterDesign, HighpassGains) {
  const double fs = 100e6;
  const RealVec taps = design_highpass(10e6, fs, 101);
  EXPECT_LT(fir_gain_db_at(taps, 1e6, fs), -40.0);
  EXPECT_NEAR(fir_gain_db_at(taps, 40e6, fs), 0.0, 0.5);
}

TEST(FilterDesign, BandpassGains) {
  const double fs = 1e9;
  const RealVec taps = design_bandpass(100e6, 300e6, fs, 201);
  EXPECT_NEAR(fir_gain_db_at(taps, 200e6, fs), 0.0, 0.2);
  EXPECT_LT(fir_gain_db_at(taps, 20e6, fs), -40.0);
  EXPECT_LT(fir_gain_db_at(taps, 450e6, fs), -40.0);
}

TEST(FilterDesign, RaisedCosineNyquistProperty) {
  // RC pulse must be zero at nonzero multiples of the symbol period.
  const int sps = 8;
  const RealVec taps = design_raised_cosine(1e6, 0.35, 6, sps);
  const std::size_t center = (taps.size() - 1) / 2;
  EXPECT_NEAR(taps[center], 1.0, 1e-12);
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR(taps[center + static_cast<std::size_t>(k * sps)], 0.0, 1e-9) << "k=" << k;
  }
}

TEST(FilterDesign, RrcMatchedPairIsNyquist) {
  // RRC convolved with itself must satisfy the Nyquist criterion.
  const int sps = 8;
  const RealVec rrc = design_root_raised_cosine(1e6, 0.35, 6, sps);
  const RealVec rc = convolve(rrc, rrc);
  const std::size_t center = (rc.size() - 1) / 2;
  const double peak = rc[center];
  EXPECT_NEAR(peak, 1.0, 1e-6);  // unit-energy RRC -> unit peak
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(rc[center + static_cast<std::size_t>(k * sps)] / peak, 0.0, 1e-3);
  }
}

TEST(FilterDesign, RejectsBadArguments) {
  EXPECT_THROW(design_lowpass(60e6, 100e6, 31), InvalidArgument);
  EXPECT_THROW(design_lowpass(10e6, 100e6, 1), InvalidArgument);
  EXPECT_THROW(design_highpass(10e6, 100e6, 30), InvalidArgument);  // even taps
  EXPECT_THROW(design_raised_cosine(1e6, 1.5, 4, 8), InvalidArgument);
}

// ------------------------------------------------------------------ fir ----

TEST(FirFilter, StreamingMatchesBlock) {
  Rng rng(6);
  RealVec taps(9);
  for (auto& t : taps) t = rng.gaussian();
  RealVec x(50);
  for (auto& v : x) v = rng.gaussian();

  FirFilter<double> streaming(taps);
  RealVec y_stream;
  for (double v : x) y_stream.push_back(streaming.step(v));

  const RealVec y_full = convolve(x, taps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y_stream[i], y_full[i], 1e-12);
  }
}

TEST(FirFilter, StatePersistsAcrossBlocks) {
  RealVec taps = {0.5, 0.5};
  FirFilter<double> f(taps);
  (void)f.process({1.0});
  const auto y = f.process({0.0});
  EXPECT_NEAR(y[0], 0.5, 1e-12);  // remembers the previous sample
  f.reset();
  const auto z = f.process({0.0});
  EXPECT_NEAR(z[0], 0.0, 1e-12);
}

TEST(FirFilter, ConvolveSameCompensatesGroupDelay) {
  // Same-mode filtering of an impulse with a symmetric kernel returns the
  // kernel centered on the impulse position.
  RealVec x(11, 0.0);
  x[5] = 1.0;
  const RealVec kernel = {0.25, 0.5, 0.25};
  const RealVec y = convolve_same(x, kernel);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_NEAR(y[5], 0.5, 1e-12);
  EXPECT_NEAR(y[4], 0.25, 1e-12);
  EXPECT_NEAR(y[6], 0.25, 1e-12);
}

// --------------------------------------------------------------- biquad ----

TEST(Biquad, NotchKillsCenterKeepsFar) {
  const double fs = 1e9;
  const BiquadCoeffs c = design_notch(100e6, 10.0, fs);
  EXPECT_LT(amp_to_db(std::abs(biquad_response_at(c, 100e6, fs)) + 1e-30), -60.0);
  EXPECT_NEAR(amp_to_db(std::abs(biquad_response_at(c, 300e6, fs))), 0.0, 0.5);
  EXPECT_NEAR(amp_to_db(std::abs(biquad_response_at(c, 10e6, fs))), 0.0, 0.5);
}

TEST(Biquad, LowpassShape) {
  const double fs = 1e9;
  const BiquadCoeffs c = design_biquad_lowpass(50e6, 0.7071, fs);
  EXPECT_NEAR(amp_to_db(std::abs(biquad_response_at(c, 1e6, fs))), 0.0, 0.1);
  EXPECT_NEAR(amp_to_db(std::abs(biquad_response_at(c, 50e6, fs))), -3.0, 0.3);
  EXPECT_LT(amp_to_db(std::abs(biquad_response_at(c, 400e6, fs))), -30.0);
}

TEST(Biquad, StreamingNotchSuppressesTone) {
  const double fs = 1e9;
  Biquad<double> notch(design_notch(80e6, 5.0, fs));
  Nco tone(80e6, fs);
  double in_power = 0.0, out_power = 0.0;
  // Skip the transient, then measure.
  for (int i = 0; i < 2000; ++i) (void)notch.step(tone.step().real());
  for (int i = 0; i < 8000; ++i) {
    const double x = tone.step().real();
    const double y = notch.step(x);
    in_power += x * x;
    out_power += y * y;
  }
  EXPECT_LT(out_power / in_power, 1e-3);
}

TEST(Biquad, CascadeDeepensNotch) {
  const double fs = 1e9;
  const BiquadCoeffs c = design_notch(100e6, 5.0, fs);
  const cplx h1 = biquad_response_at(c, 95e6, fs);
  BiquadCascade<double> two({c, c});
  // Response of the cascade at f = product of sections.
  const double h2_db = 2.0 * amp_to_db(std::abs(h1));
  EXPECT_NEAR(h2_db, amp_to_db(std::abs(h1 * h1)), 1e-9);
  EXPECT_EQ(two.num_sections(), 2u);
}

// ------------------------------------------------------------------ nco ----

TEST(Nco, FrequencyAccuracy) {
  const double fs = 1e9;
  Nco nco(25e6, fs);
  // After fs/f samples the phase must return to the start (one full cycle).
  const std::size_t period = 40;  // 1e9 / 25e6
  const CplxVec cycle = nco.generate(period + 1);
  EXPECT_NEAR(std::abs(cycle[0] - cycle[period]), 0.0, 1e-9);
}

TEST(Nco, QuadratureRelation) {
  Nco nco(10e6, 1e9, 0.3);
  for (int i = 0; i < 100; ++i) {
    const cplx v = nco.step();
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);  // unit magnitude always
  }
}

TEST(Nco, NegativeFrequencyConjugates) {
  Nco pos(10e6, 1e9), neg(-10e6, 1e9);
  for (int i = 0; i < 50; ++i) {
    const cplx a = pos.step();
    const cplx b = neg.step();
    EXPECT_NEAR(std::abs(a - std::conj(b)), 0.0, 1e-12);
  }
}

TEST(Nco, RejectsAboveNyquist) {
  EXPECT_THROW(Nco(600e6, 1e9), InvalidArgument);
}

// ----------------------------------------------------------- correlator ----

TEST(Correlator, FindsEmbeddedTemplate) {
  Rng rng(8);
  CplxVec tmpl(32);
  for (auto& v : tmpl) v = rng.cgaussian();
  CplxVec x(256, cplx{});
  const std::size_t where = 77;
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[where + i] = tmpl[i];

  const RealVec nc = normalized_correlation(x, tmpl);
  EXPECT_EQ(argmax_abs(nc), where);
  EXPECT_NEAR(nc[where], 1.0, 1e-9);
}

TEST(Correlator, NormalizedIsScaleInvariant) {
  Rng rng(9);
  CplxVec tmpl(16);
  for (auto& v : tmpl) v = rng.cgaussian();
  CplxVec x(64, cplx{});
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[10 + i] = 3.7 * tmpl[i];
  const RealVec nc = normalized_correlation(x, tmpl);
  EXPECT_NEAR(nc[10], 1.0, 1e-9);
}

TEST(Correlator, RealCorrelationSign) {
  RealVec tmpl = {1.0, -1.0, 1.0};
  RealVec x = {-1.0, 1.0, -1.0, 0.0};
  const RealVec c = correlate(x, tmpl);
  EXPECT_NEAR(c[0], -3.0, 1e-12);  // anti-aligned
}

TEST(Correlator, IntegrateAndDump) {
  IntegrateAndDump<double> iad(4);
  double out = 0.0;
  int dumps = 0;
  for (int i = 1; i <= 8; ++i) {
    if (iad.push(1.0, out)) {
      ++dumps;
      EXPECT_DOUBLE_EQ(out, 4.0);
    }
  }
  EXPECT_EQ(dumps, 2);
}

// ------------------------------------------------------------ resampler ----

TEST(Resampler, UpsamplePreservesShape) {
  // A slow sine upsampled 4x must still be the same sine.
  const double fs = 1e6;
  const std::size_t n = 256;
  RealVec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(two_pi * 20e3 * i / fs);
  const RealWaveform up = upsample(RealWaveform(x, fs), 4);
  EXPECT_DOUBLE_EQ(up.sample_rate(), 4e6);
  ASSERT_EQ(up.size(), 4 * n);
  // Compare mid-buffer samples (edges carry filter transients).
  double max_err = 0.0;
  for (std::size_t i = 200; i < 800; ++i) {
    const double expected = std::sin(two_pi * 20e3 * i / (4.0 * fs));
    max_err = std::max(max_err, std::abs(up[i] - expected));
  }
  EXPECT_LT(max_err, 0.02);
}

TEST(Resampler, DecimateRemovesHighBand) {
  // Tone above the decimated Nyquist must vanish.
  const double fs = 8e6;
  const std::size_t n = 4096;
  RealVec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(two_pi * 3e6 * i / fs);
  const RealWaveform down = decimate(RealWaveform(x, fs), 4);
  EXPECT_DOUBLE_EQ(down.sample_rate(), 2e6);
  EXPECT_LT(down.power(), 0.01);  // 3 MHz tone is beyond 1 MHz Nyquist
}

TEST(Resampler, DownsampleRawPhase) {
  const std::vector<int> x = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto y = downsample_raw(x, 3, 1);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], 1);
  EXPECT_EQ(y[1], 4);
  EXPECT_EQ(y[2], 7);
}

// ------------------------------------------------------------------ psd ----

TEST(PowerSpectrum, WhiteNoiseLevel) {
  // PSD of white noise with variance s^2 at rate fs is s^2/fs (one-sided
  // doubles it but spreads over fs/2 -- total power must come back).
  Rng rng(10);
  const double fs = 1e9;
  RealVec x(65536);
  for (auto& v : x) v = rng.gaussian();
  const Psd psd = welch_psd(RealWaveform(x, fs), 1024);
  EXPECT_NEAR(psd.total_power(), 1.0, 0.05);
}

TEST(PowerSpectrum, TonePeakFrequency) {
  const double fs = 1e9;
  const double f0 = 123e6;
  RealVec x(32768);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::cos(two_pi * f0 * i / fs);
  const Psd psd = welch_psd(RealWaveform(x, fs), 2048);
  const std::size_t peak = psd.peak_bin();
  EXPECT_NEAR(psd.freq_hz[peak], f0, fs / 2048.0);
  // The tone power (0.5 for unit-amplitude cosine) integrates back.
  EXPECT_NEAR(psd.total_power(), 0.5, 0.05);
}

TEST(PowerSpectrum, ComplexPsdCoversNegativeFrequencies) {
  const double fs = 1e9;
  const double f0 = -200e6;
  CplxVec x(16384);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::polar(1.0, two_pi * f0 * static_cast<double>(i) / fs);
  }
  const Psd psd = welch_psd(CplxWaveform(x, fs), 1024);
  const std::size_t peak = psd.peak_bin();
  EXPECT_NEAR(psd.freq_hz[peak], f0, fs / 1024.0);
}

TEST(PowerSpectrum, BandwidthMeasures) {
  // 500 MHz-wide flat band around DC (complex): occupied BW ~ 500 MHz.
  Rng rng(11);
  const double fs = 4e9;
  CplxVec x(65536);
  for (auto& v : x) v = rng.cgaussian();
  // Filter to +/-250 MHz.
  const RealVec lp = design_lowpass(250e6, fs, 255);
  x = convolve_same(x, lp);
  const Psd psd = welch_psd(CplxWaveform(x, fs), 2048);
  EXPECT_NEAR(occupied_bandwidth(psd, 0.99), 500e6, 100e6);
  EXPECT_NEAR(bandwidth_at_level(psd, -10.0), 500e6, 120e6);
}

// ---------------------------------------------------------------- delay ----

TEST(DelayLine, IntegerDelay) {
  DelayLine<double> dl(3);
  EXPECT_DOUBLE_EQ(dl.step(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dl.step(2.0), 0.0);
  EXPECT_DOUBLE_EQ(dl.step(3.0), 0.0);
  EXPECT_DOUBLE_EQ(dl.step(4.0), 1.0);
  EXPECT_DOUBLE_EQ(dl.step(5.0), 2.0);
}

TEST(FractionalDelay, HalfSampleInterpolates) {
  RealVec x = {0.0, 1.0, 0.0, 0.0};
  const RealVec y = fractional_delay(x, 1.5);
  // Sample at index i picks (1-frac)*x[i-1] + frac*x[i-2].
  EXPECT_NEAR(y[2], 0.5, 1e-12);
  EXPECT_NEAR(y[3], 0.5, 1e-12);
}

TEST(FractionalDelay, ZeroDelayIdentity) {
  RealVec x = {1.0, 2.0, 3.0};
  const RealVec y = fractional_delay(x, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

}  // namespace
}  // namespace uwb::dsp
