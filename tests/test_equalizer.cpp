// Tests for the demodulation stack: matched filter baseline, RAKE
// combining, MLSE (Viterbi demodulator) over ISI channels.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "channel/awgn.h"
#include "channel/cir.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "equalizer/demodulator.h"
#include "equalizer/mlse.h"
#include "equalizer/rake.h"

namespace uwb::equalizer {
namespace {

// Builds a symbol-rate BPSK "matched filter output" waveform with a given
// symbol-spaced channel: y[m] = sum_l g[l] a[m-l] (+ noise), at sps spacing.
CplxWaveform make_isi_waveform(const std::vector<double>& a, const std::vector<cplx>& g,
                               std::size_t sps, double n0, Rng& rng) {
  const std::size_t n = a.size() * sps + 32;
  CplxVec y(n, cplx{});
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (std::size_t l = 0; l < g.size(); ++l) {
      if (m >= l) {
        y[m * sps] += g[l] * a[m - l];
      }
    }
  }
  if (n0 > 0.0) channel::add_awgn(y, n0, rng);
  return CplxWaveform(std::move(y), 1e9);
}

std::vector<double> random_symbols(std::size_t n, Rng& rng, BitVec* bits_out = nullptr) {
  std::vector<double> a(n);
  BitVec bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    bits[i] = rng.bit();
    a[i] = bits[i] ? -1.0 : 1.0;
  }
  if (bits_out != nullptr) *bits_out = bits;
  return a;
}

// -------------------------------------------------------- matched filter ----

TEST(MatchedFilter, SlicesCleanBpsk) {
  Rng rng(1);
  BitVec bits;
  const auto a = random_symbols(50, rng, &bits);
  const CplxWaveform y = make_isi_waveform(a, {cplx{1.0, 0.0}}, 10, 0.0, rng);
  const SymbolTiming timing{0, 10, 50};
  const auto soft = matched_filter_soft(y, timing);
  for (std::size_t m = 0; m < 50; ++m) {
    EXPECT_EQ(soft[m] < 0.0, bits[m] != 0) << "m=" << m;
  }
}

TEST(MatchedFilter, WeightRotatesPhase) {
  // Channel gain j: conj-weighting must recover the real decision axis.
  Rng rng(2);
  const auto a = random_symbols(20, rng);
  const CplxWaveform y = make_isi_waveform(a, {cplx{0.0, 1.0}}, 4, 0.0, rng);
  const SymbolTiming timing{0, 4, 20};
  const auto soft = matched_filter_soft(y, timing, cplx{0.0, 1.0});
  for (std::size_t m = 0; m < 20; ++m) {
    EXPECT_NEAR(soft[m], a[m], 1e-12);
  }
}

TEST(MatchedFilter, PpmPairs) {
  // Two correlations per symbol: punctual and offset.
  CplxVec y(40, cplx{});
  y[0] = 2.0;   // symbol 0 at punctual
  y[15] = 3.0;  // symbol 1 at offset (t0 + sps + offset = 10 + 5)
  const CplxWaveform w(y, 1e9);
  const SymbolTiming timing{0, 10, 2};
  const auto soft = matched_filter_soft_ppm(w, timing, 5);
  EXPECT_DOUBLE_EQ(soft[0], 2.0);  // symbol 0 punctual
  EXPECT_DOUBLE_EQ(soft[1], 0.0);
  EXPECT_DOUBLE_EQ(soft[2], 0.0);  // symbol 1 punctual
  EXPECT_DOUBLE_EQ(soft[3], 3.0);
}

// ------------------------------------------------------------------ rake ----

channel::Cir three_tap_cir() {
  return channel::Cir({{0.0, {0.8, 0.0}}, {2e-9, {0.0, 0.5}}, {5e-9, {-0.3, 0.1}}});
}

TEST(Rake, FingersFollowPolicy) {
  const channel::Cir cir = three_tap_cir();
  RakeConfig all;
  all.policy = FingerPolicy::kAll;
  EXPECT_EQ(RakeReceiver(all, cir, 1e9).fingers().size(), 3u);

  RakeConfig sel;
  sel.policy = FingerPolicy::kSelective;
  sel.num_fingers = 2;
  const auto fingers = RakeReceiver(sel, cir, 1e9).fingers();
  ASSERT_EQ(fingers.size(), 2u);
  // Strongest two taps: 0.8 at delay 0 and 0.5j at 2 ns.
  EXPECT_EQ(fingers[0].delay_samples, 0u);
  EXPECT_EQ(fingers[1].delay_samples, 2u);

  RakeConfig part;
  part.policy = FingerPolicy::kPartial;
  part.num_fingers = 2;
  const auto pfingers = RakeReceiver(part, cir, 1e9).fingers();
  ASSERT_EQ(pfingers.size(), 2u);
  EXPECT_EQ(pfingers[0].delay_samples, 0u);  // first arrivals, not strongest
  EXPECT_EQ(pfingers[1].delay_samples, 2u);
}

TEST(Rake, EnergyCapture) {
  const channel::Cir cir = three_tap_cir();
  RakeConfig one;
  one.policy = FingerPolicy::kSelective;
  one.num_fingers = 1;
  const double total = cir.total_energy();
  EXPECT_NEAR(RakeReceiver(one, cir, 1e9).energy_capture(), 0.64 / total, 1e-9);
  RakeConfig all;
  all.policy = FingerPolicy::kAll;
  EXPECT_NEAR(RakeReceiver(all, cir, 1e9).energy_capture(), 1.0, 1e-12);
}

TEST(Rake, MrcRecoversDispersedSymbol) {
  // One symbol spread over three delayed copies; MRC must rebuild +1/-1.
  Rng rng(3);
  const channel::Cir cir = three_tap_cir();
  const std::size_t sps = 20;
  BitVec bits;
  const auto a = random_symbols(40, rng, &bits);
  // Build the waveform: each symbol contributes g_k at delay d_k.
  CplxVec y(40 * sps + 40, cplx{});
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (const auto& tap : cir.taps()) {
      const auto d = static_cast<std::size_t>(std::llround(tap.delay_s * 1e9));
      y[m * sps + d] += tap.gain * a[m];
    }
  }
  channel::add_awgn(y, 0.02, rng);
  const CplxWaveform w(y, 1e9);

  RakeConfig config;
  config.policy = FingerPolicy::kAll;
  const RakeReceiver rake(config, cir, 1e9);
  const auto soft = rake.demodulate(w, SymbolTiming{0, sps, 40});
  std::size_t errors = 0;
  for (std::size_t m = 0; m < 40; ++m) {
    if ((soft[m] < 0.0) != (bits[m] != 0)) ++errors;
  }
  EXPECT_EQ(errors, 0u);
}

TEST(Rake, MoreFingersMoreSnr) {
  // With taps of equal power, adding fingers raises the post-combining SNR;
  // check via soft-output statistics.
  Rng rng(4);
  const channel::Cir cir({{0.0, {0.6, 0.0}}, {3e-9, {0.0, 0.6}}, {7e-9, {0.6, 0.0}}});
  const std::size_t sps = 16;
  const auto a = random_symbols(600, rng);
  CplxVec y(600 * sps + 32, cplx{});
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (const auto& tap : cir.taps()) {
      const auto d = static_cast<std::size_t>(std::llround(tap.delay_s * 1e9));
      y[m * sps + d] += tap.gain * a[m];
    }
  }
  channel::add_awgn(y, 0.2, rng);
  const CplxWaveform w(y, 1e9);

  auto snr_of = [&](std::size_t fingers) {
    RakeConfig config;
    config.policy = FingerPolicy::kSelective;
    config.num_fingers = fingers;
    const RakeReceiver rake(config, cir, 1e9);
    const auto soft = rake.demodulate(w, SymbolTiming{0, sps, 600});
    double mean = 0.0;
    for (std::size_t m = 0; m < soft.size(); ++m) mean += soft[m] * a[m];
    mean /= soft.size();
    double var = 0.0;
    for (std::size_t m = 0; m < soft.size(); ++m) {
      var += std::pow(soft[m] * a[m] - mean, 2);
    }
    var /= soft.size();
    return mean * mean / var;
  };
  EXPECT_GT(snr_of(2), snr_of(1) * 1.3);
  EXPECT_GT(snr_of(3), snr_of(2) * 1.1);
}

// ------------------------------------------------------------------ mlse ----

TEST(Mlse, NoIsiReducesToSlicer) {
  Rng rng(5);
  BitVec bits;
  const auto a = random_symbols(100, rng, &bits);
  const std::vector<cplx> g = {cplx{1.0, 0.0}, cplx{}, cplx{}, cplx{}};
  const CplxWaveform y = make_isi_waveform(a, g, 8, 0.01, rng);
  const MlseDemodulator mlse(MlseConfig{3}, g);
  const BitVec decoded = mlse.demodulate(y, SymbolTiming{0, 8, 100});
  EXPECT_EQ(decoded, bits);
}

TEST(Mlse, ResolvesSevereIsi) {
  // Channel g = [1, 0.9]: a slicer alone fails hopelessly; MLSE is clean.
  Rng rng(6);
  BitVec bits;
  const auto a = random_symbols(400, rng, &bits);
  const std::vector<cplx> g = {cplx{1.0, 0.0}, cplx{0.9, 0.0}};
  const CplxWaveform y = make_isi_waveform(a, g, 4, 0.02, rng);

  const MlseDemodulator mlse(MlseConfig{1}, g);
  const BitVec decoded = mlse.demodulate(y, SymbolTiming{0, 4, 400});
  std::size_t mlse_errors = 0;
  for (std::size_t m = 0; m < bits.size(); ++m) {
    if (decoded[m] != bits[m]) ++mlse_errors;
  }

  // Slicer baseline on the same observations.
  std::size_t slicer_errors = 0;
  for (std::size_t m = 0; m < bits.size(); ++m) {
    const double v = y[m * 4].real();
    if ((v < 0.0) != (bits[m] != 0)) ++slicer_errors;
  }
  EXPECT_LE(mlse_errors, 2u);
  // When consecutive symbols differ (half the time) the slicer input is
  // +/-0.1 against sigma 0.1: P(err) ~ Q(1) = 0.16 -> ~32 expected errors.
  EXPECT_GT(slicer_errors, 20u);
}

// Local helper (avoid pulling phy just for hamming distance).
std::size_t bit_distance(const BitVec& x, const BitVec& y) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
    if (x[i] != y[i]) ++d;
  }
  return d;
}

TEST(Mlse, ComplexChannelTaps) {
  Rng rng(7);
  BitVec bits;
  const auto a = random_symbols(300, rng, &bits);
  const std::vector<cplx> g = {cplx{0.8, 0.3}, cplx{-0.2, 0.45}, cplx{0.1, -0.1}};
  const CplxWaveform y = make_isi_waveform(a, g, 5, 0.01, rng);
  const MlseDemodulator mlse(MlseConfig{2}, g);
  const BitVec decoded = mlse.demodulate(y, SymbolTiming{0, 5, 300});
  EXPECT_LE(bit_distance(decoded, bits), 1u);
}

TEST(Mlse, MemoryMustCoverChannel) {
  // Channel longer than the trellis memory: performance degrades but the
  // construction itself must reject mismatched g length.
  EXPECT_THROW(MlseDemodulator(MlseConfig{2}, {cplx{1.0, 0.0}}), InvalidArgument);
  EXPECT_THROW(MlseDemodulator(MlseConfig{0}, {cplx{1.0, 0.0}}), InvalidArgument);
}

TEST(Mlse, CompositeChannelFromEstimate) {
  // Triangular pulse autocorrelation, single-tap channel at delay 0:
  // g[0] = 1 (peak), g[1] = value one symbol away (zero for short pulse).
  RealVec rpp = {0.25, 0.5, 1.0, 0.5, 0.25};
  const channel::Cir est(std::vector<channel::CirTap>{{0.0, {1.0, 0.0}}});
  const auto g = composite_symbol_channel(est, rpp, 2, 1e9, 4, 2);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_NEAR(std::abs(g[0]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(g[1]), 0.0, 1e-12);

  // Two-tap channel: the second tap 2 samples out contributes to g via the
  // autocorrelation skirt.
  const channel::Cir est2({{0.0, {1.0, 0.0}}, {2e-9, {0.5, 0.0}}});
  const auto g2 = composite_symbol_channel(est2, rpp, 2, 1e9, 4, 2);
  EXPECT_NEAR(g2[0].real(), 1.0 + 0.5 * 0.25, 1e-12);  // skirt of tap 2 at lag 0...
}

}  // namespace
}  // namespace uwb::equalizer
