// Tests for the channel-ensemble subsystem: deterministic generation and
// the fingerprint scheme, Saleh-Valenzuela ensemble statistics per CM
// profile, the thread-safe cache with draw accounting, the binary store
// round trip, and byte-identical ensemble-mode sweeps across worker counts
// and shards.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "engine/channel_cache.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "io/cir_io.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace uwb::engine {
namespace {

void expect_ensembles_identical(const ChannelEnsemble& a, const ChannelEnsemble& b) {
  ASSERT_EQ(a.key, b.key);
  ASSERT_EQ(a.realizations.size(), b.realizations.size());
  for (std::size_t i = 0; i < a.realizations.size(); ++i) {
    SCOPED_TRACE("realization " + std::to_string(i));
    const auto& ta = a.realizations[i].taps();
    const auto& tb = b.realizations[i].taps();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t t = 0; t < ta.size(); ++t) {
      // Bit-exact, not approximately equal: the determinism contract.
      EXPECT_EQ(ta[t].delay_s, tb[t].delay_s);
      EXPECT_EQ(ta[t].gain, tb[t].gain);
    }
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------- fingerprint ----

TEST(SvFingerprint, SeparatesProfilesAndConventions) {
  const uint64_t cm1 = sv_fingerprint(channel::cm1());
  const uint64_t cm3 = sv_fingerprint(channel::cm3());
  EXPECT_NE(cm1, cm3);

  // The gen-1 real-polarity variant of a profile keys a distinct ensemble.
  channel::SvParams real_cm3 = channel::cm3();
  real_cm3.complex_phases = false;
  EXPECT_NE(sv_fingerprint(real_cm3), cm3);

  // The cosmetic name is excluded: renaming must not invalidate a store.
  channel::SvParams renamed = channel::cm3();
  renamed.name = "CM3_renamed";
  EXPECT_EQ(sv_fingerprint(renamed), cm3);

  // Any statistical field participates.
  channel::SvParams tweaked = channel::cm3();
  tweaked.ray_decay_s *= 1.0 + 1e-12;
  EXPECT_NE(sv_fingerprint(tweaked), cm3);
}

// -------------------------------------------------------- make_ensemble ----

TEST(MakeEnsemble, SameKeyIsBitIdentical) {
  const ChannelEnsemble a = make_ensemble(channel::cm2(), 0xE45, 8);
  const ChannelEnsemble b = make_ensemble(channel::cm2(), 0xE45, 8);
  expect_ensembles_identical(a, b);
  // ...and a different seed or count is a different ensemble.
  EXPECT_NE(make_ensemble(channel::cm2(), 0xE46, 8).realizations[0].taps()[0].gain,
            a.realizations[0].taps()[0].gain);
}

TEST(MakeEnsemble, RealizationPrefixIsCountIndependent) {
  // Realization i is a pure function of (params, seed, i) -- growing an
  // ensemble must not reshuffle the prefix (the fork(i) contract).
  const ChannelEnsemble small = make_ensemble(channel::cm1(), 7, 4);
  ChannelEnsemble large = make_ensemble(channel::cm1(), 7, 12);
  large.realizations.resize(4);
  large.key = small.key;
  expect_ensembles_identical(small, large);
}

TEST(MakeEnsemble, IndexWrapsModuloCount) {
  const ChannelEnsemble e = make_ensemble(channel::cm1(), 3, 5);
  EXPECT_EQ(&e.realization_for_trial(0), &e.realization_for_trial(5));
  EXPECT_EQ(&e.realization_for_trial(7), &e.realizations[2]);
  EXPECT_THROW((void)make_ensemble(channel::cm1(), 3, 0), InvalidArgument);
}

TEST(MakeEnsemble, MeanRmsDelaySpreadMatchesEachCmProfile) {
  // Ensemble statistics must reproduce the model: mean rms delay spread
  // over a 60-realization ensemble within each profile's expected band
  // (CM1 ~5 ns ... CM4 ~25 ns, the paper's "order of 20 ns" regime).
  struct Band {
    int cm;
    double lo_s, hi_s;
  };
  const Band bands[] = {
      {1, 2e-9, 10e-9}, {2, 4e-9, 14e-9}, {3, 8e-9, 22e-9}, {4, 14e-9, 40e-9}};
  double previous_mean = 0.0;
  for (const Band& band : bands) {
    SCOPED_TRACE("CM" + std::to_string(band.cm));
    const ChannelEnsemble ensemble =
        make_ensemble(channel::cm_by_index(band.cm), 0x5712AD + band.cm, 60);
    double mean = 0.0;
    for (const channel::Cir& cir : ensemble.realizations) mean += cir.rms_delay_spread();
    mean /= static_cast<double>(ensemble.realizations.size());
    EXPECT_GT(mean, band.lo_s);
    EXPECT_LT(mean, band.hi_s);
    EXPECT_GT(mean, previous_mean);  // CM1 < CM2 < CM3 < CM4
    previous_mean = mean;
  }
}

// --------------------------------------------------------- ChannelCache ----

TEST(ChannelCache, DedupsByKeyAndCountsDraws) {
  ChannelCache cache;
  const auto a = cache.get(channel::cm3(), 11, 6);
  const auto b = cache.get(channel::cm3(), 11, 6);
  EXPECT_EQ(a.get(), b.get());  // one shared ensemble, not a copy

  const auto c = cache.get(channel::cm3(), 12, 6);
  EXPECT_NE(a.get(), c.get());

  const ChannelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.generated, 2u);
  EXPECT_EQ(stats.disk_loads, 0u);
  EXPECT_EQ(stats.sv_draws, 12u);  // 6 per generated ensemble, 0 for the hit

  cache.clear();
  EXPECT_EQ(cache.stats().generated, 0u);
}

// --------------------------------------------------------- binary store ----

TEST(CirStore, RoundTripsBitExactAndRewritesIdentically) {
  const std::string dir = "test_results/channels";
  std::filesystem::remove_all(dir);
  const ChannelEnsemble ensemble = make_ensemble(channel::cm4(), 0xD15C, 5);

  const std::string stem = io::save_ensemble(ensemble, dir);
  ASSERT_TRUE(io::ensemble_exists(dir, ensemble.params, ensemble.key));
  const ChannelEnsemble loaded = io::load_ensemble(dir, ensemble.params, ensemble.key);
  expect_ensembles_identical(ensemble, loaded);

  // Deterministic content + formatting: rewriting produces the same bytes.
  const std::string cir_bytes = slurp(stem + ".cir");
  const std::string sidecar_bytes = slurp(stem + ".json");
  ASSERT_FALSE(cir_bytes.empty());
  (void)io::save_ensemble(ensemble, dir);
  EXPECT_EQ(slurp(stem + ".cir"), cir_bytes);
  EXPECT_EQ(slurp(stem + ".json"), sidecar_bytes);
}

TEST(CirStore, CacheServesFromDiskWithoutDrawing) {
  const std::string dir = "test_results/channels_disk";
  std::filesystem::remove_all(dir);
  const ChannelEnsemble ensemble = make_ensemble(channel::cm2(), 0xFEED, 4);
  (void)io::save_ensemble(ensemble, dir);

  ChannelCache cache;
  cache.set_directory(dir);
  const auto loaded = cache.get(channel::cm2(), 0xFEED, 4);
  expect_ensembles_identical(ensemble, *loaded);
  EXPECT_EQ(cache.stats().disk_loads, 1u);
  EXPECT_EQ(cache.stats().sv_draws, 0u);  // no generation happened

  // A key not in the store falls back to generation.
  (void)cache.get(channel::cm2(), 0xFEED + 1, 4);
  EXPECT_EQ(cache.stats().generated, 1u);
}

TEST(CirStore, RejectsTamperedSidecarAndTruncatedBody) {
  const std::string dir = "test_results/channels_bad";
  std::filesystem::remove_all(dir);
  const ChannelEnsemble ensemble = make_ensemble(channel::cm1(), 0xBAD, 3);
  const std::string stem = io::save_ensemble(ensemble, dir);

  // Unknown sidecar key: loud.
  std::string sidecar = slurp(stem + ".json");
  {
    std::ofstream out(stem + ".json", std::ios::binary | std::ios::trunc);
    out << sidecar.substr(0, sidecar.rfind('}')) << ", \"extra\": 1}\n";
  }
  EXPECT_THROW((void)io::load_ensemble(dir, ensemble.params, ensemble.key), InvalidArgument);
  {
    std::ofstream out(stem + ".json", std::ios::binary | std::ios::trunc);
    out << sidecar;
  }

  // Non-hex fingerprint: loud (InvalidArgument, not std::invalid_argument).
  {
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(ensemble.key.fingerprint));
    std::string corrupt = sidecar;
    corrupt.replace(corrupt.find(hex), 16, "not-a-fingerprint");
    std::ofstream out(stem + ".json", std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  EXPECT_THROW((void)io::load_ensemble(dir, ensemble.params, ensemble.key), InvalidArgument);
  {
    std::ofstream out(stem + ".json", std::ios::binary | std::ios::trunc);
    out << sidecar;
  }

  // Truncated realizations: loud.
  const std::string cir_bytes = slurp(stem + ".cir");
  {
    std::ofstream out(stem + ".cir", std::ios::binary | std::ios::trunc);
    out << cir_bytes.substr(0, cir_bytes.size() - 7);
  }
  EXPECT_THROW((void)io::load_ensemble(dir, ensemble.params, ensemble.key), InvalidArgument);

  // A flipped tap-count word: rejected as truncated, not a huge allocation.
  {
    std::string corrupt = cir_bytes;
    // First tap count sits right after the 8-byte magic + 24-byte header.
    corrupt[32] = '\xff';
    corrupt[39] = '\x7f';
    std::ofstream out(stem + ".cir", std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  EXPECT_THROW((void)io::load_ensemble(dir, ensemble.params, ensemble.key), InvalidArgument);
}

// -------------------------------------------------- ensemble-mode trials ----

TEST(EnsembleTrials, LinkDemandsResolvedRealization) {
  txrx::LinkSpec spec = txrx::LinkSpec::for_gen2(sim::gen2_fast());
  spec.options.cm = 2;
  spec.options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
  spec.options.channel_source.ensemble_count = 4;
  const auto link = txrx::make_link(spec, 1);

  Rng rng(2);
  // No TrialContext realization: loud (silently drawing fresh would run a
  // different experiment than the spec describes).
  EXPECT_THROW((void)link->run_packet(spec.options, rng), InvalidArgument);

  const ChannelEnsemble ensemble = make_ensemble(
      channel::cm2(), spec.options.channel_source.ensemble_seed, 4);
  txrx::TrialContext context;
  context.channel = &ensemble.realization_for_trial(0);
  const txrx::TrialResult trial = link->run_packet(spec.options, rng, context);
  EXPECT_GT(trial.bits, 0u);

  // The inverse mismatch is equally loud: a resolved realization alongside
  // fresh-mode options is a half-configured experiment, not a fallback.
  txrx::TrialOptions fresh = spec.options;
  fresh.channel_source = txrx::ChannelSource{};
  EXPECT_THROW((void)link->run_packet(fresh, rng, context), InvalidArgument);
}

TEST(EnsembleTrials, ZeroCountEnsembleSpecIsRejected) {
  txrx::LinkSpec spec = txrx::LinkSpec::for_gen2(sim::gen2_fast());
  spec.options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
  spec.options.channel_source.ensemble_count = 0;
  EXPECT_THROW(txrx::validate_spec(spec), InvalidArgument);
}

// ------------------------------------------------- ensemble-mode sweeps ----

/// A small two-point CM1 scenario in ensemble mode (one channel group
/// across two Eb/N0 points).
ScenarioSpec ensemble_scenario(std::size_t count) {
  txrx::TrialOptions options;
  options.payload_bits = 64;
  options.genie_timing = true;
  options.cm = 1;
  options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
  options.channel_source.ensemble_count = count;
  Gen2ScenarioBuilder builder("ensemble_tiny", sim::gen2_fast(), options);
  builder.ebn0_grid({6.0, 10.0});
  return builder.build();
}

sim::BerStop tiny_stop() {
  sim::BerStop stop;
  stop.min_errors = 8;
  stop.max_bits = 1500;
  stop.max_trials = 25;
  return stop;
}

TEST(EnsembleSweep, ByteIdenticalAcrossWorkerCountsAndOneEnsemblePerGroup) {
  const ScenarioSpec scenario = ensemble_scenario(4);

  std::string bytes[2];
  const std::size_t worker_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    ChannelCache cache;
    SweepConfig config;
    config.seed = 0xE45E;
    config.workers = worker_counts[i];
    config.stop = tiny_stop();
    config.channel_cache = &cache;
    const std::string path =
        "test_results/ensemble_w" + std::to_string(worker_counts[i]) + ".json";
    JsonSink json(path);
    (void)SweepEngine(config).run(scenario, {&json});
    bytes[i] = slurp(path);

    // Both Eb/N0 points share the CM1 group's single 4-draw ensemble.
    EXPECT_EQ(cache.stats().generated, 1u);
    EXPECT_EQ(cache.stats().sv_draws, 4u);
    EXPECT_EQ(cache.stats().hits, 1u);
  }
  ASSERT_FALSE(bytes[0].empty());
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(EnsembleSweep, ShardsReproduceTheUnshardedPoints) {
  const ScenarioSpec scenario = ensemble_scenario(3);
  SweepConfig base;
  base.seed = 0x51ADE;
  base.workers = 2;
  base.stop = tiny_stop();

  ChannelCache full_cache;
  base.channel_cache = &full_cache;
  const SweepResult full = SweepEngine(base).run(scenario);
  ASSERT_EQ(full.records.size(), 2u);

  for (std::size_t shard = 0; shard < 2; ++shard) {
    ChannelCache shard_cache;  // a shard resolves its own ensemble copy...
    SweepConfig config = base;
    config.channel_cache = &shard_cache;
    config.shard_index = shard;
    config.shard_count = 2;
    const SweepResult part = SweepEngine(config).run(scenario);
    ASSERT_EQ(part.records.size(), 1u);
    EXPECT_EQ(part.records[0].index, full.records[shard].index);
    // ...and still lands on the unsharded numbers bit for bit.
    EXPECT_EQ(part.records[0].ber.ber, full.records[shard].ber.ber);
    EXPECT_EQ(part.records[0].ber.errors, full.records[shard].ber.errors);
    EXPECT_EQ(part.records[0].ber.bits, full.records[shard].ber.bits);
    EXPECT_EQ(part.records[0].ber.trials, full.records[shard].ber.trials);
  }
}

TEST(EnsembleSweep, DiskBackedRunMatchesInMemoryRun) {
  const std::string dir = "test_results/channels_sweep";
  std::filesystem::remove_all(dir);
  const ScenarioSpec scenario = ensemble_scenario(4);

  // Precompute the group's ensemble the way `uwb_sweep precompute` does.
  const channel::SvParams params = txrx::ensemble_sv_params(1, txrx::Generation::kGen2);
  const txrx::ChannelSource& source = scenario.points[0].link.options.channel_source;
  (void)io::save_ensemble(make_ensemble(params, source.ensemble_seed, 4), dir);

  std::string bytes[2];
  for (int pass = 0; pass < 2; ++pass) {
    ChannelCache cache;
    if (pass == 1) cache.set_directory(dir);
    SweepConfig config;
    config.seed = 0xD15C0;
    config.workers = 2;
    config.stop = tiny_stop();
    config.channel_cache = &cache;
    const std::string path = "test_results/ensemble_disk_" + std::to_string(pass) + ".json";
    JsonSink json(path);
    (void)SweepEngine(config).run(scenario, {&json});
    bytes[pass] = slurp(path);
    EXPECT_EQ(cache.stats().disk_loads, pass == 1 ? 1u : 0u);
    EXPECT_EQ(cache.stats().sv_draws, pass == 1 ? 0u : 4u);
  }
  ASSERT_FALSE(bytes[0].empty());
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(EnsembleSweep, FreshAndEnsembleModesDiffer) {
  // Sharing channels is a *different* (deliberate) experiment: the same
  // seed in fresh mode must not reproduce ensemble-mode numbers, otherwise
  // the ensemble plumbing is silently inert.
  ScenarioSpec ensemble = ensemble_scenario(2);
  ScenarioSpec fresh = ensemble;
  for (PointSpec& point : fresh.points) {
    point.link.options.channel_source = txrx::ChannelSource{};
  }
  SweepConfig config;
  config.seed = 0xD1FF;
  config.workers = 2;
  config.stop = tiny_stop();
  ChannelCache cache;
  config.channel_cache = &cache;
  const SweepResult a = SweepEngine(config).run(ensemble);
  const SweepResult b = SweepEngine(config).run(fresh);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    any_difference = any_difference || a.records[i].ber.errors != b.records[i].ber.errors ||
                     a.records[i].ber.bits != b.records[i].ber.bits;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace uwb::engine
