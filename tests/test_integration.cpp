// End-to-end integration tests: whole-link behaviours the paper's
// architecture promises -- BER near theory on AWGN, RAKE/MLSE gains under
// multipath, spectral monitor + notch against interferers, acquisition.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "sim/ber_simulator.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace uwb {
namespace {

using sim::BerPoint;
using sim::BerStop;
using sim::TrialOutcome;
using txrx::Gen2Link;
using txrx::TrialOptions;

BerPoint run_gen2(Gen2Link& link, const txrx::TrialOptions& options, std::size_t min_errors = 30,
                  std::size_t max_bits = 120000) {
  BerStop stop;
  stop.min_errors = min_errors;
  stop.max_bits = max_bits;
  stop.max_trials = 2000;
  return sim::measure_ber(
      [&]() {
        const auto trial = link.run_packet(options);
        return TrialOutcome{trial.bits, trial.errors};
      },
      stop);
}

TEST(Integration, Gen2AwgnBerTracksTheoryWithin2dB) {
  // The full receive chain (front end, 5-bit SARs, estimation, RAKE) should
  // sit within ~2 dB of textbook BPSK on a clean AWGN channel.
  Gen2Link link(sim::gen2_fast(), 0x1001);
  txrx::TrialOptions options;
  options.payload_bits = 400;
  options.cm = 0;
  options.ebn0_db = 7.0;
  const BerPoint point = run_gen2(link, options);
  const double theory = bpsk_awgn_ber(from_db(7.0));
  const double theory_minus2db = bpsk_awgn_ber(from_db(5.0));
  EXPECT_GT(point.ber, 0.2 * theory);            // not mysteriously optimistic
  EXPECT_LT(point.ber, 1.2 * theory_minus2db);   // at most ~2 dB implementation loss
}

TEST(Integration, Gen2BerImprovesWithEbn0) {
  Gen2Link link(sim::gen2_fast(), 0x1002);
  txrx::TrialOptions options;
  options.payload_bits = 400;
  options.cm = 0;
  double prev = 1.0;
  for (double ebn0 : {2.0, 5.0, 8.0}) {
    options.ebn0_db = ebn0;
    const BerPoint point = run_gen2(link, options, 25, 80000);
    EXPECT_LT(point.ber, prev) << "Eb/N0=" << ebn0;
    prev = point.ber;
  }
}

TEST(Integration, RakeBeatsSingleFingerUnderMultipath) {
  txrx::Gen2Config rake_config = sim::gen2_fast();
  rake_config.use_mlse = false;
  rake_config.rake.num_fingers = 8;
  txrx::Gen2Config mf_config = rake_config;
  mf_config.use_rake = false;

  txrx::TrialOptions options;
  options.payload_bits = 300;
  options.cm = 2;
  options.ebn0_db = 12.0;

  Gen2Link rake_link(rake_config, 0x2001);
  Gen2Link mf_link(mf_config, 0x2001);  // same seed: same channels
  // The 20% margin needs a real error budget: at ~25 errors the two BER
  // estimates are noisy enough that an unlucky channel draw can close the
  // gap (the asymptotic RAKE advantage here is ~3-4x).
  const BerPoint with_rake = run_gen2(rake_link, options, 120, 500000);
  const BerPoint without = run_gen2(mf_link, options, 120, 500000);
  EXPECT_LT(with_rake.ber, without.ber * 0.8)
      << "rake=" << with_rake.ber << " single=" << without.ber;
}

TEST(Integration, MlseHelpsOnDispersiveChannel) {
  // CM3/CM4-like delay spreads put ISI into a 100 Mbps stream; the Viterbi
  // demodulator should beat RAKE-only.
  txrx::Gen2Config mlse_config = sim::gen2_fast();
  mlse_config.use_mlse = true;
  mlse_config.mlse.memory = 3;
  txrx::Gen2Config rake_config = mlse_config;
  rake_config.use_mlse = false;

  txrx::TrialOptions options;
  options.payload_bits = 300;
  options.cm = 3;
  options.ebn0_db = 14.0;

  Gen2Link mlse_link(mlse_config, 0x3001);
  Gen2Link rake_link(rake_config, 0x3001);
  const BerPoint with_mlse = run_gen2(mlse_link, options, 30, 100000);
  const BerPoint rake_only = run_gen2(rake_link, options, 30, 100000);
  EXPECT_LT(with_mlse.ber, rake_only.ber)
      << "mlse=" << with_mlse.ber << " rake=" << rake_only.ber;
}

TEST(Integration, InterfererHurtsAndNotchRecovers) {
  txrx::Gen2Config config = sim::gen2_fast();
  txrx::TrialOptions clean;
  clean.payload_bits = 300;
  clean.cm = 0;
  clean.ebn0_db = 10.0;

  txrx::TrialOptions jammed = clean;
  jammed.interferer = true;
  jammed.interferer_sir_db = -15.0;  // interferer 15 dB above the signal
  jammed.interferer_freq_hz = 120e6;

  txrx::TrialOptions notched = jammed;
  notched.auto_notch = true;

  Gen2Link link_clean(config, 0x4001);
  Gen2Link link_jam(config, 0x4001);
  Gen2Link link_notch(config, 0x4001);
  const BerPoint p_clean = run_gen2(link_clean, clean, 20, 60000);
  const BerPoint p_jam = run_gen2(link_jam, jammed, 20, 60000);
  const BerPoint p_notch = run_gen2(link_notch, notched, 20, 60000);

  EXPECT_GT(p_jam.ber, 5.0 * std::max(p_clean.ber, 1e-5));
  EXPECT_LT(p_notch.ber, p_jam.ber * 0.5)
      << "clean=" << p_clean.ber << " jam=" << p_jam.ber << " notch=" << p_notch.ber;
}

TEST(Integration, SpectralMonitorReportsFrequency) {
  txrx::Gen2Config config = sim::gen2_fast();
  Gen2Link link(config, 0x5001);
  txrx::TrialOptions options;
  options.payload_bits = 200;
  options.ebn0_db = 12.0;
  options.interferer = true;
  options.interferer_sir_db = -12.0;
  options.interferer_freq_hz = 150e6;
  const auto trial = link.run_packet_full(options);
  EXPECT_TRUE(trial.rx.interferer.detected);
  EXPECT_NEAR(trial.rx.interferer.frequency_hz, 150e6, 8e6);
}

TEST(Integration, ChannelEstimatePrecisionMatters) {
  // 1-bit channel taps must do worse than 4-bit taps on multipath (the
  // paper's 4-bit estimation choice).
  txrx::Gen2Config coarse = sim::gen2_fast();
  coarse.chanest.quantization_bits = 1;
  txrx::Gen2Config four = sim::gen2_fast();
  four.chanest.quantization_bits = 4;

  txrx::TrialOptions options;
  options.payload_bits = 300;
  options.cm = 2;
  options.ebn0_db = 12.0;

  Gen2Link link_coarse(coarse, 0x6001);
  Gen2Link link_four(four, 0x6001);
  const BerPoint p1 = run_gen2(link_coarse, options, 25, 80000);
  const BerPoint p4 = run_gen2(link_four, options, 25, 80000);
  EXPECT_LT(p4.ber, p1.ber) << "4-bit=" << p4.ber << " 1-bit=" << p1.ber;
}

TEST(Integration, Gen1LinkAt193kbps) {
  txrx::Gen1Config config = sim::gen1_fast();
  txrx::Gen1Link link(config, 0x7001);
  txrx::TrialOptions options;
  options.payload_bits = 24;
  options.genie_timing = true;
  options.ebn0_db = 10.0;

  std::size_t bits = 0, errors = 0;
  for (int p = 0; p < 8; ++p) {
    const auto trial = link.run_packet(options);
    bits += trial.bits;
    errors += trial.errors;
  }
  // 16-pulse spreading gives large processing gain; at 10 dB the link is
  // essentially clean.
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(bits), 0.01);
}

TEST(Integration, Gen1SyncUnder70us) {
  txrx::Gen1Config config = sim::gen1_nominal();
  txrx::Gen1Link link(config, 0x8001);
  txrx::TrialOptions options;
  options.payload_bits = 8;
  options.ebn0_db = 18.0;
  options.genie_timing = false;

  int correct = 0;
  double worst_time = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const auto trial = link.run_acquisition(options);
    if (trial.timing_correct) ++correct;
    worst_time = std::max(worst_time, trial.acq.sync_time_s);
  }
  EXPECT_GE(correct, trials - 1);  // allow one miss at moderate SNR
  EXPECT_LT(worst_time, 70e-6);    // the paper's headline claim
}

TEST(Integration, AcquisitionParallelismControlsSyncTime) {
  txrx::Gen1Config fast = sim::gen1_nominal();
  fast.acq_parallelism_stage1 = 64;
  txrx::Gen1Config slow = fast;
  slow.acq_parallelism_stage1 = 8;

  txrx::Gen1Link link_fast(fast, 0x9001);
  txrx::Gen1Link link_slow(slow, 0x9001);
  txrx::TrialOptions options;
  options.payload_bits = 8;
  options.ebn0_db = 18.0;
  options.genie_timing = false;

  const auto fast_trial = link_fast.run_acquisition(options);
  const auto slow_trial = link_slow.run_acquisition(options);
  EXPECT_LT(fast_trial.acq.sync_time_s, slow_trial.acq.sync_time_s);
}

TEST(Integration, ModulationSchemesRankCorrectlyOnAwgn) {
  // BPSK < OOK ~ PPM in BER at the same Eb/N0 (3 dB antipodal gain).
  txrx::TrialOptions options;
  options.payload_bits = 400;
  options.cm = 0;
  options.ebn0_db = 8.0;

  auto ber_of = [&](phy::Modulation m, uint64_t seed) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.modulation = m;
    config.use_mlse = false;
    Gen2Link link(config, seed);
    return run_gen2(link, options, 25, 80000).ber;
  };
  const double bpsk = ber_of(phy::Modulation::kBpsk, 0xA001);
  const double ook = ber_of(phy::Modulation::kOok, 0xA001);
  EXPECT_LT(bpsk, ook) << "bpsk=" << bpsk << " ook=" << ook;
}

}  // namespace
}  // namespace uwb
