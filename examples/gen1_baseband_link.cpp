// Generation-1 demo (paper Section 2, Fig. 1): the single-chip baseband
// pulsed UWB transceiver. Shows the 193 kbps link closing over AWGN and the
// parallelized two-stage acquisition locking in under 70 us.

#include <cstdio>

#include "sim/scenario.h"
#include "txrx/link.h"

int main() {
  using namespace uwb;

  txrx::Gen1Config config = sim::gen1_nominal();
  std::printf("Gen-1 baseband pulsed UWB transceiver\n");
  std::printf("-------------------------------------\n");
  std::printf("PRF                : %.4f MHz (2 GSps / %zu samples per frame)\n",
              config.prf_hz() / 1e6, config.frame_samples_adc);
  std::printf("pulses per bit     : %d (PN polarity spreading)\n", config.pulses_per_bit);
  std::printf("bit rate           : %.1f kbps (paper: 193 kbps demonstrated)\n",
              config.bit_rate_hz() / 1e3);
  std::printf("ADC                : %d-way interleaved %d-bit flash @ %.0f GSps\n",
              config.adc_lanes, config.adc_bits, config.adc_rate / 1e9);

  // --- Acquisition: pulse-level PN preamble, massively parallel search ----
  txrx::Gen1Link link(config, /*seed=*/7);
  txrx::TrialOptions options;
  options.ebn0_db = 18.0;
  options.payload_bits = 16;
  options.genie_timing = false;

  std::printf("\nAcquisition (P1 = %zu sample-phase correlators, P2 = %zu code-phase):\n",
              config.acq_parallelism_stage1, config.acq_parallelism_stage2);
  for (int t = 0; t < 3; ++t) {
    const auto trial = link.run_acquisition(options);
    std::printf("  trial %d: %s, metric %.2f, sync time %.1f us (budget: < 70 us)\n", t,
                trial.timing_correct ? "locked on the true timing" : "missed",
                trial.acq.stage2_metric, trial.acq.sync_time_s * 1e6);
  }

  // --- Data transfer at 193 kbps ------------------------------------------
  std::printf("\nLink at %.0f kbps, Eb/N0 = 12 dB:\n", config.bit_rate_hz() / 1e3);
  txrx::TrialOptions data_options;
  data_options.ebn0_db = 12.0;
  data_options.payload_bits = 64;
  data_options.genie_timing = true;
  std::size_t bits = 0, errors = 0;
  for (int p = 0; p < 4; ++p) {
    const auto trial = link.run_packet(data_options);
    bits += trial.bits;
    errors += trial.errors;
  }
  std::printf("  %zu bits transferred, %zu errors\n", bits, errors);
  return 0;
}
