// Pulse gallery (paper Fig. 4): synthesizes the "500 MHz pulse with carrier
// 5 GHz" at real passband, measures its bandwidth and duration, checks the
// FCC mask, and renders an ASCII oscillogram like the paper's figure.

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "dsp/power_spectrum.h"
#include "pulse/band_plan.h"
#include "pulse/pulse_shape.h"
#include "pulse/spectral_mask.h"
#include "rf/mixer.h"

int main() {
  using namespace uwb;

  const double rf_fs = 40e9;  // passband synthesis rate

  // The Fig. 4 pulse: 500 MHz-wide RRC envelope on a ~5 GHz carrier.
  const pulse::BandPlan plan;
  const int channel = plan.nearest_channel(5e9);
  const double fc = plan.center_frequency(channel);

  pulse::PulseSpec spec;
  spec.shape = pulse::PulseShape::kRootRaisedCos;
  spec.bandwidth_hz = 500e6;
  spec.sample_rate_hz = rf_fs;
  const RealWaveform envelope = pulse::make_pulse(spec);

  CplxVec bb(envelope.size());
  for (std::size_t i = 0; i < envelope.size(); ++i) bb[i] = cplx(envelope[i], 0.0);
  const rf::Upconverter up(fc, rf_fs);
  RealWaveform burst = up.process(CplxWaveform(bb, rf_fs));
  burst.scale(0.15);  // the paper's scope shows ~+/-150 mV

  std::printf("Fig. 4 reproduction: %0.f MHz pulse on channel %d (%.3f GHz carrier)\n",
              spec.bandwidth_hz / 1e6, channel, fc / 1e9);
  std::printf("pulse duration (1%% envelope): %.2f ns\n",
              pulse::pulse_duration(envelope, 0.01) * 1e9);

  // ASCII oscillogram, paper-style: ~4.6 ns visible span.
  const double span_s = 4.64e-9;
  const auto span_n = static_cast<std::size_t>(span_s * rf_fs);
  const std::size_t start = burst.size() / 2 - span_n / 2;
  const int rows = 21, cols = 72;
  std::string canvas(static_cast<std::size_t>(rows * cols), ' ');
  for (int c = 0; c < cols; ++c) {
    const std::size_t idx = start + static_cast<std::size_t>(c) * span_n / cols;
    const double v = burst[idx] / 0.15;  // normalize to +/-1
    int r = static_cast<int>((1.0 - v) * (rows - 1) / 2.0);
    r = std::max(0, std::min(rows - 1, r));
    canvas[static_cast<std::size_t>(r * cols + c)] = '*';
  }
  std::printf("\n+150 mV\n");
  for (int r = 0; r < rows; ++r) {
    std::fwrite(canvas.data() + r * cols, 1, static_cast<std::size_t>(cols), stdout);
    std::printf("\n");
  }
  std::printf("-150 mV   (span %.2f ns, %.0f ps/div over 8 divisions)\n\n", span_s * 1e9,
              span_s / 8 * 1e12);

  // Spectrum + FCC mask check on a pulse train.
  RealWaveform train(1 << 16, rf_fs);
  Rng rng(1);
  for (std::size_t pos = 0; pos + burst.size() < train.size(); pos += 800) {
    RealWaveform copy = burst;
    copy.scale(rng.sign());
    train.add(copy, pos);
  }
  const dsp::Psd psd = dsp::welch_psd(train, 8192);
  std::printf("measured -10 dB bandwidth : %.0f MHz (target 500)\n",
              dsp::bandwidth_at_level(psd, -10.0) / 1e6);
  std::printf("occupied (99%%) bandwidth  : %.0f MHz\n", dsp::occupied_bandwidth(psd) / 1e6);

  const auto mask = pulse::fcc_indoor_mask();
  pulse::MaskReport report = pulse::check_mask(psd, mask);
  std::printf("FCC mask margin           : %.1f dB at %.2f GHz -> %s\n", report.worst_margin_db,
              report.worst_freq_hz / 1e9, report.compliant ? "compliant" : "VIOLATION");
  if (!report.compliant) {
    const double scale = pulse::max_power_scale(psd, mask);
    std::printf("scaling power by %.2e would meet the mask exactly\n", scale);
  }
  return 0;
}
