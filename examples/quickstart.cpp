// Quickstart: send one packet through the generation-2 direct-conversion
// transceiver over a CM1 multipath channel and inspect what the receiver
// recovered.
//
//   TX bits -> RRC pulses (BPSK, 100 MHz PRF) -> 802.15.3a CM1 channel
//   -> AWGN -> direct-conversion front end -> 2x 5-bit SAR ADC -> digital
//   back end (acquisition, 4-bit channel estimation, RAKE, Viterbi/MLSE).

#include <cstdio>

#include "sim/scenario.h"
#include "txrx/link.h"

int main() {
  using namespace uwb;

  // The paper-nominal gen-2 configuration: 100 Mbps, 500 MHz pulses,
  // dual 5-bit SARs, 4-bit channel estimate, programmable RAKE + MLSE.
  txrx::Gen2Config config = sim::gen2_nominal();

  // A link bundles transmitter, receiver (with its static component
  // mismatch drawn once) and a seeded RNG: everything is reproducible.
  txrx::Gen2Link link(config, /*seed=*/42);

  txrx::TrialOptions options;
  options.payload_bits = 256;
  options.cm = 1;          // 802.15.3a CM1: 0-4 m line of sight
  options.ebn0_db = 14.0;  // comfortable operating point

  const txrx::Gen2TrialResult trial = link.run_packet_full(options);

  std::printf("Gen-2 UWB quickstart (paper: Blazquez et al., DATE 2005)\n");
  std::printf("--------------------------------------------------------\n");
  std::printf("bit rate             : %.0f Mbps\n", config.bit_rate_hz() / 1e6);
  std::printf("channel model        : CM1, rms delay spread %.1f ns\n",
              trial.true_channel.rms_delay_spread() * 1e9);
  std::printf("Eb/N0                : %.1f dB\n", options.ebn0_db);
  std::printf("acquired             : %s\n", trial.rx.acquired ? "yes" : "no");
  std::printf("timing offset        : %zu samples @ 1 GSps\n", trial.rx.timing_offset);
  std::printf("estimated CIR taps   : %zu (4-bit quantized)\n",
              trial.rx.channel_estimate.num_taps());
  std::printf("RAKE energy capture  : %.0f%%\n", 100.0 * trial.rx.rake_energy_capture);
  std::printf("SNR estimate         : %.1f dB\n", trial.rx.snr_estimate_db);
  std::printf("bit errors           : %zu / %zu\n", trial.errors, trial.bits);
  return trial.rx.acquired ? 0 : 1;
}
