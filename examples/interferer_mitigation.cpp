// Spectral monitoring + notch demo (paper Section 3): "The digital back end
// detects the presence of an interferer and estimates its frequency that
// may be used in the front end notch filter."
//
// A CW jammer 15 dB above the UWB signal lands in-band; the monitor finds
// it, the receiver re-tunes its RF notch, and the link recovers.

#include <cstdio>

#include "sim/ber_simulator.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace {

uwb::sim::BerPoint measure(uwb::txrx::Gen2Link& link, const uwb::txrx::TrialOptions& options) {
  uwb::sim::BerStop stop;
  stop.min_errors = 25;
  stop.max_bits = 50000;
  return uwb::sim::measure_ber(
      [&]() {
        const auto trial = link.run_packet(options);
        return uwb::sim::TrialOutcome{trial.bits, trial.errors, {}};
      },
      stop);
}

}  // namespace

int main() {
  using namespace uwb;

  txrx::Gen2Config config = sim::gen2_fast();

  txrx::TrialOptions clean;
  clean.payload_bits = 300;
  clean.ebn0_db = 10.0;

  txrx::TrialOptions jammed = clean;
  jammed.interferer = true;
  jammed.interferer_sir_db = -15.0;   // jammer 15 dB ABOVE the signal
  jammed.interferer_freq_hz = 130e6;  // offset from the channel center

  txrx::TrialOptions defended = jammed;
  defended.auto_notch = true;         // monitor drives the RF notch

  std::printf("Narrowband interferer mitigation (SIR = %.0f dB, offset %.0f MHz)\n",
              jammed.interferer_sir_db, jammed.interferer_freq_hz / 1e6);
  std::printf("----------------------------------------------------------------\n");

  txrx::Gen2Link link_a(config, 0xA0);
  const auto p_clean = measure(link_a, clean);
  std::printf("no interferer          : BER %.2e\n", p_clean.ber);

  txrx::Gen2Link link_b(config, 0xA0);
  const auto p_jam = measure(link_b, jammed);
  std::printf("interferer, no defense : BER %.2e\n", p_jam.ber);

  txrx::Gen2Link link_c(config, 0xA0);
  const auto p_def = measure(link_c, defended);
  std::printf("interferer + notch     : BER %.2e\n", p_def.ber);

  // Show one packet's monitor report.
  txrx::Gen2Link probe(config, 0xA1);
  const auto trial = probe.run_packet_full(defended);
  std::printf("\nmonitor report: detected=%s, f = %.1f MHz (true 130.0), peak/median %.1f dB, "
              "notch %s\n",
              trial.rx.interferer.detected ? "yes" : "no",
              trial.rx.interferer.frequency_hz / 1e6, trial.rx.interferer.peak_over_median_db,
              trial.rx.notch_applied ? "engaged" : "off");
  return 0;
}
