// Modulation comparison (paper Section 3): the discrete prototype "is also
// flexible enough to generate all kinds of signals within a bandwidth of
// 500 MHz, allowing the comparison between different modulation schemes."
// This example plays that role: the same pulse engine carries BPSK, OOK,
// binary PPM and 4-PAM, and we compare measured BER against theory.

#include <cstdio>

#include "common/math_utils.h"
#include "sim/ber_simulator.h"
#include "sim/scenario.h"
#include "sim/table.h"
#include "txrx/link.h"

int main() {
  using namespace uwb;

  const double ebn0_db = 9.0;
  const double ebn0 = from_db(ebn0_db);

  sim::Table table({"scheme", "bits/sym", "measured BER", "theory BER", "notes"});

  struct Row {
    phy::Modulation scheme;
    double theory;
    const char* notes;
  };
  const Row rows[] = {
      {phy::Modulation::kBpsk, bpsk_awgn_ber(ebn0), "antipodal reference"},
      {phy::Modulation::kOok, ook_awgn_ber(ebn0), "3 dB from BPSK"},
      {phy::Modulation::kPpm, ppm_awgn_ber(ebn0), "orthogonal positions"},
      {phy::Modulation::kPam4, pam4_awgn_ber(ebn0), "2 bits/symbol"},
  };

  for (const auto& row : rows) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.modulation = row.scheme;
    config.use_mlse = false;  // plain correlator demod for a fair comparison

    txrx::Gen2Link link(config, 0xD15C);
    txrx::TrialOptions options;
    options.payload_bits = 400;
    options.ebn0_db = ebn0_db;

    sim::BerStop stop;
    stop.min_errors = 40;
    stop.max_bits = 150000;
    const sim::BerPoint point = sim::measure_ber(
        [&]() {
          const auto trial = link.run_packet(options);
          return sim::TrialOutcome{trial.bits, trial.errors, {}};
        },
        stop);

    const auto mod = phy::make_modulator(row.scheme, config.prf_hz);
    table.add_row({to_string(row.scheme), sim::Table::integer(mod->bits_per_symbol()),
                   sim::Table::sci(point.ber), sim::Table::sci(row.theory), row.notes});
  }

  std::printf("Modulation comparison on the gen-2 pulse engine, Eb/N0 = %.0f dB (AWGN)\n\n%s",
              ebn0_db, table.to_string().c_str());
  std::printf("\nAll schemes ride the same 500 MHz RRC pulse at 100 MHz PRF -- exactly the\n"
              "flexibility the paper's discrete prototype provides.\n");
  return 0;
}
