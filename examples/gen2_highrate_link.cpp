// Generation-2 demo (paper Section 3, Fig. 3): the 3.1-10.6 GHz direct
// conversion transceiver at 100 Mbps. Exercises channel hopping across the
// 14-channel band plan and shows how the programmable back end (RAKE
// fingers, MLSE states) trades BER against multipath severity.

#include <cstdio>

#include "pulse/band_plan.h"
#include "sim/ber_simulator.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace {

uwb::sim::BerPoint measure(uwb::txrx::Gen2Link& link, const uwb::txrx::TrialOptions& options) {
  uwb::sim::BerStop stop;
  stop.min_errors = 20;
  stop.max_bits = 40000;
  return uwb::sim::measure_ber(
      [&]() {
        const auto trial = link.run_packet(options);
        return uwb::sim::TrialOutcome{trial.bits, trial.errors, {}};
      },
      stop);
}

}  // namespace

int main() {
  using namespace uwb;

  // --- Band plan: 14 channels of 500 MHz across 3.1-10.6 GHz ---------------
  const pulse::BandPlan plan;
  std::printf("Gen-2 band plan (%zu channels):\n", plan.num_channels());
  for (const auto& ch : plan.channels()) {
    std::printf("  ch %2d: %5.3f - %6.3f GHz (center %5.3f GHz)\n", ch.index, ch.low_hz / 1e9,
                ch.high_hz / 1e9, ch.center_hz / 1e9);
  }

  // --- Channel hopping: the synthesizer pays a settle time per hop ---------
  txrx::Gen2Config config = sim::gen2_fast();
  Rng rng(3);
  txrx::Gen2Receiver receiver(config, rng);
  // (hopping is controlled through the front end inside the receiver; the
  // synthesizer cost is modeled by rf::Synthesizer::tune)
  rf::FrontEnd fe(config.front_end, plan);
  double hop_cost = 0.0;
  for (int ch : {0, 7, 13, 4}) {
    hop_cost += fe.tune(ch);
  }
  std::printf("\n4 hops cost %.1f us of synthesizer settling\n", hop_cost * 1e6);

  // --- 100 Mbps under increasing multipath severity ------------------------
  std::printf("\nBER at 100 Mbps, Eb/N0 = 14 dB, RAKE(8) + MLSE(8 states):\n");
  for (int cm = 0; cm <= 4; ++cm) {
    txrx::Gen2Link link(config, 0x51000 + static_cast<uint64_t>(cm));
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = cm;
    options.ebn0_db = 14.0;
    const auto point = measure(link, options);
    std::printf("  %s : BER %.2e  (%zu bits)\n",
                cm == 0 ? "AWGN" : ("CM" + std::to_string(cm)).c_str(), point.ber, point.bits);
  }

  std::printf("\nReconfiguring the back end (paper: power/QoS/data-rate trade-off):\n");
  for (std::size_t fingers : {2u, 8u, 16u}) {
    txrx::Gen2Config cfg = config;
    cfg.rake.num_fingers = fingers;
    txrx::Gen2Link link(cfg, 0x52000);
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 3;
    options.ebn0_db = 14.0;
    const auto point = measure(link, options);
    std::printf("  %2zu RAKE fingers: BER %.2e\n", fingers, point.ber);
  }
  return 0;
}
