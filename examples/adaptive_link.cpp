// Adaptive reconfiguration demo (paper Section 3, closing paragraph): the
// receiver trades power against QoS "adapting to channel conditions". The
// LinkAdapter watches each packet's diagnostics and walks the back-end
// configuration ladder as the environment changes from a benign LOS
// channel to severe NLOS multipath and back.

#include <cstdio>

#include "sim/adaptive.h"
#include "sim/scenario.h"
#include "txrx/link.h"
#include "txrx/power_model.h"

int main() {
  using namespace uwb;

  txrx::Gen2Config config = sim::gen2_fast();
  txrx::Gen2Link link(config, /*seed=*/0xADA);
  sim::LinkAdapter adapter(1.0 / config.prf_hz);

  // Environment schedule: (channel model, Eb/N0, packets).
  struct Phase {
    const char* name;
    int cm;
    double ebn0_db;
    int packets;
  };
  const Phase phases[] = {
      {"LOS, strong signal (CM1, 24 dB)", 1, 24.0, 6},
      {"NLOS, severe multipath (CM4, 14 dB)", 4, 14.0, 6},
      {"back to LOS (CM1, 24 dB)", 1, 24.0, 6},
  };

  std::printf("Adaptive gen-2 link: the controller walks the power/QoS ladder\n");
  std::printf("----------------------------------------------------------------\n");

  for (const auto& phase : phases) {
    std::printf("\n>> %s\n", phase.name);
    std::size_t bits = 0, errors = 0;
    for (int p = 0; p < phase.packets; ++p) {
      txrx::Gen2LinkOptions options;
      options.payload_bits = 200;
      options.cm = phase.cm;
      options.ebn0_db = phase.ebn0_db;

      const auto trial = link.run_packet(options);
      bits += trial.bits;
      errors += trial.errors;

      // Observe, decide, reconfigure the receiver for the next packet.
      const auto decision = adapter.update(sim::observe(trial.rx));
      sim::LinkAdapter::apply(decision, link.receiver().mutable_config());

      txrx::Gen2Config snapshot = config;
      sim::LinkAdapter::apply(decision, snapshot);
      const double power_mw = txrx::gen2_power(snapshot).total_w() * 1e3;
      std::printf("  pkt %d: spread %4.1f ns, snr %5.1f dB -> rung %-8s "
                  "(%2zu fingers, MLSE %s, %5.1f mW)\n",
                  p, trial.rx.channel_estimate.rms_delay_spread() * 1e9,
                  trial.rx.snr_estimate_db, decision.rung.c_str(), decision.rake_fingers,
                  decision.use_mlse ? "on " : "off", power_mw);
    }
    std::printf("  phase BER: %zu/%zu\n", errors, bits);
  }
  return 0;
}
