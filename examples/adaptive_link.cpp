// Adaptive reconfiguration demo (paper Section 3, closing paragraph): the
// receiver trades power against QoS "adapting to channel conditions". The
// LinkAdapter watches each packet's diagnostics and walks the back-end
// configuration ladder as the environment changes from a benign LOS
// channel to severe NLOS multipath and back.
//
// Part 2 then uses the parallel sweep engine to quantify what each rung of
// the ladder is worth in each environment: a scenario built inline
// (environment axis x back-end axis) fans trials out over all cores and
// writes bench/results/adaptive_rungs.json.

#include <cstdio>

#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "sim/adaptive.h"
#include "sim/scenario.h"
#include "txrx/link.h"
#include "txrx/power_model.h"

namespace {

using namespace uwb;

/// The adapter's rung written as a scenario variant, so the sweep measures
/// exactly the configurations the controller switches between.
engine::Gen2Variant rung_variant(const sim::AdaptationDecision& decision) {
  return {decision.rung, [decision](txrx::Gen2Config& config, txrx::TrialOptions&) {
            sim::LinkAdapter::apply(decision, config);
          }};
}

}  // namespace

int main() {
  using namespace uwb;

  txrx::Gen2Config config = sim::gen2_fast();
  txrx::Gen2Link link(config, /*seed=*/0xADA);
  sim::LinkAdapter adapter(1.0 / config.prf_hz);

  // Environment schedule: (channel model, Eb/N0, packets).
  struct Phase {
    const char* name;
    int cm;
    double ebn0_db;
    int packets;
  };
  const Phase phases[] = {
      {"LOS, strong signal (CM1, 24 dB)", 1, 24.0, 6},
      {"NLOS, severe multipath (CM4, 14 dB)", 4, 14.0, 6},
      {"back to LOS (CM1, 24 dB)", 1, 24.0, 6},
  };

  std::printf("Adaptive gen-2 link: the controller walks the power/QoS ladder\n");
  std::printf("----------------------------------------------------------------\n");

  for (const auto& phase : phases) {
    std::printf("\n>> %s\n", phase.name);
    std::size_t bits = 0, errors = 0;
    for (int p = 0; p < phase.packets; ++p) {
      txrx::TrialOptions options;
      options.payload_bits = 200;
      options.cm = phase.cm;
      options.ebn0_db = phase.ebn0_db;

      const auto trial = link.run_packet_full(options);
      bits += trial.bits;
      errors += trial.errors;

      // Observe, decide, reconfigure the receiver for the next packet.
      const auto decision = adapter.update(sim::observe(trial.rx));
      sim::LinkAdapter::apply(decision, link.receiver().mutable_config());

      txrx::Gen2Config snapshot = config;
      sim::LinkAdapter::apply(decision, snapshot);
      const double power_mw = txrx::gen2_power(snapshot).total_w() * 1e3;
      std::printf("  pkt %d: spread %4.1f ns, snr %5.1f dB -> rung %-8s "
                  "(%2zu fingers, MLSE %s, %5.1f mW)\n",
                  p, trial.rx.channel_estimate.rms_delay_spread() * 1e9,
                  trial.rx.snr_estimate_db, decision.rung.c_str(), decision.rake_fingers,
                  decision.use_mlse ? "on " : "off", power_mw);
    }
    std::printf("  phase BER: %zu/%zu\n", errors, bits);
  }

  // ---- Part 2: what does each rung buy in each environment? ----
  // Sweep the controller's own rungs over the demo's two environments on
  // the parallel engine. This is the measured version of the table the
  // adapter is implicitly walking.
  std::printf("\nRung value per environment (parallel sweep engine):\n\n");

  txrx::TrialOptions base_options;
  base_options.payload_bits = 200;

  // The rung axis comes straight from the controller's own ladder, so the
  // sweep measures exactly the configurations it switches between.
  std::vector<engine::Gen2Variant> rung_axis;
  for (const auto& decision : sim::LinkAdapter::ladder()) {
    rung_axis.push_back(rung_variant(decision));
  }

  engine::Gen2ScenarioBuilder builder("adaptive_rungs", config, base_options);
  builder.description("LinkAdapter ladder rungs measured in the demo's environments")
      .axis("environment",
            {{"CM1@24dB",
              [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                o.cm = 1;
                o.ebn0_db = 24.0;
              }},
             {"CM4@14dB",
              [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                o.cm = 4;
                o.ebn0_db = 14.0;
              }}})
      .axis("rung", std::move(rung_axis));

  engine::SweepConfig sweep_config;
  sweep_config.seed = 0xADA;
  sweep_config.stop.min_errors = 20;
  sweep_config.stop.max_bits = 20000;

  engine::ConsoleTableSink console;
  engine::JsonSink json(engine::default_result_path("adaptive_rungs", "json"));
  engine::SweepEngine sweep(sweep_config);
  sweep.run(builder.build(), {&console, &json});

  std::printf("\nThe controller's policy follows this table: benign channels tolerate\n"
              "the minimal rung's power, severe multipath needs the maximal rung's\n"
              "fingers and MLSE states. (raw points: %s)\n", json.path().c_str());
  return 0;
}
