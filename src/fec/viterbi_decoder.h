#pragma once
/// \file viterbi_decoder.h
/// \brief Maximum-likelihood (Viterbi) decoding of convolutional codes, with
///        hard-decision (Hamming) and soft-decision (correlation) metrics.

#include "common/types.h"
#include "fec/convolutional.h"

namespace uwb::fec {

/// Block Viterbi decoder for zero-terminated codewords.
class ViterbiDecoder {
 public:
  explicit ViterbiDecoder(const ConvCode& code);

  [[nodiscard]] const ConvCode& code() const noexcept { return code_.code(); }

  /// Hard-decision decode of coded bits (as produced by ConvEncoder::encode,
  /// including the tail). Returns the info bits (tail stripped).
  [[nodiscard]] BitVec decode_hard(const BitVec& coded) const;

  /// Soft-decision decode. \p llr holds one value per coded bit, positive
  /// meaning "bit 0 more likely" (i.e. the matched-filter output for a
  /// 0 -> +1 / 1 -> -1 mapping).
  [[nodiscard]] BitVec decode_soft(const std::vector<double>& llr) const;

 private:
  template <typename MetricFn>
  [[nodiscard]] BitVec run(std::size_t num_steps, MetricFn&& branch_metric) const;

  ConvEncoder code_;
};

}  // namespace uwb::fec
