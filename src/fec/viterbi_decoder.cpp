#include "fec/viterbi_decoder.h"

#include <limits>

#include "common/error.h"

namespace uwb::fec {

ViterbiDecoder::ViterbiDecoder(const ConvCode& code) : code_(code) {}

template <typename MetricFn>
BitVec ViterbiDecoder::run(std::size_t num_steps, MetricFn&& branch_metric) const {
  const auto& cc = code_.code();
  const int num_states = cc.num_states();
  constexpr double inf = std::numeric_limits<double>::infinity();

  // Path metrics: encoder starts (and, via the tail, ends) in state 0.
  std::vector<double> metric(static_cast<std::size_t>(num_states), inf);
  metric[0] = 0.0;
  std::vector<double> next_metric(static_cast<std::size_t>(num_states));

  // survivors[t][s] = input bit of the surviving branch into state s at t,
  // plus the predecessor state, packed for traceback.
  struct Survivor {
    int16_t prev_state = -1;
    int8_t input = 0;
  };
  std::vector<std::vector<Survivor>> survivors(
      num_steps, std::vector<Survivor>(static_cast<std::size_t>(num_states)));

  for (std::size_t t = 0; t < num_steps; ++t) {
    for (int s = 0; s < num_states; ++s) next_metric[static_cast<std::size_t>(s)] = inf;
    for (int s = 0; s < num_states; ++s) {
      const double pm = metric[static_cast<std::size_t>(s)];
      if (pm == inf) continue;
      for (int b = 0; b <= 1; ++b) {
        const int ns = code_.next_state(s, b);
        const uint32_t expected = code_.branch_output(s, b);
        const double m = pm + branch_metric(t, expected);
        if (m < next_metric[static_cast<std::size_t>(ns)]) {
          next_metric[static_cast<std::size_t>(ns)] = m;
          survivors[t][static_cast<std::size_t>(ns)] = {static_cast<int16_t>(s),
                                                        static_cast<int8_t>(b)};
        }
      }
    }
    metric.swap(next_metric);
  }

  // Zero tail forces termination in state 0; trace back from there.
  BitVec decoded(num_steps);
  int state = 0;
  for (std::size_t t = num_steps; t-- > 0;) {
    const Survivor& sv = survivors[t][static_cast<std::size_t>(state)];
    decoded[t] = static_cast<uint8_t>(sv.input);
    state = sv.prev_state;
    if (state < 0) {
      // Unreachable state (corrupt input shorter than constraint length);
      // bail out with what we have.
      break;
    }
  }
  // Strip the zero tail.
  decoded.resize(num_steps - static_cast<std::size_t>(cc.memory()));
  return decoded;
}

BitVec ViterbiDecoder::decode_hard(const BitVec& coded) const {
  const auto& cc = code_.code();
  const auto n_out = static_cast<std::size_t>(cc.rate_denominator());
  detail::require(coded.size() % n_out == 0,
                  "ViterbiDecoder: coded length not a multiple of the code rate");
  const std::size_t num_steps = coded.size() / n_out;
  detail::require(num_steps > static_cast<std::size_t>(cc.memory()),
                  "ViterbiDecoder: codeword shorter than the tail");

  return run(num_steps, [&](std::size_t t, uint32_t expected) {
    // Hamming distance between received and expected coded bits.
    double d = 0.0;
    for (std::size_t i = 0; i < n_out; ++i) {
      const uint8_t rx = coded[t * n_out + i] & 1u;
      const auto ex = static_cast<uint8_t>((expected >> i) & 1u);
      d += (rx != ex) ? 1.0 : 0.0;
    }
    return d;
  });
}

BitVec ViterbiDecoder::decode_soft(const std::vector<double>& llr) const {
  const auto& cc = code_.code();
  const auto n_out = static_cast<std::size_t>(cc.rate_denominator());
  detail::require(llr.size() % n_out == 0,
                  "ViterbiDecoder: soft length not a multiple of the code rate");
  const std::size_t num_steps = llr.size() / n_out;
  detail::require(num_steps > static_cast<std::size_t>(cc.memory()),
                  "ViterbiDecoder: codeword shorter than the tail");

  return run(num_steps, [&](std::size_t t, uint32_t expected) {
    // Negative correlation metric: expected bit 0 -> +1, 1 -> -1.
    double m = 0.0;
    for (std::size_t i = 0; i < n_out; ++i) {
      const double sign = ((expected >> i) & 1u) ? -1.0 : 1.0;
      m -= sign * llr[t * n_out + i];
    }
    return m;
  });
}

}  // namespace uwb::fec
