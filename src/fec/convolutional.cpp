#include "fec/convolutional.h"

#include <bit>

#include "common/error.h"

namespace uwb::fec {

ConvCode k7_rate_half() {
  ConvCode code;
  code.constraint_length = 7;
  code.generators = {0171, 0133};  // octal, 7 taps each
  return code;
}

ConvCode k3_rate_half() {
  ConvCode code;
  code.constraint_length = 3;
  code.generators = {0b111, 0b101};
  return code;
}

ConvCode k3_rate_third() {
  ConvCode code;
  code.constraint_length = 3;
  code.generators = {0b111, 0b111, 0b101};
  return code;
}

ConvEncoder::ConvEncoder(const ConvCode& code) : code_(code) {
  detail::require(code.constraint_length >= 2 && code.constraint_length <= 16,
                  "ConvEncoder: constraint length must be in [2,16]");
  detail::require(!code.generators.empty(), "ConvEncoder: need at least one generator");
  reg_mask_ = (1u << code.constraint_length) - 1u;
  for (uint32_t g : code.generators) {
    detail::require((g & reg_mask_) == g && g != 0,
                    "ConvEncoder: generator wider than constraint length or zero");
  }
}

uint32_t ConvEncoder::branch_output(int state, int input_bit) const noexcept {
  // Register = [newest input | state bits], newest in the MSB position.
  const uint32_t reg =
      (static_cast<uint32_t>(input_bit & 1) << code_.memory()) | static_cast<uint32_t>(state);
  uint32_t out = 0;
  for (std::size_t i = 0; i < code_.generators.size(); ++i) {
    const auto parity = static_cast<uint32_t>(std::popcount(reg & code_.generators[i]) & 1);
    out |= parity << i;
  }
  return out;
}

int ConvEncoder::next_state(int state, int input_bit) const noexcept {
  const uint32_t reg =
      (static_cast<uint32_t>(input_bit & 1) << code_.memory()) | static_cast<uint32_t>(state);
  return static_cast<int>(reg >> 1);
}

BitVec ConvEncoder::encode(const BitVec& bits) const {
  const int n_out = code_.rate_denominator();
  BitVec out;
  out.reserve((bits.size() + static_cast<std::size_t>(code_.memory())) *
              static_cast<std::size_t>(n_out));
  int state = 0;
  auto push = [&](int input_bit) {
    const uint32_t coded = branch_output(state, input_bit);
    for (int i = 0; i < n_out; ++i) out.push_back(static_cast<uint8_t>((coded >> i) & 1u));
    state = next_state(state, input_bit);
  };
  for (auto b : bits) push(b & 1);
  for (int i = 0; i < code_.memory(); ++i) push(0);  // zero tail -> state 0
  return out;
}

}  // namespace uwb::fec
