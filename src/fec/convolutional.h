#pragma once
/// \file convolutional.h
/// \brief Feed-forward convolutional encoder with configurable constraint
///        length and generator polynomials. Supplies the coded-link mode of
///        the transceivers and the trellis the Viterbi decoder works on.

#include <cstdint>

#include "common/types.h"

namespace uwb::fec {

/// Code definition: constraint length K and one generator per output bit.
/// Generators use the textbook convention: bit (K-1) of the generator taps
/// the newest input, bit 0 the oldest.
struct ConvCode {
  int constraint_length = 3;
  std::vector<uint32_t> generators = {0b111, 0b101};  ///< rate 1/2 K=3 (7,5)

  [[nodiscard]] int rate_denominator() const noexcept {
    return static_cast<int>(generators.size());
  }
  [[nodiscard]] int memory() const noexcept { return constraint_length - 1; }
  [[nodiscard]] int num_states() const noexcept { return 1 << memory(); }
};

/// The industry-standard rate-1/2 K=7 code (171, 133 octal).
ConvCode k7_rate_half();

/// Compact rate-1/2 K=3 code (7, 5 octal) -- cheap enough for a 2005-era
/// UWB back end at full rate.
ConvCode k3_rate_half();

/// Rate-1/3 K=3 code for the lowest-SNR configuration.
ConvCode k3_rate_third();

/// Encoder. encode() appends a zero tail so the decoder can terminate.
class ConvEncoder {
 public:
  explicit ConvEncoder(const ConvCode& code);

  [[nodiscard]] const ConvCode& code() const noexcept { return code_; }

  /// Encodes info bits, appending memory() zero-tail bits. Output length is
  /// (bits.size() + memory()) * generators.size().
  [[nodiscard]] BitVec encode(const BitVec& bits) const;

  /// Coded bits produced by one input bit from a given state (LSB-first
  /// packed into the returned word; used by the decoder to build branch
  /// tables).
  [[nodiscard]] uint32_t branch_output(int state, int input_bit) const noexcept;

  /// State reached from \p state on \p input_bit.
  [[nodiscard]] int next_state(int state, int input_bit) const noexcept;

 private:
  ConvCode code_;
  uint32_t reg_mask_;
};

}  // namespace uwb::fec
