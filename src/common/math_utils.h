#pragma once
/// \file math_utils.h
/// \brief Small numeric helpers: dB conversions, Q-function, sinc, power
///        measures, and alignment utilities used across the library.

#include <cmath>
#include <cstddef>
#include <numbers>

#include "common/types.h"

namespace uwb {

inline constexpr double pi = std::numbers::pi;
inline constexpr double two_pi = 2.0 * std::numbers::pi;

// --- dB conversions ----------------------------------------------------------

/// Power ratio -> dB.
inline double to_db(double power_ratio) { return 10.0 * std::log10(power_ratio); }

/// dB -> power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude ratio -> dB.
inline double amp_to_db(double amp_ratio) { return 20.0 * std::log10(amp_ratio); }

/// dB -> amplitude ratio.
inline double db_to_amp(double db) { return std::pow(10.0, db / 20.0); }

/// Watts -> dBm.
inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts / 1e-3); }

/// dBm -> watts.
inline double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

// --- Special functions --------------------------------------------------------

/// Gaussian tail probability Q(x) = P(N(0,1) > x).
inline double q_function(double x) { return 0.5 * std::erfc(x / std::numbers::sqrt2); }

/// Inverse Q-function via bisection (accurate to ~1e-12 over (0, 0.5)).
double q_function_inv(double p);

/// Normalized sinc: sin(pi x)/(pi x), sinc(0) = 1.
inline double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = pi * x;
  return std::sin(px) / px;
}

/// Theoretical BER of coherent antipodal (BPSK) signaling over AWGN at the
/// given Eb/N0 (linear). The reference curve for every link bench.
inline double bpsk_awgn_ber(double ebn0_linear) {
  return q_function(std::sqrt(2.0 * ebn0_linear));
}

/// Theoretical BER of orthogonal binary PPM (non-antipodal, coherent).
inline double ppm_awgn_ber(double ebn0_linear) {
  return q_function(std::sqrt(ebn0_linear));
}

/// Theoretical BER of OOK with optimal threshold, coherent detection and an
/// average-energy-per-bit constraint: same Q(sqrt(Eb/N0)) as orthogonal PPM.
inline double ook_awgn_ber(double ebn0_linear) {
  return q_function(std::sqrt(ebn0_linear));
}

/// Theoretical BER of Gray-coded 4-PAM over AWGN at the given Eb/N0 (linear).
inline double pam4_awgn_ber(double ebn0_linear) {
  return 0.75 * q_function(std::sqrt(0.8 * ebn0_linear));
}

// --- Vector measures ----------------------------------------------------------

/// Mean power (mean |x|^2) of a real signal.
double mean_power(const RealVec& x);

/// Mean power (mean |x|^2) of a complex signal.
double mean_power(const CplxVec& x);

/// Total energy (sum |x|^2) of a real signal.
double energy(const RealVec& x);

/// Total energy (sum |x|^2) of a complex signal.
double energy(const CplxVec& x);

/// Peak absolute value of a real signal.
double peak_abs(const RealVec& x);

/// Peak magnitude of a complex signal.
double peak_abs(const CplxVec& x);

/// Root-mean-square of a real signal.
inline double rms(const RealVec& x) { return std::sqrt(mean_power(x)); }

// --- Misc ----------------------------------------------------------------------

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// True when n is a power of two (n >= 1).
inline bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Wraps a phase to (-pi, pi].
double wrap_phase(double phi);

/// Linear interpolation helper.
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Integer ceil division for non-negative arguments.
inline std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace uwb
