#pragma once
/// \file types.h
/// \brief Fundamental scalar types and physical-unit helpers shared by every
///        subsystem of the UWB transceiver library.
///
/// All signal processing is done in double precision. Complex baseband
/// samples use std::complex<double>. Frequencies are carried in hertz,
/// times in seconds, powers in watts (linear) or dBm where noted -- helper
/// constants below make call sites read like the paper ("5 * GHz").

#include <complex>
#include <cstdint>
#include <vector>

namespace uwb {

/// Complex baseband sample.
using cplx = std::complex<double>;

/// Real-valued sample buffer (passband or one rail of I/Q).
using RealVec = std::vector<double>;

/// Complex-valued sample buffer (analytic / baseband signal).
using CplxVec = std::vector<cplx>;

/// Hard bit (0/1) buffer.
using BitVec = std::vector<uint8_t>;

// --- Unit multipliers -------------------------------------------------------
// Usage: double fc = 5 * GHz;  double prf = 100 * MHz;  double tau = 20 * ns;

inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;

/// Boltzmann constant [J/K]; used for thermal-noise floors (kTB).
inline constexpr double k_boltzmann = 1.380649e-23;

/// Reference temperature for noise-figure definitions [K].
inline constexpr double T0_kelvin = 290.0;

/// Thermal noise density at T0, in dBm/Hz (-173.975...).
inline constexpr double kT_dBm_per_Hz = -173.975;

// --- Band constants from the paper ------------------------------------------

/// FCC UWB band lower edge (3.1 GHz).
inline constexpr double fcc_band_low_hz = 3.1e9;

/// FCC UWB band upper edge (10.6 GHz).
inline constexpr double fcc_band_high_hz = 10.6e9;

/// FCC EIRP limit for UWB communication devices [dBm/MHz].
inline constexpr double fcc_eirp_limit_dbm_per_mhz = -41.3;

/// Pulse bandwidth used by both generations of the paper's system [Hz].
inline constexpr double pulse_bandwidth_hz = 500e6;

/// Number of sub-band channels in the gen-2 band plan.
inline constexpr int num_band_channels = 14;

}  // namespace uwb
