#pragma once
/// \file waveform.h
/// \brief Sampled-signal container: samples plus the sample rate they were
///        taken at, with the handful of whole-signal operations every
///        subsystem needs (scaling, mixing, delay, time axis).
///
/// Two concrete types are used throughout:
///   Waveform<double>  -- real passband signals / single I or Q rail
///   Waveform<cplx>    -- complex baseband signals
///
/// The container is intentionally thin: heavy DSP lives in uwb::dsp, channel
/// physics in uwb::channel. Waveform just keeps samples and fs together so
/// block interfaces cannot mix up rates.

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/math_utils.h"
#include "common/types.h"

namespace uwb {

template <typename T>
class Waveform {
 public:
  Waveform() = default;

  /// Creates a waveform of \p n zero samples at \p sample_rate_hz.
  Waveform(std::size_t n, double sample_rate_hz) : samples_(n), fs_(sample_rate_hz) {
    detail::require(sample_rate_hz > 0.0, "Waveform: sample rate must be positive");
  }

  /// Adopts an existing sample buffer at \p sample_rate_hz.
  Waveform(std::vector<T> samples, double sample_rate_hz)
      : samples_(std::move(samples)), fs_(sample_rate_hz) {
    detail::require(sample_rate_hz > 0.0, "Waveform: sample rate must be positive");
  }

  [[nodiscard]] double sample_rate() const noexcept { return fs_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Signal duration in seconds.
  [[nodiscard]] double duration() const noexcept {
    return fs_ > 0.0 ? static_cast<double>(samples_.size()) / fs_ : 0.0;
  }

  /// Time of sample \p i in seconds from the start of the buffer.
  [[nodiscard]] double time_of(std::size_t i) const noexcept {
    return static_cast<double>(i) / fs_;
  }

  T& operator[](std::size_t i) noexcept { return samples_[i]; }
  const T& operator[](std::size_t i) const noexcept { return samples_[i]; }

  std::vector<T>& samples() noexcept { return samples_; }
  [[nodiscard]] const std::vector<T>& samples() const noexcept { return samples_; }

  auto begin() noexcept { return samples_.begin(); }
  auto end() noexcept { return samples_.end(); }
  [[nodiscard]] auto begin() const noexcept { return samples_.begin(); }
  [[nodiscard]] auto end() const noexcept { return samples_.end(); }

  /// Mean power of the buffer (mean |x|^2).
  [[nodiscard]] double power() const { return mean_power(samples_); }

  /// Total energy of the buffer (sum |x|^2).
  [[nodiscard]] double total_energy() const { return uwb::energy(samples_); }

  /// Multiplies every sample by \p gain in place.
  Waveform& scale(double gain) {
    for (auto& v : samples_) v *= gain;
    return *this;
  }

  /// Scales the buffer so its mean power equals \p target_power.
  /// A silent buffer is left untouched.
  Waveform& normalize_power(double target_power = 1.0) {
    const double p = power();
    if (p > 0.0) scale(std::sqrt(target_power / p));
    return *this;
  }

  /// Adds \p other sample-by-sample starting at \p offset samples into this
  /// buffer, growing this buffer if necessary. Rates must match.
  Waveform& add(const Waveform& other, std::size_t offset = 0) {
    detail::require(other.fs_ == fs_, "Waveform::add: sample-rate mismatch");
    if (offset + other.size() > samples_.size()) {
      samples_.resize(offset + other.size(), T{});
    }
    for (std::size_t i = 0; i < other.size(); ++i) samples_[offset + i] += other[i];
    return *this;
  }

  /// Appends \p n zero samples.
  Waveform& pad(std::size_t n) {
    samples_.resize(samples_.size() + n, T{});
    return *this;
  }

  /// Delays the signal by an integer number of samples (prepends zeros).
  Waveform& delay_samples(std::size_t n) {
    samples_.insert(samples_.begin(), n, T{});
    return *this;
  }

  /// Returns a copy of samples [first, first+count).
  [[nodiscard]] Waveform slice(std::size_t first, std::size_t count) const {
    detail::require(first + count <= samples_.size(), "Waveform::slice: out of range");
    return Waveform(std::vector<T>(samples_.begin() + static_cast<std::ptrdiff_t>(first),
                                   samples_.begin() + static_cast<std::ptrdiff_t>(first + count)),
                    fs_);
  }

 private:
  std::vector<T> samples_;
  double fs_ = 1.0;
};

using RealWaveform = Waveform<double>;
using CplxWaveform = Waveform<cplx>;

/// Extracts the real part of a complex waveform (e.g. after upconversion).
RealWaveform real_part(const CplxWaveform& w);

/// Builds a complex waveform from separate I and Q rails of equal length.
CplxWaveform from_iq(const RealWaveform& i_rail, const RealWaveform& q_rail);

/// Splits a complex waveform into its I and Q rails.
std::pair<RealWaveform, RealWaveform> to_iq(const CplxWaveform& w);

}  // namespace uwb
