#pragma once
/// \file rng.h
/// \brief Deterministic random number generation for all stochastic models.
///
/// Every stochastic component in the library (noise sources, channel
/// realizations, data generators, jitter, mismatch) takes an explicit Rng or
/// a 64-bit seed. There is no global RNG state, so any experiment is exactly
/// reproducible from its printed seed.

#include <cstdint>
#include <random>

#include "common/types.h"

namespace uwb {

/// Seeded pseudo-random generator with the distributions the library needs.
///
/// Wraps std::mt19937_64. Distinct subsystems should derive their own child
/// generators via fork() so that adding draws in one block never perturbs
/// another block's stream.
class Rng {
 public:
  /// Constructs from a 64-bit seed. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x5eed'0000'cafe'f00dULL) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with (for logging).
  [[nodiscard]] uint64_t seed() const noexcept { return seed_; }

  /// Creates an independent child generator. The child's stream is a pure
  /// function of (parent seed, salt), not of how many draws the parent made.
  [[nodiscard]] Rng fork(uint64_t salt) const {
    // SplitMix64-style mix of seed and salt gives well-separated child seeds.
    uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  /// Uniform double in [0, 1).
  double uniform() { return unif_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * unif_(engine_); }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Standard normal draw (mean 0, variance 1).
  double gaussian() { return norm_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev) { return mean + stddev * norm_(engine_); }

  /// Circularly-symmetric complex Gaussian with total variance \p variance
  /// (variance/2 per rail), the standard model for complex baseband noise.
  cplx cgaussian(double variance = 1.0) {
    const double sigma = std::sqrt(variance / 2.0);
    return {sigma * norm_(engine_), sigma * norm_(engine_)};
  }

  /// Exponential draw with the given mean (inter-arrival times in the
  /// Saleh-Valenzuela model).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Fair coin: returns 0 or 1.
  uint8_t bit() { return static_cast<uint8_t>(engine_() & 1u); }

  /// Random equiprobable +/-1.
  double sign() { return (engine_() & 1u) ? 1.0 : -1.0; }

  /// Fills \p n random bits.
  BitVec bits(std::size_t n) {
    BitVec out(n);
    for (auto& b : out) b = bit();
    return out;
  }

  /// Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
  std::uniform_real_distribution<double> unif_{0.0, 1.0};
  std::normal_distribution<double> norm_{0.0, 1.0};
};

}  // namespace uwb
