#pragma once
/// \file error.h
/// \brief Exception hierarchy for the UWB library.
///
/// Construction-time parameter validation throws; per-sample hot paths are
/// noexcept by design. Catch uwb::Error to handle anything thrown by the
/// library.

#include <stdexcept>
#include <string>

namespace uwb {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A constructor or setter received an out-of-range / inconsistent argument.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation was attempted in a state that does not permit it
/// (e.g. demodulating before acquisition has locked).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Input buffers have mismatched or unusable dimensions.
class SizeError : public Error {
 public:
  explicit SizeError(const std::string& what) : Error(what) {}
};

namespace detail {

/// Throws InvalidArgument with \p msg when \p cond is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace detail
}  // namespace uwb
