#include "common/waveform.h"

namespace uwb {

RealWaveform real_part(const CplxWaveform& w) {
  RealVec out(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) out[i] = w[i].real();
  return RealWaveform(std::move(out), w.sample_rate());
}

CplxWaveform from_iq(const RealWaveform& i_rail, const RealWaveform& q_rail) {
  detail::require(i_rail.size() == q_rail.size(), "from_iq: rail length mismatch");
  detail::require(i_rail.sample_rate() == q_rail.sample_rate(),
                  "from_iq: rail sample-rate mismatch");
  CplxVec out(i_rail.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = {i_rail[i], q_rail[i]};
  return CplxWaveform(std::move(out), i_rail.sample_rate());
}

std::pair<RealWaveform, RealWaveform> to_iq(const CplxWaveform& w) {
  RealVec i_rail(w.size());
  RealVec q_rail(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    i_rail[i] = w[i].real();
    q_rail[i] = w[i].imag();
  }
  return {RealWaveform(std::move(i_rail), w.sample_rate()),
          RealWaveform(std::move(q_rail), w.sample_rate())};
}

}  // namespace uwb
