#include "common/math_utils.h"

#include <algorithm>

namespace uwb {

double q_function_inv(double p) {
  // Bisection on the monotone decreasing Q over x in [-10, 10] covers
  // p in (Q(10), Q(-10)) ~ (7.6e-24, 1 - 7.6e-24), far more than any BER
  // target the simulator uses.
  double lo = -10.0, hi = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (q_function(mid) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double mean_power(const RealVec& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc / static_cast<double>(x.size());
}

double mean_power(const CplxVec& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const cplx& v : x) acc += std::norm(v);
  return acc / static_cast<double>(x.size());
}

double energy(const RealVec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double energy(const CplxVec& x) {
  double acc = 0.0;
  for (const cplx& v : x) acc += std::norm(v);
  return acc;
}

double peak_abs(const RealVec& x) {
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v));
  return peak;
}

double peak_abs(const CplxVec& x) {
  double peak = 0.0;
  for (const cplx& v : x) peak = std::max(peak, std::abs(v));
  return peak;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double wrap_phase(double phi) {
  while (phi > pi) phi -= two_pi;
  while (phi <= -pi) phi += two_pi;
  return phi;
}

}  // namespace uwb
