#include "pulse/pulse_shape.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/filter_design.h"

namespace uwb::pulse {

namespace {

/// Builds a symmetric time axis covering +/- span with step 1/fs and applies
/// the generator g(t); normalizes the peak to 1.
template <typename G>
RealWaveform symmetric_pulse(double span_s, double fs, G&& g) {
  const auto half = static_cast<std::size_t>(std::ceil(span_s * fs));
  const std::size_t n = 2 * half + 1;
  RealVec samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) - static_cast<double>(half)) / fs;
    samples[i] = g(t);
  }
  const double peak = peak_abs(samples);
  if (peak > 0.0) {
    for (auto& v : samples) v /= peak;
  }
  return RealWaveform(std::move(samples), fs);
}

}  // namespace

RealWaveform gaussian_pulse(double sigma_s, double fs) {
  detail::require(sigma_s > 0.0 && fs > 0.0, "gaussian_pulse: sigma and fs must be positive");
  return symmetric_pulse(4.0 * sigma_s, fs, [sigma_s](double t) {
    return std::exp(-t * t / (2.0 * sigma_s * sigma_s));
  });
}

RealWaveform gaussian_monocycle(double sigma_s, double fs) {
  detail::require(sigma_s > 0.0 && fs > 0.0, "gaussian_monocycle: sigma and fs must be positive");
  return symmetric_pulse(4.5 * sigma_s, fs, [sigma_s](double t) {
    return -t * std::exp(-t * t / (2.0 * sigma_s * sigma_s));
  });
}

RealWaveform gaussian_doublet(double sigma_s, double fs) {
  detail::require(sigma_s > 0.0 && fs > 0.0, "gaussian_doublet: sigma and fs must be positive");
  const double s2 = sigma_s * sigma_s;
  return symmetric_pulse(5.0 * sigma_s, fs, [s2](double t) {
    return (t * t / s2 - 1.0) * std::exp(-t * t / (2.0 * s2));
  });
}

RealWaveform rrc_pulse(double bandwidth_hz, double beta, int span_symbols, double fs) {
  detail::require(bandwidth_hz > 0.0, "rrc_pulse: bandwidth must be positive");
  detail::require(fs > (1.0 + beta) * bandwidth_hz,
                  "rrc_pulse: fs must exceed the occupied bandwidth");
  // RRC with roll-off beta occupies (1+beta)/T two-sided; choose the symbol
  // rate so the occupied band equals bandwidth_hz.
  const double symbol_rate = bandwidth_hz / (1.0 + beta);
  const int sps = static_cast<int>(std::round(fs / symbol_rate));
  detail::require(sps >= 2, "rrc_pulse: insufficient oversampling");
  RealVec taps = dsp::design_root_raised_cosine(symbol_rate, beta, span_symbols, sps);
  const double peak = peak_abs(taps);
  for (auto& v : taps) v /= peak;
  return RealWaveform(std::move(taps), fs);
}

RealWaveform rectangular_pulse(double duration_s, double fs) {
  detail::require(duration_s > 0.0 && fs > 0.0, "rectangular_pulse: bad arguments");
  const auto n = std::max<std::size_t>(1, static_cast<std::size_t>(std::round(duration_s * fs)));
  return RealWaveform(RealVec(n, 1.0), fs);
}

double gaussian_sigma_for_bandwidth(double bandwidth_hz) {
  // |G(f)| = exp(-(2 pi f sigma)^2 / 2); -10 dB (power) at
  // (2 pi f sigma)^2 = ln(10)  =>  f10 = sqrt(ln 10) / (2 pi sigma).
  // Two-sided -10 dB bandwidth B = 2 f10 => sigma = sqrt(ln 10)/(pi B).
  detail::require(bandwidth_hz > 0.0, "gaussian_sigma_for_bandwidth: bandwidth must be positive");
  return std::sqrt(std::log(10.0)) / (pi * bandwidth_hz);
}

RealWaveform make_pulse(const PulseSpec& spec) {
  switch (spec.shape) {
    case PulseShape::kGaussian:
      return gaussian_pulse(gaussian_sigma_for_bandwidth(spec.bandwidth_hz),
                            spec.sample_rate_hz);
    case PulseShape::kGaussianMono:
      return gaussian_monocycle(gaussian_sigma_for_bandwidth(spec.bandwidth_hz),
                                spec.sample_rate_hz);
    case PulseShape::kGaussianDoublet:
      return gaussian_doublet(gaussian_sigma_for_bandwidth(spec.bandwidth_hz),
                              spec.sample_rate_hz);
    case PulseShape::kRootRaisedCos:
      return rrc_pulse(spec.bandwidth_hz, spec.rrc_beta, spec.rrc_span_symbols,
                       spec.sample_rate_hz);
    case PulseShape::kRectangular:
      return rectangular_pulse(1.0 / spec.bandwidth_hz, spec.sample_rate_hz);
  }
  throw InvalidArgument("make_pulse: unknown shape");
}

double pulse_duration(const RealWaveform& p, double fraction) {
  detail::require(fraction > 0.0 && fraction < 1.0, "pulse_duration: fraction in (0,1)");
  const double thresh = fraction * peak_abs(p.samples());
  std::size_t first = p.size(), last = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (std::abs(p[i]) >= thresh) {
      if (first == p.size()) first = i;
      last = i;
    }
  }
  if (first >= last) return 0.0;
  return static_cast<double>(last - first) / p.sample_rate();
}

}  // namespace uwb::pulse
