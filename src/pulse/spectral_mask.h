#pragma once
/// \file spectral_mask.h
/// \brief FCC Part 15 UWB indoor emission mask (-41.3 dBm/MHz in-band) and
///        compliance checking / power scaling against a measured PSD.

#include <vector>

#include "common/types.h"
#include "dsp/power_spectrum.h"

namespace uwb::pulse {

/// One segment of a piecewise-constant emission mask.
struct MaskSegment {
  double low_hz;
  double high_hz;
  double limit_dbm_per_mhz;
};

/// Result of checking a PSD against the mask.
struct MaskReport {
  bool compliant = false;
  double worst_margin_db = 0.0;   ///< min over bins of (limit - level); <0 means violation
  double worst_freq_hz = 0.0;     ///< frequency of the worst margin
  double inband_peak_dbm_per_mhz = 0.0;  ///< peak level inside 3.1-10.6 GHz
};

/// The FCC indoor UWB mask (Part 15.517): -41.3 dBm/MHz in 3.1-10.6 GHz,
/// stricter skirts outside (values per the 2002 R&O).
std::vector<MaskSegment> fcc_indoor_mask();

/// Mask limit at a frequency (+inf outside all segments... practically the
/// GPS band limit is the strictest; unknown regions return the in-band
/// limit of the nearest segment edge).
double mask_limit_at(const std::vector<MaskSegment>& mask, double freq_hz);

/// Checks a one-sided PSD (from dsp::welch_psd of a passband signal) against
/// the mask.
MaskReport check_mask(const dsp::Psd& psd, const std::vector<MaskSegment>& mask);

/// Largest scale factor g such that the PSD of g*x still meets the mask;
/// multiply amplitudes by sqrt(power_scale). Returns the power scale.
double max_power_scale(const dsp::Psd& psd, const std::vector<MaskSegment>& mask);

}  // namespace uwb::pulse
