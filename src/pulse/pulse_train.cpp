#include "pulse/pulse_train.h"

#include <cmath>

namespace uwb::pulse {

std::size_t samples_per_frame(const PulseTrainSpec& spec) {
  detail::require(spec.prf_hz > 0.0 && spec.sample_rate_hz > 0.0,
                  "pulse_train: rates must be positive");
  const double exact = spec.sample_rate_hz / spec.prf_hz;
  const auto rounded = static_cast<std::size_t>(std::round(exact));
  detail::require(std::abs(exact - static_cast<double>(rounded)) < 1e-6,
                  "pulse_train: sample rate must be an integer multiple of the PRF");
  detail::require(rounded >= 1, "pulse_train: PRF exceeds sample rate");
  return rounded;
}

RealWaveform build_train(const RealWaveform& prototype, const std::vector<PulseSlot>& slots,
                         const PulseTrainSpec& spec) {
  detail::require(prototype.sample_rate() == spec.sample_rate_hz,
                  "build_train: prototype rate mismatch");
  const std::size_t frame = samples_per_frame(spec);
  const std::size_t total = frame * slots.size() + prototype.size();
  RealWaveform out(total, spec.sample_rate_hz);
  for (std::size_t k = 0; k < slots.size(); ++k) {
    const auto& slot = slots[k];
    const double off_samples = slot.time_offset_s * spec.sample_rate_hz;
    const auto off = static_cast<std::ptrdiff_t>(std::llround(off_samples));
    const auto base = static_cast<std::ptrdiff_t>(k * frame) + off;
    for (std::size_t i = 0; i < prototype.size(); ++i) {
      const std::ptrdiff_t idx = base + static_cast<std::ptrdiff_t>(i);
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(total)) {
        out[static_cast<std::size_t>(idx)] += slot.amplitude * prototype[i];
      }
    }
  }
  return out;
}

CplxWaveform build_train_cplx(const RealWaveform& prototype, const std::vector<PulseSlot>& slots,
                              const PulseTrainSpec& spec) {
  const RealWaveform real_train = build_train(prototype, slots, spec);
  CplxVec samples(real_train.size());
  for (std::size_t i = 0; i < real_train.size(); ++i) samples[i] = cplx(real_train[i], 0.0);
  return CplxWaveform(std::move(samples), spec.sample_rate_hz);
}

std::vector<PulseSlot> slots_from_weights(const std::vector<double>& bit_weights,
                                          const std::vector<double>& bit_time_offsets,
                                          int pulses_per_bit,
                                          const std::vector<double>& spread) {
  detail::require(pulses_per_bit >= 1, "slots_from_weights: pulses_per_bit must be >= 1");
  detail::require(bit_time_offsets.empty() || bit_time_offsets.size() == bit_weights.size(),
                  "slots_from_weights: offsets size mismatch");
  std::vector<PulseSlot> slots;
  slots.reserve(bit_weights.size() * static_cast<std::size_t>(pulses_per_bit));
  for (std::size_t b = 0; b < bit_weights.size(); ++b) {
    for (int k = 0; k < pulses_per_bit; ++k) {
      PulseSlot slot;
      slot.amplitude = bit_weights[b];
      if (!spread.empty()) {
        slot.amplitude *= spread[static_cast<std::size_t>(k) % spread.size()];
      }
      slot.time_offset_s = bit_time_offsets.empty() ? 0.0 : bit_time_offsets[b];
      slots.push_back(slot);
    }
  }
  return slots;
}

}  // namespace uwb::pulse
