#include "pulse/spectral_mask.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::pulse {

std::vector<MaskSegment> fcc_indoor_mask() {
  // FCC 02-48 indoor limits, EIRP in dBm/MHz.
  return {
      {0.0, 960e6, -41.3},
      {960e6, 1610e6, -75.3},
      {1610e6, 1990e6, -53.3},
      {1990e6, 3100e6, -51.3},
      {3100e6, 10600e6, -41.3},
      {10600e6, 200e9, -51.3},
  };
}

double mask_limit_at(const std::vector<MaskSegment>& mask, double freq_hz) {
  for (const auto& seg : mask) {
    if (freq_hz >= seg.low_hz && freq_hz < seg.high_hz) return seg.limit_dbm_per_mhz;
  }
  // Outside every segment: apply the last segment's limit as a conservative
  // default.
  detail::require(!mask.empty(), "mask_limit_at: empty mask");
  return mask.back().limit_dbm_per_mhz;
}

MaskReport check_mask(const dsp::Psd& psd, const std::vector<MaskSegment>& mask) {
  detail::require(!psd.freq_hz.empty(), "check_mask: empty PSD");
  MaskReport report;
  report.worst_margin_db = std::numeric_limits<double>::max();
  report.inband_peak_dbm_per_mhz = -std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < psd.freq_hz.size(); ++i) {
    const double f = psd.freq_hz[i];
    if (f < 0.0) continue;  // one-sided expected; skip negative bins if any
    const double level = psd.dbm_per_mhz(i);
    const double limit = mask_limit_at(mask, f);
    const double margin = limit - level;
    if (margin < report.worst_margin_db) {
      report.worst_margin_db = margin;
      report.worst_freq_hz = f;
    }
    if (f >= fcc_band_low_hz && f <= fcc_band_high_hz) {
      report.inband_peak_dbm_per_mhz = std::max(report.inband_peak_dbm_per_mhz, level);
    }
  }
  report.compliant = report.worst_margin_db >= 0.0;
  return report;
}

double max_power_scale(const dsp::Psd& psd, const std::vector<MaskSegment>& mask) {
  const MaskReport report = check_mask(psd, mask);
  // Scaling power by g shifts every dB level by 10 log10 g; the binding
  // constraint is the worst margin.
  return from_db(report.worst_margin_db);
}

}  // namespace uwb::pulse
