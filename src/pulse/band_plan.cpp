#include "pulse/band_plan.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace uwb::pulse {

BandPlan::BandPlan() {
  // 14 channels of 500 MHz across 3.1-10.6 GHz (7.5 GHz total). Uniform
  // center spacing (7500 - 500)/13 = 538.46 MHz keeps channel 0's lower edge
  // at 3.1 GHz and channel 13's upper edge at 10.6 GHz exactly; neighboring
  // channels overlap slightly less than they would at 500 MHz spacing.
  const double first_center = fcc_band_low_hz + bandwidth_ / 2.0;
  const double last_center = fcc_band_high_hz - bandwidth_ / 2.0;
  const double spacing = (last_center - first_center) / (num_band_channels - 1);
  channels_.reserve(num_band_channels);
  for (int i = 0; i < num_band_channels; ++i) {
    BandChannel ch;
    ch.index = i;
    ch.center_hz = first_center + spacing * i;
    ch.low_hz = ch.center_hz - bandwidth_ / 2.0;
    ch.high_hz = ch.center_hz + bandwidth_ / 2.0;
    channels_.push_back(ch);
  }
}

const BandChannel& BandPlan::channel(int index) const {
  detail::require(index >= 0 && index < static_cast<int>(channels_.size()),
                  "BandPlan::channel: index out of range");
  return channels_[static_cast<std::size_t>(index)];
}

int BandPlan::channel_of_frequency(double freq_hz) const noexcept {
  for (const auto& ch : channels_) {
    if (freq_hz >= ch.low_hz && freq_hz <= ch.high_hz) return ch.index;
  }
  return -1;
}

int BandPlan::nearest_channel(double freq_hz) const noexcept {
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (const auto& ch : channels_) {
    const double d = std::abs(ch.center_hz - freq_hz);
    if (d < best_d) {
      best_d = d;
      best = ch.index;
    }
  }
  return best;
}

bool BandPlan::within_fcc_band() const noexcept {
  for (const auto& ch : channels_) {
    if (ch.low_hz < fcc_band_low_hz - 1.0 || ch.high_hz > fcc_band_high_hz + 1.0) return false;
  }
  return true;
}

}  // namespace uwb::pulse
