#pragma once
/// \file pulse_train.h
/// \brief Assembles modulated pulse trains at complex baseband: PRF spacing,
///        pulses-per-bit repetition, per-pulse amplitude/position weights.
///
/// Modulation (uwb::phy) hands this module a per-pulse weight sequence; the
/// train builder places copies of the prototype pulse on the PRF grid. The
/// same machinery serves gen-1 (many pulses per bit, low data rate) and
/// gen-2 (one pulse per bit at 100 MHz PRF).

#include <cstddef>

#include "common/error.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::pulse {

/// Per-pulse placement: amplitude weight (BPSK/OOK/PAM) and an extra time
/// offset in seconds (PPM position shift).
struct PulseSlot {
  double amplitude = 1.0;
  double time_offset_s = 0.0;
};

/// Static configuration of a pulse train.
struct PulseTrainSpec {
  double prf_hz = 100e6;      ///< pulse repetition frequency
  int pulses_per_bit = 1;     ///< repetitions carrying one bit
  double sample_rate_hz = 2e9;
};

/// Builds a real baseband train: one prototype copy per slot on the PRF
/// grid. Output length covers all slots plus the pulse tail.
RealWaveform build_train(const RealWaveform& prototype, const std::vector<PulseSlot>& slots,
                         const PulseTrainSpec& spec);

/// Complex-baseband version (prototype real, weights applied as real gains;
/// output complex so downstream I/Q processing is uniform).
CplxWaveform build_train_cplx(const RealWaveform& prototype, const std::vector<PulseSlot>& slots,
                              const PulseTrainSpec& spec);

/// Expands per-bit weights into per-pulse slots with pulses_per_bit
/// repetition and an optional spreading (polarity scrambling) sequence: the
/// k-th pulse of every bit is multiplied by spread[k % spread.size()].
std::vector<PulseSlot> slots_from_weights(const std::vector<double>& bit_weights,
                                          const std::vector<double>& bit_time_offsets,
                                          int pulses_per_bit,
                                          const std::vector<double>& spread = {});

/// Samples per PRF period at the spec's rate (must divide evenly; throws
/// otherwise so configurations stay sample-aligned).
std::size_t samples_per_frame(const PulseTrainSpec& spec);

}  // namespace uwb::pulse
