#pragma once
/// \file pulse_shape.h
/// \brief Baseband UWB pulse prototypes: Gaussian family (as radiated by
///        impulse transmitters like the paper's gen-1 chip) and filtered
///        pulses confined to a 500 MHz channel (gen-2 / Fig. 4 style).
///
/// All generators return a baseband RealWaveform sampled at \p fs, peak
/// amplitude 1 unless noted. Upconversion to a band-plan channel is done by
/// uwb::rf::Upconverter or the complex-baseband equivalents in pulse_train.h.

#include <cstddef>

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::pulse {

/// Shapes supported by make_pulse().
enum class PulseShape {
  kGaussian,        ///< plain Gaussian envelope
  kGaussianMono,    ///< first derivative (monocycle) -- classic impulse UWB
  kGaussianDoublet, ///< second derivative (doublet / "Mexican hat")
  kRootRaisedCos,   ///< RRC-filtered, band-confined (gen-2 / Fig. 4)
  kRectangular,     ///< ideal rectangular envelope (analysis reference)
};

/// Parameters describing one pulse.
struct PulseSpec {
  PulseShape shape = PulseShape::kRootRaisedCos;
  double bandwidth_hz = 500e6;  ///< -10 dB two-sided target bandwidth
  double sample_rate_hz = 2e9;  ///< generation sample rate
  double rrc_beta = 0.5;        ///< RRC roll-off (kRootRaisedCos only)
  int rrc_span_symbols = 4;     ///< RRC one-sided span in symbols
};

/// Gaussian pulse exp(-t^2 / (2 sigma^2)), truncated at +/- 4 sigma.
/// \p sigma_s sets the width; -10 dB bandwidth ~ 0.53/sigma.
RealWaveform gaussian_pulse(double sigma_s, double fs);

/// Gaussian monocycle (1st derivative), peak normalized to 1.
RealWaveform gaussian_monocycle(double sigma_s, double fs);

/// Gaussian doublet (2nd derivative), peak normalized to 1.
RealWaveform gaussian_doublet(double sigma_s, double fs);

/// Root-raised-cosine pulse occupying ~bandwidth_hz (two-sided) at baseband.
RealWaveform rrc_pulse(double bandwidth_hz, double beta, int span_symbols, double fs);

/// Rectangular pulse of the given duration.
RealWaveform rectangular_pulse(double duration_s, double fs);

/// Dispatch on PulseSpec. The Gaussian family maps bandwidth -> sigma so all
/// shapes hit approximately the same -10 dB bandwidth.
RealWaveform make_pulse(const PulseSpec& spec);

/// Sigma that gives a Gaussian pulse the requested -10 dB bandwidth.
double gaussian_sigma_for_bandwidth(double bandwidth_hz);

/// Duration between the first and last samples exceeding \p fraction of the
/// pulse peak (e.g. 0.01 for the "visible" duration in Fig. 4).
double pulse_duration(const RealWaveform& p, double fraction = 0.01);

}  // namespace uwb::pulse
