#pragma once
/// \file band_plan.h
/// \brief The gen-2 band plan: fourteen 500 MHz sub-band channels spanning
///        the FCC 3.1-10.6 GHz allocation ("upconverted to one of 14
///        channels", paper Section 3).

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace uwb::pulse {

/// One sub-band channel of the band plan.
struct BandChannel {
  int index = 0;          ///< 0..13
  double center_hz = 0.0; ///< carrier frequency
  double low_hz = 0.0;    ///< lower band edge
  double high_hz = 0.0;   ///< upper band edge
};

/// The 14-channel plan. Channels are 500 MHz wide, packed edge-to-edge
/// starting at the 3.1 GHz FCC edge with a uniform spacing chosen so the
/// topmost channel's upper edge stays within 10.6 GHz.
class BandPlan {
 public:
  BandPlan();

  /// Number of channels (14).
  [[nodiscard]] std::size_t num_channels() const noexcept { return channels_.size(); }

  /// Channel descriptor by index (throws on out-of-range).
  [[nodiscard]] const BandChannel& channel(int index) const;

  /// All channels.
  [[nodiscard]] const std::vector<BandChannel>& channels() const noexcept { return channels_; }

  /// Carrier frequency of channel \p index.
  [[nodiscard]] double center_frequency(int index) const { return channel(index).center_hz; }

  /// The channel whose band contains \p freq_hz, or -1 if none.
  [[nodiscard]] int channel_of_frequency(double freq_hz) const noexcept;

  /// The channel whose carrier is nearest \p freq_hz.
  [[nodiscard]] int nearest_channel(double freq_hz) const noexcept;

  /// True when every channel lies fully inside the FCC 3.1-10.6 GHz band.
  [[nodiscard]] bool within_fcc_band() const noexcept;

  /// Channel width (uniform) in Hz.
  [[nodiscard]] double channel_bandwidth() const noexcept { return bandwidth_; }

 private:
  std::vector<BandChannel> channels_;
  double bandwidth_ = pulse_bandwidth_hz;
};

}  // namespace uwb::pulse
