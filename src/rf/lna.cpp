#include "rf/lna.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::rf {

Lna::Lna(const LnaParams& params) : params_(params) {
  detail::require(params.noise_figure_db >= 0.0, "Lna: noise figure must be >= 0 dB");
  detail::require(params.headroom_db > 0.0, "Lna: headroom must be positive");
  gain_amp_ = db_to_amp(params.gain_db);
  excess_noise_factor_ = from_db(params.noise_figure_db) - 1.0;
  headroom_amp_ = db_to_amp(params.headroom_db);
}

double Lna::saturation_amplitude(double input_rms) const noexcept {
  return input_rms * headroom_amp_;
}

namespace {

/// Soft limiter: sat * tanh(x / sat); odd, smooth, ~linear for small x.
inline double soft_clip(double x, double sat) noexcept {
  return sat * std::tanh(x / sat);
}

inline cplx soft_clip(const cplx& x, double sat) noexcept {
  // Envelope limiting: compress magnitude, keep phase.
  const double mag = std::abs(x);
  if (mag < 1e-300) return x;
  return x * (soft_clip(mag, sat) / mag);
}

template <typename T>
double rms_of(const std::vector<T>& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& v : x) {
    if constexpr (std::is_same_v<T, cplx>) {
      acc += std::norm(v);
    } else {
      acc += v * v;
    }
  }
  return std::sqrt(acc / static_cast<double>(x.size()));
}

}  // namespace

template <typename T>
void Lna::process_impl(std::vector<T>& x, double input_noise_variance, Rng& rng) const {
  const double added_var = excess_noise_factor_ * input_noise_variance;
  const double sigma = std::sqrt(std::max(added_var, 0.0));
  const double input_rms = rms_of(x);
  const double sat = saturation_amplitude(input_rms);
  for (auto& v : x) {
    if (sigma > 0.0) {
      if constexpr (std::is_same_v<T, cplx>) {
        v += rng.cgaussian(sigma * sigma);
      } else {
        v += rng.gaussian(0.0, sigma);
      }
    }
    if (sat > 0.0) {
      v = soft_clip(v, sat) * gain_amp_;
    } else {
      v = v * gain_amp_;
    }
  }
}

void Lna::process(RealWaveform& x, double input_noise_variance, Rng& rng) const {
  process_impl(x.samples(), input_noise_variance, rng);
}

void Lna::process(CplxWaveform& x, double input_noise_variance, Rng& rng) const {
  process_impl(x.samples(), input_noise_variance, rng);
}

template void Lna::process_impl<double>(std::vector<double>&, double, Rng&) const;
template void Lna::process_impl<cplx>(std::vector<cplx>&, double, Rng&) const;

}  // namespace uwb::rf
