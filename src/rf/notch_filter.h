#pragma once
/// \file notch_filter.h
/// \brief Tunable notch for narrowband-interferer suppression. The digital
///        back end's spectral monitor estimates the interferer frequency
///        "that may be used in the front end notch filter" (paper Section 3)
///        -- this is that filter.
///
/// Two variants:
///  * RealNotch: biquad pair notching +/- f0 in a real passband signal.
///  * ComplexNotch: first-order complex coefficient notch killing a single
///    signed baseband frequency, the natural form after direct conversion.

#include "common/types.h"
#include "common/waveform.h"
#include "dsp/biquad.h"

namespace uwb::rf {

/// Real-signal notch (wraps an RBJ biquad).
class RealNotch {
 public:
  RealNotch(double f0_hz, double q, double fs);

  [[nodiscard]] double center_frequency() const noexcept { return f0_; }

  /// Re-tunes the notch (state preserved; a real front end would glitch,
  /// which the settle-time parameter of the caller accounts for).
  void tune(double f0_hz);

  [[nodiscard]] RealWaveform process(const RealWaveform& x);

  void reset() noexcept { biquad_.reset(); }

 private:
  double f0_;
  double q_;
  double fs_;
  dsp::Biquad<double> biquad_;
};

/// Complex baseband notch: H(z) = (1 - e^{jw0} z^-1) / (1 - r e^{jw0} z^-1).
/// Unity gain far from w0, zero exactly at w0; \p pole_radius r in (0,1)
/// sets the notch width (closer to 1 = narrower).
class ComplexNotch {
 public:
  ComplexNotch(double f0_hz, double fs, double pole_radius = 0.98);

  [[nodiscard]] double center_frequency() const noexcept { return f0_; }
  [[nodiscard]] double pole_radius() const noexcept { return r_; }

  void tune(double f0_hz);

  /// Notch depth is infinite at f0; 3 dB width ~ fs (1-r)/pi.
  [[nodiscard]] double bandwidth_3db_hz() const noexcept;

  [[nodiscard]] CplxWaveform process(const CplxWaveform& x);

  /// Response at a frequency (verification).
  [[nodiscard]] cplx response_at(double f_hz) const;

  void reset() noexcept { state_ = cplx{}; prev_in_ = cplx{}; }

 private:
  double f0_;
  double fs_;
  double r_;
  cplx zero_rot_;   ///< e^{j w0}
  cplx state_{};    ///< previous output
  cplx prev_in_{};  ///< previous input
};

}  // namespace uwb::rf
