#pragma once
/// \file synthesizer.h
/// \brief Frequency synthesizer model for the 14-channel band plan: channel
///        switching with settling time, and LO phase noise as a filtered
///        random-walk process ("PLL/DLL" block of the paper's Fig. 3).

#include "common/rng.h"
#include "common/types.h"
#include "pulse/band_plan.h"

namespace uwb::rf {

/// Synthesizer parameters.
struct SynthesizerParams {
  double settle_time_s = 2e-6;        ///< channel-switch settling
  double phase_noise_rms_rad = 0.0;   ///< integrated phase noise
  double loop_bandwidth_hz = 1e6;     ///< PLL loop bandwidth (noise shaping)
};

/// Channel-hopping LO with phase noise.
class Synthesizer {
 public:
  Synthesizer(const pulse::BandPlan& plan, const SynthesizerParams& params);

  [[nodiscard]] const SynthesizerParams& params() const noexcept { return params_; }

  /// Currently selected channel index.
  [[nodiscard]] int channel() const noexcept { return channel_; }

  /// Current LO frequency [Hz].
  [[nodiscard]] double frequency() const noexcept;

  /// Switches to \p channel; returns the settle time the hop costs.
  double tune(int channel);

  /// Generates \p n samples of LO phase error (rad) at \p fs: white phase
  /// noise shaped by a one-pole lowpass at the loop bandwidth, scaled to the
  /// configured RMS. All zeros when phase_noise_rms_rad == 0.
  [[nodiscard]] RealVec phase_noise(std::size_t n, double fs, Rng& rng) const;

  /// Applies phase noise multiplicatively to a complex baseband waveform:
  /// y[n] = x[n] e^{j theta[n]}.
  void apply_phase_noise(CplxVec& x, double fs, Rng& rng) const;

 private:
  const pulse::BandPlan& plan_;
  SynthesizerParams params_;
  int channel_ = 0;
};

}  // namespace uwb::rf
