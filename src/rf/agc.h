#pragma once
/// \file agc.h
/// \brief Variable-gain amplifier with an automatic gain control loop that
///        loads the ADC optimally -- critical at 1-5 bit resolutions where
///        both clipping and underloading destroy the paper's resolution
///        trade-offs.

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::rf {

/// AGC parameters.
struct AgcParams {
  double target_rms = 0.25;       ///< desired rms relative to ADC full scale 1.0
  double min_gain_db = -40.0;
  double max_gain_db = 60.0;
  std::size_t window = 256;       ///< power-measurement window (samples)
  double step_db = 1.0;           ///< per-window gain adjustment (loop mode)
};

/// Gain control. Two modes:
///  * one_shot(): measure the whole buffer, set the exact gain (models a
///    converged AGC during the preamble -- what BER sims use).
///  * track(): windowed feedback loop with step_db moves (models dynamics).
class Agc {
 public:
  explicit Agc(const AgcParams& params = {});

  [[nodiscard]] const AgcParams& params() const noexcept { return params_; }
  [[nodiscard]] double gain_db() const noexcept { return gain_db_; }

  /// Measures rms of \p x and applies the exact gain to hit target_rms,
  /// clamped to the gain range. Returns the gained signal.
  CplxWaveform one_shot(const CplxWaveform& x);
  RealWaveform one_shot(const RealWaveform& x);

  /// Windowed tracking loop; gain_db() holds the final gain afterwards.
  CplxWaveform track(const CplxWaveform& x);

  void reset() noexcept { gain_db_ = 0.0; }

 private:
  AgcParams params_;
  double gain_db_ = 0.0;
};

}  // namespace uwb::rf
