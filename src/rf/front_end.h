#pragma once
/// \file front_end.h
/// \brief The composed receive front end of Fig. 3: LNA -> quadrature
///        direct-conversion mixer -> (optional notch) -> VGA/AGC, plus the
///        Friis cascade arithmetic that turns per-stage specs into a system
///        noise figure.
///
/// Two processing paths:
///  * Passband path (process_passband): real RF at a high sample rate goes
///    through the actual mixer. Used by the demos and the Fig. 4 bench.
///  * Baseband-equivalent path (process_baseband): for Monte-Carlo BER at
///    2 GS/s complex baseband; the same impairments (compression, I/Q
///    imbalance, DC offset, phase noise, notch, AGC) applied without
///    synthesizing a 21+ GS/s carrier.

#include <optional>

#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"
#include "pulse/band_plan.h"
#include "rf/agc.h"
#include "rf/lna.h"
#include "rf/mixer.h"
#include "rf/notch_filter.h"
#include "rf/synthesizer.h"

namespace uwb::rf {

/// One gain stage for the Friis cascade.
struct CascadeStage {
  const char* name = "stage";
  double gain_db = 0.0;
  double noise_figure_db = 0.0;
};

/// Cascaded noise figure (dB) of a chain of stages (Friis formula).
double cascade_noise_figure_db(const std::vector<CascadeStage>& stages);

/// Front-end configuration.
struct FrontEndParams {
  LnaParams lna{};
  IqImpairments iq{};
  SynthesizerParams synth{};
  AgcParams agc{};
  double baseband_cutoff_hz = 300e6;  ///< anti-alias lowpass (one-sided)
  double analog_fs = 4e9;             ///< rate the baseband path runs at
  std::size_t anti_alias_taps = 63;
  bool enable_agc = true;
};

/// The gen-2 receive front end.
class FrontEnd {
 public:
  FrontEnd(const FrontEndParams& params, const pulse::BandPlan& plan);

  [[nodiscard]] const FrontEndParams& params() const noexcept { return params_; }

  /// Tunes the LO to a band-plan channel; returns settle time [s].
  double tune(int channel) { return synth_.tune(channel); }
  [[nodiscard]] int channel() const noexcept { return synth_.channel(); }

  /// Enables the notch at the given baseband offset frequency (driven by
  /// the digital spectral monitor).
  void set_notch(double f0_offset_hz, double fs);

  /// Disables the notch.
  void clear_notch() noexcept { notch_.reset(); }

  [[nodiscard]] bool notch_enabled() const noexcept { return notch_.has_value(); }

  /// System noise figure of this configuration [dB].
  [[nodiscard]] double system_noise_figure_db() const;

  /// Baseband-equivalent receive processing (see file comment).
  /// \p input_noise_variance is the per-sample noise power already on x
  /// (the LNA adds its excess noise relative to this).
  [[nodiscard]] CplxWaveform process_baseband(const CplxWaveform& x,
                                              double input_noise_variance, Rng& rng);

  /// Full passband path: LNA, downconversion at the tuned channel,
  /// decimation by \p decim down to the ADC rate.
  [[nodiscard]] CplxWaveform process_passband(const RealWaveform& rf,
                                              double input_noise_variance, int decim,
                                              Rng& rng);

 private:
  FrontEndParams params_;
  const pulse::BandPlan& plan_;
  Lna lna_;
  Synthesizer synth_;
  Agc agc_;
  std::optional<ComplexNotch> notch_;
  RealVec anti_alias_taps_;  ///< baseband anti-alias lowpass at analog_fs
};

}  // namespace uwb::rf
