#pragma once
/// \file mixer.h
/// \brief Quadrature conversion between real passband and complex baseband:
///        the "direct conversion architecture" of the paper's title.
///
/// Downconversion: y_bb = LPF( 2 x_rf e^{-j 2 pi fc t} ), with the classic
/// direct-conversion impairments -- I/Q gain and phase imbalance, per-rail
/// DC offsets, LO leakage. Upconversion is the adjoint for the transmitter.

#include "common/types.h"
#include "common/waveform.h"
#include "dsp/fir_filter.h"

namespace uwb::rf {

/// Direct-conversion impairments (all zero = ideal mixer).
struct IqImpairments {
  double gain_imbalance_db = 0.0;   ///< I vs Q amplitude mismatch
  double phase_imbalance_rad = 0.0; ///< Q LO phase error
  double dc_offset_i = 0.0;         ///< additive DC on I rail
  double dc_offset_q = 0.0;         ///< additive DC on Q rail
  double lo_leakage_db = -100.0;    ///< LO feedthrough relative to signal

  [[nodiscard]] bool ideal() const noexcept {
    return gain_imbalance_db == 0.0 && phase_imbalance_rad == 0.0 && dc_offset_i == 0.0 &&
           dc_offset_q == 0.0 && lo_leakage_db <= -99.0;
  }
};

/// Quadrature downconverter (RF real passband -> complex baseband).
class Downconverter {
 public:
  /// \p lo_freq_hz is the LO (channel center); \p baseband_cutoff_hz the
  /// post-mix lowpass edge; \p fs the passband sample rate.
  Downconverter(double lo_freq_hz, double baseband_cutoff_hz, double fs,
                const IqImpairments& impairments = {}, std::size_t lpf_taps = 127);

  [[nodiscard]] double lo_frequency() const noexcept { return lo_freq_; }

  /// Converts; output remains at the passband sample rate (decimate after).
  [[nodiscard]] CplxWaveform process(const RealWaveform& rf) const;

 private:
  double lo_freq_;
  double fs_;
  IqImpairments imp_;
  RealVec lpf_;
  double gain_i_, gain_q_;
};

/// Quadrature upconverter (complex baseband -> RF real passband).
class Upconverter {
 public:
  /// \p lo_freq_hz the carrier; input must already be at the RF sample rate.
  Upconverter(double lo_freq_hz, double fs, const IqImpairments& impairments = {});

  [[nodiscard]] double lo_frequency() const noexcept { return lo_freq_; }

  /// x_rf(t) = Re{x_bb(t)} cos(wt) - Im{x_bb(t)} sin(wt), with impairments.
  [[nodiscard]] RealWaveform process(const CplxWaveform& baseband) const;

 private:
  double lo_freq_;
  double fs_;
  IqImpairments imp_;
  double gain_i_, gain_q_;
};

/// Applies I/Q impairments directly to a complex baseband signal -- the
/// baseband-equivalent shortcut used by the BER simulations (avoids
/// synthesizing 21+ GS/s passband). Models the same gain/phase imbalance
/// and DC offsets as the passband path.
CplxWaveform apply_iq_impairments(const CplxWaveform& x, const IqImpairments& imp);

/// Image-rejection ratio implied by a gain/phase imbalance pair [dB].
double image_rejection_ratio_db(const IqImpairments& imp);

}  // namespace uwb::rf
