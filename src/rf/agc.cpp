#include "rf/agc.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::rf {

Agc::Agc(const AgcParams& params) : params_(params) {
  detail::require(params.target_rms > 0.0, "Agc: target rms must be positive");
  detail::require(params.max_gain_db > params.min_gain_db, "Agc: max gain must exceed min");
  detail::require(params.window > 0, "Agc: window must be positive");
}

namespace {

template <typename T>
double rms_of(const std::vector<T>& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& v : x) {
    if constexpr (std::is_same_v<T, cplx>) {
      acc += std::norm(v);
    } else {
      acc += v * v;
    }
  }
  return std::sqrt(acc / static_cast<double>(x.size()));
}

}  // namespace

CplxWaveform Agc::one_shot(const CplxWaveform& x) {
  const double r = rms_of(x.samples());
  const double wanted_db = (r > 0.0) ? amp_to_db(params_.target_rms / r) : params_.max_gain_db;
  gain_db_ = std::clamp(wanted_db, params_.min_gain_db, params_.max_gain_db);
  CplxWaveform out = x;
  out.scale(db_to_amp(gain_db_));
  return out;
}

RealWaveform Agc::one_shot(const RealWaveform& x) {
  const double r = rms_of(x.samples());
  const double wanted_db = (r > 0.0) ? amp_to_db(params_.target_rms / r) : params_.max_gain_db;
  gain_db_ = std::clamp(wanted_db, params_.min_gain_db, params_.max_gain_db);
  RealWaveform out = x;
  out.scale(db_to_amp(gain_db_));
  return out;
}

CplxWaveform Agc::track(const CplxWaveform& x) {
  CplxWaveform out(x.size(), x.sample_rate());
  double gain = db_to_amp(gain_db_);
  std::size_t i = 0;
  while (i < x.size()) {
    const std::size_t end = std::min(i + params_.window, x.size());
    double acc = 0.0;
    for (std::size_t k = i; k < end; ++k) {
      out[k] = x[k] * gain;
      acc += std::norm(out[k]);
    }
    const double r = std::sqrt(acc / static_cast<double>(end - i));
    // Bang-bang loop: step gain toward the target.
    if (r > params_.target_rms * 1.05) {
      gain_db_ -= params_.step_db;
    } else if (r < params_.target_rms * 0.95) {
      gain_db_ += params_.step_db;
    }
    gain_db_ = std::clamp(gain_db_, params_.min_gain_db, params_.max_gain_db);
    gain = db_to_amp(gain_db_);
    i = end;
  }
  return out;
}

}  // namespace uwb::rf
