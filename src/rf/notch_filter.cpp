#include "rf/notch_filter.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::rf {

RealNotch::RealNotch(double f0_hz, double q, double fs)
    : f0_(f0_hz), q_(q), fs_(fs), biquad_(dsp::design_notch(f0_hz, q, fs)) {}

void RealNotch::tune(double f0_hz) {
  f0_ = f0_hz;
  biquad_.set_coeffs(dsp::design_notch(f0_hz, q_, fs_));
}

RealWaveform RealNotch::process(const RealWaveform& x) {
  detail::require(x.sample_rate() == fs_, "RealNotch: sample-rate mismatch");
  return RealWaveform(biquad_.process(x.samples()), fs_);
}

ComplexNotch::ComplexNotch(double f0_hz, double fs, double pole_radius)
    : f0_(f0_hz), fs_(fs), r_(pole_radius) {
  detail::require(fs > 0.0, "ComplexNotch: fs must be positive");
  detail::require(std::abs(f0_hz) < fs / 2.0, "ComplexNotch: |f0| must be < fs/2");
  detail::require(pole_radius > 0.0 && pole_radius < 1.0,
                  "ComplexNotch: pole radius must be in (0,1)");
  zero_rot_ = std::polar(1.0, two_pi * f0_ / fs_);
}

void ComplexNotch::tune(double f0_hz) {
  detail::require(std::abs(f0_hz) < fs_ / 2.0, "ComplexNotch::tune: |f0| must be < fs/2");
  f0_ = f0_hz;
  zero_rot_ = std::polar(1.0, two_pi * f0_ / fs_);
}

double ComplexNotch::bandwidth_3db_hz() const noexcept {
  return fs_ * (1.0 - r_) / pi;
}

CplxWaveform ComplexNotch::process(const CplxWaveform& x) {
  detail::require(x.sample_rate() == fs_, "ComplexNotch: sample-rate mismatch");
  CplxVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // y[n] = x[n] - e^{jw0} x[n-1] + r e^{jw0} y[n-1]
    const cplx y = x[i] - zero_rot_ * prev_in_ + r_ * zero_rot_ * state_;
    prev_in_ = x[i];
    state_ = y;
    out[i] = y;
  }
  return CplxWaveform(std::move(out), fs_);
}

cplx ComplexNotch::response_at(double f_hz) const {
  const cplx z_inv = std::polar(1.0, -two_pi * f_hz / fs_);
  return (1.0 - zero_rot_ * z_inv) / (1.0 - r_ * zero_rot_ * z_inv);
}

}  // namespace uwb::rf
