#include "rf/front_end.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"
#include "dsp/resampler.h"

namespace uwb::rf {

double cascade_noise_figure_db(const std::vector<CascadeStage>& stages) {
  detail::require(!stages.empty(), "cascade_noise_figure_db: empty chain");
  double f_total = 0.0;
  double gain_product = 1.0;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const double f = from_db(stages[i].noise_figure_db);
    if (i == 0) {
      f_total = f;
    } else {
      f_total += (f - 1.0) / gain_product;
    }
    gain_product *= from_db(stages[i].gain_db);
  }
  return to_db(f_total);
}

FrontEnd::FrontEnd(const FrontEndParams& params, const pulse::BandPlan& plan)
    : params_(params), plan_(plan), lna_(params.lna), synth_(plan, params.synth),
      agc_(params.agc) {
  anti_alias_taps_ = dsp::design_lowpass(params.baseband_cutoff_hz, params.analog_fs,
                                         params.anti_alias_taps);
}

void FrontEnd::set_notch(double f0_offset_hz, double fs) {
  notch_.emplace(f0_offset_hz, fs);
}

double FrontEnd::system_noise_figure_db() const {
  // LNA -> mixer (assumed 10 dB NF, 0 dB conversion gain) -> baseband VGA
  // (15 dB NF). Representative 2005-era direct-conversion numbers.
  return cascade_noise_figure_db({
      {"lna", params_.lna.gain_db, params_.lna.noise_figure_db},
      {"mixer", 0.0, 10.0},
      {"vga", 20.0, 15.0},
  });
}

CplxWaveform FrontEnd::process_baseband(const CplxWaveform& x, double input_noise_variance,
                                        Rng& rng) {
  detail::require(x.sample_rate() == params_.analog_fs,
                  "FrontEnd::process_baseband: configure analog_fs to match the input");
  CplxWaveform y = x;
  // LNA: excess noise + envelope compression + gain.
  lna_.process(y, input_noise_variance, rng);
  // LO phase noise (multiplicative).
  synth_.apply_phase_noise(y.samples(), y.sample_rate(), rng);
  // Direct-conversion I/Q impairments.
  if (!params_.iq.ideal()) {
    y = apply_iq_impairments(y, params_.iq);
  }
  // Anti-alias lowpass ahead of the converters (the baseband filter of the
  // direct-conversion chain). Without it, wideband noise folds into the
  // ADC's Nyquist band and costs several dB of effective Eb/N0.
  y = dsp::filter_same(y, anti_alias_taps_);
  // Optional interferer notch.
  if (notch_.has_value()) {
    notch_->reset();
    y = notch_->process(y);
  }
  // AGC loads the ADC.
  if (params_.enable_agc) {
    y = agc_.one_shot(y);
  }
  return y;
}

CplxWaveform FrontEnd::process_passband(const RealWaveform& rf, double input_noise_variance,
                                        int decim, Rng& rng) {
  detail::require(decim >= 1, "process_passband: decimation must be >= 1");
  RealWaveform amplified = rf;
  lna_.process(amplified, input_noise_variance, rng);

  Downconverter down(synth_.frequency(), params_.baseband_cutoff_hz, rf.sample_rate(),
                     params_.iq);
  CplxWaveform bb = down.process(amplified);
  synth_.apply_phase_noise(bb.samples(), bb.sample_rate(), rng);

  if (decim > 1) {
    bb = CplxWaveform(dsp::downsample_raw(bb.samples(), decim), bb.sample_rate() / decim);
  }
  if (notch_.has_value()) {
    notch_->reset();
    // Re-tune the notch object to the decimated rate domain if needed: the
    // notch was configured by set_notch with an explicit fs, trust it.
    bb = notch_->process(bb);
  }
  if (params_.enable_agc) {
    bb = agc_.one_shot(bb);
  }
  return bb;
}

}  // namespace uwb::rf
