#include "rf/mixer.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/filter_design.h"

namespace uwb::rf {

Downconverter::Downconverter(double lo_freq_hz, double baseband_cutoff_hz, double fs,
                             const IqImpairments& impairments, std::size_t lpf_taps)
    : lo_freq_(lo_freq_hz), fs_(fs), imp_(impairments) {
  detail::require(lo_freq_hz > 0.0 && lo_freq_hz < fs / 2.0,
                  "Downconverter: LO must be in (0, fs/2)");
  detail::require(baseband_cutoff_hz > 0.0 && baseband_cutoff_hz < fs / 2.0,
                  "Downconverter: cutoff must be in (0, fs/2)");
  lpf_ = dsp::design_lowpass(baseband_cutoff_hz, fs, lpf_taps);
  const double half_imb = db_to_amp(imp_.gain_imbalance_db / 2.0);
  gain_i_ = half_imb;
  gain_q_ = 1.0 / half_imb;
}

CplxWaveform Downconverter::process(const RealWaveform& rf) const {
  detail::require(rf.sample_rate() == fs_, "Downconverter: sample-rate mismatch");
  const std::size_t n = rf.size();
  const double w = two_pi * lo_freq_ / fs_;
  const double lo_leak_amp = db_to_amp(imp_.lo_leakage_db);

  // Mix: I = 2 x cos(wt) * gi, Q = -2 x sin(wt + phase_error) * gq.
  CplxVec mixed(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = w * static_cast<double>(i);
    const double x = rf[i] + lo_leak_amp * std::cos(t);  // LO feedthrough into the RF port
    const double i_rail = 2.0 * x * std::cos(t) * gain_i_ + imp_.dc_offset_i;
    const double q_rail =
        -2.0 * x * std::sin(t + imp_.phase_imbalance_rad) * gain_q_ + imp_.dc_offset_q;
    mixed[i] = {i_rail, q_rail};
  }
  // Post-mix lowpass removes the 2 fc image. The long LPF over an RF-rate
  // capture is the mixer's dominant cost; dsp::convolve_same dispatches it
  // to overlap-save FFT convolution (see dsp/fast_convolve.h).
  return CplxWaveform(dsp::convolve_same(mixed, lpf_), fs_);
}

Upconverter::Upconverter(double lo_freq_hz, double fs, const IqImpairments& impairments)
    : lo_freq_(lo_freq_hz), fs_(fs), imp_(impairments) {
  detail::require(lo_freq_hz > 0.0 && lo_freq_hz < fs / 2.0,
                  "Upconverter: LO must be in (0, fs/2)");
  const double half_imb = db_to_amp(imp_.gain_imbalance_db / 2.0);
  gain_i_ = half_imb;
  gain_q_ = 1.0 / half_imb;
}

RealWaveform Upconverter::process(const CplxWaveform& baseband) const {
  detail::require(baseband.sample_rate() == fs_, "Upconverter: sample-rate mismatch");
  const std::size_t n = baseband.size();
  const double w = two_pi * lo_freq_ / fs_;
  const double lo_leak_amp = db_to_amp(imp_.lo_leakage_db);
  RealVec rf(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = w * static_cast<double>(i);
    const double i_bb = (baseband[i].real() + imp_.dc_offset_i) * gain_i_;
    const double q_bb = (baseband[i].imag() + imp_.dc_offset_q) * gain_q_;
    rf[i] = i_bb * std::cos(t) - q_bb * std::sin(t + imp_.phase_imbalance_rad) +
            lo_leak_amp * std::cos(t);
  }
  return RealWaveform(std::move(rf), fs_);
}

CplxWaveform apply_iq_impairments(const CplxWaveform& x, const IqImpairments& imp) {
  // Baseband-equivalent imbalance: y = a x + b conj(x) + dc, where
  // a = (gi + gq e^{-j phi})/2, b = (gi - gq e^{+j phi})/2.
  const double half_imb = db_to_amp(imp.gain_imbalance_db / 2.0);
  const double gi = half_imb, gq = 1.0 / half_imb;
  const cplx e_minus = std::polar(1.0, -imp.phase_imbalance_rad);
  const cplx e_plus = std::polar(1.0, imp.phase_imbalance_rad);
  const cplx a = 0.5 * (gi + gq * e_minus);
  const cplx b = 0.5 * (gi - gq * e_plus);
  const cplx dc(imp.dc_offset_i, imp.dc_offset_q);

  CplxVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = a * x[i] + b * std::conj(x[i]) + dc;
  }
  return CplxWaveform(std::move(out), x.sample_rate());
}

double image_rejection_ratio_db(const IqImpairments& imp) {
  const double half_imb = db_to_amp(imp.gain_imbalance_db / 2.0);
  const double gi = half_imb, gq = 1.0 / half_imb;
  const cplx e_minus = std::polar(1.0, -imp.phase_imbalance_rad);
  const cplx e_plus = std::polar(1.0, imp.phase_imbalance_rad);
  const double a = std::abs(0.5 * (gi + gq * e_minus));
  const double b = std::abs(0.5 * (gi - gq * e_plus));
  if (b < 1e-300) return 300.0;
  return 20.0 * std::log10(a / b);
}

}  // namespace uwb::rf
