#include "rf/synthesizer.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::rf {

Synthesizer::Synthesizer(const pulse::BandPlan& plan, const SynthesizerParams& params)
    : plan_(plan), params_(params) {
  detail::require(params.settle_time_s >= 0.0, "Synthesizer: settle time must be >= 0");
  detail::require(params.phase_noise_rms_rad >= 0.0, "Synthesizer: phase noise rms must be >= 0");
  detail::require(params.loop_bandwidth_hz > 0.0, "Synthesizer: loop bandwidth must be > 0");
}

double Synthesizer::frequency() const noexcept { return plan_.channels()[channel_].center_hz; }

double Synthesizer::tune(int channel) {
  detail::require(channel >= 0 && channel < static_cast<int>(plan_.num_channels()),
                  "Synthesizer::tune: channel out of range");
  if (channel == channel_) return 0.0;
  channel_ = channel;
  return params_.settle_time_s;
}

RealVec Synthesizer::phase_noise(std::size_t n, double fs, Rng& rng) const {
  RealVec theta(n, 0.0);
  if (params_.phase_noise_rms_rad <= 0.0 || n == 0) return theta;

  // One-pole lowpass driven by white noise: theta[k] = a theta[k-1] + w[k].
  // Stationary variance = sigma_w^2 / (1 - a^2); scale to the target RMS.
  const double a = std::exp(-two_pi * params_.loop_bandwidth_hz / fs);
  const double target_var = params_.phase_noise_rms_rad * params_.phase_noise_rms_rad;
  const double sigma_w = std::sqrt(target_var * (1.0 - a * a));
  double state = rng.gaussian(0.0, params_.phase_noise_rms_rad);  // stationary start
  for (std::size_t i = 0; i < n; ++i) {
    state = a * state + rng.gaussian(0.0, sigma_w);
    theta[i] = state;
  }
  return theta;
}

void Synthesizer::apply_phase_noise(CplxVec& x, double fs, Rng& rng) const {
  if (params_.phase_noise_rms_rad <= 0.0) return;
  const RealVec theta = phase_noise(x.size(), fs, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] *= std::polar(1.0, theta[i]);
  }
}

}  // namespace uwb::rf
