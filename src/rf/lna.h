#pragma once
/// \file lna.h
/// \brief Behavioral low-noise amplifier: gain, noise figure and soft
///        compression. Section 1 requires the RF front end to "meet the
///        specifications on noise figure and linearity over a bandwidth
///        larger than 500 MHz"; this model supplies those specifications as
///        parameters.
///
/// The simulator's waveforms are unitless, so linearity is specified as
/// *headroom*: the soft-limiting knee sits headroom_db above the input's
/// rms level. A large headroom (default 20 dB) models an amplifier
/// operating in its linear region; small values model front-end overload
/// (e.g. a strong in-band interferer driving the LNA into compression).

#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::rf {

/// LNA parameters.
struct LnaParams {
  double gain_db = 15.0;
  double noise_figure_db = 4.0;
  double headroom_db = 20.0;  ///< compression knee above input rms
};

/// Gain + additive noise + tanh soft limiter.
///
/// Noise injection needs a reference: \p input_noise_variance is the total
/// input-referred noise power per sample already present (e.g. from the
/// channel). The LNA adds (F - 1) times that, the standard excess-noise
/// view of noise figure, so a noiseless configuration adds nothing.
class Lna {
 public:
  explicit Lna(const LnaParams& params);

  [[nodiscard]] const LnaParams& params() const noexcept { return params_; }

  [[nodiscard]] double gain_linear() const noexcept { return gain_amp_; }

  /// Amplifies a real passband waveform in place.
  void process(RealWaveform& x, double input_noise_variance, Rng& rng) const;

  /// Amplifies a complex baseband waveform in place (envelope compression).
  void process(CplxWaveform& x, double input_noise_variance, Rng& rng) const;

  /// The saturation amplitude the limiter would use for an input of the
  /// given rms level.
  [[nodiscard]] double saturation_amplitude(double input_rms) const noexcept;

 private:
  template <typename T>
  void process_impl(std::vector<T>& x, double input_noise_variance, Rng& rng) const;

  LnaParams params_;
  double gain_amp_;
  double excess_noise_factor_;  ///< F - 1, linear
  double headroom_amp_;
};

}  // namespace uwb::rf
