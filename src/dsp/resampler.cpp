#include "dsp/resampler.h"

#include "common/error.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"

namespace uwb::dsp {

namespace {

template <typename T>
std::vector<T> zero_stuff(const std::vector<T>& x, int factor) {
  std::vector<T> out(x.size() * static_cast<std::size_t>(factor), T{});
  for (std::size_t i = 0; i < x.size(); ++i) out[i * factor] = x[i];
  return out;
}

}  // namespace

RealWaveform upsample(const RealWaveform& x, int factor, std::size_t filter_taps) {
  detail::require(factor >= 1, "upsample: factor must be >= 1");
  if (factor == 1) return x;
  const double new_fs = x.sample_rate() * factor;
  auto stuffed = zero_stuff(x.samples(), factor);
  // Interpolation filter: cutoff at the old Nyquist, gain = factor to
  // preserve amplitude after zero-stuffing.
  RealVec taps = design_lowpass(0.45 * x.sample_rate(), new_fs, filter_taps);
  for (auto& t : taps) t *= factor;
  return RealWaveform(convolve_same(stuffed, taps), new_fs);
}

CplxWaveform upsample(const CplxWaveform& x, int factor, std::size_t filter_taps) {
  detail::require(factor >= 1, "upsample: factor must be >= 1");
  if (factor == 1) return x;
  const double new_fs = x.sample_rate() * factor;
  auto stuffed = zero_stuff(x.samples(), factor);
  RealVec taps = design_lowpass(0.45 * x.sample_rate(), new_fs, filter_taps);
  for (auto& t : taps) t *= factor;
  return CplxWaveform(convolve_same(stuffed, taps), new_fs);
}

RealWaveform decimate(const RealWaveform& x, int factor, std::size_t filter_taps) {
  detail::require(factor >= 1, "decimate: factor must be >= 1");
  if (factor == 1) return x;
  const double new_fs = x.sample_rate() / factor;
  const RealVec taps = design_lowpass(0.45 * new_fs, x.sample_rate(), filter_taps);
  auto filtered = convolve_same(x.samples(), taps);
  return RealWaveform(downsample_raw(filtered, factor), new_fs);
}

CplxWaveform decimate(const CplxWaveform& x, int factor, std::size_t filter_taps) {
  detail::require(factor >= 1, "decimate: factor must be >= 1");
  if (factor == 1) return x;
  const double new_fs = x.sample_rate() / factor;
  const RealVec taps = design_lowpass(0.45 * new_fs, x.sample_rate(), filter_taps);
  auto filtered = convolve_same(x.samples(), taps);
  return CplxWaveform(downsample_raw(filtered, factor), new_fs);
}

}  // namespace uwb::dsp
