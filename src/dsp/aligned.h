#pragma once
/// \file aligned.h
/// \brief 64-byte-aligned, grow-only numeric buffers for hot-path kernels.
///
/// The sample kernels (direct FIR, matched filter, block quantizer) stream
/// megabytes of doubles per packet. std::vector's allocator only guarantees
/// alignof(double); AlignedVec guarantees cache-line (64-byte) alignment so
/// vectorized loads never straddle lines, and its resize() never shrinks
/// capacity -- a workspace reused across packets reaches zero steady-state
/// allocations after the first.

#include <cstddef>
#include <cstring>
#include <new>
#include <utility>

namespace uwb::dsp {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal owning buffer of trivially-copyable T with 64-byte alignment.
/// Grow-only: resize() reallocates only when the request exceeds capacity,
/// and never value-initializes on growth within capacity (callers of the
/// hot kernels always overwrite the full span they asked for).
template <typename T>
class AlignedVec {
 public:
  AlignedVec() noexcept = default;
  explicit AlignedVec(std::size_t n) { resize(n); }

  AlignedVec(const AlignedVec&) = delete;
  AlignedVec& operator=(const AlignedVec&) = delete;

  AlignedVec(AlignedVec&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedVec& operator=(AlignedVec&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedVec() { release(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  /// Grow-only resize; contents are unspecified after growth (hot-path
  /// callers overwrite everything they read).
  void resize(std::size_t n) {
    if (n > capacity_) {
      T* fresh = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes}));
      release();
      data_ = fresh;
      capacity_ = n;
    }
    size_ = n;
  }

  /// resize() followed by zero-fill.
  void assign_zero(std::size_t n) {
    resize(n);
    std::memset(static_cast<void*>(data_), 0, n * sizeof(T));
  }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(static_cast<void*>(data_), std::align_val_t{kCacheLineBytes});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace uwb::dsp
