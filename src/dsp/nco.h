#pragma once
/// \file nco.h
/// \brief Numerically controlled oscillator: phase-accumulator quadrature
///        tone generation for mixers, synthesizer models and interferers.

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "common/types.h"

namespace uwb::dsp {

/// Quadrature oscillator with runtime-adjustable frequency and phase.
class Nco {
 public:
  /// \p freq_hz may be negative (spectral inversion); |freq| must be < fs/2.
  Nco(double freq_hz, double fs, double initial_phase_rad = 0.0)
      : fs_(fs), phase_(initial_phase_rad) {
    detail::require(fs > 0.0, "Nco: fs must be positive");
    set_frequency(freq_hz);
  }

  void set_frequency(double freq_hz) {
    detail::require(std::abs(freq_hz) < fs_ / 2.0, "Nco: |freq| must be < fs/2");
    freq_ = freq_hz;
    step_ = two_pi * freq_hz / fs_;
  }

  [[nodiscard]] double frequency() const noexcept { return freq_; }
  [[nodiscard]] double phase() const noexcept { return phase_; }
  void set_phase(double phase_rad) noexcept { phase_ = wrap_phase(phase_rad); }

  /// Advances one sample and returns exp(j phase): cos on I, sin on Q.
  cplx step() noexcept {
    const cplx out(std::cos(phase_), std::sin(phase_));
    phase_ = wrap_phase(phase_ + step_);
    return out;
  }

  /// Advances one sample with an extra per-sample phase perturbation
  /// (used to inject synthesizer phase noise).
  cplx step_with_jitter(double extra_phase_rad) noexcept {
    const cplx out(std::cos(phase_ + extra_phase_rad), std::sin(phase_ + extra_phase_rad));
    phase_ = wrap_phase(phase_ + step_);
    return out;
  }

  /// Generates \p n samples of the complex exponential.
  CplxVec generate(std::size_t n) {
    CplxVec out(n);
    for (auto& v : out) v = step();
    return out;
  }

  /// Generates \p n samples of the real cosine rail only.
  RealVec generate_real(std::size_t n) {
    RealVec out(n);
    for (auto& v : out) v = step().real();
    return out;
  }

 private:
  double fs_;
  double freq_ = 0.0;
  double phase_ = 0.0;
  double step_ = 0.0;
};

}  // namespace uwb::dsp
