#pragma once
/// \file window.h
/// \brief Window functions for FIR design and spectral estimation.

#include <cstddef>

#include "common/types.h"

namespace uwb::dsp {

/// Supported window shapes.
enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kKaiser,  ///< needs a beta parameter; see kaiser()
};

/// Returns an n-point window of the given type. For Kaiser, \p kaiser_beta
/// sets the sidelobe/width trade (ignored for the fixed windows).
RealVec make_window(WindowType type, std::size_t n, double kaiser_beta = 8.6);

/// n-point Hann window.
RealVec hann(std::size_t n);

/// n-point Hamming window.
RealVec hamming(std::size_t n);

/// n-point Blackman window.
RealVec blackman(std::size_t n);

/// n-point Kaiser window with shape parameter \p beta.
RealVec kaiser(std::size_t n, double beta);

/// Zeroth-order modified Bessel function of the first kind (Kaiser kernel).
double bessel_i0(double x);

/// Equivalent noise bandwidth of a window, in bins (1.0 for rectangular,
/// 1.5 for Hann). Needed to calibrate PSD estimates.
double noise_bandwidth_bins(const RealVec& window);

}  // namespace uwb::dsp
