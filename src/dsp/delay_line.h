#pragma once
/// \file delay_line.h
/// \brief Integer and fractional (linear-interpolation) delays. Fractional
///        delay models sub-sample timing offsets between TX and RX clocks.

#include <cstddef>

#include "common/error.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::dsp {

/// Applies a (possibly fractional) delay of \p delay_samples to a buffer via
/// linear interpolation. The output has the same length; leading samples
/// that would reference the past are zero.
template <typename T>
std::vector<T> fractional_delay(const std::vector<T>& x, double delay_samples) {
  detail::require(delay_samples >= 0.0, "fractional_delay: delay must be >= 0");
  std::vector<T> out(x.size(), T{});
  const std::size_t int_part = static_cast<std::size_t>(delay_samples);
  const double frac = delay_samples - static_cast<double>(int_part);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i < int_part) continue;
    const std::size_t j = i - int_part;
    const T a = x[j];
    const T b = (j > 0) ? x[j - 1] : T{};
    // Linear interpolation between x[j] (delay int_part) and x[j-1]
    // (delay int_part + 1).
    out[i] = a * (1.0 - frac) + b * frac;
  }
  return out;
}

/// Waveform helper preserving the sample rate.
template <typename T>
Waveform<T> fractional_delay(const Waveform<T>& x, double delay_seconds) {
  const double d = delay_seconds * x.sample_rate();
  return Waveform<T>(fractional_delay(x.samples(), d), x.sample_rate());
}

/// Fixed-length integer delay line for streaming use (DLL, trackers).
template <typename T>
class DelayLine {
 public:
  explicit DelayLine(std::size_t delay) : buf_(delay + 1, T{}), delay_(delay) {}

  [[nodiscard]] std::size_t delay() const noexcept { return delay_; }

  /// Pushes a sample, returns the sample from \p delay steps ago.
  T step(T x) noexcept {
    buf_[pos_] = x;
    pos_ = (pos_ + 1) % buf_.size();
    return buf_[pos_];
  }

  void reset() noexcept {
    for (auto& v : buf_) v = T{};
    pos_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t delay_;
  std::size_t pos_ = 0;
};

}  // namespace uwb::dsp
