#pragma once
/// \file biquad.h
/// \brief Second-order IIR sections (RBJ cookbook designs). The tunable
///        notch used by the RF front end to suppress the narrowband
///        interferer flagged by the digital spectral monitor is built here.

#include <cstddef>

#include "common/types.h"

namespace uwb::dsp {

/// Normalized biquad coefficients (a0 == 1).
struct BiquadCoeffs {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// RBJ notch at \p f0_hz with quality factor \p q (bandwidth f0/q).
BiquadCoeffs design_notch(double f0_hz, double q, double fs);

/// RBJ second-order Butterworth-style lowpass at \p f0_hz.
BiquadCoeffs design_biquad_lowpass(double f0_hz, double q, double fs);

/// RBJ second-order highpass at \p f0_hz.
BiquadCoeffs design_biquad_highpass(double f0_hz, double q, double fs);

/// RBJ peaking EQ (positive gain_db boosts, negative cuts) at f0.
BiquadCoeffs design_peaking(double f0_hz, double q, double gain_db, double fs);

/// Complex response of a biquad at frequency \p f (for verification).
cplx biquad_response_at(const BiquadCoeffs& c, double f_hz, double fs);

/// Direct-form-II-transposed stateful biquad over real or complex samples.
template <typename T>
class Biquad {
 public:
  Biquad() = default;
  explicit Biquad(const BiquadCoeffs& c) : c_(c) {}

  void set_coeffs(const BiquadCoeffs& c) noexcept { c_ = c; }
  [[nodiscard]] const BiquadCoeffs& coeffs() const noexcept { return c_; }

  T step(T x) noexcept {
    const T y = x * c_.b0 + z1_;
    z1_ = x * c_.b1 - y * c_.a1 + z2_;
    z2_ = x * c_.b2 - y * c_.a2;
    return y;
  }

  std::vector<T> process(const std::vector<T>& x) {
    std::vector<T> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = step(x[i]);
    return y;
  }

  void reset() noexcept {
    z1_ = T{};
    z2_ = T{};
  }

 private:
  BiquadCoeffs c_{};
  T z1_{};
  T z2_{};
};

/// Cascade of biquad sections (e.g. a deeper notch from two sections).
template <typename T>
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(const std::vector<BiquadCoeffs>& sections) {
    for (const auto& c : sections) stages_.emplace_back(c);
  }

  [[nodiscard]] std::size_t num_sections() const noexcept { return stages_.size(); }

  T step(T x) noexcept {
    for (auto& st : stages_) x = st.step(x);
    return x;
  }

  std::vector<T> process(const std::vector<T>& x) {
    std::vector<T> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = step(x[i]);
    return y;
  }

  void reset() noexcept {
    for (auto& st : stages_) st.reset();
  }

 private:
  std::vector<Biquad<T>> stages_;
};

}  // namespace uwb::dsp
