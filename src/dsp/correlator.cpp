#include "dsp/correlator.h"

#include <algorithm>
#include <cmath>

#include "dsp/fast_convolve.h"

namespace uwb::dsp {

CplxVec correlate(const CplxVec& x, const CplxVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  if (use_fft_convolve(x.size(), tmpl.size(), ConvKind::kCplxCplx)) {
    CplxVec out;
    ols_correlate(x, tmpl, out, thread_fft_workspace());
    return out;
  }
  const std::size_t num_lags = x.size() - tmpl.size() + 1;
  CplxVec out(num_lags);
  for (std::size_t k = 0; k < num_lags; ++k) {
    out[k] = dot_conj(x.data() + k, tmpl.data(), tmpl.size());
  }
  return out;
}

RealVec correlate(const RealVec& x, const RealVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  if (use_fft_convolve(x.size(), tmpl.size(), ConvKind::kRealReal)) {
    RealVec out;
    ols_correlate(x, tmpl, out, thread_fft_workspace());
    return out;
  }
  RealVec out(x.size() - tmpl.size() + 1);
  dot_bank(x.data(), out.size(), tmpl.data(), tmpl.size(), out.data());
  return out;
}

std::size_t correlate_to(const double* x, std::size_t x_len, const RealVec& tmpl,
                         double* out) {
  const std::size_t num_lags = x_len - tmpl.size() + 1;
  if (use_fft_convolve(x_len, tmpl.size(), ConvKind::kRealReal)) {
    // Overlap-save wants vector in/out; stage through temporaries (rare:
    // the workspace callers all use short matched-filter templates).
    RealVec xin(x, x + x_len);
    RealVec tmp;
    ols_correlate(xin, tmpl, tmp, thread_fft_workspace());
    std::copy(tmp.begin(), tmp.end(), out);
    return num_lags;
  }
  dot_bank(x, num_lags, tmpl.data(), tmpl.size(), out);
  return num_lags;
}

std::size_t correlate_to(const float* x, std::size_t x_len, const RealVec& tmpl,
                         float* out) {
  const std::size_t num_lags = x_len - tmpl.size() + 1;
  // The float arena only matched-filters short pulse templates; stay on the
  // direct kernel unconditionally (no float overlap-save path exists).
  constexpr std::size_t kMaxStackTaps = 256;
  float stack_taps[kMaxStackTaps];
  std::vector<float> heap_taps;
  float* t = stack_taps;
  if (tmpl.size() > kMaxStackTaps) {
    heap_taps.resize(tmpl.size());
    t = heap_taps.data();
  }
  for (std::size_t m = 0; m < tmpl.size(); ++m) t[m] = static_cast<float>(tmpl[m]);
  dot_bank(x, num_lags, t, tmpl.size(), out);
  return num_lags;
}

namespace {

/// Shared blocked kernel: kBlock lags advance together, taps ascending, one
/// independent accumulator per lag. The same lag count fills the same vector
/// registers with twice the lanes in float, which is the whole point of the
/// gen-1 single-precision arena.
template <typename T, std::size_t kBlock>
void dot_bank_impl(const T* x, std::size_t num_lags, const T* h, std::size_t h_len,
                   T* out) noexcept {
  std::size_t j = 0;
  for (; j + kBlock <= num_lags; j += kBlock) {
    T acc[kBlock] = {};
    const T* xj = x + j;
    for (std::size_t m = 0; m < h_len; ++m) {
      const T hm = h[m];
      for (std::size_t b = 0; b < kBlock; ++b) {
        acc[b] += xj[m + b] * hm;
      }
    }
    for (std::size_t b = 0; b < kBlock; ++b) out[j + b] = acc[b];
  }
  for (; j < num_lags; ++j) {
    T acc{};
    for (std::size_t m = 0; m < h_len; ++m) acc += x[j + m] * h[m];
    out[j] = acc;
  }
}

}  // namespace

void dot_bank(const double* x, std::size_t num_lags, const double* h, std::size_t h_len,
              double* out) noexcept {
  // 32 lags per block: enough independent accumulator vectors to hide the
  // FP-add latency chain (measured >2x over an 8-lag block on SSE2). Each
  // lag still accumulates alone in ascending-tap order, so the block width
  // never affects results.
  dot_bank_impl<double, 32>(x, num_lags, h, h_len, out);
}

void dot_bank(const float* x, std::size_t num_lags, const float* h, std::size_t h_len,
              float* out) noexcept {
  dot_bank_impl<float, 32>(x, num_lags, h, h_len, out);
}

RealVec normalized_correlation(const CplxVec& x, const CplxVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  double tmpl_energy = 0.0;
  for (const auto& v : tmpl) tmpl_energy += std::norm(v);
  const double tmpl_norm = std::sqrt(tmpl_energy);

  const std::size_t n = tmpl.size();
  const std::size_t num_lags = x.size() - n + 1;
  RealVec out(num_lags);

  // Running window energy for O(1) per-lag normalization.
  double win_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) win_energy += std::norm(x[i]);
  for (std::size_t k = 0; k < num_lags; ++k) {
    const cplx c = dot_conj(x.data() + k, tmpl.data(), n);
    const double denom = std::sqrt(std::max(win_energy, 1e-300)) * tmpl_norm;
    out[k] = std::abs(c) / denom;
    if (k + 1 < num_lags) {
      win_energy += std::norm(x[k + n]) - std::norm(x[k]);
      win_energy = std::max(win_energy, 0.0);
    }
  }
  return out;
}

RealVec normalized_correlation(const RealVec& x, const RealVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  double tmpl_energy = 0.0;
  for (double v : tmpl) tmpl_energy += v * v;
  const double tmpl_norm = std::sqrt(tmpl_energy);

  const std::size_t n = tmpl.size();
  const std::size_t num_lags = x.size() - n + 1;
  RealVec out(num_lags);

  double win_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) win_energy += x[i] * x[i];
  for (std::size_t k = 0; k < num_lags; ++k) {
    const double c = dot(x.data() + k, tmpl.data(), n);
    const double denom = std::sqrt(std::max(win_energy, 1e-300)) * tmpl_norm;
    out[k] = c / denom;
    if (k + 1 < num_lags) {
      win_energy += x[k + n] * x[k + n] - x[k] * x[k];
      win_energy = std::max(win_energy, 0.0);
    }
  }
  return out;
}

std::size_t argmax_abs(const CplxVec& x) {
  std::size_t best = 0;
  double best_mag = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double m = std::norm(x[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

std::size_t argmax_abs(const RealVec& x) {
  std::size_t best = 0;
  double best_mag = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double m = std::abs(x[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

cplx dot_conj(const cplx* x, const cplx* tmpl, std::size_t n) noexcept {
  cplx acc{};
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * std::conj(tmpl[i]);
  return acc;
}

double dot(const double* x, const double* tmpl, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * tmpl[i];
  return acc;
}

}  // namespace uwb::dsp
