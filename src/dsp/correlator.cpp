#include "dsp/correlator.h"

#include <cmath>

#include "dsp/fast_convolve.h"

namespace uwb::dsp {

CplxVec correlate(const CplxVec& x, const CplxVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  if (use_fft_convolve(x.size(), tmpl.size(), ConvKind::kCplxCplx)) {
    CplxVec out;
    ols_correlate(x, tmpl, out, thread_fft_workspace());
    return out;
  }
  const std::size_t num_lags = x.size() - tmpl.size() + 1;
  CplxVec out(num_lags);
  for (std::size_t k = 0; k < num_lags; ++k) {
    out[k] = dot_conj(x.data() + k, tmpl.data(), tmpl.size());
  }
  return out;
}

RealVec correlate(const RealVec& x, const RealVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  if (use_fft_convolve(x.size(), tmpl.size(), ConvKind::kRealReal)) {
    RealVec out;
    ols_correlate(x, tmpl, out, thread_fft_workspace());
    return out;
  }
  const std::size_t num_lags = x.size() - tmpl.size() + 1;
  RealVec out(num_lags);
  for (std::size_t k = 0; k < num_lags; ++k) {
    out[k] = dot(x.data() + k, tmpl.data(), tmpl.size());
  }
  return out;
}

RealVec normalized_correlation(const CplxVec& x, const CplxVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  double tmpl_energy = 0.0;
  for (const auto& v : tmpl) tmpl_energy += std::norm(v);
  const double tmpl_norm = std::sqrt(tmpl_energy);

  const std::size_t n = tmpl.size();
  const std::size_t num_lags = x.size() - n + 1;
  RealVec out(num_lags);

  // Running window energy for O(1) per-lag normalization.
  double win_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) win_energy += std::norm(x[i]);
  for (std::size_t k = 0; k < num_lags; ++k) {
    const cplx c = dot_conj(x.data() + k, tmpl.data(), n);
    const double denom = std::sqrt(std::max(win_energy, 1e-300)) * tmpl_norm;
    out[k] = std::abs(c) / denom;
    if (k + 1 < num_lags) {
      win_energy += std::norm(x[k + n]) - std::norm(x[k]);
      win_energy = std::max(win_energy, 0.0);
    }
  }
  return out;
}

RealVec normalized_correlation(const RealVec& x, const RealVec& tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  double tmpl_energy = 0.0;
  for (double v : tmpl) tmpl_energy += v * v;
  const double tmpl_norm = std::sqrt(tmpl_energy);

  const std::size_t n = tmpl.size();
  const std::size_t num_lags = x.size() - n + 1;
  RealVec out(num_lags);

  double win_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) win_energy += x[i] * x[i];
  for (std::size_t k = 0; k < num_lags; ++k) {
    const double c = dot(x.data() + k, tmpl.data(), n);
    const double denom = std::sqrt(std::max(win_energy, 1e-300)) * tmpl_norm;
    out[k] = c / denom;
    if (k + 1 < num_lags) {
      win_energy += x[k + n] * x[k + n] - x[k] * x[k];
      win_energy = std::max(win_energy, 0.0);
    }
  }
  return out;
}

std::size_t argmax_abs(const CplxVec& x) {
  std::size_t best = 0;
  double best_mag = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double m = std::norm(x[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

std::size_t argmax_abs(const RealVec& x) {
  std::size_t best = 0;
  double best_mag = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double m = std::abs(x[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

cplx dot_conj(const cplx* x, const cplx* tmpl, std::size_t n) noexcept {
  cplx acc{};
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * std::conj(tmpl[i]);
  return acc;
}

double dot(const double* x, const double* tmpl, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * tmpl[i];
  return acc;
}

}  // namespace uwb::dsp
