#pragma once
/// \file filter_design.h
/// \brief FIR tap design: windowed-sinc low/high/band-pass, raised-cosine
///        and root-raised-cosine pulse-shaping prototypes.
///
/// All designs return unit-DC-gain (lowpass) or unit-center-gain (bandpass)
/// tap vectors usable with uwb::dsp::FirFilter or fft_convolve.

#include <cstddef>

#include "common/types.h"
#include "dsp/window.h"

namespace uwb::dsp {

/// Windowed-sinc lowpass. \p cutoff_hz is the -6 dB edge, \p fs the sample
/// rate, \p num_taps the filter length (odd recommended for a symmetric,
/// integer-group-delay filter).
RealVec design_lowpass(double cutoff_hz, double fs, std::size_t num_taps,
                       WindowType window = WindowType::kHamming);

/// Windowed-sinc highpass via spectral inversion of the lowpass design.
/// \p num_taps must be odd.
RealVec design_highpass(double cutoff_hz, double fs, std::size_t num_taps,
                        WindowType window = WindowType::kHamming);

/// Windowed-sinc bandpass with edges [low_hz, high_hz].
RealVec design_bandpass(double low_hz, double high_hz, double fs, std::size_t num_taps,
                        WindowType window = WindowType::kHamming);

/// Raised-cosine pulse-shaping taps. \p symbol_rate_hz = 1/T, \p beta the
/// roll-off in [0,1], \p span_symbols the one-sided span in symbols,
/// \p samples_per_symbol the oversampling. Peak normalized to 1.
RealVec design_raised_cosine(double symbol_rate_hz, double beta, int span_symbols,
                             int samples_per_symbol);

/// Root-raised-cosine taps (same parameters as design_raised_cosine);
/// normalized to unit energy so a matched pair gives unity gain at the peak.
RealVec design_root_raised_cosine(double symbol_rate_hz, double beta, int span_symbols,
                                  int samples_per_symbol);

/// Frequency response H(f) of a FIR at a single frequency (for verification).
cplx fir_response_at(const RealVec& taps, double freq_hz, double fs);

/// Magnitude response |H(f)| in dB at a single frequency.
double fir_gain_db_at(const RealVec& taps, double freq_hz, double fs);

}  // namespace uwb::dsp
