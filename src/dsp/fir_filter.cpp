#include "dsp/fir_filter.h"

namespace uwb::dsp {

namespace {

template <typename TX, typename TH, typename TY>
std::vector<TY> convolve_impl(const std::vector<TX>& x, const std::vector<TH>& h) {
  if (x.empty() || h.empty()) return {};
  std::vector<TY> y(x.size() + h.size() - 1, TY{});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < h.size(); ++k) {
      y[i + k] += x[i] * h[k];
    }
  }
  return y;
}

template <typename TY>
std::vector<TY> take_same(std::vector<TY> full, std::size_t x_len, std::size_t h_len) {
  const std::size_t start = (h_len - 1) / 2;
  std::vector<TY> out(x_len);
  for (std::size_t i = 0; i < x_len; ++i) out[i] = full[start + i];
  return out;
}

}  // namespace

RealVec convolve(const RealVec& x, const RealVec& h) {
  return convolve_impl<double, double, double>(x, h);
}

CplxVec convolve(const CplxVec& x, const RealVec& h) {
  return convolve_impl<cplx, double, cplx>(x, h);
}

CplxVec convolve(const CplxVec& x, const CplxVec& h) {
  return convolve_impl<cplx, cplx, cplx>(x, h);
}

RealVec convolve_same(const RealVec& x, const RealVec& h) {
  if (x.empty() || h.empty()) return {};
  return take_same(convolve(x, h), x.size(), h.size());
}

CplxVec convolve_same(const CplxVec& x, const RealVec& h) {
  if (x.empty() || h.empty()) return {};
  return take_same(convolve(x, h), x.size(), h.size());
}

RealWaveform filter_same(const RealWaveform& x, const RealVec& taps) {
  return RealWaveform(convolve_same(x.samples(), taps), x.sample_rate());
}

CplxWaveform filter_same(const CplxWaveform& x, const RealVec& taps) {
  return CplxWaveform(convolve_same(x.samples(), taps), x.sample_rate());
}

}  // namespace uwb::dsp
