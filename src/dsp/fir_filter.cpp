#include "dsp/fir_filter.h"

#include <algorithm>

#include "dsp/correlator.h"
#include "dsp/fast_convolve.h"

namespace uwb::dsp {

namespace {

template <typename TX, typename TH, typename TY>
std::vector<TY> convolve_direct(const std::vector<TX>& x, const std::vector<TH>& h) {
  if (x.empty() || h.empty()) return {};
  std::vector<TY> y(x.size() + h.size() - 1, TY{});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < h.size(); ++k) {
      y[i + k] += x[i] * h[k];
    }
  }
  return y;
}

/// Extracts the "same"-mode window in place: shifts the kept samples to the
/// front of the full-convolution buffer and truncates, so no second vector
/// is allocated or copied.
template <typename TY>
std::vector<TY> take_same(std::vector<TY> full, std::size_t x_len, std::size_t h_len) {
  const std::size_t start = (h_len - 1) / 2;
  std::move(full.begin() + static_cast<std::ptrdiff_t>(start),
            full.begin() + static_cast<std::ptrdiff_t>(start + x_len), full.begin());
  full.resize(x_len);
  return full;
}

}  // namespace

RealVec convolve(const RealVec& x, const RealVec& h) {
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kRealReal)) {
    RealVec out;
    ols_convolve(x, h, out, thread_fft_workspace());
    return out;
  }
  return convolve_direct<double, double, double>(x, h);
}

CplxVec convolve(const CplxVec& x, const RealVec& h) {
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kCplxReal)) {
    CplxVec out;
    ols_convolve(x, h, out, thread_fft_workspace());
    return out;
  }
  return convolve_direct<cplx, double, cplx>(x, h);
}

CplxVec convolve(const CplxVec& x, const CplxVec& h) {
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kCplxCplx)) {
    CplxVec out;
    ols_convolve(x, h, out, thread_fft_workspace());
    return out;
  }
  return convolve_direct<cplx, cplx, cplx>(x, h);
}

RealVec convolve_same(const RealVec& x, const RealVec& h) {
  if (x.empty() || h.empty()) return {};
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kRealReal)) {
    return take_same(convolve(x, h), x.size(), h.size());
  }
  RealVec y(x.size());
  convolve_same_to(x.data(), x.size(), h, y.data());
  return y;
}

namespace {

/// Direct "same"-mode kernel shared by the double and float entry points.
/// Gather form over reversed taps: the scatter full convolution adds
/// x[i]*h[k] in ascending-i order, which for a fixed output is descending-k
/// -- i.e. ascending over the reversed kernel. Accumulating that way keeps
/// every double output bit-identical to convolve_same() while the interior
/// runs contiguous-stride through dot_bank's vectorized lag blocks.
template <typename T>
void convolve_same_direct(const T* x, std::size_t x_len, const RealVec& h, T* y) {
  const std::size_t h_len = h.size();
  const std::size_t start = (h_len - 1) / 2;
  constexpr std::size_t kMaxStackTaps = 256;
  T stack_taps[kMaxStackTaps];
  std::vector<T> heap_taps;
  T* r = stack_taps;
  if (h_len > kMaxStackTaps) {
    heap_taps.resize(h_len);
    r = heap_taps.data();
  }
  for (std::size_t m = 0; m < h_len; ++m) r[m] = static_cast<T>(h[h_len - 1 - m]);

  const auto n = static_cast<std::ptrdiff_t>(x_len);
  const auto edge_out = [&](std::size_t j) {
    const std::ptrdiff_t off =
        static_cast<std::ptrdiff_t>(j + start) - static_cast<std::ptrdiff_t>(h_len - 1);
    const std::size_t m_lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
    const std::ptrdiff_t m_hi = std::min(static_cast<std::ptrdiff_t>(h_len), n - off);
    T acc{};
    for (std::size_t m = m_lo; static_cast<std::ptrdiff_t>(m) < m_hi; ++m) {
      acc += x[off + static_cast<std::ptrdiff_t>(m)] * r[m];
    }
    y[j] = acc;
  };

  const std::size_t head_end = std::min(h_len - 1 - start, x_len);
  for (std::size_t j = 0; j < head_end; ++j) edge_out(j);
  if (x_len >= h_len) {
    dot_bank(x, x_len - h_len + 1, r, h_len, y + head_end);
    for (std::size_t j = x_len - start; j < x_len; ++j) edge_out(j);
  } else {
    for (std::size_t j = head_end; j < x_len; ++j) edge_out(j);
  }
}

}  // namespace

void convolve_same_to(const double* x, std::size_t x_len, const RealVec& h, double* y) {
  const std::size_t h_len = h.size();
  if (x_len == 0 || h_len == 0) return;
  if (use_fft_convolve(x_len, h_len, ConvKind::kRealReal)) {
    const std::size_t start = (h_len - 1) / 2;
    const RealVec xin(x, x + x_len);
    RealVec full;
    ols_convolve(xin, h, full, thread_fft_workspace());
    std::copy(full.begin() + static_cast<std::ptrdiff_t>(start),
              full.begin() + static_cast<std::ptrdiff_t>(start + x_len), y);
    return;
  }
  convolve_same_direct(x, x_len, h, y);
}

void convolve_same_to(const float* x, std::size_t x_len, const RealVec& h, float* y) {
  if (x_len == 0 || h.empty()) return;
  convolve_same_direct(x, x_len, h, y);
}

CplxVec convolve_same(const CplxVec& x, const RealVec& h) {
  if (x.empty() || h.empty()) return {};
  return take_same(convolve(x, h), x.size(), h.size());
}

RealWaveform filter_same(const RealWaveform& x, const RealVec& taps) {
  return RealWaveform(convolve_same(x.samples(), taps), x.sample_rate());
}

CplxWaveform filter_same(const CplxWaveform& x, const RealVec& taps) {
  return CplxWaveform(convolve_same(x.samples(), taps), x.sample_rate());
}

}  // namespace uwb::dsp
