#include "dsp/fir_filter.h"

#include <algorithm>

#include "dsp/fast_convolve.h"

namespace uwb::dsp {

namespace {

template <typename TX, typename TH, typename TY>
std::vector<TY> convolve_direct(const std::vector<TX>& x, const std::vector<TH>& h) {
  if (x.empty() || h.empty()) return {};
  std::vector<TY> y(x.size() + h.size() - 1, TY{});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < h.size(); ++k) {
      y[i + k] += x[i] * h[k];
    }
  }
  return y;
}

/// Extracts the "same"-mode window in place: shifts the kept samples to the
/// front of the full-convolution buffer and truncates, so no second vector
/// is allocated or copied.
template <typename TY>
std::vector<TY> take_same(std::vector<TY> full, std::size_t x_len, std::size_t h_len) {
  const std::size_t start = (h_len - 1) / 2;
  std::move(full.begin() + static_cast<std::ptrdiff_t>(start),
            full.begin() + static_cast<std::ptrdiff_t>(start + x_len), full.begin());
  full.resize(x_len);
  return full;
}

}  // namespace

RealVec convolve(const RealVec& x, const RealVec& h) {
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kRealReal)) {
    RealVec out;
    ols_convolve(x, h, out, thread_fft_workspace());
    return out;
  }
  return convolve_direct<double, double, double>(x, h);
}

CplxVec convolve(const CplxVec& x, const RealVec& h) {
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kCplxReal)) {
    CplxVec out;
    ols_convolve(x, h, out, thread_fft_workspace());
    return out;
  }
  return convolve_direct<cplx, double, cplx>(x, h);
}

CplxVec convolve(const CplxVec& x, const CplxVec& h) {
  if (use_fft_convolve(x.size(), h.size(), ConvKind::kCplxCplx)) {
    CplxVec out;
    ols_convolve(x, h, out, thread_fft_workspace());
    return out;
  }
  return convolve_direct<cplx, cplx, cplx>(x, h);
}

RealVec convolve_same(const RealVec& x, const RealVec& h) {
  if (x.empty() || h.empty()) return {};
  return take_same(convolve(x, h), x.size(), h.size());
}

CplxVec convolve_same(const CplxVec& x, const RealVec& h) {
  if (x.empty() || h.empty()) return {};
  return take_same(convolve(x, h), x.size(), h.size());
}

RealWaveform filter_same(const RealWaveform& x, const RealVec& taps) {
  return RealWaveform(convolve_same(x.samples(), taps), x.sample_rate());
}

CplxWaveform filter_same(const CplxWaveform& x, const RealVec& taps) {
  return CplxWaveform(convolve_same(x.samples(), taps), x.sample_rate());
}

}  // namespace uwb::dsp
