#include "dsp/fft.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/error.h"
#include "common/math_utils.h"
#include "obs/profile.h"

namespace uwb::dsp {

// ---------------------------------------------------------------- FftPlan ----

FftPlan::FftPlan(std::size_t n) : n_(n) {
  detail::require(is_pow2(n), "FftPlan: length must be a power of two");

  rev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev_[i] = static_cast<std::uint32_t>(j);
  }

  // Forward twiddles exp(-2 pi i k / len) for every stage, concatenated:
  // len = 2 contributes 1 entry, len = 4 two entries, ... (n - 1 total).
  twiddle_.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -two_pi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double a = ang * static_cast<double>(k);
      twiddle_.emplace_back(std::cos(a), std::sin(a));
    }
  }
}

void FftPlan::run(cplx* x, bool inverse) const noexcept {
  const obs::StageTimer timer(obs::Stage::kFftExec, n_);
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  std::size_t tw = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const cplx* w = twiddle_.data() + tw;
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx wk = inverse ? std::conj(w[k]) : w[k];
        const cplx u = x[i + k];
        const cplx v = x[i + k + half] * wk;
        x[i + k] = u + v;
        x[i + k + half] = u - v;
      }
    }
    tw += half;
  }
}

void FftPlan::forward(cplx* x) const noexcept { run(x, false); }

void FftPlan::inverse(cplx* x) const noexcept {
  run(x, true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] *= inv_n;
}

void FftPlan::forward(CplxVec& x) const {
  detail::require(x.size() == n_, "FftPlan::forward: buffer/plan size mismatch");
  forward(x.data());
}

void FftPlan::inverse(CplxVec& x) const {
  detail::require(x.size() == n_, "FftPlan::inverse: buffer/plan size mismatch");
  inverse(x.data());
}

namespace {
// Plan-cache state. The map is never destroyed (returned references must
// stay valid for the process lifetime); hit/miss counters live under the
// same mutex as the map, so fft_plan pays no extra synchronization.
std::mutex g_plan_mutex;
std::uint64_t g_plan_hits = 0;
std::uint64_t g_plan_misses = 0;
}  // namespace

const FftPlan& fft_plan(std::size_t n) {
  detail::require(is_pow2(n), "fft_plan: length must be a power of two");
  // Plans are never evicted, so returned references stay valid; the map
  // lives for the process lifetime and holds one immutable plan per size.
  static std::map<std::size_t, std::unique_ptr<FftPlan>>* cache =
      new std::map<std::size_t, std::unique_ptr<FftPlan>>();
  const std::lock_guard<std::mutex> lock(g_plan_mutex);
  auto& slot = (*cache)[n];
  if (slot == nullptr) {
    ++g_plan_misses;
    slot = std::make_unique<FftPlan>(n);
  } else {
    ++g_plan_hits;
  }
  return *slot;
}

FftPlanCacheStats fft_plan_cache_stats() {
  const std::lock_guard<std::mutex> lock(g_plan_mutex);
  return FftPlanCacheStats{g_plan_hits, g_plan_misses};
}

// --------------------------------------------------------------- RfftPlan ----

RfftPlan::RfftPlan(std::size_t n, const FftPlan& half) : n_(n), half_(&half) {
  detail::require(is_pow2(n) && n >= 2, "RfftPlan: length must be a power of two >= 2");
  detail::require(half.size() == n / 2, "RfftPlan: half plan size mismatch");
  const std::size_t m = n / 2;
  w_.resize(m / 2 + 1);
  for (std::size_t k = 0; k <= m / 2; ++k) {
    const double a = -two_pi * static_cast<double>(k) / static_cast<double>(n);
    w_[k] = cplx(std::cos(a), std::sin(a));
  }
}

void RfftPlan::forward(const double* x, cplx* spec) const noexcept {
  const std::size_t m = n_ / 2;
  // Pack pairs of reals into the half-length complex buffer z[j] =
  // x[2j] + i*x[2j+1] and transform once at size m.
  for (std::size_t j = 0; j < m; ++j) spec[j] = cplx(x[2 * j], x[2 * j + 1]);
  half_->forward(spec);
  // Disentangle: with E/O the spectra of the even/odd subsequences,
  //   E[k] = (Z[k] + conj(Z[m-k])) / 2,  O[k] = (Z[k] - conj(Z[m-k])) / (2i),
  //   X[k] = E[k] + W_n^k * O[k],        X[m-k] = conj(E[k] - W_n^k * O[k]).
  const cplx z0 = spec[0];
  spec[0] = cplx(z0.real() + z0.imag(), 0.0);
  spec[m] = cplx(z0.real() - z0.imag(), 0.0);
  for (std::size_t k = 1; k < m - k; ++k) {
    const cplx a = spec[k];
    const cplx b = spec[m - k];
    const cplx e = 0.5 * (a + std::conj(b));
    const cplx o = cplx(0.0, -0.5) * (a - std::conj(b));
    const cplx t = w_[k] * o;
    spec[k] = e + t;
    spec[m - k] = std::conj(e - t);
  }
  // Self-paired bin k = m/2: W_n^{m/2} = -i collapses to a conjugation.
  if (m >= 2) spec[m / 2] = std::conj(spec[m / 2]);
}

void RfftPlan::inverse(cplx* spec, double* x) const noexcept {
  const std::size_t m = n_ / 2;
  // Re-entangle the half spectrum into the packed half-length transform:
  //   E[k] = (X[k] + conj(X[m-k])) / 2,
  //   O[k] = conj(W_n^k) * (X[k] - conj(X[m-k])) / 2,
  //   Z[k] = E[k] + i * O[k].
  // Bin 0 folds X[0] and X[m] (imaginary parts ignored: they are zero for
  // any spectrum of a real signal, and for products of such spectra).
  const double x0 = spec[0].real();
  const double xm = spec[m].real();
  spec[0] = cplx(0.5 * (x0 + xm), 0.5 * (x0 - xm));
  for (std::size_t k = 1; k < m - k; ++k) {
    const cplx a = spec[k];
    const cplx b = spec[m - k];
    const cplx e = 0.5 * (a + std::conj(b));
    const cplx o = std::conj(w_[k]) * (0.5 * (a - std::conj(b)));
    spec[k] = e + cplx(-o.imag(), o.real());
    spec[m - k] = std::conj(e) + cplx(o.imag(), o.real());
  }
  if (m >= 2) spec[m / 2] = std::conj(spec[m / 2]);
  // The half plan's 1/m scale is exactly the 1/n the real transform needs
  // once the factor-of-two packing is unwound.
  half_->inverse(spec);
  for (std::size_t j = 0; j < m; ++j) {
    x[2 * j] = spec[j].real();
    x[2 * j + 1] = spec[j].imag();
  }
}

const RfftPlan& rfft_plan(std::size_t n) {
  detail::require(is_pow2(n) && n >= 2, "rfft_plan: length must be a power of two >= 2");
  // Resolve the half-size complex plan before taking the lock below —
  // fft_plan() serializes on the same mutex.
  const FftPlan& half = fft_plan(n / 2);
  static std::map<std::size_t, std::unique_ptr<RfftPlan>>* cache =
      new std::map<std::size_t, std::unique_ptr<RfftPlan>>();
  const std::lock_guard<std::mutex> lock(g_plan_mutex);
  auto& slot = (*cache)[n];
  if (slot == nullptr) {
    ++g_plan_misses;
    slot = std::make_unique<RfftPlan>(n, half);
  } else {
    ++g_plan_hits;
  }
  return *slot;
}

// ----------------------------------------------------------- free helpers ----

void fft_inplace(CplxVec& x) {
  detail::require(is_pow2(x.size()), "fft: length must be a power of two");
  fft_plan(x.size()).forward(x.data());
}

void ifft_inplace(CplxVec& x) {
  detail::require(is_pow2(x.size()), "fft: length must be a power of two");
  fft_plan(x.size()).inverse(x.data());
}

CplxVec fft(const CplxVec& x, std::size_t n) {
  const std::size_t len = (n == 0) ? next_pow2(x.size()) : n;
  detail::require(is_pow2(len), "fft: requested length must be a power of two");
  CplxVec buf(len, cplx{});
  const std::size_t copy = std::min(len, x.size());
  for (std::size_t i = 0; i < copy; ++i) buf[i] = x[i];
  fft_inplace(buf);
  return buf;
}

CplxVec fft(const RealVec& x, std::size_t n) {
  const std::size_t len = (n == 0) ? next_pow2(x.size()) : n;
  detail::require(is_pow2(len), "fft: requested length must be a power of two");
  CplxVec buf(len, cplx{});
  const std::size_t copy = std::min(len, x.size());
  for (std::size_t i = 0; i < copy; ++i) buf[i] = cplx(x[i], 0.0);
  fft_inplace(buf);
  return buf;
}

CplxVec ifft(const CplxVec& x) {
  CplxVec buf = x;
  ifft_inplace(buf);
  return buf;
}

CplxVec rfft(const RealVec& x, std::size_t n) {
  if (x.empty() && n == 0) return {};
  std::size_t len = (n == 0) ? next_pow2(x.size()) : n;
  if (len < 2) len = 2;
  detail::require(is_pow2(len), "rfft: requested length must be a power of two");
  const RfftPlan& plan = rfft_plan(len);
  RealVec padded(len, 0.0);
  const std::size_t copy = std::min(len, x.size());
  for (std::size_t i = 0; i < copy; ++i) padded[i] = x[i];
  CplxVec spec(plan.bins());
  plan.forward(padded.data(), spec.data());
  return spec;
}

RealVec irfft(const CplxVec& spec, std::size_t out_len) {
  if (spec.empty()) return {};
  detail::require(spec.size() >= 2 && is_pow2(spec.size() - 1),
                  "irfft: spectrum must have 2^k + 1 bins");
  const std::size_t len = 2 * (spec.size() - 1);
  const RfftPlan& plan = rfft_plan(len);
  CplxVec scratch = spec;  // inverse() consumes its input
  RealVec out(len);
  plan.inverse(scratch.data(), out.data());
  if (out_len != 0 && out_len < out.size()) out.resize(out_len);
  return out;
}

RealVec power_bins(const CplxVec& spectrum) {
  RealVec out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::norm(spectrum[i]);
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  detail::require(n > 0, "bin_frequency: n must be positive");
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < n / 2) ? f : f - fs;
}

RealVec fft_convolve(const RealVec& a, const RealVec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  CplxVec fa = fft(a, n);
  const CplxVec fb = fft(b, n);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  RealVec out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

CplxVec fft_convolve(const CplxVec& a, const CplxVec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  CplxVec fa = fft(a, n);
  const CplxVec fb = fft(b, n);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  fa.resize(out_len);
  return fa;
}

}  // namespace uwb::dsp
