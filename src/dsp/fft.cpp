#include "dsp/fft.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::dsp {

namespace {

/// Bit-reversal permutation, then iterative Cooley-Tukey butterflies.
/// \p inverse selects the conjugate twiddles (normalization done by caller).
void transform(CplxVec& x, bool inverse) {
  const std::size_t n = x.size();
  detail::require(is_pow2(n), "fft: length must be a power of two");
  // Bit-reversal reorder.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? two_pi : -two_pi) / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(CplxVec& x) { transform(x, false); }

void ifft_inplace(CplxVec& x) {
  transform(x, true);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (auto& v : x) v *= inv_n;
}

CplxVec fft(const CplxVec& x, std::size_t n) {
  const std::size_t len = (n == 0) ? next_pow2(x.size()) : n;
  detail::require(is_pow2(len), "fft: requested length must be a power of two");
  CplxVec buf(len, cplx{});
  const std::size_t copy = std::min(len, x.size());
  for (std::size_t i = 0; i < copy; ++i) buf[i] = x[i];
  fft_inplace(buf);
  return buf;
}

CplxVec fft(const RealVec& x, std::size_t n) {
  const std::size_t len = (n == 0) ? next_pow2(x.size()) : n;
  detail::require(is_pow2(len), "fft: requested length must be a power of two");
  CplxVec buf(len, cplx{});
  const std::size_t copy = std::min(len, x.size());
  for (std::size_t i = 0; i < copy; ++i) buf[i] = cplx(x[i], 0.0);
  fft_inplace(buf);
  return buf;
}

CplxVec ifft(const CplxVec& x) {
  CplxVec buf = x;
  ifft_inplace(buf);
  return buf;
}

RealVec power_bins(const CplxVec& spectrum) {
  RealVec out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::norm(spectrum[i]);
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  detail::require(n > 0, "bin_frequency: n must be positive");
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < n / 2) ? f : f - fs;
}

RealVec fft_convolve(const RealVec& a, const RealVec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  CplxVec fa = fft(a, n);
  const CplxVec fb = fft(b, n);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  RealVec out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

CplxVec fft_convolve(const CplxVec& a, const CplxVec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  CplxVec fa = fft(a, n);
  const CplxVec fb = fft(b, n);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  fa.resize(out_len);
  return fa;
}

}  // namespace uwb::dsp
