#pragma once
/// \file fir_filter.h
/// \brief Direct-form FIR filtering with real taps over real or complex
///        samples; both streaming (stateful) and block (convolution) modes.

#include <cstddef>

#include "common/error.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::dsp {

/// Streaming direct-form FIR with real coefficients.
///
/// The template parameter is the sample type (double or cplx). State is kept
/// between process() calls so a long signal can be filtered in chunks.
template <typename T>
class FirFilter {
 public:
  explicit FirFilter(RealVec taps) : taps_(std::move(taps)), history_(taps_.size(), T{}) {
    detail::require(!taps_.empty(), "FirFilter: taps must be non-empty");
  }

  [[nodiscard]] const RealVec& taps() const noexcept { return taps_; }
  [[nodiscard]] std::size_t order() const noexcept { return taps_.size() - 1; }

  /// Group delay of a symmetric FIR, in samples.
  [[nodiscard]] double group_delay() const noexcept {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

  /// Pushes one sample and returns one filtered sample.
  T step(T x) noexcept {
    history_[pos_] = x;
    T acc{};
    std::size_t idx = pos_;
    for (std::size_t k = 0; k < taps_.size(); ++k) {
      acc += history_[idx] * taps_[k];
      idx = (idx == 0) ? taps_.size() - 1 : idx - 1;
    }
    pos_ = (pos_ + 1) % taps_.size();
    return acc;
  }

  /// Filters a block, preserving state across calls.
  std::vector<T> process(const std::vector<T>& x) {
    std::vector<T> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = step(x[i]);
    return y;
  }

  /// Clears the delay-line state.
  void reset() noexcept {
    for (auto& v : history_) v = T{};
    pos_ = 0;
  }

 private:
  RealVec taps_;
  std::vector<T> history_;
  std::size_t pos_ = 0;
};

/// Full linear convolution y = x * h (length |x|+|h|-1). Auto-dispatches:
/// short kernels run the direct form, large x*h products go through
/// overlap-save FFT convolution (see dsp/fast_convolve.h for the policy).
RealVec convolve(const RealVec& x, const RealVec& h);

/// Full linear convolution for complex signal with real kernel.
CplxVec convolve(const CplxVec& x, const RealVec& h);

/// Full linear convolution for complex signal with complex kernel.
CplxVec convolve(const CplxVec& x, const CplxVec& h);

/// "Same"-mode convolution: output length equals input length, kernel group
/// delay compensated (for symmetric kernels centred at (|h|-1)/2).
RealVec convolve_same(const RealVec& x, const RealVec& h);

/// "Same"-mode real convolution into a caller-owned buffer \p y of length
/// \p x_len (no allocation beyond a small reversed-tap scratch). Hot-path
/// form for per-packet workspaces: bit-identical to convolve_same(x, h) --
/// the direct path runs a blocked gather kernel whose per-output tap order
/// matches the scatter form exactly, and FFT-worthy kernels fall through to
/// the same overlap-save engine.
void convolve_same_to(const double* x, std::size_t x_len, const RealVec& h, double* y);

/// Single-precision "same"-mode convolution into a caller-owned buffer (the
/// gen-1 float sample arena). Same blocked gather kernel at twice the SIMD
/// width; always direct -- the float pipeline's anti-alias filter sits far
/// below the FFT crossover. Taps are converted to float once per call.
void convolve_same_to(const float* x, std::size_t x_len, const RealVec& h, float* y);

/// "Same"-mode convolution for complex input with real kernel.
CplxVec convolve_same(const CplxVec& x, const RealVec& h);

/// Filters a waveform with a FIR in "same" mode, preserving the sample rate.
RealWaveform filter_same(const RealWaveform& x, const RealVec& taps);

/// Filters a complex waveform with a FIR in "same" mode.
CplxWaveform filter_same(const CplxWaveform& x, const RealVec& taps);

}  // namespace uwb::dsp
