#pragma once
/// \file correlator.h
/// \brief Sliding correlation / matched filtering -- the workhorse of the
///        paper's digital back end (acquisition, channel estimation, demod).

#include <cstddef>

#include "common/types.h"

namespace uwb::dsp {

/// Cross-correlation of \p x against template \p tmpl at every lag where the
/// template fully overlaps: out[k] = sum_i x[k+i] * conj(tmpl[i]),
/// k in [0, |x| - |tmpl|]. Empty if the template is longer than the signal.
/// Large x*tmpl products auto-dispatch to overlap-save FFT correlation
/// (see dsp/fast_convolve.h); short templates stay on the direct kernel.
CplxVec correlate(const CplxVec& x, const CplxVec& tmpl);

/// Real-valued version.
RealVec correlate(const RealVec& x, const RealVec& tmpl);

/// Normalized correlation magnitude in [0, 1]:
/// |corr| / (||window|| * ||template||), robust to received power.
RealVec normalized_correlation(const CplxVec& x, const CplxVec& tmpl);

/// Real-valued normalized correlation (signed, in [-1, 1]).
RealVec normalized_correlation(const RealVec& x, const RealVec& tmpl);

/// Index of the maximum-magnitude element; 0 for empty input.
std::size_t argmax_abs(const CplxVec& x);

/// Index of the maximum-magnitude element; 0 for empty input.
std::size_t argmax_abs(const RealVec& x);

/// Single-point correlation (dot product with conjugated template).
cplx dot_conj(const cplx* x, const cplx* tmpl, std::size_t n) noexcept;

/// Single-point real correlation.
double dot(const double* x, const double* tmpl, std::size_t n) noexcept;

/// Streaming integrate-and-dump: accumulates blocks of \p length samples and
/// emits one output per block (despreading pulses-per-bit style signals).
template <typename T>
class IntegrateAndDump {
 public:
  explicit IntegrateAndDump(std::size_t length) : length_(length) {}

  /// Pushes one sample; returns true when a dump occurred (result in out).
  bool push(T x, T& out) noexcept {
    acc_ += x;
    if (++count_ == length_) {
      out = acc_;
      acc_ = T{};
      count_ = 0;
      return true;
    }
    return false;
  }

  void reset() noexcept {
    acc_ = T{};
    count_ = 0;
  }

 private:
  std::size_t length_;
  T acc_{};
  std::size_t count_ = 0;
};

}  // namespace uwb::dsp
