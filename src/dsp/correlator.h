#pragma once
/// \file correlator.h
/// \brief Sliding correlation / matched filtering -- the workhorse of the
///        paper's digital back end (acquisition, channel estimation, demod).

#include <cstddef>

#include "common/types.h"

namespace uwb::dsp {

/// Cross-correlation of \p x against template \p tmpl at every lag where the
/// template fully overlaps: out[k] = sum_i x[k+i] * conj(tmpl[i]),
/// k in [0, |x| - |tmpl|]. Empty if the template is longer than the signal.
/// Large x*tmpl products auto-dispatch to overlap-save FFT correlation
/// (see dsp/fast_convolve.h); short templates stay on the direct kernel.
CplxVec correlate(const CplxVec& x, const CplxVec& tmpl);

/// Real-valued version.
RealVec correlate(const RealVec& x, const RealVec& tmpl);

/// Real correlation into a caller-owned buffer \p out of length
/// |x| - |tmpl| + 1 (requires |x| >= |tmpl| >= 1). Bit-identical to
/// correlate(x, tmpl); exists so per-packet workspaces can reuse their
/// output buffers. Returns the number of lags written.
std::size_t correlate_to(const double* x, std::size_t x_len, const RealVec& tmpl, double* out);

/// Single-precision correlation into a caller-owned buffer (the gen-1 float
/// sample arena). Always runs the direct blocked kernel -- the float pipeline
/// only matched-filters short templates, far below the FFT crossover -- with
/// the template converted to float once per call.
std::size_t correlate_to(const float* x, std::size_t x_len, const RealVec& tmpl, float* out);

/// Bank of sliding dot products: out[j] = sum_m x[j+m] * h[m] for
/// j in [0, num_lags). Blocked over lags with per-lag ascending-tap
/// accumulation -- bit-identical to calling dot() per lag, but the fixed
/// 8-wide lag block auto-vectorizes. The hot kernel under correlate() and
/// the direct path of convolve_same_to().
void dot_bank(const double* x, std::size_t num_lags, const double* h, std::size_t h_len,
              double* out) noexcept;

/// Single-precision bank: same blocked kernel at twice the SIMD width (the
/// 16-wide lag block fills the same vector registers with float lanes).
void dot_bank(const float* x, std::size_t num_lags, const float* h, std::size_t h_len,
              float* out) noexcept;

/// Normalized correlation magnitude in [0, 1]:
/// |corr| / (||window|| * ||template||), robust to received power.
RealVec normalized_correlation(const CplxVec& x, const CplxVec& tmpl);

/// Real-valued normalized correlation (signed, in [-1, 1]).
RealVec normalized_correlation(const RealVec& x, const RealVec& tmpl);

/// Index of the maximum-magnitude element; 0 for empty input.
std::size_t argmax_abs(const CplxVec& x);

/// Index of the maximum-magnitude element; 0 for empty input.
std::size_t argmax_abs(const RealVec& x);

/// Single-point correlation (dot product with conjugated template).
cplx dot_conj(const cplx* x, const cplx* tmpl, std::size_t n) noexcept;

/// Single-point real correlation.
double dot(const double* x, const double* tmpl, std::size_t n) noexcept;

/// Streaming integrate-and-dump: accumulates blocks of \p length samples and
/// emits one output per block (despreading pulses-per-bit style signals).
template <typename T>
class IntegrateAndDump {
 public:
  explicit IntegrateAndDump(std::size_t length) : length_(length) {}

  /// Pushes one sample; returns true when a dump occurred (result in out).
  bool push(T x, T& out) noexcept {
    acc_ += x;
    if (++count_ == length_) {
      out = acc_;
      acc_ = T{};
      count_ = 0;
      return true;
    }
    return false;
  }

  void reset() noexcept {
    acc_ = T{};
    count_ = 0;
  }

 private:
  std::size_t length_;
  T acc_{};
  std::size_t count_ = 0;
};

}  // namespace uwb::dsp
