#include "dsp/filter_design.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::dsp {

RealVec design_lowpass(double cutoff_hz, double fs, std::size_t num_taps, WindowType window) {
  detail::require(num_taps >= 3, "design_lowpass: need at least 3 taps");
  detail::require(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0,
                  "design_lowpass: cutoff must lie in (0, fs/2)");
  const double fc = cutoff_hz / fs;  // normalized to sample rate
  const RealVec w = make_window(window, num_taps);
  RealVec taps(num_taps);
  const double center = (static_cast<double>(num_taps) - 1.0) / 2.0;
  double dc = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    taps[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
    dc += taps[i];
  }
  // Unit DC gain.
  for (auto& v : taps) v /= dc;
  return taps;
}

RealVec design_highpass(double cutoff_hz, double fs, std::size_t num_taps, WindowType window) {
  detail::require(num_taps % 2 == 1, "design_highpass: num_taps must be odd");
  RealVec taps = design_lowpass(cutoff_hz, fs, num_taps, window);
  // Spectral inversion: delta at center minus lowpass.
  for (auto& v : taps) v = -v;
  taps[(num_taps - 1) / 2] += 1.0;
  return taps;
}

RealVec design_bandpass(double low_hz, double high_hz, double fs, std::size_t num_taps,
                        WindowType window) {
  detail::require(low_hz > 0.0 && high_hz > low_hz && high_hz < fs / 2.0,
                  "design_bandpass: need 0 < low < high < fs/2");
  // Difference of two lowpass prototypes, then normalize gain at band center.
  const RealVec lp_high = design_lowpass(high_hz, fs, num_taps, window);
  const RealVec lp_low = design_lowpass(low_hz, fs, num_taps, window);
  RealVec taps(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) taps[i] = lp_high[i] - lp_low[i];
  const double f0 = 0.5 * (low_hz + high_hz);
  const double g = std::abs(fir_response_at(taps, f0, fs));
  detail::require(g > 1e-12, "design_bandpass: degenerate design");
  for (auto& v : taps) v /= g;
  return taps;
}

RealVec design_raised_cosine(double symbol_rate_hz, double beta, int span_symbols,
                             int samples_per_symbol) {
  detail::require(beta >= 0.0 && beta <= 1.0, "raised_cosine: beta must be in [0,1]");
  detail::require(span_symbols >= 1 && samples_per_symbol >= 1,
                  "raised_cosine: span and oversampling must be >= 1");
  const double T = 1.0 / symbol_rate_hz;
  const double dt = T / samples_per_symbol;
  const int half = span_symbols * samples_per_symbol;
  RealVec taps(static_cast<std::size_t>(2 * half + 1));
  for (int i = -half; i <= half; ++i) {
    const double t = i * dt;
    const double x = t / T;
    double denom = 1.0 - 4.0 * beta * beta * x * x;
    double value;
    if (std::abs(denom) < 1e-9) {
      // L'Hopital at t = +/- T/(2 beta).
      value = (pi / 4.0) * sinc(1.0 / (2.0 * beta));
    } else {
      value = sinc(x) * std::cos(pi * beta * x) / denom;
    }
    taps[static_cast<std::size_t>(i + half)] = value;
  }
  return taps;  // peak is already 1 at t = 0
}

RealVec design_root_raised_cosine(double symbol_rate_hz, double beta, int span_symbols,
                                  int samples_per_symbol) {
  detail::require(beta > 0.0 && beta <= 1.0, "rrc: beta must be in (0,1]");
  detail::require(span_symbols >= 1 && samples_per_symbol >= 1,
                  "rrc: span and oversampling must be >= 1");
  const double T = 1.0 / symbol_rate_hz;
  const double dt = T / samples_per_symbol;
  const int half = span_symbols * samples_per_symbol;
  RealVec taps(static_cast<std::size_t>(2 * half + 1));
  for (int i = -half; i <= half; ++i) {
    const double t = i * dt;
    double value;
    if (std::abs(t) < 1e-15) {
      value = 1.0 - beta + 4.0 * beta / pi;
    } else if (std::abs(std::abs(t) - T / (4.0 * beta)) < 1e-12 * T) {
      value = (beta / std::numbers::sqrt2) *
              ((1.0 + 2.0 / pi) * std::sin(pi / (4.0 * beta)) +
               (1.0 - 2.0 / pi) * std::cos(pi / (4.0 * beta)));
    } else {
      const double x = t / T;
      const double num = std::sin(pi * x * (1.0 - beta)) +
                         4.0 * beta * x * std::cos(pi * x * (1.0 + beta));
      const double den = pi * x * (1.0 - 16.0 * beta * beta * x * x) / 1.0;
      value = num / den;
    }
    taps[static_cast<std::size_t>(i + half)] = value;
  }
  // Unit energy normalization.
  double e = 0.0;
  for (double v : taps) e += v * v;
  const double g = 1.0 / std::sqrt(e);
  for (auto& v : taps) v *= g;
  return taps;
}

cplx fir_response_at(const RealVec& taps, double freq_hz, double fs) {
  cplx acc{0.0, 0.0};
  const double w = two_pi * freq_hz / fs;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    acc += taps[i] * cplx(std::cos(w * static_cast<double>(i)),
                          -std::sin(w * static_cast<double>(i)));
  }
  return acc;
}

double fir_gain_db_at(const RealVec& taps, double freq_hz, double fs) {
  return amp_to_db(std::abs(fir_response_at(taps, freq_hz, fs)) + 1e-300);
}

}  // namespace uwb::dsp
