#pragma once
/// \file power_spectrum.h
/// \brief Welch-averaged power spectral density estimation. Used for FCC
///        mask compliance checks and by the digital spectral monitor.

#include <cstddef>

#include "common/types.h"
#include "common/waveform.h"
#include "dsp/window.h"

namespace uwb::dsp {

/// Result of a PSD estimate: matched frequency/density arrays.
struct Psd {
  RealVec freq_hz;         ///< bin center frequencies
  RealVec density_w_per_hz;  ///< power spectral density [W/Hz] per bin

  /// Density at a bin, in dBm/MHz (the FCC's unit).
  [[nodiscard]] double dbm_per_mhz(std::size_t bin) const;

  /// Index of the bin nearest \p f_hz.
  [[nodiscard]] std::size_t bin_of(double f_hz) const;

  /// Total power integrated over all bins [W].
  [[nodiscard]] double total_power() const;

  /// Peak density bin index.
  [[nodiscard]] std::size_t peak_bin() const;
};

/// Welch PSD of a real signal: segments of \p segment_len with 50% overlap,
/// windowed, averaged. Frequencies span [0, fs/2] (one-sided, density
/// doubled to conserve power).
Psd welch_psd(const RealWaveform& x, std::size_t segment_len,
              WindowType window = WindowType::kHann);

/// Welch PSD of a complex baseband signal; two-sided, frequencies span
/// [-fs/2, fs/2).
Psd welch_psd(const CplxWaveform& x, std::size_t segment_len,
              WindowType window = WindowType::kHann);

/// Occupied bandwidth: width of the smallest band around the peak holding
/// \p fraction (default 99%) of the total power.
double occupied_bandwidth(const Psd& psd, double fraction = 0.99);

/// -10 dB bandwidth around the spectral peak (the UWB definition of signal
/// bandwidth used by the FCC rules).
double bandwidth_at_level(const Psd& psd, double level_db = -10.0);

}  // namespace uwb::dsp
