#include "dsp/biquad.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::dsp {

namespace {

void check_f0(double f0_hz, double fs) {
  detail::require(f0_hz > 0.0 && f0_hz < fs / 2.0, "biquad design: f0 must be in (0, fs/2)");
  detail::require(fs > 0.0, "biquad design: fs must be positive");
}

}  // namespace

BiquadCoeffs design_notch(double f0_hz, double q, double fs) {
  check_f0(f0_hz, fs);
  detail::require(q > 0.0, "design_notch: q must be positive");
  const double w0 = two_pi * f0_hz / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = 1.0 / a0;
  c.b1 = -2.0 * cw / a0;
  c.b2 = 1.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs design_biquad_lowpass(double f0_hz, double q, double fs) {
  check_f0(f0_hz, fs);
  detail::require(q > 0.0, "design_biquad_lowpass: q must be positive");
  const double w0 = two_pi * f0_hz / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 - cw) / 2.0 / a0;
  c.b1 = (1.0 - cw) / a0;
  c.b2 = (1.0 - cw) / 2.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs design_biquad_highpass(double f0_hz, double q, double fs) {
  check_f0(f0_hz, fs);
  detail::require(q > 0.0, "design_biquad_highpass: q must be positive");
  const double w0 = two_pi * f0_hz / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 + cw) / 2.0 / a0;
  c.b1 = -(1.0 + cw) / a0;
  c.b2 = (1.0 + cw) / 2.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs design_peaking(double f0_hz, double q, double gain_db, double fs) {
  check_f0(f0_hz, fs);
  detail::require(q > 0.0, "design_peaking: q must be positive");
  const double A = std::pow(10.0, gain_db / 40.0);
  const double w0 = two_pi * f0_hz / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha / A;
  BiquadCoeffs c;
  c.b0 = (1.0 + alpha * A) / a0;
  c.b1 = -2.0 * cw / a0;
  c.b2 = (1.0 - alpha * A) / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha / A) / a0;
  return c;
}

cplx biquad_response_at(const BiquadCoeffs& c, double f_hz, double fs) {
  const double w = two_pi * f_hz / fs;
  const cplx z1 = std::polar(1.0, -w);
  const cplx z2 = z1 * z1;
  return (c.b0 + c.b1 * z1 + c.b2 * z2) / (1.0 + c.a1 * z1 + c.a2 * z2);
}

}  // namespace uwb::dsp
