#pragma once
/// \file fft.h
/// \brief Iterative radix-2 FFT used by the spectral monitor, PSD estimation
///        and fast convolution. Self-contained (no external FFT library).
///
/// Two layers:
///   - FftPlan: precomputed twiddle factors + bit-reversal table for one
///     transform size, executing in place into caller-owned buffers so
///     repeated transforms of the same size allocate nothing. Plans are
///     immutable after construction and safe to share across threads.
///   - fft_plan(n): a process-wide, thread-safe, per-size plan cache. The
///     hot path (overlap-save convolution, per-packet spectral monitoring)
///     pays the twiddle/bit-reversal setup exactly once per size.
///
/// The legacy free functions (fft_inplace, fft, ifft, fft_convolve) remain
/// and route through the cache.

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace uwb::dsp {

/// A precomputed radix-2 FFT of one fixed power-of-two size.
///
/// The plan owns its twiddle-factor and bit-reversal tables; execute calls
/// are const, allocation-free, and re-entrant, so a single cached plan can
/// serve every worker thread of a parallel sweep concurrently.
class FftPlan {
 public:
  /// Builds tables for length \p n (power of two, >= 1).
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT of \p x[0..size()). No allocation.
  void forward(cplx* x) const noexcept;

  /// In-place inverse DFT of \p x[0..size()), including the 1/N scale.
  void inverse(cplx* x) const noexcept;

  /// Vector conveniences; \p x.size() must equal size().
  void forward(CplxVec& x) const;
  void inverse(CplxVec& x) const;

 private:
  void run(cplx* x, bool inverse) const noexcept;

  std::size_t n_ = 0;
  std::vector<std::uint32_t> rev_;  ///< bit-reversal permutation
  CplxVec twiddle_;                 ///< forward twiddles, stages concatenated
};

/// The process-wide plan cache: returns the shared immutable plan for
/// length \p n (power of two), constructing it on first use. Thread-safe;
/// the returned reference stays valid for the lifetime of the process.
const FftPlan& fft_plan(std::size_t n);

/// Cumulative hit/miss accounting of the fft_plan cache since process
/// start. A hit serves an existing plan; a miss pays the twiddle and
/// bit-reversal table construction. The telemetry layer (src/obs/) reports
/// per-run deltas of these totals.
struct FftPlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
[[nodiscard]] FftPlanCacheStats fft_plan_cache_stats();

/// In-place forward FFT. \p x must have power-of-two length.
void fft_inplace(CplxVec& x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(CplxVec& x);

/// Out-of-place forward FFT of a complex buffer; zero-pads to the next
/// power of two when \p n == 0, otherwise pads/truncates to \p n
/// (which must be a power of two).
CplxVec fft(const CplxVec& x, std::size_t n = 0);

/// Out-of-place forward FFT of a real buffer (returned full-length complex).
CplxVec fft(const RealVec& x, std::size_t n = 0);

/// Out-of-place inverse FFT.
CplxVec ifft(const CplxVec& x);

/// Magnitude-squared of each FFT bin, |X[k]|^2.
RealVec power_bins(const CplxVec& spectrum);

/// Frequency (Hz) of FFT bin \p k for length \p n at sample rate \p fs,
/// mapped to the range [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

/// Linear convolution of two real sequences via overlap-free full FFT.
/// Result has length a.size() + b.size() - 1.
RealVec fft_convolve(const RealVec& a, const RealVec& b);

/// Linear convolution of a complex sequence with a complex kernel via FFT.
CplxVec fft_convolve(const CplxVec& a, const CplxVec& b);

}  // namespace uwb::dsp
