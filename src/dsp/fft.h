#pragma once
/// \file fft.h
/// \brief Iterative radix-2 FFT used by the spectral monitor, PSD estimation
///        and fast convolution. Self-contained (no external FFT library).
///
/// Two layers:
///   - FftPlan: precomputed twiddle factors + bit-reversal table for one
///     transform size, executing in place into caller-owned buffers so
///     repeated transforms of the same size allocate nothing. Plans are
///     immutable after construction and safe to share across threads.
///   - fft_plan(n): a process-wide, thread-safe, per-size plan cache. The
///     hot path (overlap-save convolution, per-packet spectral monitoring)
///     pays the twiddle/bit-reversal setup exactly once per size.
///
/// The legacy free functions (fft_inplace, fft, ifft, fft_convolve) remain
/// and route through the cache.

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace uwb::dsp {

/// A precomputed radix-2 FFT of one fixed power-of-two size.
///
/// The plan owns its twiddle-factor and bit-reversal tables; execute calls
/// are const, allocation-free, and re-entrant, so a single cached plan can
/// serve every worker thread of a parallel sweep concurrently.
class FftPlan {
 public:
  /// Builds tables for length \p n (power of two, >= 1).
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT of \p x[0..size()). No allocation.
  void forward(cplx* x) const noexcept;

  /// In-place inverse DFT of \p x[0..size()), including the 1/N scale.
  void inverse(cplx* x) const noexcept;

  /// Vector conveniences; \p x.size() must equal size().
  void forward(CplxVec& x) const;
  void inverse(CplxVec& x) const;

 private:
  void run(cplx* x, bool inverse) const noexcept;

  std::size_t n_ = 0;
  std::vector<std::uint32_t> rev_;  ///< bit-reversal permutation
  CplxVec twiddle_;                 ///< forward twiddles, stages concatenated
};

/// The process-wide plan cache: returns the shared immutable plan for
/// length \p n (power of two), constructing it on first use. Thread-safe;
/// the returned reference stays valid for the lifetime of the process.
const FftPlan& fft_plan(std::size_t n);

/// A real-input FFT of one fixed even power-of-two size \p n, built on a
/// half-size complex plan via the pack-two-reals identity: the n real
/// samples are viewed as n/2 complex samples, transformed once, and the
/// even/odd spectra are disentangled with one extra O(n) pass. One real
/// transform therefore costs roughly half of the equivalent complex one —
/// which is what makes it the right engine for real x real overlap-save
/// convolution (src/dsp/fast_convolve.cpp).
///
/// The spectrum representation is the usual half-spectrum: bins()
/// == n/2 + 1 complex bins X[0..n/2], where X[0] and X[n/2] carry the DC
/// and Nyquist terms (real for real input; the imaginary parts of those
/// two bins are ignored by inverse()). The remaining bins of the full
/// spectrum are implied by conjugate symmetry X[n-k] = conj(X[k]).
///
/// Like FftPlan, execution is const, allocation-free and re-entrant.
class RfftPlan {
 public:
  /// Builds tables for length \p n (power of two, >= 2). \p half must be
  /// the cached plan of size n/2; rfft_plan(n) supplies it.
  RfftPlan(std::size_t n, const FftPlan& half);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Number of spectrum bins: n/2 + 1.
  [[nodiscard]] std::size_t bins() const noexcept { return n_ / 2 + 1; }

  /// Forward real DFT: reads x[0..n), writes spec[0..n/2]. The buffers
  /// may not alias. No allocation.
  void forward(const double* x, cplx* spec) const noexcept;

  /// Inverse real DFT including the 1/n scale: consumes spec[0..n/2]
  /// (destroys the buffer — it is used as scratch for the half-size
  /// transform) and writes x[0..n). The buffers may not alias.
  void inverse(cplx* spec, double* x) const noexcept;

 private:
  std::size_t n_ = 0;
  const FftPlan* half_ = nullptr;  ///< cached plan of size n/2
  CplxVec w_;                      ///< W_n^k = exp(-2*pi*i*k/n), k in [0, n/4]
};

/// The process-wide real-plan cache, sharing hit/miss accounting with
/// fft_plan(). \p n must be a power of two >= 2.
const RfftPlan& rfft_plan(std::size_t n);

/// Cumulative hit/miss accounting of the fft_plan cache since process
/// start. A hit serves an existing plan; a miss pays the twiddle and
/// bit-reversal table construction. The telemetry layer (src/obs/) reports
/// per-run deltas of these totals.
struct FftPlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
[[nodiscard]] FftPlanCacheStats fft_plan_cache_stats();

/// In-place forward FFT. \p x must have power-of-two length.
void fft_inplace(CplxVec& x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(CplxVec& x);

/// Out-of-place forward FFT of a complex buffer; zero-pads to the next
/// power of two when \p n == 0, otherwise pads/truncates to \p n
/// (which must be a power of two).
CplxVec fft(const CplxVec& x, std::size_t n = 0);

/// Out-of-place forward FFT of a real buffer (returned full-length complex).
CplxVec fft(const RealVec& x, std::size_t n = 0);

/// Out-of-place inverse FFT.
CplxVec ifft(const CplxVec& x);

/// Out-of-place forward real FFT returning the half spectrum X[0..n/2]
/// (n/2 + 1 bins, conjugate symmetry implied). Zero-pads to the next
/// power of two >= 2 when \p n == 0, otherwise pads/truncates to \p n
/// (which must be a power of two >= 2). Empty input with n == 0 returns
/// an empty vector.
CplxVec rfft(const RealVec& x, std::size_t n = 0);

/// Inverse of rfft: takes a half spectrum of m + 1 bins (m a power of
/// two) and returns the length-2m real signal, truncated to \p out_len
/// when nonzero. An empty spectrum returns an empty vector.
RealVec irfft(const CplxVec& spec, std::size_t out_len = 0);

/// Magnitude-squared of each FFT bin, |X[k]|^2.
RealVec power_bins(const CplxVec& spectrum);

/// Frequency (Hz) of FFT bin \p k for length \p n at sample rate \p fs,
/// mapped to the range [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

/// Linear convolution of two real sequences via overlap-free full FFT.
/// Result has length a.size() + b.size() - 1.
RealVec fft_convolve(const RealVec& a, const RealVec& b);

/// Linear convolution of a complex sequence with a complex kernel via FFT.
CplxVec fft_convolve(const CplxVec& a, const CplxVec& b);

}  // namespace uwb::dsp
