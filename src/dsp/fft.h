#pragma once
/// \file fft.h
/// \brief Iterative radix-2 FFT used by the spectral monitor, PSD estimation
///        and fast convolution. Self-contained (no external FFT library).

#include <cstddef>

#include "common/types.h"

namespace uwb::dsp {

/// In-place forward FFT. \p x must have power-of-two length.
void fft_inplace(CplxVec& x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(CplxVec& x);

/// Out-of-place forward FFT of a complex buffer; zero-pads to the next
/// power of two when \p n == 0, otherwise pads/truncates to \p n
/// (which must be a power of two).
CplxVec fft(const CplxVec& x, std::size_t n = 0);

/// Out-of-place forward FFT of a real buffer (returned full-length complex).
CplxVec fft(const RealVec& x, std::size_t n = 0);

/// Out-of-place inverse FFT.
CplxVec ifft(const CplxVec& x);

/// Magnitude-squared of each FFT bin, |X[k]|^2.
RealVec power_bins(const CplxVec& spectrum);

/// Frequency (Hz) of FFT bin \p k for length \p n at sample rate \p fs,
/// mapped to the range [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

/// Linear convolution of two real sequences via overlap-free full FFT.
/// Result has length a.size() + b.size() - 1.
RealVec fft_convolve(const RealVec& a, const RealVec& b);

/// Linear convolution of a complex sequence with a complex kernel via FFT.
CplxVec fft_convolve(const CplxVec& a, const CplxVec& b);

}  // namespace uwb::dsp
