#pragma once
/// \file fast_convolve.h
/// \brief Overlap-save FFT convolution behind the library's convolve /
///        correlate entry points, with a runtime policy switch and reusable
///        per-thread scratch workspaces.
///
/// Dispatch contract: dsp::convolve, dsp::convolve_same and dsp::correlate
/// route through use_fft_convolve(). Below the crossover the direct O(N*M)
/// kernels run (they win on short kernels); above it the work goes through
/// overlap-save block convolution on cached FftPlans. The crossover
/// constants were measured with bench_dsp_micro (see docs/performance.md).
///
/// Determinism: for a fixed policy setting the output is a pure function of
/// the inputs -- block decomposition depends only on sizes, and the scratch
/// workspace is thread-local, so parallel sweep workers never share state.
/// Flipping the policy changes results only at the ~1e-12 rounding level
/// (FFT and direct accumulation orders differ).

#include <cstddef>

#include "common/types.h"

namespace uwb::dsp {

/// Reusable scratch for FFT convolution. Buffers grow to the largest size
/// seen and are then reused allocation-free; a sweep worker thread keeps one
/// workspace for its whole trial stream (see thread_fft_workspace()).
struct FftWorkspace {
  CplxVec kernel_fft;  ///< H = FFT(kernel), one block size
  CplxVec block;       ///< per-block staging / transform buffer
  // Real x real jobs run on the half-size real transform (dsp::RfftPlan)
  // instead: real staging buffer plus half-spectrum kernel/work buffers.
  RealVec rblock;       ///< real per-block staging / kernel staging buffer
  CplxVec kernel_rfft;  ///< H = rfft(kernel), n/2 + 1 bins
  CplxVec rspec;        ///< per-block half-spectrum work buffer
};

/// The per-thread workspace used by the auto-dispatching entry points.
/// Thread-local: engine workers each reuse their own buffers trial after
/// trial with zero reallocation once warmed up.
FftWorkspace& thread_fft_workspace();

/// Globally enables/disables the FFT fast path (default: enabled).
/// Tests and benches flip this to compare against the direct kernels;
/// production code leaves it on.
void set_fast_convolve_enabled(bool enabled) noexcept;
[[nodiscard]] bool fast_convolve_enabled() noexcept;

/// RAII guard for scoped policy changes in tests/benches.
class FastConvolveGuard {
 public:
  explicit FastConvolveGuard(bool enabled) noexcept
      : saved_(fast_convolve_enabled()) {
    set_fast_convolve_enabled(enabled);
  }
  ~FastConvolveGuard() { set_fast_convolve_enabled(saved_); }
  FastConvolveGuard(const FastConvolveGuard&) = delete;
  FastConvolveGuard& operator=(const FastConvolveGuard&) = delete;

 private:
  bool saved_;
};

/// Sample-type combination of a convolution, used by the dispatch policy:
/// a direct real MAC costs ~2 flops, complex*real ~4, complex*complex ~8,
/// while the FFT path always pays complex transforms -- so the crossover
/// kernel length shrinks as the direct arithmetic gets heavier.
enum class ConvKind { kRealReal, kCplxReal, kCplxCplx };

/// Measured dispatch crossovers (bench_dsp_micro "Convolve*"/"Correlate*"
/// fixtures, 16k-sample signal; see docs/performance.md): the FFT path wins
/// once the kernel reaches the per-kind tap count below AND the direct-cost
/// proxy x_len * h_len clears kFftMinProduct. Real x real runs on the
/// half-size real transform (RfftPlan), which moved its crossover down
/// from 128: direct still wins at 64 taps, rfft wins from 96 up.
inline constexpr std::size_t kFftMinKernelRealReal = 96;
inline constexpr std::size_t kFftMinKernelCplxReal = 64;
inline constexpr std::size_t kFftMinKernelCplxCplx = 32;
inline constexpr std::size_t kFftMinProduct = 1u << 15;

/// True when (x_len, h_len) should take the overlap-save path under the
/// current policy.
[[nodiscard]] bool use_fft_convolve(std::size_t x_len, std::size_t h_len,
                                    ConvKind kind) noexcept;

/// Overlap-save full linear convolution, result length x+h-1, written into
/// \p out (resized; reuses capacity). No allocation once \p ws is warm.
void ols_convolve(const RealVec& x, const RealVec& h, RealVec& out, FftWorkspace& ws);
void ols_convolve(const CplxVec& x, const RealVec& h, CplxVec& out, FftWorkspace& ws);
void ols_convolve(const CplxVec& x, const CplxVec& h, CplxVec& out, FftWorkspace& ws);

/// Overlap-save sliding correlation (same definition as dsp::correlate:
/// out[k] = sum_i x[k+i] * conj(tmpl[i]), valid lags only), written into
/// \p out. Implemented as convolution with the conjugate-reversed template.
void ols_correlate(const RealVec& x, const RealVec& tmpl, RealVec& out, FftWorkspace& ws);
void ols_correlate(const CplxVec& x, const CplxVec& tmpl, CplxVec& out, FftWorkspace& ws);

}  // namespace uwb::dsp
