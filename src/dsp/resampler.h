#pragma once
/// \file resampler.h
/// \brief Integer-factor rate conversion with anti-alias / anti-image
///        filtering. Used to move between the RF-rate and ADC-rate domains.

#include <cstddef>

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::dsp {

/// Inserts factor-1 zeros between samples, then applies an interpolation
/// lowpass at the original Nyquist edge. Output rate = fs * factor.
RealWaveform upsample(const RealWaveform& x, int factor, std::size_t filter_taps = 63);

/// Complex version of upsample().
CplxWaveform upsample(const CplxWaveform& x, int factor, std::size_t filter_taps = 63);

/// Anti-alias lowpass at the new Nyquist edge, then keeps every factor-th
/// sample. Output rate = fs / factor.
RealWaveform decimate(const RealWaveform& x, int factor, std::size_t filter_taps = 63);

/// Complex version of decimate().
CplxWaveform decimate(const CplxWaveform& x, int factor, std::size_t filter_taps = 63);

/// Keeps every factor-th sample with NO filtering -- models an ADC sampling
/// an already band-limited analog waveform (the common case in this library,
/// where the analog chain has its own anti-alias filter).
template <typename T>
std::vector<T> downsample_raw(const std::vector<T>& x, int factor, std::size_t phase = 0) {
  std::vector<T> out;
  if (factor <= 0) return out;
  out.reserve(x.size() / static_cast<std::size_t>(factor) + 1);
  for (std::size_t i = phase; i < x.size(); i += static_cast<std::size_t>(factor)) {
    out.push_back(x[i]);
  }
  return out;
}

}  // namespace uwb::dsp
