#include "dsp/power_spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/fft.h"

namespace uwb::dsp {

double Psd::dbm_per_mhz(std::size_t bin) const {
  // W/Hz -> mW/MHz: * 1e3 (W->mW) * 1e6 (per-Hz -> per-MHz).
  const double mw_per_mhz = density_w_per_hz[bin] * 1e9;
  return 10.0 * std::log10(std::max(mw_per_mhz, 1e-300));
}

std::size_t Psd::bin_of(double f_hz) const {
  detail::require(!freq_hz.empty(), "Psd::bin_of: empty PSD");
  std::size_t best = 0;
  double best_d = std::abs(freq_hz[0] - f_hz);
  for (std::size_t i = 1; i < freq_hz.size(); ++i) {
    const double d = std::abs(freq_hz[i] - f_hz);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double Psd::total_power() const {
  if (freq_hz.size() < 2) return 0.0;
  const double df = freq_hz[1] - freq_hz[0];
  double acc = 0.0;
  for (double d : density_w_per_hz) acc += d * df;
  return acc;
}

std::size_t Psd::peak_bin() const {
  return static_cast<std::size_t>(
      std::distance(density_w_per_hz.begin(),
                    std::max_element(density_w_per_hz.begin(), density_w_per_hz.end())));
}

namespace {

/// Shared Welch machinery. Returns averaged |X[k]|^2 / (fs * window_power)
/// over 50%-overlapped windowed segments, full two-sided bin order.
RealVec welch_bins(const CplxVec& x, std::size_t segment_len, WindowType window, double fs) {
  detail::require(is_pow2(segment_len), "welch_psd: segment_len must be a power of two");
  detail::require(x.size() >= segment_len, "welch_psd: signal shorter than segment");
  const RealVec w = make_window(window, segment_len);
  double window_power = 0.0;
  for (double v : w) window_power += v * v;

  const std::size_t hop = segment_len / 2;
  RealVec acc(segment_len, 0.0);
  std::size_t count = 0;
  CplxVec seg(segment_len);
  for (std::size_t start = 0; start + segment_len <= x.size(); start += hop) {
    for (std::size_t i = 0; i < segment_len; ++i) seg[i] = x[start + i] * w[i];
    fft_inplace(seg);
    for (std::size_t i = 0; i < segment_len; ++i) acc[i] += std::norm(seg[i]);
    ++count;
  }
  const double norm = 1.0 / (static_cast<double>(count) * fs * window_power);
  for (auto& v : acc) v *= norm;
  return acc;
}

}  // namespace

Psd welch_psd(const RealWaveform& x, std::size_t segment_len, WindowType window) {
  CplxVec cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = cplx(x[i], 0.0);
  RealVec bins = welch_bins(cx, segment_len, window, x.sample_rate());

  // One-sided: keep bins [0, N/2], double interior bins to conserve power.
  const std::size_t half = segment_len / 2;
  Psd psd;
  psd.freq_hz.resize(half + 1);
  psd.density_w_per_hz.resize(half + 1);
  for (std::size_t k = 0; k <= half; ++k) {
    psd.freq_hz[k] = static_cast<double>(k) * x.sample_rate() / static_cast<double>(segment_len);
    const double scale = (k == 0 || k == half) ? 1.0 : 2.0;
    psd.density_w_per_hz[k] = scale * bins[k];
  }
  return psd;
}

Psd welch_psd(const CplxWaveform& x, std::size_t segment_len, WindowType window) {
  RealVec bins = welch_bins(x.samples(), segment_len, window, x.sample_rate());
  // Two-sided, re-ordered to ascending frequency [-fs/2, fs/2).
  Psd psd;
  psd.freq_hz.resize(segment_len);
  psd.density_w_per_hz.resize(segment_len);
  const std::size_t half = segment_len / 2;
  for (std::size_t i = 0; i < segment_len; ++i) {
    const std::size_t k = (i + half) % segment_len;  // start from -fs/2
    psd.freq_hz[i] = bin_frequency(k, segment_len, x.sample_rate());
    psd.density_w_per_hz[i] = bins[k];
  }
  return psd;
}

double occupied_bandwidth(const Psd& psd, double fraction) {
  detail::require(fraction > 0.0 && fraction < 1.0, "occupied_bandwidth: fraction in (0,1)");
  if (psd.freq_hz.size() < 2) return 0.0;
  const double df = psd.freq_hz[1] - psd.freq_hz[0];
  const double total = psd.total_power();
  if (total <= 0.0) return 0.0;

  // Grow a window outward from the peak until the fraction is captured.
  const std::size_t peak = psd.peak_bin();
  double captured = psd.density_w_per_hz[peak] * df;
  std::size_t lo = peak, hi = peak;
  while (captured < fraction * total) {
    const double left = lo > 0 ? psd.density_w_per_hz[lo - 1] : -1.0;
    const double right = hi + 1 < psd.density_w_per_hz.size() ? psd.density_w_per_hz[hi + 1] : -1.0;
    if (left < 0.0 && right < 0.0) break;
    if (left >= right) {
      --lo;
      captured += left * df;
    } else {
      ++hi;
      captured += right * df;
    }
  }
  return static_cast<double>(hi - lo + 1) * df;
}

double bandwidth_at_level(const Psd& psd, double level_db) {
  if (psd.freq_hz.size() < 2) return 0.0;
  const std::size_t peak = psd.peak_bin();
  const double threshold = psd.density_w_per_hz[peak] * from_db(level_db);
  // Walk outward until density stays below threshold.
  std::size_t lo = peak;
  while (lo > 0 && psd.density_w_per_hz[lo - 1] >= threshold) --lo;
  std::size_t hi = peak;
  while (hi + 1 < psd.density_w_per_hz.size() && psd.density_w_per_hz[hi + 1] >= threshold) ++hi;
  return psd.freq_hz[hi] - psd.freq_hz[lo];
}

}  // namespace uwb::dsp
