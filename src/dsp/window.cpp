#include "dsp/window.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::dsp {

namespace {

/// Generalized cosine window sum_k a_k cos(2 pi k n / (N-1)).
RealVec cosine_window(std::size_t n, double a0, double a1, double a2) {
  RealVec w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = two_pi * static_cast<double>(i) / denom;
    w[i] = a0 - a1 * std::cos(x) + a2 * std::cos(2.0 * x);
  }
  return w;
}

}  // namespace

double bessel_i0(double x) {
  // Power-series; converges quickly for the |x| <= ~30 used by Kaiser betas.
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

RealVec hann(std::size_t n) { return cosine_window(n, 0.5, 0.5, 0.0); }

RealVec hamming(std::size_t n) { return cosine_window(n, 0.54, 0.46, 0.0); }

RealVec blackman(std::size_t n) { return cosine_window(n, 0.42, 0.5, 0.08); }

RealVec kaiser(std::size_t n, double beta) {
  detail::require(beta >= 0.0, "kaiser: beta must be non-negative");
  RealVec w(n, 1.0);
  if (n == 1) return w;
  const double denom = bessel_i0(beta);
  const double m = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = 2.0 * static_cast<double>(i) / m - 1.0;  // -1..1
    w[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / denom;
  }
  return w;
}

RealVec make_window(WindowType type, std::size_t n, double kaiser_beta) {
  detail::require(n >= 1, "make_window: n must be >= 1");
  switch (type) {
    case WindowType::kRectangular:
      return RealVec(n, 1.0);
    case WindowType::kHann:
      return hann(n);
    case WindowType::kHamming:
      return hamming(n);
    case WindowType::kBlackman:
      return blackman(n);
    case WindowType::kKaiser:
      return kaiser(n, kaiser_beta);
  }
  throw InvalidArgument("make_window: unknown window type");
}

double noise_bandwidth_bins(const RealVec& window) {
  detail::require(!window.empty(), "noise_bandwidth_bins: empty window");
  double sum = 0.0, sum_sq = 0.0;
  for (double v : window) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(window.size());
  return n * sum_sq / (sum * sum);
}

}  // namespace uwb::dsp
