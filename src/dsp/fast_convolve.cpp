#include "dsp/fast_convolve.h"

#include <algorithm>
#include <atomic>
#include <type_traits>

#include "common/math_utils.h"
#include "dsp/fft.h"

namespace uwb::dsp {

namespace {

std::atomic<bool> g_fast_enabled{true};

inline cplx to_cplx(double v) noexcept { return {v, 0.0}; }
inline cplx to_cplx(const cplx& v) noexcept { return v; }

/// Picks the overlap-save FFT size for a kernel of \p h_len taps and a
/// result of \p out_len samples: a single full-size transform when the
/// whole job fits in a modest block, otherwise a block about 4x the kernel
/// so ~3/4 of every transform produces valid output.
std::size_t pick_fft_size(std::size_t h_len, std::size_t out_len) {
  const std::size_t full = next_pow2(out_len);
  const std::size_t block = std::max<std::size_t>(1024, next_pow2(4 * h_len));
  return std::min(full, block);
}

/// Core overlap-save loop: full linear convolution of \p x with the
/// \p h_len-tap kernel the caller staged into ws.kernel_fft[0..h_len).
/// Valid block outputs are handed to \p store(full_index, value).
template <typename TX, typename StoreFn>
void ols_run(const std::vector<TX>& x, std::size_t h_len, StoreFn&& store,
             FftWorkspace& ws) {
  const std::size_t x_len = x.size();
  const std::size_t out_len = x_len + h_len - 1;
  const std::size_t n = pick_fft_size(h_len, out_len);
  const std::size_t hop = n - h_len + 1;  // valid outputs per block
  const FftPlan& plan = fft_plan(n);

  // Kernel spectrum (zero stale bytes past the staged taps).
  ws.kernel_fft.resize(n, cplx{});
  std::fill(ws.kernel_fft.begin() + static_cast<std::ptrdiff_t>(h_len),
            ws.kernel_fft.end(), cplx{});
  plan.forward(ws.kernel_fft.data());

  ws.block.resize(n);
  for (std::size_t s = 0; s < out_len; s += hop) {
    // Outputs [s, s+hop) need input indices [s - (h_len-1), s - (h_len-1) + n).
    const std::ptrdiff_t i0 =
        static_cast<std::ptrdiff_t>(s) - static_cast<std::ptrdiff_t>(h_len - 1);
    for (std::size_t j = 0; j < n; ++j) {
      const std::ptrdiff_t i = i0 + static_cast<std::ptrdiff_t>(j);
      ws.block[j] = (i >= 0 && i < static_cast<std::ptrdiff_t>(x_len))
                        ? to_cplx(x[static_cast<std::size_t>(i)])
                        : cplx{};
    }
    plan.forward(ws.block.data());
    for (std::size_t k = 0; k < n; ++k) ws.block[k] *= ws.kernel_fft[k];
    plan.inverse(ws.block.data());
    const std::size_t count = std::min(hop, out_len - s);
    for (std::size_t t = 0; t < count; ++t) store(s + t, ws.block[h_len - 1 + t]);
  }
}

/// Real x real overlap-save core on the half-size real transform: same
/// block decomposition as ols_run (pick_fft_size depends only on sizes),
/// but each block pays one forward + one inverse RfftPlan execution --
/// roughly half the complex-transform work. The caller staged the kernel
/// taps into ws.rblock[0..h_len).
template <typename StoreFn>
void ols_run_real(const RealVec& x, std::size_t h_len, StoreFn&& store,
                  FftWorkspace& ws) {
  const std::size_t x_len = x.size();
  const std::size_t out_len = x_len + h_len - 1;
  const std::size_t n = std::max<std::size_t>(2, pick_fft_size(h_len, out_len));
  const std::size_t hop = n - h_len + 1;  // valid outputs per block
  const RfftPlan& plan = rfft_plan(n);
  const std::size_t bins = plan.bins();

  // Kernel half-spectrum (zero stale bytes past the staged taps).
  ws.rblock.resize(n);
  std::fill(ws.rblock.begin() + static_cast<std::ptrdiff_t>(h_len),
            ws.rblock.end(), 0.0);
  ws.kernel_rfft.resize(bins);
  plan.forward(ws.rblock.data(), ws.kernel_rfft.data());
  ws.rspec.resize(bins);

  for (std::size_t s = 0; s < out_len; s += hop) {
    // Outputs [s, s+hop) need input indices [s - (h_len-1), s - (h_len-1) + n):
    // copy the in-range span, zero-fill the edges (no per-sample branches).
    const std::ptrdiff_t i0 =
        static_cast<std::ptrdiff_t>(s) - static_cast<std::ptrdiff_t>(h_len - 1);
    const std::ptrdiff_t lo =
        std::clamp<std::ptrdiff_t>(-i0, 0, static_cast<std::ptrdiff_t>(n));
    const std::ptrdiff_t hi = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(x_len) - i0, lo, static_cast<std::ptrdiff_t>(n));
    std::fill(ws.rblock.begin(), ws.rblock.begin() + lo, 0.0);
    std::copy(x.begin() + (i0 + lo), x.begin() + (i0 + hi), ws.rblock.begin() + lo);
    std::fill(ws.rblock.begin() + hi, ws.rblock.end(), 0.0);

    plan.forward(ws.rblock.data(), ws.rspec.data());
    for (std::size_t k = 0; k < bins; ++k) ws.rspec[k] *= ws.kernel_rfft[k];
    plan.inverse(ws.rspec.data(), ws.rblock.data());
    const std::size_t count = std::min(hop, out_len - s);
    for (std::size_t t = 0; t < count; ++t) store(s + t, ws.rblock[h_len - 1 + t]);
  }
}

/// Shared prologue for the convolve overloads: stage the kernel, size the
/// output, run the block loop writing out[i] = project(block value).
template <typename TX, typename TH, typename TY>
void ols_convolve_impl(const std::vector<TX>& x, const std::vector<TH>& h,
                       std::vector<TY>& out, FftWorkspace& ws) {
  if (x.empty() || h.empty()) {
    out.clear();
    return;
  }
  out.resize(x.size() + h.size() - 1);
  ws.kernel_fft.resize(std::max(ws.kernel_fft.size(), h.size()));
  for (std::size_t i = 0; i < h.size(); ++i) ws.kernel_fft[i] = to_cplx(h[i]);
  ols_run(x, h.size(), [&](std::size_t idx, const cplx& v) {
    if constexpr (std::is_same_v<TY, double>) {
      out[idx] = v.real();
    } else {
      out[idx] = v;
    }
  }, ws);
}

/// Shared prologue for the correlate overloads: correlate(x, t)[k] equals
/// conv(x, reverse(conj(t)))[k + |t| - 1] over the valid lags.
template <typename T>
void ols_correlate_impl(const std::vector<T>& x, const std::vector<T>& tmpl,
                        std::vector<T>& out, FftWorkspace& ws) {
  const std::size_t m = tmpl.size();
  if (m == 0 || x.size() < m) {
    out.clear();
    return;
  }
  const std::size_t num_lags = x.size() - m + 1;
  out.resize(num_lags);
  ws.kernel_fft.resize(std::max(ws.kernel_fft.size(), m));
  for (std::size_t i = 0; i < m; ++i) ws.kernel_fft[i] = std::conj(to_cplx(tmpl[m - 1 - i]));
  ols_run(x, m, [&](std::size_t idx, const cplx& v) {
    if (idx < m - 1) return;  // partial-overlap prefix of the full convolution
    const std::size_t lag = idx - (m - 1);
    if (lag >= num_lags) return;
    if constexpr (std::is_same_v<T, double>) {
      out[lag] = v.real();
    } else {
      out[lag] = v;
    }
  }, ws);
}

}  // namespace

FftWorkspace& thread_fft_workspace() {
  thread_local FftWorkspace ws;
  return ws;
}

void set_fast_convolve_enabled(bool enabled) noexcept {
  g_fast_enabled.store(enabled, std::memory_order_relaxed);
}

bool fast_convolve_enabled() noexcept {
  return g_fast_enabled.load(std::memory_order_relaxed);
}

bool use_fft_convolve(std::size_t x_len, std::size_t h_len, ConvKind kind) noexcept {
  if (!fast_convolve_enabled()) return false;
  if (x_len == 0 || h_len == 0) return false;
  std::size_t min_kernel = kFftMinKernelCplxCplx;
  switch (kind) {
    case ConvKind::kRealReal: min_kernel = kFftMinKernelRealReal; break;
    case ConvKind::kCplxReal: min_kernel = kFftMinKernelCplxReal; break;
    case ConvKind::kCplxCplx: min_kernel = kFftMinKernelCplxCplx; break;
  }
  const std::size_t kernel = std::min(x_len, h_len);
  if (kernel < min_kernel) return false;
  return x_len * h_len >= kFftMinProduct;
}

void ols_convolve(const RealVec& x, const RealVec& h, RealVec& out, FftWorkspace& ws) {
  if (x.empty() || h.empty()) {
    out.clear();
    return;
  }
  out.resize(x.size() + h.size() - 1);
  ws.rblock.resize(std::max(ws.rblock.size(), h.size()));
  std::copy(h.begin(), h.end(), ws.rblock.begin());
  ols_run_real(x, h.size(), [&](std::size_t idx, double v) { out[idx] = v; }, ws);
}

void ols_convolve(const CplxVec& x, const RealVec& h, CplxVec& out, FftWorkspace& ws) {
  ols_convolve_impl(x, h, out, ws);
}

void ols_convolve(const CplxVec& x, const CplxVec& h, CplxVec& out, FftWorkspace& ws) {
  ols_convolve_impl(x, h, out, ws);
}

void ols_correlate(const RealVec& x, const RealVec& tmpl, RealVec& out, FftWorkspace& ws) {
  const std::size_t m = tmpl.size();
  if (m == 0 || x.size() < m) {
    out.clear();
    return;
  }
  const std::size_t num_lags = x.size() - m + 1;
  out.resize(num_lags);
  ws.rblock.resize(std::max(ws.rblock.size(), m));
  for (std::size_t i = 0; i < m; ++i) ws.rblock[i] = tmpl[m - 1 - i];
  ols_run_real(x, m, [&](std::size_t idx, double v) {
    if (idx < m - 1) return;  // partial-overlap prefix of the full convolution
    const std::size_t lag = idx - (m - 1);
    if (lag >= num_lags) return;
    out[lag] = v;
  }, ws);
}

void ols_correlate(const CplxVec& x, const CplxVec& tmpl, CplxVec& out, FftWorkspace& ws) {
  ols_correlate_impl(x, tmpl, out, ws);
}

}  // namespace uwb::dsp
