#include "equalizer/rake.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uwb::equalizer {

RakeReceiver::RakeReceiver(const RakeConfig& config, const channel::Cir& estimate, double fs)
    : config_(config) {
  detail::require(config.num_fingers >= 1, "RakeReceiver: need at least one finger");
  detail::require(fs > 0.0, "RakeReceiver: fs must be positive");

  // Select taps per policy.
  channel::Cir selected = estimate;
  switch (config.policy) {
    case FingerPolicy::kAll:
      break;
    case FingerPolicy::kSelective:
      selected = estimate.strongest(config.num_fingers);
      break;
    case FingerPolicy::kPartial: {
      std::vector<channel::CirTap> first(estimate.taps().begin(),
                                         estimate.taps().begin() +
                                             static_cast<std::ptrdiff_t>(std::min(
                                                 config.num_fingers, estimate.num_taps())));
      selected = channel::Cir(std::move(first));
      break;
    }
  }

  fingers_.reserve(selected.num_taps());
  for (const auto& tap : selected.taps()) {
    RakeFinger f;
    f.delay_samples = static_cast<std::size_t>(std::llround(tap.delay_s * fs));
    f.weight = tap.gain;
    fingers_.push_back(f);
    total_weight_energy_ += std::norm(tap.gain);
  }
  if (fingers_.empty()) {
    fingers_.push_back(RakeFinger{});  // degenerate single punctual finger
    total_weight_energy_ = 1.0;
  }
  const double total = estimate.total_energy();
  energy_capture_ = (total > 0.0) ? selected.total_energy() / total : 1.0;
}

std::vector<double> RakeReceiver::demodulate(const CplxWaveform& y,
                                             const SymbolTiming& timing) const {
  detail::require(timing.sps >= 1, "RakeReceiver: sps must be >= 1");
  std::vector<double> soft(timing.num_symbols, 0.0);
  const double norm = 1.0 / std::max(total_weight_energy_, 1e-300);
  for (std::size_t m = 0; m < timing.num_symbols; ++m) {
    const std::size_t base = timing.t0 + m * timing.sps;
    cplx acc{};
    for (const auto& f : fingers_) {
      const std::size_t idx = base + f.delay_samples;
      if (idx < y.size()) acc += std::conj(f.weight) * y[idx];
    }
    soft[m] = acc.real() * norm;
  }
  return soft;
}

std::vector<double> RakeReceiver::demodulate_ppm(const CplxWaveform& y,
                                                 const SymbolTiming& timing,
                                                 std::size_t ppm_offset_samples) const {
  detail::require(timing.sps >= 1, "RakeReceiver: sps must be >= 1");
  std::vector<double> soft(2 * timing.num_symbols, 0.0);
  const double norm = 1.0 / std::max(total_weight_energy_, 1e-300);
  for (std::size_t m = 0; m < timing.num_symbols; ++m) {
    const std::size_t base = timing.t0 + m * timing.sps;
    cplx acc0{}, acc1{};
    for (const auto& f : fingers_) {
      const std::size_t i0 = base + f.delay_samples;
      const std::size_t i1 = i0 + ppm_offset_samples;
      if (i0 < y.size()) acc0 += std::conj(f.weight) * y[i0];
      if (i1 < y.size()) acc1 += std::conj(f.weight) * y[i1];
    }
    soft[2 * m] = acc0.real() * norm;
    soft[2 * m + 1] = acc1.real() * norm;
  }
  return soft;
}

}  // namespace uwb::equalizer
