#include "equalizer/demodulator.h"

#include "common/error.h"

namespace uwb::equalizer {

std::vector<double> matched_filter_soft(const CplxWaveform& y, const SymbolTiming& timing,
                                        cplx w) {
  detail::require(timing.sps >= 1, "matched_filter_soft: sps must be >= 1");
  std::vector<double> soft(timing.num_symbols, 0.0);
  for (std::size_t m = 0; m < timing.num_symbols; ++m) {
    const std::size_t idx = timing.t0 + m * timing.sps;
    if (idx < y.size()) {
      soft[m] = (std::conj(w) * y[idx]).real();
    }
  }
  return soft;
}

std::vector<double> matched_filter_soft_ppm(const CplxWaveform& y, const SymbolTiming& timing,
                                            std::size_t ppm_offset_samples, cplx w) {
  detail::require(timing.sps >= 1, "matched_filter_soft_ppm: sps must be >= 1");
  std::vector<double> soft(2 * timing.num_symbols, 0.0);
  for (std::size_t m = 0; m < timing.num_symbols; ++m) {
    const std::size_t punctual = timing.t0 + m * timing.sps;
    const std::size_t offset = punctual + ppm_offset_samples;
    if (punctual < y.size()) soft[2 * m] = (std::conj(w) * y[punctual]).real();
    if (offset < y.size()) soft[2 * m + 1] = (std::conj(w) * y[offset]).real();
  }
  return soft;
}

}  // namespace uwb::equalizer
