#pragma once
/// \file rake.h
/// \brief Programmable RAKE receiver: "The energy spread caused by the
///        multipath can be compensated using a RAKE receiver" (Section 1);
///        gen-2 makes it programmable (Section 3). Finger count and
///        selection policy are the power/performance knobs of bench E7/E13.

#include "channel/cir.h"
#include "common/types.h"
#include "common/waveform.h"
#include "equalizer/demodulator.h"

namespace uwb::equalizer {

/// Finger-selection policies.
enum class FingerPolicy {
  kAll,        ///< one finger per estimated tap (A-RAKE)
  kSelective,  ///< the N strongest taps (S-RAKE)
  kPartial,    ///< the first N arriving taps (P-RAKE)
};

/// RAKE configuration.
struct RakeConfig {
  FingerPolicy policy = FingerPolicy::kSelective;
  std::size_t num_fingers = 8;
};

/// A finger: delay (in samples at the working rate) and combining weight.
struct RakeFinger {
  std::size_t delay_samples = 0;
  cplx weight{1.0, 0.0};
};

/// Maximal-ratio-combining RAKE over a matched-filtered waveform.
class RakeReceiver {
 public:
  /// Builds fingers from a channel estimate. \p fs is the waveform rate the
  /// delays are quantized to.
  RakeReceiver(const RakeConfig& config, const channel::Cir& estimate, double fs);

  [[nodiscard]] const RakeConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<RakeFinger>& fingers() const noexcept { return fingers_; }

  /// Fraction of estimated channel energy the selected fingers capture.
  [[nodiscard]] double energy_capture() const noexcept { return energy_capture_; }

  /// MRC soft outputs: soft(m) = Re{ sum_f conj(w_f) y[t0 + m sps + d_f] }
  /// normalized by the total finger energy.
  [[nodiscard]] std::vector<double> demodulate(const CplxWaveform& y,
                                               const SymbolTiming& timing) const;

  /// PPM variant: punctual and offset correlations per symbol.
  [[nodiscard]] std::vector<double> demodulate_ppm(const CplxWaveform& y,
                                                   const SymbolTiming& timing,
                                                   std::size_t ppm_offset_samples) const;

 private:
  RakeConfig config_;
  std::vector<RakeFinger> fingers_;
  double total_weight_energy_ = 0.0;
  double energy_capture_ = 0.0;
};

}  // namespace uwb::equalizer
