#pragma once
/// \file demodulator.h
/// \brief Baseline single-correlator demodulation: soft symbol outputs from
///        a matched-filtered waveform sampled at the symbol instants. The
///        reference point the RAKE (energy capture) and MLSE (ISI) must beat.

#include <cstddef>

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::equalizer {

/// Symbol-timing description shared by all demodulators: the punctual
/// sample of symbol m is t0 + m * sps.
struct SymbolTiming {
  std::size_t t0 = 0;        ///< sample index of symbol 0's punctual tap
  std::size_t sps = 20;      ///< samples per symbol
  std::size_t num_symbols = 0;
};

/// Matched-filter (single-finger) demodulator: soft(m) = Re{conj(w) y[.]}
/// with a single complex weight \p w (the strongest-path gain estimate;
/// pass 1.0 for an unweighted slicer).
std::vector<double> matched_filter_soft(const CplxWaveform& y, const SymbolTiming& timing,
                                        cplx w = cplx{1.0, 0.0});

/// PPM variant: two correlations per symbol, punctual and offset by
/// \p ppm_offset_samples.
std::vector<double> matched_filter_soft_ppm(const CplxWaveform& y, const SymbolTiming& timing,
                                            std::size_t ppm_offset_samples,
                                            cplx w = cplx{1.0, 0.0});

}  // namespace uwb::equalizer
