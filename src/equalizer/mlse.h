#pragma once
/// \file mlse.h
/// \brief The "Viterbi demodulator": maximum-likelihood sequence estimation
///        over the ISI channel ("The inter-symbol interference due to
///        multipath can be addressed with a Viterbi demodulator", Section 1;
///        programmable in gen-2, Section 3 -- the "States" input of Fig. 3).
///
/// The demodulator runs a Viterbi algorithm whose states are the last
/// (memory) BPSK symbols; branch metrics are Euclidean distances between
/// the observed soft sample and the expected superposition through the
/// symbol-spaced composite channel g[0..memory]. g is derived from the
/// (quantized) channel estimate and the pulse autocorrelation, so estimate
/// precision (E6) directly shapes MLSE fidelity.

#include <cstddef>

#include "channel/cir.h"
#include "common/types.h"
#include "common/waveform.h"
#include "equalizer/demodulator.h"

namespace uwb::equalizer {

/// MLSE configuration.
struct MlseConfig {
  int memory = 3;  ///< trellis memory in symbols (states = 2^memory)
};

/// Symbol-spaced composite channel g[l] seen by the symbol-rate sampler:
/// g[l] = sum_k h_k R_pp(l T - d_k), from the estimated taps \p est and the
/// pulse autocorrelation \p pulse_autocorr (peak at index \p autocorr_peak,
/// sampled at \p fs). Returns memory+1 taps (l = 0..memory).
std::vector<cplx> composite_symbol_channel(const channel::Cir& est,
                                           const RealVec& pulse_autocorr,
                                           std::size_t autocorr_peak, double fs,
                                           std::size_t sps, int memory);

/// BPSK MLSE (Viterbi demodulator).
class MlseDemodulator {
 public:
  /// \p g is the composite symbol-spaced channel (g[0] = main tap).
  MlseDemodulator(const MlseConfig& config, std::vector<cplx> g);

  [[nodiscard]] const MlseConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<cplx>& channel() const noexcept { return g_; }
  [[nodiscard]] int num_states() const noexcept { return 1 << config_.memory; }

  /// Demodulates one complex observation per symbol (symbol-rate samples of
  /// the matched-filtered waveform at the punctual timing). Returns hard
  /// bits (0 -> +1, 1 -> -1 convention matching the BPSK mapper).
  [[nodiscard]] BitVec demodulate(const CplxVec& observations) const;

  /// Convenience: extracts symbol-rate observations from a waveform first.
  [[nodiscard]] BitVec demodulate(const CplxWaveform& y, const SymbolTiming& timing) const;

 private:
  MlseConfig config_;
  std::vector<cplx> g_;
};

}  // namespace uwb::equalizer
