#include "equalizer/mlse.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace uwb::equalizer {

std::vector<cplx> composite_symbol_channel(const channel::Cir& est,
                                           const RealVec& pulse_autocorr,
                                           std::size_t autocorr_peak, double fs,
                                           std::size_t sps, int memory) {
  detail::require(!pulse_autocorr.empty(), "composite_symbol_channel: empty autocorrelation");
  detail::require(autocorr_peak < pulse_autocorr.size(),
                  "composite_symbol_channel: peak index out of range");
  detail::require(memory >= 0, "composite_symbol_channel: memory must be >= 0");
  detail::require(sps >= 1, "composite_symbol_channel: sps must be >= 1");

  const double peak_value = pulse_autocorr[autocorr_peak];
  detail::require(std::abs(peak_value) > 1e-300,
                  "composite_symbol_channel: degenerate autocorrelation");

  std::vector<cplx> g(static_cast<std::size_t>(memory) + 1, cplx{});
  for (int l = 0; l <= memory; ++l) {
    cplx acc{};
    for (const auto& tap : est.taps()) {
      // Sample R_pp at (l*T - d_k); R_pp index = peak + offset in samples.
      const double offset_samples =
          static_cast<double>(l) * static_cast<double>(sps) - tap.delay_s * fs;
      const auto idx = static_cast<std::ptrdiff_t>(std::llround(
                           static_cast<double>(autocorr_peak) + offset_samples));
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(pulse_autocorr.size())) {
        acc += tap.gain * (pulse_autocorr[static_cast<std::size_t>(idx)] / peak_value);
      }
    }
    g[static_cast<std::size_t>(l)] = acc;
  }
  return g;
}

MlseDemodulator::MlseDemodulator(const MlseConfig& config, std::vector<cplx> g)
    : config_(config), g_(std::move(g)) {
  detail::require(config.memory >= 1 && config.memory <= 12,
                  "MlseDemodulator: memory must be in [1,12]");
  detail::require(g_.size() == static_cast<std::size_t>(config.memory) + 1,
                  "MlseDemodulator: channel must have memory+1 taps");
}

BitVec MlseDemodulator::demodulate(const CplxVec& observations) const {
  const int ns = num_states();
  const std::size_t n = observations.size();
  constexpr double inf = std::numeric_limits<double>::infinity();

  // Precompute expected branch observations for every (state, input).
  // State bits: LSB is the most recent previous symbol; bit(l-1) = a_{m-l}.
  std::vector<cplx> expected(static_cast<std::size_t>(ns) * 2);
  for (int s = 0; s < ns; ++s) {
    for (int b = 0; b <= 1; ++b) {
      const double a0 = b ? -1.0 : 1.0;
      cplx e = g_[0] * a0;
      for (int l = 1; l <= config_.memory; ++l) {
        const double al = ((s >> (l - 1)) & 1) ? -1.0 : 1.0;
        e += g_[static_cast<std::size_t>(l)] * al;
      }
      expected[static_cast<std::size_t>(s) * 2 + static_cast<std::size_t>(b)] = e;
    }
  }

  std::vector<double> metric(static_cast<std::size_t>(ns), 0.0);
  std::vector<double> next_metric(static_cast<std::size_t>(ns));
  struct Survivor {
    int16_t prev_state;
    int8_t input;
  };
  std::vector<std::vector<Survivor>> survivors(
      n, std::vector<Survivor>(static_cast<std::size_t>(ns), {0, 0}));

  const int mask = ns - 1;
  for (std::size_t t = 0; t < n; ++t) {
    for (int s = 0; s < ns; ++s) next_metric[static_cast<std::size_t>(s)] = inf;
    for (int s = 0; s < ns; ++s) {
      const double pm = metric[static_cast<std::size_t>(s)];
      if (pm == inf) continue;
      for (int b = 0; b <= 1; ++b) {
        const cplx diff =
            observations[t] - expected[static_cast<std::size_t>(s) * 2 + static_cast<std::size_t>(b)];
        const double m = pm + std::norm(diff);
        const int ns_idx = ((s << 1) | b) & mask;
        if (m < next_metric[static_cast<std::size_t>(ns_idx)]) {
          next_metric[static_cast<std::size_t>(ns_idx)] = m;
          survivors[t][static_cast<std::size_t>(ns_idx)] = {static_cast<int16_t>(s),
                                                            static_cast<int8_t>(b)};
        }
      }
    }
    metric.swap(next_metric);
  }

  // Trace back from the best final state.
  int best_state = 0;
  double best_metric = inf;
  for (int s = 0; s < ns; ++s) {
    if (metric[static_cast<std::size_t>(s)] < best_metric) {
      best_metric = metric[static_cast<std::size_t>(s)];
      best_state = s;
    }
  }
  BitVec bits(n);
  int state = best_state;
  for (std::size_t t = n; t-- > 0;) {
    const Survivor& sv = survivors[t][static_cast<std::size_t>(state)];
    bits[t] = static_cast<uint8_t>(sv.input);
    state = sv.prev_state;
  }
  return bits;
}

BitVec MlseDemodulator::demodulate(const CplxWaveform& y, const SymbolTiming& timing) const {
  CplxVec obs(timing.num_symbols, cplx{});
  for (std::size_t m = 0; m < timing.num_symbols; ++m) {
    const std::size_t idx = timing.t0 + m * timing.sps;
    if (idx < y.size()) obs[m] = y[idx];
  }
  return demodulate(obs);
}

}  // namespace uwb::equalizer
