#include "io/spec_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace uwb::io {

namespace {

// ------------------------------------------------------------ enum names ----

std::string pulse_shape_name(pulse::PulseShape shape) {
  switch (shape) {
    case pulse::PulseShape::kGaussian: return "gaussian";
    case pulse::PulseShape::kGaussianMono: return "gaussian_mono";
    case pulse::PulseShape::kGaussianDoublet: return "gaussian_doublet";
    case pulse::PulseShape::kRootRaisedCos: return "rrc";
    case pulse::PulseShape::kRectangular: return "rect";
  }
  return "?";
}

pulse::PulseShape pulse_shape_from_name(const std::string& name) {
  if (name == "gaussian") return pulse::PulseShape::kGaussian;
  if (name == "gaussian_mono") return pulse::PulseShape::kGaussianMono;
  if (name == "gaussian_doublet") return pulse::PulseShape::kGaussianDoublet;
  if (name == "rrc") return pulse::PulseShape::kRootRaisedCos;
  if (name == "rect") return pulse::PulseShape::kRectangular;
  throw InvalidArgument("spec: unknown pulse shape '" + name + "'");
}

std::string modulation_name(phy::Modulation m) {
  switch (m) {
    case phy::Modulation::kBpsk: return "bpsk";
    case phy::Modulation::kOok: return "ook";
    case phy::Modulation::kPpm: return "ppm";
    case phy::Modulation::kPam4: return "pam4";
  }
  return "?";
}

phy::Modulation modulation_from_name(const std::string& name) {
  if (name == "bpsk") return phy::Modulation::kBpsk;
  if (name == "ook") return phy::Modulation::kOok;
  if (name == "ppm") return phy::Modulation::kPpm;
  if (name == "pam4") return phy::Modulation::kPam4;
  throw InvalidArgument("spec: unknown modulation '" + name + "'");
}

std::string finger_policy_name(equalizer::FingerPolicy policy) {
  switch (policy) {
    case equalizer::FingerPolicy::kAll: return "all";
    case equalizer::FingerPolicy::kSelective: return "selective";
    case equalizer::FingerPolicy::kPartial: return "partial";
  }
  return "?";
}

equalizer::FingerPolicy finger_policy_from_name(const std::string& name) {
  if (name == "all") return equalizer::FingerPolicy::kAll;
  if (name == "selective") return equalizer::FingerPolicy::kSelective;
  if (name == "partial") return equalizer::FingerPolicy::kPartial;
  throw InvalidArgument("spec: unknown finger policy '" + name + "'");
}

std::string generation_json_name(txrx::Generation gen) { return txrx::to_string(gen); }

std::string channel_mode_name(txrx::ChannelSource::Mode mode) {
  return mode == txrx::ChannelSource::Mode::kFresh ? "fresh" : "ensemble";
}

std::string trial_kind_name(txrx::TrialKind kind) {
  return kind == txrx::TrialKind::kPacket ? "packet" : "acquisition";
}

txrx::TrialKind trial_kind_from_name(const std::string& name) {
  if (name == "packet") return txrx::TrialKind::kPacket;
  if (name == "acquisition") return txrx::TrialKind::kAcquisition;
  throw InvalidArgument("spec: unknown trial kind '" + name + "'");
}

txrx::ChannelSource::Mode channel_mode_from_name(const std::string& name) {
  if (name == "fresh") return txrx::ChannelSource::Mode::kFresh;
  if (name == "ensemble") return txrx::ChannelSource::Mode::kEnsemble;
  throw InvalidArgument("spec: unknown channel_source mode '" + name + "'");
}

txrx::Generation generation_from_name(const std::string& name) {
  if (name == "gen1") return txrx::Generation::kGen1;
  if (name == "gen2") return txrx::Generation::kGen2;
  throw InvalidArgument("spec: unknown generation '" + name + "'");
}

[[noreturn]] void unknown_key(const char* what, const std::string& key) {
  throw InvalidArgument(std::string("spec: ") + what + ": unknown key '" + key + "'");
}

std::size_t as_size(const JsonValue& v) { return static_cast<std::size_t>(v.as_uint64()); }

// --------------------------------------------------------- nested structs ----

JsonValue to_json(const txrx::ChannelSource& source) {
  JsonValue out = JsonValue::object();
  out.set("mode", JsonValue::string(channel_mode_name(source.mode)));
  out.set("ensemble_seed", JsonValue::number(source.ensemble_seed));
  out.set("ensemble_count", JsonValue::number(static_cast<uint64_t>(source.ensemble_count)));
  return out;
}

txrx::ChannelSource channel_source_from_json(const JsonValue& v) {
  txrx::ChannelSource source;
  for (const auto& [key, val] : v.members()) {
    if (key == "mode") source.mode = channel_mode_from_name(val.as_string());
    else if (key == "ensemble_seed") source.ensemble_seed = val.as_uint64();
    else if (key == "ensemble_count") source.ensemble_count = as_size(val);
    else unknown_key("channel_source", key);
  }
  return source;
}

JsonValue to_json(const fec::ConvCode& code) {
  JsonValue out = JsonValue::object();
  out.set("constraint_length", JsonValue::number(code.constraint_length));
  JsonValue generators = JsonValue::array();
  for (uint32_t g : code.generators) {
    generators.push_back(JsonValue::number(static_cast<uint64_t>(g)));
  }
  out.set("generators", std::move(generators));
  return out;
}

fec::ConvCode conv_code_from_json(const JsonValue& v) {
  fec::ConvCode code;
  for (const auto& [key, val] : v.members()) {
    if (key == "constraint_length") {
      code.constraint_length = val.as_int();
    } else if (key == "generators") {
      code.generators.clear();
      for (const auto& g : val.items()) {
        code.generators.push_back(static_cast<uint32_t>(g.as_uint64()));
      }
    } else {
      unknown_key("fec", key);
    }
  }
  return code;
}

JsonValue to_json(const phy::PacketConfig& packet) {
  JsonValue out = JsonValue::object();
  out.set("preamble_msequence_degree", JsonValue::number(packet.preamble_msequence_degree));
  out.set("preamble_repetitions", JsonValue::number(packet.preamble_repetitions));
  out.set("sfd_length", JsonValue::number(packet.sfd_length));
  out.set("header_length_bits", JsonValue::number(packet.header_length_bits));
  return out;
}

phy::PacketConfig packet_config_from_json(const JsonValue& v) {
  phy::PacketConfig packet;
  for (const auto& [key, val] : v.members()) {
    if (key == "preamble_msequence_degree") packet.preamble_msequence_degree = val.as_int();
    else if (key == "preamble_repetitions") packet.preamble_repetitions = val.as_int();
    else if (key == "sfd_length") packet.sfd_length = val.as_int();
    else if (key == "header_length_bits") packet.header_length_bits = val.as_int();
    else unknown_key("packet", key);
  }
  return packet;
}

JsonValue to_json(const adc::InterleaveMismatch& mismatch) {
  JsonValue out = JsonValue::object();
  out.set("gain_sigma", JsonValue::number(mismatch.gain_sigma));
  out.set("offset_sigma", JsonValue::number(mismatch.offset_sigma));
  out.set("timing_skew_sigma_s", JsonValue::number(mismatch.timing_skew_sigma_s));
  return out;
}

adc::InterleaveMismatch interleave_from_json(const JsonValue& v) {
  adc::InterleaveMismatch mismatch;
  for (const auto& [key, val] : v.members()) {
    if (key == "gain_sigma") mismatch.gain_sigma = val.as_double();
    else if (key == "offset_sigma") mismatch.offset_sigma = val.as_double();
    else if (key == "timing_skew_sigma_s") mismatch.timing_skew_sigma_s = val.as_double();
    else unknown_key("interleave", key);
  }
  return mismatch;
}

JsonValue to_json(const adc::SarParams& sar) {
  JsonValue out = JsonValue::object();
  out.set("bits", JsonValue::number(sar.bits));
  out.set("full_scale", JsonValue::number(sar.full_scale));
  out.set("cap_mismatch_sigma", JsonValue::number(sar.cap_mismatch_sigma));
  out.set("comparator_noise", JsonValue::number(sar.comparator_noise));
  return out;
}

adc::SarParams sar_from_json(const JsonValue& v) {
  adc::SarParams sar;
  for (const auto& [key, val] : v.members()) {
    if (key == "bits") sar.bits = val.as_int();
    else if (key == "full_scale") sar.full_scale = val.as_double();
    else if (key == "cap_mismatch_sigma") sar.cap_mismatch_sigma = val.as_double();
    else if (key == "comparator_noise") sar.comparator_noise = val.as_double();
    else unknown_key("sar", key);
  }
  return sar;
}

JsonValue to_json(const pulse::PulseSpec& pulse) {
  JsonValue out = JsonValue::object();
  out.set("shape", JsonValue::string(pulse_shape_name(pulse.shape)));
  out.set("bandwidth_hz", JsonValue::number(pulse.bandwidth_hz));
  out.set("sample_rate_hz", JsonValue::number(pulse.sample_rate_hz));
  out.set("rrc_beta", JsonValue::number(pulse.rrc_beta));
  out.set("rrc_span_symbols", JsonValue::number(pulse.rrc_span_symbols));
  return out;
}

pulse::PulseSpec pulse_spec_from_json(const JsonValue& v) {
  pulse::PulseSpec pulse;
  for (const auto& [key, val] : v.members()) {
    if (key == "shape") pulse.shape = pulse_shape_from_name(val.as_string());
    else if (key == "bandwidth_hz") pulse.bandwidth_hz = val.as_double();
    else if (key == "sample_rate_hz") pulse.sample_rate_hz = val.as_double();
    else if (key == "rrc_beta") pulse.rrc_beta = val.as_double();
    else if (key == "rrc_span_symbols") pulse.rrc_span_symbols = val.as_int();
    else unknown_key("pulse", key);
  }
  return pulse;
}

JsonValue to_json(const rf::FrontEndParams& fe) {
  JsonValue out = JsonValue::object();
  JsonValue lna = JsonValue::object();
  lna.set("gain_db", JsonValue::number(fe.lna.gain_db));
  lna.set("noise_figure_db", JsonValue::number(fe.lna.noise_figure_db));
  lna.set("headroom_db", JsonValue::number(fe.lna.headroom_db));
  out.set("lna", std::move(lna));

  JsonValue iq = JsonValue::object();
  iq.set("gain_imbalance_db", JsonValue::number(fe.iq.gain_imbalance_db));
  iq.set("phase_imbalance_rad", JsonValue::number(fe.iq.phase_imbalance_rad));
  iq.set("dc_offset_i", JsonValue::number(fe.iq.dc_offset_i));
  iq.set("dc_offset_q", JsonValue::number(fe.iq.dc_offset_q));
  iq.set("lo_leakage_db", JsonValue::number(fe.iq.lo_leakage_db));
  out.set("iq", std::move(iq));

  JsonValue synth = JsonValue::object();
  synth.set("settle_time_s", JsonValue::number(fe.synth.settle_time_s));
  synth.set("phase_noise_rms_rad", JsonValue::number(fe.synth.phase_noise_rms_rad));
  synth.set("loop_bandwidth_hz", JsonValue::number(fe.synth.loop_bandwidth_hz));
  out.set("synth", std::move(synth));

  JsonValue agc = JsonValue::object();
  agc.set("target_rms", JsonValue::number(fe.agc.target_rms));
  agc.set("min_gain_db", JsonValue::number(fe.agc.min_gain_db));
  agc.set("max_gain_db", JsonValue::number(fe.agc.max_gain_db));
  agc.set("window", JsonValue::number(fe.agc.window));
  agc.set("step_db", JsonValue::number(fe.agc.step_db));
  out.set("agc", std::move(agc));

  out.set("baseband_cutoff_hz", JsonValue::number(fe.baseband_cutoff_hz));
  out.set("analog_fs", JsonValue::number(fe.analog_fs));
  out.set("anti_alias_taps", JsonValue::number(fe.anti_alias_taps));
  out.set("enable_agc", JsonValue::boolean(fe.enable_agc));
  return out;
}

rf::FrontEndParams front_end_from_json(const JsonValue& v) {
  rf::FrontEndParams fe;
  for (const auto& [key, val] : v.members()) {
    if (key == "lna") {
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "gain_db") fe.lna.gain_db = v2.as_double();
        else if (k2 == "noise_figure_db") fe.lna.noise_figure_db = v2.as_double();
        else if (k2 == "headroom_db") fe.lna.headroom_db = v2.as_double();
        else unknown_key("lna", k2);
      }
    } else if (key == "iq") {
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "gain_imbalance_db") fe.iq.gain_imbalance_db = v2.as_double();
        else if (k2 == "phase_imbalance_rad") fe.iq.phase_imbalance_rad = v2.as_double();
        else if (k2 == "dc_offset_i") fe.iq.dc_offset_i = v2.as_double();
        else if (k2 == "dc_offset_q") fe.iq.dc_offset_q = v2.as_double();
        else if (k2 == "lo_leakage_db") fe.iq.lo_leakage_db = v2.as_double();
        else unknown_key("iq", k2);
      }
    } else if (key == "synth") {
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "settle_time_s") fe.synth.settle_time_s = v2.as_double();
        else if (k2 == "phase_noise_rms_rad") fe.synth.phase_noise_rms_rad = v2.as_double();
        else if (k2 == "loop_bandwidth_hz") fe.synth.loop_bandwidth_hz = v2.as_double();
        else unknown_key("synth", k2);
      }
    } else if (key == "agc") {
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "target_rms") fe.agc.target_rms = v2.as_double();
        else if (k2 == "min_gain_db") fe.agc.min_gain_db = v2.as_double();
        else if (k2 == "max_gain_db") fe.agc.max_gain_db = v2.as_double();
        else if (k2 == "window") fe.agc.window = as_size(v2);
        else if (k2 == "step_db") fe.agc.step_db = v2.as_double();
        else unknown_key("agc", k2);
      }
    } else if (key == "baseband_cutoff_hz") {
      fe.baseband_cutoff_hz = val.as_double();
    } else if (key == "analog_fs") {
      fe.analog_fs = val.as_double();
    } else if (key == "anti_alias_taps") {
      fe.anti_alias_taps = as_size(val);
    } else if (key == "enable_agc") {
      fe.enable_agc = val.as_bool();
    } else {
      unknown_key("front_end", key);
    }
  }
  return fe;
}

JsonValue to_json(const estimation::ChannelEstimatorConfig& chanest) {
  JsonValue out = JsonValue::object();
  out.set("quantization_bits", JsonValue::number(chanest.quantization_bits));
  out.set("tap_threshold_db", JsonValue::number(chanest.tap_threshold_db));
  out.set("max_taps", JsonValue::number(chanest.max_taps));
  out.set("max_delay_samples", JsonValue::number(chanest.max_delay_samples));
  return out;
}

estimation::ChannelEstimatorConfig chanest_from_json(const JsonValue& v) {
  estimation::ChannelEstimatorConfig chanest;
  for (const auto& [key, val] : v.members()) {
    if (key == "quantization_bits") chanest.quantization_bits = val.as_int();
    else if (key == "tap_threshold_db") chanest.tap_threshold_db = val.as_double();
    else if (key == "max_taps") chanest.max_taps = as_size(val);
    else if (key == "max_delay_samples") chanest.max_delay_samples = as_size(val);
    else unknown_key("chanest", key);
  }
  return chanest;
}

}  // namespace

// ----------------------------------------------------------- TrialOptions ----

JsonValue to_json(const txrx::TrialOptions& options) {
  JsonValue out = JsonValue::object();
  out.set("kind", JsonValue::string(trial_kind_name(options.kind)));
  out.set("cm", JsonValue::number(options.cm));
  out.set("channel_source", to_json(options.channel_source));
  out.set("ebn0_db", JsonValue::number(options.ebn0_db));
  out.set("payload_bits", JsonValue::number(options.payload_bits));
  out.set("genie_timing", JsonValue::boolean(options.genie_timing));
  out.set("start_delay_max_samples", JsonValue::number(options.start_delay_max_samples));
  out.set("start_delay_max_frames", JsonValue::number(options.start_delay_max_frames));
  out.set("interferer", JsonValue::boolean(options.interferer));
  out.set("interferer_sir_db", JsonValue::number(options.interferer_sir_db));
  out.set("interferer_freq_hz", JsonValue::number(options.interferer_freq_hz));
  out.set("auto_notch", JsonValue::boolean(options.auto_notch));
  out.set("run_spectral_monitor", JsonValue::boolean(options.run_spectral_monitor));
  out.set("fec", options.fec.has_value() ? to_json(*options.fec) : JsonValue::null());
  out.set("acq_tol_samples", JsonValue::number(static_cast<uint64_t>(options.acq_tol_samples)));
  if (options.sampling.active()) {
    // Written only when active: plain Monte-Carlo specs keep their exact
    // historical byte layout.
    JsonValue sampling = JsonValue::object();
    sampling.set("mode", JsonValue::string(stats::to_string(options.sampling.mode)));
    sampling.set("scale", JsonValue::number(options.sampling.scale));
    sampling.set("max_scale", JsonValue::number(options.sampling.max_scale));
    sampling.set("levels", JsonValue::number(options.sampling.levels));
    out.set("sampling", std::move(sampling));
  }
  JsonValue record = JsonValue::array();
  for (const std::string& name : options.record_metrics) {
    record.push_back(JsonValue::string(name));
  }
  out.set("record_metrics", std::move(record));
  return out;
}

txrx::TrialOptions trial_options_from_json(const JsonValue& v, txrx::TrialOptions base) {
  txrx::TrialOptions options = std::move(base);
  for (const auto& [key, val] : v.members()) {
    if (key == "kind") options.kind = trial_kind_from_name(val.as_string());
    else if (key == "cm") options.cm = val.as_int();
    else if (key == "channel_source") options.channel_source = channel_source_from_json(val);
    else if (key == "ebn0_db") options.ebn0_db = val.as_double();
    else if (key == "payload_bits") options.payload_bits = as_size(val);
    else if (key == "genie_timing") options.genie_timing = val.as_bool();
    else if (key == "start_delay_max_samples") options.start_delay_max_samples = as_size(val);
    else if (key == "start_delay_max_frames") options.start_delay_max_frames = as_size(val);
    else if (key == "interferer") options.interferer = val.as_bool();
    else if (key == "interferer_sir_db") options.interferer_sir_db = val.as_double();
    else if (key == "interferer_freq_hz") options.interferer_freq_hz = val.as_double();
    else if (key == "auto_notch") options.auto_notch = val.as_bool();
    else if (key == "run_spectral_monitor") options.run_spectral_monitor = val.as_bool();
    else if (key == "fec") {
      if (val.is_null()) options.fec.reset();
      else options.fec = conv_code_from_json(val);
    } else if (key == "acq_tol_samples") {
      options.acq_tol_samples = as_size(val);
    } else if (key == "record_metrics") {
      options.record_metrics.clear();
      for (const auto& name : val.items()) {
        options.record_metrics.push_back(name.as_string());
      }
    } else if (key == "sampling") {
      stats::SamplingPolicy policy;
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "mode") policy.mode = stats::sampling_mode_from_name(v2.as_string());
        else if (k2 == "scale") policy.scale = v2.as_double();
        else if (k2 == "max_scale") policy.max_scale = v2.as_double();
        else if (k2 == "levels") policy.levels = v2.as_int();
        else unknown_key("sampling", k2);
      }
      stats::validate(policy);
      options.sampling = policy;
    } else {
      unknown_key("options", key);
    }
  }
  return options;
}

// ------------------------------------------------------------- Gen1Config ----

JsonValue to_json(const txrx::Gen1Config& config) {
  JsonValue out = JsonValue::object();
  out.set("analog_fs", JsonValue::number(config.analog_fs));
  out.set("adc_rate", JsonValue::number(config.adc_rate));
  out.set("frame_samples_adc", JsonValue::number(config.frame_samples_adc));
  out.set("pulses_per_bit", JsonValue::number(config.pulses_per_bit));
  out.set("pulse_sigma_s", JsonValue::number(config.pulse_sigma_s));
  out.set("adc_bits", JsonValue::number(config.adc_bits));
  out.set("adc_lanes", JsonValue::number(config.adc_lanes));
  out.set("comparator_offset_sigma", JsonValue::number(config.comparator_offset_sigma));
  out.set("interleave", to_json(config.interleave));
  out.set("aperture_jitter_rms_s", JsonValue::number(config.aperture_jitter_rms_s));
  out.set("spread_msequence_degree", JsonValue::number(config.spread_msequence_degree));
  out.set("preamble_pn_degree", JsonValue::number(config.preamble_pn_degree));
  out.set("preamble_repetitions", JsonValue::number(config.preamble_repetitions));
  out.set("packet", to_json(config.packet));
  out.set("acq_parallelism_stage1", JsonValue::number(config.acq_parallelism_stage1));
  out.set("acq_parallelism_stage2", JsonValue::number(config.acq_parallelism_stage2));
  out.set("acq_integration_frames", JsonValue::number(config.acq_integration_frames));
  out.set("acq_stage2_window_frames", JsonValue::number(config.acq_stage2_window_frames));
  out.set("acq_threshold", JsonValue::number(config.acq_threshold));
  return out;
}

txrx::Gen1Config gen1_config_from_json(const JsonValue& v) {
  txrx::Gen1Config config;
  for (const auto& [key, val] : v.members()) {
    if (key == "analog_fs") config.analog_fs = val.as_double();
    else if (key == "adc_rate") config.adc_rate = val.as_double();
    else if (key == "frame_samples_adc") config.frame_samples_adc = as_size(val);
    else if (key == "pulses_per_bit") config.pulses_per_bit = val.as_int();
    else if (key == "pulse_sigma_s") config.pulse_sigma_s = val.as_double();
    else if (key == "adc_bits") config.adc_bits = val.as_int();
    else if (key == "adc_lanes") config.adc_lanes = val.as_int();
    else if (key == "comparator_offset_sigma") config.comparator_offset_sigma = val.as_double();
    else if (key == "interleave") config.interleave = interleave_from_json(val);
    else if (key == "aperture_jitter_rms_s") config.aperture_jitter_rms_s = val.as_double();
    else if (key == "spread_msequence_degree") config.spread_msequence_degree = val.as_int();
    else if (key == "preamble_pn_degree") config.preamble_pn_degree = val.as_int();
    else if (key == "preamble_repetitions") config.preamble_repetitions = val.as_int();
    else if (key == "packet") config.packet = packet_config_from_json(val);
    else if (key == "acq_parallelism_stage1") config.acq_parallelism_stage1 = as_size(val);
    else if (key == "acq_parallelism_stage2") config.acq_parallelism_stage2 = as_size(val);
    else if (key == "acq_integration_frames") config.acq_integration_frames = val.as_int();
    else if (key == "acq_stage2_window_frames") config.acq_stage2_window_frames = val.as_int();
    else if (key == "acq_threshold") config.acq_threshold = val.as_double();
    else unknown_key("gen1 config", key);
  }
  return config;
}

// ------------------------------------------------------------- Gen2Config ----

JsonValue to_json(const txrx::Gen2Config& config) {
  JsonValue out = JsonValue::object();
  out.set("analog_fs", JsonValue::number(config.analog_fs));
  out.set("adc_rate", JsonValue::number(config.adc_rate));
  out.set("prf_hz", JsonValue::number(config.prf_hz));
  out.set("channel_index", JsonValue::number(config.channel_index));
  out.set("pulse", to_json(config.pulse));
  out.set("modulation", JsonValue::string(modulation_name(config.modulation)));
  out.set("front_end", to_json(config.front_end));
  out.set("sar", to_json(config.sar));
  out.set("aperture_jitter_rms_s", JsonValue::number(config.aperture_jitter_rms_s));
  out.set("packet", to_json(config.packet));
  out.set("chanest", to_json(config.chanest));
  JsonValue rake = JsonValue::object();
  rake.set("policy", JsonValue::string(finger_policy_name(config.rake.policy)));
  rake.set("num_fingers", JsonValue::number(config.rake.num_fingers));
  out.set("rake", std::move(rake));
  JsonValue mlse = JsonValue::object();
  mlse.set("memory", JsonValue::number(config.mlse.memory));
  out.set("mlse", std::move(mlse));
  out.set("use_rake", JsonValue::boolean(config.use_rake));
  out.set("use_mlse", JsonValue::boolean(config.use_mlse));
  return out;
}

txrx::Gen2Config gen2_config_from_json(const JsonValue& v) {
  txrx::Gen2Config config;
  for (const auto& [key, val] : v.members()) {
    if (key == "analog_fs") config.analog_fs = val.as_double();
    else if (key == "adc_rate") config.adc_rate = val.as_double();
    else if (key == "prf_hz") config.prf_hz = val.as_double();
    else if (key == "channel_index") config.channel_index = val.as_int();
    else if (key == "pulse") config.pulse = pulse_spec_from_json(val);
    else if (key == "modulation") config.modulation = modulation_from_name(val.as_string());
    else if (key == "front_end") config.front_end = front_end_from_json(val);
    else if (key == "sar") config.sar = sar_from_json(val);
    else if (key == "aperture_jitter_rms_s") config.aperture_jitter_rms_s = val.as_double();
    else if (key == "packet") config.packet = packet_config_from_json(val);
    else if (key == "chanest") config.chanest = chanest_from_json(val);
    else if (key == "rake") {
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "policy") config.rake.policy = finger_policy_from_name(v2.as_string());
        else if (k2 == "num_fingers") config.rake.num_fingers = as_size(v2);
        else unknown_key("rake", k2);
      }
    } else if (key == "mlse") {
      for (const auto& [k2, v2] : val.members()) {
        if (k2 == "memory") config.mlse.memory = v2.as_int();
        else unknown_key("mlse", k2);
      }
    } else if (key == "use_rake") {
      config.use_rake = val.as_bool();
    } else if (key == "use_mlse") {
      config.use_mlse = val.as_bool();
    } else {
      unknown_key("gen2 config", key);
    }
  }
  return config;
}

// --------------------------------------------------------------- LinkSpec ----

JsonValue to_json(const txrx::LinkSpec& spec) {
  JsonValue out = JsonValue::object();
  out.set("generation", JsonValue::string(generation_json_name(spec.generation())));
  out.set("config", spec.generation() == txrx::Generation::kGen1 ? to_json(spec.gen1())
                                                                 : to_json(spec.gen2()));
  out.set("options", to_json(spec.options));
  return out;
}

txrx::LinkSpec link_spec_from_json(const JsonValue& v) {
  const txrx::Generation gen = generation_from_name(v.at("generation").as_string());
  txrx::LinkSpec spec;
  if (gen == txrx::Generation::kGen1) {
    spec.config = txrx::Gen1Config{};
  }
  spec.options = txrx::default_options(gen);
  for (const auto& [key, val] : v.members()) {
    if (key == "generation") {
      continue;  // handled above
    } else if (key == "config") {
      if (gen == txrx::Generation::kGen1) spec.config = gen1_config_from_json(val);
      else spec.config = gen2_config_from_json(val);
    } else if (key == "options") {
      spec.options = trial_options_from_json(val, txrx::default_options(gen));
    } else {
      unknown_key("link", key);
    }
  }
  // Strict like the unknown-key checks: a typo'd metric name must fail at
  // load time, not silently record empty columns. (emits_metric also
  // rejects a trial kind the generation does not support.)
  for (const std::string& name : spec.options.record_metrics) {
    if (!txrx::emits_metric(gen, spec.options.kind, name)) {
      throw InvalidArgument("spec: options: unknown metric '" + name +
                            "' in record_metrics");
    }
  }
  return spec;
}

// ---------------------------------------------------------------- BerStop ----

JsonValue to_json(const sim::BerStop& stop) {
  JsonValue out = JsonValue::object();
  out.set("min_errors", JsonValue::number(stop.min_errors));
  out.set("max_bits", JsonValue::number(stop.max_bits));
  out.set("max_trials", JsonValue::number(stop.max_trials));
  if (!stop.metric.empty()) out.set("metric", JsonValue::string(stop.metric));
  if (stop.target_rel_ci_width > 0.0) {
    out.set("target_rel_ci_width", JsonValue::number(stop.target_rel_ci_width));
  }
  return out;
}

sim::BerStop ber_stop_from_json(const JsonValue& v) {
  sim::BerStop stop;
  for (const auto& [key, val] : v.members()) {
    if (key == "min_errors") stop.min_errors = as_size(val);
    else if (key == "max_bits") stop.max_bits = as_size(val);
    else if (key == "max_trials") stop.max_trials = as_size(val);
    else if (key == "metric") stop.metric = val.as_string();
    else if (key == "target_rel_ci_width") stop.target_rel_ci_width = val.as_double();
    else unknown_key("stop", key);
  }
  return stop;
}

// -------------------------------------------------------------- PointSpec ----

JsonValue to_json(const engine::PointSpec& point) {
  JsonValue out = JsonValue::object();
  out.set("label", JsonValue::string(point.label));
  JsonValue tags = JsonValue::array();
  for (const auto& [key, value] : point.tags) {
    JsonValue pair = JsonValue::array();
    pair.push_back(JsonValue::string(key));
    pair.push_back(JsonValue::string(value));
    tags.push_back(std::move(pair));
  }
  out.set("tags", std::move(tags));
  out.set("link", to_json(point.link));
  return out;
}

engine::PointSpec point_spec_from_json(const JsonValue& v) {
  engine::PointSpec point;
  bool have_link = false;
  for (const auto& [key, val] : v.members()) {
    if (key == "label") {
      point.label = val.as_string();
    } else if (key == "tags") {
      for (const auto& pair : val.items()) {
        detail::require(pair.items().size() == 2, "spec: a tag must be a [key, value] pair");
        point.tags.emplace_back(pair.items()[0].as_string(), pair.items()[1].as_string());
      }
    } else if (key == "link") {
      point.link = link_spec_from_json(val);
      have_link = true;
    } else {
      unknown_key("point", key);
    }
  }
  detail::require(have_link, "spec: point is missing its 'link'");
  return point;
}

// ------------------------------------------------------------ ScenarioSpec ----

JsonValue to_json(const engine::ScenarioSpec& scenario) {
  JsonValue out = JsonValue::object();
  out.set("name", JsonValue::string(scenario.name));
  out.set("description", JsonValue::string(scenario.description));
  JsonValue points = JsonValue::array();
  for (const auto& point : scenario.points) {
    points.push_back(to_json(point));
  }
  out.set("points", std::move(points));
  return out;
}

engine::ScenarioSpec scenario_from_json(const JsonValue& v) {
  engine::ScenarioSpec scenario;
  for (const auto& [key, val] : v.members()) {
    if (key == "name") {
      scenario.name = val.as_string();
    } else if (key == "description") {
      scenario.description = val.as_string();
    } else if (key == "points") {
      for (const auto& point : val.items()) {
        scenario.points.push_back(point_spec_from_json(point));
      }
    } else {
      unknown_key("scenario", key);
    }
  }
  detail::require(!scenario.name.empty(), "spec: scenario needs a non-empty 'name'");
  return scenario;
}

// ------------------------------------------------------------------ files ----

std::string scenario_to_json_text(const engine::ScenarioSpec& scenario) {
  return dump_json_pretty(to_json(scenario));
}

engine::ScenarioSpec scenario_from_json_text(const std::string& text) {
  return scenario_from_json(parse_json(text));
}

void save_scenario_file(const engine::ScenarioSpec& scenario, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), "spec: cannot open '" + path + "' for writing");
  out << scenario_to_json_text(scenario);
  detail::require(out.good(), "spec: write to '" + path + "' failed");
}

engine::ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  detail::require(in.good(), "spec: cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scenario_from_json_text(buffer.str());
}

}  // namespace uwb::io
