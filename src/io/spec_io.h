#pragma once
/// \file spec_io.h
/// \brief JSON (de)serialization for the declarative simulation specs:
///        txrx::TrialOptions, the full Gen1Config/Gen2Config trees,
///        txrx::LinkSpec, sim::BerStop, and engine::ScenarioSpec.
///
/// Every configuration field is serialized (doubles in shortest
/// round-trip form), so a spec written to a file and loaded back drives a
/// byte-identical sweep under the same seed -- the contract behind
/// `uwb_sweep --dump-scenario` / `uwb_sweep --file`. Readers are strict:
/// an unknown key throws InvalidArgument (typos fail loudly), a missing
/// key keeps the field's C++ default (hand-written files stay terse).

#include <string>

#include "engine/scenario_registry.h"
#include "io/json.h"
#include "sim/ber_simulator.h"
#include "txrx/link.h"

namespace uwb::io {

// --------------------------------------------------------------- to JSON ----

[[nodiscard]] JsonValue to_json(const txrx::TrialOptions& options);
[[nodiscard]] JsonValue to_json(const txrx::Gen1Config& config);
[[nodiscard]] JsonValue to_json(const txrx::Gen2Config& config);
[[nodiscard]] JsonValue to_json(const txrx::LinkSpec& spec);
[[nodiscard]] JsonValue to_json(const sim::BerStop& stop);
[[nodiscard]] JsonValue to_json(const engine::PointSpec& point);
[[nodiscard]] JsonValue to_json(const engine::ScenarioSpec& scenario);

// ------------------------------------------------------------- from JSON ----

/// \p base supplies the defaults for keys the document omits (pass
/// txrx::default_options(gen) to honor per-generation defaults, as
/// link_spec_from_json does).
[[nodiscard]] txrx::TrialOptions trial_options_from_json(const JsonValue& v,
                                                         txrx::TrialOptions base = {});
[[nodiscard]] txrx::Gen1Config gen1_config_from_json(const JsonValue& v);
[[nodiscard]] txrx::Gen2Config gen2_config_from_json(const JsonValue& v);
[[nodiscard]] txrx::LinkSpec link_spec_from_json(const JsonValue& v);
[[nodiscard]] sim::BerStop ber_stop_from_json(const JsonValue& v);
[[nodiscard]] engine::PointSpec point_spec_from_json(const JsonValue& v);
[[nodiscard]] engine::ScenarioSpec scenario_from_json(const JsonValue& v);

// ----------------------------------------------------------------- files ----

/// Pretty-printed scenario document.
[[nodiscard]] std::string scenario_to_json_text(const engine::ScenarioSpec& scenario);

/// Parses a scenario document from text.
[[nodiscard]] engine::ScenarioSpec scenario_from_json_text(const std::string& text);

/// Writes \p scenario to \p path (parent directories are created).
void save_scenario_file(const engine::ScenarioSpec& scenario, const std::string& path);

/// Loads a scenario document from \p path.
[[nodiscard]] engine::ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace uwb::io
