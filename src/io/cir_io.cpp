#include "io/cir_io.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace uwb::io {

namespace {

// 8-byte magic; the last byte is the format version.
constexpr char kMagic[8] = {'U', 'W', 'B', 'C', 'I', 'R', '\0',
                            static_cast<char>(kCirFormatVersion)};

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<uint64_t>(v)); }

/// Cursor over the loaded bytes; every read is bounds-checked so a
/// truncated file throws instead of reading garbage.
struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;
  const std::string& path;

  uint64_t u64() {
    detail::require(pos + 8 <= bytes.size(), "cir store: '" + path + "' is truncated");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
    }
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
};

std::string slurp_file(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  detail::require(in.good(), std::string(what) + ": cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes, const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), std::string(what) + ": cannot open '" + path + "' for writing");
  out << bytes;
  detail::require(out.good(), std::string(what) + ": write to '" + path + "' failed");
}

std::string stem_path(const std::string& dir, const channel::SvParams& params,
                      const engine::ChannelKey& key) {
  return (std::filesystem::path(dir) / ensemble_stem(params, key)).string();
}

JsonValue sv_params_to_json(const channel::SvParams& p) {
  JsonValue out = JsonValue::object();
  out.set("name", JsonValue::string(p.name));
  out.set("cluster_rate_per_s", JsonValue::number(p.cluster_rate_per_s));
  out.set("ray_rate_per_s", JsonValue::number(p.ray_rate_per_s));
  out.set("cluster_decay_s", JsonValue::number(p.cluster_decay_s));
  out.set("ray_decay_s", JsonValue::number(p.ray_decay_s));
  out.set("cluster_fading_db", JsonValue::number(p.cluster_fading_db));
  out.set("ray_fading_db", JsonValue::number(p.ray_fading_db));
  out.set("shadowing_db", JsonValue::number(p.shadowing_db));
  out.set("max_excess_delay_s", JsonValue::number(p.max_excess_delay_s));
  out.set("complex_phases", JsonValue::boolean(p.complex_phases));
  return out;
}

}  // namespace

std::string default_channel_store_dir() { return "bench/results/channels"; }

std::string ensemble_stem(const channel::SvParams& params, const engine::ChannelKey& key) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s_%016llx_s%llu_n%llu", params.name.c_str(),
                static_cast<unsigned long long>(key.fingerprint),
                static_cast<unsigned long long>(key.seed),
                static_cast<unsigned long long>(key.count));
  return buf;
}

bool ensemble_exists(const std::string& dir, const channel::SvParams& params,
                     const engine::ChannelKey& key) {
  const std::string stem = stem_path(dir, params, key);
  std::error_code ec;
  return std::filesystem::exists(stem + ".cir", ec) &&
         std::filesystem::exists(stem + ".json", ec);
}

std::string save_ensemble(const engine::ChannelEnsemble& ensemble, const std::string& dir) {
  detail::require(!ensemble.realizations.empty(), "cir store: empty ensemble");
  detail::require(ensemble.realizations.size() == ensemble.key.count,
                  "cir store: ensemble count does not match its key");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  std::string bytes;
  bytes.append(kMagic, sizeof kMagic);
  put_u64(bytes, ensemble.key.fingerprint);
  put_u64(bytes, ensemble.key.seed);
  put_u64(bytes, ensemble.key.count);
  for (const channel::Cir& cir : ensemble.realizations) {
    put_u64(bytes, cir.num_taps());
    for (const channel::CirTap& tap : cir.taps()) {
      put_f64(bytes, tap.delay_s);
      put_f64(bytes, tap.gain.real());
      put_f64(bytes, tap.gain.imag());
    }
  }

  const std::string stem = stem_path(dir, ensemble.params, ensemble.key);
  write_file(stem + ".cir", bytes, "cir store");
  write_file(stem + ".json", dump_json_pretty(ensemble_sidecar_json(ensemble)) + "\n",
             "cir store");
  return stem;
}

engine::ChannelEnsemble load_ensemble(const std::string& dir, const channel::SvParams& params,
                                      const engine::ChannelKey& key) {
  const std::string stem = stem_path(dir, params, key);

  // Sidecar first: it names the parameter set the binary was generated
  // from, and a fingerprint mismatch (edited sidecar, stale store after a
  // scheme change) must fail before any realization is trusted.
  const JsonValue sidecar = parse_json(slurp_file(stem + ".json", "cir store"));
  channel::SvParams stored_params;
  uint64_t stored_fingerprint = 0, stored_seed = 0, stored_count = 0;
  for (const auto& [k, v] : sidecar.members()) {
    if (k == "format") {
      detail::require(v.as_string() == "uwb-cir-ensemble",
                      "cir store: '" + stem + ".json' is not an ensemble sidecar");
    } else if (k == "version") {
      detail::require(v.as_int() == kCirFormatVersion,
                      "cir store: unsupported format version in '" + stem + ".json'");
    } else if (k == "fingerprint") {
      // Strict hex parse: a corrupt sidecar must throw InvalidArgument,
      // never leak std::invalid_argument/out_of_range past the io layer.
      const std::string& text = v.as_string();
      errno = 0;
      char* end = nullptr;
      stored_fingerprint = std::strtoull(text.c_str(), &end, 16);
      detail::require(!text.empty() && end == text.c_str() + text.size() && errno != ERANGE,
                      "cir store: bad fingerprint '" + text + "' in '" + stem + ".json'");
    } else if (k == "seed") {
      stored_seed = v.as_uint64();
    } else if (k == "count") {
      stored_count = v.as_uint64();
    } else if (k == "realizations_file") {
      (void)v.as_string();  // informational; the stem is authoritative
    } else if (k == "sv_params") {
      stored_params = sv_params_from_json(v);
    } else {
      throw InvalidArgument("cir store: sidecar: unknown key '" + k + "'");
    }
  }
  detail::require(stored_fingerprint == key.fingerprint && stored_seed == key.seed &&
                      stored_count == key.count,
                  "cir store: sidecar key mismatch in '" + stem + ".json'");
  detail::require(engine::sv_fingerprint(stored_params) == key.fingerprint,
                  "cir store: sidecar sv_params do not match the requested fingerprint ('" +
                      stem + ".json')");

  const std::string bytes = slurp_file(stem + ".cir", "cir store");
  detail::require(bytes.size() >= sizeof kMagic &&
                      bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) == 0,
                  "cir store: bad magic/version in '" + stem + ".cir'");
  Reader r{bytes, sizeof kMagic, stem};
  engine::ChannelEnsemble ensemble;
  ensemble.key = engine::ChannelKey{r.u64(), r.u64(), r.u64()};
  ensemble.params = stored_params;
  detail::require(ensemble.key == key, "cir store: header key mismatch in '" + stem + ".cir'");
  ensemble.realizations.reserve(key.count);
  for (std::size_t i = 0; i < key.count; ++i) {
    const uint64_t num_taps = r.u64();
    // Sanity before reserve: a corrupt count must fail as "truncated", not
    // as a multi-GB allocation attempt (24 bytes per tap).
    detail::require(num_taps <= (bytes.size() - r.pos) / 24,
                    "cir store: '" + stem + ".cir' is truncated");
    std::vector<channel::CirTap> taps;
    taps.reserve(num_taps);
    for (uint64_t t = 0; t < num_taps; ++t) {
      const double delay = r.f64();
      const double re = r.f64();
      const double im = r.f64();
      taps.push_back(channel::CirTap{delay, cplx{re, im}});
    }
    ensemble.realizations.emplace_back(std::move(taps));
  }
  detail::require(r.pos == bytes.size(),
                  "cir store: trailing bytes in '" + stem + ".cir'");
  return ensemble;
}

JsonValue ensemble_sidecar_json(const engine::ChannelEnsemble& ensemble) {
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(ensemble.key.fingerprint));
  JsonValue out = JsonValue::object();
  out.set("format", JsonValue::string("uwb-cir-ensemble"));
  out.set("version", JsonValue::number(kCirFormatVersion));
  out.set("fingerprint", JsonValue::string(fingerprint));
  out.set("seed", JsonValue::number(ensemble.key.seed));
  out.set("count", JsonValue::number(static_cast<uint64_t>(ensemble.key.count)));
  out.set("realizations_file",
          JsonValue::string(ensemble_stem(ensemble.params, ensemble.key) + ".cir"));
  out.set("sv_params", sv_params_to_json(ensemble.params));
  return out;
}

channel::SvParams sv_params_from_json(const JsonValue& v) {
  channel::SvParams p;
  for (const auto& [key, val] : v.members()) {
    if (key == "name") p.name = val.as_string();
    else if (key == "cluster_rate_per_s") p.cluster_rate_per_s = val.as_double();
    else if (key == "ray_rate_per_s") p.ray_rate_per_s = val.as_double();
    else if (key == "cluster_decay_s") p.cluster_decay_s = val.as_double();
    else if (key == "ray_decay_s") p.ray_decay_s = val.as_double();
    else if (key == "cluster_fading_db") p.cluster_fading_db = val.as_double();
    else if (key == "ray_fading_db") p.ray_fading_db = val.as_double();
    else if (key == "shadowing_db") p.shadowing_db = val.as_double();
    else if (key == "max_excess_delay_s") p.max_excess_delay_s = val.as_double();
    else if (key == "complex_phases") p.complex_phases = val.as_bool();
    else throw InvalidArgument("cir store: sv_params: unknown key '" + key + "'");
  }
  return p;
}

}  // namespace uwb::io
