#include "io/result_io.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "io/json.h"

namespace uwb::io {

std::string write_result_json(const ResultDoc& doc) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"scenario\": \"" << json_escape(doc.scenario) << "\",\n";
  out << "  \"seed\": " << doc.seed << ",\n";
  out << "  \"stop\": {\"min_errors\": " << doc.stop.min_errors
      << ", \"max_bits\": " << doc.stop.max_bits
      << ", \"max_trials\": " << doc.stop.max_trials;
  // Serialized only when set: BER-only documents keep their historical
  // byte layout (and old files parse as metric = "").
  if (!doc.stop.metric.empty()) {
    out << ", \"metric\": \"" << json_escape(doc.stop.metric) << "\"";
  }
  if (doc.stop.target_rel_ci_width > 0.0) {
    out << ", \"target_rel_ci_width\": " << format_double(doc.stop.target_rel_ci_width);
  }
  out << "},\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < doc.points.size(); ++i) {
    const ResultPoint& point = doc.points[i];
    out << "    {\"index\": " << point.index << ", \"label\": \""
        << json_escape(point.label) << "\", \"tags\": {";
    for (std::size_t t = 0; t < point.tags.size(); ++t) {
      if (t > 0) out << ", ";
      out << "\"" << json_escape(point.tags[t].first) << "\": \""
          << json_escape(point.tags[t].second) << "\"";
    }
    out << "}, \"ber\": " << point.ber << ", \"ci95\": " << point.ci95
        << ", \"errors\": " << point.errors << ", \"bits\": " << point.bits
        << ", \"trials\": " << point.trials;
    if (!point.ci_lo.empty()) {
      out << ", \"ci_lo\": " << point.ci_lo << ", \"ci_hi\": " << point.ci_hi
          << ", \"ci_method\": \"" << json_escape(point.ci_method) << "\"";
    }
    if (point.weighted) {
      out << ", \"weighted\": true, \"ess\": " << point.ess;
    }
    if (!point.metrics.empty()) {
      out << ",\n     \"metrics\": {";
      for (std::size_t m = 0; m < point.metrics.size(); ++m) {
        const ResultMetric& metric = point.metrics[m];
        if (m > 0) out << ", ";
        out << "\"" << json_escape(metric.name) << "\": {\"count\": " << metric.count
            << ", \"mean\": " << metric.mean << ", \"variance\": " << metric.variance
            << "}";
      }
      out << "}";
    }
    out << "}";
    out << (i + 1 < doc.points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

ResultDoc parse_result_json(const std::string& text) {
  const JsonValue root = parse_json(text);
  ResultDoc doc;
  doc.scenario = root.at("scenario").as_string();
  doc.seed = root.at("seed").as_uint64();
  const JsonValue& stop = root.at("stop");
  doc.stop.min_errors = static_cast<std::size_t>(stop.at("min_errors").as_uint64());
  doc.stop.max_bits = static_cast<std::size_t>(stop.at("max_bits").as_uint64());
  doc.stop.max_trials = static_cast<std::size_t>(stop.at("max_trials").as_uint64());
  if (const JsonValue* metric = stop.find("metric")) {
    doc.stop.metric = metric->as_string();
  }
  if (const JsonValue* width = stop.find("target_rel_ci_width")) {
    doc.stop.target_rel_ci_width = width->as_double();
  }
  for (const JsonValue& p : root.at("points").items()) {
    ResultPoint point;
    point.index = p.at("index").as_uint64();
    point.label = p.at("label").as_string();
    for (const auto& [key, value] : p.at("tags").members()) {
      point.tags.emplace_back(key, value.as_string());
    }
    point.ber = p.at("ber").number_text();
    point.ci95 = p.at("ci95").number_text();
    point.errors = p.at("errors").as_uint64();
    point.bits = p.at("bits").as_uint64();
    point.trials = p.at("trials").as_uint64();
    if (const JsonValue* lo = p.find("ci_lo")) point.ci_lo = lo->number_text();
    if (const JsonValue* hi = p.find("ci_hi")) point.ci_hi = hi->number_text();
    if (const JsonValue* method = p.find("ci_method")) point.ci_method = method->as_string();
    if (const JsonValue* weighted = p.find("weighted")) point.weighted = weighted->as_bool();
    if (const JsonValue* ess = p.find("ess")) point.ess = ess->number_text();
    if (const JsonValue* metrics = p.find("metrics")) {
      for (const auto& [name, stats] : metrics->members()) {
        ResultMetric metric;
        metric.name = name;
        metric.count = stats.at("count").as_uint64();
        metric.mean = stats.at("mean").number_text();
        metric.variance = stats.at("variance").number_text();
        point.metrics.push_back(std::move(metric));
      }
    }
    doc.points.push_back(std::move(point));
  }
  return doc;
}

ResultDoc merge_results(const std::vector<ResultDoc>& shards, bool allow_partial) {
  detail::require(!shards.empty(), "merge: no result documents given");
  ResultDoc merged;
  merged.scenario = shards.front().scenario;
  merged.seed = shards.front().seed;
  merged.stop = shards.front().stop;
  for (const ResultDoc& shard : shards) {
    detail::require(shard.scenario == merged.scenario,
                    "merge: scenario mismatch ('" + shard.scenario + "' vs '" +
                        merged.scenario + "')");
    detail::require(shard.seed == merged.seed, "merge: seed mismatch");
    detail::require(shard.stop == merged.stop, "merge: stopping-rule mismatch");
    merged.points.insert(merged.points.end(), shard.points.begin(), shard.points.end());
  }
  std::stable_sort(merged.points.begin(), merged.points.end(),
                   [](const ResultPoint& a, const ResultPoint& b) {
                     return a.index < b.index;
                   });
  for (std::size_t i = 1; i < merged.points.size(); ++i) {
    detail::require(merged.points[i].index != merged.points[i - 1].index,
                    "merge: duplicate point index " +
                        std::to_string(merged.points[i].index));
  }
  if (!allow_partial) {
    // Plan indices are dense (0..num_points-1), so any hole in the sorted
    // indices means a shard is missing from the merge. (A missing tail is
    // indistinguishable from a shorter plan here; the farm closes that gap
    // by checking the merged count against the plan's point count.)
    for (std::size_t i = 0; i < merged.points.size(); ++i) {
      detail::require(
          merged.points[i].index == i,
          "merge: coverage gap -- point index " + std::to_string(i) +
              " is missing (got " + std::to_string(merged.points[i].index) +
              "); pass every shard of the sweep, or merge with "
              "--allow-partial to accept an explicitly incomplete document");
    }
  }
  return merged;
}

}  // namespace uwb::io
