#include "io/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace uwb::io {

// ------------------------------------------------------------ formatting ----

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    throw InvalidArgument("json: non-finite numbers are not representable");
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest form that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------------------- JsonValue ----

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) { return number_literal(format_double(v)); }

JsonValue JsonValue::number(uint64_t v) { return number_literal(std::to_string(v)); }

JsonValue JsonValue::number(int v) { return number_literal(std::to_string(v)); }

JsonValue JsonValue::number_literal(std::string literal) {
  detail::require(!literal.empty(), "json: empty number literal");
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.text_ = std::move(literal);
  return out;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.text_ = std::move(v);
  return out;
}

JsonValue JsonValue::array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

void require_kind(const JsonValue& v, JsonValue::Kind kind, const char* what) {
  if (v.kind() != kind) {
    throw InvalidArgument(std::string("json: expected ") + what + ", found " +
                          kind_name(v.kind()));
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  require_kind(*this, Kind::kBool, "bool");
  return bool_;
}

double JsonValue::as_double() const {
  require_kind(*this, Kind::kNumber, "number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text_.c_str(), &end);
  detail::require(end == text_.c_str() + text_.size() && errno != ERANGE,
                  "json: bad number literal '" + text_ + "'");
  return v;
}

uint64_t JsonValue::as_uint64() const {
  require_kind(*this, Kind::kNumber, "number");
  detail::require(!text_.empty() && text_[0] != '-',
                  "json: expected unsigned integer, found '" + text_ + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text_.c_str(), &end, 10);
  detail::require(end == text_.c_str() + text_.size() && errno != ERANGE,
                  "json: expected unsigned integer, found '" + text_ + "'");
  return static_cast<uint64_t>(v);
}

int64_t JsonValue::as_int64() const {
  require_kind(*this, Kind::kNumber, "number");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text_.c_str(), &end, 10);
  detail::require(end == text_.c_str() + text_.size() && errno != ERANGE,
                  "json: expected integer, found '" + text_ + "'");
  return static_cast<int64_t>(v);
}

int JsonValue::as_int() const {
  const int64_t v = as_int64();
  detail::require(v >= INT32_MIN && v <= INT32_MAX,
                  "json: integer out of int range: '" + text_ + "'");
  return static_cast<int>(v);
}

const std::string& JsonValue::as_string() const {
  require_kind(*this, Kind::kString, "string");
  return text_;
}

const std::string& JsonValue::number_text() const {
  require_kind(*this, Kind::kNumber, "number");
  return text_;
}

const JsonValue::Array& JsonValue::items() const {
  require_kind(*this, Kind::kArray, "array");
  return items_;
}

const JsonValue::Object& JsonValue::members() const {
  require_kind(*this, Kind::kObject, "object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  require_kind(*this, Kind::kObject, "object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  detail::require(v != nullptr, "json: missing key '" + key + "'");
  return *v;
}

void JsonValue::push_back(JsonValue v) {
  require_kind(*this, Kind::kArray, "array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  require_kind(*this, Kind::kObject, "object");
  detail::require(find(key) == nullptr, "json: duplicate key '" + key + "'");
  members_.emplace_back(std::move(key), std::move(v));
}

// ---------------------------------------------------------------- parser ----

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " + std::to_string(pos_) + ": " +
                          what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      JsonValue value = parse_value(depth + 1);
      if (out.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      out.set(std::move(key), std::move(value));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    // UTF-8 encode (surrogate pairs are not needed by this library's
    // documents; a lone surrogate is rejected).
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes unsupported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number: missing fraction digits");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number: missing exponent digits");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return JsonValue::number_literal(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

// ---------------------------------------------------------------- writer ----

namespace {

void write_compact(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; return;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case JsonValue::Kind::kNumber: out += v.number_text(); return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out += ", ";
        first = false;
        write_compact(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out += ", ";
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\": ";
        write_compact(value, out);
      }
      out += '}';
      return;
    }
  }
}

bool is_scalar(const JsonValue& v) {
  return v.kind() != JsonValue::Kind::kArray && v.kind() != JsonValue::Kind::kObject;
}

bool all_scalar(const JsonValue::Array& items) {
  for (const auto& item : items) {
    if (!is_scalar(item)) return false;
  }
  return true;
}

void write_pretty(const JsonValue& v, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kArray: {
      if (v.items().empty() || all_scalar(v.items())) {
        write_compact(v, out);
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        out += pad_in;
        write_pretty(v.items()[i], out, indent + 1);
        if (i + 1 < v.items().size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      if (v.members().empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.members().size(); ++i) {
        const auto& [key, value] = v.members()[i];
        out += pad_in;
        out += '"';
        out += json_escape(key);
        out += "\": ";
        write_pretty(value, out, indent + 1);
        if (i + 1 < v.members().size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      return;
    }
    default: write_compact(v, out); return;
  }
}

}  // namespace

std::string dump_json(const JsonValue& value) {
  std::string out;
  write_compact(value, out);
  return out;
}

std::string dump_json_pretty(const JsonValue& value) {
  std::string out;
  write_pretty(value, out, 0);
  out += '\n';
  return out;
}

}  // namespace uwb::io
