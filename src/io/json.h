#pragma once
/// \file json.h
/// \brief Minimal hand-rolled JSON: an ordered document model, a strict
///        recursive-descent parser, and a deterministic writer. No external
///        dependencies, matching the existing sink style.
///
/// Two properties the rest of src/io relies on:
///
///  * **Ordered objects.** Object members keep insertion/parse order, so
///    writing a parsed document reproduces the member order of the input.
///  * **Literal-preserving numbers.** A parsed number keeps its exact
///    source text and is re-emitted verbatim; numbers created from C++
///    values are formatted once (shortest round-trip for doubles, plain
///    decimal for integers) and stay stable from then on. Together these
///    make write(parse(write(x))) byte-identical to write(x) -- the
///    property the shard-merge path of the uwb_sweep CLI depends on --
///    and keep 64-bit seeds exact (a double round trip would not).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace uwb::io {

/// One JSON value. Construction goes through the named factories so the
/// kind is always explicit.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  ///< null

  [[nodiscard]] static JsonValue null();
  [[nodiscard]] static JsonValue boolean(bool v);
  [[nodiscard]] static JsonValue number(double v);     ///< shortest round-trip text
  [[nodiscard]] static JsonValue number(uint64_t v);
  [[nodiscard]] static JsonValue number(int v);
  /// Adopts \p literal verbatim (must be a valid JSON number token).
  [[nodiscard]] static JsonValue number_literal(std::string literal);
  [[nodiscard]] static JsonValue string(std::string v);
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; throw InvalidArgument on a kind mismatch (or, for
  /// the integer accessors, on a number that is not exactly representable).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] uint64_t as_uint64() const;
  [[nodiscard]] int64_t as_int64() const;
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  /// The number's literal text (throws unless kind() == kNumber).
  [[nodiscard]] const std::string& number_text() const;

  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  /// Object member by key, or nullptr when absent (throws on non-objects).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member by key; throws InvalidArgument when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// Appends to an array (throws on other kinds).
  void push_back(JsonValue v);
  /// Appends a member to an object (throws on other kinds; duplicate keys
  /// are a logic error and throw).
  void set(std::string key, JsonValue v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  ///< number literal or string payload
  Array items_;
  Object members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). \throws InvalidArgument with offset context on malformed
/// input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Compact single-line serialization.
[[nodiscard]] std::string dump_json(const JsonValue& value);

/// Pretty serialization: 2-space indent, one member/element per line,
/// except empty containers and arrays of scalars, which stay inline.
[[nodiscard]] std::string dump_json_pretty(const JsonValue& value);

/// Shortest text that round-trips to exactly \p v through strtod -- the
/// shared number format of every sink and serializer (identical doubles
/// always render to identical text).
[[nodiscard]] std::string format_double(double v);

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace uwb::io
