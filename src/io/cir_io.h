#pragma once
/// \file cir_io.h
/// \brief The channel-ensemble binary store: versioned (de)serialization of
///        engine::ChannelEnsemble under a store directory (conventionally
///        bench/results/channels/), with a strict JSON sidecar carrying the
///        human-readable metadata.
///
/// Layout per ensemble, named by its key:
///
///   <dir>/<name>_<fingerprint:016x>_s<seed>_n<count>.cir    realizations
///   <dir>/<name>_<fingerprint:016x>_s<seed>_n<count>.json   sidecar
///
/// The .cir format (version 1) is endian-explicit little-endian:
///
///   magic   8 bytes  "UWBCIR\0\x01"  (last byte = format version)
///   header  3 x u64  fingerprint, seed, count
///   body    per realization: u64 tap count, then per tap three f64
///           (delay_s, gain real, gain imag) as IEEE-754 bit patterns
///
/// Doubles round-trip exactly (bit patterns, not text), so save -> load
/// reproduces an ensemble tap for tap and a cached sweep is byte-identical
/// to its in-memory-ensemble counterpart. The sidecar holds the full
/// SvParams, and both load paths are strict: a magic/version/key mismatch,
/// a truncated body, or an unknown sidecar key throws InvalidArgument.

#include <string>

#include "engine/channel_cache.h"
#include "io/json.h"

namespace uwb::io {

/// Format version written into the .cir magic and the sidecar.
inline constexpr int kCirFormatVersion = 1;

/// Conventional store directory for precomputed ensembles.
[[nodiscard]] std::string default_channel_store_dir();

/// File stem (no directory, no extension) for an ensemble key:
/// "<params.name>_<fingerprint:016x>_s<seed>_n<count>".
[[nodiscard]] std::string ensemble_stem(const channel::SvParams& params,
                                        const engine::ChannelKey& key);

/// True when both store files for (params, key) exist under \p dir.
[[nodiscard]] bool ensemble_exists(const std::string& dir, const channel::SvParams& params,
                                   const engine::ChannelKey& key);

/// Writes <stem>.cir and <stem>.json under \p dir (created if missing).
/// Returns the stem path ("<dir>/<stem>"). Rewriting an existing ensemble
/// produces byte-identical files (deterministic content, deterministic
/// formatting).
std::string save_ensemble(const engine::ChannelEnsemble& ensemble, const std::string& dir);

/// Loads the ensemble stored for (params, key) under \p dir and validates
/// the sidecar against \p params and the binary header against \p key.
/// \throws InvalidArgument on any mismatch or malformed file.
[[nodiscard]] engine::ChannelEnsemble load_ensemble(const std::string& dir,
                                                    const channel::SvParams& params,
                                                    const engine::ChannelKey& key);

/// Sidecar (de)serialization, exposed for tests and tooling. The reader is
/// strict: unknown keys throw, as everywhere in src/io.
[[nodiscard]] JsonValue ensemble_sidecar_json(const engine::ChannelEnsemble& ensemble);
[[nodiscard]] channel::SvParams sv_params_from_json(const JsonValue& v);

}  // namespace uwb::io
