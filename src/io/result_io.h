#pragma once
/// \file result_io.h
/// \brief The sweep result document: the one JSON layout written by
///        engine::JsonSink, parsed back by the uwb_sweep CLI, and merged
///        across shards.
///
/// ResultPoint keeps ber/ci95 as their literal JSON text, and
/// write_result_json is the single formatter both the sink and the merge
/// path use, so parse -> write reproduces a document byte for byte. That
/// is what makes "run shard 0/2 and 1/2, merge, compare against the
/// unsharded run" an exact equality check rather than a fuzzy one.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/ber_simulator.h"

namespace uwb::io {

/// One named metric's serialized reduction: observation count plus mean
/// and (unbiased sample) variance, the numbers kept as their literal JSON
/// text so parse -> write round trips exactly.
struct ResultMetric {
  std::string name;
  std::uint64_t count = 0;
  std::string mean = "0";
  std::string variance = "0";

  [[nodiscard]] bool operator==(const ResultMetric&) const = default;
};

/// One measured point as serialized: axis labels plus the BER counters
/// (ber/ci95 in literal shortest-round-trip text) and the per-metric
/// statistics (present only for sweeps that record metrics -- BER-only
/// documents keep the historical layout).
struct ResultPoint {
  std::uint64_t index = 0;  ///< global position in the scenario's plan
  std::string label;
  std::vector<std::pair<std::string, std::string>> tags;
  std::string ber = "0";
  std::string ci95 = "0";
  std::uint64_t errors = 0;
  std::uint64_t bits = 0;
  std::uint64_t trials = 0;

  /// Two-sided 95% interval + method name ("clopper_pearson", "wilson",
  /// "normal_weighted"). Every new run writes them; empty strings mean the
  /// fields were absent (a pre-CI document), and absent fields are not
  /// re-invented on write, so old files still round-trip byte for byte.
  std::string ci_lo;
  std::string ci_hi;
  std::string ci_method;

  /// Importance-sampled point: ber/ci are weighted estimates and \p ess
  /// carries the weight set's effective sample size.
  bool weighted = false;
  std::string ess;

  std::vector<ResultMetric> metrics;  ///< ordered as recorded
};

/// A whole sweep result file.
struct ResultDoc {
  std::string scenario;
  std::uint64_t seed = 0;
  sim::BerStop stop;
  std::vector<ResultPoint> points;
};

/// Serializes \p doc in the canonical sink layout.
[[nodiscard]] std::string write_result_json(const ResultDoc& doc);

/// Parses a document written by write_result_json (or by hand, same
/// schema). \throws InvalidArgument on malformed input.
[[nodiscard]] ResultDoc parse_result_json(const std::string& text);

/// Merges shard documents of one sweep: headers (scenario, seed, stop)
/// must match, point indices must be disjoint; points are re-sorted by
/// global index. Merging every shard of a sweep therefore reproduces the
/// unsharded document byte for byte.
///
/// Coverage is validated loudly: duplicate/overlapping indices are always
/// an error, and -- unless \p allow_partial -- so is a gap (the merged
/// indices must be exactly 0..max; a missing middle shard must not merge
/// into a file indistinguishable from a complete run). allow_partial
/// relaxes only the gap check, for explicitly degraded merges of a farm
/// run whose failed shards are being skipped on purpose.
[[nodiscard]] ResultDoc merge_results(const std::vector<ResultDoc>& shards,
                                      bool allow_partial = false);

}  // namespace uwb::io
