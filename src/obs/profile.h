#pragma once
/// \file profile.h
/// \brief Stage-level pipeline profiler: per-stage time/throughput
///        attribution inside the link (tx modulate, channel convolve, rx
///        front end, ADC, acquisition, correlate/RAKE, demod, FFT exec)
///        collected into per-thread accumulators and merged once after the
///        pool quiesces.
///
/// Same contract as the trace recorder (obs/trace.h, docs/observability.md):
///
///  * **No locks on the hot path.** Every profiled thread owns one
///    accumulator; the profiler's mutex is taken only at registration
///    (once per thread per profiler), at merge, and at reset. A
///    thread-local cache keyed by a process-unique profiler id makes
///    repeat lookups two compares.
///  * **No clock reads when disabled.** Instrumentation sites construct a
///    `StageTimer` unconditionally; when no profiler is active on the
///    thread it costs one thread-local load and a null compare -- the
///    steady_clock is never touched.
///  * **Observer only.** The profiler never touches Rng streams, trial
///    scheduling, or result serialization: result JSON/CSV is
///    byte-identical with profiling on or off, for any worker count
///    (tested, CI-checked).
///
/// Activation is scoped, not global: `ScopedStageProfile` binds the
/// calling thread's active accumulator for its lifetime (the sweep
/// engine's workers open one scope per point task), so instrumentation
/// deep inside txrx/dsp needs no plumbed-through pointers.
///
/// Merge contract: merged() / reset() may only run once every profiled
/// thread has quiesced (for a sweep: between points, after
/// measure_point_parallel returned -- every accumulator write
/// happens-before the worker-done notification it returned on).

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/json.h"

namespace uwb::obs {

/// The fixed stage registry. fft_exec is special: plan executions nest
/// inside whichever stage called them (channel convolve, correlate, the
/// spectral monitor), so its time is *also* counted by the enclosing
/// stage -- read it as "of the above, this much was FFT butterflies".
enum class Stage : std::uint8_t {
  kTxModulate = 0,   ///< pulse shaping + modulation (txrx transmit)
  kChannelConvolve,  ///< CIR convolution of the transmitted waveform
  kChannelNoise,     ///< AWGN synthesis + addition over the analog waveform
  kRxFrontend,       ///< analog chain: mixer/LNA model, FIRs, sampling
  kAdcQuantize,      ///< flash / SAR conversion of the sampled waveform
  kSyncAcquire,      ///< acquisition + channel estimation
  kCorrelateRake,    ///< matched filtering and RAKE combining
  kDemodDecide,      ///< despread/demap/MLSE + error accounting
  kFftExec,          ///< FftPlan executions (nested; overlaps the above)
  kCount
};

inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

/// Stable snake_case stage name ("tx_modulate", ...), used by the
/// manifest stage table, the stderr table, and BENCH_stage_profile.json.
[[nodiscard]] const char* stage_name(Stage stage);

/// Parses a stage_name back. \throws InvalidArgument on unknown names.
[[nodiscard]] Stage stage_from_name(const std::string& name);

/// One stage's accumulated scope statistics.
struct StageStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< meaningful only when calls > 0
  std::uint64_t max_ns = 0;
  std::uint64_t samples = 0;  ///< samples (or bits, for demod) processed

  void add(std::uint64_t ns, std::uint64_t n) {
    if (calls == 0 || ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
    ++calls;
    total_ns += ns;
    samples += n;
  }

  void merge(const StageStats& other) {
    if (other.calls == 0) return;
    if (calls == 0 || other.min_ns < min_ns) min_ns = other.min_ns;
    if (other.max_ns > max_ns) max_ns = other.max_ns;
    calls += other.calls;
    total_ns += other.total_ns;
    samples += other.samples;
  }

  [[nodiscard]] double mean_ns() const {
    return calls > 0 ? static_cast<double>(total_ns) / static_cast<double>(calls) : 0.0;
  }

  [[nodiscard]] bool operator==(const StageStats&) const = default;
};

/// A full per-stage table (one StageStats per registry entry).
struct StageTable {
  std::array<StageStats, kStageCount> stages{};

  [[nodiscard]] StageStats& operator[](Stage s) {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const StageStats& operator[](Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }

  void merge(const StageTable& other) {
    for (std::size_t i = 0; i < kStageCount; ++i) stages[i].merge(other.stages[i]);
  }

  [[nodiscard]] bool empty() const {
    for (const StageStats& s : stages) {
      if (s.calls > 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool operator==(const StageTable&) const = default;
};

/// Serialization for the run manifest and the bench: an array of
/// {stage, calls, total_ns, min_ns, max_ns, samples} rows, zero-call
/// stages skipped. Round-trips exactly (skipped rows parse back as
/// default-initialized).
[[nodiscard]] io::JsonValue stage_table_to_json(const StageTable& table);
[[nodiscard]] StageTable stage_table_from_json(const io::JsonValue& value);

/// Human-readable table (stage, calls, total ms, mean us, min/max us,
/// samples/s) to \p out; zero-call stages skipped.
void print_stage_table(const StageTable& table, std::FILE* out);

class StageProfiler;

namespace detail_profile {
/// The calling thread's active accumulator (null = profiling disabled on
/// this thread). Bound by ScopedStageProfile; read by every StageTimer.
inline thread_local StageTable* t_active_accum = nullptr;
}  // namespace detail_profile

/// Collects per-thread StageTables; see the file comment for the locking
/// and merge contracts.
class StageProfiler {
 public:
  StageProfiler();

  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  /// The calling thread's accumulator, registering it on first use. After
  /// the first call (per thread, per profiler) this is lock-free.
  [[nodiscard]] StageTable& thread_accum();

  /// Sum over every registered thread's accumulator. Only valid once
  /// every profiled thread has quiesced.
  [[nodiscard]] StageTable merged() const;

  /// Zeroes every registered accumulator (same quiesce contract). The
  /// engine resets between points so each point's table carries true
  /// per-point min/max instead of cumulative-snapshot deltas.
  void reset();

 private:
  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<StageTable>> accums_;
};

/// RAII activation: binds \p profiler's per-thread accumulator as the
/// calling thread's active one for the scope's lifetime (null profiler =
/// deactivates). Restores the previous binding on exit, so scopes nest.
class ScopedStageProfile {
 public:
  explicit ScopedStageProfile(StageProfiler* profiler)
      : previous_(detail_profile::t_active_accum) {
    detail_profile::t_active_accum =
        profiler != nullptr ? &profiler->thread_accum() : nullptr;
  }
  ~ScopedStageProfile() { detail_profile::t_active_accum = previous_; }

  ScopedStageProfile(const ScopedStageProfile&) = delete;
  ScopedStageProfile& operator=(const ScopedStageProfile&) = delete;

 private:
  StageTable* previous_;
};

/// RAII stage scope: accumulates one (duration, samples) observation into
/// the calling thread's active accumulator. With no active profiler the
/// constructor is one thread-local load + null compare and the clock is
/// never read.
class StageTimer {
 public:
  explicit StageTimer(Stage stage, std::uint64_t samples = 0) {
    StageTable* accum = detail_profile::t_active_accum;
    if (accum == nullptr) return;
    accum_ = accum;
    stage_ = stage;
    samples_ = samples;
    start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() { finish(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Adds to the samples-processed count (any time before finish()).
  void add_samples(std::uint64_t n) {
    if (accum_ != nullptr) samples_ += n;
  }

  /// Stamps the duration and commits the observation. Idempotent.
  void finish() {
    if (accum_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    (*accum_)[stage_].add(static_cast<std::uint64_t>(ns), samples_);
    accum_ = nullptr;
  }

 private:
  StageTable* accum_ = nullptr;
  Stage stage_ = Stage::kTxModulate;
  std::uint64_t samples_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace uwb::obs
