#include "obs/manifest.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace uwb::obs {

BuildInfo current_build_info() {
  BuildInfo info;
#if defined(__clang__) || defined(__GNUC__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
  return info;
}

io::JsonValue manifest_to_json(const RunManifest& m) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("scenario", io::JsonValue::string(m.scenario));
  doc.set("seed", io::JsonValue::number(m.seed));
  doc.set("workers", io::JsonValue::number(static_cast<std::uint64_t>(m.workers)));

  io::JsonValue shard = io::JsonValue::object();
  shard.set("index", io::JsonValue::number(static_cast<std::uint64_t>(m.shard_index)));
  shard.set("count", io::JsonValue::number(static_cast<std::uint64_t>(m.shard_count)));
  doc.set("shard", std::move(shard));

  io::JsonValue stop = io::JsonValue::object();
  stop.set("min_errors", io::JsonValue::number(static_cast<std::uint64_t>(m.stop.min_errors)));
  stop.set("max_bits", io::JsonValue::number(static_cast<std::uint64_t>(m.stop.max_bits)));
  stop.set("max_trials", io::JsonValue::number(static_cast<std::uint64_t>(m.stop.max_trials)));
  stop.set("metric", io::JsonValue::string(m.stop.metric));
  doc.set("stop", std::move(stop));

  doc.set("result", io::JsonValue::string(m.result_path));
  doc.set("trace", io::JsonValue::string(m.trace_path));
  doc.set("interrupted", io::JsonValue::boolean(m.interrupted));
  doc.set("wall_s", io::JsonValue::number(m.counters.wall_s));

  io::JsonValue build = io::JsonValue::object();
  build.set("compiler", io::JsonValue::string(m.build.compiler));
  build.set("build_type", io::JsonValue::string(m.build.build_type));
  doc.set("build", std::move(build));

  io::JsonValue counters = io::JsonValue::object();
  {
    io::JsonValue cache = io::JsonValue::object();
    cache.set("hits", io::JsonValue::number(m.counters.cache_hits));
    cache.set("disk_loads", io::JsonValue::number(m.counters.cache_disk_loads));
    cache.set("generated", io::JsonValue::number(m.counters.cache_generated));
    cache.set("sv_draws", io::JsonValue::number(m.counters.cache_sv_draws));
    counters.set("channel_cache", std::move(cache));
  }
  {
    io::JsonValue fft = io::JsonValue::object();
    fft.set("hits", io::JsonValue::number(m.counters.fft_plan_hits));
    fft.set("misses", io::JsonValue::number(m.counters.fft_plan_misses));
    counters.set("fft_plan_cache", std::move(fft));
  }
  {
    io::JsonValue pool = io::JsonValue::object();
    pool.set("workers", io::JsonValue::number(static_cast<std::uint64_t>(m.counters.pool.size())));
    pool.set("tasks_executed", io::JsonValue::number(m.counters.pool_executed()));
    pool.set("tasks_stolen", io::JsonValue::number(m.counters.pool_stolen()));
    pool.set("idle_us_total", io::JsonValue::number(m.counters.pool_idle_us()));
    io::JsonValue per_worker = io::JsonValue::array();
    for (const PoolWorkerStats& w : m.counters.pool) {
      io::JsonValue entry = io::JsonValue::object();
      entry.set("executed", io::JsonValue::number(w.executed));
      entry.set("stolen", io::JsonValue::number(w.stolen));
      entry.set("idle_us", io::JsonValue::number(w.idle_us));
      per_worker.push_back(std::move(entry));
    }
    pool.set("per_worker", std::move(per_worker));
    counters.set("pool", std::move(pool));
  }
  doc.set("counters", std::move(counters));

  if (!m.stages.empty()) doc.set("stages", stage_table_to_json(m.stages));

  io::JsonValue points = io::JsonValue::array();
  for (const PointTiming& point : m.points) {
    io::JsonValue entry = io::JsonValue::object();
    entry.set("index", io::JsonValue::number(point.index));
    entry.set("label", io::JsonValue::string(point.label));
    entry.set("elapsed_s", io::JsonValue::number(point.elapsed_s));
    entry.set("trials", io::JsonValue::number(point.trials));
    entry.set("bits", io::JsonValue::number(point.bits));
    entry.set("errors", io::JsonValue::number(point.errors));
    if (!point.stages.empty()) entry.set("stages", stage_table_to_json(point.stages));
    points.push_back(std::move(entry));
  }
  doc.set("points", std::move(points));
  return doc;
}

RunManifest manifest_from_json(const io::JsonValue& doc) {
  RunManifest m;
  m.scenario = doc.at("scenario").as_string();
  m.seed = doc.at("seed").as_uint64();
  m.workers = static_cast<std::size_t>(doc.at("workers").as_uint64());

  const io::JsonValue& shard = doc.at("shard");
  m.shard_index = static_cast<std::size_t>(shard.at("index").as_uint64());
  m.shard_count = static_cast<std::size_t>(shard.at("count").as_uint64());

  const io::JsonValue& stop = doc.at("stop");
  m.stop.min_errors = static_cast<std::size_t>(stop.at("min_errors").as_uint64());
  m.stop.max_bits = static_cast<std::size_t>(stop.at("max_bits").as_uint64());
  m.stop.max_trials = static_cast<std::size_t>(stop.at("max_trials").as_uint64());
  m.stop.metric = stop.at("metric").as_string();

  m.result_path = doc.at("result").as_string();
  m.trace_path = doc.at("trace").as_string();
  // Optional for manifests written before interruption existed.
  if (const io::JsonValue* interrupted = doc.find("interrupted")) {
    m.interrupted = interrupted->as_bool();
  }
  m.counters.wall_s = doc.at("wall_s").as_double();

  const io::JsonValue& build = doc.at("build");
  m.build.compiler = build.at("compiler").as_string();
  m.build.build_type = build.at("build_type").as_string();

  const io::JsonValue& counters = doc.at("counters");
  const io::JsonValue& cache = counters.at("channel_cache");
  m.counters.cache_hits = cache.at("hits").as_uint64();
  m.counters.cache_disk_loads = cache.at("disk_loads").as_uint64();
  m.counters.cache_generated = cache.at("generated").as_uint64();
  m.counters.cache_sv_draws = cache.at("sv_draws").as_uint64();
  const io::JsonValue& fft = counters.at("fft_plan_cache");
  m.counters.fft_plan_hits = fft.at("hits").as_uint64();
  m.counters.fft_plan_misses = fft.at("misses").as_uint64();
  const io::JsonValue& pool = counters.at("pool");
  for (const io::JsonValue& entry : pool.at("per_worker").items()) {
    PoolWorkerStats w;
    w.executed = entry.at("executed").as_uint64();
    w.stolen = entry.at("stolen").as_uint64();
    w.idle_us = entry.at("idle_us").as_uint64();
    m.counters.pool.push_back(w);
  }
  detail::require(pool.at("workers").as_uint64() == m.counters.pool.size(),
                  "run manifest: pool.workers disagrees with per_worker length");

  // Optional for manifests written before stage profiling existed (and for
  // unprofiled runs, which omit the key).
  if (const io::JsonValue* stages = doc.find("stages")) {
    m.stages = stage_table_from_json(*stages);
  }

  for (const io::JsonValue& entry : doc.at("points").items()) {
    PointTiming point;
    point.index = entry.at("index").as_uint64();
    point.label = entry.at("label").as_string();
    point.elapsed_s = entry.at("elapsed_s").as_double();
    point.trials = entry.at("trials").as_uint64();
    point.bits = entry.at("bits").as_uint64();
    point.errors = entry.at("errors").as_uint64();
    if (const io::JsonValue* stages = entry.find("stages")) {
      point.stages = stage_table_from_json(*stages);
    }
    m.points.push_back(std::move(point));
  }
  return m;
}

void write_run_manifest(const RunManifest& manifest, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), "write_run_manifest: cannot open '" + path + "' for writing");
  out << io::dump_json_pretty(manifest_to_json(manifest)) << "\n";
  detail::require(out.good(), "write_run_manifest: write to '" + path + "' failed");
}

RunManifest load_run_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  detail::require(in.good(), "load_run_manifest: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return manifest_from_json(io::parse_json(buffer.str()));
}

std::string manifest_path_for(const std::string& result_path) {
  return result_path + ".run.json";
}

}  // namespace uwb::obs
