#pragma once
/// \file progress.h
/// \brief Live sweep progress on stderr: a heartbeat thread that prints
///        points done/total, trial throughput, error counts, and an ETA at
///        a fixed interval while the engine runs.
///
/// The meter is an observer: the engine feeds it atomic counter updates
/// (executed trials, bits, errors, point boundaries) and it renders them on
/// its own thread, so enabling progress cannot change results or trial
/// scheduling. Trial counts are *executed* trials -- the parallel engine
/// runs a bounded window of speculative trials past the stop frontier, so
/// the live count may briefly exceed the committed count in the result
/// file; the final summary reports both honestly.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

namespace uwb::obs {

struct ProgressOptions {
  /// Heartbeat rendering: human text lines, or machine-readable one-object
  /// JSON lines ({"progress":"start"|"tick"|"done", ...}) that a supervisor
  /// (e.g. uwb_farm) can parse from the worker's stderr.
  enum class Format { kText, kJson };

  std::FILE* out = nullptr;  ///< null = stderr
  double interval_s = 1.0;   ///< heartbeat interval
  Format format = Format::kText;
};

class ProgressMeter {
 public:
  using Options = ProgressOptions;

  explicit ProgressMeter(Options options = {});
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  // Engine hooks; all thread-safe.
  void begin_run(std::size_t total_points);
  void begin_point(std::size_t index, const std::string& label);
  void add_trials(std::uint64_t n) { trials_.fetch_add(n, std::memory_order_relaxed); }
  void add_bits(std::uint64_t n) { bits_.fetch_add(n, std::memory_order_relaxed); }
  void add_errors(std::uint64_t n) { errors_.fetch_add(n, std::memory_order_relaxed); }
  void end_point() { points_done_.fetch_add(1, std::memory_order_relaxed); }

  /// Stops the heartbeat and prints the final summary line.
  void end_run();

 private:
  void heartbeat_loop();
  void print_line(bool final_line);

  Options options_;
  std::FILE* out_ = nullptr;

  std::atomic<std::size_t> points_total_{0};
  std::atomic<std::size_t> points_done_{0};
  std::atomic<std::uint64_t> trials_{0};
  std::atomic<std::uint64_t> bits_{0};
  std::atomic<std::uint64_t> errors_{0};

  std::mutex mutex_;  ///< protects label_, stop_, and the cv
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::string label_;

  std::chrono::steady_clock::time_point start_;
  std::uint64_t last_trials_ = 0;  ///< heartbeat-thread only: windowed rate
  std::chrono::steady_clock::time_point last_tick_;

  std::thread thread_;
};

}  // namespace uwb::obs
