#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "io/json.h"

namespace uwb::obs {

namespace {

/// Per-(thread, recorder) registration cache: two compares on the hot
/// path, the recorder mutex only on first use. Keyed by the recorder's
/// process-unique id, so a recorder reallocated at a stale address can
/// never match a dead cache entry.
struct ThreadCache {
  std::uint64_t recorder_id = 0;
  TraceRecorder::ThreadLog* log = nullptr;
};
thread_local ThreadCache t_cache;

std::atomic<std::uint64_t> g_next_recorder_id{1};

}  // namespace

TraceEvent::Arg trace_arg(std::string key, std::string value) {
  return TraceEvent::Arg{std::move(key), std::move(value), false};
}

TraceEvent::Arg trace_arg(std::string key, std::uint64_t value) {
  return TraceEvent::Arg{std::move(key), std::to_string(value), true};
}

TraceEvent::Arg trace_arg(std::string key, double value) {
  return TraceEvent::Arg{std::move(key), io::format_double(value), true};
}

// ----------------------------------------------------------- TraceRecorder --

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(TraceClock::now()) {}

TraceRecorder::ThreadLog& TraceRecorder::thread_log() {
  if (t_cache.recorder_id == id_) return *t_cache.log;
  std::lock_guard<std::mutex> lock(mutex_);
  logs_.push_back(std::make_unique<ThreadLog>());
  ThreadLog* log = logs_.back().get();
  log->tid = logs_.size() - 1;
  t_cache = ThreadCache{id_, log};
  return *log;
}

void TraceRecorder::name_thread(std::string name) { thread_log().name = std::move(name); }

void TraceRecorder::instant(const char* category, std::string name,
                            std::vector<TraceEvent::Arg> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.category = category;
  event.name = std::move(name);
  event.ts_us = now_us();
  event.args = std::move(args);
  record(std::move(event));
}

void TraceRecorder::counter(const char* category, std::string name, double value) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.category = category;
  event.ts_us = now_us();
  event.args.push_back(trace_arg(name, value));
  event.name = std::move(name);
  record(std::move(event));
}

std::vector<TraceRecorder::ThreadLog> TraceRecorder::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ThreadLog> out;
  out.reserve(logs_.size());
  for (const auto& log : logs_) out.push_back(*log);
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& log : logs_) n += log->events.size();
  return n;
}

// -------------------------------------------------------------------- Span --

Span::Span(TraceRecorder* recorder, const char* category, std::string name)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  event_.kind = TraceEvent::Kind::kSpan;
  event_.category = category;
  event_.name = std::move(name);
  event_.ts_us = recorder_->now_us();
}

void Span::arg(std::string key, std::string value) {
  if (recorder_ != nullptr) event_.args.push_back(trace_arg(std::move(key), std::move(value)));
}

void Span::arg(std::string key, std::uint64_t value) {
  if (recorder_ != nullptr) event_.args.push_back(trace_arg(std::move(key), value));
}

void Span::arg(std::string key, double value) {
  if (recorder_ != nullptr) event_.args.push_back(trace_arg(std::move(key), value));
}

void Span::finish() {
  if (recorder_ == nullptr) return;
  event_.dur_us = recorder_->now_us() - event_.ts_us;
  recorder_->record(std::move(event_));
  recorder_ = nullptr;
}

// ---------------------------------------------------------- Chrome export --

namespace {

io::JsonValue args_object(const std::vector<TraceEvent::Arg>& args) {
  io::JsonValue object = io::JsonValue::object();
  for (const TraceEvent::Arg& arg : args) {
    object.set(arg.key, arg.is_number ? io::JsonValue::number_literal(arg.value)
                                      : io::JsonValue::string(arg.value));
  }
  return object;
}

io::JsonValue event_json(const TraceEvent& event, std::size_t tid) {
  io::JsonValue e = io::JsonValue::object();
  e.set("name", io::JsonValue::string(event.name));
  e.set("cat", io::JsonValue::string(event.category));
  switch (event.kind) {
    case TraceEvent::Kind::kSpan:
      e.set("ph", io::JsonValue::string("X"));
      break;
    case TraceEvent::Kind::kInstant:
      e.set("ph", io::JsonValue::string("i"));
      e.set("s", io::JsonValue::string("t"));  // thread-scoped instant
      break;
    case TraceEvent::Kind::kCounter:
      e.set("ph", io::JsonValue::string("C"));
      break;
  }
  e.set("ts", io::JsonValue::number(event.ts_us));
  if (event.kind == TraceEvent::Kind::kSpan) {
    e.set("dur", io::JsonValue::number(event.dur_us));
  }
  e.set("pid", io::JsonValue::number(1));
  e.set("tid", io::JsonValue::number(static_cast<std::uint64_t>(tid)));
  if (!event.args.empty()) e.set("args", args_object(event.args));
  return e;
}

}  // namespace

std::string write_chrome_trace_json(const TraceRecorder& recorder) {
  const std::vector<TraceRecorder::ThreadLog> logs = recorder.merged();

  io::JsonValue events = io::JsonValue::array();
  {
    io::JsonValue process = io::JsonValue::object();
    process.set("name", io::JsonValue::string("process_name"));
    process.set("ph", io::JsonValue::string("M"));
    process.set("pid", io::JsonValue::number(1));
    process.set("tid", io::JsonValue::number(0));
    io::JsonValue args = io::JsonValue::object();
    args.set("name", io::JsonValue::string("uwb_sweep"));
    process.set("args", std::move(args));
    events.push_back(std::move(process));
  }
  for (const auto& log : logs) {
    io::JsonValue meta = io::JsonValue::object();
    meta.set("name", io::JsonValue::string("thread_name"));
    meta.set("ph", io::JsonValue::string("M"));
    meta.set("pid", io::JsonValue::number(1));
    meta.set("tid", io::JsonValue::number(static_cast<std::uint64_t>(log.tid)));
    io::JsonValue args = io::JsonValue::object();
    args.set("name", io::JsonValue::string(log.name.empty()
                                               ? "thread " + std::to_string(log.tid)
                                               : log.name));
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }

  // Flatten and sort by timestamp (stable: same-ts events keep per-thread
  // emission order) so viewers see a chronological stream.
  std::vector<std::pair<const TraceEvent*, std::size_t>> flat;
  for (const auto& log : logs) {
    for (const TraceEvent& event : log.events) flat.emplace_back(&event, log.tid);
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const auto& a, const auto& b) { return a.first->ts_us < b.first->ts_us; });
  for (const auto& [event, tid] : flat) events.push_back(event_json(*event, tid));

  io::JsonValue doc = io::JsonValue::object();
  doc.set("displayTimeUnit", io::JsonValue::string("ms"));
  doc.set("traceEvents", std::move(events));
  return io::dump_json_pretty(doc) + "\n";
}

void write_chrome_trace(const TraceRecorder& recorder, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), "write_chrome_trace: cannot open '" + path + "' for writing");
  out << write_chrome_trace_json(recorder);
  detail::require(out.good(), "write_chrome_trace: write to '" + path + "' failed");
}

}  // namespace uwb::obs
