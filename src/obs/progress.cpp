#include "obs/progress.h"

#include <algorithm>
#include <cinttypes>

namespace uwb::obs {

namespace {

/// "12.3k" / "4.56M" style throughput rendering.
std::string humanize(double v) {
  char buf[32];
  if (v >= 1e6) std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  else if (v >= 1e3) std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  else std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

/// Minimal JSON string escaping for point labels in heartbeat lines.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

ProgressMeter::ProgressMeter(Options options) : options_(options) {
  out_ = options_.out != nullptr ? options_.out : stderr;
  options_.interval_s = std::max(options_.interval_s, 0.01);
}

ProgressMeter::~ProgressMeter() { end_run(); }

void ProgressMeter::begin_run(std::size_t total_points) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;  // one run per meter
    running_ = true;
    stop_ = false;
  }
  points_total_.store(total_points, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
  last_tick_ = start_;
  last_trials_ = 0;
  if (options_.format == Options::Format::kJson) {
    std::fprintf(out_, "{\"progress\":\"start\",\"points_total\":%zu,\"interval_s\":%g}\n",
                 total_points, options_.interval_s);
  } else {
    std::fprintf(out_, "[progress] sweep started: %zu point(s), heartbeat %.2gs\n",
                 total_points, options_.interval_s);
  }
  std::fflush(out_);
  thread_ = std::thread([this] { heartbeat_loop(); });
}

void ProgressMeter::begin_point(std::size_t index, const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  label_ = "#" + std::to_string(index) + " " + label;
}

void ProgressMeter::end_run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  print_line(true);
}

void ProgressMeter::heartbeat_loop() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    print_line(false);
    lock.lock();
  }
}

void ProgressMeter::print_line(bool final_line) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const std::size_t total = points_total_.load(std::memory_order_relaxed);
  const std::size_t done = points_done_.load(std::memory_order_relaxed);
  const std::uint64_t trials = trials_.load(std::memory_order_relaxed);
  const std::uint64_t errors = errors_.load(std::memory_order_relaxed);

  std::string label;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    label = label_;
  }

  const bool json = options_.format == Options::Format::kJson;

  if (final_line) {
    const double avg_rate = elapsed > 0 ? static_cast<double>(trials) / elapsed : 0.0;
    if (json) {
      std::fprintf(out_,
                   "{\"progress\":\"done\",\"points_done\":%zu,\"points_total\":%zu,"
                   "\"trials\":%" PRIu64 ",\"errors\":%" PRIu64
                   ",\"elapsed_s\":%.3f,\"trials_per_s\":%.1f}\n",
                   done, total, trials, errors, elapsed, avg_rate);
    } else {
      std::fprintf(out_,
                   "[progress] done: %zu/%zu points | %" PRIu64 " trials | %" PRIu64
                   " errors | %.1fs (%s trials/s)\n",
                   done, total, trials, errors, elapsed, humanize(avg_rate).c_str());
    }
    std::fflush(out_);
    return;
  }

  // Windowed throughput: trials since the previous heartbeat.
  const double window = std::chrono::duration<double>(now - last_tick_).count();
  const double rate =
      window > 0 ? static_cast<double>(trials - last_trials_) / window : 0.0;
  last_trials_ = trials;
  last_tick_ = now;

  const bool eta_known = done >= 1 && done < total;
  const double eta_s =
      eta_known ? elapsed / static_cast<double>(done) * static_cast<double>(total - done)
                : 0.0;

  if (json) {
    char eta_json[32];
    if (eta_known) std::snprintf(eta_json, sizeof eta_json, "%.0f", eta_s);
    else std::snprintf(eta_json, sizeof eta_json, "null");
    std::fprintf(out_,
                 "{\"progress\":\"tick\",\"points_done\":%zu,\"points_total\":%zu,"
                 "\"point\":\"%s\",\"trials\":%" PRIu64 ",\"trials_per_s\":%.1f,"
                 "\"errors\":%" PRIu64 ",\"elapsed_s\":%.3f,\"eta_s\":%s}\n",
                 done, total, json_escape(label).c_str(), trials, rate, errors, elapsed,
                 eta_json);
    std::fflush(out_);
    return;
  }

  char eta[32];
  if (eta_known) {
    std::snprintf(eta, sizeof eta, "%.0fs", eta_s);
  } else {
    std::snprintf(eta, sizeof eta, "--");
  }

  std::fprintf(out_,
               "[progress] %zu/%zu points | %" PRIu64 " trials (%s/s) | %" PRIu64
               " errors | elapsed %.1fs | eta %s | %s\n",
               done, total, trials, humanize(rate).c_str(), errors, elapsed, eta,
               label.c_str());
  std::fflush(out_);
}

}  // namespace uwb::obs
