#include "obs/progress.h"

#include <algorithm>
#include <cinttypes>

namespace uwb::obs {

namespace {

/// "12.3k" / "4.56M" style throughput rendering.
std::string humanize(double v) {
  char buf[32];
  if (v >= 1e6) std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  else if (v >= 1e3) std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  else std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

}  // namespace

ProgressMeter::ProgressMeter(Options options) : options_(options) {
  out_ = options_.out != nullptr ? options_.out : stderr;
  options_.interval_s = std::max(options_.interval_s, 0.01);
}

ProgressMeter::~ProgressMeter() { end_run(); }

void ProgressMeter::begin_run(std::size_t total_points) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;  // one run per meter
    running_ = true;
    stop_ = false;
  }
  points_total_.store(total_points, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
  last_tick_ = start_;
  last_trials_ = 0;
  std::fprintf(out_, "[progress] sweep started: %zu point(s), heartbeat %.2gs\n",
               total_points, options_.interval_s);
  std::fflush(out_);
  thread_ = std::thread([this] { heartbeat_loop(); });
}

void ProgressMeter::begin_point(std::size_t index, const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  label_ = "#" + std::to_string(index) + " " + label;
}

void ProgressMeter::end_run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  print_line(true);
}

void ProgressMeter::heartbeat_loop() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    print_line(false);
    lock.lock();
  }
}

void ProgressMeter::print_line(bool final_line) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const std::size_t total = points_total_.load(std::memory_order_relaxed);
  const std::size_t done = points_done_.load(std::memory_order_relaxed);
  const std::uint64_t trials = trials_.load(std::memory_order_relaxed);
  const std::uint64_t errors = errors_.load(std::memory_order_relaxed);

  std::string label;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    label = label_;
  }

  if (final_line) {
    std::fprintf(out_,
                 "[progress] done: %zu/%zu points | %" PRIu64 " trials | %" PRIu64
                 " errors | %.1fs (%s trials/s)\n",
                 done, total, trials, errors,
                 elapsed, humanize(elapsed > 0 ? static_cast<double>(trials) / elapsed : 0).c_str());
    std::fflush(out_);
    return;
  }

  // Windowed throughput: trials since the previous heartbeat.
  const double window = std::chrono::duration<double>(now - last_tick_).count();
  const double rate =
      window > 0 ? static_cast<double>(trials - last_trials_) / window : 0.0;
  last_trials_ = trials;
  last_tick_ = now;

  char eta[32];
  if (done >= 1 && done < total) {
    std::snprintf(eta, sizeof eta, "%.0fs", elapsed / static_cast<double>(done) *
                                                static_cast<double>(total - done));
  } else {
    std::snprintf(eta, sizeof eta, "--");
  }

  std::fprintf(out_,
               "[progress] %zu/%zu points | %" PRIu64 " trials (%s/s) | %" PRIu64
               " errors | elapsed %.1fs | eta %s | %s\n",
               done, total, trials, humanize(rate).c_str(), errors, elapsed, eta,
               label.c_str());
  std::fflush(out_);
}

}  // namespace uwb::obs
