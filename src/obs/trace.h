#pragma once
/// \file trace.h
/// \brief Low-overhead run tracing for the sweep engine: timestamped spans,
///        instants, and counter samples collected into per-thread
///        append-only buffers, merged once at run end, and exportable as
///        Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
///
/// Design constraints (see docs/observability.md):
///
///  * **No locks on the hot path.** Every recording thread owns one
///    append-only event buffer; the recorder's mutex is taken only when a
///    thread registers (once per thread per recorder) and when the merged
///    view is taken after the run. A thread-local cache makes repeat
///    `thread_log()` lookups two pointer compares.
///  * **Observer only.** A TraceRecorder never touches Rng streams, trial
///    scheduling, or result serialization: sweeps are byte-identical with
///    tracing on or off, for any worker count (tested, CI-checked).
///  * **Null-safe instrumentation.** Every instrumentation point takes a
///    `TraceRecorder*` that may be null; disabled tracing costs a pointer
///    compare per site, no clock reads.
///
/// Merge contract: merged() / write_chrome_trace() may only run once every
/// instrumented thread has quiesced (for a sweep: after SweepEngine::run
/// returned, which tears down the pool).

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace uwb::obs {

/// Steady (monotonic) clock all trace timestamps come from.
using TraceClock = std::chrono::steady_clock;

/// One recorded event. Spans are "complete" events (start + duration);
/// instants mark a moment (e.g. a stop-rule decision); counters sample a
/// named value over time (e.g. cumulative committed trials).
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };

  /// One key/value argument. Numeric values keep their rendered text and
  /// set is_number so the Chrome exporter emits them unquoted.
  struct Arg {
    std::string key;
    std::string value;
    bool is_number = false;
  };

  Kind kind = Kind::kSpan;
  const char* category = "";  ///< static-storage category ("engine", "pool", ...)
  std::string name;
  std::uint64_t ts_us = 0;   ///< microseconds since the recorder's epoch
  std::uint64_t dur_us = 0;  ///< spans only
  std::vector<Arg> args;
};

[[nodiscard]] TraceEvent::Arg trace_arg(std::string key, std::string value);
[[nodiscard]] TraceEvent::Arg trace_arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceEvent::Arg trace_arg(std::string key, double value);

/// Collects events from any number of threads. See the file comment for
/// the locking and merge contracts.
class TraceRecorder {
 public:
  TraceRecorder();

  /// One thread's append-only event buffer. tid is the registration index
  /// (stable, dense, what the Chrome export uses as the thread id).
  struct ThreadLog {
    std::size_t tid = 0;
    std::string name;  ///< thread label in trace viewers ("engine", "pool worker 3")
    std::vector<TraceEvent> events;
  };

  /// Microseconds elapsed since this recorder was constructed.
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          TraceClock::now() - epoch_)
                                          .count());
  }

  /// The calling thread's log, registering it on first use. After the
  /// first call (per thread, per recorder) this is lock-free.
  [[nodiscard]] ThreadLog& thread_log();

  /// Labels the calling thread in the exported trace.
  void name_thread(std::string name);

  /// Appends a fully-formed event to the calling thread's log.
  void record(TraceEvent event) { thread_log().events.push_back(std::move(event)); }

  /// Records an instant event stamped now.
  void instant(const char* category, std::string name,
               std::vector<TraceEvent::Arg> args = {});

  /// Records a counter sample stamped now (cumulative values make the
  /// nicest Perfetto counter tracks).
  void counter(const char* category, std::string name, double value);

  /// Snapshot of every registered thread's log, in registration order.
  /// Only valid once every recording thread has quiesced.
  [[nodiscard]] std::vector<ThreadLog> merged() const;

  /// Total event count across all threads (same quiesce contract).
  [[nodiscard]] std::size_t event_count() const;

 private:
  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  TraceClock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII span: stamps its start at construction and records one complete
/// event into the recorder at finish()/destruction. A null recorder makes
/// every method a no-op, so instrumentation sites need no branching.
class Span {
 public:
  Span() = default;  ///< inactive
  Span(TraceRecorder* recorder, const char* category, std::string name);
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an argument (any time before finish()).
  void arg(std::string key, std::string value);
  void arg(std::string key, std::uint64_t value);
  void arg(std::string key, double value);

  /// Stamps the duration and records the event. Idempotent.
  void finish();

 private:
  TraceRecorder* recorder_ = nullptr;
  TraceEvent event_;
};

/// Serializes the recorder's merged events as a Chrome trace-event JSON
/// document: thread-name metadata ("M"), complete spans ("X"), instants
/// ("i"), and counter samples ("C"), sorted by timestamp.
[[nodiscard]] std::string write_chrome_trace_json(const TraceRecorder& recorder);

/// Writes write_chrome_trace_json to \p path (parent directories created).
void write_chrome_trace(const TraceRecorder& recorder, const std::string& path);

}  // namespace uwb::obs
