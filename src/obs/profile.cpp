#include "obs/profile.h"

#include <atomic>

#include "common/error.h"

namespace uwb::obs {

namespace {

constexpr const char* kStageNames[kStageCount] = {
    "tx_modulate",    "channel_convolve", "channel_noise", "rx_frontend",
    "adc_quantize",   "sync_acquire",     "correlate_rake", "demod_decide",
    "fft_exec",
};

std::atomic<std::uint64_t> g_next_profiler_id{1};

/// Thread-local cache of the most recent (profiler, accumulator) pairing,
/// so thread_accum() is two compares after the first registration. Same
/// scheme as TraceRecorder's ThreadCache (obs/trace.cpp).
struct ThreadCache {
  std::uint64_t profiler_id = 0;
  StageTable* accum = nullptr;
};
thread_local ThreadCache t_cache;

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

Stage stage_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (name == kStageNames[i]) return static_cast<Stage>(i);
  }
  throw InvalidArgument("unknown profiler stage name: " + name);
}

io::JsonValue stage_table_to_json(const StageTable& table) {
  io::JsonValue rows = io::JsonValue::array();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageStats& s = table.stages[i];
    if (s.calls == 0) continue;
    io::JsonValue row = io::JsonValue::object();
    row.set("stage", io::JsonValue::string(kStageNames[i]));
    row.set("calls", io::JsonValue::number(s.calls));
    row.set("total_ns", io::JsonValue::number(s.total_ns));
    row.set("min_ns", io::JsonValue::number(s.min_ns));
    row.set("max_ns", io::JsonValue::number(s.max_ns));
    row.set("samples", io::JsonValue::number(s.samples));
    rows.push_back(std::move(row));
  }
  return rows;
}

StageTable stage_table_from_json(const io::JsonValue& value) {
  StageTable table;
  for (const io::JsonValue& row : value.items()) {
    const Stage stage = stage_from_name(row.at("stage").as_string());
    StageStats& s = table[stage];
    s.calls = row.at("calls").as_uint64();
    s.total_ns = row.at("total_ns").as_uint64();
    s.min_ns = row.at("min_ns").as_uint64();
    s.max_ns = row.at("max_ns").as_uint64();
    s.samples = row.at("samples").as_uint64();
  }
  return table;
}

void print_stage_table(const StageTable& table, std::FILE* out) {
  std::fprintf(out, "%-18s %10s %12s %11s %11s %11s %12s\n", "stage", "calls",
               "total_ms", "mean_us", "min_us", "max_us", "Msamples/s");
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageStats& s = table.stages[i];
    if (s.calls == 0) continue;
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double rate =
        s.total_ns > 0
            ? static_cast<double>(s.samples) / (static_cast<double>(s.total_ns) / 1e9) / 1e6
            : 0.0;
    std::fprintf(out, "%-18s %10llu %12.3f %11.2f %11.2f %11.2f %12.2f\n",
                 kStageNames[i], static_cast<unsigned long long>(s.calls),
                 total_ms, s.mean_ns() / 1e3,
                 static_cast<double>(s.min_ns) / 1e3,
                 static_cast<double>(s.max_ns) / 1e3, rate);
  }
}

StageProfiler::StageProfiler()
    : id_(g_next_profiler_id.fetch_add(1, std::memory_order_relaxed)) {}

StageTable& StageProfiler::thread_accum() {
  if (t_cache.profiler_id == id_) return *t_cache.accum;
  std::lock_guard<std::mutex> lock(mutex_);
  accums_.push_back(std::make_unique<StageTable>());
  StageTable* accum = accums_.back().get();
  t_cache = ThreadCache{id_, accum};
  return *accum;
}

StageTable StageProfiler::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StageTable out;
  for (const auto& accum : accums_) out.merge(*accum);
  return out;
}

void StageProfiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Zero contents in place: registered threads keep their cached pointers.
  for (const auto& accum : accums_) *accum = StageTable{};
}

}  // namespace uwb::obs
