#pragma once
/// \file manifest.h
/// \brief The run-manifest sidecar: everything about *how* a sweep ran
///        (workers, shard, wall time per point, counter totals, build
///        flags) serialized as `<out>.run.json` next to the result file.
///
/// The manifest exists so the committed result JSON can stay a pure
/// function of (scenario, seed, stop) -- byte-identical for any worker
/// count, shard split, or telemetry setting -- while the run's operational
/// evidence (where time went, what the caches did) still lands on disk in
/// machine-readable form. Nothing in the manifest feeds back into results.

#include <cstdint>
#include <string>
#include <vector>

#include "io/json.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "sim/ber_simulator.h"

namespace uwb::obs {

/// Toolchain/flags the binary was built with (from predefined macros).
struct BuildInfo {
  std::string compiler;    ///< e.g. "g++ 13.2.0" (__VERSION__)
  std::string build_type;  ///< "release" (NDEBUG) or "debug"

  [[nodiscard]] bool operator==(const BuildInfo&) const = default;
};

/// The running binary's BuildInfo.
[[nodiscard]] BuildInfo current_build_info();

/// One point's operational record (never part of the result document).
struct PointTiming {
  std::uint64_t index = 0;
  std::string label;
  double elapsed_s = 0.0;
  std::uint64_t trials = 0;
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;

  /// This point's stage profile (empty unless the run profiled).
  StageTable stages;

  [[nodiscard]] bool operator==(const PointTiming&) const = default;
};

/// The whole sidecar document.
struct RunManifest {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t workers = 0;  ///< resolved worker-thread count
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  sim::BerStop stop;
  std::string result_path;  ///< the result file this manifest describes
  std::string trace_path;   ///< "" when tracing was off

  /// True when the run was cancelled (SIGINT/SIGTERM): the result file
  /// holds a valid completed-point prefix, not the full plan. Absent in
  /// manifests written before this field existed; those parse as false.
  bool interrupted = false;
  BuildInfo build;
  RunCounters counters;

  /// Run-total stage profile (`--profile`); empty tables are omitted from
  /// the document and parse back as empty, so old manifests stay readable.
  StageTable stages;
  std::vector<PointTiming> points;
};

/// Serialization through io::json; from_json is strict (missing or
/// mistyped members throw InvalidArgument), so a manifest round-trips
/// exactly: to_json(from_json(x)) reproduces x member for member.
[[nodiscard]] io::JsonValue manifest_to_json(const RunManifest& manifest);
[[nodiscard]] RunManifest manifest_from_json(const io::JsonValue& value);

/// Pretty-printed manifest_to_json written to \p path (parent directories
/// created).
void write_run_manifest(const RunManifest& manifest, const std::string& path);

/// Reads and parses a manifest file. \throws InvalidArgument when the file
/// is unreadable or malformed.
[[nodiscard]] RunManifest load_run_manifest(const std::string& path);

/// The conventional sidecar path for a result file: "<result>.run.json".
[[nodiscard]] std::string manifest_path_for(const std::string& result_path);

}  // namespace uwb::obs
