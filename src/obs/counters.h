#pragma once
/// \file counters.h
/// \brief Engine counter totals for one sweep run: the numbers the
///        subsystems already count internally (thread-pool task accounting,
///        channel-ensemble cache hits, FFT plan-cache reuse) surfaced as
///        one aggregate that SweepEngine fills on every run -- telemetry on
///        or off -- and the CLI turns into the run-manifest sidecar and the
///        end-of-run summary line.

#include <cstdint>
#include <vector>

namespace uwb::obs {

/// One pool worker's task accounting (engine/thread_pool.h).
struct PoolWorkerStats {
  std::uint64_t executed = 0;  ///< tasks this worker ran
  std::uint64_t stolen = 0;    ///< subset of executed taken from another worker's deque
  std::uint64_t idle_us = 0;   ///< time spent waiting between tasks while the pool ran

  [[nodiscard]] bool operator==(const PoolWorkerStats&) const = default;
};

/// Counter totals for one SweepEngine::run. Cache counters are deltas over
/// the run (the caches are long-lived and possibly shared), so a run's
/// counters describe that run alone.
struct RunCounters {
  std::vector<PoolWorkerStats> pool;  ///< one entry per worker thread

  std::uint64_t cache_hits = 0;        ///< channel ensembles served from memory
  std::uint64_t cache_disk_loads = 0;  ///< ... loaded from the binary store
  std::uint64_t cache_generated = 0;   ///< ... generated in-process
  std::uint64_t cache_sv_draws = 0;    ///< total S-V realize() calls paid for

  std::uint64_t fft_plan_hits = 0;    ///< FFT plan-cache lookups served
  std::uint64_t fft_plan_misses = 0;  ///< ... that had to build a plan

  double wall_s = 0.0;  ///< wall-clock for the whole run

  [[nodiscard]] std::uint64_t pool_executed() const {
    std::uint64_t n = 0;
    for (const PoolWorkerStats& w : pool) n += w.executed;
    return n;
  }
  [[nodiscard]] std::uint64_t pool_stolen() const {
    std::uint64_t n = 0;
    for (const PoolWorkerStats& w : pool) n += w.stolen;
    return n;
  }
  [[nodiscard]] std::uint64_t pool_idle_us() const {
    std::uint64_t n = 0;
    for (const PoolWorkerStats& w : pool) n += w.idle_us;
    return n;
  }

  [[nodiscard]] bool operator==(const RunCounters&) const = default;
};

}  // namespace uwb::obs
