#pragma once
/// \file modulation.h
/// \brief Pulse modulation schemes the discrete prototype compares (paper
///        Section 3 / Fig. 4): antipodal BPSK, OOK, binary PPM and 4-PAM.
///
/// A Modulator maps bits to per-bit pulse weights/time-offsets consumed by
/// uwb::pulse::slots_from_weights; a matching demapper converts correlator
/// soft outputs back to bits. Unit average energy per bit across schemes so
/// Eb/N0 comparisons are fair.

#include <memory>
#include <string>

#include "common/types.h"

namespace uwb::phy {

/// Scheme selector.
enum class Modulation {
  kBpsk,  ///< antipodal +/-1
  kOok,   ///< on-off, {0, sqrt(2)} for unit average energy
  kPpm,   ///< binary PPM: position 0 or delta
  kPam4,  ///< 4-level PAM, Gray mapped, 2 bits/symbol
};

/// Human-readable scheme name.
std::string to_string(Modulation m);

/// Per-symbol mapping produced by a modulator.
struct SymbolMapping {
  std::vector<double> weights;        ///< per-symbol amplitude
  std::vector<double> time_offsets_s; ///< per-symbol extra delay (PPM)
  int bits_per_symbol = 1;
};

/// Abstract mapper/demapper pair.
class Modulator {
 public:
  virtual ~Modulator() = default;

  /// Scheme implemented by this modulator.
  [[nodiscard]] virtual Modulation scheme() const noexcept = 0;

  [[nodiscard]] virtual int bits_per_symbol() const noexcept = 0;

  /// Maps bits to symbol weights/offsets. Bit count must be a multiple of
  /// bits_per_symbol().
  [[nodiscard]] virtual SymbolMapping map(const BitVec& bits) const = 0;

  /// Recovers bits from per-symbol soft correlator outputs. For PPM the
  /// receiver supplies one correlation per position: soft[2k] (position 0)
  /// and soft[2k+1] (position delta).
  [[nodiscard]] virtual BitVec demap(const std::vector<double>& soft) const = 0;

  /// Number of correlator outputs the demapper expects per symbol (1 for
  /// amplitude schemes, 2 for binary PPM).
  [[nodiscard]] virtual int correlations_per_symbol() const noexcept { return 1; }
};

/// PPM position offset used by the binary-PPM modulator, as a fraction of
/// the PRF frame (offset = fraction / prf).
inline constexpr double ppm_frame_fraction = 0.5;

/// Factory. \p prf_hz is needed by PPM to compute the position offset.
std::unique_ptr<Modulator> make_modulator(Modulation scheme, double prf_hz);

}  // namespace uwb::phy
