#include "phy/crc.h"

#include "common/error.h"
#include "phy/bits.h"

namespace uwb::phy {

uint16_t crc16_ccitt(const BitVec& bits) {
  uint16_t crc = 0xFFFF;
  for (auto b : bits) {
    const auto in = static_cast<uint16_t>(b & 1u);
    const auto msb = static_cast<uint16_t>((crc >> 15) & 1u);
    crc = static_cast<uint16_t>(crc << 1);
    if (msb ^ in) crc ^= 0x1021;
  }
  return crc;
}

uint32_t crc32_ieee(const BitVec& bits) {
  // Bitwise reflected CRC-32: shift right with reversed poly 0xEDB88320.
  uint32_t crc = 0xFFFFFFFFu;
  for (auto b : bits) {
    const uint32_t in = b & 1u;
    const uint32_t lsb = (crc ^ in) & 1u;
    crc >>= 1;
    if (lsb) crc ^= 0xEDB88320u;
  }
  return crc ^ 0xFFFFFFFFu;
}

BitVec append_crc16(const BitVec& bits) {
  BitVec out = bits;
  const BitVec crc = uint_to_bits(crc16_ccitt(bits), 16);
  out.insert(out.end(), crc.begin(), crc.end());
  return out;
}

bool check_crc16(const BitVec& bits_with_crc) {
  if (bits_with_crc.size() < 16) return false;
  const std::size_t n = bits_with_crc.size() - 16;
  const BitVec msg(bits_with_crc.begin(), bits_with_crc.begin() + static_cast<std::ptrdiff_t>(n));
  const auto expect = static_cast<uint16_t>(bits_to_uint(bits_with_crc, n, 16));
  return crc16_ccitt(msg) == expect;
}

BitVec append_crc32(const BitVec& bits) {
  BitVec out = bits;
  const BitVec crc = uint_to_bits(crc32_ieee(bits), 32);
  out.insert(out.end(), crc.begin(), crc.end());
  return out;
}

bool check_crc32(const BitVec& bits_with_crc) {
  if (bits_with_crc.size() < 32) return false;
  const std::size_t n = bits_with_crc.size() - 32;
  const BitVec msg(bits_with_crc.begin(), bits_with_crc.begin() + static_cast<std::ptrdiff_t>(n));
  const auto expect = static_cast<uint32_t>(bits_to_uint(bits_with_crc, n, 32));
  return crc32_ieee(msg) == expect;
}

}  // namespace uwb::phy
