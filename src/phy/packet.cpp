#include "phy/packet.h"

#include "common/error.h"
#include "phy/bits.h"
#include "phy/crc.h"
#include "phy/scrambler.h"

namespace uwb::phy {

namespace {

/// Barker-13 (+ 3 padding bits when sfd_length == 16): excellent aperiodic
/// autocorrelation makes a robust frame delimiter.
BitVec make_sfd(int length) {
  detail::require(length >= 13, "PacketFramer: SFD must be at least 13 bits");
  static constexpr uint8_t barker13[13] = {1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1};
  BitVec sfd(static_cast<std::size_t>(length), 0);
  for (std::size_t i = 0; i < 13; ++i) sfd[i] = barker13[i];
  // Pad with alternating bits.
  for (std::size_t i = 13; i < sfd.size(); ++i) sfd[i] = static_cast<uint8_t>(i & 1u);
  return sfd;
}

}  // namespace

PacketFramer::PacketFramer(const PacketConfig& config) : config_(config) {
  detail::require(config.preamble_repetitions >= 1,
                  "PacketFramer: preamble repetitions must be >= 1");
  pn_period_ = msequence(config.preamble_msequence_degree);
  preamble_.reserve(pn_period_.size() * static_cast<std::size_t>(config.preamble_repetitions));
  for (int r = 0; r < config.preamble_repetitions; ++r) {
    preamble_.insert(preamble_.end(), pn_period_.begin(), pn_period_.end());
  }
  sfd_ = make_sfd(config.sfd_length);
}

FramedPacket PacketFramer::frame(const BitVec& payload) const {
  detail::require(payload.size() < (1u << config_.header_length_bits),
                  "PacketFramer::frame: payload too long for length field");
  FramedPacket pkt;
  pkt.preamble = preamble_;
  pkt.sfd = sfd_;

  const BitVec length_field =
      uint_to_bits(payload.size(), config_.header_length_bits);
  pkt.header = append_crc16(length_field);
  pkt.payload = append_crc32(payload);

  pkt.all.reserve(pkt.preamble.size() + pkt.sfd.size() + pkt.header.size() +
                  pkt.payload.size());
  pkt.all.insert(pkt.all.end(), pkt.preamble.begin(), pkt.preamble.end());
  pkt.all.insert(pkt.all.end(), pkt.sfd.begin(), pkt.sfd.end());
  pkt.all.insert(pkt.all.end(), pkt.header.begin(), pkt.header.end());
  pkt.all.insert(pkt.all.end(), pkt.payload.begin(), pkt.payload.end());
  return pkt;
}

std::optional<DeframeResult> PacketFramer::deframe(const BitVec& post_sfd_bits) const {
  const std::size_t hdr_len = header_bits_on_air();
  if (post_sfd_bits.size() < hdr_len) return std::nullopt;

  const BitVec header(post_sfd_bits.begin(),
                      post_sfd_bits.begin() + static_cast<std::ptrdiff_t>(hdr_len));
  if (!check_crc16(header)) return std::nullopt;

  DeframeResult result;
  result.header_ok = true;
  result.payload_bits = static_cast<std::size_t>(
      bits_to_uint(header, 0, static_cast<std::size_t>(config_.header_length_bits)));

  const std::size_t body_len = result.payload_bits + 32;  // payload + CRC-32
  if (post_sfd_bits.size() < hdr_len + body_len) {
    result.payload_ok = false;
    return result;
  }
  const BitVec body(post_sfd_bits.begin() + static_cast<std::ptrdiff_t>(hdr_len),
                    post_sfd_bits.begin() + static_cast<std::ptrdiff_t>(hdr_len + body_len));
  result.payload_ok = check_crc32(body);
  result.payload.assign(body.begin(), body.end() - 32);
  return result;
}

}  // namespace uwb::phy
