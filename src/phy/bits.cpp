#include "phy/bits.h"

#include <algorithm>

#include "common/error.h"

namespace uwb::phy {

std::size_t hamming_distance(const BitVec& a, const BitVec& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t d = (a.size() > b.size() ? a.size() : b.size()) - n;
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] != 0) != (b[i] != 0)) ++d;
  }
  return d;
}

std::vector<uint8_t> pack_bits(const BitVec& bits) {
  std::vector<uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<uint8_t>(0x80u >> (i % 8));
  }
  return bytes;
}

BitVec unpack_bits(const std::vector<uint8_t>& bytes) {
  BitVec bits(bytes.size() * 8);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = (bytes[i / 8] >> (7 - i % 8)) & 1u;
  }
  return bits;
}

BitVec uint_to_bits(uint64_t value, int width) {
  detail::require(width >= 0 && width <= 64, "uint_to_bits: width must be in [0,64]");
  BitVec bits(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<uint8_t>((value >> (width - 1 - i)) & 1u);
  }
  return bits;
}

uint64_t bits_to_uint(const BitVec& bits, std::size_t first, std::size_t count) {
  detail::require(count <= 64, "bits_to_uint: count must be <= 64");
  detail::require(first + count <= bits.size(), "bits_to_uint: range out of bounds");
  uint64_t v = 0;
  for (std::size_t i = 0; i < count; ++i) {
    v = (v << 1) | (bits[first + i] & 1u);
  }
  return v;
}

std::string to_string(const BitVec& bits) {
  std::string s;
  s.reserve(bits.size());
  for (auto b : bits) s.push_back(b ? '1' : '0');
  return s;
}

BitVec xor_bits(const BitVec& a, const BitVec& b) {
  detail::require(a.size() == b.size(), "xor_bits: size mismatch");
  BitVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (a[i] ^ b[i]) & 1u;
  return out;
}

}  // namespace uwb::phy
