#pragma once
/// \file packet.h
/// \brief Packet framing: PN preamble for acquisition + channel estimation,
///        start-frame delimiter, header (rate/length) with CRC-16, payload
///        with CRC-32 -- the structure the paper's back end synchronizes to.

#include <cstdint>
#include <optional>

#include "common/types.h"

namespace uwb::phy {

/// Frame-level configuration shared by TX and RX.
struct PacketConfig {
  int preamble_msequence_degree = 7;  ///< preamble PN degree (period 2^d - 1)
  int preamble_repetitions = 4;       ///< PN period repeats for acq averaging
  int sfd_length = 16;                ///< start-frame-delimiter bits
  int header_length_bits = 16;        ///< payload length field + reserved
};

/// A framed packet's bit layout.
struct FramedPacket {
  BitVec preamble;   ///< repeated m-sequence
  BitVec sfd;        ///< fixed delimiter pattern (Barker-13 extended)
  BitVec header;     ///< length field + CRC-16
  BitVec payload;    ///< payload bits + CRC-32
  BitVec all;        ///< concatenation of the above

  [[nodiscard]] std::size_t total_bits() const noexcept { return all.size(); }
};

/// Result of deframing received bits.
struct DeframeResult {
  bool header_ok = false;
  bool payload_ok = false;           ///< CRC-32 verdict
  std::size_t payload_bits = 0;      ///< decoded length field
  BitVec payload;                    ///< recovered payload (without CRC)
};

/// Builds and parses packets.
class PacketFramer {
 public:
  explicit PacketFramer(const PacketConfig& config = {});

  [[nodiscard]] const PacketConfig& config() const noexcept { return config_; }

  /// Preamble bit pattern (deterministic for a config; what the receiver's
  /// acquisition correlates against).
  [[nodiscard]] const BitVec& preamble_bits() const noexcept { return preamble_; }

  /// One period of the preamble m-sequence.
  [[nodiscard]] const BitVec& preamble_period() const noexcept { return pn_period_; }

  /// SFD bit pattern.
  [[nodiscard]] const BitVec& sfd_bits() const noexcept { return sfd_; }

  /// Frames \p payload into a packet.
  [[nodiscard]] FramedPacket frame(const BitVec& payload) const;

  /// Parses the header+payload section (bits after the SFD). Returns
  /// nullopt when the header CRC fails (length field untrustworthy).
  [[nodiscard]] std::optional<DeframeResult> deframe(const BitVec& post_sfd_bits) const;

  /// Number of header bits on air (length field + CRC-16).
  [[nodiscard]] std::size_t header_bits_on_air() const noexcept {
    return static_cast<std::size_t>(config_.header_length_bits) + 16;
  }

 private:
  PacketConfig config_;
  BitVec pn_period_;
  BitVec preamble_;
  BitVec sfd_;
};

}  // namespace uwb::phy
