#include "phy/modulation.h"

#include <cmath>

#include "common/error.h"

namespace uwb::phy {

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kOok:  return "OOK";
    case Modulation::kPpm:  return "2-PPM";
    case Modulation::kPam4: return "4-PAM";
  }
  return "?";
}

namespace {

class BpskModulator final : public Modulator {
 public:
  [[nodiscard]] Modulation scheme() const noexcept override { return Modulation::kBpsk; }
  [[nodiscard]] int bits_per_symbol() const noexcept override { return 1; }

  [[nodiscard]] SymbolMapping map(const BitVec& bits) const override {
    SymbolMapping m;
    m.bits_per_symbol = 1;
    m.weights.reserve(bits.size());
    for (auto b : bits) m.weights.push_back(b ? -1.0 : 1.0);
    return m;
  }

  [[nodiscard]] BitVec demap(const std::vector<double>& soft) const override {
    BitVec bits(soft.size());
    for (std::size_t i = 0; i < soft.size(); ++i) bits[i] = soft[i] < 0.0 ? 1 : 0;
    return bits;
  }
};

class OokModulator final : public Modulator {
 public:
  [[nodiscard]] Modulation scheme() const noexcept override { return Modulation::kOok; }
  [[nodiscard]] int bits_per_symbol() const noexcept override { return 1; }

  [[nodiscard]] SymbolMapping map(const BitVec& bits) const override {
    SymbolMapping m;
    m.bits_per_symbol = 1;
    m.weights.reserve(bits.size());
    // "On" amplitude sqrt(2) keeps the average energy per bit at 1 for
    // equiprobable data, making Eb/N0 sweeps comparable with BPSK.
    for (auto b : bits) m.weights.push_back(b ? std::numbers::sqrt2 : 0.0);
    return m;
  }

  [[nodiscard]] BitVec demap(const std::vector<double>& soft) const override {
    // Optimal threshold for {0, sqrt(2)} at high SNR: half the "on" level.
    const double threshold = std::numbers::sqrt2 / 2.0;
    BitVec bits(soft.size());
    for (std::size_t i = 0; i < soft.size(); ++i) bits[i] = soft[i] > threshold ? 1 : 0;
    return bits;
  }
};

class PpmModulator final : public Modulator {
 public:
  explicit PpmModulator(double prf_hz) : delta_s_(ppm_frame_fraction / prf_hz) {
    detail::require(prf_hz > 0.0, "PpmModulator: prf must be positive");
  }

  [[nodiscard]] Modulation scheme() const noexcept override { return Modulation::kPpm; }
  [[nodiscard]] int bits_per_symbol() const noexcept override { return 1; }
  [[nodiscard]] int correlations_per_symbol() const noexcept override { return 2; }

  [[nodiscard]] SymbolMapping map(const BitVec& bits) const override {
    SymbolMapping m;
    m.bits_per_symbol = 1;
    m.weights.assign(bits.size(), 1.0);
    m.time_offsets_s.reserve(bits.size());
    for (auto b : bits) m.time_offsets_s.push_back(b ? delta_s_ : 0.0);
    return m;
  }

  [[nodiscard]] BitVec demap(const std::vector<double>& soft) const override {
    detail::require(soft.size() % 2 == 0, "PpmModulator::demap: need 2 correlations/symbol");
    BitVec bits(soft.size() / 2);
    for (std::size_t k = 0; k < bits.size(); ++k) {
      bits[k] = soft[2 * k + 1] > soft[2 * k] ? 1 : 0;
    }
    return bits;
  }

  [[nodiscard]] double delta_s() const noexcept { return delta_s_; }

 private:
  double delta_s_;
};

class Pam4Modulator final : public Modulator {
 public:
  [[nodiscard]] Modulation scheme() const noexcept override { return Modulation::kPam4; }
  [[nodiscard]] int bits_per_symbol() const noexcept override { return 2; }

  [[nodiscard]] SymbolMapping map(const BitVec& bits) const override {
    detail::require(bits.size() % 2 == 0, "Pam4Modulator::map: bit count must be even");
    SymbolMapping m;
    m.bits_per_symbol = 2;
    m.weights.reserve(bits.size() / 2);
    // Gray map (b1 b0): 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3, levels
    // scaled by 1/sqrt(5) for unit average energy per symbol pair of bits
    // (mean of {1,9} * 2 levels = 5 per symbol; Es = 2 Eb => scale).
    for (std::size_t k = 0; k < bits.size(); k += 2) {
      const int b1 = bits[k] & 1, b0 = bits[k + 1] & 1;
      double level = 0.0;
      if (b1 == 0 && b0 == 0) level = -3.0;
      else if (b1 == 0 && b0 == 1) level = -1.0;
      else if (b1 == 1 && b0 == 1) level = 1.0;
      else level = 3.0;
      m.weights.push_back(level * scale_);
    }
    return m;
  }

  [[nodiscard]] BitVec demap(const std::vector<double>& soft) const override {
    BitVec bits(soft.size() * 2);
    for (std::size_t k = 0; k < soft.size(); ++k) {
      const double v = soft[k] / scale_;
      int b1, b0;
      if (v < -2.0) { b1 = 0; b0 = 0; }
      else if (v < 0.0) { b1 = 0; b0 = 1; }
      else if (v < 2.0) { b1 = 1; b0 = 1; }
      else { b1 = 1; b0 = 0; }
      bits[2 * k] = static_cast<uint8_t>(b1);
      bits[2 * k + 1] = static_cast<uint8_t>(b0);
    }
    return bits;
  }

 private:
  // Es(mean) = (9+1+1+9)/4 = 5; with 2 bits/symbol unit-Eb needs Es = 2.
  double scale_ = std::sqrt(2.0 / 5.0);
};

}  // namespace

std::unique_ptr<Modulator> make_modulator(Modulation scheme, double prf_hz) {
  switch (scheme) {
    case Modulation::kBpsk: return std::make_unique<BpskModulator>();
    case Modulation::kOok:  return std::make_unique<OokModulator>();
    case Modulation::kPpm:  return std::make_unique<PpmModulator>(prf_hz);
    case Modulation::kPam4: return std::make_unique<Pam4Modulator>();
  }
  throw InvalidArgument("make_modulator: unknown scheme");
}

}  // namespace uwb::phy
