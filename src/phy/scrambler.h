#pragma once
/// \file scrambler.h
/// \brief LFSR machinery: maximal-length (m-) sequences for preambles and
///        spreading, and a self-synchronizing payload scrambler.
///
/// The paper's back end acquires on a PN preamble; gen-1 spreads each bit
/// over many pulses whose polarities follow a PN sequence. Both need
/// deterministic LFSR sequences.

#include <cstdint>

#include "common/types.h"

namespace uwb::phy {

/// Right-shift Fibonacci LFSR over GF(2). The register holds the sequence
/// history with the output in bit 0; \p taps bit j taps the register bit
/// carrying polynomial term x^(degree-j), so the leading x^degree term is
/// always bit 0 (e.g. x^7 + x^6 + 1 -> 0b11). Use msequence_taps() for
/// known-primitive polynomials.
class Lfsr {
 public:
  /// \p degree in [2, 32]; \p taps must be non-zero; \p seed non-zero.
  Lfsr(int degree, uint32_t taps, uint32_t seed = 1);

  /// Advances one step, returning the output bit.
  uint8_t step() noexcept;

  /// Generates \p n bits.
  BitVec generate(std::size_t n);

  /// Current register state.
  [[nodiscard]] uint32_t state() const noexcept { return state_; }

  void set_state(uint32_t state) noexcept { state_ = state & mask_; }

  [[nodiscard]] int degree() const noexcept { return degree_; }

  /// Sequence period for a maximal-length configuration: 2^degree - 1.
  [[nodiscard]] std::size_t max_period() const noexcept {
    return (std::size_t{1} << degree_) - 1;
  }

 private:
  int degree_;
  uint32_t taps_;
  uint32_t mask_;
  uint32_t state_;
};

/// Standard maximal-length tap masks for degrees 3..15 (one primitive
/// polynomial per degree). Throws for unsupported degrees.
uint32_t msequence_taps(int degree);

/// Maximal-length sequence of the full period 2^degree - 1 bits.
BitVec msequence(int degree, uint32_t seed = 1);

/// Maps bits to antipodal chips: 0 -> +1, 1 -> -1.
std::vector<double> to_chips(const BitVec& bits);

/// Multiplicative (self-synchronizing) scrambler x^7 + x^4 + 1 as used by
/// many PHY standards; descramble() inverts it without state agreement.
class Scrambler {
 public:
  explicit Scrambler(uint8_t seed = 0x7F);

  BitVec scramble(const BitVec& in);
  BitVec descramble(const BitVec& in);

  void reset(uint8_t seed = 0x7F) noexcept;

 private:
  uint8_t state_;
};

}  // namespace uwb::phy
