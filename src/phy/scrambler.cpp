#include "phy/scrambler.h"

#include "common/error.h"

namespace uwb::phy {

Lfsr::Lfsr(int degree, uint32_t taps, uint32_t seed) : degree_(degree), taps_(taps) {
  detail::require(degree >= 2 && degree <= 32, "Lfsr: degree must be in [2,32]");
  mask_ = (degree == 32) ? 0xFFFFFFFFu : ((1u << degree) - 1u);
  detail::require((taps & mask_) != 0, "Lfsr: taps must be non-zero");
  detail::require((seed & mask_) != 0, "Lfsr: seed must be non-zero");
  taps_ &= mask_;
  state_ = seed & mask_;
}

uint8_t Lfsr::step() noexcept {
  const auto out = static_cast<uint8_t>(state_ & 1u);
  // XOR of tapped stages becomes the new MSB.
  uint32_t fb = state_ & taps_;
  fb ^= fb >> 16;
  fb ^= fb >> 8;
  fb ^= fb >> 4;
  fb ^= fb >> 2;
  fb ^= fb >> 1;
  fb &= 1u;
  state_ = (state_ >> 1) | (fb << (degree_ - 1));
  return out;
}

BitVec Lfsr::generate(std::size_t n) {
  BitVec out(n);
  for (auto& b : out) b = step();
  return out;
}

uint32_t msequence_taps(int degree) {
  // Primitive polynomials as tap masks for the right-shift Fibonacci LFSR
  // implemented in Lfsr::step(): bit j of the mask taps the register bit
  // holding x^(degree - j), so the x^degree term is always bit 0. Standard
  // m-sequence polynomial tables.
  switch (degree) {
    case 3:  return 0b11;                 // x^3 + x^2 + 1
    case 4:  return 0b11;                 // x^4 + x^3 + 1
    case 5:  return 0b101;                // x^5 + x^3 + 1
    case 6:  return 0b11;                 // x^6 + x^5 + 1
    case 7:  return 0b11;                 // x^7 + x^6 + 1
    case 8:  return 0b11101;              // x^8 + x^6 + x^5 + x^4 + 1
    case 9:  return 0b10001;              // x^9 + x^5 + 1
    case 10: return 0b1001;               // x^10 + x^7 + 1
    case 11: return 0b101;                // x^11 + x^9 + 1
    case 12: return 0b100000111;          // x^12 + x^11 + x^10 + x^4 + 1
    case 13: return 0b100111;             // x^13 + x^12 + x^11 + x^8 + 1
    case 14: return 0b1000000000111;      // x^14 + x^13 + x^12 + x^2 + 1
    case 15: return 0b11;                 // x^15 + x^14 + 1
    default:
      throw InvalidArgument("msequence_taps: unsupported degree (3..15)");
  }
}

BitVec msequence(int degree, uint32_t seed) {
  Lfsr lfsr(degree, msequence_taps(degree), seed);
  return lfsr.generate(lfsr.max_period());
}

std::vector<double> to_chips(const BitVec& bits) {
  std::vector<double> chips(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) chips[i] = bits[i] ? -1.0 : 1.0;
  return chips;
}

Scrambler::Scrambler(uint8_t seed) : state_(seed & 0x7F) {
  detail::require((seed & 0x7F) != 0, "Scrambler: seed must be non-zero in low 7 bits");
}

void Scrambler::reset(uint8_t seed) noexcept { state_ = seed & 0x7F; }

BitVec Scrambler::scramble(const BitVec& in) {
  // Self-synchronizing x^7 + x^4 + 1: feedback from scrambled stream.
  BitVec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const uint8_t fb = static_cast<uint8_t>(((state_ >> 3) ^ (state_ >> 6)) & 1u);
    const uint8_t s = (in[i] ^ fb) & 1u;
    out[i] = s;
    state_ = static_cast<uint8_t>(((state_ << 1) | s) & 0x7F);
  }
  return out;
}

BitVec Scrambler::descramble(const BitVec& in) {
  // Inverse: feedback comes from the received (scrambled) stream, so the
  // descrambler resynchronizes after any 7 correct bits.
  BitVec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const uint8_t fb = static_cast<uint8_t>(((state_ >> 3) ^ (state_ >> 6)) & 1u);
    out[i] = (in[i] ^ fb) & 1u;
    state_ = static_cast<uint8_t>(((state_ << 1) | (in[i] & 1u)) & 0x7F);
  }
  return out;
}

}  // namespace uwb::phy
