#pragma once
/// \file crc.h
/// \brief CRC-16-CCITT and CRC-32 (IEEE 802.3) over bit vectors, used by the
///        packet framer for header and payload integrity checks.

#include <cstdint>

#include "common/types.h"

namespace uwb::phy {

/// CRC-16-CCITT (poly 0x1021, init 0xFFFF, no reflection), bitwise over the
/// message bits MSB-first.
uint16_t crc16_ccitt(const BitVec& bits);

/// CRC-32 IEEE (poly 0x04C11DB7, init 0xFFFFFFFF, reflected, final XOR),
/// computed over bits MSB-first within the logical stream.
uint32_t crc32_ieee(const BitVec& bits);

/// Appends the CRC-16 of \p bits (16 bits, MSB first).
BitVec append_crc16(const BitVec& bits);

/// True when the trailing 16 bits match the CRC-16 of the preceding bits.
bool check_crc16(const BitVec& bits_with_crc);

/// Appends the CRC-32 of \p bits (32 bits, MSB first).
BitVec append_crc32(const BitVec& bits);

/// True when the trailing 32 bits match the CRC-32 of the preceding bits.
bool check_crc32(const BitVec& bits_with_crc);

}  // namespace uwb::phy
