#pragma once
/// \file bits.h
/// \brief Bit-vector utilities: packing, comparison, random payloads.

#include <cstdint>
#include <cstddef>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace uwb::phy {

/// Number of differing positions; compares the first min(a,b) bits and
/// counts the length difference as errors.
std::size_t hamming_distance(const BitVec& a, const BitVec& b);

/// Packs bits (MSB first) into bytes; pads the final byte with zeros.
std::vector<uint8_t> pack_bits(const BitVec& bits);

/// Unpacks bytes into bits, MSB first.
BitVec unpack_bits(const std::vector<uint8_t>& bytes);

/// Converts an unsigned value to \p width bits, MSB first.
BitVec uint_to_bits(uint64_t value, int width);

/// Parses up to 64 bits (MSB first) back into an unsigned value.
uint64_t bits_to_uint(const BitVec& bits, std::size_t first, std::size_t count);

/// "0101..."-style debug rendering.
std::string to_string(const BitVec& bits);

/// XOR of two equal-length bit vectors.
BitVec xor_bits(const BitVec& a, const BitVec& b);

}  // namespace uwb::phy
