#pragma once
/// \file sampling.h
/// \brief Rare-event sampling policy for BER trials: single-direction
///        noise-scale importance sampling with exact likelihood reweighting.
///
/// Plain Monte-Carlo cannot reach the deep-waterfall BER region
/// (1e-5..1e-7) in budget. The policy here biases each trial toward error
/// events and undoes the bias with a per-trial likelihood ratio, so the
/// weighted estimate stays exactly unbiased for any receiver backend.
///
/// The bias is deliberately *one-dimensional*. Scaling the noise variance
/// of every waveform sample would make the likelihood ratio a product over
/// thousands of Gaussian components, whose variance grows exponentially
/// with the component count (weight degeneracy -- the estimator would be
/// unbiased but useless). Instead each trial targets one payload bit
/// (stratified by trial index) and scales the noise variance only along
/// the unit direction of that bit's received waveform -- the direction a
/// matched-filter/RAKE decision statistic actually projects onto. The
/// likelihood ratio then involves a single Gaussian component:
///
///   z ~ N(0, s^2 sigma^2) under the biased draw (nominal: N(0, sigma^2))
///   log w = log s - (z^2 / (2 sigma^2)) (1 - 1/s^2)
///
/// which is bounded above by log s, so weights can never explode. In
/// auto_ladder mode the run cycles a rung ladder and weights every trial
/// with the balance heuristic over the whole ladder (mixture_log_weight):
/// since the 1.0 rung keeps the nominal density in the mixture, weights
/// are bounded by the rung count, and error mechanisms the tilt direction
/// does not reach stay measurable instead of being suppressed. The
/// trial reports the *target bit's* error (bits = 1) with weight w;
/// averaging over trials stratifies the target across payload positions.
/// E_g[w * err_j] = E_f[err_j] holds exactly -- the unbiased components'
/// densities cancel in f/g -- so MLSE/ISI coupling needs no special case.

#include <cstddef>
#include <string>
#include <vector>

namespace uwb::stats {

/// Serialized as the spec's "sampling" block; `none` is the default and is
/// not written (plain Monte-Carlo).
enum class SamplingMode { kNone, kNoiseScale, kAutoLadder };

[[nodiscard]] std::string to_string(SamplingMode mode);
[[nodiscard]] SamplingMode sampling_mode_from_name(const std::string& name);

/// The engine-level importance-sampling policy carried on TrialOptions.
struct SamplingPolicy {
  SamplingMode mode = SamplingMode::kNone;
  double scale = 4.0;      ///< noise_scale mode: the one tilt scale (>= 1)
  double max_scale = 6.0;  ///< auto_ladder mode: top rung (>= 1)
  int levels = 4;          ///< auto_ladder mode: rung count (>= 1)

  [[nodiscard]] bool active() const noexcept { return mode != SamplingMode::kNone; }
  [[nodiscard]] bool operator==(const SamplingPolicy&) const = default;
};

/// Throws when the policy's parameters are out of range.
void validate(const SamplingPolicy& policy);

/// The deterministic scale ladder a policy runs: {scale} for noise_scale,
/// a geometric ladder 1.0 .. max_scale over `levels` rungs for auto_ladder
/// (the 1.0 rung keeps a defensive plain-measurement stratum in the mix),
/// and {} for none.
[[nodiscard]] std::vector<double> sampling_ladder(const SamplingPolicy& policy);

/// The tilt scale trial \p index runs at: ladder[index % rungs]. A pure
/// function of the global trial index, so any worker count and any shard
/// split produce the same per-trial bias.
[[nodiscard]] double trial_noise_scale(const SamplingPolicy& policy, std::size_t index);

/// Standard deviation of the *extra* noise component added along the tilt
/// direction: total variance along the direction becomes scale^2 * sigma2.
[[nodiscard]] double tilt_extra_stddev(double sigma2, double scale);

/// Log-likelihood ratio log(f/g) of the 1-D tilt given the realized
/// projection \p z onto the (unit) tilt direction. Bounded by log(scale).
[[nodiscard]] double tilt_log_weight(double z, double sigma2, double scale);

/// Balance-heuristic (multiple importance sampling) log weight for a trial
/// whose projection \p z was drawn from *one rung* of \p ladder: the
/// proposal in the ratio is the equal-frequency rung mixture
///   g(z) = (1/K) sum_k N(z; 0, s_k^2 sigma2),
/// the distribution the trial-index cycling realizes across the run. Two
/// properties make this the right weight for the ladder: it is the same
/// function of z for every rung (so the estimator is exactly the classic
/// balance heuristic), and because the 1.0 rung keeps the nominal density
/// inside the mixture the weight is bounded by K. Error mechanisms the
/// tilt does not reach (noise outside the target direction) therefore
/// keep O(1) weights and stay measurable at plain-MC efficiency, instead
/// of being suppressed by the per-rung ratio f/g_k ~ e^{-z^2/2sigma2}.
/// With a single-rung ladder this reduces to tilt_log_weight exactly.
[[nodiscard]] double mixture_log_weight(double z, double sigma2,
                                        const std::vector<double>& ladder);

}  // namespace uwb::stats
