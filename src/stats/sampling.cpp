#include "stats/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace uwb::stats {

std::string to_string(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::kNone: return "none";
    case SamplingMode::kNoiseScale: return "noise_scale";
    case SamplingMode::kAutoLadder: return "auto_ladder";
  }
  return "?";
}

SamplingMode sampling_mode_from_name(const std::string& name) {
  if (name == "none") return SamplingMode::kNone;
  if (name == "noise_scale") return SamplingMode::kNoiseScale;
  if (name == "auto_ladder") return SamplingMode::kAutoLadder;
  throw InvalidArgument("unknown sampling policy '" + name +
                        "' (expected none | noise_scale | auto_ladder)");
}

void validate(const SamplingPolicy& policy) {
  if (!policy.active()) return;
  if (policy.mode == SamplingMode::kNoiseScale) {
    detail::require(policy.scale >= 1.0, "sampling: scale must be >= 1");
  } else {
    detail::require(policy.max_scale >= 1.0, "sampling: max_scale must be >= 1");
    detail::require(policy.levels >= 1, "sampling: levels must be >= 1");
  }
}

std::vector<double> sampling_ladder(const SamplingPolicy& policy) {
  validate(policy);
  switch (policy.mode) {
    case SamplingMode::kNone: return {};
    case SamplingMode::kNoiseScale: return {policy.scale};
    case SamplingMode::kAutoLadder: break;
  }
  const auto levels = static_cast<std::size_t>(policy.levels);
  std::vector<double> ladder(levels);
  if (levels == 1) {
    ladder[0] = policy.max_scale;
    return ladder;
  }
  // Geometric from 1.0 (plain stratum) up to max_scale.
  const double ratio = std::pow(policy.max_scale, 1.0 / static_cast<double>(levels - 1));
  double s = 1.0;
  for (std::size_t k = 0; k < levels; ++k) {
    ladder[k] = s;
    s *= ratio;
  }
  ladder[levels - 1] = policy.max_scale;  // exact despite pow round-off
  return ladder;
}

double trial_noise_scale(const SamplingPolicy& policy, std::size_t index) {
  if (!policy.active()) return 1.0;
  const std::vector<double> ladder = sampling_ladder(policy);
  return ladder[index % ladder.size()];
}

double tilt_extra_stddev(double sigma2, double scale) {
  detail::require(sigma2 > 0.0, "tilt_extra_stddev: sigma2 must be > 0");
  detail::require(scale >= 1.0, "tilt_extra_stddev: scale must be >= 1");
  return std::sqrt(sigma2 * (scale * scale - 1.0));
}

double tilt_log_weight(double z, double sigma2, double scale) {
  detail::require(sigma2 > 0.0, "tilt_log_weight: sigma2 must be > 0");
  detail::require(scale >= 1.0, "tilt_log_weight: scale must be >= 1");
  const double s2 = scale * scale;
  return std::log(scale) - (z * z / (2.0 * sigma2)) * (1.0 - 1.0 / s2);
}

double mixture_log_weight(double z, double sigma2, const std::vector<double>& ladder) {
  detail::require(sigma2 > 0.0, "mixture_log_weight: sigma2 must be > 0");
  detail::require(!ladder.empty(), "mixture_log_weight: empty ladder");
  // log f(z) and log g_k(z) share the -log(sqrt(2 pi sigma2)) constant, so
  // it cancels from the ratio; accumulate the g_k sum with log-sum-exp.
  const double log_f = -z * z / (2.0 * sigma2);
  double max_log_g = -std::numeric_limits<double>::infinity();
  std::vector<double> log_g(ladder.size());
  for (std::size_t k = 0; k < ladder.size(); ++k) {
    const double s = ladder[k];
    detail::require(s >= 1.0, "mixture_log_weight: ladder scales must be >= 1");
    log_g[k] = -std::log(s) - z * z / (2.0 * s * s * sigma2);
    max_log_g = std::max(max_log_g, log_g[k]);
  }
  double sum = 0.0;
  for (const double lg : log_g) sum += std::exp(lg - max_log_g);
  const double log_mix = max_log_g + std::log(sum) - std::log(static_cast<double>(ladder.size()));
  return log_f - log_mix;
}

}  // namespace uwb::stats
