#pragma once
/// \file adaptive.h
/// \brief Stratified adaptive trial allocation: pure decision logic for
///        spending a remaining trial budget on the sweep points whose BER
///        estimate has the widest *relative* confidence interval. The
///        engine drives the loop (deterministic re-measurement = extension,
///        thanks to per-trial seeding); the policy here is engine-free and
///        unit-testable.

#include <cstddef>
#include <vector>

namespace uwb::stats {

/// One sweep point's allocation state.
struct AllocPoint {
  double ber = 0.0;            ///< current estimate
  double ci_halfwidth = 0.0;   ///< current interval half-width
  std::size_t trials = 0;      ///< trials spent so far
  bool saturated = false;      ///< point can no longer grow (caps hit / target met)
};

/// Relative CI width used for ranking. A zero-BER point is infinitely
/// wide -- it has measured nothing and gets first claim on budget.
[[nodiscard]] double relative_ci_width(double ber, double ci_halfwidth);

/// Index of the unsaturated point with the widest relative CI (lowest
/// index wins ties, so allocation is deterministic). -1 when every point
/// is saturated.
[[nodiscard]] int pick_widest(const std::vector<AllocPoint>& points);

/// Trials to grant the picked point this round: double its current spend,
/// floored at \p min_chunk, capped by \p remaining. 0 when no budget.
[[nodiscard]] std::size_t next_chunk(std::size_t current_trials, std::size_t remaining,
                                     std::size_t min_chunk = 64);

}  // namespace uwb::stats
