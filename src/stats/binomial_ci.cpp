#include "stats/binomial_ci.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace uwb::stats {

std::string to_string(CiMethod method) {
  switch (method) {
    case CiMethod::kWilson: return "wilson";
    case CiMethod::kClopperPearson: return "clopper_pearson";
    case CiMethod::kNormalWeighted: return "normal_weighted";
  }
  return "?";
}

CiMethod ci_method_from_name(const std::string& name) {
  if (name == "wilson") return CiMethod::kWilson;
  if (name == "clopper_pearson") return CiMethod::kClopperPearson;
  if (name == "normal_weighted") return CiMethod::kNormalWeighted;
  throw InvalidArgument("unknown CI method '" + name +
                      "' (expected wilson | clopper_pearson | normal_weighted)");
}

double normal_quantile(double p) {
  detail::require(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0, 1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the CDF brings the error below 1e-9.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

/// log Beta(a, b) via lgamma.
double log_beta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

/// Continued fraction for I_x(a, b) (modified Lentz). Valid and fast for
/// x < (a + 1) / (a + b + 2); callers use the symmetry otherwise.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-14;
  constexpr double kTiny = 1e-300;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((a + m2 - 1.0) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (a + b + m) * x / ((a + m2) * (a + m2 + 1.0));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Inverse of I_x(a, b) in x by bisection (64 iterations: ~2e-20 interval,
/// more than double precision). Monotone, so bisection is bulletproof.
double inc_beta_inv(double a, double b, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  detail::require(a > 0.0 && b > 0.0, "regularized_incomplete_beta: a, b must be > 0");
  detail::require(x >= 0.0 && x <= 1.0, "regularized_incomplete_beta: x must be in [0, 1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - log_beta(a, b)) / a;
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x);
  }
  const double front_sym =
      std::exp(b * std::log(1.0 - x) + a * std::log(x) - log_beta(b, a)) / b;
  return 1.0 - front_sym * beta_cf(b, a, 1.0 - x);
}

Interval clopper_pearson(std::size_t k, std::size_t n, double confidence) {
  detail::require(k <= n, "clopper_pearson: k must be <= n");
  detail::require(confidence > 0.0 && confidence < 1.0,
                  "clopper_pearson: confidence must be in (0, 1)");
  if (n == 0) return {0.0, 1.0};
  const double alpha = 1.0 - confidence;
  const auto kd = static_cast<double>(k);
  const auto nd = static_cast<double>(n);
  Interval ci;
  // Closed forms at the boundaries (Beta with a unit parameter).
  ci.lo = k == 0 ? 0.0 : inc_beta_inv(kd, nd - kd + 1.0, alpha / 2.0);
  ci.hi = k == n ? 1.0 : inc_beta_inv(kd + 1.0, nd - kd, 1.0 - alpha / 2.0);
  return ci;
}

Interval wilson(std::size_t k, std::size_t n, double confidence) {
  detail::require(k <= n, "wilson: k must be <= n");
  detail::require(confidence > 0.0 && confidence < 1.0,
                  "wilson: confidence must be in (0, 1)");
  if (n == 0) return {0.0, 1.0};
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const auto nd = static_cast<double>(n);
  const double p = static_cast<double>(k) / nd;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nd;
  const double center = (p + z2 / (2.0 * nd)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nd + z2 / (4.0 * nd * nd)) / denom;
  Interval ci;
  ci.lo = std::max(0.0, center - half);
  ci.hi = std::min(1.0, center + half);
  return ci;
}

Interval binomial_interval(CiMethod method, std::size_t k, std::size_t n,
                           double confidence) {
  switch (method) {
    case CiMethod::kWilson: return wilson(k, n, confidence);
    case CiMethod::kClopperPearson: return clopper_pearson(k, n, confidence);
    case CiMethod::kNormalWeighted: break;
  }
  throw InvalidArgument(
      "binomial_interval: normal_weighted needs weight sums, not counts "
      "(see stats::WeightedBer)");
}

}  // namespace uwb::stats
