#pragma once
/// \file binomial_ci.h
/// \brief Binomial proportion confidence intervals for BER estimation: the
///        exact Clopper-Pearson interval (via the regularized incomplete
///        beta function), the Wilson score interval (cheap, closed-form --
///        what stop rules poll every commit), and the normal interval the
///        weighted importance-sampling estimator reports.

#include <cstddef>
#include <string>

namespace uwb::stats {

/// A two-sided confidence interval on a proportion, clamped to [0, 1].
struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] double halfwidth() const noexcept { return 0.5 * (hi - lo); }
};

/// Which interval a measured point reports. kNormalWeighted is not a
/// binomial method -- it is what weighted (importance-sampled) estimates
/// carry, recorded here so the result doc names one vocabulary.
enum class CiMethod { kWilson, kClopperPearson, kNormalWeighted };

[[nodiscard]] std::string to_string(CiMethod method);

/// Parses a method name ("wilson" | "clopper_pearson" | "normal_weighted").
/// Throws on anything else -- a typo'd method must not silently select one.
[[nodiscard]] CiMethod ci_method_from_name(const std::string& name);

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// refined with one Halley step -- |error| < 1e-9 over (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Lentz), a, b > 0, x in [0, 1].
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

/// Exact Clopper-Pearson interval for k successes in n trials at the given
/// two-sided confidence (e.g. 0.95). n == 0 returns the vacuous [0, 1].
[[nodiscard]] Interval clopper_pearson(std::size_t k, std::size_t n,
                                       double confidence = 0.95);

/// Wilson score interval for k successes in n trials.
[[nodiscard]] Interval wilson(std::size_t k, std::size_t n, double confidence = 0.95);

/// Dispatch on \p method (kNormalWeighted is rejected: weighted intervals
/// need the weight sums, not just counts -- see WeightedBer::interval).
[[nodiscard]] Interval binomial_interval(CiMethod method, std::size_t k, std::size_t n,
                                         double confidence = 0.95);

}  // namespace uwb::stats
