#include "stats/weighted.h"

#include <algorithm>
#include <cmath>

namespace uwb::stats {

void WeightedBer::add(double weight, std::size_t errors, std::size_t trial_bits) noexcept {
  trials += 1;
  bits += trial_bits;
  raw_errors += errors;
  const double we = weight * static_cast<double>(errors);
  w_sum += weight;
  w_sq_sum += weight * weight;
  we_sum += we;
  we_sq_sum += we * we;
}

double WeightedBer::ber() const noexcept {
  if (bits == 0) return 0.0;
  return we_sum / static_cast<double>(bits);
}

double WeightedBer::ess() const noexcept {
  if (w_sq_sum <= 0.0) return 0.0;
  return w_sum * w_sum / w_sq_sum;
}

double WeightedBer::halfwidth(double confidence) const {
  if (trials < 2 || bits == 0) return bits == 0 ? 1.0 : 0.5;
  const auto m = static_cast<double>(trials);
  // Sample variance of y_i = w_i * e_i; Var(sum y) = m * s_y^2.
  double s2 = (we_sq_sum - we_sum * we_sum / m) / (m - 1.0);
  s2 = std::max(0.0, s2);  // guard round-off
  const double z = normal_quantile(0.5 + confidence / 2.0);
  return z * std::sqrt(m * s2) / static_cast<double>(bits);
}

Interval WeightedBer::interval(double confidence) const {
  if (trials < 2 || bits == 0) return {0.0, 1.0};
  const double p = ber();
  const double h = halfwidth(confidence);
  Interval ci;
  ci.lo = std::max(0.0, p - h);
  ci.hi = std::min(1.0, p + h);
  return ci;
}

}  // namespace uwb::stats
