#include "stats/adaptive.h"

#include <algorithm>
#include <limits>

namespace uwb::stats {

double relative_ci_width(double ber, double ci_halfwidth) {
  if (ber <= 0.0) return std::numeric_limits<double>::infinity();
  return ci_halfwidth / ber;
}

int pick_widest(const std::vector<AllocPoint>& points) {
  int best = -1;
  double best_width = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].saturated) continue;
    const double width = relative_ci_width(points[i].ber, points[i].ci_halfwidth);
    if (width > best_width) {
      best_width = width;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::size_t next_chunk(std::size_t current_trials, std::size_t remaining,
                       std::size_t min_chunk) {
  if (remaining == 0) return 0;
  return std::min(remaining, std::max(current_trials, min_chunk));
}

}  // namespace uwb::stats
