#pragma once
/// \file weighted.h
/// \brief Weighted BER accumulator for importance-sampled trials: weighted
///        error sums, a sample-variance-based normal interval, and the
///        effective-sample-size diagnostic. Accumulation is plain addition
///        of per-trial terms, so committing trials in index order keeps the
///        totals byte-identical for any worker count.

#include <cstddef>

#include "stats/binomial_ci.h"

namespace uwb::stats {

/// Accumulates weighted per-trial error counts. The estimate is
///   ber = sum_i(w_i * e_i) / sum_i(bits_i)
/// where trial i contributed e_i raw errors over bits_i measured bits with
/// likelihood weight w_i (plain trials are w = 1). The variance estimate
/// treats y_i = w_i * e_i as i.i.d. samples -- exact for equal per-trial
/// bits, conservative otherwise.
struct WeightedBer {
  std::size_t trials = 0;
  std::size_t bits = 0;        ///< unweighted denominator
  std::size_t raw_errors = 0;  ///< unweighted error count (diagnostic)
  double w_sum = 0.0;          ///< sum of weights
  double w_sq_sum = 0.0;       ///< sum of squared weights
  double we_sum = 0.0;         ///< sum of w * errors
  double we_sq_sum = 0.0;      ///< sum of (w * errors)^2

  void add(double weight, std::size_t errors, std::size_t trial_bits) noexcept;

  [[nodiscard]] double ber() const noexcept;

  /// Kish effective sample size (sum w)^2 / (sum w^2): how many plain
  /// trials the weighted set is worth. 0 when empty.
  [[nodiscard]] double ess() const noexcept;

  /// Half-width of the normal interval on the BER estimate.
  [[nodiscard]] double halfwidth(double confidence = 0.95) const;

  /// Normal interval, clamped to [0, 1]. Degenerate inputs (< 2 trials,
  /// no bits) return the vacuous [0, 1].
  [[nodiscard]] Interval interval(double confidence = 0.95) const;
};

}  // namespace uwb::stats
