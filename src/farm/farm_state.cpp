#include "farm/farm_state.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "io/spec_io.h"

namespace uwb::farm {

namespace {

[[noreturn]] void unknown_key(const char* what, const std::string& key) {
  throw InvalidArgument(std::string("farm ") + what + ": unknown key '" + key + "'");
}

std::size_t as_size(const io::JsonValue& v) {
  return static_cast<std::size_t>(v.as_uint64());
}

std::string digest_hex(std::uint64_t digest) {
  char text[17];
  std::snprintf(text, sizeof text, "%016llx", static_cast<unsigned long long>(digest));
  return text;
}

std::uint64_t digest_from_hex(const char* what, const std::string& text) {
  detail::require(text.size() == 16 &&
                      text.find_first_not_of("0123456789abcdef") == std::string::npos,
                  std::string("farm state: malformed ") + what + " '" + text + "'");
  return std::stoull(text, nullptr, 16);
}

void check_version(const char* what, const io::JsonValue& doc) {
  const io::JsonValue* version = doc.find("version");
  detail::require(version != nullptr,
                  std::string("farm ") + what + ": missing format version");
  detail::require(
      version->as_int() == kFarmFormatVersion,
      std::string("farm ") + what + ": format version " +
          version->number_text() + " does not match this binary's version " +
          std::to_string(kFarmFormatVersion) +
          " -- re-run the sweep with matching tools instead of mixing checkpoints");
}

io::JsonValue retry_to_json(const RetryPolicy& retry) {
  io::JsonValue out = io::JsonValue::object();
  out.set("max_attempts", io::JsonValue::number(static_cast<std::uint64_t>(retry.max_attempts)));
  out.set("timeout_s", io::JsonValue::number(retry.timeout_s));
  out.set("backoff_base_s", io::JsonValue::number(retry.backoff_base_s));
  out.set("backoff_max_s", io::JsonValue::number(retry.backoff_max_s));
  return out;
}

RetryPolicy retry_from_json(const io::JsonValue& v) {
  RetryPolicy retry;
  for (const auto& [key, val] : v.members()) {
    if (key == "max_attempts") retry.max_attempts = as_size(val);
    else if (key == "timeout_s") retry.timeout_s = val.as_double();
    else if (key == "backoff_base_s") retry.backoff_base_s = val.as_double();
    else if (key == "backoff_max_s") retry.backoff_max_s = val.as_double();
    else unknown_key("retry policy", key);
  }
  detail::require(retry.max_attempts >= 1, "farm retry policy: max_attempts must be >= 1");
  return retry;
}

}  // namespace

double backoff_delay_s(const RetryPolicy& retry, std::uint64_t seed, std::size_t shard,
                       std::size_t next_attempt) {
  double delay = retry.backoff_base_s;
  for (std::size_t a = 2; a < next_attempt && delay < retry.backoff_max_s; ++a) {
    delay *= 2.0;
  }
  if (delay > retry.backoff_max_s) delay = retry.backoff_max_s;
  // Deterministic jitter in [0.5, 1.5): spreads retry stampedes while
  // keeping every delay a pure function of (seed, shard, attempt).
  Rng rng(seed ^ 0xFA12'0000'0000'0000ULL);
  const double jitter =
      0.5 + rng.fork(shard).fork(next_attempt).uniform();
  return delay * jitter;
}

std::string to_string(ShardStatus status) {
  switch (status) {
    case ShardStatus::kPending: return "pending";
    case ShardStatus::kDone: return "done";
    case ShardStatus::kFailed: return "failed";
  }
  return "?";
}

ShardStatus shard_status_from_string(const std::string& name) {
  if (name == "pending") return ShardStatus::kPending;
  if (name == "done") return ShardStatus::kDone;
  if (name == "failed") return ShardStatus::kFailed;
  throw InvalidArgument("farm state: unknown shard status '" + name + "'");
}

std::uint64_t fnv1a_digest(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// --------------------------------------------------------------- FarmSpec ----

io::JsonValue farm_spec_to_json(const FarmSpec& spec) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("version", io::JsonValue::number(kFarmFormatVersion));
  doc.set("scenario", io::JsonValue::string(spec.scenario));
  doc.set("seed", io::JsonValue::number(spec.seed));
  doc.set("stop", io::to_json(spec.stop));
  doc.set("shard_count", io::JsonValue::number(static_cast<std::uint64_t>(spec.shard_count)));
  doc.set("num_points", io::JsonValue::number(static_cast<std::uint64_t>(spec.num_points)));
  doc.set("workers_per_shard",
          io::JsonValue::number(static_cast<std::uint64_t>(spec.workers_per_shard)));
  doc.set("channel_cache_dir", io::JsonValue::string(spec.channel_cache_dir));
  doc.set("progress", io::JsonValue::boolean(spec.progress));
  doc.set("retry", retry_to_json(spec.retry));
  return doc;
}

FarmSpec farm_spec_from_json(const io::JsonValue& v) {
  check_version("spec", v);
  FarmSpec spec;
  for (const auto& [key, val] : v.members()) {
    if (key == "version") continue;
    else if (key == "scenario") spec.scenario = val.as_string();
    else if (key == "seed") spec.seed = val.as_uint64();
    else if (key == "stop") spec.stop = io::ber_stop_from_json(val);
    else if (key == "shard_count") spec.shard_count = as_size(val);
    else if (key == "num_points") spec.num_points = as_size(val);
    else if (key == "workers_per_shard") spec.workers_per_shard = as_size(val);
    else if (key == "channel_cache_dir") spec.channel_cache_dir = val.as_string();
    else if (key == "progress") spec.progress = val.as_bool();
    else if (key == "retry") spec.retry = retry_from_json(val);
    else unknown_key("spec", key);
  }
  detail::require(spec.shard_count >= 1, "farm spec: shard_count must be >= 1");
  return spec;
}

// -------------------------------------------------------------- FarmState ----

io::JsonValue farm_state_to_json(const FarmState& state) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("version", io::JsonValue::number(kFarmFormatVersion));
  doc.set("plan_digest", io::JsonValue::string(digest_hex(state.plan_digest)));
  io::JsonValue shards = io::JsonValue::array();
  for (const ShardState& shard : state.shards) {
    io::JsonValue entry = io::JsonValue::object();
    entry.set("index", io::JsonValue::number(static_cast<std::uint64_t>(shard.index)));
    entry.set("status", io::JsonValue::string(to_string(shard.status)));
    entry.set("attempts", io::JsonValue::number(static_cast<std::uint64_t>(shard.attempts)));
    entry.set("last_outcome", io::JsonValue::string(shard.last_outcome));
    entry.set("wall_s", io::JsonValue::number(shard.wall_s));
    entry.set("trials", io::JsonValue::number(shard.trials));
    entry.set("points", io::JsonValue::number(shard.points));
    entry.set("digest", io::JsonValue::string(digest_hex(shard.digest)));
    shards.push_back(std::move(entry));
  }
  doc.set("shards", std::move(shards));
  return doc;
}

FarmState farm_state_from_json(const io::JsonValue& v) {
  check_version("state", v);
  FarmState state;
  bool saw_digest = false;
  for (const auto& [key, val] : v.members()) {
    if (key == "version") continue;
    else if (key == "plan_digest") {
      state.plan_digest = digest_from_hex("plan_digest", val.as_string());
      saw_digest = true;
    } else if (key == "shards") {
      for (const io::JsonValue& entry : val.items()) {
        ShardState shard;
        for (const auto& [skey, sval] : entry.members()) {
          if (skey == "index") shard.index = as_size(sval);
          else if (skey == "status") shard.status = shard_status_from_string(sval.as_string());
          else if (skey == "attempts") shard.attempts = as_size(sval);
          else if (skey == "last_outcome") shard.last_outcome = sval.as_string();
          else if (skey == "wall_s") shard.wall_s = sval.as_double();
          else if (skey == "trials") shard.trials = sval.as_uint64();
          else if (skey == "points") shard.points = sval.as_uint64();
          else if (skey == "digest")
            shard.digest = digest_from_hex("shard digest", sval.as_string());
          else unknown_key("state shard", skey);
        }
        state.shards.push_back(std::move(shard));
      }
    } else {
      unknown_key("state", key);
    }
  }
  detail::require(saw_digest, "farm state: missing plan_digest");
  for (std::size_t i = 0; i < state.shards.size(); ++i) {
    detail::require(state.shards[i].index == i,
                    "farm state: shard entries out of order or missing (entry " +
                        std::to_string(i) + " has index " +
                        std::to_string(state.shards[i].index) + ")");
  }
  return state;
}

// ------------------------------------------------------------------ files ----

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  detail::require(in.good(), "farm: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  detail::require(!in.bad(), "farm: read from '" + path + "' failed");
  return buffer.str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    detail::require(out.good(), "farm: cannot open '" + tmp + "' for writing");
    out << content;
    out.flush();
    detail::require(out.good(), "farm: write to '" + tmp + "' failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  detail::require(!ec, "farm: rename '" + tmp + "' -> '" + path + "' failed: " +
                           ec.message());
}

void save_farm_spec(const FarmSpec& spec, const std::string& path) {
  write_file_atomic(path, io::dump_json_pretty(farm_spec_to_json(spec)) + "\n");
}

FarmSpec load_farm_spec(const std::string& path) {
  try {
    return farm_spec_from_json(io::parse_json(read_file(path)));
  } catch (const Error& e) {
    throw InvalidArgument("farm: loading '" + path + "': " + e.what());
  }
}

void save_farm_state(const FarmState& state, const std::string& path) {
  write_file_atomic(path, io::dump_json_pretty(farm_state_to_json(state)) + "\n");
}

FarmState load_farm_state(const std::string& path) {
  try {
    return farm_state_from_json(io::parse_json(read_file(path)));
  } catch (const Error& e) {
    throw InvalidArgument("farm: loading '" + path + "': " + e.what());
  }
}

}  // namespace uwb::farm
