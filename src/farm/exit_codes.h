#pragma once
/// \file exit_codes.h
/// \brief The worker exit-code contract between uwb_sweep and uwb_farm.
///
/// The farm supervises uwb_sweep shard processes and must tell a failure
/// that will heal on retry (a crash, an interrupted run, a flaky runtime
/// error) from one that will reproduce forever (bad arguments, a broken
/// spec file). That classification keys on these exit codes, so they are a
/// contract: uwb_sweep promises them, docs/cli.md documents them, and the
/// farm's retry policy (src/farm/runner.h) consumes them. Death by signal
/// is reported by the OS, not an exit code, and always counts as transient.

namespace uwb::farm {

/// Clean completion; the result file is complete and valid.
inline constexpr int kExitOk = 0;

/// A runtime failure mid-run (an exception after the spec loaded cleanly).
/// Transient from the farm's point of view: worth a bounded retry.
inline constexpr int kExitRuntime = 1;

/// Bad command-line arguments (unknown flag, malformed value, usage).
/// Permanent: the same argv will fail the same way every time.
inline constexpr int kExitBadArgs = 2;

/// The scenario spec failed to load or validate (missing file, malformed
/// JSON, unknown key, unsupported option). Permanent.
inline constexpr int kExitSpecLoad = 3;

/// SIGINT/SIGTERM arrived mid-sweep: a *valid partial* result document and
/// its run manifest were flushed before exiting. Transient: a retry reruns
/// the shard from scratch and overwrites the partial file.
inline constexpr int kExitInterrupted = 4;

}  // namespace uwb::farm
