#pragma once
/// \file farm_state.h
/// \brief The farm's on-disk checkpoint store: a versioned run directory
///        that makes a killed farm resumable instead of recomputable.
///
/// Layout of a run directory (everything strict io::json, versioned like
/// the .cir sidecars -- a version bump or tampered file fails resume
/// loudly instead of guessing):
///
///   <run_dir>/farm.json          the FarmSpec: how this run is configured
///                                (seed, stop rule, shard count, retry
///                                policy). Written once at init.
///   <run_dir>/scenario.json      the fully expanded scenario plan every
///                                worker runs (`uwb_sweep --file`). Written
///                                once at init; its FNV-1a digest is pinned
///                                in state.json so a swapped plan cannot
///                                silently merge with old shard results.
///   <run_dir>/state.json         the journal: per-shard status/attempts,
///                                rewritten atomically (tmp + rename) after
///                                every state transition.
///   <run_dir>/shards/shard_<i>.json      completed shard result documents
///                                        (plus uwb_sweep's .run.json
///                                        manifest sidecars).
///   <run_dir>/logs/shard_<i>.a<k>.log    per-attempt worker stdout+stderr.
///   <run_dir>/manifest.json      the farm-level manifest: run status
///                                (complete vs partial), per-shard
///                                attempts/wall/trials aggregated from the
///                                workers' obs::RunManifest sidecars.
///
/// A shard is `done` only after its result file parsed and validated
/// against the plan (header match + exactly the indices i mod N). Resume
/// re-validates every `done` shard, so a checkpoint tampered with between
/// runs is caught before it can poison a merge.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/scenario_registry.h"
#include "io/json.h"
#include "sim/ber_simulator.h"

namespace uwb::farm {

/// Format version of farm.json/state.json; a mismatch fails resume loudly.
inline constexpr int kFarmFormatVersion = 1;

/// Bounded-retry policy for one shard process.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< total attempts (1 = never retry)
  double timeout_s = 0.0;        ///< per-attempt wall clock; 0 = unlimited
  double backoff_base_s = 0.25;  ///< first retry delay (doubles per retry)
  double backoff_max_s = 8.0;    ///< backoff ceiling before jitter

  [[nodiscard]] bool operator==(const RetryPolicy&) const = default;
};

/// Retry delay before attempt \p next_attempt (2, 3, ...) of \p shard:
/// exponential backoff capped at backoff_max_s, scaled by a deterministic
/// jitter factor in [0.5, 1.5) drawn from (seed, shard, attempt) -- so
/// retries of many shards spread out instead of stampeding, yet tests can
/// predict every delay.
[[nodiscard]] double backoff_delay_s(const RetryPolicy& retry, std::uint64_t seed,
                                     std::size_t shard, std::size_t next_attempt);

/// Everything that configures a farm run (written once to farm.json).
struct FarmSpec {
  std::string scenario;  ///< expanded plan's display name
  /// Sweep seed handed to every worker (default = the engine default, so
  /// a farm run with no --seed matches a plain uwb_sweep run exactly).
  std::uint64_t seed = 0x5eed'0000'cafe'f00dULL;
  sim::BerStop stop;               ///< stop rule handed to every worker
  std::size_t shard_count = 1;
  std::size_t num_points = 0;      ///< points in the expanded plan
  std::size_t workers_per_shard = 0;  ///< uwb_sweep --workers (0 = default)
  std::string channel_cache_dir;   ///< worker --channel-cache ("" = none)
  /// Workers run with `--progress --progress-format json`: their logs then
  /// carry machine-readable heartbeat lines that `uwb_farm status`
  /// aggregates into live per-shard progress. Journaled so resume keeps
  /// streaming.
  bool progress = false;
  RetryPolicy retry;

  [[nodiscard]] bool operator==(const FarmSpec&) const = default;
};

enum class ShardStatus { kPending, kDone, kFailed };

[[nodiscard]] std::string to_string(ShardStatus status);
[[nodiscard]] ShardStatus shard_status_from_string(const std::string& name);

/// One shard's journaled state.
struct ShardState {
  std::size_t index = 0;
  ShardStatus status = ShardStatus::kPending;
  std::size_t attempts = 0;     ///< attempts launched so far
  std::string last_outcome;     ///< "ok", "signal 9", "timeout", "exit 3", ...
  double wall_s = 0.0;          ///< successful attempt's wall clock
  std::uint64_t trials = 0;     ///< total trials in the shard's result doc
  std::uint64_t points = 0;     ///< points in the shard's result doc
  /// FNV-1a of the validated result file's bytes, journaled when the shard
  /// goes done; resume re-digests the file, so *any* byte flipped in a
  /// checkpointed result between runs fails the load (not just header or
  /// coverage edits).
  std::uint64_t digest = 0;

  [[nodiscard]] bool operator==(const ShardState&) const = default;
};

/// The whole journal (state.json).
struct FarmState {
  std::uint64_t plan_digest = 0;  ///< FNV-1a of scenario.json's bytes
  std::vector<ShardState> shards;

  [[nodiscard]] bool operator==(const FarmState&) const = default;
};

/// FNV-1a 64-bit over raw bytes -- the digest pinning scenario.json.
[[nodiscard]] std::uint64_t fnv1a_digest(const std::string& bytes);

/// Conventional file locations under a run directory.
struct RunPaths {
  std::string run_dir;

  [[nodiscard]] std::string farm_json() const { return run_dir + "/farm.json"; }
  [[nodiscard]] std::string state_json() const { return run_dir + "/state.json"; }
  [[nodiscard]] std::string scenario_json() const { return run_dir + "/scenario.json"; }
  [[nodiscard]] std::string manifest_json() const { return run_dir + "/manifest.json"; }
  [[nodiscard]] std::string shards_dir() const { return run_dir + "/shards"; }
  [[nodiscard]] std::string logs_dir() const { return run_dir + "/logs"; }
  [[nodiscard]] std::string shard_result(std::size_t shard) const {
    return shards_dir() + "/shard_" + std::to_string(shard) + ".json";
  }
  [[nodiscard]] std::string shard_log(std::size_t shard, std::size_t attempt) const {
    return logs_dir() + "/shard_" + std::to_string(shard) + ".a" +
           std::to_string(attempt) + ".log";
  }
};

// ------------------------------------------------------------ (de)serial ----

/// Strict round-tripping serialization; from_json throws InvalidArgument
/// on unknown keys, missing keys, or a version mismatch.
[[nodiscard]] io::JsonValue farm_spec_to_json(const FarmSpec& spec);
[[nodiscard]] FarmSpec farm_spec_from_json(const io::JsonValue& v);
[[nodiscard]] io::JsonValue farm_state_to_json(const FarmState& state);
[[nodiscard]] FarmState farm_state_from_json(const io::JsonValue& v);

// ----------------------------------------------------------------- files ----

/// Reads a whole file. \throws InvalidArgument when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Writes \p content to \p path via a temp file + atomic rename, creating
/// parent directories -- a crash mid-write can never leave a truncated
/// journal behind.
void write_file_atomic(const std::string& path, const std::string& content);

void save_farm_spec(const FarmSpec& spec, const std::string& path);
[[nodiscard]] FarmSpec load_farm_spec(const std::string& path);
void save_farm_state(const FarmState& state, const std::string& path);
[[nodiscard]] FarmState load_farm_state(const std::string& path);

}  // namespace uwb::farm
