#pragma once
/// \file fault.h
/// \brief Deterministic fault injection for the worker path (test-only).
///
/// Kill/hang/corrupt failure modes of a sweep farm are impossible to test
/// honestly by waiting for real crashes, so the worker (uwb_sweep) carries
/// an environment hook that makes them reproducible on demand:
///
///   UWB_FARM_FAULT=crash:shard3,hang:shard5,corrupt:shard2
///
/// Each entry is `<kind>:<shard>[@<times>]`; `shardN` and bare `N` both
/// name shard index N (the worker's --shard i/N index; an unsharded run is
/// shard 0). Kinds:
///
///   crash    raise(SIGKILL) before any work: the process dies exactly the
///            way an OOM kill or power loss would, leaving no result file.
///   hang     sleep forever: exercises the farm's per-shard timeout, which
///            SIGKILLs the worker.
///   corrupt  write garbage over the --out path and exit 0: a worker that
///            *claims* success with a corrupt checkpoint, exercising the
///            farm's result validation.
///
/// `@<times>` limits a fault to the first <times> firings, counted across
/// processes through marker files in $UWB_FARM_FAULT_DIR (required for @):
/// `crash:shard3@1` kills the first attempt and lets the retry through --
/// the deterministic "worker died once, farm recovered" scenario the
/// kill-and-resume tests and CI are built on. Without @ the fault always
/// fires. Unset environment means zero overhead: the injector is inert.
///
/// This hook is for tests and CI only; docs/farm.md documents it with that
/// warning.

#include <cstddef>
#include <string>
#include <vector>

namespace uwb::farm {

/// Environment variables the worker-side hook reads.
inline constexpr const char* kFaultEnv = "UWB_FARM_FAULT";
inline constexpr const char* kFaultDirEnv = "UWB_FARM_FAULT_DIR";

enum class FaultKind { kCrash, kHang, kCorrupt };

/// Human-readable kind name ("crash" / "hang" / "corrupt").
[[nodiscard]] std::string to_string(FaultKind kind);

/// One parsed fault entry.
struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  std::size_t shard = 0;
  long times = -1;  ///< -1 = always fire; >= 1 = first N firings only

  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

/// Parses a UWB_FARM_FAULT value. \throws InvalidArgument on malformed
/// input (unknown kind, bad shard, times < 1) -- a typo'd fault plan must
/// not silently run fault-free.
[[nodiscard]] std::vector<FaultSpec> parse_fault_plan(const std::string& text);

/// The worker-side injector: built once from the environment, fired at the
/// start of a sweep run. Inert (and free) when UWB_FARM_FAULT is unset.
class FaultInjector {
 public:
  /// Inert injector.
  FaultInjector() = default;

  FaultInjector(std::vector<FaultSpec> plan, std::size_t shard_index,
                std::string marker_dir);

  /// Reads UWB_FARM_FAULT / UWB_FARM_FAULT_DIR for shard \p shard_index.
  /// \throws InvalidArgument on a malformed plan, or on a @times entry
  ///         without UWB_FARM_FAULT_DIR.
  [[nodiscard]] static FaultInjector from_env(std::size_t shard_index);

  /// True when some fault targets this worker's shard.
  [[nodiscard]] bool armed() const noexcept { return !plan_.empty(); }

  /// Fires the first still-live fault for this shard, if any: crash and
  /// hang never return; corrupt writes garbage to \p out_path and calls
  /// _exit(0). Returns normally when no fault (still) applies.
  void fire(const std::string& out_path);

 private:
  /// Claims one firing of a limited fault through marker files; always
  /// true for unlimited faults.
  [[nodiscard]] bool claim_firing(const FaultSpec& fault);

  std::vector<FaultSpec> plan_;  ///< entries for this shard only
  std::size_t shard_ = 0;
  std::string marker_dir_;
};

}  // namespace uwb::farm
