#pragma once
/// \file farm.h
/// \brief The sweep-farm orchestrator: checkpointed fan-out of
///        `uwb_sweep --shard i/N` worker processes with bounded retry and
///        validated resume.
///
/// The invariants this module maintains (docs/farm.md spells them out):
///
///  * The merged output of a farm run is byte-identical to the same sweep
///    run unsharded and uninterrupted -- crashes, retries, and resumes can
///    change only *whether* a shard result exists, never its bytes,
///    because every worker is a pure function of (scenario.json, seed,
///    stop, shard index).
///  * A shard is journaled `done` only after its result document parsed
///    and validated against the plan. Resume re-validates every done
///    shard, so tampered or truncated checkpoints fail loudly instead of
///    poisoning a merge.
///  * Every journal write is atomic (tmp + rename): killing the farm
///    itself at any instant leaves a loadable state.json.

#include <cstddef>
#include <string>

#include "engine/scenario_registry.h"
#include "farm/farm_state.h"
#include "farm/runner.h"

namespace uwb::farm {

/// Creates a run directory: scenario.json (the expanded plan every worker
/// loads), farm.json (the spec), and a fresh all-pending state.json whose
/// plan_digest pins scenario.json's bytes. \p spec.num_points is filled in
/// from the plan. \throws InvalidArgument if the directory already holds a
/// farm.json (refuse to clobber a checkpointed run).
void init_run(const engine::ScenarioSpec& scenario, FarmSpec& spec,
              const RunPaths& paths);

struct LoadedRun {
  FarmSpec spec;
  FarmState state;
};

/// Loads a run directory for resume: farm.json + state.json (both version
/// checked), re-digests scenario.json against state.plan_digest, and
/// re-validates the result document of every shard journaled `done` --
/// a shard whose checkpoint went missing or was tampered with since the
/// last run fails the load with a pointed error. \throws InvalidArgument.
[[nodiscard]] LoadedRun load_run(const RunPaths& paths);

/// Validates shard \p shard's result document at \p path against the
/// spec: header (scenario, seed, stop) must match and the point indices
/// must be exactly { p : p mod shard_count == shard, p < num_points }.
/// \throws InvalidArgument with the offending detail.
void validate_shard_result(const FarmSpec& spec, std::size_t shard,
                           const std::string& path);

/// How a supervision pass ended.
struct FarmRunReport {
  std::size_t done = 0;    ///< shards with validated results
  std::size_t failed = 0;  ///< shards exhausted (or permanently failed)

  [[nodiscard]] bool complete() const noexcept { return failed == 0; }
};

/// Runs every non-done shard through \p transport with the spec's retry
/// policy: per-attempt timeout, exit/signal classification (permanent
/// failures stop retrying early), exponential backoff with deterministic
/// jitter between attempts. state.json is rewritten atomically after every
/// transition, so a killed farm resumes from exactly what had finished.
/// \p worker_binary is the uwb_sweep executable; \p max_parallel caps
/// concurrently live workers (0 = all shards at once).
FarmRunReport run_shards(const FarmSpec& spec, FarmState& state,
                         const RunPaths& paths, ExecTransport& transport,
                         const std::string& worker_binary,
                         std::size_t max_parallel = 0, bool quiet = false);

/// Merges the done shards' result documents into \p out_path.
/// All shards done: a complete merge, byte-identical to the unsharded
/// run's file. Some failed and \p allow_partial: merges what exists with
/// the coverage check relaxed. Some failed otherwise: throws.
void merge_run(const FarmSpec& spec, const FarmState& state, const RunPaths& paths,
               const std::string& out_path, bool allow_partial = false);

/// Writes <run_dir>/manifest.json: run status ("complete" or "partial"),
/// shard accounting (attempts, outcomes, wall clock, trials) -- the
/// observational record deliberately kept out of the deterministic result
/// documents.
void write_farm_manifest(const FarmSpec& spec, const FarmState& state,
                         const RunPaths& paths);

/// The worker argv for one attempt of \p shard (exposed for tests).
[[nodiscard]] std::vector<std::string> worker_argv(const FarmSpec& spec,
                                                   const RunPaths& paths,
                                                   const std::string& worker_binary,
                                                   std::size_t shard);

}  // namespace uwb::farm
