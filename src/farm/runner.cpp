#include "farm/runner.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <thread>

namespace uwb::farm {

std::string ExitStatus::describe() const {
  switch (kind) {
    case Kind::kExited:
      return code == kExitOk ? "ok" : "exit " + std::to_string(code);
    case Kind::kSignaled:
      return "signal " + std::to_string(sig);
    case Kind::kTimeout:
      return "timeout";
    case Kind::kSpawnError:
      return "spawn: " + detail;
  }
  return "?";
}

bool is_transient(const ExitStatus& status) {
  switch (status.kind) {
    case ExitStatus::Kind::kSignaled:
    case ExitStatus::Kind::kTimeout:
    case ExitStatus::Kind::kSpawnError:
      return true;
    case ExitStatus::Kind::kExited:
      break;
  }
  // The worker's documented exit-code contract: bad arguments and
  // spec-load failures will fail the same way every time.
  return status.code != kExitBadArgs && status.code != kExitSpecLoad;
}

void sleep_s(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

ExitStatus LocalExecTransport::run(const std::vector<std::string>& argv,
                                   const std::vector<EnvVar>& env,
                                   const std::string& log_path,
                                   double timeout_s) {
  ExitStatus status;
  if (argv.empty()) {
    status.kind = ExitStatus::Kind::kSpawnError;
    status.detail = "empty argv";
    return status;
  }

  {
    const std::filesystem::path p(log_path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
  }
  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    status.kind = ExitStatus::Kind::kSpawnError;
    status.detail = "open '" + log_path + "': " + std::strerror(errno);
    return status;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    status.kind = ExitStatus::Kind::kSpawnError;
    status.detail = std::string("fork: ") + std::strerror(errno);
    ::close(log_fd);
    return status;
  }

  if (pid == 0) {
    // Child: wire logs, apply env overrides, exec.
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(log_fd);
    for (const auto& [name, value] : env) {
      ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // Only reached when exec failed; the farm classifies 127 as transient,
    // which is right for "binary on NFS briefly missing" style failures.
    ::dprintf(STDERR_FILENO, "exec %s: %s\n", cargv[0], std::strerror(errno));
    ::_exit(127);
  }

  ::close(log_fd);

  // Parent: poll so a timeout can SIGKILL a wedged child.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  bool timed_out = false;
  for (;;) {
    int wstatus = 0;
    const pid_t done = ::waitpid(pid, &wstatus, WNOHANG);
    if (done == pid) {
      if (timed_out) {
        status.kind = ExitStatus::Kind::kTimeout;
      } else if (WIFEXITED(wstatus)) {
        status.kind = ExitStatus::Kind::kExited;
        status.code = WEXITSTATUS(wstatus);
      } else if (WIFSIGNALED(wstatus)) {
        status.kind = ExitStatus::Kind::kSignaled;
        status.sig = WTERMSIG(wstatus);
      }
      return status;
    }
    if (done < 0) {
      status.kind = ExitStatus::Kind::kSpawnError;
      status.detail = std::string("waitpid: ") + std::strerror(errno);
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return status;
    }
    if (!timed_out && timeout_s > 0.0 &&
        std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      ::kill(pid, SIGKILL);
      // Keep polling: the next waitpid reaps it and we report kTimeout.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace uwb::farm
