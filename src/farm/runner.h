#pragma once
/// \file runner.h
/// \brief The farm's supervised shard runner: a pluggable exec transport
///        plus the policy that decides whether a dead worker is worth
///        retrying.
///
/// The transport boundary is deliberately small -- "run this argv, stream
/// its output to this log file, kill it after timeout_s, tell me how it
/// died" -- so the local fork/exec transport can later be joined by an
/// ssh/slurm one without touching the orchestration or checkpoint logic.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "farm/exit_codes.h"

namespace uwb::farm {

/// How one worker attempt ended.
struct ExitStatus {
  enum class Kind {
    kExited,    ///< normal exit; `code` holds the exit code
    kSignaled,  ///< killed by a signal; `sig` holds the signal number
    kTimeout,   ///< exceeded timeout_s; the supervisor SIGKILLed it
    kSpawnError ///< fork/exec itself failed; `detail` explains
  };

  Kind kind = Kind::kExited;
  int code = 0;
  int sig = 0;
  std::string detail;  ///< spawn-error text, empty otherwise

  [[nodiscard]] bool ok() const noexcept {
    return kind == Kind::kExited && code == kExitOk;
  }

  /// Short journal text: "ok", "exit 3", "signal 9", "timeout", "spawn: ...".
  [[nodiscard]] std::string describe() const;
};

/// Is a failed attempt worth retrying?
///
/// Permanent failures are the ones a retry cannot fix: bad arguments and
/// spec-load errors (the worker's documented exit codes 2 and 3). Deaths by
/// signal, timeouts, interrupted runs, and generic runtime errors are
/// transient -- the canonical farm failures (OOM kill, preemption, a
/// wedged filesystem) all land there.
[[nodiscard]] bool is_transient(const ExitStatus& status);

/// One (name, value) environment override for a worker.
using EnvVar = std::pair<std::string, std::string>;

/// Executes worker processes. run() blocks until the child is gone.
class ExecTransport {
 public:
  virtual ~ExecTransport() = default;

  /// Runs \p argv with stdout+stderr appended to \p log_path and \p env
  /// added to the inherited environment. Kills the child (SIGKILL) if it
  /// outlives \p timeout_s (0 = no timeout). Never throws for child
  /// failures -- they come back as the ExitStatus.
  [[nodiscard]] virtual ExitStatus run(const std::vector<std::string>& argv,
                                       const std::vector<EnvVar>& env,
                                       const std::string& log_path,
                                       double timeout_s) = 0;
};

/// fork/exec on the local machine.
class LocalExecTransport final : public ExecTransport {
 public:
  [[nodiscard]] ExitStatus run(const std::vector<std::string>& argv,
                               const std::vector<EnvVar>& env,
                               const std::string& log_path,
                               double timeout_s) override;
};

/// Sleeps for \p seconds (sub-second resolution); the backoff wait.
void sleep_s(double seconds);

}  // namespace uwb::farm
