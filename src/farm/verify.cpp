#include "farm/verify.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/error.h"
#include "farm/farm_state.h"

namespace uwb::farm {

namespace {

double parse_literal(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  detail::require(end == text.c_str() + text.size() && !text.empty(),
                  "verify: unparseable number '" + text + "' in " + what);
  return v;
}

/// A point's value under a metric name ("ber"/"ci95"/counters/recorded
/// metric mean). \throws InvalidArgument when the metric is absent.
double point_value(const io::ResultPoint& point, const std::string& metric) {
  if (metric == "ber") return parse_literal(point.ber, "ber");
  if (metric == "ci95") return parse_literal(point.ci95, "ci95");
  if (metric == "errors") return static_cast<double>(point.errors);
  if (metric == "bits") return static_cast<double>(point.bits);
  if (metric == "trials") return static_cast<double>(point.trials);
  for (const io::ResultMetric& m : point.metrics) {
    if (m.name == metric) return parse_literal(m.mean, "metric '" + metric + "' mean");
  }
  throw InvalidArgument("verify: point " + std::to_string(point.index) + " ('" +
                        point.label + "') records no metric '" + metric + "'");
}

std::string tag_of(const io::ResultPoint& point, const std::string& key) {
  for (const auto& [k, v] : point.tags) {
    if (k == key) return v;
  }
  return {};
}

/// Points matching a `where` tag filter (all pairs must match).
std::vector<const io::ResultPoint*> select(const io::ResultDoc& doc,
                                           const io::JsonValue* where) {
  std::vector<const io::ResultPoint*> out;
  for (const io::ResultPoint& point : doc.points) {
    bool match = true;
    if (where != nullptr) {
      for (const auto& [key, value] : where->members()) {
        if (tag_of(point, key) != value.as_string()) {
          match = false;
          break;
        }
      }
    }
    if (match) out.push_back(&point);
  }
  return out;
}

std::string describe_where(const io::JsonValue* where) {
  if (where == nullptr || where->members().empty()) return "all points";
  std::string out;
  for (const auto& [key, value] : where->members()) {
    if (!out.empty()) out += ", ";
    out += key + "=" + value.as_string();
  }
  return out;
}

void check_range(const io::ResultDoc& doc, const io::JsonValue& check,
                 VerifyReport& report) {
  const std::string metric = check.at("metric").as_string();
  const io::JsonValue* where = check.find("where");
  const io::JsonValue* min = check.find("min");
  const io::JsonValue* max = check.find("max");
  detail::require(min != nullptr || max != nullptr,
                  "verify: range check on '" + metric + "' has neither min nor max");
  const auto points = select(doc, where);
  if (points.empty()) {
    report.failures.push_back("range '" + metric + "' (" + describe_where(where) +
                              "): selects no points");
    return;
  }
  for (const io::ResultPoint* point : points) {
    const double v = point_value(*point, metric);
    if (min != nullptr && v < min->as_double()) {
      report.failures.push_back("range '" + metric + "': point " +
                                std::to_string(point->index) + " ('" + point->label +
                                "') has " + io::format_double(v) + " < min " +
                                min->number_text());
    }
    if (max != nullptr && v > max->as_double()) {
      report.failures.push_back("range '" + metric + "': point " +
                                std::to_string(point->index) + " ('" + point->label +
                                "') has " + io::format_double(v) + " > max " +
                                max->number_text());
    }
  }
}

void check_monotone(const io::ResultDoc& doc, const io::JsonValue& check,
                    VerifyReport& report) {
  const std::string metric = check.at("metric").as_string();
  const std::string axis = check.at("axis").as_string();
  const std::string direction = check.at("direction").as_string();
  detail::require(direction == "nonincreasing" || direction == "nondecreasing",
                  "verify: monotone direction must be nonincreasing or "
                  "nondecreasing, got '" + direction + "'");
  const io::JsonValue* tolerance_v = check.find("tolerance");
  const double tolerance = tolerance_v == nullptr ? 0.0 : tolerance_v->as_double();
  const io::JsonValue* where = check.find("where");
  const io::JsonValue* group_by = check.find("group_by");

  // Group key = the group_by tag values joined; one group when absent.
  std::map<std::string, std::vector<const io::ResultPoint*>> groups;
  for (const io::ResultPoint* point : select(doc, where)) {
    std::string key;
    if (group_by != nullptr) {
      for (const io::JsonValue& tag : group_by->items()) {
        key += tag_of(*point, tag.as_string()) + "|";
      }
    }
    groups[key].push_back(point);
  }
  if (groups.empty()) {
    report.failures.push_back("monotone '" + metric + "' vs " + axis +
                              ": selects no points");
    return;
  }
  for (auto& [key, points] : groups) {
    std::stable_sort(points.begin(), points.end(),
                     [&](const io::ResultPoint* a, const io::ResultPoint* b) {
                       return parse_literal(tag_of(*a, axis), "axis " + axis) <
                              parse_literal(tag_of(*b, axis), "axis " + axis);
                     });
    if (points.size() < 2) {
      report.failures.push_back("monotone '" + metric + "' vs " + axis + " (group " +
                                (key.empty() ? "all" : key) +
                                "): fewer than two points to compare");
      continue;
    }
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double prev = point_value(*points[i - 1], metric);
      const double curr = point_value(*points[i], metric);
      const bool bad = direction == "nonincreasing" ? curr > prev + tolerance
                                                    : curr < prev - tolerance;
      if (bad) {
        report.failures.push_back(
            "monotone '" + metric + "' vs " + axis + ": '" + points[i - 1]->label +
            "' -> '" + points[i]->label + "' goes " + io::format_double(prev) +
            " -> " + io::format_double(curr) + ", violating " + direction +
            (tolerance > 0.0 ? " (tolerance " + io::format_double(tolerance) + ")"
                             : ""));
      }
    }
  }
}

void check_ci_contains(const io::ResultDoc& doc, const io::JsonValue& check,
                       VerifyReport& report) {
  const io::JsonValue* where = check.find("where");
  const io::JsonValue* value_v = check.find("value");
  const auto points = select(doc, where);
  if (points.empty()) {
    report.failures.push_back("ci_contains (" + describe_where(where) +
                              "): selects no points");
    return;
  }
  for (const io::ResultPoint* point : points) {
    const std::string at = "ci_contains: point " + std::to_string(point->index) +
                           " ('" + point->label + "')";
    if (point->ci_lo.empty() || point->ci_hi.empty()) {
      report.failures.push_back(at + " carries no two-sided interval");
      continue;
    }
    const double lo = parse_literal(point->ci_lo, "ci_lo");
    const double hi = parse_literal(point->ci_hi, "ci_hi");
    if (hi < lo) {
      report.failures.push_back(at + " has inverted interval [" +
                                io::format_double(lo) + ", " + io::format_double(hi) +
                                "]");
      continue;
    }
    const double v = value_v != nullptr ? value_v->as_double()
                                        : parse_literal(point->ber, "ber");
    if (v < lo || v > hi) {
      report.failures.push_back(
          at + ": [" + io::format_double(lo) + ", " + io::format_double(hi) +
          "] does not contain " +
          (value_v != nullptr ? value_v->number_text() : "its own ber ") +
          (value_v != nullptr ? "" : io::format_double(v)));
    }
  }
}

void check_accounting(const io::ResultDoc& doc, const io::JsonValue& check,
                      VerifyReport& report) {
  const io::JsonValue* min_trials_v = check.find("min_trials");
  const std::uint64_t min_trials =
      min_trials_v == nullptr ? 1 : min_trials_v->as_uint64();
  for (const io::ResultPoint& point : doc.points) {
    const std::string at =
        "accounting: point " + std::to_string(point.index) + " ('" + point.label + "')";
    if (point.errors > point.bits) {
      report.failures.push_back(at + " counts " + std::to_string(point.errors) +
                                " errors in " + std::to_string(point.bits) + " bits");
    }
    if (point.trials < min_trials) {
      report.failures.push_back(at + " ran " + std::to_string(point.trials) +
                                " trials, expected >= " + std::to_string(min_trials));
    }
    if (doc.stop.max_trials > 0 && point.trials > doc.stop.max_trials) {
      report.failures.push_back(at + " ran " + std::to_string(point.trials) +
                                " trials, over the stop rule's max_trials " +
                                std::to_string(doc.stop.max_trials));
    }
  }
}

}  // namespace

VerifyReport verify_result(const io::ResultDoc& doc,
                           const io::JsonValue& expectations) {
  const io::JsonValue* version = expectations.find("version");
  detail::require(version != nullptr, "verify: expectations missing format version");
  detail::require(version->as_int() == kExpectationsVersion,
                  "verify: expectations version " + version->number_text() +
                      " does not match this binary's version " +
                      std::to_string(kExpectationsVersion));

  VerifyReport report;
  const io::JsonValue* checks = nullptr;
  for (const auto& [key, value] : expectations.members()) {
    if (key == "version") continue;
    else if (key == "scenario") {
      ++report.checks;
      if (doc.scenario != value.as_string()) {
        report.failures.push_back("header: scenario is '" + doc.scenario +
                                  "', expected '" + value.as_string() + "'");
      }
    } else if (key == "points") {
      ++report.checks;
      if (doc.points.size() != value.as_uint64()) {
        report.failures.push_back("header: document has " +
                                  std::to_string(doc.points.size()) +
                                  " points, expected " + value.number_text());
      }
    } else if (key == "min_total_trials") {
      ++report.checks;
      std::uint64_t total = 0;
      for (const io::ResultPoint& point : doc.points) total += point.trials;
      if (total < value.as_uint64()) {
        report.failures.push_back("header: " + std::to_string(total) +
                                  " total trials, expected >= " + value.number_text());
      }
    } else if (key == "checks") {
      checks = &value;
    } else {
      throw InvalidArgument("verify: expectations: unknown key '" + key + "'");
    }
  }
  if (checks != nullptr) {
    for (const io::JsonValue& check : checks->items()) {
      const std::string kind = check.at("check").as_string();
      ++report.checks;
      if (kind == "range") check_range(doc, check, report);
      else if (kind == "monotone") check_monotone(doc, check, report);
      else if (kind == "accounting") check_accounting(doc, check, report);
      else if (kind == "ci_contains") check_ci_contains(doc, check, report);
      else throw InvalidArgument("verify: unknown check kind '" + kind + "'");
    }
  }
  detail::require(report.checks > 0,
                  "verify: expectations declare no checks at all");
  return report;
}

VerifyReport verify_result_files(const std::string& result_path,
                                 const std::string& expectations_path) {
  const io::ResultDoc doc = io::parse_result_json(read_file(result_path));
  const io::JsonValue expectations = io::parse_json(read_file(expectations_path));
  return verify_result(doc, expectations);
}

}  // namespace uwb::farm
