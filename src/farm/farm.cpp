#include "farm/farm.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "io/result_io.h"
#include "io/spec_io.h"

namespace uwb::farm {

void init_run(const engine::ScenarioSpec& scenario, FarmSpec& spec,
              const RunPaths& paths) {
  detail::require(!std::filesystem::exists(paths.farm_json()),
                  "farm: '" + paths.farm_json() +
                      "' already exists -- use `uwb_farm resume " + paths.run_dir +
                      "` to continue it, or pick a fresh --run-dir");
  detail::require(spec.shard_count >= 1, "farm: shard count must be >= 1");
  spec.num_points = scenario.points.size();
  detail::require(spec.num_points >= 1, "farm: the scenario plan has no points");
  detail::require(spec.shard_count <= spec.num_points,
                  "farm: " + std::to_string(spec.shard_count) + " shards for " +
                      std::to_string(spec.num_points) +
                      " points would leave empty shards");

  io::save_scenario_file(scenario, paths.scenario_json());
  save_farm_spec(spec, paths.farm_json());

  FarmState state;
  state.plan_digest = fnv1a_digest(read_file(paths.scenario_json()));
  state.shards.resize(spec.shard_count);
  for (std::size_t i = 0; i < spec.shard_count; ++i) state.shards[i].index = i;
  save_farm_state(state, paths.state_json());
}

void validate_shard_result(const FarmSpec& spec, std::size_t shard,
                           const std::string& path) {
  const auto fail = [&](const std::string& why) {
    throw InvalidArgument("farm: shard " + std::to_string(shard) + " result '" +
                          path + "' " + why);
  };
  io::ResultDoc doc;
  try {
    doc = io::parse_result_json(read_file(path));
  } catch (const Error& e) {
    fail(std::string("is unreadable or corrupt: ") + e.what());
  }
  if (doc.scenario != spec.scenario) {
    fail("is from scenario '" + doc.scenario + "', expected '" + spec.scenario + "'");
  }
  if (doc.seed != spec.seed) fail("was run under a different seed");
  if (doc.stop != spec.stop) fail("was run under a different stop rule");

  std::size_t expected = 0;
  std::size_t cursor = 0;
  for (std::size_t p = shard; p < spec.num_points; p += spec.shard_count) {
    ++expected;
    if (cursor < doc.points.size() && doc.points[cursor].index == p) ++cursor;
  }
  if (cursor != doc.points.size() || doc.points.size() != expected) {
    fail("covers " + std::to_string(doc.points.size()) + " points, expected the " +
         std::to_string(expected) + " plan indices congruent to " +
         std::to_string(shard) + " mod " + std::to_string(spec.shard_count) +
         " -- an interrupted or foreign checkpoint cannot be journaled done");
  }
}

LoadedRun load_run(const RunPaths& paths) {
  LoadedRun run;
  run.spec = load_farm_spec(paths.farm_json());
  run.state = load_farm_state(paths.state_json());
  detail::require(run.state.shards.size() == run.spec.shard_count,
                  "farm: state.json journals " +
                      std::to_string(run.state.shards.size()) +
                      " shards but farm.json declares " +
                      std::to_string(run.spec.shard_count));
  const std::uint64_t digest = fnv1a_digest(read_file(paths.scenario_json()));
  detail::require(
      digest == run.state.plan_digest,
      "farm: '" + paths.scenario_json() +
          "' does not match the plan this run was checkpointed with (digest "
          "mismatch) -- resuming would merge results from different sweeps");
  for (const ShardState& shard : run.state.shards) {
    if (shard.status != ShardStatus::kDone) continue;
    const std::string result_path = paths.shard_result(shard.index);
    validate_shard_result(run.spec, shard.index, result_path);
    detail::require(fnv1a_digest(read_file(result_path)) == shard.digest,
                    "farm: shard " + std::to_string(shard.index) + " result '" +
                        result_path +
                        "' does not match the digest it was journaled done with -- "
                        "the checkpoint was modified since; refusing to merge it");
  }
  return run;
}

std::vector<std::string> worker_argv(const FarmSpec& spec, const RunPaths& paths,
                                     const std::string& worker_binary,
                                     std::size_t shard) {
  std::vector<std::string> argv = {
      worker_binary,
      "--file", paths.scenario_json(),
      "--seed", std::to_string(spec.seed),
      "--min-errors", std::to_string(spec.stop.min_errors),
      "--max-bits", std::to_string(spec.stop.max_bits),
      "--max-trials", std::to_string(spec.stop.max_trials),
  };
  if (!spec.stop.metric.empty()) {
    argv.push_back("--stop-metric");
    argv.push_back(spec.stop.metric);
  }
  argv.push_back("--shard");
  argv.push_back(std::to_string(shard) + "/" + std::to_string(spec.shard_count));
  if (spec.workers_per_shard > 0) {
    argv.push_back("--workers");
    argv.push_back(std::to_string(spec.workers_per_shard));
  }
  if (!spec.channel_cache_dir.empty()) {
    argv.push_back("--channel-cache");
    argv.push_back(spec.channel_cache_dir);
  }
  if (spec.progress) {
    // JSON heartbeat lines land in the shard's log file, where `uwb_farm
    // status` aggregates the latest one per live shard.
    argv.push_back("--progress");
    argv.push_back("--progress-format");
    argv.push_back("json");
  }
  argv.push_back("--quiet");
  argv.push_back("--out");
  argv.push_back(paths.shard_result(shard));
  return argv;
}

FarmRunReport run_shards(const FarmSpec& spec, FarmState& state,
                         const RunPaths& paths, ExecTransport& transport,
                         const std::string& worker_binary,
                         std::size_t max_parallel, bool quiet) {
  std::mutex mu;  // guards `state` and the journal file
  const auto journal = [&](std::size_t shard, const auto& mutate) {
    const std::lock_guard<std::mutex> lock(mu);
    mutate(state.shards[shard]);
    save_farm_state(state, paths.state_json());
  };
  const auto note = [&](const char* fmt, std::size_t shard, const std::string& text) {
    if (quiet) return;
    const std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, fmt, shard, text.c_str());
  };

  std::vector<std::size_t> todo;
  for (const ShardState& shard : state.shards) {
    if (shard.status != ShardStatus::kDone) todo.push_back(shard.index);
  }
  if (todo.empty()) return {state.shards.size(), 0};

  std::atomic<std::size_t> next{0};
  const auto supervise = [&]() {
    for (;;) {
      const std::size_t claim = next.fetch_add(1);
      if (claim >= todo.size()) return;
      const std::size_t shard = todo[claim];

      // attempts counts cumulatively across farm invocations (so logs and
      // the journal tell the whole story), but the retry *budget* is per
      // invocation -- otherwise a resume could find its failed shards
      // already out of attempts and silently do nothing.
      const std::size_t prior = state.shards[shard].attempts;  // no lock: only we write it now
      std::size_t attempt = prior;
      while (attempt - prior < spec.retry.max_attempts) {
        ++attempt;
        if (attempt > 1) {
          const double delay = backoff_delay_s(spec.retry, spec.seed, shard, attempt);
          note("farm: shard %zu backing off %s\n", shard,
               std::to_string(delay).substr(0, 5) + "s before retry");
          sleep_s(delay);
        }
        journal(shard, [&](ShardState& s) {
          s.status = ShardStatus::kPending;
          s.attempts = attempt;
          s.last_outcome = "running";
        });

        const auto t0 = std::chrono::steady_clock::now();
        const ExitStatus status =
            transport.run(worker_argv(spec, paths, worker_binary, shard), {},
                          paths.shard_log(shard, attempt), spec.retry.timeout_s);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();

        std::string outcome = status.describe();
        if (status.ok()) {
          // Exit 0 is a claim, not proof: validate before journaling done.
          try {
            validate_shard_result(spec, shard, paths.shard_result(shard));
          } catch (const Error& e) {
            outcome = std::string("invalid result: ") + e.what();
            journal(shard, [&](ShardState& s) {
              s.status = ShardStatus::kFailed;
              s.last_outcome = outcome;
            });
            note("farm: shard %zu attempt failed (%s)\n", shard, outcome);
            continue;  // a corrupt claim of success is transient: retry
          }
          std::uint64_t trials = 0;
          const std::string result_bytes = read_file(paths.shard_result(shard));
          const io::ResultDoc doc = io::parse_result_json(result_bytes);
          for (const io::ResultPoint& point : doc.points) trials += point.trials;
          journal(shard, [&](ShardState& s) {
            s.status = ShardStatus::kDone;
            s.last_outcome = "ok";
            s.wall_s = wall;
            s.trials = trials;
            s.points = doc.points.size();
            s.digest = fnv1a_digest(result_bytes);
          });
          note("farm: shard %zu %s\n", shard, "done");
          break;
        }

        const bool retryable = is_transient(status);
        journal(shard, [&](ShardState& s) {
          s.status = ShardStatus::kFailed;
          s.last_outcome = outcome;
        });
        note("farm: shard %zu attempt failed (%s)\n", shard, outcome);
        if (!retryable) {
          note("farm: shard %zu %s\n", shard,
               "failed permanently (" + outcome + "), not retrying");
          break;
        }
      }
    }
  };

  std::size_t parallel = max_parallel == 0 ? todo.size() : max_parallel;
  if (parallel > todo.size()) parallel = todo.size();
  std::vector<std::thread> threads;
  threads.reserve(parallel);
  for (std::size_t t = 0; t < parallel; ++t) threads.emplace_back(supervise);
  for (std::thread& thread : threads) thread.join();

  FarmRunReport report;
  for (const ShardState& shard : state.shards) {
    if (shard.status == ShardStatus::kDone) ++report.done;
    else ++report.failed;
  }
  return report;
}

void merge_run(const FarmSpec& spec, const FarmState& state, const RunPaths& paths,
               const std::string& out_path, bool allow_partial) {
  std::vector<io::ResultDoc> docs;
  std::size_t missing = 0;
  for (const ShardState& shard : state.shards) {
    if (shard.status == ShardStatus::kDone) {
      docs.push_back(io::parse_result_json(read_file(paths.shard_result(shard.index))));
    } else {
      ++missing;
    }
  }
  detail::require(missing == 0 || allow_partial,
                  "farm: " + std::to_string(missing) +
                      " shard(s) have no validated result -- resume the run, or "
                      "merge --allow-partial to accept a degraded document");
  detail::require(!docs.empty(), "farm: no shard has a validated result to merge");
  const io::ResultDoc merged = io::merge_results(docs, /*allow_partial=*/missing > 0);
  // A complete farm merge must account for every plan point; this closes
  // the missing-tail case the dense-index check alone cannot see.
  detail::require(missing > 0 || merged.points.size() == spec.num_points,
                  "farm: merged " + std::to_string(merged.points.size()) +
                      " points but the plan has " + std::to_string(spec.num_points));
  write_file_atomic(out_path, io::write_result_json(merged));
}

void write_farm_manifest(const FarmSpec& spec, const FarmState& state,
                         const RunPaths& paths) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("version", io::JsonValue::number(kFarmFormatVersion));
  std::size_t done = 0;
  for (const ShardState& shard : state.shards) {
    if (shard.status == ShardStatus::kDone) ++done;
  }
  doc.set("status", io::JsonValue::string(done == state.shards.size() ? "complete"
                                                                      : "partial"));
  doc.set("scenario", io::JsonValue::string(spec.scenario));
  doc.set("seed", io::JsonValue::number(spec.seed));
  doc.set("shard_count",
          io::JsonValue::number(static_cast<std::uint64_t>(spec.shard_count)));
  doc.set("shards_done", io::JsonValue::number(static_cast<std::uint64_t>(done)));
  io::JsonValue shards = io::JsonValue::array();
  std::uint64_t total_trials = 0;
  for (const ShardState& shard : state.shards) {
    io::JsonValue entry = io::JsonValue::object();
    entry.set("index", io::JsonValue::number(static_cast<std::uint64_t>(shard.index)));
    entry.set("status", io::JsonValue::string(to_string(shard.status)));
    entry.set("attempts",
              io::JsonValue::number(static_cast<std::uint64_t>(shard.attempts)));
    entry.set("last_outcome", io::JsonValue::string(shard.last_outcome));
    entry.set("wall_s", io::JsonValue::number(shard.wall_s));
    entry.set("trials", io::JsonValue::number(shard.trials));
    entry.set("points", io::JsonValue::number(shard.points));
    shards.push_back(std::move(entry));
    total_trials += shard.trials;
  }
  doc.set("total_trials", io::JsonValue::number(total_trials));
  doc.set("shards", std::move(shards));
  write_file_atomic(paths.manifest_json(), io::dump_json_pretty(doc) + "\n");
}

}  // namespace uwb::farm
