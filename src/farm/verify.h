#pragma once
/// \file verify.h
/// \brief Claim verification: checks a sweep result document against a
///        declared-expectations JSON file (`uwb_farm verify`).
///
/// Expectations capture what a result is *supposed* to look like -- the
/// physics-level claims (BER falls with SNR, BER in a plausible band) and
/// the bookkeeping claims (all points present, trial counts sane) -- so a
/// refactor that silently degrades results fails a committed expectations
/// file in CI instead of shipping. Schema (strict io::json, versioned):
///
///   {
///     "version": 1,
///     "scenario": "gen2_cm_grid",       // optional: doc header must match
///     "points": 6,                      // optional: exact point count
///     "min_total_trials": 10,           // optional: sum of trials >= this
///     "checks": [
///       {"check": "range", "metric": "ber",
///        "where": {"channel": "CM1"},   // optional tag filter
///        "min": 0, "max": 0.2},         // either bound optional, not both
///       {"check": "monotone", "metric": "ber", "axis": "ebn0_db",
///        "group_by": ["channel"],       // optional; default: one group
///        "direction": "nonincreasing",  // or "nondecreasing"
///        "tolerance": 0},               // optional slack
///       {"check": "accounting"},        // errors <= bits, trials within
///                                       // the stop rule, on every point
///       {"check": "ci_contains",        // each selected point's two-sided
///        "where": {"channel": "AWGN"},  // [ci_lo, ci_hi] must contain
///        "value": 1e-3}                 // "value" -- or, with "value"
///                                       // absent, the point's own ber
///                                       // (interval brackets estimate)
///     ]
///   }
///
/// `metric` is "ber", "ci95", "errors", "bits", "trials", or the name of a
/// recorded metric (its mean). A filter or group that selects no points is
/// itself a failure -- an expectation that checks nothing is a stale
/// expectation, not a passing one.

#include <cstddef>
#include <string>
#include <vector>

#include "io/json.h"
#include "io/result_io.h"

namespace uwb::farm {

/// Expectations format version (independent of the checkpoint format).
inline constexpr int kExpectationsVersion = 1;

/// The outcome of one verification pass.
struct VerifyReport {
  std::size_t checks = 0;              ///< checks evaluated
  std::vector<std::string> failures;   ///< one line per violated claim

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Evaluates \p expectations (a parsed expectations document) against
/// \p doc. Violated claims land in the report; a malformed expectations
/// document throws InvalidArgument (a typo'd check must not count as a
/// pass).
[[nodiscard]] VerifyReport verify_result(const io::ResultDoc& doc,
                                         const io::JsonValue& expectations);

/// Convenience: loads both files and verifies.
[[nodiscard]] VerifyReport verify_result_files(const std::string& result_path,
                                               const std::string& expectations_path);

}  // namespace uwb::farm
