#include "farm/fault.h"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.h"

namespace uwb::farm {

namespace {

FaultKind kind_from_name(const std::string& name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "hang") return FaultKind::kHang;
  if (name == "corrupt") return FaultKind::kCorrupt;
  throw InvalidArgument("fault plan: unknown fault kind '" + name + "'");
}

std::size_t parse_shard_index(std::string text) {
  if (text.rfind("shard", 0) == 0) text = text.substr(5);
  detail::require(!text.empty() &&
                      text.find_first_not_of("0123456789") == std::string::npos,
                  "fault plan: bad shard index '" + text + "'");
  return static_cast<std::size_t>(std::stoull(text));
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "?";
}

std::vector<FaultSpec> parse_fault_plan(const std::string& text) {
  std::vector<FaultSpec> plan;
  std::string::size_type start = 0;
  while (start < text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    std::string entry = text.substr(start, end - start);
    detail::require(!entry.empty(), "fault plan: empty entry in '" + text + "'");

    FaultSpec fault;
    const auto at = entry.find('@');
    if (at != std::string::npos) {
      const std::string times = entry.substr(at + 1);
      detail::require(!times.empty() &&
                          times.find_first_not_of("0123456789") == std::string::npos,
                      "fault plan: bad repeat count in '" + entry + "'");
      fault.times = std::stol(times);
      detail::require(fault.times >= 1, "fault plan: repeat count must be >= 1 in '" +
                                            entry + "'");
      entry = entry.substr(0, at);
    }
    const auto colon = entry.find(':');
    detail::require(colon != std::string::npos,
                    "fault plan: expected <kind>:<shard>, got '" + entry + "'");
    fault.kind = kind_from_name(entry.substr(0, colon));
    fault.shard = parse_shard_index(entry.substr(colon + 1));
    plan.push_back(fault);

    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  detail::require(!plan.empty(), "fault plan: '" + text + "' names no faults");
  return plan;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> plan, std::size_t shard_index,
                             std::string marker_dir)
    : shard_(shard_index), marker_dir_(std::move(marker_dir)) {
  for (FaultSpec& fault : plan) {
    if (fault.shard != shard_index) continue;
    detail::require(fault.times < 0 || !marker_dir_.empty(),
                    "fault plan: @times needs " + std::string(kFaultDirEnv) +
                        " (marker directory for cross-process firing counts)");
    plan_.push_back(fault);
  }
}

FaultInjector FaultInjector::from_env(std::size_t shard_index) {
  const char* text = std::getenv(kFaultEnv);
  if (text == nullptr || *text == '\0') return {};
  const char* dir = std::getenv(kFaultDirEnv);
  return FaultInjector(parse_fault_plan(text), shard_index,
                       dir == nullptr ? std::string() : std::string(dir));
}

bool FaultInjector::claim_firing(const FaultSpec& fault) {
  if (fault.times < 0) return true;
  // One marker file per allowed firing, claimed atomically (O_EXCL) so
  // concurrent attempts of the same shard can never over-fire.
  for (long k = 0; k < fault.times; ++k) {
    const std::string marker = marker_dir_ + "/.fault_" + to_string(fault.kind) + "_" +
                               std::to_string(fault.shard) + "_" + std::to_string(k);
    const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
  }
  return false;
}

void FaultInjector::fire(const std::string& out_path) {
  for (const FaultSpec& fault : plan_) {
    if (!claim_firing(fault)) continue;
    switch (fault.kind) {
      case FaultKind::kCrash:
        // Die the way a killed worker dies: no flush, no handlers, no exit
        // code -- the supervisor sees death by SIGKILL.
        std::raise(SIGKILL);
        break;
      case FaultKind::kHang:
        for (;;) ::pause();  // until the farm's timeout SIGKILLs us
        break;
      case FaultKind::kCorrupt: {
        const std::filesystem::path p(out_path);
        if (p.has_parent_path()) {
          std::error_code ec;
          std::filesystem::create_directories(p.parent_path(), ec);
        }
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        out << "{\"scenario\": \"truncated mid-wri";
        out.close();
        // "Success" with a corrupt result: the farm's validation must catch it.
        ::_exit(0);
      }
    }
  }
}

}  // namespace uwb::farm
