#include "engine/metric_accumulator.h"

#include <cmath>

namespace uwb::engine {

void MetricAccumulator::commit(const sim::TrialOutcome& outcome) {
  ber_.add(outcome.errors, outcome.bits);
  if (outcome.weighted) {
    any_weighted_ = true;
    weighted_.add(std::exp(outcome.log_weight), outcome.errors, outcome.bits);
  } else {
    weighted_.add(1.0, outcome.errors, outcome.bits);
  }
  bool stop_metric_ok = false;
  for (const auto& [name, value] : outcome.metrics) {
    metrics_.add(name, value);
    if (!stop_.metric.empty() && name == stop_.metric && value != 0.0) {
      stop_metric_ok = true;
    }
  }
  if (!stop_.metric.empty() && !stop_metric_ok) ++metric_errors_;
}

bool MetricAccumulator::ci_target_met() const {
  if (stop_.target_rel_ci_width <= 0.0) return false;
  // Cheap per-commit check: Wilson for plain counts, the weighted normal
  // interval otherwise. The reported interval may use a different (exact)
  // method; the stop decision only needs a consistent deterministic probe.
  if (any_weighted_) {
    if (weighted_.we_sum <= 0.0) return false;
    const double ber = weighted_.ber();
    return ber > 0.0 && weighted_.halfwidth() <= stop_.target_rel_ci_width * ber;
  }
  if (ber_.errors() == 0) return false;
  const double ber = ber_.ber();
  return ber > 0.0 && ber_.ci95_halfwidth() <= stop_.target_rel_ci_width * ber;
}

sim::MeasuredPoint MetricAccumulator::finish(std::size_t trials) const {
  sim::MeasuredPoint point;
  point.ber.bits = ber_.bits();
  point.ber.errors = ber_.errors();
  point.ber.trials = trials;
  point.ber.weighted = any_weighted_;
  if (any_weighted_) {
    point.ber.ber = weighted_.ber();
    point.ber.ci95 = trials >= 2 ? weighted_.halfwidth() : (point.ber.bits ? 0.5 : 1.0);
    const stats::Interval ci = weighted_.interval();
    point.ber.ci_lo = ci.lo;
    point.ber.ci_hi = ci.hi;
    point.ber.ci_method = stats::CiMethod::kNormalWeighted;
    point.ber.ess = weighted_.ess();
  } else {
    point.ber.ber = ber_.ber();              // 0 when the stream yielded no bits
    point.ber.ci95 = ber_.ci95_halfwidth();  // likewise guarded against bits == 0
    const stats::Interval ci =
        stats::binomial_interval(ci_method_, ber_.errors(), ber_.bits());
    point.ber.ci_lo = ci.lo;
    point.ber.ci_hi = ci.hi;
    point.ber.ci_method = ci_method_;
    point.ber.ess = static_cast<double>(trials);
  }
  point.metrics = metrics_;
  return point;
}

}  // namespace uwb::engine
