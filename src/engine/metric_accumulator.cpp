#include "engine/metric_accumulator.h"

namespace uwb::engine {

void MetricAccumulator::commit(const sim::TrialOutcome& outcome) {
  ber_.add(outcome.errors, outcome.bits);
  bool stop_metric_ok = false;
  for (const auto& [name, value] : outcome.metrics) {
    metrics_.add(name, value);
    if (!stop_.metric.empty() && name == stop_.metric && value != 0.0) {
      stop_metric_ok = true;
    }
  }
  if (!stop_.metric.empty() && !stop_metric_ok) ++metric_errors_;
}

sim::MeasuredPoint MetricAccumulator::finish(std::size_t trials) const {
  sim::MeasuredPoint point;
  point.ber.ber = ber_.ber();              // 0 when the stream yielded no bits
  point.ber.ci95 = ber_.ci95_halfwidth();  // likewise guarded against bits == 0
  point.ber.bits = ber_.bits();
  point.ber.errors = ber_.errors();
  point.ber.trials = trials;
  point.metrics = metrics_;
  return point;
}

}  // namespace uwb::engine
