#pragma once
/// \file thread_pool.h
/// \brief Work-stealing thread pool for the Monte-Carlo sweep engine.
///
/// Each worker owns a deque of tasks: the owner pushes and pops at the back
/// (LIFO keeps hot data local), idle workers steal from the front of other
/// workers' deques (FIFO takes the oldest, largest-grained work). External
/// submissions are distributed round-robin. The pool is intentionally
/// simple -- mutex-per-deque, one condition variable -- because sweep tasks
/// are milliseconds-to-seconds of signal processing, not nanosecond lambdas.
///
/// Observability: every worker counts tasks executed, tasks stolen, and
/// idle time (always on -- a few relaxed atomic writes per task, read back
/// through worker_stats()). When the pool is built with a TraceRecorder it
/// additionally names each worker thread in the trace and records one span
/// per executed task. Neither affects scheduling or results.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/counters.h"

namespace uwb::obs {
class TraceRecorder;
}  // namespace uwb::obs

namespace uwb::engine {

class ThreadPool {
 public:
  /// \p num_threads 0 picks std::thread::hardware_concurrency() (min 1).
  /// \p recorder (optional) receives one "pool" span per executed task.
  explicit ThreadPool(std::size_t num_threads = 0, obs::TraceRecorder* recorder = nullptr);

  /// Drains nothing: outstanding tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Safe from any thread, including pool workers (a
  /// worker submits to its own deque; thieves redistribute the load).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished executing.
  void wait_idle();

  /// Per-worker execution counters. Task counts are exact for all tasks
  /// completed before the last wait_idle(); idle time covers waits that
  /// finished by then (the final sleep before destruction is not counted).
  [[nodiscard]] std::vector<obs::PoolWorkerStats> worker_stats() const;

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Relaxed atomics: slots are written by their owning worker and read by
  /// worker_stats() from the coordinating thread.
  struct WorkerCounters {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> idle_us{0};
  };

  void worker_loop(std::size_t id);
  bool try_pop(std::size_t id, std::function<void()>& task, bool& stolen);

  std::vector<std::unique_ptr<Deque>> workers_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  std::vector<std::thread> threads_;
  obs::TraceRecorder* recorder_ = nullptr;

  std::mutex signal_mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t unfinished_ = 0;  ///< queued + running tasks (under signal_mutex_)
  bool stopping_ = false;
  std::size_t next_submit_ = 0;
};

}  // namespace uwb::engine
