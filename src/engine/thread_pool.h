#pragma once
/// \file thread_pool.h
/// \brief Work-stealing thread pool for the Monte-Carlo sweep engine.
///
/// Each worker owns a deque of tasks: the owner pushes and pops at the back
/// (LIFO keeps hot data local), idle workers steal from the front of other
/// workers' deques (FIFO takes the oldest, largest-grained work). External
/// submissions are distributed round-robin. The pool is intentionally
/// simple -- mutex-per-deque, one condition variable -- because sweep tasks
/// are milliseconds-to-seconds of signal processing, not nanosecond lambdas.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uwb::engine {

class ThreadPool {
 public:
  /// \p num_threads 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains nothing: outstanding tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Safe from any thread, including pool workers (a
  /// worker submits to its own deque; thieves redistribute the load).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished executing.
  void wait_idle();

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t id);
  bool try_pop(std::size_t id, std::function<void()>& task);

  std::vector<std::unique_ptr<Deque>> workers_;
  std::vector<std::thread> threads_;

  std::mutex signal_mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t unfinished_ = 0;  ///< queued + running tasks (under signal_mutex_)
  bool stopping_ = false;
  std::size_t next_submit_ = 0;
};

}  // namespace uwb::engine
