#include "engine/scenario_registry.h"

#include <cstdio>

#include "common/error.h"
#include "fec/convolutional.h"
#include "sim/scenario.h"

namespace uwb::engine {

namespace {

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string channel_name(int cm) { return cm == 0 ? "AWGN" : "CM" + std::to_string(cm); }

/// Row-major cartesian product over axes, shared by both builders.
template <typename Variant>
std::vector<std::vector<const Variant*>> expand_axes(
    const std::vector<std::pair<std::string, std::vector<Variant>>>& axes) {
  std::vector<std::vector<const Variant*>> grid{{}};
  for (const auto& [axis_name, variants] : axes) {
    (void)axis_name;
    std::vector<std::vector<const Variant*>> next;
    next.reserve(grid.size() * variants.size());
    for (const auto& row : grid) {
      for (const auto& variant : variants) {
        auto extended = row;
        extended.push_back(&variant);
        next.push_back(std::move(extended));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

std::string join_label(const std::vector<std::pair<std::string, std::string>>& tags) {
  std::string label;
  for (const auto& [key, value] : tags) {
    (void)key;
    if (!label.empty()) label += " | ";
    label += value;
  }
  return label;
}

}  // namespace

// ----------------------------------------------------------- PointSpec ----

std::string PointSpec::tag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return {};
}

// -------------------------------------------------- Gen2ScenarioBuilder ----

Gen2ScenarioBuilder::Gen2ScenarioBuilder(std::string name, txrx::Gen2Config base,
                                         txrx::Gen2LinkOptions base_options)
    : name_(std::move(name)), base_(base), base_options_(base_options) {}

Gen2ScenarioBuilder& Gen2ScenarioBuilder::description(std::string text) {
  description_ = std::move(text);
  return *this;
}

Gen2ScenarioBuilder& Gen2ScenarioBuilder::channels(std::vector<int> cms) {
  std::vector<Gen2Variant> variants;
  variants.reserve(cms.size());
  for (int cm : cms) {
    variants.push_back({channel_name(cm), [cm](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) {
                          o.cm = cm;
                        }});
  }
  return axis("channel", std::move(variants));
}

Gen2ScenarioBuilder& Gen2ScenarioBuilder::ebn0_grid(std::vector<double> ebn0_db) {
  std::vector<Gen2Variant> variants;
  variants.reserve(ebn0_db.size());
  for (double db : ebn0_db) {
    variants.push_back(
        {format_number(db), [db](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) {
           o.ebn0_db = db;
         }});
  }
  return axis("ebn0_db", std::move(variants));
}

Gen2ScenarioBuilder& Gen2ScenarioBuilder::axis(std::string axis_name,
                                               std::vector<Gen2Variant> variants) {
  detail::require(!variants.empty(), "scenario axis '" + axis_name + "' has no variants");
  axes_.emplace_back(std::move(axis_name), std::move(variants));
  return *this;
}

ScenarioSpec Gen2ScenarioBuilder::build() const {
  ScenarioSpec spec;
  spec.name = name_;
  spec.description = description_;
  for (const auto& row : expand_axes(axes_)) {
    PointSpec point;
    point.gen = Generation::kGen2;
    point.gen2 = base_;
    point.gen2_options = base_options_;
    for (std::size_t a = 0; a < row.size(); ++a) {
      row[a]->apply(point.gen2, point.gen2_options);
      point.tags.emplace_back(axes_[a].first, row[a]->name);
    }
    point.label = join_label(point.tags);
    spec.points.push_back(std::move(point));
  }
  return spec;
}

// -------------------------------------------------- Gen1ScenarioBuilder ----

Gen1ScenarioBuilder::Gen1ScenarioBuilder(std::string name, txrx::Gen1Config base,
                                         txrx::Gen1LinkOptions base_options)
    : name_(std::move(name)), base_(base), base_options_(base_options) {}

Gen1ScenarioBuilder& Gen1ScenarioBuilder::description(std::string text) {
  description_ = std::move(text);
  return *this;
}

Gen1ScenarioBuilder& Gen1ScenarioBuilder::channels(std::vector<int> cms) {
  std::vector<Gen1Variant> variants;
  variants.reserve(cms.size());
  for (int cm : cms) {
    variants.push_back({channel_name(cm), [cm](txrx::Gen1Config&, txrx::Gen1LinkOptions& o) {
                          o.cm = cm;
                        }});
  }
  return axis("channel", std::move(variants));
}

Gen1ScenarioBuilder& Gen1ScenarioBuilder::ebn0_grid(std::vector<double> ebn0_db) {
  std::vector<Gen1Variant> variants;
  variants.reserve(ebn0_db.size());
  for (double db : ebn0_db) {
    variants.push_back(
        {format_number(db), [db](txrx::Gen1Config&, txrx::Gen1LinkOptions& o) {
           o.ebn0_db = db;
         }});
  }
  return axis("ebn0_db", std::move(variants));
}

Gen1ScenarioBuilder& Gen1ScenarioBuilder::axis(std::string axis_name,
                                               std::vector<Gen1Variant> variants) {
  detail::require(!variants.empty(), "scenario axis '" + axis_name + "' has no variants");
  axes_.emplace_back(std::move(axis_name), std::move(variants));
  return *this;
}

ScenarioSpec Gen1ScenarioBuilder::build() const {
  ScenarioSpec spec;
  spec.name = name_;
  spec.description = description_;
  for (const auto& row : expand_axes(axes_)) {
    PointSpec point;
    point.gen = Generation::kGen1;
    point.gen1 = base_;
    point.gen1_options = base_options_;
    for (std::size_t a = 0; a < row.size(); ++a) {
      row[a]->apply(point.gen1, point.gen1_options);
      point.tags.emplace_back(axes_[a].first, row[a]->name);
    }
    point.label = join_label(point.tags);
    spec.points.push_back(std::move(point));
  }
  return spec;
}

// ----------------------------------------------------- ScenarioRegistry ----

namespace {

/// The paper's standard grids; each mirrors (and replaces) a hand-rolled
/// bench loop. Kept as factories so config structs are built on demand.
void register_builtins(ScenarioRegistry& registry) {
  registry.add("gen2_cm_grid", [] {
    txrx::Gen2LinkOptions options;
    options.payload_bits = 300;
    Gen2ScenarioBuilder builder("gen2_cm_grid", sim::gen2_fast(), options);
    builder.description("gen-2 100 Mbps link across CM0-CM4: full back end vs matched filter")
        .channels({0, 1, 2, 3, 4})
        .ebn0_grid({8.0, 12.0, 16.0})
        .axis("backend",
              {{"full", [](txrx::Gen2Config&, txrx::Gen2LinkOptions&) {}},
               {"mf_only", [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.use_rake = false;
                  c.use_mlse = false;
                }}});
    return builder.build();
  });

  registry.add("gen1_waterfall", [] {
    txrx::Gen1LinkOptions options;
    options.payload_bits = 48;
    options.genie_timing = true;
    Gen1ScenarioBuilder builder("gen1_waterfall", sim::gen1_fast(), options);
    builder.description("gen-1 193 kbps link: BER waterfall vs Eb/N0 on AWGN")
        .ebn0_grid({4.0, 6.0, 8.0, 10.0});
    return builder.build();
  });

  registry.add("gen2_backend_ladder", [] {
    txrx::Gen2LinkOptions options;
    options.payload_bits = 300;
    options.cm = 3;
    options.ebn0_db = 14.0;
    Gen2ScenarioBuilder builder("gen2_backend_ladder", sim::gen2_fast(), options);
    builder
        .description("power/complexity/QoS reconfiguration ladder on CM3 at 14 dB")
        .axis("backend",
              {{"minimal",
                [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.rake.num_fingers = 2;
                  c.use_mlse = false;
                  c.mlse.memory = 1;
                  c.sar.bits = 3;
                }},
               {"low",
                [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.rake.num_fingers = 4;
                  c.use_mlse = false;
                  c.mlse.memory = 1;
                  c.sar.bits = 4;
                }},
               {"nominal",
                [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.rake.num_fingers = 8;
                  c.use_mlse = true;
                  c.mlse.memory = 3;
                  c.sar.bits = 5;
                }},
               {"maximal",
                [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.rake.num_fingers = 16;
                  c.use_mlse = true;
                  c.mlse.memory = 5;
                  c.sar.bits = 6;
                }},
               {"coded", [](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) {
                  o.payload_bits = 200;
                  o.fec = fec::k7_rate_half();
                }}});
    return builder.build();
  });

  registry.add("gen2_interferer_notch", [] {
    txrx::Gen2LinkOptions options;
    options.payload_bits = 300;
    options.cm = 1;
    options.ebn0_db = 12.0;
    options.interferer = true;
    options.interferer_freq_hz = 80e6;
    Gen2ScenarioBuilder builder("gen2_interferer_notch", sim::gen2_fast(), options);
    builder
        .description("CW interferer vs the spectral-monitor-driven notch on CM1 at 12 dB")
        .axis("sir_db",
              {{"0", [](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) { o.interferer_sir_db = 0.0; }},
               {"-10", [](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) {
                  o.interferer_sir_db = -10.0;
                }}})
        .axis("notch", {{"off", [](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) {
                           o.auto_notch = false;
                         }},
                        {"auto", [](txrx::Gen2Config&, txrx::Gen2LinkOptions& o) {
                           o.auto_notch = true;
                         }}});
    return builder.build();
  });

  registry.add("gen2_modulation", [] {
    txrx::Gen2LinkOptions options;
    options.payload_bits = 300;
    Gen2ScenarioBuilder builder("gen2_modulation", sim::gen2_fast(), options);
    builder.description("modulation formats on AWGN (RAKE soft path, MLSE off)")
        .axis("modulation",
              {{"bpsk", [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.modulation = phy::Modulation::kBpsk;
                }},
               {"ook", [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.modulation = phy::Modulation::kOok;
                  c.use_mlse = false;
                }},
               {"ppm", [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.modulation = phy::Modulation::kPpm;
                  c.use_mlse = false;
                }},
               {"pam4", [](txrx::Gen2Config& c, txrx::Gen2LinkOptions&) {
                  c.modulation = phy::Modulation::kPam4;
                  c.use_mlse = false;
                }}})
        .ebn0_grid({8.0, 12.0, 16.0});
    return builder.build();
  });
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* instance = [] {
    auto* registry = new ScenarioRegistry();
    register_builtins(*registry);
    return registry;
  }();
  return *instance;
}

void ScenarioRegistry::add(const std::string& name, Factory factory) {
  detail::require(!name.empty(), "ScenarioRegistry: empty scenario name");
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

ScenarioSpec ScenarioRegistry::make(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw InvalidArgument("ScenarioRegistry: unknown scenario '" + name + "'");
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    out.push_back(name);
  }
  return out;
}

}  // namespace uwb::engine
