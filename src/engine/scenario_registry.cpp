#include "engine/scenario_registry.h"

#include <cstdio>

#include "common/error.h"
#include "fec/convolutional.h"
#include "sim/scenario.h"
#include "stats/sampling.h"

namespace uwb::engine {

namespace builder_detail {

std::string format_axis_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string channel_axis_name(int cm) {
  return cm == 0 ? "AWGN" : "CM" + std::to_string(cm);
}

std::string join_axis_label(const std::vector<std::pair<std::string, std::string>>& tags) {
  std::string label;
  for (const auto& [key, value] : tags) {
    (void)key;
    if (!label.empty()) label += " | ";
    label += value;
  }
  return label;
}

}  // namespace builder_detail

// ----------------------------------------------------------- PointSpec ----

std::string PointSpec::tag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return {};
}

// ---------------------------------------------------- restrict_scenario ----

void restrict_scenario(ScenarioSpec& scenario, const std::string& axis,
                       const std::string& values) {
  detail::require(!axis.empty(), "scenario override: empty axis name");
  bool axis_known = false;
  for (const auto& point : scenario.points) {
    for (const auto& [key, value] : point.tags) {
      (void)value;
      if (key == axis) {
        axis_known = true;
        break;
      }
    }
    if (axis_known) break;
  }
  detail::require(axis_known, "scenario '" + scenario.name + "' has no axis '" + axis +
                                  "' (override '" + axis + "=" + values + "')");

  std::vector<std::string> wanted;
  std::string::size_type start = 0;
  while (start <= values.size()) {
    const auto comma = values.find(',', start);
    const auto end = comma == std::string::npos ? values.size() : comma;
    wanted.push_back(values.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }

  std::vector<PointSpec> kept;
  for (auto& point : scenario.points) {
    const std::string value = point.tag(axis);
    for (const auto& w : wanted) {
      if (value == w) {
        kept.push_back(std::move(point));
        break;
      }
    }
  }
  detail::require(!kept.empty(), "scenario '" + scenario.name + "': no point has " + axis +
                                     " in '" + values + "'");
  scenario.points = std::move(kept);
}

// ----------------------------------------------------- ScenarioRegistry ----

namespace {

/// The paper's standard grids; each mirrors (and replaces) a hand-rolled
/// bench loop. Kept as factories so config structs are built on demand.
void register_builtins(ScenarioRegistry& registry) {
  registry.add("gen2_cm_grid", [] {
    txrx::TrialOptions options;
    options.payload_bits = 300;
    Gen2ScenarioBuilder builder("gen2_cm_grid", sim::gen2_fast(), options);
    builder.description("gen-2 100 Mbps link across CM0-CM4: full back end vs matched filter")
        .channels({0, 1, 2, 3, 4})
        .ebn0_grid({8.0, 12.0, 16.0})
        .axis("backend",
              {{"full", [](txrx::Gen2Config&, txrx::TrialOptions&) {}},
               {"mf_only", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.use_rake = false;
                  c.use_mlse = false;
                }}});
    return builder.build();
  });

  registry.add("gen1_waterfall", [] {
    txrx::TrialOptions options = txrx::default_options(Generation::kGen1);
    options.payload_bits = 48;
    options.genie_timing = true;
    Gen1ScenarioBuilder builder("gen1_waterfall", sim::gen1_fast(), options);
    builder.description("gen-1 193 kbps link: BER waterfall vs Eb/N0 on AWGN")
        .ebn0_grid({4.0, 6.0, 8.0, 10.0});
    return builder.build();
  });

  registry.add("gen2_backend_ladder", [] {
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 3;
    options.ebn0_db = 14.0;
    Gen2ScenarioBuilder builder("gen2_backend_ladder", sim::gen2_fast(), options);
    builder
        .description("power/complexity/QoS reconfiguration ladder on CM3 at 14 dB")
        .axis("backend",
              {{"minimal",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.rake.num_fingers = 2;
                  c.use_mlse = false;
                  c.mlse.memory = 1;
                  c.sar.bits = 3;
                }},
               {"low",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.rake.num_fingers = 4;
                  c.use_mlse = false;
                  c.mlse.memory = 1;
                  c.sar.bits = 4;
                }},
               {"nominal",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.rake.num_fingers = 8;
                  c.use_mlse = true;
                  c.mlse.memory = 3;
                  c.sar.bits = 5;
                }},
               {"maximal",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.rake.num_fingers = 16;
                  c.use_mlse = true;
                  c.mlse.memory = 5;
                  c.sar.bits = 6;
                }},
               {"coded", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                  o.payload_bits = 200;
                  o.fec = fec::k7_rate_half();
                }}});
    return builder.build();
  });

  registry.add("gen2_interferer_notch", [] {
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 1;
    options.ebn0_db = 12.0;
    options.interferer = true;
    options.interferer_freq_hz = 80e6;
    Gen2ScenarioBuilder builder("gen2_interferer_notch", sim::gen2_fast(), options);
    builder
        .description("CW interferer vs the spectral-monitor-driven notch on CM1 at 12 dB")
        .axis("sir_db",
              {{"0", [](txrx::Gen2Config&, txrx::TrialOptions& o) { o.interferer_sir_db = 0.0; }},
               {"-10", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                  o.interferer_sir_db = -10.0;
                }}})
        .axis("notch", {{"off", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                           o.auto_notch = false;
                         }},
                        {"auto", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                           o.auto_notch = true;
                         }}});
    return builder.build();
  });

  registry.add("gen2_modulation", [] {
    txrx::TrialOptions options;
    options.payload_bits = 300;
    Gen2ScenarioBuilder builder("gen2_modulation", sim::gen2_fast(), options);
    builder.description("modulation formats on AWGN (RAKE soft path, MLSE off)")
        .axis("modulation",
              {{"bpsk", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.modulation = phy::Modulation::kBpsk;
                  c.use_mlse = false;  // MLSE off everywhere: isolate the mapping
                }},
               {"ook", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.modulation = phy::Modulation::kOok;
                  c.use_mlse = false;
                }},
               {"ppm", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.modulation = phy::Modulation::kPpm;
                  c.use_mlse = false;
                }},
               {"pam4", [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.modulation = phy::Modulation::kPam4;
                  c.use_mlse = false;
                }}})
        .ebn0_grid({8.0, 12.0, 16.0});
    return builder.build();
  });

  registry.add("gen2_adc_resolution", [] {
    // E5's grid: BER vs SAR resolution, noise-limited vs a strong CW
    // interferer vs interferer + auto notch (ref [1]'s "1 bit suffices
    // noise-limited, 4 bits with an interferer").
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.ebn0_db = 10.0;
    Gen2ScenarioBuilder builder("gen2_adc_resolution", sim::gen2_fast(), options);
    builder
        .description("BER vs SAR ADC resolution: noise-limited vs CW interferer vs notch")
        .axis("adc_bits",
              [] {
                std::vector<Gen2Variant> variants;
                for (int bits : {1, 2, 3, 4, 5, 6}) {
                  variants.push_back({std::to_string(bits),
                                      [bits](txrx::Gen2Config& c, txrx::TrialOptions&) {
                                        c.sar.bits = bits;
                                        c.use_mlse = false;  // isolate the converter
                                      }});
                }
                return variants;
              }())
        .axis("regime",
              {{"clean",
                [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                  o.run_spectral_monitor = false;
                }},
               {"interferer",
                [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                  o.interferer = true;
                  o.interferer_sir_db = -15.0;
                  o.interferer_freq_hz = 140e6;
                  o.run_spectral_monitor = true;
                }},
               {"notched", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                  o.interferer = true;
                  o.interferer_sir_db = -15.0;
                  o.interferer_freq_hz = 140e6;
                  o.run_spectral_monitor = true;
                  o.auto_notch = true;  // the paper's mitigation: monitor + notch
                }}});
    return builder.build();
  });

  registry.add("gen1_acquisition", [] {
    // E11's grid (Section 1's "~20 us" preamble budget): detection /
    // timing reliability and lock time vs preamble length and Eb/N0.
    // Acquisition-kind trials: bits/errors count attempts and timing
    // failures; acquired / timing_correct / sync_time_s ride as metrics
    // (sync_time_s averages the detected trials only).
    txrx::TrialOptions options = txrx::default_options(Generation::kGen1);
    options.kind = txrx::TrialKind::kAcquisition;
    options.payload_bits = 8;
    options.genie_timing = false;
    Gen1ScenarioBuilder builder("gen1_acquisition", sim::gen1_nominal(), options);
    builder
        .description("gen-1 acquisition reliability vs preamble repetitions and Eb/N0")
        .axis("preamble_reps",
              [] {
                std::vector<Gen1Variant> variants;
                for (int reps : {2, 3}) {
                  variants.push_back({std::to_string(reps),
                                      [reps](txrx::Gen1Config& c, txrx::TrialOptions&) {
                                        c.preamble_repetitions = reps;
                                      }});
                }
                return variants;
              }())
        .ebn0_grid({8.0, 10.0, 12.0, 14.0});
    return builder.build();
  });

  registry.add("gen1_sync", [] {
    // E2's grid (Fig. 1): correlator-bank parallelism vs modeled sync time
    // and detection statistics -- "packet synchronization ... in less than
    // 70 us" through further parallelization.
    txrx::TrialOptions options = txrx::default_options(Generation::kGen1);
    options.kind = txrx::TrialKind::kAcquisition;
    options.payload_bits = 8;
    options.genie_timing = false;
    options.ebn0_db = 18.0;
    Gen1ScenarioBuilder builder("gen1_sync", sim::gen1_nominal(), options);
    builder
        .description("gen-1 sync time vs stage-1 correlator parallelism at 18 dB")
        .axis("parallelism", [] {
          std::vector<Gen1Variant> variants;
          for (std::size_t p1 : {8u, 32u, 128u, 648u}) {
            variants.push_back({std::to_string(p1),
                                [p1](txrx::Gen1Config& c, txrx::TrialOptions&) {
                                  c.acq_parallelism_stage1 = p1;
                                }});
          }
          return variants;
        }());
    return builder.build();
  });

  registry.add("gen2_chanest_precision", [] {
    // E6's grid (Section 3): BER vs the per-tap quantization of the
    // channel estimate feeding RAKE and MLSE ("a precision of up to four
    // bits"); tap_bits = "float" is the unquantized reference.
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 2;
    options.ebn0_db = 13.0;
    Gen2ScenarioBuilder builder("gen2_chanest_precision", sim::gen2_fast(), options);
    builder
        .description("BER vs channel-estimate tap precision on CM2 (paper: 4 bits)")
        .axis("tap_bits", [] {
          std::vector<Gen2Variant> variants;
          for (int bits : {0, 1, 2, 3, 4, 6}) {
            variants.push_back({bits == 0 ? "float" : std::to_string(bits),
                                [bits](txrx::Gen2Config& c, txrx::TrialOptions&) {
                                  c.chanest.quantization_bits = bits;
                                }});
          }
          return variants;
        }());
    return builder.build();
  });

  registry.add("gen2_mlse_isi", [] {
    // E8's first grid (Sections 1+3): matched filter vs RAKE vs RAKE+MLSE
    // across channel severities -- "the ISI due to multipath can be
    // addressed with a Viterbi demodulator".
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.ebn0_db = 14.0;
    Gen2ScenarioBuilder builder("gen2_mlse_isi", sim::gen2_fast(), options);
    builder
        .description("MF vs RAKE vs RAKE+MLSE across CM1-CM4 at 14 dB")
        .channels({1, 2, 3, 4})
        .axis("backend",
              {{"mf_only",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.use_rake = false;
                  c.use_mlse = false;
                }},
               {"rake",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.use_mlse = false;
                }},
               {"rake_mlse", [](txrx::Gen2Config&, txrx::TrialOptions&) {}}});
    return builder.build();
  });

  registry.add("gen2_mlse_memory", [] {
    // E8's second grid: the MLSE trellis-memory knob (the "States" input
    // of Fig. 3) on the most dispersive channel.
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 4;
    options.ebn0_db = 14.0;
    Gen2ScenarioBuilder builder("gen2_mlse_memory", sim::gen2_fast(), options);
    builder.description("MLSE trellis memory vs BER on CM4 at 14 dB")
        .axis("memory", [] {
          std::vector<Gen2Variant> variants;
          for (int memory : {1, 2, 3, 5}) {
            variants.push_back({std::to_string(memory),
                                [memory](txrx::Gen2Config& c, txrx::TrialOptions&) {
                                  c.mlse.memory = memory;
                                }});
          }
          return variants;
        }());
    return builder.build();
  });

  registry.add("gen2_rake_fingers", [] {
    // E7's BER half: finger count vs BER on CM2 at 12 dB (selective RAKE +
    // MLSE), the knee that makes a programmable finger count a power knob.
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 2;
    options.ebn0_db = 12.0;
    Gen2ScenarioBuilder builder("gen2_rake_fingers", sim::gen2_fast(), options);
    builder.description("RAKE finger count vs BER on CM2 at 12 dB (selective RAKE + MLSE)")
        .axis("fingers", [] {
          std::vector<Gen2Variant> variants;
          for (std::size_t fingers : {1u, 2u, 4u, 8u, 16u}) {
            variants.push_back({std::to_string(fingers),
                                [fingers](txrx::Gen2Config& c, txrx::TrialOptions&) {
                                  c.rake.num_fingers = fingers;
                                }});
          }
          return variants;
        }());
    return builder.build();
  });

  registry.add("gen2_pulse_shape", [] {
    // E1's link-level half: does the Fig. 4 pulse choice (RRC vs Gaussian
    // envelope, same 500 MHz bandwidth) cost BER on AWGN? Spectral
    // observables stay in bench_fig4_pulse; this grid is the engine-run
    // companion.
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 0;
    Gen2ScenarioBuilder builder("gen2_pulse_shape", sim::gen2_fast(), options);
    builder
        .description("gen-2 100 Mbps link on AWGN: RRC (Fig. 4) vs Gaussian pulse envelope")
        .axis("pulse",
              {{"rrc",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.pulse.shape = pulse::PulseShape::kRootRaisedCos;
                }},
               {"gaussian",
                [](txrx::Gen2Config& c, txrx::TrialOptions&) {
                  c.pulse.shape = pulse::PulseShape::kGaussian;
                }}})
        .ebn0_grid({4.0, 6.0, 8.0, 10.0});
    return builder.build();
  });

  registry.add("gen2_cm_grid_deep", [] {
    // The rare-event companion to gen2_cm_grid: Eb/N0 pushed into the
    // BER <= 1e-5 regime where plain Monte-Carlo sees zero errors on any
    // sane budget (6 dB stays shallow as the plain-vs-IS agreement
    // point). The "sampling" axis pairs every point with its noise-tilted
    // importance-sampled twin; CM1 points share a fixed channel ensemble
    // so the plain/IS comparison is over the same physical channels, not
    // two different fading draws.
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
    options.channel_source.ensemble_count = 32;
    Gen2ScenarioBuilder builder("gen2_cm_grid_deep", sim::gen2_fast(), options);
    builder
        .description("gen-2 deep-BER grid on AWGN/CM1: plain MC vs noise-tilt IS")
        .channels({0, 1})
        .ebn0_grid({6.0, 10.0, 12.0, 14.0, 16.0, 20.0})
        .axis("sampling",
              {{"plain", [](txrx::Gen2Config&, txrx::TrialOptions&) {}},
               {"is", [](txrx::Gen2Config&, txrx::TrialOptions& o) {
                  o.sampling.mode = stats::SamplingMode::kAutoLadder;
                  o.sampling.max_scale = 6.0;
                  o.sampling.levels = 4;
                }}});
    return builder.build();
  });

  registry.add("gen2_spectral_monitor", [] {
    // E9's detection half on the engine: detection probability, tone
    // frequency error and peak-over-median margin vs SIR, recorded as
    // per-point metrics (the BER column doubles as the jammed link's
    // packet error floor at 12 dB).
    txrx::TrialOptions options;
    options.payload_bits = 200;
    options.ebn0_db = 12.0;
    options.interferer = true;
    options.interferer_freq_hz = 150e6;
    options.run_spectral_monitor = true;
    Gen2ScenarioBuilder builder("gen2_spectral_monitor", sim::gen2_fast(), options);
    builder
        .description("spectral monitor: detection rate and tone frequency error vs SIR")
        .axis("sir_db", [] {
          std::vector<Gen2Variant> variants;
          for (double sir : {10.0, 0.0, -10.0, -20.0}) {
            variants.push_back({builder_detail::format_axis_number(sir),
                                [sir](txrx::Gen2Config&, txrx::TrialOptions& o) {
                                  o.interferer_sir_db = sir;
                                }});
          }
          return variants;
        }());
    return builder.build();
  });
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* instance = [] {
    auto* registry = new ScenarioRegistry();
    register_builtins(*registry);
    return registry;
  }();
  return *instance;
}

void ScenarioRegistry::add(const std::string& name, Factory factory) {
  detail::require(!name.empty(), "ScenarioRegistry: empty scenario name");
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

ScenarioSpec ScenarioRegistry::make(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw InvalidArgument("ScenarioRegistry: unknown scenario '" + name + "'");
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    out.push_back(name);
  }
  return out;
}

}  // namespace uwb::engine
