#include "engine/thread_pool.h"

#include <chrono>
#include <utility>

#include "obs/trace.h"

namespace uwb::engine {

namespace {
// Which pool/worker the current thread belongs to, so submit() from inside
// a task lands on the submitter's own deque (stealable by everyone else).
thread_local const ThreadPool* t_pool = nullptr;
thread_local std::size_t t_worker = 0;

std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, obs::TraceRecorder* recorder)
    : recorder_(recorder) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads);
  counters_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Deque>());
    counters_.push_back(std::make_unique<WorkerCounters>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (t_pool == this) {
    target = t_worker;
  } else {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    target = next_submit_++ % workers_.size();
  }
  // Count the task before it becomes visible to workers: otherwise a
  // thief could finish it and decrement first, letting wait_idle return
  // (or the counter wrap) while work is still outstanding.
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    ++unfinished_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(signal_mutex_);
  idle_.wait(lock, [this] { return unfinished_ == 0; });
}

std::vector<obs::PoolWorkerStats> ThreadPool::worker_stats() const {
  std::vector<obs::PoolWorkerStats> stats;
  stats.reserve(counters_.size());
  for (const auto& c : counters_) {
    obs::PoolWorkerStats w;
    w.executed = c->executed.load(std::memory_order_relaxed);
    w.stolen = c->stolen.load(std::memory_order_relaxed);
    w.idle_us = c->idle_us.load(std::memory_order_relaxed);
    stats.push_back(w);
  }
  return stats;
}

bool ThreadPool::try_pop(std::size_t id, std::function<void()>& task, bool& stolen) {
  // Own deque first (back: most recently pushed).
  {
    std::lock_guard<std::mutex> lock(workers_[id]->mutex);
    if (!workers_[id]->tasks.empty()) {
      task = std::move(workers_[id]->tasks.back());
      workers_[id]->tasks.pop_back();
      stolen = false;
      return true;
    }
  }
  // Steal from the front of the other deques, starting just past ours so
  // thieves spread out instead of all hammering worker 0.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    const std::size_t victim = (id + k) % workers_.size();
    std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
    if (!workers_[victim]->tasks.empty()) {
      task = std::move(workers_[victim]->tasks.front());
      workers_[victim]->tasks.pop_front();
      stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  t_pool = this;
  t_worker = id;
  WorkerCounters& counters = *counters_[id];
  if (recorder_ != nullptr) {
    recorder_->name_thread("pool worker " + std::to_string(id));
  }
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (try_pop(id, task, stolen)) {
      counters.executed.fetch_add(1, std::memory_order_relaxed);
      if (stolen) counters.stolen.fetch_add(1, std::memory_order_relaxed);
      if (recorder_ != nullptr) {
        obs::Span span(recorder_, "pool", stolen ? "task (stolen)" : "task");
        task();
      } else {
        task();
      }
      std::lock_guard<std::mutex> lock(signal_mutex_);
      if (--unfinished_ == 0) idle_.notify_all();
      continue;
    }
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(signal_mutex_);
    if (stopping_) return;
    if (unfinished_ == 0) {
      // Nothing queued anywhere; sleep until new work or shutdown.
      work_available_.wait(lock);
      counters.idle_us.fetch_add(us_since(wait_start), std::memory_order_relaxed);
      continue;
    }
    // Work exists but another worker holds it; brief wait then rescan
    // (covers the race where a task was queued between pop and lock).
    work_available_.wait_for(lock, std::chrono::milliseconds(1));
    counters.idle_us.fetch_add(us_since(wait_start), std::memory_order_relaxed);
  }
}

}  // namespace uwb::engine
