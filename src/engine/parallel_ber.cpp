#include "engine/parallel_ber.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "engine/metric_accumulator.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace uwb::engine {

namespace {

/// Workers fold consecutive executed trials into one trace span apiece so
/// a 100k-trial point emits ~1.5k events instead of 100k. Chunks flush at
/// this size or when the worker leaves its claim loop.
constexpr std::size_t kTraceChunkTrials = 64;

/// Why the stopping rule fired, for the trace's "stop" instant event.
const char* stop_reason(const MetricAccumulator& acc, const sim::BerStop& stop,
                        std::size_t committed) {
  if (stop.target_rel_ci_width > 0.0 && acc.ci_target_met()) return "ci_target";
  if (stop.target_rel_ci_width <= 0.0 && acc.committed_errors() >= stop.min_errors) {
    return "min_errors";
  }
  if (acc.committed_bits() >= stop.max_bits) return "max_bits";
  if (committed >= stop.max_trials) return "max_trials";
  return "unknown";
}

}  // namespace

sim::MeasuredPoint measure_point_serial(const TrialFn& trial, const sim::BerStop& stop,
                                        const Rng& root, stats::CiMethod ci_method) {
  MetricAccumulator acc(stop, ci_method);
  std::size_t trials = 0;
  while (acc.keep_going(trials)) {
    Rng trial_rng = root.fork(trials);
    acc.commit(trial(trials, trial_rng));
    ++trials;
  }
  return acc.finish(trials);
}

sim::MeasuredPoint measure_point_parallel(const TrialFactory& factory,
                                          const sim::BerStop& stop, const Rng& root,
                                          ThreadPool& pool, const PointHooks& hooks,
                                          stats::CiMethod ci_method) {
  // Shared ordered-commit state. Workers race ahead claiming trial indices
  // but outcomes only count once every lower-indexed trial has counted and
  // the stopping rule was still live -- the sequential semantics exactly.
  struct Shared {
    Shared(const sim::BerStop& stop, stats::CiMethod method) : acc(stop, method) {}
    std::mutex mutex;
    std::condition_variable window_open;   // speculation window advanced / stop
    std::condition_variable workers_done;
    std::deque<std::optional<sim::TrialOutcome>> window;  // slot k = trial committed+k
    std::size_t next_claim = 0;
    std::size_t committed = 0;
    MetricAccumulator acc;
    bool stopped = false;
    std::size_t active_workers = 0;
  } shared(stop, ci_method);

  // Degenerate budgets: nothing to run (matches the serial loop).
  if (!shared.acc.keep_going(0)) return shared.acc.finish(0);

  const std::size_t num_workers = std::max<std::size_t>(1, pool.size());
  // How far past the commit frontier workers may speculate. Large enough to
  // keep every worker busy, small enough to bound discarded work and memory.
  const std::size_t window_cap = std::max<std::size_t>(64, 8 * num_workers);

  shared.active_workers = num_workers;
  for (std::size_t w = 0; w < num_workers; ++w) {
    pool.submit([&factory, &stop, &root, &shared, window_cap, hooks] {
      // Stage profiling covers the whole task -- factory setup included --
      // via the thread-local activation (see obs/profile.h).
      const obs::ScopedStageProfile profile_scope(hooks.profile);
      const TrialFn trial = factory();
      // Trace chunking: consecutive executed trials fold into one span
      // (see kTraceChunkTrials). Telemetry only -- never touches Rng or
      // commit state, so results are identical with hooks on or off.
      std::uint64_t chunk_start_us = 0;
      std::size_t chunk_first = 0;
      std::size_t chunk_count = 0;
      const auto flush_chunk = [&hooks, &chunk_start_us, &chunk_first, &chunk_count] {
        if (hooks.trace == nullptr || chunk_count == 0) return;
        obs::TraceEvent event;
        event.kind = obs::TraceEvent::Kind::kSpan;
        event.category = "engine";
        event.name = "trials";
        event.ts_us = chunk_start_us;
        event.dur_us = hooks.trace->now_us() - chunk_start_us;
        event.args.push_back(obs::trace_arg("first", static_cast<std::uint64_t>(chunk_first)));
        event.args.push_back(obs::trace_arg("count", static_cast<std::uint64_t>(chunk_count)));
        hooks.trace->record(std::move(event));
        chunk_count = 0;
      };

      for (;;) {
        std::size_t index;
        {
          std::unique_lock<std::mutex> lock(shared.mutex);
          if (hooks.cancelled() && !shared.stopped) {
            // Cancellation rides the normal stop path so peers waiting on
            // the speculation window wake up and exit too. (A signal
            // handler can only set the flag, never notify; the first
            // worker to reach this check does the notifying.)
            shared.stopped = true;
            shared.window_open.notify_all();
          }
          if (shared.stopped || shared.next_claim >= stop.max_trials) break;
          index = shared.next_claim++;
          // Speculation bound: wait until this index is near the frontier.
          shared.window_open.wait(lock, [&] {
            return shared.stopped || index < shared.committed + window_cap;
          });
          if (shared.stopped) break;
        }

        if (hooks.trace != nullptr && chunk_count == 0) {
          chunk_start_us = hooks.trace->now_us();
          chunk_first = index;
        }

        Rng trial_rng = root.fork(index);
        sim::TrialOutcome out = trial(index, trial_rng);

        ++chunk_count;
        if (chunk_count >= kTraceChunkTrials) flush_chunk();
        if (hooks.progress != nullptr) {
          hooks.progress->add_trials(1);
          hooks.progress->add_bits(out.bits);
          hooks.progress->add_errors(out.errors);
        }

        std::lock_guard<std::mutex> lock(shared.mutex);
        if (shared.stopped) break;
        const std::size_t slot = index - shared.committed;
        if (shared.window.size() <= slot) shared.window.resize(slot + 1);
        shared.window[slot] = std::move(out);
        // Advance the frontier: commit in index order under the rule.
        while (!shared.window.empty() && shared.window.front().has_value()) {
          if (!shared.acc.keep_going(shared.committed)) break;
          shared.acc.commit(*shared.window.front());
          ++shared.committed;
          shared.window.pop_front();
        }
        if (!shared.acc.keep_going(shared.committed)) {
          if (!shared.stopped && hooks.trace != nullptr) {
            hooks.trace->instant(
                "engine", "stop",
                {obs::trace_arg("reason",
                                std::string(stop_reason(shared.acc, stop, shared.committed))),
                 obs::trace_arg("trials", static_cast<std::uint64_t>(shared.committed)),
                 obs::trace_arg("bits", static_cast<std::uint64_t>(shared.acc.committed_bits())),
                 obs::trace_arg("errors",
                                static_cast<std::uint64_t>(shared.acc.committed_errors()))});
          }
          shared.stopped = true;
        }
        shared.window_open.notify_all();
      }
      flush_chunk();

      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.active_workers == 0) shared.workers_done.notify_all();
      shared.window_open.notify_all();  // release peers still waiting
    });
  }

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.workers_done.wait(lock, [&] { return shared.active_workers == 0; });
  // All workers exited. Either the rule tripped (stopped) or every index up
  // to max_trials was claimed; drain any committed-prefix stragglers.
  while (!shared.window.empty() && shared.window.front().has_value() &&
         shared.acc.keep_going(shared.committed)) {
    shared.acc.commit(*shared.window.front());
    ++shared.committed;
    shared.window.pop_front();
  }
  return shared.acc.finish(shared.committed);
}

sim::BerPoint measure_ber_serial(const TrialFn& trial, const sim::BerStop& stop,
                                 const Rng& root) {
  return measure_point_serial(trial, stop, root).ber;
}

sim::BerPoint measure_ber_parallel(const TrialFactory& factory, const sim::BerStop& stop,
                                   const Rng& root, ThreadPool& pool) {
  return measure_point_parallel(factory, stop, root, pool).ber;
}

}  // namespace uwb::engine
