#include "engine/parallel_ber.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "engine/metric_accumulator.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace uwb::engine {

namespace {

/// Workers fold consecutive executed trials into one trace span apiece so
/// a 100k-trial point emits ~1.5k events instead of 100k. Chunks flush at
/// this size or when the worker leaves its claim loop.
constexpr std::size_t kTraceChunkTrials = 64;

/// Why the stopping rule fired, for the trace's "stop" instant event.
const char* stop_reason(const MetricAccumulator& acc, const sim::BerStop& stop,
                        std::size_t committed) {
  if (stop.target_rel_ci_width > 0.0 && acc.ci_target_met()) return "ci_target";
  if (stop.target_rel_ci_width <= 0.0 && acc.committed_errors() >= stop.min_errors) {
    return "min_errors";
  }
  if (acc.committed_bits() >= stop.max_bits) return "max_bits";
  if (committed >= stop.max_trials) return "max_trials";
  return "unknown";
}

}  // namespace

sim::MeasuredPoint measure_point_serial(const TrialFn& trial, const sim::BerStop& stop,
                                        const Rng& root, stats::CiMethod ci_method) {
  // One worker, ordered commits: exactly the sequential loop's semantics,
  // produced by the one trial engine in the tree.
  ThreadPool pool(1);
  return measure_point_parallel([&trial]() -> TrialFn { return trial; }, stop, root, pool,
                                {}, ci_method);
}

sim::MeasuredPoint measure_point_parallel(const TrialFactory& factory,
                                          const sim::BerStop& stop, const Rng& root,
                                          ThreadPool& pool, const PointHooks& hooks,
                                          stats::CiMethod ci_method) {
  return measure_point_batched(
      [&factory]() -> BatchFn {
        return [trial = factory()](std::size_t first, std::size_t count, const Rng& root,
                                   sim::TrialOutcome* out) {
          for (std::size_t k = 0; k < count; ++k) {
            Rng trial_rng = root.fork(first + k);
            out[k] = trial(first + k, trial_rng);
          }
        };
      },
      1, stop, root, pool, hooks, ci_method);
}

sim::MeasuredPoint measure_point_batched(const BatchFactory& factory,
                                         std::size_t batch_size, const sim::BerStop& stop,
                                         const Rng& root, ThreadPool& pool,
                                         const PointHooks& hooks,
                                         stats::CiMethod ci_method) {
  // Shared ordered-commit state. Workers race ahead claiming trial indices
  // but outcomes only count once every lower-indexed trial has counted and
  // the stopping rule was still live -- the sequential semantics exactly.
  struct Shared {
    Shared(const sim::BerStop& stop, stats::CiMethod method) : acc(stop, method) {}
    std::mutex mutex;
    std::condition_variable window_open;   // speculation window advanced / stop
    std::condition_variable workers_done;
    std::deque<std::optional<sim::TrialOutcome>> window;  // slot k = trial committed+k
    std::size_t next_claim = 0;
    std::size_t committed = 0;
    MetricAccumulator acc;
    bool stopped = false;
    std::size_t active_workers = 0;
  } shared(stop, ci_method);

  // Degenerate budgets: nothing to run (matches the serial loop).
  if (!shared.acc.keep_going(0)) return shared.acc.finish(0);

  const std::size_t num_workers = std::max<std::size_t>(1, pool.size());
  const std::size_t batch = std::max<std::size_t>(1, batch_size);
  // How far past the commit frontier workers may speculate. Large enough to
  // keep every worker busy (whole batches included), small enough to bound
  // discarded work and memory.
  const std::size_t window_cap =
      std::max<std::size_t>({64, 8 * num_workers, 2 * batch * num_workers});

  shared.active_workers = num_workers;
  for (std::size_t w = 0; w < num_workers; ++w) {
    pool.submit([&factory, &stop, &root, &shared, window_cap, batch, hooks] {
      // Stage profiling covers the whole task -- factory setup included --
      // via the thread-local activation (see obs/profile.h).
      const obs::ScopedStageProfile profile_scope(hooks.profile);
      const BatchFn run_batch = factory();
      std::vector<sim::TrialOutcome> outs;
      // Trace chunking: consecutive executed trials fold into one span
      // (see kTraceChunkTrials). Telemetry only -- never touches Rng or
      // commit state, so results are identical with hooks on or off.
      std::uint64_t chunk_start_us = 0;
      std::size_t chunk_first = 0;
      std::size_t chunk_count = 0;
      const auto flush_chunk = [&hooks, &chunk_start_us, &chunk_first, &chunk_count] {
        if (hooks.trace == nullptr || chunk_count == 0) return;
        obs::TraceEvent event;
        event.kind = obs::TraceEvent::Kind::kSpan;
        event.category = "engine";
        event.name = "trials";
        event.ts_us = chunk_start_us;
        event.dur_us = hooks.trace->now_us() - chunk_start_us;
        event.args.push_back(obs::trace_arg("first", static_cast<std::uint64_t>(chunk_first)));
        event.args.push_back(obs::trace_arg("count", static_cast<std::uint64_t>(chunk_count)));
        hooks.trace->record(std::move(event));
        chunk_count = 0;
      };

      for (;;) {
        std::size_t first;
        std::size_t count;
        {
          std::unique_lock<std::mutex> lock(shared.mutex);
          if (hooks.cancelled() && !shared.stopped) {
            // Cancellation rides the normal stop path so peers waiting on
            // the speculation window wake up and exit too. (A signal
            // handler can only set the flag, never notify; the first
            // worker to reach this check does the notifying.)
            shared.stopped = true;
            shared.window_open.notify_all();
          }
          if (shared.stopped || shared.next_claim >= stop.max_trials) break;
          first = shared.next_claim;
          count = std::min(batch, stop.max_trials - first);
          shared.next_claim += count;
          // Speculation bound: wait until the claim starts near the
          // frontier (a batch may extend past the cap by at most one
          // batch length; the cap accounts for that).
          shared.window_open.wait(lock, [&] {
            return shared.stopped || first < shared.committed + window_cap;
          });
          if (shared.stopped) break;
        }

        if (hooks.trace != nullptr && chunk_count == 0) {
          chunk_start_us = hooks.trace->now_us();
          chunk_first = first;
        }

        outs.resize(count);
        run_batch(first, count, root, outs.data());

        chunk_count += count;
        if (chunk_count >= kTraceChunkTrials) flush_chunk();
        if (hooks.progress != nullptr) {
          std::size_t batch_bits = 0;
          std::size_t batch_errors = 0;
          for (const sim::TrialOutcome& out : outs) {
            batch_bits += out.bits;
            batch_errors += out.errors;
          }
          hooks.progress->add_trials(count);
          hooks.progress->add_bits(batch_bits);
          hooks.progress->add_errors(batch_errors);
        }

        std::lock_guard<std::mutex> lock(shared.mutex);
        if (shared.stopped) break;
        const std::size_t base = first - shared.committed;
        if (shared.window.size() < base + count) shared.window.resize(base + count);
        for (std::size_t k = 0; k < count; ++k) {
          shared.window[base + k] = std::move(outs[k]);
        }
        // Advance the frontier: commit in index order under the rule.
        while (!shared.window.empty() && shared.window.front().has_value()) {
          if (!shared.acc.keep_going(shared.committed)) break;
          shared.acc.commit(*shared.window.front());
          ++shared.committed;
          shared.window.pop_front();
        }
        if (!shared.acc.keep_going(shared.committed)) {
          if (!shared.stopped && hooks.trace != nullptr) {
            hooks.trace->instant(
                "engine", "stop",
                {obs::trace_arg("reason",
                                std::string(stop_reason(shared.acc, stop, shared.committed))),
                 obs::trace_arg("trials", static_cast<std::uint64_t>(shared.committed)),
                 obs::trace_arg("bits", static_cast<std::uint64_t>(shared.acc.committed_bits())),
                 obs::trace_arg("errors",
                                static_cast<std::uint64_t>(shared.acc.committed_errors()))});
          }
          shared.stopped = true;
        }
        shared.window_open.notify_all();
      }
      flush_chunk();

      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.active_workers == 0) shared.workers_done.notify_all();
      shared.window_open.notify_all();  // release peers still waiting
    });
  }

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.workers_done.wait(lock, [&] { return shared.active_workers == 0; });
  // All workers exited. Either the rule tripped (stopped) or every index up
  // to max_trials was claimed; drain any committed-prefix stragglers.
  while (!shared.window.empty() && shared.window.front().has_value() &&
         shared.acc.keep_going(shared.committed)) {
    shared.acc.commit(*shared.window.front());
    ++shared.committed;
    shared.window.pop_front();
  }
  return shared.acc.finish(shared.committed);
}

sim::BerPoint measure_ber_serial(const TrialFn& trial, const sim::BerStop& stop,
                                 const Rng& root) {
  return measure_point_serial(trial, stop, root).ber;
}

sim::BerPoint measure_ber_parallel(const TrialFactory& factory, const sim::BerStop& stop,
                                   const Rng& root, ThreadPool& pool) {
  return measure_point_parallel(factory, stop, root, pool).ber;
}

}  // namespace uwb::engine
