#include "engine/parallel_ber.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "engine/metric_accumulator.h"

namespace uwb::engine {

sim::MeasuredPoint measure_point_serial(const TrialFn& trial, const sim::BerStop& stop,
                                        const Rng& root) {
  MetricAccumulator acc(stop);
  std::size_t trials = 0;
  while (acc.keep_going(trials)) {
    Rng trial_rng = root.fork(trials);
    acc.commit(trial(trials, trial_rng));
    ++trials;
  }
  return acc.finish(trials);
}

sim::MeasuredPoint measure_point_parallel(const TrialFactory& factory,
                                          const sim::BerStop& stop, const Rng& root,
                                          ThreadPool& pool) {
  // Shared ordered-commit state. Workers race ahead claiming trial indices
  // but outcomes only count once every lower-indexed trial has counted and
  // the stopping rule was still live -- the sequential semantics exactly.
  struct Shared {
    explicit Shared(const sim::BerStop& stop) : acc(stop) {}
    std::mutex mutex;
    std::condition_variable window_open;   // speculation window advanced / stop
    std::condition_variable workers_done;
    std::deque<std::optional<sim::TrialOutcome>> window;  // slot k = trial committed+k
    std::size_t next_claim = 0;
    std::size_t committed = 0;
    MetricAccumulator acc;
    bool stopped = false;
    std::size_t active_workers = 0;
  } shared(stop);

  // Degenerate budgets: nothing to run (matches the serial loop).
  if (!shared.acc.keep_going(0)) return shared.acc.finish(0);

  const std::size_t num_workers = std::max<std::size_t>(1, pool.size());
  // How far past the commit frontier workers may speculate. Large enough to
  // keep every worker busy, small enough to bound discarded work and memory.
  const std::size_t window_cap = std::max<std::size_t>(64, 8 * num_workers);

  shared.active_workers = num_workers;
  for (std::size_t w = 0; w < num_workers; ++w) {
    pool.submit([&factory, &stop, &root, &shared, window_cap] {
      const TrialFn trial = factory();
      for (;;) {
        std::size_t index;
        {
          std::unique_lock<std::mutex> lock(shared.mutex);
          if (shared.stopped || shared.next_claim >= stop.max_trials) break;
          index = shared.next_claim++;
          // Speculation bound: wait until this index is near the frontier.
          shared.window_open.wait(lock, [&] {
            return shared.stopped || index < shared.committed + window_cap;
          });
          if (shared.stopped) break;
        }

        Rng trial_rng = root.fork(index);
        sim::TrialOutcome out = trial(index, trial_rng);

        std::lock_guard<std::mutex> lock(shared.mutex);
        if (shared.stopped) break;
        const std::size_t slot = index - shared.committed;
        if (shared.window.size() <= slot) shared.window.resize(slot + 1);
        shared.window[slot] = std::move(out);
        // Advance the frontier: commit in index order under the rule.
        while (!shared.window.empty() && shared.window.front().has_value()) {
          if (!shared.acc.keep_going(shared.committed)) break;
          shared.acc.commit(*shared.window.front());
          ++shared.committed;
          shared.window.pop_front();
        }
        if (!shared.acc.keep_going(shared.committed)) {
          shared.stopped = true;
        }
        shared.window_open.notify_all();
      }

      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.active_workers == 0) shared.workers_done.notify_all();
      shared.window_open.notify_all();  // release peers still waiting
    });
  }

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.workers_done.wait(lock, [&] { return shared.active_workers == 0; });
  // All workers exited. Either the rule tripped (stopped) or every index up
  // to max_trials was claimed; drain any committed-prefix stragglers.
  while (!shared.window.empty() && shared.window.front().has_value() &&
         shared.acc.keep_going(shared.committed)) {
    shared.acc.commit(*shared.window.front());
    ++shared.committed;
    shared.window.pop_front();
  }
  return shared.acc.finish(shared.committed);
}

sim::BerPoint measure_ber_serial(const TrialFn& trial, const sim::BerStop& stop,
                                 const Rng& root) {
  return measure_point_serial(trial, stop, root).ber;
}

sim::BerPoint measure_ber_parallel(const TrialFactory& factory, const sim::BerStop& stop,
                                   const Rng& root, ThreadPool& pool) {
  return measure_point_parallel(factory, stop, root, pool).ber;
}

}  // namespace uwb::engine
