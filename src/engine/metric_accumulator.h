#pragma once
/// \file metric_accumulator.h
/// \brief The reduction layer between trial outcomes and measured points:
///        BER counters (weighted when trials are importance-sampled) plus
///        per-metric count/sum/sum-of-squares, with the generalized
///        stopping rule evaluated on commit.
///
/// One accumulator instance backs one grid point. The ordered-commit loop
/// (engine/parallel_ber.cpp) feeds it committed outcomes strictly in
/// trial-index order, so every reduction -- including the floating-point
/// sums -- accumulates in the same order for any worker count, and the
/// finished MeasuredPoint is byte-identical across 1..N workers. Shards
/// never split a point, so cross-shard "merging" happens at the result-
/// document level (io/result_io.h) where points are atomic records.

#include <cstddef>

#include "sim/ber_simulator.h"
#include "stats/binomial_ci.h"
#include "stats/weighted.h"

namespace uwb::engine {

class MetricAccumulator {
 public:
  explicit MetricAccumulator(const sim::BerStop& stop,
                             stats::CiMethod ci_method = stats::CiMethod::kClopperPearson)
      : stop_(stop), ci_method_(ci_method) {}

  /// True while the stopping rule allows committing another trial. The
  /// error budget counts bit errors by default; when stop.metric is set it
  /// counts committed trials whose named metric was absent or zero. A
  /// target_rel_ci_width > 0 replaces the error budget with a relative
  /// CI-width check; max_bits/max_trials stay as hard caps either way.
  [[nodiscard]] bool keep_going(std::size_t committed_trials) const {
    if (ber_.bits() >= stop_.max_bits || committed_trials >= stop_.max_trials) {
      return false;
    }
    if (stop_.target_rel_ci_width > 0.0) return !ci_target_met();
    return error_count() < stop_.min_errors;
  }

  /// Counts one committed trial (call in trial-index order).
  void commit(const sim::TrialOutcome& outcome);

  /// The finished point after \p trials committed trials.
  [[nodiscard]] sim::MeasuredPoint finish(std::size_t trials) const;

  /// Committed totals so far (telemetry: stop-rule decision events).
  [[nodiscard]] std::size_t committed_bits() const noexcept { return ber_.bits(); }
  [[nodiscard]] std::size_t committed_errors() const noexcept { return error_count(); }

  /// Whether the CI-width target (if any) is the reason the rule stopped.
  [[nodiscard]] bool ci_target_met() const;

 private:
  [[nodiscard]] std::size_t error_count() const noexcept {
    return stop_.metric.empty() ? ber_.errors() : metric_errors_;
  }

  sim::BerStop stop_;
  stats::CiMethod ci_method_;
  sim::BerCounter ber_;
  stats::WeightedBer weighted_;  ///< parallel weighted sums (importance sampling)
  bool any_weighted_ = false;
  sim::MetricSet metrics_;
  std::size_t metric_errors_ = 0;  ///< failed-trial count for stop_.metric
};

}  // namespace uwb::engine
