#include "engine/sweep_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>

#include "common/error.h"
#include "stats/adaptive.h"
#include "dsp/fft.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "txrx/link.h"
#include "txrx/packet_batch.h"

namespace uwb::engine {

namespace {

// Salts separating the two per-point child streams (see sweep_engine.h).
constexpr uint64_t kTrialStreamSalt = 0;
constexpr uint64_t kLinkSeedSalt = 1;

/// Worker-local trial state for one grid point: the factory hands every
/// worker its own link (links are not safe for concurrent trials) wrapped
/// in a txrx::PacketBatch, all built from the same seed so the simulated
/// hardware is identical. For ensemble-mode points the shared realizations
/// ride along and trial i resolves to realization i % count -- index-keyed,
/// so any worker gets the same channel for the same trial, and the batch
/// executor groups same-realization trials to reuse per-realization link
/// state. The per-trial outcome conversion (sampling context, metric
/// filtering) lives in PacketBatch::run_one.
BatchFactory make_batch_factory(const PointSpec& spec, uint64_t link_seed,
                                std::shared_ptr<const ChannelEnsemble> ensemble) {
  return [&spec, link_seed, ensemble]() -> BatchFn {
    std::shared_ptr<txrx::Link> link = txrx::make_link(spec.link, link_seed);
    txrx::ChannelResolver resolver;
    if (ensemble != nullptr) {
      resolver = [ensemble](std::size_t index) -> const channel::Cir* {
        return &ensemble->realization_for_trial(index);
      };
    }
    auto executor = std::make_shared<txrx::PacketBatch>(std::move(link),
                                                        spec.link.options,
                                                        std::move(resolver));
    return [executor](std::size_t first, std::size_t count, const Rng& root,
                      sim::TrialOutcome* out) { executor->run(first, count, root, out); };
  };
}

/// Loud up-front check that a metric-targeting stop rule can actually see
/// its metric on every point: the metric must be one the point's trial
/// kind emits AND survive the point's record_metrics filter -- otherwise
/// no trial would ever succeed and the rule would degenerate to the
/// trial/bit budgets without a word.
void validate_stop_metric(const ScenarioSpec& scenario, const std::string& metric) {
  for (std::size_t p = 0; p < scenario.points.size(); ++p) {
    const PointSpec& point = scenario.points[p];
    const std::vector<std::string>& recorded = point.link.options.record_metrics;
    const bool visible =
        txrx::emits_metric(point.link.generation(), point.link.options.kind, metric) &&
        (recorded.empty() ||
         std::find(recorded.begin(), recorded.end(), metric) != recorded.end());
    if (!visible) {
      throw InvalidArgument("scenario '" + scenario.name + "' point " +
                            std::to_string(p) + " ('" + point.label +
                            "') does not record stop metric '" + metric + "'");
    }
  }
}

}  // namespace

const PointRecord* SweepResult::find(
    const std::vector<std::pair<std::string, std::string>>& tags) const {
  for (const auto& record : records) {
    bool all = true;
    for (const auto& [key, value] : tags) {
      if (record.spec.tag(key) != value) {
        all = false;
        break;
      }
    }
    if (all) return &record;
  }
  return nullptr;
}

SweepEngine::SweepEngine(SweepConfig config) : config_(config) {
  detail::require(config_.shard_count >= 1, "SweepEngine: shard_count must be >= 1");
  detail::require(config_.shard_index < config_.shard_count,
                  "SweepEngine: shard_index must be < shard_count");
}

SweepResult SweepEngine::run(const ScenarioSpec& scenario,
                             const std::vector<ResultSink*>& sinks) {
  // Fail fast on a bad plan (e.g. a hand-written spec asking gen-1 for an
  // interferer): every point is validated before any trial runs, so an
  // invalid late point cannot discard hours of completed work mid-sweep.
  for (std::size_t p = 0; p < scenario.points.size(); ++p) {
    try {
      txrx::validate_spec(scenario.points[p].link);
    } catch (const Error& e) {
      throw InvalidArgument("scenario '" + scenario.name + "' point " +
                            std::to_string(p) + " ('" + scenario.points[p].label +
                            "'): " + e.what());
    }
  }
  if (!config_.stop.metric.empty()) validate_stop_metric(scenario, config_.stop.metric);

  SweepResult result;
  result.info.scenario = scenario.name;
  result.info.seed = config_.seed;
  result.info.stop = config_.stop;
  result.info.num_points = scenario.points.size();

  for (ResultSink* sink : sinks) sink->begin(result.info);

  // Telemetry baselines: caches are long-lived (possibly process-global),
  // so the run's counters are deltas over this run alone.
  ChannelCache& cache =
      config_.channel_cache != nullptr ? *config_.channel_cache : ChannelCache::global();
  const ChannelCache::Stats cache_before = cache.stats();
  const dsp::FftPlanCacheStats fft_before = dsp::fft_plan_cache_stats();
  const auto run_start = std::chrono::steady_clock::now();

  if (config_.trace != nullptr) config_.trace->name_thread("engine");
  obs::Span run_span(config_.trace, "engine", "run " + scenario.name);
  run_span.arg("seed", config_.seed);

  ThreadPool pool(config_.workers, config_.trace);

  if (config_.progress != nullptr) {
    std::size_t shard_points = 0;
    for (std::size_t p = 0; p < scenario.points.size(); ++p) {
      if (p % config_.shard_count == config_.shard_index) ++shard_points;
    }
    config_.progress->begin_run(shard_points);
  }

  const Rng sweep_root(config_.seed);
  const PointHooks hooks{config_.trace, config_.progress, config_.profile, config_.cancel};
  std::uint64_t traced_trials = 0;
  std::uint64_t traced_errors = 0;
  obs::StageTable traced_stage_totals;  // cumulative, for the counter track

  // Points run one after another; the pool parallelizes the trials inside
  // each point. That keeps sink delivery in plan order and makes every
  // point's result an independent pure function of (seed, point_index) --
  // including under sharding, which only skips points and never re-indexes.
  for (std::size_t p = 0; p < scenario.points.size(); ++p) {
    if (p % config_.shard_count != config_.shard_index) continue;
    if (hooks.cancelled()) {
      result.interrupted = true;
      break;
    }
    const PointSpec& spec = scenario.points[p];
    const Rng point_root = sweep_root.fork(p);
    const Rng trial_root = point_root.fork(kTrialStreamSalt);
    const uint64_t link_seed = point_root.fork(kLinkSeedSalt).seed();

    if (config_.progress != nullptr) config_.progress->begin_point(p, spec.label);
    obs::Span point_span(config_.trace, "engine", "point " + spec.label);
    point_span.arg("index", static_cast<std::uint64_t>(p));

    // Ensemble-mode multipath points share one realization set per
    // channel-axis group: the cache key is pure spec content (SvParams
    // fingerprint, ensemble seed, count), so every SNR/backend point of a
    // group -- in this process or any shard -- resolves the same ensemble.
    std::shared_ptr<const ChannelEnsemble> ensemble;
    const txrx::ChannelSource& source = spec.link.options.channel_source;
    if (source.is_ensemble() && spec.link.options.cm >= 1) {
      channel::SvParams params =
          txrx::ensemble_sv_params(spec.link.options.cm, spec.link.generation());
      obs::Span cache_span(config_.trace, "channel_cache", "resolve " + params.name);
      cache_span.arg("count", static_cast<std::uint64_t>(source.ensemble_count));
      cache_span.arg("seed", source.ensemble_seed);
      ensemble = cache.get(params, source.ensemble_seed, source.ensemble_count);
    }

    // Per-point stage attribution: the workers' accumulators are zeroed
    // here and merged after the measure returns (all workers quiesced), so
    // each record carries this point's table alone.
    if (config_.profile != nullptr) config_.profile->reset();

    const auto start = std::chrono::steady_clock::now();
    sim::MeasuredPoint measured = measure_point_batched(
        make_batch_factory(spec, link_seed, std::move(ensemble)), config_.batch_size,
        config_.stop, trial_root, pool, hooks, config_.ci_method);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

    if (hooks.cancelled()) {
      // A cancelled measurement is truncated, not deterministic: discard
      // it (even if the cancel raced the point's natural completion -- the
      // cheap uniform policy keeps the flushed document an exact prefix of
      // completed points either way).
      if (config_.progress != nullptr) config_.progress->end_point();
      point_span.finish();
      result.interrupted = true;
      break;
    }

    point_span.arg("trials", static_cast<std::uint64_t>(measured.ber.trials));
    point_span.arg("bits", static_cast<std::uint64_t>(measured.ber.bits));
    point_span.arg("errors", static_cast<std::uint64_t>(measured.ber.errors));
    point_span.finish();
    if (config_.trace != nullptr) {
      // Cumulative committed totals as counter tracks across the sweep.
      traced_trials += measured.ber.trials;
      traced_errors += measured.ber.errors;
      config_.trace->counter("engine", "committed_trials",
                             static_cast<double>(traced_trials));
      config_.trace->counter("engine", "bit_errors", static_cast<double>(traced_errors));
      const ChannelCache::Stats cs = cache.stats();
      config_.trace->counter("channel_cache", "sv_draws",
                             static_cast<double>(cs.sv_draws - cache_before.sv_draws));
    }
    if (config_.progress != nullptr) config_.progress->end_point();

    PointRecord record;
    record.index = p;
    record.spec = spec;
    record.ber = measured.ber;
    record.metrics = std::move(measured.metrics);
    record.elapsed_s = elapsed.count();
    if (config_.profile != nullptr) {
      record.stages = config_.profile->merged();
      result.stages.merge(record.stages);
      if (config_.trace != nullptr) {
        // Cumulative per-stage totals as a Chrome counter track: the
        // profile's time budget drawn across the sweep's timeline.
        traced_stage_totals.merge(record.stages);
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
          const obs::StageStats& stage = traced_stage_totals.stages[s];
          if (stage.calls == 0) continue;
          config_.trace->counter("profile", obs::stage_name(static_cast<obs::Stage>(s)),
                                 static_cast<double>(stage.total_ns) / 1e6);
        }
      }
    }
    for (ResultSink* sink : sinks) sink->point(record);
    result.records.push_back(std::move(record));
  }

  // Counter totals: pool stats are quiesced (every task finished before
  // the last point's measure returned), cache counters are run deltas.
  result.counters.pool = pool.worker_stats();
  const ChannelCache::Stats cache_after = cache.stats();
  result.counters.cache_hits = cache_after.hits - cache_before.hits;
  result.counters.cache_disk_loads = cache_after.disk_loads - cache_before.disk_loads;
  result.counters.cache_generated = cache_after.generated - cache_before.generated;
  result.counters.cache_sv_draws = cache_after.sv_draws - cache_before.sv_draws;
  const dsp::FftPlanCacheStats fft_after = dsp::fft_plan_cache_stats();
  result.counters.fft_plan_hits = fft_after.hits - fft_before.hits;
  result.counters.fft_plan_misses = fft_after.misses - fft_before.misses;
  result.counters.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
  run_span.finish();

  if (config_.progress != nullptr) config_.progress->end_run();
  for (ResultSink* sink : sinks) sink->end(result.info);
  return result;
}

SweepResult SweepEngine::run_named(const std::string& name,
                                   const std::vector<ResultSink*>& sinks) {
  return run(ScenarioRegistry::global().make(name), sinks);
}

SweepResult SweepEngine::run_adaptive(const ScenarioSpec& scenario,
                                      std::size_t extra_trials,
                                      const std::vector<ResultSink*>& sinks) {
  detail::require(config_.shard_count == 1,
                  "run_adaptive: adaptive allocation is incompatible with sharding "
                  "(the allocator must see every point's CI to pick the widest)");

  // Base pass without sinks: the document is written once, after the whole
  // budget is spent, so a reader never sees half-topped-up points.
  SweepResult result = run(scenario, {});

  if (!result.interrupted && extra_trials > 0 && !result.records.empty()) {
    ChannelCache& cache =
        config_.channel_cache != nullptr ? *config_.channel_cache : ChannelCache::global();
    ThreadPool pool(config_.workers, config_.trace);
    const Rng sweep_root(config_.seed);
    // Top-ups run without the progress meter (its point counts were sized
    // for the base pass); the trace recorder still sees them.
    const PointHooks hooks{config_.trace, nullptr, config_.profile, config_.cancel};

    std::vector<stats::AllocPoint> alloc;
    alloc.reserve(result.records.size());
    for (const PointRecord& rec : result.records) {
      alloc.push_back(stats::AllocPoint{rec.ber.ber, 0.5 * (rec.ber.ci_hi - rec.ber.ci_lo),
                                        rec.ber.trials, false});
    }

    std::size_t remaining = extra_trials;
    while (remaining > 0 && !hooks.cancelled()) {
      const int pick = stats::pick_widest(alloc);
      if (pick < 0) break;  // every point saturated
      stats::AllocPoint& ap = alloc[static_cast<std::size_t>(pick)];
      PointRecord& rec = result.records[static_cast<std::size_t>(pick)];
      const std::size_t p = rec.index;

      // Trial-budgeted extension: the error/bit budgets already fired on
      // the base pass, so only the raised trial cap (and a CI target, when
      // one is set) bounds the top-up. Rerunning with a larger cap commits
      // a superset prefix of the same trial stream -- the base trials are
      // reproduced bit for bit, then extended.
      sim::BerStop stop = config_.stop;
      stop.min_errors = std::numeric_limits<std::size_t>::max();
      stop.max_bits = std::numeric_limits<std::size_t>::max();
      stop.max_trials = ap.trials + stats::next_chunk(ap.trials, remaining);

      const Rng point_root = sweep_root.fork(p);
      const Rng trial_root = point_root.fork(kTrialStreamSalt);
      const uint64_t link_seed = point_root.fork(kLinkSeedSalt).seed();
      std::shared_ptr<const ChannelEnsemble> ensemble;
      const txrx::ChannelSource& source = rec.spec.link.options.channel_source;
      if (source.is_ensemble() && rec.spec.link.options.cm >= 1) {
        const channel::SvParams params =
            txrx::ensemble_sv_params(rec.spec.link.options.cm, rec.spec.link.generation());
        ensemble = cache.get(params, source.ensemble_seed, source.ensemble_count);
      }

      obs::Span span(config_.trace, "engine", "topup " + rec.spec.label);
      if (config_.profile != nullptr) config_.profile->reset();
      const auto start = std::chrono::steady_clock::now();
      sim::MeasuredPoint measured = measure_point_batched(
          make_batch_factory(rec.spec, link_seed, std::move(ensemble)), config_.batch_size,
          stop, trial_root, pool, hooks, config_.ci_method);
      span.finish();
      if (config_.profile != nullptr) {
        // A top-up replays the committed prefix then extends it; its stage
        // work is real work this run did, so it accumulates on top of the
        // base pass's table.
        const obs::StageTable topup = config_.profile->merged();
        rec.stages.merge(topup);
        result.stages.merge(topup);
      }
      if (hooks.cancelled()) {
        result.interrupted = true;
        break;
      }
      rec.elapsed_s += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                           .count();

      const std::size_t grown =
          measured.ber.trials > ap.trials ? measured.ber.trials - ap.trials : 0;
      if (grown == 0) {
        // A CI target (or a degenerate plan) kept the point from growing:
        // never pick it again, the budget moves to the next-widest point.
        ap.saturated = true;
        continue;
      }
      remaining -= std::min(remaining, grown);
      rec.ber = measured.ber;
      rec.metrics = std::move(measured.metrics);
      ap.ber = rec.ber.ber;
      ap.ci_halfwidth = 0.5 * (rec.ber.ci_hi - rec.ber.ci_lo);
      ap.trials = rec.ber.trials;
    }
    result.counters.pool = pool.worker_stats();
  }

  for (ResultSink* sink : sinks) sink->begin(result.info);
  for (const PointRecord& rec : result.records) {
    for (ResultSink* sink : sinks) sink->point(rec);
  }
  for (ResultSink* sink : sinks) sink->end(result.info);
  return result;
}

}  // namespace uwb::engine
