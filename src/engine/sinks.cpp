#include "engine/sinks.h"

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "io/json.h"
#include "io/result_io.h"
#include "sim/table.h"

namespace uwb::engine {

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Metric columns for tabular sinks: union over the sweep in
/// first-appearance order, so a sweep whose early points miss a metric
/// (e.g. zero detected trials) still shows every recorded metric.
std::vector<std::string> metric_name_union(const std::vector<PointRecord>& records) {
  std::vector<std::string> names;
  for (const auto& record : records) {
    for (const auto& [name, stats] : record.metrics.entries()) {
      (void)stats;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  return names;
}

std::ofstream open_for_write(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), "sink: cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

std::string default_result_path(const std::string& scenario_name, const std::string& ext) {
  return "bench/results/" + scenario_name + "." + ext;
}

// ----------------------------------------------------- ConsoleTableSink ----

ConsoleTableSink::ConsoleTableSink(std::FILE* out) : out_(out) {}

void ConsoleTableSink::begin(const SweepInfo& info) {
  std::fprintf(out_, "sweep '%s': %zu points, seed %" PRIu64 "\n", info.scenario.c_str(),
               info.num_points, info.seed);
}

void ConsoleTableSink::point(const PointRecord& record) { records_.push_back(record); }

void ConsoleTableSink::end(const SweepInfo& info) {
  (void)info;
  if (records_.empty()) return;
  const std::vector<std::string> metric_names = metric_name_union(records_);
  std::vector<std::string> headers;
  for (const auto& [key, value] : records_.front().spec.tags) {
    (void)value;
    headers.push_back(key);
  }
  for (const char* h : {"BER", "ci95", "ci_lo", "ci_hi", "errors", "bits", "trials"}) {
    headers.emplace_back(h);
  }
  for (const auto& name : metric_names) headers.push_back(name);
  headers.emplace_back("time");
  sim::Table table(headers);
  for (const auto& record : records_) {
    std::vector<std::string> row;
    for (const auto& [key, value] : record.spec.tags) {
      (void)key;
      row.push_back(value);
    }
    row.push_back(sim::Table::sci(record.ber.ber));
    row.push_back(sim::Table::sci(record.ber.ci95));
    row.push_back(sim::Table::sci(record.ber.ci_lo));
    row.push_back(sim::Table::sci(record.ber.ci_hi));
    row.push_back(sim::Table::integer(static_cast<long long>(record.ber.errors)));
    row.push_back(sim::Table::integer(static_cast<long long>(record.ber.bits)));
    row.push_back(sim::Table::integer(static_cast<long long>(record.ber.trials)));
    for (const auto& name : metric_names) {
      const sim::MetricStats* stats = record.metrics.find(name);
      row.push_back(stats == nullptr ? "--" : sim::Table::num(stats->mean(), 4));
    }
    row.push_back(sim::Table::num(record.elapsed_s, 2) + " s");
    table.add_row(std::move(row));
  }
  std::fprintf(out_, "%s", table.to_string().c_str());
}

// ------------------------------------------------------------- JsonSink ----

JsonSink::JsonSink(std::string path) : path_(std::move(path)) {}

void JsonSink::point(const PointRecord& record) { records_.push_back(record); }

void JsonSink::end(const SweepInfo& info) {
  // The sink serializes through the shared io::ResultDoc formatter so the
  // CLI's shard-merge path reproduces this layout byte for byte.
  io::ResultDoc doc;
  doc.scenario = info.scenario;
  doc.seed = info.seed;
  doc.stop = info.stop;
  doc.points.reserve(records_.size());
  for (const auto& record : records_) {
    io::ResultPoint point;
    point.index = record.index;
    point.label = record.spec.label;
    point.tags = record.spec.tags;
    point.ber = io::format_double(record.ber.ber);
    point.ci95 = io::format_double(record.ber.ci95);
    point.errors = record.ber.errors;
    point.bits = record.ber.bits;
    point.trials = record.ber.trials;
    point.ci_lo = io::format_double(record.ber.ci_lo);
    point.ci_hi = io::format_double(record.ber.ci_hi);
    point.ci_method = stats::to_string(record.ber.ci_method);
    point.weighted = record.ber.weighted;
    if (record.ber.weighted) point.ess = io::format_double(record.ber.ess);
    for (const auto& [name, stats] : record.metrics.entries()) {
      io::ResultMetric metric;
      metric.name = name;
      metric.count = stats.count;
      metric.mean = io::format_double(stats.mean());
      metric.variance = io::format_double(stats.variance());
      point.metrics.push_back(std::move(metric));
    }
    doc.points.push_back(std::move(point));
  }
  std::ofstream out = open_for_write(path_);
  out << io::write_result_json(doc);
  detail::require(out.good(), "JsonSink: write to '" + path_ + "' failed");
}

// -------------------------------------------------------------- CsvSink ----

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

void CsvSink::point(const PointRecord& record) { records_.push_back(record); }

void CsvSink::end(const SweepInfo& info) {
  (void)info;
  std::ofstream out = open_for_write(path_);
  // Per-metric columns (<name>_count/_mean/_var); a point that never saw
  // a metric leaves the cells empty.
  const std::vector<std::string> metric_names = metric_name_union(records_);
  out << "index";
  if (!records_.empty()) {
    for (const auto& [key, value] : records_.front().spec.tags) {
      (void)value;
      out << "," << csv_escape(key);
    }
  }
  out << ",ber,ci95,ci_lo,ci_hi,ci_method,errors,bits,trials,ess";
  for (const auto& name : metric_names) {
    out << "," << csv_escape(name) << "_count," << csv_escape(name) << "_mean,"
        << csv_escape(name) << "_var";
  }
  out << "\n";
  for (const auto& record : records_) {
    out << record.index;
    for (const auto& [key, value] : record.spec.tags) {
      (void)key;
      out << "," << csv_escape(value);
    }
    out << "," << io::format_double(record.ber.ber) << ","
        << io::format_double(record.ber.ci95) << ","
        << io::format_double(record.ber.ci_lo) << ","
        << io::format_double(record.ber.ci_hi) << ","
        << stats::to_string(record.ber.ci_method) << "," << record.ber.errors << ","
        << record.ber.bits << "," << record.ber.trials << ","
        << io::format_double(record.ber.ess);
    for (const auto& name : metric_names) {
      const sim::MetricStats* stats = record.metrics.find(name);
      if (stats == nullptr) {
        out << ",,,";
      } else {
        out << "," << stats->count << "," << io::format_double(stats->mean()) << ","
            << io::format_double(stats->variance());
      }
    }
    out << "\n";
  }
  detail::require(out.good(), "CsvSink: write to '" + path_ + "' failed");
}

}  // namespace uwb::engine
