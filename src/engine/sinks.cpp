#include "engine/sinks.h"

#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "sim/table.h"

namespace uwb::engine {

namespace {

/// Shortest round-trip representation: integers stay integers ("0.01"
/// instead of scientific clutter where possible), and identical doubles
/// always render to identical text (the determinism the sinks promise).
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest form that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::ofstream open_for_write(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(out.good(), "sink: cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

std::string default_result_path(const std::string& scenario_name, const std::string& ext) {
  return "bench/results/" + scenario_name + "." + ext;
}

// ----------------------------------------------------- ConsoleTableSink ----

ConsoleTableSink::ConsoleTableSink(std::FILE* out) : out_(out) {}

void ConsoleTableSink::begin(const SweepInfo& info) {
  std::fprintf(out_, "sweep '%s': %zu points, seed %" PRIu64 "\n", info.scenario.c_str(),
               info.num_points, info.seed);
}

void ConsoleTableSink::point(const PointRecord& record) { records_.push_back(record); }

void ConsoleTableSink::end(const SweepInfo& info) {
  (void)info;
  if (records_.empty()) return;
  std::vector<std::string> headers;
  for (const auto& [key, value] : records_.front().spec.tags) {
    (void)value;
    headers.push_back(key);
  }
  for (const char* h : {"BER", "ci95", "errors", "bits", "trials", "time"}) {
    headers.emplace_back(h);
  }
  sim::Table table(headers);
  for (const auto& record : records_) {
    std::vector<std::string> row;
    for (const auto& [key, value] : record.spec.tags) {
      (void)key;
      row.push_back(value);
    }
    row.push_back(sim::Table::sci(record.ber.ber));
    row.push_back(sim::Table::sci(record.ber.ci95));
    row.push_back(sim::Table::integer(static_cast<long long>(record.ber.errors)));
    row.push_back(sim::Table::integer(static_cast<long long>(record.ber.bits)));
    row.push_back(sim::Table::integer(static_cast<long long>(record.ber.trials)));
    row.push_back(sim::Table::num(record.elapsed_s, 2) + " s");
    table.add_row(std::move(row));
  }
  std::fprintf(out_, "%s", table.to_string().c_str());
}

// ------------------------------------------------------------- JsonSink ----

JsonSink::JsonSink(std::string path) : path_(std::move(path)) {}

void JsonSink::point(const PointRecord& record) { records_.push_back(record); }

void JsonSink::end(const SweepInfo& info) {
  std::ofstream out = open_for_write(path_);
  out << "{\n";
  out << "  \"scenario\": \"" << json_escape(info.scenario) << "\",\n";
  out << "  \"seed\": " << info.seed << ",\n";
  out << "  \"stop\": {\"min_errors\": " << info.stop.min_errors
      << ", \"max_bits\": " << info.stop.max_bits
      << ", \"max_trials\": " << info.stop.max_trials << "},\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& record = records_[i];
    out << "    {\"index\": " << record.index << ", \"label\": \""
        << json_escape(record.spec.label) << "\", \"tags\": {";
    for (std::size_t t = 0; t < record.spec.tags.size(); ++t) {
      if (t > 0) out << ", ";
      out << "\"" << json_escape(record.spec.tags[t].first) << "\": \""
          << json_escape(record.spec.tags[t].second) << "\"";
    }
    out << "}, \"ber\": " << json_number(record.ber.ber)
        << ", \"ci95\": " << json_number(record.ber.ci95)
        << ", \"errors\": " << record.ber.errors << ", \"bits\": " << record.ber.bits
        << ", \"trials\": " << record.ber.trials << "}";
    out << (i + 1 < records_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  detail::require(out.good(), "JsonSink: write to '" + path_ + "' failed");
}

// -------------------------------------------------------------- CsvSink ----

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

void CsvSink::point(const PointRecord& record) { records_.push_back(record); }

void CsvSink::end(const SweepInfo& info) {
  (void)info;
  std::ofstream out = open_for_write(path_);
  out << "index";
  if (!records_.empty()) {
    for (const auto& [key, value] : records_.front().spec.tags) {
      (void)value;
      out << "," << csv_escape(key);
    }
  }
  out << ",ber,ci95,errors,bits,trials\n";
  for (const auto& record : records_) {
    out << record.index;
    for (const auto& [key, value] : record.spec.tags) {
      (void)key;
      out << "," << csv_escape(value);
    }
    out << "," << json_number(record.ber.ber) << "," << json_number(record.ber.ci95) << ","
        << record.ber.errors << "," << record.ber.bits << "," << record.ber.trials << "\n";
  }
  detail::require(out.good(), "CsvSink: write to '" + path_ + "' failed");
}

}  // namespace uwb::engine
