#include "engine/channel_cache.h"

#include <cstdio>
#include <utility>

#include "common/error.h"
#include "io/cir_io.h"

namespace uwb::engine {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_text(uint64_t& h, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= kFnvPrime;
  }
}

void fnv_field(uint64_t& h, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%.17g;", key, value);
  fnv_text(h, buf);
}

void fnv_field(uint64_t& h, const char* key, bool value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%s;", key, value ? "true" : "false");
  fnv_text(h, buf);
}

}  // namespace

uint64_t sv_fingerprint(const channel::SvParams& p) {
  // Statistical fields only, in declaration order; `name` stays out (see
  // header). Changing this scheme invalidates every binary store -- bump
  // io::kCirFormatVersion alongside.
  uint64_t h = kFnvOffset;
  fnv_field(h, "cluster_rate_per_s", p.cluster_rate_per_s);
  fnv_field(h, "ray_rate_per_s", p.ray_rate_per_s);
  fnv_field(h, "cluster_decay_s", p.cluster_decay_s);
  fnv_field(h, "ray_decay_s", p.ray_decay_s);
  fnv_field(h, "cluster_fading_db", p.cluster_fading_db);
  fnv_field(h, "ray_fading_db", p.ray_fading_db);
  fnv_field(h, "shadowing_db", p.shadowing_db);
  fnv_field(h, "max_excess_delay_s", p.max_excess_delay_s);
  fnv_field(h, "complex_phases", p.complex_phases);
  return h;
}

ChannelEnsemble make_ensemble(const channel::SvParams& params, uint64_t seed,
                              std::size_t count) {
  detail::require(count >= 1, "make_ensemble: count must be >= 1");
  ChannelEnsemble ensemble;
  ensemble.key = ChannelKey{sv_fingerprint(params), seed, count};
  ensemble.params = params;
  ensemble.realizations.reserve(count);
  const channel::SalehValenzuela sv(params);
  const Rng root(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = root.fork(i);
    ensemble.realizations.push_back(sv.realize(rng));
  }
  return ensemble;
}

ChannelCache& ChannelCache::global() {
  static ChannelCache* instance = new ChannelCache();
  return *instance;
}

void ChannelCache::set_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dir_ = std::move(dir);
}

std::string ChannelCache::directory() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dir_;
}

std::shared_ptr<const ChannelEnsemble> ChannelCache::get(const channel::SvParams& params,
                                                         uint64_t seed, std::size_t count) {
  detail::require(count >= 1, "ChannelCache::get: count must be >= 1");
  const ChannelKey key{sv_fingerprint(params), seed, count};
  // The mutex stays held across generation/disk load: lookups come from the
  // sweep coordinator (one per point, before trials launch), so simplicity
  // beats miss-concurrency. Revisit if point-level parallelism ever calls
  // get() from workers.
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = store_.find(key); it != store_.end()) {
    ++stats_.hits;
    return it->second;
  }
  std::shared_ptr<const ChannelEnsemble> ensemble;
  if (!dir_.empty() && io::ensemble_exists(dir_, params, key)) {
    ensemble = std::make_shared<const ChannelEnsemble>(io::load_ensemble(dir_, params, key));
    ++stats_.disk_loads;
  } else {
    ensemble = std::make_shared<const ChannelEnsemble>(make_ensemble(params, seed, count));
    ++stats_.generated;
    stats_.sv_draws += count;
  }
  store_.emplace(key, ensemble);
  return ensemble;
}

ChannelCache::Stats ChannelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ChannelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  store_.clear();
  stats_ = Stats{};
}

}  // namespace uwb::engine
