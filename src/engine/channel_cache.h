#pragma once
/// \file channel_cache.h
/// \brief Deterministic channel-ensemble cache: Saleh-Valenzuela multipath
///        realizations generated once per (parameter set, seed, count) key
///        and shared across every sweep point of a channel-axis group.
///
/// Today a fresh S-V realization is drawn inside every packet trial, so an
/// N-point Eb/N0 grid regenerates the same channel statistics N times over.
/// An *ensemble* fixes the channel draw instead: realization i is a pure
/// function of (SvParams, base seed, i) via the library's Rng::fork
/// contract, trials index into the ensemble with `trial % count`, and every
/// operating point of a grid reuses the same `count` realizations. That
/// buys three things at once:
///
///   * draws-per-grid drops from one-per-trial to `count` per channel-axis
///     group (see bench_channel_cache for the measured throughput gain),
///   * common-random-numbers variance reduction across the operating-point
///     axis (each Eb/N0 / back-end point sees the same channels),
///   * pre-materialized fan-out: ensembles serialize to a versioned binary
///     store (io/cir_io.h) that `uwb_sweep precompute` writes and remote
///     shards load.
///
/// Determinism contract: an ensemble's realizations depend only on its key
/// (canonical SvParams fingerprint, base seed, count) -- never on worker
/// count, shard layout, cache hits vs. disk loads, or generation order.
/// See docs/channel_cache.md.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "channel/cir.h"
#include "channel/saleh_valenzuela.h"
#include "common/rng.h"

namespace uwb::engine {

/// Canonical fingerprint of a Saleh-Valenzuela parameter set: FNV-1a (64)
/// over "key=value;" pairs of every *statistical* field in declaration
/// order, doubles rendered with "%.17g" (exact round trip). The cosmetic
/// `name` field is excluded -- renaming a profile must not invalidate its
/// cached realizations -- but `complex_phases` is included, so the gen-1
/// real-polarity variant of a CM profile keys a distinct ensemble.
[[nodiscard]] uint64_t sv_fingerprint(const channel::SvParams& params);

/// Identity of one ensemble: everything its realizations are a pure
/// function of.
struct ChannelKey {
  uint64_t fingerprint = 0;  ///< sv_fingerprint of the parameter set
  uint64_t seed = 0;         ///< base seed (realization i uses fork(i))
  std::size_t count = 0;     ///< number of realizations

  [[nodiscard]] bool operator==(const ChannelKey&) const = default;
  [[nodiscard]] bool operator<(const ChannelKey& o) const {
    if (fingerprint != o.fingerprint) return fingerprint < o.fingerprint;
    if (seed != o.seed) return seed < o.seed;
    return count < o.count;
  }
};

/// A materialized ensemble: the key, the parameter set it was generated
/// from (kept for sidecar metadata / humans), and the realizations.
struct ChannelEnsemble {
  ChannelKey key;
  channel::SvParams params;
  std::vector<channel::Cir> realizations;

  /// The realization trial \p trial uses: `trial % count`.
  [[nodiscard]] const channel::Cir& realization_for_trial(std::size_t trial) const {
    return realizations[trial % realizations.size()];
  }
};

/// Generates an ensemble deterministically: realization i draws every
/// random number from Rng(seed).fork(i), so the result is byte-identical
/// wherever and whenever it is generated. \throws InvalidArgument when
/// \p count is zero.
[[nodiscard]] ChannelEnsemble make_ensemble(const channel::SvParams& params, uint64_t seed,
                                            std::size_t count);

/// Thread-safe in-memory ensemble store, optionally backed by a binary
/// store directory (io/cir_io.h). Lookup order: memory, then disk (when a
/// directory is set), then generate. get() never writes to disk -- the
/// store is populated explicitly by `uwb_sweep precompute` /
/// io::save_ensemble, so concurrent sweep processes can share a read-only
/// cache directory.
class ChannelCache {
 public:
  /// The process-wide cache (what SweepEngine uses unless its config names
  /// another instance).
  static ChannelCache& global();

  ChannelCache() = default;

  /// Sets (or clears, with "") the binary-store directory consulted before
  /// generating.
  void set_directory(std::string dir);
  [[nodiscard]] std::string directory() const;

  /// The ensemble for (params, seed, count), shared. Generation and disk
  /// loads happen at most once per key per cache instance.
  [[nodiscard]] std::shared_ptr<const ChannelEnsemble> get(const channel::SvParams& params,
                                                           uint64_t seed, std::size_t count);

  /// Accounting (what bench_channel_cache reports).
  struct Stats {
    std::size_t hits = 0;        ///< served from memory
    std::size_t disk_loads = 0;  ///< served from the binary store
    std::size_t generated = 0;   ///< ensembles generated in-process
    std::size_t sv_draws = 0;    ///< total realize() calls this cache paid for
  };
  [[nodiscard]] Stats stats() const;

  /// Drops every entry and zeroes the stats (tests and benches).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::string dir_;
  std::map<ChannelKey, std::shared_ptr<const ChannelEnsemble>> store_;
  Stats stats_;
};

}  // namespace uwb::engine
