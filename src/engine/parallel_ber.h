#pragma once
/// \file parallel_ber.h
/// \brief Deterministic parallel Monte-Carlo point measurement.
///
/// The sequential loop in sim::measure_ber runs trials one after another and
/// stops on an error/bit/trial budget. This module parallelizes that loop
/// WITHOUT changing its answer: trial i draws every random number from
/// `root.fork(i)`, workers execute trials speculatively, and outcomes are
/// committed strictly in trial-index order under the sequential stopping
/// rule. The set of counted trials is therefore exactly the prefix the
/// sequential loop would have counted, so the resulting MeasuredPoint --
/// BER counters and every named-metric reduction -- is byte-identical for
/// any worker count or scheduling order (see engine/metric_accumulator.h).

#include <atomic>
#include <functional>

#include "common/rng.h"
#include "engine/thread_pool.h"
#include "sim/ber_simulator.h"

namespace uwb::obs {
class TraceRecorder;
class ProgressMeter;
class StageProfiler;
}  // namespace uwb::obs

namespace uwb::engine {

/// One Monte-Carlo trial: a pure function of its trial index and per-trial
/// Rng (plus worker-local state captured by the closure, e.g. a txrx
/// link). The index carries no extra randomness -- rng is already
/// root.fork(index) -- but lets index-keyed shared state (an ensemble's
/// realization `index % count`, see engine/channel_cache.h) stay
/// deterministic for any worker count.
using TrialFn = std::function<sim::TrialOutcome(std::size_t index, Rng& rng)>;

/// Called once per worker to build worker-local state and return the trial
/// closure. The factory MUST produce closures whose outcome depends only on
/// the per-trial Rng -- never on which worker runs the trial or in what
/// order (that is what makes the parallel result deterministic).
using TrialFactory = std::function<TrialFn()>;

/// Batched execution: one call runs the contiguous trials
/// [first, first+count) and writes trial first+k's outcome to out[k]. Each
/// trial must still be a pure function of root.fork(index) -- batching only
/// lets a worker share per-batch state across its claim (e.g. the grouped
/// channel-realization pass in txrx::PacketBatch). The engine commits the
/// outcomes one trial at a time in global index order, so the measured
/// point is byte-identical for any batch size.
using BatchFn = std::function<void(std::size_t first, std::size_t count, const Rng& root,
                                   sim::TrialOutcome* out)>;

/// Per-worker factory for BatchFn, same contract as TrialFactory.
using BatchFactory = std::function<BatchFn()>;

/// Sequential semantics: trial i runs with root.fork(i); stops once the
/// error budget (bit errors, or failed trials of stop.metric when set),
/// max_bits bits, or max_trials trials are reached (max_trials is a hard
/// stop even when no errors accumulate). \p ci_method selects the two-sided
/// interval the finished point reports (weighted points always report the
/// normal interval regardless).
///
/// This is a thin adapter over measure_point_parallel on a single-worker
/// pool -- the ordered-commit engine is the only trial loop in the tree, and
/// its single-worker execution IS the sequential semantics (committed
/// prefix, stopping rule, result bytes).
sim::MeasuredPoint measure_point_serial(
    const TrialFn& trial, const sim::BerStop& stop, const Rng& root,
    stats::CiMethod ci_method = stats::CiMethod::kClopperPearson);

/// Optional telemetry hooks for one point measurement. Both observers may
/// be null; neither can change the measured result (they never touch Rng
/// streams or the commit order). With a recorder, each worker records one
/// "trials" span per executed chunk of trials plus an instant event at the
/// stop-rule decision; with a progress meter, executed trial/bit/error
/// counts stream into its atomics.
struct PointHooks {
  obs::TraceRecorder* trace = nullptr;
  obs::ProgressMeter* progress = nullptr;

  /// Stage profiler (see obs/profile.h). Each worker task activates it for
  /// the task's lifetime, so StageTimer scopes inside txrx/dsp accumulate
  /// into its per-thread tables. Observer-only, like the recorder.
  obs::StageProfiler* profile = nullptr;

  /// Cooperative cancellation (e.g. set from a SIGINT handler): workers
  /// check it at the top of their claim loop and wind the point down
  /// early. A cancelled measurement is truncated, NOT deterministic -- the
  /// caller must discard it (the sweep engine drops the in-flight point so
  /// a flushed partial document stays an exact prefix of completed
  /// points). Null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

/// Parallel version of measure_point_serial with identical results:
/// workers claim trial indices, run them speculatively within a bounded
/// window ahead of the commit frontier, and commit in index order.
/// Outcomes past the stopping point are discarded, exactly as if they had
/// never run. (Adapter over measure_point_batched at batch size 1.)
sim::MeasuredPoint measure_point_parallel(
    const TrialFactory& factory, const sim::BerStop& stop, const Rng& root,
    ThreadPool& pool, const PointHooks& hooks = {},
    stats::CiMethod ci_method = stats::CiMethod::kClopperPearson);

/// The ordered-commit core with batched claims: workers claim contiguous
/// ranges of \p batch_size trial indices (clamped at the trial cap) and run
/// each range through one BatchFn call, still bounded by the speculation
/// window and still committing per trial in global index order. The set of
/// committed trials is therefore exactly the sequential loop's prefix, and
/// the measured point -- counters, metric reductions, result-document bytes
/// -- is identical for ANY (batch_size, worker count) combination (tested
/// at B in {1,4,16} x workers in {1,8}).
sim::MeasuredPoint measure_point_batched(
    const BatchFactory& factory, std::size_t batch_size, const sim::BerStop& stop,
    const Rng& root, ThreadPool& pool, const PointHooks& hooks = {},
    stats::CiMethod ci_method = stats::CiMethod::kClopperPearson);

/// BER-only convenience wrappers (drop the metric reductions).
sim::BerPoint measure_ber_serial(const TrialFn& trial, const sim::BerStop& stop,
                                 const Rng& root);
sim::BerPoint measure_ber_parallel(const TrialFactory& factory, const sim::BerStop& stop,
                                   const Rng& root, ThreadPool& pool);

}  // namespace uwb::engine
