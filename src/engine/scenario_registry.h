#pragma once
/// \file scenario_registry.h
/// \brief Declarative sweep scenarios: named, composable axis grids that
///        expand into a flat trial plan for the sweep engine.
///
/// A scenario is a base transceiver configuration plus a list of axes
/// (channel model, Eb/N0 grid, back-end variant, interferer/notch/FEC/
/// modulation settings...). Building takes the cartesian product of the
/// axes, row-major in declaration order, yielding one PointSpec per grid
/// point. A PointSpec is just a labeled txrx::LinkSpec, so every point --
/// gen-1 or gen-2 -- flows through the same txrx::make_link factory, can be
/// serialized to JSON (src/io/spec_io.h), and can be loaded back from a
/// file. Scenarios are registered by name in the ScenarioRegistry so a
/// bench or the uwb_sweep CLI asks for "gen2_cm_grid" instead of
/// hand-rolling nested loops.

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "txrx/link.h"
#include "txrx/transceiver_config.h"

namespace uwb::engine {

using txrx::Generation;

/// One fully-resolved grid point: a labeled link spec (everything needed to
/// construct a link and run packet trials) plus the axis tags the sinks
/// report.
struct PointSpec {
  std::string label;  ///< "CM3 | 12 dB | full", built from the axis values
  txrx::LinkSpec link;

  /// Ordered (axis, value) pairs, e.g. {"channel","CM3"}, {"ebn0_db","12"}.
  std::vector<std::pair<std::string, std::string>> tags;

  /// Value of an axis tag, or "" when the axis is absent.
  [[nodiscard]] std::string tag(const std::string& key) const;
};

/// A named, flat trial plan.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<PointSpec> points;
};

/// Restricts \p scenario to the points whose \p axis tag equals one of the
/// comma-separated \p values -- the semantics of a CLI "axis=value"
/// override. Fails loudly: an axis name no point declares, or a value that
/// matches no point, throws InvalidArgument (a typo must not silently run
/// the full grid or an empty one). The surviving points keep their relative
/// order and are re-indexed, i.e. the restricted scenario is a new,
/// smaller plan.
void restrict_scenario(ScenarioSpec& scenario, const std::string& axis,
                       const std::string& values);

/// One named setting of an axis: mutates the point's config and/or trial
/// options.
template <typename Config>
struct LinkVariant {
  std::string name;
  std::function<void(Config&, txrx::TrialOptions&)> apply;
};

using Gen1Variant = LinkVariant<txrx::Gen1Config>;
using Gen2Variant = LinkVariant<txrx::Gen2Config>;

namespace builder_detail {

std::string format_axis_number(double v);
std::string channel_axis_name(int cm);
std::string join_axis_label(const std::vector<std::pair<std::string, std::string>>& tags);
constexpr Generation generation_of(const txrx::Gen1Config*) { return Generation::kGen1; }
constexpr Generation generation_of(const txrx::Gen2Config*) { return Generation::kGen2; }

}  // namespace builder_detail

/// Composes a scenario for either generation from a base config and axes.
/// Axes expand row-major: the first declared axis is the outermost loop.
template <typename Config>
class ScenarioBuilder {
 public:
  using Variant = LinkVariant<Config>;
  static constexpr Generation kGeneration =
      builder_detail::generation_of(static_cast<const Config*>(nullptr));

  ScenarioBuilder(std::string name, Config base,
                  txrx::TrialOptions base_options = txrx::default_options(kGeneration))
      : name_(std::move(name)), base_(std::move(base)),
        base_options_(std::move(base_options)) {}

  ScenarioBuilder& description(std::string text) {
    description_ = std::move(text);
    return *this;
  }

  /// Channel-model axis "channel": 0 = AWGN, 1..4 = CM1..CM4.
  ScenarioBuilder& channels(std::vector<int> cms) {
    std::vector<Variant> variants;
    variants.reserve(cms.size());
    for (int cm : cms) {
      variants.push_back({builder_detail::channel_axis_name(cm),
                          [cm](Config&, txrx::TrialOptions& o) { o.cm = cm; }});
    }
    return axis("channel", std::move(variants));
  }

  /// Eb/N0 axis "ebn0_db".
  ScenarioBuilder& ebn0_grid(std::vector<double> ebn0_db) {
    std::vector<Variant> variants;
    variants.reserve(ebn0_db.size());
    for (double db : ebn0_db) {
      variants.push_back({builder_detail::format_axis_number(db),
                          [db](Config&, txrx::TrialOptions& o) { o.ebn0_db = db; }});
    }
    return axis("ebn0_db", std::move(variants));
  }

  /// Arbitrary axis (back-end variant, interferer, FEC, modulation, ...).
  ScenarioBuilder& axis(std::string axis_name, std::vector<Variant> variants) {
    uwb::detail::require(!variants.empty(),
                         "scenario axis '" + axis_name + "' has no variants");
    axes_.emplace_back(std::move(axis_name), std::move(variants));
    return *this;
  }

  [[nodiscard]] ScenarioSpec build() const {
    ScenarioSpec spec;
    spec.name = name_;
    spec.description = description_;
    // Row-major cartesian product: odometer over the axis indices with the
    // last declared axis spinning fastest.
    std::size_t total = 1;
    for (const auto& [axis_name, variants] : axes_) total *= variants.size();
    std::vector<std::size_t> digits(axes_.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
      PointSpec point;
      Config config = base_;
      txrx::TrialOptions options = base_options_;
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        const Variant& variant = axes_[a].second[digits[a]];
        variant.apply(config, options);
        point.tags.emplace_back(axes_[a].first, variant.name);
      }
      point.link.config = std::move(config);
      point.link.options = std::move(options);
      point.label = builder_detail::join_axis_label(point.tags);
      spec.points.push_back(std::move(point));
      for (std::size_t a = axes_.size(); a-- > 0;) {
        if (++digits[a] < axes_[a].second.size()) break;
        digits[a] = 0;
      }
    }
    return spec;
  }

 private:
  std::string name_;
  std::string description_;
  Config base_;
  txrx::TrialOptions base_options_;
  std::vector<std::pair<std::string, std::vector<Variant>>> axes_;
};

using Gen1ScenarioBuilder = ScenarioBuilder<txrx::Gen1Config>;
using Gen2ScenarioBuilder = ScenarioBuilder<txrx::Gen2Config>;

/// Name -> scenario factory map. The process-wide instance (global()) comes
/// pre-loaded with the paper's standard grids; benches and tests may add
/// their own or build private registries.
class ScenarioRegistry {
 public:
  using Factory = std::function<ScenarioSpec()>;

  /// The process-wide registry, lazily populated with the built-in
  /// scenarios on first use. Thread-safe.
  static ScenarioRegistry& global();

  /// Registers (or replaces) a named scenario.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Expands the named scenario to its flat trial plan.
  /// \throws InvalidArgument when the name is unknown.
  [[nodiscard]] ScenarioSpec make(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace uwb::engine
