#pragma once
/// \file scenario_registry.h
/// \brief Declarative sweep scenarios: named, composable axis grids that
///        expand into a flat trial plan for the sweep engine.
///
/// A scenario is a base transceiver configuration plus a list of axes
/// (channel model, Eb/N0 grid, back-end variant, interferer/notch/FEC/
/// modulation settings...). Building takes the cartesian product of the
/// axes, row-major in declaration order, yielding one PointSpec per grid
/// point. Scenarios are registered by name in the ScenarioRegistry so a
/// bench -- or a future sweep CLI -- asks for "gen2_cm_grid" instead of
/// hand-rolling nested loops.

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "txrx/link.h"
#include "txrx/transceiver_config.h"

namespace uwb::engine {

enum class Generation { kGen1, kGen2 };

/// One fully-resolved grid point: everything needed to construct a link
/// and run packet trials, plus the axis labels the sinks report.
struct PointSpec {
  std::string label;  ///< "CM3 | 12 dB | full", built from the axis values
  Generation gen = Generation::kGen2;

  // Only the pair matching `gen` is meaningful.
  txrx::Gen2Config gen2{};
  txrx::Gen2LinkOptions gen2_options{};
  txrx::Gen1Config gen1{};
  txrx::Gen1LinkOptions gen1_options{};

  /// Ordered (axis, value) pairs, e.g. {"channel","CM3"}, {"ebn0_db","12"}.
  std::vector<std::pair<std::string, std::string>> tags;

  /// Value of an axis tag, or "" when the axis is absent.
  [[nodiscard]] std::string tag(const std::string& key) const;
};

/// A named, flat trial plan.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<PointSpec> points;
};

/// One named setting of a gen-2 axis.
struct Gen2Variant {
  std::string name;
  std::function<void(txrx::Gen2Config&, txrx::Gen2LinkOptions&)> apply;
};

/// One named setting of a gen-1 axis.
struct Gen1Variant {
  std::string name;
  std::function<void(txrx::Gen1Config&, txrx::Gen1LinkOptions&)> apply;
};

/// Composes a gen-2 scenario from a base config and axes. Axes expand
/// row-major: the first declared axis is the outermost loop.
class Gen2ScenarioBuilder {
 public:
  Gen2ScenarioBuilder(std::string name, txrx::Gen2Config base,
                      txrx::Gen2LinkOptions base_options = {});

  Gen2ScenarioBuilder& description(std::string text);

  /// Channel-model axis "channel": 0 = AWGN, 1..4 = CM1..CM4.
  Gen2ScenarioBuilder& channels(std::vector<int> cms);

  /// Eb/N0 axis "ebn0_db".
  Gen2ScenarioBuilder& ebn0_grid(std::vector<double> ebn0_db);

  /// Arbitrary axis (back-end variant, interferer, FEC, modulation, ...).
  Gen2ScenarioBuilder& axis(std::string axis_name, std::vector<Gen2Variant> variants);

  [[nodiscard]] ScenarioSpec build() const;

 private:
  std::string name_;
  std::string description_;
  txrx::Gen2Config base_;
  txrx::Gen2LinkOptions base_options_;
  std::vector<std::pair<std::string, std::vector<Gen2Variant>>> axes_;
};

/// Gen-1 counterpart of Gen2ScenarioBuilder.
class Gen1ScenarioBuilder {
 public:
  Gen1ScenarioBuilder(std::string name, txrx::Gen1Config base,
                      txrx::Gen1LinkOptions base_options = {});

  Gen1ScenarioBuilder& description(std::string text);
  Gen1ScenarioBuilder& channels(std::vector<int> cms);
  Gen1ScenarioBuilder& ebn0_grid(std::vector<double> ebn0_db);
  Gen1ScenarioBuilder& axis(std::string axis_name, std::vector<Gen1Variant> variants);

  [[nodiscard]] ScenarioSpec build() const;

 private:
  std::string name_;
  std::string description_;
  txrx::Gen1Config base_;
  txrx::Gen1LinkOptions base_options_;
  std::vector<std::pair<std::string, std::vector<Gen1Variant>>> axes_;
};

/// Name -> scenario factory map. The process-wide instance (global()) comes
/// pre-loaded with the paper's standard grids; benches and tests may add
/// their own or build private registries.
class ScenarioRegistry {
 public:
  using Factory = std::function<ScenarioSpec()>;

  /// The process-wide registry, lazily populated with the built-in
  /// scenarios on first use. Thread-safe.
  static ScenarioRegistry& global();

  /// Registers (or replaces) a named scenario.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Expands the named scenario to its flat trial plan.
  /// \throws InvalidArgument when the name is unknown.
  [[nodiscard]] ScenarioSpec make(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace uwb::engine
