#pragma once
/// \file sweep_engine.h
/// \brief The parallel Monte-Carlo sweep runner: expands a scenario's trial
///        plan, measures every point on a work-stealing thread pool with
///        deterministic per-trial seeding, and streams results to sinks.
///
/// Seeding contract (what makes sweeps reproducible *and* parallel):
///
///   sweep_root  = Rng(config.seed)
///   point_root  = sweep_root.fork(point_index)
///   trial_root  = point_root.fork(0)    -> trial i uses trial_root.fork(i)
///   link_seed   = point_root.fork(1)    -> per-worker link construction
///
/// Every worker builds its own link from (point spec, link_seed) through
/// txrx::make_link, so all workers see identical hardware mismatch, and
/// each trial draws all of its randomness from trial_root.fork(trial_index).
/// Outcomes commit in trial order under the BerStop rule (see
/// parallel_ber.h), so the measured BerPoints -- and any JSON/CSV the sinks
/// write -- are byte-identical whether the sweep ran on 1 worker or 64.
///
/// Sharding rides on the same contract: point_index above is always the
/// point's *global* position in the plan, so shard i of N (running points
/// p with p % N == i) measures exactly what the unsharded sweep measures
/// for those points. Merging the shards' records (sorted by index)
/// reproduces the unsharded sweep byte for byte -- see io/result_io.h.

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/channel_cache.h"
#include "engine/parallel_ber.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/thread_pool.h"
#include "obs/counters.h"
#include "sim/ber_simulator.h"

namespace uwb::obs {
class TraceRecorder;
class ProgressMeter;
class StageProfiler;
}  // namespace uwb::obs

namespace uwb::engine {

struct SweepConfig {
  uint64_t seed = 0x5eed'0000'cafe'f00dULL;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  sim::BerStop stop;

  /// Trials per worker claim (see engine::measure_point_batched and
  /// txrx::PacketBatch): each worker runs contiguous index ranges of this
  /// size through one batched executor, amortizing per-realization link
  /// state across the batch. Execution granularity ONLY -- outcomes still
  /// commit per trial in global index order, so the result document is
  /// byte-identical for any batch size (tested at 1/4/16 x 1/8 workers).
  std::size_t batch_size = 1;

  /// Two-sided interval reported for unweighted points (weighted points
  /// always use the normal interval on the weight sums). Exact
  /// Clopper-Pearson by default: rare-event points with a handful of
  /// errors -- or none -- still get honest coverage.
  stats::CiMethod ci_method = stats::CiMethod::kClopperPearson;

  /// Process-level sharding: run only the points whose global index is
  /// congruent to shard_index mod shard_count. Seeding stays keyed on the
  /// global index, so N shards together reproduce the unsharded sweep
  /// exactly. The default 0/1 runs everything.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// Where ensemble-mode points resolve their channel realizations
  /// (nullptr = ChannelCache::global()). An ensemble's content is a pure
  /// function of its ChannelSource key, never of the cache instance, so
  /// this only controls sharing/accounting -- results don't change.
  ChannelCache* channel_cache = nullptr;

  /// Optional telemetry (src/obs/), both observers only: a trace recorder
  /// collecting spans/counters from the engine, the pool workers, and the
  /// channel-cache resolution, and a live progress meter fed trial counts.
  /// Results are byte-identical with either enabled or disabled (tested).
  obs::TraceRecorder* trace = nullptr;
  obs::ProgressMeter* progress = nullptr;

  /// Optional stage profiler (obs/profile.h): per-stage time/throughput
  /// attribution inside the links and the dsp kernels. Reset before each
  /// point, merged after it, so every PointRecord carries its own stage
  /// table and SweepResult::stages the run total. Observer-only, same
  /// byte-identity contract as trace/progress.
  obs::StageProfiler* profile = nullptr;

  /// Cooperative cancellation (set from a SIGINT/SIGTERM handler): checked
  /// between points and inside the trial loop. The in-flight point is
  /// discarded -- a truncated point would not be deterministic -- so the
  /// records delivered to sinks are exactly the completed-point prefix of
  /// the plan, each byte-identical to an uninterrupted run's. Null = never
  /// cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

/// A completed sweep: the metadata plus every measured point's record in
/// plan order (a shard's records keep their global indices).
struct SweepResult {
  SweepInfo info;
  std::vector<PointRecord> records;

  /// True when config.cancel fired: records hold the completed-point
  /// prefix only and the sweep ended early. The caller decides what a
  /// partial run means (uwb_sweep flushes it and exits with the
  /// interrupted code).
  bool interrupted = false;

  /// Operational counters for this run (always filled; never serialized
  /// into the result document -- see obs/manifest.h for the sidecar):
  /// per-worker pool stats, channel-cache and FFT-plan-cache deltas, wall
  /// time.
  obs::RunCounters counters;

  /// Run-total stage profile: the sum of every record's stage table (plus
  /// adaptive top-up work). Empty unless config.profile was set.
  obs::StageTable stages;

  /// First record whose tags contain every given (axis, value) pair, or
  /// nullptr. Benches use this to pair up points for derived columns.
  [[nodiscard]] const PointRecord* find(
      const std::vector<std::pair<std::string, std::string>>& tags) const;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepConfig config = {});

  [[nodiscard]] const SweepConfig& config() const noexcept { return config_; }

  /// Runs every point of \p scenario (in this config's shard); sinks
  /// receive points in plan order.
  SweepResult run(const ScenarioSpec& scenario, const std::vector<ResultSink*>& sinks = {});

  /// Convenience: expand a registered scenario by name and run it.
  SweepResult run_named(const std::string& name, const std::vector<ResultSink*>& sinks = {});

  /// Adaptive allocation: a base pass at the configured stop rule, then up
  /// to \p extra_trials additional trials poured into whichever point has
  /// the widest CI half-width relative to its BER (a zero-error point
  /// counts as infinitely wide). Each top-up re-measures the point with a
  /// larger trial cap, which -- by the ordered-commit determinism contract
  /// -- extends the point's committed prefix rather than re-rolling it, so
  /// the final document is still a pure function of (scenario, seed, stop,
  /// extra_trials). Sinks receive the finished records once, at the end.
  /// Incompatible with sharding (the allocator must see every point).
  SweepResult run_adaptive(const ScenarioSpec& scenario, std::size_t extra_trials,
                           const std::vector<ResultSink*>& sinks = {});

 private:
  SweepConfig config_;
};

}  // namespace uwb::engine
