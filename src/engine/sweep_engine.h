#pragma once
/// \file sweep_engine.h
/// \brief The parallel Monte-Carlo sweep runner: expands a scenario's trial
///        plan, measures every point on a work-stealing thread pool with
///        deterministic per-trial seeding, and streams results to sinks.
///
/// Seeding contract (what makes sweeps reproducible *and* parallel):
///
///   sweep_root  = Rng(config.seed)
///   point_root  = sweep_root.fork(point_index)
///   trial_root  = point_root.fork(0)    -> trial i uses trial_root.fork(i)
///   link_seed   = point_root.fork(1)    -> per-worker link construction
///
/// Every worker builds its own link from (point config, link_seed), so all
/// workers see identical hardware mismatch, and each trial draws all of its
/// randomness from trial_root.fork(trial_index). Outcomes commit in trial
/// order under the BerStop rule (see parallel_ber.h), so the measured
/// BerPoints -- and any JSON/CSV the sinks write -- are byte-identical
/// whether the sweep ran on 1 worker or 64.

#include <cstdint>
#include <vector>

#include "engine/parallel_ber.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/thread_pool.h"
#include "sim/ber_simulator.h"

namespace uwb::engine {

struct SweepConfig {
  uint64_t seed = 0x5eed'0000'cafe'f00dULL;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  sim::BerStop stop;
};

/// A completed sweep: the metadata plus every point's record in plan order.
struct SweepResult {
  SweepInfo info;
  std::vector<PointRecord> records;

  /// First record whose tags contain every given (axis, value) pair, or
  /// nullptr. Benches use this to pair up points for derived columns.
  [[nodiscard]] const PointRecord* find(
      const std::vector<std::pair<std::string, std::string>>& tags) const;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepConfig config = {});

  [[nodiscard]] const SweepConfig& config() const noexcept { return config_; }

  /// Runs every point of \p scenario; sinks receive points in plan order.
  SweepResult run(const ScenarioSpec& scenario, const std::vector<ResultSink*>& sinks = {});

  /// Convenience: expand a registered scenario by name and run it.
  SweepResult run_named(const std::string& name, const std::vector<ResultSink*>& sinks = {});

 private:
  SweepConfig config_;
};

}  // namespace uwb::engine
